# ε-PPI reproduction — convenience targets.

GO ?= go

.PHONY: all build test cover vet bench bench-baseline bench-mpc gateway-bench race fuzz smoke experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -timeout turns a deadlocked parallel construction (a hung MPC session,
# a leaked worker) into a stack-dumping failure instead of a stuck CI job.
# -shuffle=on randomizes test order so inter-test state dependencies
# cannot hide; the seed is printed on failure for replay.
test:
	$(GO) test -timeout 10m -shuffle=on ./...

# Coverage profile plus the per-function summary CI uploads as an
# artifact (coverage.out for tooling, coverage.txt for humans).
cover:
	$(GO) test -timeout 10m -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tee coverage.txt

race:
	$(GO) test -race -timeout 15m ./...

# Boot eppi-serve, run one query, and assert /v1/metrics and /v1/traces
# answer with live data (see scripts/smoke.sh).
smoke:
	sh scripts/smoke.sh

# One benchmark per paper table/figure (quick scale).
bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh BENCH_baseline.json: per-experiment wall times of the quick
# suite, the reference point for judging parallel-pipeline regressions.
bench-baseline:
	$(GO) run ./cmd/eppi-bench -experiment all -quick -metrics=false -baseline BENCH_baseline.json

# Append a gateway latency snapshot (cold + warm cache percentiles over a
# self-contained loopback shard fleet) to BENCH_gateway.json, tracked next
# to BENCH_baseline.json.
gateway-bench:
	$(GO) run ./cmd/eppi-gateway -selfbench 20000 -baseline BENCH_gateway.json
	scripts/bench_guard.sh BENCH_gateway.json

# Append a scalar-vs-wide secure-construction measurement (CountBelow/Reveal
# stage wall time and AND-gate-instance throughput) to BENCH_mpc.json, then
# fail if the wide throughput regressed >20% vs the previous entry.
bench-mpc:
	$(GO) run ./cmd/eppi-bench -mpcbench BENCH_mpc.json
	$(GO) run ./scripts/benchguard -mpc BENCH_mpc.json

# Short fuzz session over every fuzz target. The batch equivalence fuzz
# gets the longest slice: it drives the whole gateway query path.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshalBinary -fuzztime=10s ./internal/bitmat/
	$(GO) test -fuzz=FuzzBeta -fuzztime=10s ./internal/mathx/
	$(GO) test -fuzz=FuzzLambda -fuzztime=10s ./internal/mathx/
	$(GO) test -fuzz=FuzzBatchEquivalence -fuzztime=30s -run '^$$' ./internal/gateway/
	$(GO) test -fuzz=FuzzGMWWideEquivalence -fuzztime=10s -run '^$$' ./internal/gmw/

# Regenerate every paper table and figure at full scale.
experiments:
	$(GO) run ./cmd/eppi-bench -experiment all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/healthcare
	$(GO) run ./examples/attacklab
	$(GO) run ./examples/distributed
	$(GO) run ./examples/university

clean:
	$(GO) clean ./...
