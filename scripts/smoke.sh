#!/usr/bin/env sh
# Smoke test: boot eppi-serve on a demo index, run one query, and assert
# the observability surface works end to end — /v1/healthz answers,
# /v1/query returns providers, /v1/metrics exposes the runtime gauges,
# and /v1/traces serves a non-empty Chrome trace whose root span is the
# query request. Then boot the distributed layer — two eppi-serve shard
# nodes plus eppi-gateway — and assert a routed lookup answers through
# the gateway. Used by CI; runnable locally via `make smoke`.
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="${SMOKE_BIN:-./eppi-serve-smoke}"
GW_BIN="${SMOKE_GW_BIN:-./eppi-gateway-smoke}"
SHARD0_ADDR="${SMOKE_SHARD0_ADDR:-127.0.0.1:18081}"
SHARD1_ADDR="${SMOKE_SHARD1_ADDR:-127.0.0.1:18082}"
GW_ADDR="${SMOKE_GW_ADDR:-127.0.0.1:18090}"

go build -o "$BIN" ./cmd/eppi-serve
go build -o "$GW_BIN" ./cmd/eppi-gateway

"$BIN" -addr "$ADDR" -providers 20 -owners 8 -log-format json &
SERVER_PID=$!
PIDS="$SERVER_PID"
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -f "$BIN" "$GW_BIN"' EXIT

# Wait for the server to come up (up to ~5s).
i=0
until curl -sf "$BASE/v1/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "smoke: server did not come up on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

echo "smoke: healthz ok"

# One query (owner names are URLs; escape the owner:// scheme).
QUERY_OUT=$(curl -sf "$BASE/v1/query?owner=owner%3A%2F%2Fsite-0.example.org")
echo "$QUERY_OUT" | grep -q '"providers"' || {
  echo "smoke: query response missing providers: $QUERY_OUT" >&2
  exit 1
}
echo "smoke: query ok"

# Metrics must include the runtime telemetry refreshed on scrape.
METRICS_OUT=$(curl -sf "$BASE/v1/metrics")
echo "$METRICS_OUT" | grep -q '^eppi_go_goroutines' || {
  echo "smoke: metrics missing runtime telemetry" >&2
  exit 1
}
echo "smoke: metrics ok"

# The trace ring must hold the query's trace: valid Chrome trace JSON
# with an http.query root span.
TRACES_OUT=$(curl -sf "$BASE/v1/traces")
echo "$TRACES_OUT" | grep -q '"traceEvents"' || {
  echo "smoke: /v1/traces is not Chrome trace JSON: $TRACES_OUT" >&2
  exit 1
}
echo "$TRACES_OUT" | grep -q '"http.query"' || {
  echo "smoke: trace ring holds no http.query root span: $TRACES_OUT" >&2
  exit 1
}
echo "smoke: traces ok"

# --- Distributed layer: 2 shard nodes + gateway -------------------------
# Construction is deterministic under -seed, so two independent processes
# serving -shard 0/2 and -shard 1/2 of the same demo parameters hold
# complementary slices of the same index.
"$BIN" -addr "$SHARD0_ADDR" -providers 20 -owners 8 -shard 0/2 -log-format json &
PIDS="$PIDS $!"
"$BIN" -addr "$SHARD1_ADDR" -providers 20 -owners 8 -shard 1/2 -log-format json &
PIDS="$PIDS $!"

for a in "$SHARD0_ADDR" "$SHARD1_ADDR"; do
  i=0
  until curl -sf "http://$a/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
      echo "smoke: shard node did not come up on $a" >&2
      exit 1
    fi
    sleep 0.1
  done
done

# Shard nodes report their shard identity.
curl -sf "http://$SHARD0_ADDR/v1/healthz" | grep -q '"shard"' || {
  echo "smoke: shard node healthz missing shard identity" >&2
  exit 1
}
echo "smoke: shard nodes ok"

"$GW_BIN" -addr "$GW_ADDR" -shards "http://$SHARD0_ADDR;http://$SHARD1_ADDR" -log-format json &
PIDS="$PIDS $!"
i=0
until curl -sf "http://$GW_ADDR/v1/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "smoke: gateway did not come up on $GW_ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

# A routed lookup through the gateway answers with the same providers the
# single-node server gave.
GW_OUT=$(curl -sf "http://$GW_ADDR/v1/query?owner=owner%3A%2F%2Fsite-0.example.org")
echo "$GW_OUT" | grep -q '"providers"' || {
  echo "smoke: gateway query missing providers: $GW_OUT" >&2
  exit 1
}
[ "$GW_OUT" = "$QUERY_OUT" ] || {
  echo "smoke: gateway answer differs from single-node answer:" >&2
  echo "  gateway:     $GW_OUT" >&2
  echo "  single-node: $QUERY_OUT" >&2
  exit 1
}
# A repeat of the same lookup is a cache hit, visible in gateway metrics.
curl -sf "http://$GW_ADDR/v1/query?owner=owner%3A%2F%2Fsite-0.example.org" >/dev/null
curl -sf "http://$GW_ADDR/v1/metrics" | grep -q '^eppi_gateway_cache_hits_total [1-9]' || {
  echo "smoke: gateway cache hit not counted" >&2
  exit 1
}
echo "smoke: gateway ok"

for p in $PIDS; do
  kill "$p" 2>/dev/null || true
  wait "$p" 2>/dev/null || true
done
echo "smoke: all checks passed"
