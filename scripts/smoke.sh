#!/usr/bin/env sh
# Smoke test: boot eppi-serve on a demo index, run one query, and assert
# the observability surface works end to end — /v1/healthz answers,
# /v1/query returns providers, /v1/metrics exposes the runtime gauges,
# and /v1/traces serves a non-empty Chrome trace whose root span is the
# query request. Used by CI; runnable locally via `make smoke`.
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="${SMOKE_BIN:-./eppi-serve-smoke}"

go build -o "$BIN" ./cmd/eppi-serve

"$BIN" -addr "$ADDR" -providers 20 -owners 8 -log-format json &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$BIN"' EXIT

# Wait for the server to come up (up to ~5s).
i=0
until curl -sf "$BASE/v1/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "smoke: server did not come up on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

echo "smoke: healthz ok"

# One query (owner names are URLs; escape the owner:// scheme).
QUERY_OUT=$(curl -sf "$BASE/v1/query?owner=owner%3A%2F%2Fsite-0.example.org")
echo "$QUERY_OUT" | grep -q '"providers"' || {
  echo "smoke: query response missing providers: $QUERY_OUT" >&2
  exit 1
}
echo "smoke: query ok"

# Metrics must include the runtime telemetry refreshed on scrape.
METRICS_OUT=$(curl -sf "$BASE/v1/metrics")
echo "$METRICS_OUT" | grep -q '^eppi_go_goroutines' || {
  echo "smoke: metrics missing runtime telemetry" >&2
  exit 1
}
echo "smoke: metrics ok"

# The trace ring must hold the query's trace: valid Chrome trace JSON
# with an http.query root span.
TRACES_OUT=$(curl -sf "$BASE/v1/traces")
echo "$TRACES_OUT" | grep -q '"traceEvents"' || {
  echo "smoke: /v1/traces is not Chrome trace JSON: $TRACES_OUT" >&2
  exit 1
}
echo "$TRACES_OUT" | grep -q '"http.query"' || {
  echo "smoke: trace ring holds no http.query root span: $TRACES_OUT" >&2
  exit 1
}
echo "smoke: traces ok"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
echo "smoke: all checks passed"
