#!/usr/bin/env sh
# Smoke test: boot eppi-serve on a demo index, run one query, and assert
# the observability surface works end to end — /v1/healthz answers,
# /v1/query returns providers, /v1/metrics exposes the runtime gauges,
# and /v1/traces serves a non-empty Chrome trace whose root span is the
# query request. Then boot the distributed layer — two eppi-serve shard
# nodes plus eppi-gateway — and assert a routed lookup answers through
# the gateway. Finally exercise the epoch lifecycle: publish an epoch
# store, boot a hot-reloading fleet from it, publish a second epoch
# mid-run, and assert the fleet swaps, the gateway's answer changes, and
# /v1/privacy serves each published epoch's verified privacy report on
# the node and aggregated through the gateway. Last, the replication
# path: boot eppi-origin over the store, boot a node with an empty local
# cache and -epoch-origin, and assert it converges to the origin's
# epoch and answers queries from the mirrored index.
# Used by CI; runnable locally via `make smoke`.
#
# Set SMOKE_ARTIFACT_DIR to persist debugging artifacts (final metrics
# snapshots, the audit log, each epoch's privacy.json) on exit — CI
# uploads that directory when the run fails.
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="${SMOKE_BIN:-./eppi-serve-smoke}"
GW_BIN="${SMOKE_GW_BIN:-./eppi-gateway-smoke}"
CON_BIN="${SMOKE_CON_BIN:-./eppi-construct-smoke}"
SHARD0_ADDR="${SMOKE_SHARD0_ADDR:-127.0.0.1:18081}"
SHARD1_ADDR="${SMOKE_SHARD1_ADDR:-127.0.0.1:18082}"
GW_ADDR="${SMOKE_GW_ADDR:-127.0.0.1:18090}"
EP0_ADDR="${SMOKE_EP0_ADDR:-127.0.0.1:18083}"
EP1_ADDR="${SMOKE_EP1_ADDR:-127.0.0.1:18084}"
EPGW_ADDR="${SMOKE_EPGW_ADDR:-127.0.0.1:18091}"
ORIGIN_BIN="${SMOKE_ORIGIN_BIN:-./eppi-origin-smoke}"
ORIGIN_ADDR="${SMOKE_ORIGIN_ADDR:-127.0.0.1:18092}"
REP_ADDR="${SMOKE_REP_ADDR:-127.0.0.1:18085}"

go build -o "$BIN" ./cmd/eppi-serve
go build -o "$GW_BIN" ./cmd/eppi-gateway
go build -o "$CON_BIN" ./cmd/eppi-construct
go build -o "$ORIGIN_BIN" ./cmd/eppi-origin

STORE=$(mktemp -d)
AUDIT=$(mktemp -d)
MIRROR_CACHE=$(mktemp -d)
ART="${SMOKE_ARTIFACT_DIR:-}"

# collect_artifacts snapshots whatever observability state is reachable
# into $ART — called from the exit trap so a failed run leaves evidence.
collect_artifacts() {
  [ -n "$ART" ] || return 0
  mkdir -p "$ART"
  for a in "$ADDR" "$SHARD0_ADDR" "$SHARD1_ADDR" "$GW_ADDR" "$EP0_ADDR" "$EP1_ADDR" "$EPGW_ADDR" "$REP_ADDR"; do
    curl -sf --max-time 2 "http://$a/v1/metrics" >"$ART/metrics-$a.txt" 2>/dev/null || rm -f "$ART/metrics-$a.txt"
    curl -sf --max-time 2 "http://$a/v1/privacy" >"$ART/privacy-$a.json" 2>/dev/null || rm -f "$ART/privacy-$a.json"
  done
  cp "$AUDIT"/audit-*.jsonl "$ART/" 2>/dev/null || true
  for f in "$STORE"/epochs/*/privacy.json; do
    [ -f "$f" ] || continue
    cp "$f" "$ART/privacy-epoch-$(basename "$(dirname "$f")").json"
  done
}

"$BIN" -addr "$ADDR" -providers 20 -owners 8 -log-format json &
SERVER_PID=$!
PIDS="$SERVER_PID"
trap 'collect_artifacts; for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -f "$BIN" "$GW_BIN" "$CON_BIN" "$ORIGIN_BIN"; rm -rf "$STORE" "$AUDIT" "$MIRROR_CACHE"' EXIT

# Wait for the server to come up (up to ~5s).
i=0
until curl -sf "$BASE/v1/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "smoke: server did not come up on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

echo "smoke: healthz ok"

# One query (owner names are URLs; escape the owner:// scheme).
QUERY_OUT=$(curl -sf "$BASE/v1/query?owner=owner%3A%2F%2Fsite-0.example.org")
echo "$QUERY_OUT" | grep -q '"providers"' || {
  echo "smoke: query response missing providers: $QUERY_OUT" >&2
  exit 1
}
echo "smoke: query ok"

# Metrics must include the runtime telemetry refreshed on scrape.
METRICS_OUT=$(curl -sf "$BASE/v1/metrics")
echo "$METRICS_OUT" | grep -q '^eppi_go_goroutines' || {
  echo "smoke: metrics missing runtime telemetry" >&2
  exit 1
}
echo "smoke: metrics ok"

# The demo construction audits itself: /v1/privacy serves a checksummed
# report with no Eq. 1 violations (Chernoff policy must audit clean).
PRIV_OUT=$(curl -sf "$BASE/v1/privacy")
echo "$PRIV_OUT" | grep -q '"checksum"' || {
  echo "smoke: /v1/privacy report missing checksum: $PRIV_OUT" >&2
  exit 1
}
echo "$PRIV_OUT" | grep -q '"violation_count":0' || {
  echo "smoke: demo construction violates Eq. 1: $PRIV_OUT" >&2
  exit 1
}
# The served report must be aggregates-only: the identity→ε-decile map
# and per-identity counts live in the operator detail, never on the wire.
for leak in identity_buckets false_positives; do
  if echo "$PRIV_OUT" | grep -q "$leak"; then
    echo "smoke: /v1/privacy leaks per-identity data ($leak): $PRIV_OUT" >&2
    exit 1
  fi
done
echo "smoke: privacy report ok"

# The trace ring must hold the query's trace: valid Chrome trace JSON
# with an http.query root span.
TRACES_OUT=$(curl -sf "$BASE/v1/traces")
echo "$TRACES_OUT" | grep -q '"traceEvents"' || {
  echo "smoke: /v1/traces is not Chrome trace JSON: $TRACES_OUT" >&2
  exit 1
}
echo "$TRACES_OUT" | grep -q '"http.query"' || {
  echo "smoke: trace ring holds no http.query root span: $TRACES_OUT" >&2
  exit 1
}
echo "smoke: traces ok"

# --- Distributed layer: 2 shard nodes + gateway -------------------------
# Construction is deterministic under -seed, so two independent processes
# serving -shard 0/2 and -shard 1/2 of the same demo parameters hold
# complementary slices of the same index.
"$BIN" -addr "$SHARD0_ADDR" -providers 20 -owners 8 -shard 0/2 -log-format json &
PIDS="$PIDS $!"
"$BIN" -addr "$SHARD1_ADDR" -providers 20 -owners 8 -shard 1/2 -log-format json &
PIDS="$PIDS $!"

for a in "$SHARD0_ADDR" "$SHARD1_ADDR"; do
  i=0
  until curl -sf "http://$a/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
      echo "smoke: shard node did not come up on $a" >&2
      exit 1
    fi
    sleep 0.1
  done
done

# Shard nodes report their shard identity.
curl -sf "http://$SHARD0_ADDR/v1/healthz" | grep -q '"shard"' || {
  echo "smoke: shard node healthz missing shard identity" >&2
  exit 1
}
echo "smoke: shard nodes ok"

"$GW_BIN" -addr "$GW_ADDR" -shards "http://$SHARD0_ADDR;http://$SHARD1_ADDR" -log-format json &
PIDS="$PIDS $!"
i=0
until curl -sf "http://$GW_ADDR/v1/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "smoke: gateway did not come up on $GW_ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

# A routed lookup through the gateway answers with the same providers the
# single-node server gave.
GW_OUT=$(curl -sf "http://$GW_ADDR/v1/query?owner=owner%3A%2F%2Fsite-0.example.org")
echo "$GW_OUT" | grep -q '"providers"' || {
  echo "smoke: gateway query missing providers: $GW_OUT" >&2
  exit 1
}
[ "$GW_OUT" = "$QUERY_OUT" ] || {
  echo "smoke: gateway answer differs from single-node answer:" >&2
  echo "  gateway:     $GW_OUT" >&2
  echo "  single-node: $QUERY_OUT" >&2
  exit 1
}
# A repeat of the same lookup is a cache hit, visible in gateway metrics.
curl -sf "http://$GW_ADDR/v1/query?owner=owner%3A%2F%2Fsite-0.example.org" >/dev/null
curl -sf "http://$GW_ADDR/v1/metrics" | grep -q '^eppi_gateway_cache_hits_total [1-9]' || {
  echo "smoke: gateway cache hit not counted" >&2
  exit 1
}
echo "smoke: gateway ok"

# --- Epoch lifecycle: publish, hot-swap, gateway invalidation -----------
# Publish epoch 1 into a fresh store, boot a 2-shard hot-reloading fleet
# plus a gateway over it, then publish epoch 2 mid-run (a re-publication
# over a grown provider network) and assert: the nodes hot-swap without
# restarting, the swap is counted, and the gateway's answer changes.
"$CON_BIN" -providers 20 -owners 8 -shards 2 -epoch-dir "$STORE" >/dev/null
[ "$(cat "$STORE/CURRENT")" = "1" ] || {
  echo "smoke: CURRENT after first publish is $(cat "$STORE/CURRENT"), want 1" >&2
  exit 1
}
[ -f "$STORE/epochs/000001/privacy.json" ] || {
  echo "smoke: publish wrote no privacy.json into the epoch store" >&2
  exit 1
}
# The operator-owned store also gets the per-identity detail document,
# for eppi-audit's ε-decile join — filesystem-only, never served.
[ -f "$STORE/epochs/000001/privacy_detail.json" ] || {
  echo "smoke: publish wrote no privacy_detail.json into the epoch store" >&2
  exit 1
}

"$BIN" -addr "$EP0_ADDR" -epoch-dir "$STORE" -shard 0/2 -epoch-poll 200ms -audit-dir "$AUDIT" -log-format json &
PIDS="$PIDS $!"
"$BIN" -addr "$EP1_ADDR" -epoch-dir "$STORE" -shard 1/2 -epoch-poll 200ms -log-format json &
PIDS="$PIDS $!"
for a in "$EP0_ADDR" "$EP1_ADDR"; do
  i=0
  until curl -sf "http://$a/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
      echo "smoke: epoch node did not come up on $a" >&2
      exit 1
    fi
    sleep 0.1
  done
  curl -sf "http://$a/v1/healthz" | grep -q '"epoch":1' || {
    echo "smoke: epoch node on $a not at epoch 1: $(curl -sf "http://$a/v1/healthz")" >&2
    exit 1
  }
done

"$GW_BIN" -addr "$EPGW_ADDR" -shards "http://$EP0_ADDR;http://$EP1_ADDR" -probe 200ms -log-format json &
PIDS="$PIDS $!"
i=0
until curl -sf "http://$EPGW_ADDR/v1/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "smoke: epoch gateway did not come up on $EPGW_ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

EPOCH1_OUT=$(curl -sf "http://$EPGW_ADDR/v1/query?owner=owner%3A%2F%2Fsite-0.example.org")
echo "$EPOCH1_OUT" | grep -q '"providers"' || {
  echo "smoke: epoch-1 gateway query missing providers: $EPOCH1_OUT" >&2
  exit 1
}
echo "smoke: epoch 1 serving ok"

# Each node verifies and serves the published epoch's privacy report,
# and the gateway aggregates a consistent fleet view.
EP0_PRIV=$(curl -sf "http://$EP0_ADDR/v1/privacy")
echo "$EP0_PRIV" | grep -q '"epoch":1' || {
  echo "smoke: node /v1/privacy not serving epoch 1's report" >&2
  exit 1
}
if echo "$EP0_PRIV" | grep -q identity_buckets; then
  echo "smoke: node /v1/privacy leaks the identity→decile map" >&2
  exit 1
fi
EPGW_PRIV=$(curl -sf "http://$EPGW_ADDR/v1/privacy")
echo "$EPGW_PRIV" | grep -q '"status":"ok"' || {
  echo "smoke: gateway privacy aggregate not ok: $EPGW_PRIV" >&2
  exit 1
}
echo "smoke: privacy report served and aggregated"

# Publish epoch 2 with 10 more providers: same owners, different answers.
"$CON_BIN" -providers 30 -owners 8 -shards 2 -epoch-dir "$STORE" >/dev/null
[ "$(cat "$STORE/CURRENT")" = "2" ] || {
  echo "smoke: CURRENT after second publish is $(cat "$STORE/CURRENT"), want 2" >&2
  exit 1
}

# The nodes poll every 200ms; wait for both to report the swap.
for a in "$EP0_ADDR" "$EP1_ADDR"; do
  i=0
  until curl -sf "http://$a/v1/healthz" | grep -q '"epoch":2'; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
      echo "smoke: node on $a never swapped to epoch 2" >&2
      exit 1
    fi
    sleep 0.1
  done
done
for a in "$EP0_ADDR" "$EP1_ADDR"; do
  curl -sf "http://$a/v1/metrics" | grep -q '^eppi_epoch 2' || {
    echo "smoke: node on $a eppi_epoch gauge not at 2" >&2
    exit 1
  }
  curl -sf "http://$a/v1/metrics" | grep -q '^eppi_epoch_swaps_total [1-9]' || {
    echo "smoke: node on $a counted no epoch swap" >&2
    exit 1
  }
done
echo "smoke: fleet hot-swapped to epoch 2"

# The gateway learns the new epoch from its probes; its cached epoch-1
# answer must be invalidated and the fresh answer must differ.
i=0
until curl -sf "http://$EPGW_ADDR/v1/metrics" | grep -q '^eppi_gateway_epoch 2'; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "smoke: gateway never observed epoch 2" >&2
    exit 1
  fi
  sleep 0.1
done
EPOCH2_OUT=$(curl -sf "http://$EPGW_ADDR/v1/query?owner=owner%3A%2F%2Fsite-0.example.org")
[ "$EPOCH2_OUT" != "$EPOCH1_OUT" ] || {
  echo "smoke: gateway answer unchanged across epochs:" >&2
  echo "  epoch 1: $EPOCH1_OUT" >&2
  echo "  epoch 2: $EPOCH2_OUT" >&2
  exit 1
}
echo "smoke: epoch swap visible through gateway"

# The hot swap also swapped the privacy report, and the audited node
# wrote the queries it served to the audit log.
curl -sf "http://$EP0_ADDR/v1/privacy" | grep -q '"epoch":2' || {
  echo "smoke: node /v1/privacy not serving epoch 2's report after swap" >&2
  exit 1
}
ls "$AUDIT"/audit-*.jsonl >/dev/null 2>&1 || {
  echo "smoke: -audit-dir produced no audit log" >&2
  exit 1
}
echo "smoke: privacy report swapped, audit log written"

# --- Replication: origin + mirrored node without shared storage ---------
# The store now holds epochs 1 and 2 (CURRENT=2). Serve it read-only over
# HTTP with eppi-origin and boot a node whose -epoch-dir is an empty
# local cache: it must pull the current epoch over the wire, verify it,
# and serve it — no shared filesystem with the publisher.
"$ORIGIN_BIN" -addr "$ORIGIN_ADDR" -store "$STORE" -log-format json &
PIDS="$PIDS $!"
i=0
until curl -sf "http://$ORIGIN_ADDR/v1/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "smoke: origin did not come up on $ORIGIN_ADDR" >&2
    exit 1
  fi
  sleep 0.1
done
curl -sf "http://$ORIGIN_ADDR/v1/epochs/current" | grep -q '"epoch":2' || {
  echo "smoke: origin not serving epoch 2: $(curl -sf "http://$ORIGIN_ADDR/v1/epochs/current")" >&2
  exit 1
}
# The operator-only privacy detail must never travel over the wire.
if curl -sf "http://$ORIGIN_ADDR/v1/epochs/2/files/privacy_detail.json" >/dev/null 2>&1; then
  echo "smoke: origin served privacy_detail.json" >&2
  exit 1
fi

"$BIN" -addr "$REP_ADDR" -epoch-dir "$MIRROR_CACHE" -epoch-origin "http://$ORIGIN_ADDR" \
  -epoch-sync 200ms -epoch-poll 200ms -shard 0/2 -log-format json &
PIDS="$PIDS $!"
i=0
until curl -sf "http://$REP_ADDR/v1/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "smoke: mirrored node did not come up on $REP_ADDR" >&2
    exit 1
  fi
  sleep 0.1
done
curl -sf "http://$REP_ADDR/v1/healthz" | grep -q '"epoch":2' || {
  echo "smoke: mirrored node not at the origin's epoch: $(curl -sf "http://$REP_ADDR/v1/healthz")" >&2
  exit 1
}
REP_OUT=$(curl -sf "http://$REP_ADDR/v1/query?owner=owner%3A%2F%2Fsite-0.example.org")
echo "$REP_OUT" | grep -q '"providers"' || {
  echo "smoke: mirrored node query missing providers: $REP_OUT" >&2
  exit 1
}
curl -sf "http://$REP_ADDR/v1/metrics" | grep -q '^eppi_replica_bytes_total [1-9]' || {
  echo "smoke: mirrored node counted no replicated bytes" >&2
  exit 1
}
curl -sf "http://$REP_ADDR/v1/metrics" | grep -q '^eppi_replica_lag_epochs 0' || {
  echo "smoke: mirrored node reports non-zero epoch lag after convergence" >&2
  exit 1
}
echo "smoke: replication converged, mirrored node serving"

for p in $PIDS; do
  kill "$p" 2>/dev/null || true
  wait "$p" 2>/dev/null || true
done
echo "smoke: all checks passed"
