#!/bin/sh
# bench_guard.sh BENCH_gateway.json [max-regress]
#
# Fails when the newest BENCH_gateway.json entry's batch warm QPS dropped
# more than max-regress (default 0.20 = 20%) below the previous entry's.
# Run by `make gateway-bench` right after the selfbench appends its entry.
set -eu

baseline=${1:?usage: bench_guard.sh BENCH_gateway.json [max-regress]}
max_regress=${2:-0.20}

cd "$(dirname "$0")/.."
exec go run ./scripts/benchguard -max-regress "$max_regress" "$baseline"
