package main

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func historyFile(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_gateway.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func entryJSON(ts string, qps float64) string {
	return `{"timestamp":"` + ts + `","batch_warm":{"qps":` +
		strconv.FormatFloat(qps, 'f', -1, 64) + `}}`
}

func TestGuardPassesWithinBudget(t *testing.T) {
	path := historyFile(t, "["+entryJSON("t1", 1000)+","+entryJSON("t2", 850)+"]")
	if err := run(path, 0.20); err != nil {
		t.Fatalf("15%% drop failed the 20%% guard: %v", err)
	}
}

func TestGuardFailsOnRegression(t *testing.T) {
	path := historyFile(t, "["+entryJSON("t1", 1000)+","+entryJSON("t2", 799)+"]")
	if err := run(path, 0.20); err == nil {
		t.Fatal("20.1% drop passed the 20% guard")
	}
}

func TestGuardPassesOnImprovement(t *testing.T) {
	path := historyFile(t, "["+entryJSON("t1", 1000)+","+entryJSON("t2", 1500)+"]")
	if err := run(path, 0.20); err != nil {
		t.Fatal(err)
	}
}

func TestGuardComparesLastTwoBatchEntriesOnly(t *testing.T) {
	// The middle entry regressed hard, but the guard judges the newest
	// entry against its immediate batch-bearing predecessor.
	path := historyFile(t, "["+
		entryJSON("t1", 5000)+","+
		entryJSON("t2", 1000)+","+
		entryJSON("t3", 990)+"]")
	if err := run(path, 0.20); err != nil {
		t.Fatalf("newest vs previous is within budget, yet: %v", err)
	}
}

func TestGuardSkipsPreBatchEntries(t *testing.T) {
	// Entries written before the batch pipeline carry no batch_warm and
	// must be invisible to the comparison.
	path := historyFile(t, `[
		{"timestamp":"old1","warm":{"qps":123}},
		`+entryJSON("t1", 1000)+`,
		{"timestamp":"old2"},
		`+entryJSON("t2", 950)+"]")
	if err := run(path, 0.20); err != nil {
		t.Fatal(err)
	}
}

func TestGuardSingleBatchEntryIsBaseline(t *testing.T) {
	path := historyFile(t, "["+entryJSON("t1", 1000)+"]")
	if err := run(path, 0.20); err != nil {
		t.Fatalf("first batch entry must pass (nothing to compare): %v", err)
	}
}

func mpcEntryJSON(ts string, wideInstPerSec float64) string {
	return `{"timestamp":"` + ts + `","wide":{"and_gate_instances_per_sec":` +
		strconv.FormatFloat(wideInstPerSec, 'f', -1, 64) + `}}`
}

func TestMPCGuardPassesWithinBudget(t *testing.T) {
	path := historyFile(t, "["+mpcEntryJSON("t1", 4e7)+","+mpcEntryJSON("t2", 3.4e7)+"]")
	if err := runMPC(path, 0.20); err != nil {
		t.Fatalf("15%% drop failed the 20%% guard: %v", err)
	}
}

func TestMPCGuardFailsOnRegression(t *testing.T) {
	path := historyFile(t, "["+mpcEntryJSON("t1", 4e7)+","+mpcEntryJSON("t2", 3.1e7)+"]")
	if err := runMPC(path, 0.20); err == nil {
		t.Fatal("22.5% throughput drop passed the 20% guard")
	}
}

func TestMPCGuardSingleEntryIsBaseline(t *testing.T) {
	path := historyFile(t, "["+mpcEntryJSON("t1", 4e7)+"]")
	if err := runMPC(path, 0.20); err != nil {
		t.Fatalf("first MPC entry must pass (nothing to compare): %v", err)
	}
}

func TestMPCGuardErrors(t *testing.T) {
	if err := runMPC(filepath.Join(t.TempDir(), "missing.json"), 0.20); err == nil {
		t.Error("missing file passed")
	}
	if err := runMPC(historyFile(t, "{nope"), 0.20); err == nil {
		t.Error("bad JSON passed")
	}
	if err := runMPC(historyFile(t, `[{"timestamp":"t1"}]`), 0.20); err == nil {
		t.Error("history without any wide measurement passed")
	}
}

func TestGuardErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.json"), 0.20); err == nil {
		t.Error("missing file passed")
	}
	if err := run(historyFile(t, "{nope"), 0.20); err == nil {
		t.Error("bad JSON passed")
	}
	if err := run(historyFile(t, `[{"timestamp":"t1"}]`), 0.20); err == nil {
		t.Error("history without any batch measurement passed")
	}
}
