// Command benchguard is the regression gate behind scripts/bench_guard.sh:
// it reads a BENCH_gateway.json history and fails (exit 1) when the newest
// entry's batch warm QPS fell more than the allowed fraction below the
// previous entry that recorded a batch warm phase. Entries written before
// the batched lookup pipeline existed carry no batch fields and are
// skipped, so the guard arms itself automatically once two batch-bearing
// entries exist.
//
// Usage: benchguard [-max-regress 0.20] BENCH_gateway.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type phase struct {
	QPS float64 `json:"qps"`
}

type entry struct {
	Timestamp string `json:"timestamp"`
	BatchWarm *phase `json:"batch_warm"`
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.20, "largest tolerated fractional QPS drop vs the previous entry")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchguard [-max-regress 0.20] BENCH_gateway.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *maxRegress); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(path string, maxRegress float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var history []entry
	if err := json.Unmarshal(raw, &history); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	// Collect the entries that actually measured a batch warm phase, in
	// file order: the last is the run under test, the one before is its
	// baseline.
	var batched []entry
	for _, e := range history {
		if e.BatchWarm != nil && e.BatchWarm.QPS > 0 {
			batched = append(batched, e)
		}
	}
	if len(batched) == 0 {
		return fmt.Errorf("%s has no batch warm measurements", path)
	}
	if len(batched) == 1 {
		fmt.Printf("benchguard: first batch entry (%s), nothing to compare\n", batched[0].Timestamp)
		return nil
	}
	prev, cur := batched[len(batched)-2], batched[len(batched)-1]
	floor := prev.BatchWarm.QPS * (1 - maxRegress)
	if cur.BatchWarm.QPS < floor {
		return fmt.Errorf("batch warm QPS regressed: %.0f -> %.0f (floor %.0f, -%.0f%% allowed; baseline %s)",
			prev.BatchWarm.QPS, cur.BatchWarm.QPS, floor, maxRegress*100, prev.Timestamp)
	}
	fmt.Printf("benchguard: batch warm QPS %.0f vs baseline %.0f (%+.1f%%), within -%.0f%% budget\n",
		cur.BatchWarm.QPS, prev.BatchWarm.QPS,
		(cur.BatchWarm.QPS/prev.BatchWarm.QPS-1)*100, maxRegress*100)
	return nil
}
