// Command benchguard is the regression gate behind scripts/bench_guard.sh
// and `make bench-mpc`: it reads a benchmark JSON history and fails
// (exit 1) when the newest entry fell more than the allowed fraction below
// its predecessor.
//
// Default mode reads a BENCH_gateway.json history and compares the newest
// entry's batch warm QPS against the previous entry that recorded a batch
// warm phase. Entries written before the batched lookup pipeline existed
// carry no batch fields and are skipped, so the guard arms itself
// automatically once two batch-bearing entries exist.
//
// -mpc reads a BENCH_mpc.json history (written by eppi-bench -mpcbench)
// and compares the newest entry's wide AND-gate-instance throughput
// against the previous entry's.
//
// Usage: benchguard [-max-regress 0.20] [-mpc] BENCH_gateway.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type phase struct {
	QPS float64 `json:"qps"`
}

type entry struct {
	Timestamp string `json:"timestamp"`
	BatchWarm *phase `json:"batch_warm"`
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.20, "largest tolerated fractional drop vs the previous entry")
	mpc := flag.Bool("mpc", false, "guard a BENCH_mpc.json history (wide AND-gate-instance throughput) instead of gateway QPS")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchguard [-max-regress 0.20] [-mpc] BENCH_gateway.json")
		os.Exit(2)
	}
	guard := run
	if *mpc {
		guard = runMPC
	}
	if err := guard(flag.Arg(0), *maxRegress); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(path string, maxRegress float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var history []entry
	if err := json.Unmarshal(raw, &history); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	// Collect the entries that actually measured a batch warm phase, in
	// file order: the last is the run under test, the one before is its
	// baseline.
	var batched []entry
	for _, e := range history {
		if e.BatchWarm != nil && e.BatchWarm.QPS > 0 {
			batched = append(batched, e)
		}
	}
	if len(batched) == 0 {
		return fmt.Errorf("%s has no batch warm measurements", path)
	}
	if len(batched) == 1 {
		fmt.Printf("benchguard: first batch entry (%s), nothing to compare\n", batched[0].Timestamp)
		return nil
	}
	prev, cur := batched[len(batched)-2], batched[len(batched)-1]
	floor := prev.BatchWarm.QPS * (1 - maxRegress)
	if cur.BatchWarm.QPS < floor {
		return fmt.Errorf("batch warm QPS regressed: %.0f -> %.0f (floor %.0f, -%.0f%% allowed; baseline %s)",
			prev.BatchWarm.QPS, cur.BatchWarm.QPS, floor, maxRegress*100, prev.Timestamp)
	}
	fmt.Printf("benchguard: batch warm QPS %.0f vs baseline %.0f (%+.1f%%), within -%.0f%% budget\n",
		cur.BatchWarm.QPS, prev.BatchWarm.QPS,
		(cur.BatchWarm.QPS/prev.BatchWarm.QPS-1)*100, maxRegress*100)
	return nil
}

// mpcEntry is the slice of a BENCH_mpc.json record the guard needs: the
// wide evaluator's AND-gate-instance throughput over the CountBelow/Reveal
// stages, the number `make bench-mpc` exists to protect.
type mpcEntry struct {
	Timestamp string `json:"timestamp"`
	Wide      *struct {
		InstPerSec float64 `json:"and_gate_instances_per_sec"`
	} `json:"wide"`
}

func runMPC(path string, maxRegress float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var history []mpcEntry
	if err := json.Unmarshal(raw, &history); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var measured []mpcEntry
	for _, e := range history {
		if e.Wide != nil && e.Wide.InstPerSec > 0 {
			measured = append(measured, e)
		}
	}
	if len(measured) == 0 {
		return fmt.Errorf("%s has no wide MPC measurements", path)
	}
	if len(measured) == 1 {
		fmt.Printf("benchguard: first MPC entry (%s), nothing to compare\n", measured[0].Timestamp)
		return nil
	}
	prev, cur := measured[len(measured)-2], measured[len(measured)-1]
	floor := prev.Wide.InstPerSec * (1 - maxRegress)
	if cur.Wide.InstPerSec < floor {
		return fmt.Errorf("wide MPC throughput regressed: %.3g -> %.3g inst/s (floor %.3g, -%.0f%% allowed; baseline %s)",
			prev.Wide.InstPerSec, cur.Wide.InstPerSec, floor, maxRegress*100, prev.Timestamp)
	}
	fmt.Printf("benchguard: wide MPC %.3g inst/s vs baseline %.3g (%+.1f%%), within -%.0f%% budget\n",
		cur.Wide.InstPerSec, prev.Wide.InstPerSec,
		(cur.Wide.InstPerSec/prev.Wide.InstPerSec-1)*100, maxRegress*100)
	return nil
}
