// Package repro's root benchmark suite: one testing.B benchmark per table
// and figure of the ε-PPI paper's evaluation section. Each benchmark runs
// the corresponding experiment end-to-end (at reduced "quick" scale so the
// full suite stays minutes, not hours; `eppi-bench -experiment <id>` runs
// the paper-scale version and EXPERIMENTS.md records those results).
package repro

import (
	"testing"

	"repro/internal/experiments"
)

func benchOpts(i int) experiments.Options {
	return experiments.Options{Seed: int64(i) + 1, Quick: true}
}

func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4a(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4b(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5a(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5b(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6a(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6aModelled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6aModelled(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6b(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6c(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SearchCost(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMixing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMixing(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationC(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRebuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRebuild(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDepth(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}
