// Package repro's root benchmark suite: one testing.B benchmark per table
// and figure of the ε-PPI paper's evaluation section. Each benchmark runs
// the corresponding experiment end-to-end (at reduced "quick" scale so the
// full suite stays minutes, not hours; `eppi-bench -experiment <id>` runs
// the paper-scale version and EXPERIMENTS.md records those results).
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mathx"
	"repro/internal/workload"
)

func benchOpts(i int) experiments.Options {
	return experiments.Options{Seed: int64(i) + 1, Quick: true}
}

func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4a(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4b(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5a(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5b(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6a(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6aModelled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6aModelled(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6b(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6c(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SearchCost(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMixing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMixing(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationC(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRebuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRebuild(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDepth(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstructParallel measures the construction hot path itself
// (β thresholds, aggregation, mixing, randomized publication) at several
// worker-pool sizes over the quick Fig4a workload. Output is bit-identical
// across sub-benchmarks; only wall time may differ. On a multi-core
// machine NumCPU workers should beat Workers=1 by roughly the core count;
// compare against BENCH_baseline.json for regressions.
func BenchmarkConstructParallel(b *testing.B) {
	const samples = 30
	freqs := make([]int, samples)
	eps := make([]float64, samples)
	for i := range freqs {
		freqs[i] = 100
		eps[i] = 0.8
	}
	d, err := workload.GenerateFixed(workload.FixedConfig{
		Providers:   1000,
		Frequencies: freqs,
		Eps:         eps,
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := core.Config{
				Policy:  mathx.PolicyChernoff,
				Gamma:   0.9,
				Mode:    core.ModeTrusted,
				Seed:    1,
				Workers: workers,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Construct(d.Matrix, d.Eps, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
