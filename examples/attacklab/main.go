// Attack lab: mounts the paper's two attacks — the primary attack and the
// common-identity attack — against three locator-service designs (grouping
// PPI, SS-PPI, ε-PPI) and prints the attacker's measured confidence,
// demonstrating why the ε-PPI defences (quantitative β and identity
// mixing) matter.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/mathx"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		m = 600
		n = 80
	)
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: m, Owners: n, Exponent: 1.3, Seed: 11, EpsLow: 0.5, EpsHigh: 0.9,
	})
	if err != nil {
		return err
	}
	cfg := core.Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: 12, XiOverride: 0.8}
	isCommon := make([]bool, n)
	commons := 0
	for j := 0; j < n; j++ {
		if uint64(d.Matrix.ColCount(j)) >= cfg.Threshold(d.Eps[j], m) {
			isCommon[j] = true
			commons++
		}
	}
	fmt.Printf("network: %d providers, %d owners, %d true common identities\n\n", m, n, commons)

	// --- Primary attack ----------------------------------------------------
	fmt.Println("PRIMARY ATTACK — attacker picks a listed provider and claims membership")
	rng := rand.New(rand.NewSource(13))

	showPrimary := func(system string, published *bitmat.Matrix) error {
		// Attack the highest-ε non-common owner (the most privacy-demanding
		// victim the fp-based guarantee covers).
		victim, bestEps := -1, -1.0
		for j := 0; j < n; j++ {
			if !isCommon[j] && d.Eps[j] > bestEps && d.Matrix.ColCount(j) > 0 {
				victim, bestEps = j, d.Eps[j]
			}
		}
		conf, err := attack.PrimaryConfidence(d.Matrix, published, victim)
		if err != nil {
			return err
		}
		hits, trials := 0, 2000
		for i := 0; i < trials; i++ {
			if ok, attackable := attack.PrimaryAttackTrial(rng, d.Matrix, published, victim); attackable && ok {
				hits++
			}
		}
		fmt.Printf("  %-16s victim ε=%.2f  analytic confidence %.3f  empirical %.3f  bound(1−ε)=%.3f\n",
			system, bestEps, conf, float64(hits)/float64(trials), 1-bestEps)
		return nil
	}

	gr, err := grouping.Construct(d.Matrix, grouping.Config{Groups: m / 4, Variant: grouping.VariantBawa, Seed: 14})
	if err != nil {
		return err
	}
	if err := showPrimary("grouping PPI", gr.Published); err != nil {
		return err
	}
	ep, err := core.Construct(d.Matrix, d.Eps, cfg)
	if err != nil {
		return err
	}
	if err := showPrimary("ε-PPI", ep.Published); err != nil {
		return err
	}

	// --- Common-identity attack --------------------------------------------
	fmt.Println("\nCOMMON-IDENTITY ATTACK — attacker hunts owners that visit almost everywhere")

	// Grouping PPI: the public index shows which identities saturate all
	// groups.
	grRes, err := attack.CommonIdentityAttack(attack.PublishedFrequencies(gr.Published), uint64(m), isCommon)
	if err != nil {
		return err
	}
	fmt.Printf("  %-16s picked %d identities, confidence %.3f (data-dependent: NO GUARANTEE)\n",
		"grouping PPI", len(grRes.Picked), grRes.Confidence)

	// SS-PPI: exact frequencies leak during construction.
	ss, err := grouping.Construct(d.Matrix, grouping.Config{Groups: m / 4, Variant: grouping.VariantSSPPI, Seed: 15})
	if err != nil {
		return err
	}
	minCommon := uint64(m)
	for j := 0; j < n; j++ {
		if isCommon[j] && uint64(d.Matrix.ColCount(j)) < minCommon {
			minCommon = uint64(d.Matrix.ColCount(j))
		}
	}
	ssRes, err := attack.CommonIdentityAttack(ss.LeakedFrequencies, minCommon, isCommon)
	if err != nil {
		return err
	}
	fmt.Printf("  %-16s picked %d identities, confidence %.3f (exact leak: NO PROTECT)\n",
		"SS-PPI", len(ssRes.Picked), ssRes.Confidence)

	// ε-PPI: mixing plants false commons; the published common set contains
	// ≥ ξ impostors.
	epRes, err := attack.CommonIdentityAttack(attack.PublishedFrequencies(ep.Published), uint64(m), isCommon)
	if err != nil {
		return err
	}
	fmt.Printf("  %-16s picked %d identities, confidence %.3f (target ≤ 1−ξ = %.2f: ε-PRIVATE)\n",
		"ε-PPI", len(epRes.Picked), epRes.Confidence, 1-ep.Xi)

	fmt.Println("\nε-PPI bounds both attacks quantitatively; the baselines do not.")
	return nil
}
