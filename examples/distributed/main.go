// Distributed construction: runs the paper's actual secure protocol — the
// SecSumShare secure sum over every provider followed by two GMW
// multi-party computations among c = 3 coordinators — over real TCP
// loopback sockets, and prints the protocol accounting (rounds, messages,
// bytes, circuit sizes).
//
// This is the configuration of the paper's Figure 6 experiments, shrunk to
// a single machine: every provider is a separate protocol party with its
// own TCP endpoints; nothing but protocol messages crosses between them.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/eppi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	providerNames := []string{
		"hospital-a", "hospital-b", "hospital-c", "hospital-d",
		"hospital-e", "hospital-f", "hospital-g", "hospital-h",
	}
	net, err := eppi.NewNetwork(providerNames)
	if err != nil {
		return err
	}

	// A handful of patients, including one who visits every hospital (a
	// true common identity that the protocol must hide) and one VIP.
	delegations := []struct {
		provider int
		owner    string
		eps      float64
	}{
		{0, "frequent-flyer", 0.6}, {1, "frequent-flyer", 0.6}, {2, "frequent-flyer", 0.6},
		{3, "frequent-flyer", 0.6}, {4, "frequent-flyer", 0.6}, {5, "frequent-flyer", 0.6},
		{6, "frequent-flyer", 0.6}, {7, "frequent-flyer", 0.6},
		{0, "vip", 0.9}, {2, "vip", 0.9},
		{1, "alice", 0.5}, {4, "alice", 0.5},
		{3, "bob", 0.4},
		{5, "carol", 0.7}, {6, "carol", 0.7},
	}
	for _, d := range delegations {
		if err := net.Delegate(d.provider, eppi.Record{Owner: d.owner, Kind: "chart", Body: "…"}, d.eps); err != nil {
			return err
		}
	}

	fmt.Printf("running secure construction over TCP: %d providers, c=3 coordinators\n", len(providerNames))
	start := time.Now()
	report, err := net.ConstructPPI(eppi.WithSecure(3), eppi.WithTCP(), eppi.WithChernoff(0.9), eppi.WithSeed(3))
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	s := report.Secure
	fmt.Printf("construction completed in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  SecSumShare stage: %d rounds, %d messages, %d bytes across %d providers\n",
		s.SecSumRounds, s.SecSum.Messages, s.SecSum.Bytes, len(providerNames))
	fmt.Printf("  CountBelow circuit: %d gates (%d AND, depth %d)\n",
		s.CountBelowCircuit.Gates, s.CountBelowCircuit.AndGates, s.CountBelowCircuit.AndDepth)
	fmt.Printf("  Reveal circuit:     %d gates (%d AND, depth %d)\n",
		s.RevealCircuit.Gates, s.RevealCircuit.AndGates, s.RevealCircuit.AndDepth)
	fmt.Printf("  coordinator MPC:    %d rounds, %d messages, %d bytes\n",
		s.MPCRounds, s.MPC.Messages, s.MPC.Bytes)
	fmt.Printf("  commons hidden: %d true common(s), λ=%.3f mixing\n", report.CommonCount, report.Lambda)

	for _, o := range report.Owners {
		fmt.Printf("  owner %-15s ε=%.1f β=%.3f hidden=%v\n", o.Owner, o.Epsilon, o.Beta, o.Hidden)
	}

	// The index works exactly like the trusted-mode one.
	net.GrantAll("dr")
	searcher, err := net.NewSearcher("dr")
	if err != nil {
		return err
	}
	res, err := searcher.Search("alice")
	if err != nil {
		return err
	}
	fmt.Printf("two-phase search for alice: %d contacted, %d records (recall 100%%)\n",
		res.Contacted, len(res.Records))
	return nil
}
