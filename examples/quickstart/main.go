// Quickstart: the smallest end-to-end ε-PPI session — delegate records to
// a few providers with personalized privacy degrees, construct the index,
// and run a two-phase search.
package main

import (
	"fmt"
	"log"

	"repro/eppi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An information network of twelve autonomous providers. (Quantitative
	// privacy needs enough negative providers to hide among: in tiny
	// networks the index degenerates to broadcast.)
	names := make([]string, 12)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	net, err := eppi.NewNetwork(names)
	if err != nil {
		return err
	}

	// Owners delegate records with personal privacy degrees ε ∈ [0, 1]:
	// 0 publishes the truthful provider list; 1 broadcasts to everyone.
	if err := net.Delegate(0, eppi.Record{Owner: "alice", Kind: "note", Body: "alice@p0"}, 0.5); err != nil {
		return err
	}
	if err := net.Delegate(3, eppi.Record{Owner: "alice", Kind: "note", Body: "alice@p3"}, 0.5); err != nil {
		return err
	}
	if err := net.Delegate(1, eppi.Record{Owner: "bob", Kind: "note", Body: "bob@p1"}, 0.0); err != nil {
		return err
	}

	// All providers jointly construct the privacy preserving index.
	report, err := net.ConstructPPI(eppi.WithChernoff(0.9), eppi.WithSeed(1))
	if err != nil {
		return err
	}
	for _, o := range report.Owners {
		fmt.Printf("owner %-6s ε=%.1f → β=%.3f hidden=%v\n", o.Owner, o.Epsilon, o.Beta, o.Hidden)
	}

	// Phase 1: QueryPPI returns true providers plus privacy noise.
	candidates, err := net.Query("alice")
	if err != nil {
		return err
	}
	fmt.Printf("QueryPPI(alice) → providers %v (noise obscures the true set {0, 3})\n", candidates)

	// Phase 2: AuthSearch at each candidate, gated by per-provider ACLs.
	net.GrantAll("searcher-1")
	s, err := net.NewSearcher("searcher-1")
	if err != nil {
		return err
	}
	res, err := s.Search("alice")
	if err != nil {
		return err
	}
	fmt.Printf("two-phase search: contacted %d, %d true, %d noise, %d records\n",
		res.Contacted, res.TruePositives, res.FalsePositives, len(res.Records))
	for _, r := range res.Records {
		fmt.Printf("  record: %s\n", r.Body)
	}
	return nil
}
