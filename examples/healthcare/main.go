// Healthcare Information Exchange scenario — the paper's motivating
// application. A state-wide network of hospitals shares patient records:
//
//   - an unconscious patient arrives at an ER; the doctor uses the record
//     locator service to find the hospitals holding the patient's history;
//   - a celebrity patient sets a high ε so that her visit to a sensitive
//     clinic cannot be inferred from the locator service;
//   - an average patient keeps a modest ε and pays little search overhead.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/eppi"
)

const patients = 40

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	hospitals := []string{
		"county-general", "st-marys", "university-medical", "womens-health-center",
		"childrens-hospital", "oncology-institute", "veterans-affairs", "riverside-clinic",
		"eastside-urgent-care", "downtown-er",
	}
	net, err := eppi.NewNetwork(hospitals)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(7))

	// Average patients: records at 1-3 hospitals, ε = 0.4.
	for p := 0; p < patients; p++ {
		id := fmt.Sprintf("patient-%03d", p)
		visits := 1 + rng.Intn(3)
		for v := 0; v < visits; v++ {
			h := rng.Intn(len(hospitals))
			rec := eppi.Record{Owner: id, Kind: "encounter", Body: fmt.Sprintf("%s visit #%d at %s", id, v, hospitals[h])}
			if err := net.Delegate(h, rec, 0.4); err != nil {
				return err
			}
		}
	}

	// A celebrity with a sensitive visit: ε = 0.95 at the women's health
	// center, because even one confirmed association is a tabloid story.
	celebrity := "celebrity-jane"
	if err := net.Delegate(3, eppi.Record{Owner: celebrity, Kind: "encounter", Body: "confidential"}, 0.95); err != nil {
		return err
	}
	if err := net.Delegate(0, eppi.Record{Owner: celebrity, Kind: "encounter", Body: "routine checkup"}, 0.95); err != nil {
		return err
	}

	// An unconscious ER arrival whose history matters: stored at three
	// hospitals with default privacy.
	emergency := "patient-er-999"
	for _, h := range []int{1, 2, 6} {
		rec := eppi.Record{Owner: emergency, Kind: "history", Body: fmt.Sprintf("%s chart at %s", emergency, hospitals[h])}
		if err := net.Delegate(h, rec, 0.4); err != nil {
			return err
		}
	}

	report, err := net.ConstructPPI(eppi.WithChernoff(0.9), eppi.WithSeed(7))
	if err != nil {
		return err
	}
	fmt.Printf("HIE index over %d hospitals, %d patients; search cost %d (true bits would be fewer)\n",
		len(hospitals), len(report.Owners), report.SearchCost)

	// --- ER doctor retrieves the unconscious patient's history ------------
	net.GrantAll("dr-er") // emergency break-glass authorization
	er, err := net.NewSearcher("dr-er")
	if err != nil {
		return err
	}
	res, err := er.Search(emergency)
	if err != nil {
		return err
	}
	fmt.Printf("\nER lookup for %s: contacted %d hospitals, recovered %d records (recall is always 100%%)\n",
		emergency, res.Contacted, len(res.Records))
	for _, r := range res.Records {
		fmt.Printf("  %s\n", r.Body)
	}

	// --- A curious observer attacks the celebrity -------------------------
	// The attacker sees only the public index: the candidate list for the
	// celebrity. With ε = 0.95 and just 10 hospitals, the best achievable
	// false-positive rate is (m − f)/m = 0.8, so the index broadcasts her
	// identity to every hospital — the maximum protection a 10-provider
	// network can offer (a 10,000-hospital network would meet 0.95 without
	// broadcasting).
	candidates, err := net.Query(celebrity)
	if err != nil {
		return err
	}
	fmt.Printf("\nattacker view of %s: %d of %d hospitals listed — confidence per pick ≈ %.2f (the floor for m=%d)\n",
		celebrity, len(candidates), len(hospitals), 2.0/float64(len(candidates)), len(hospitals))

	// The celebrity's doctor, properly authorized only where she is a
	// patient, still finds everything.
	if err := net.Grant(3, "dr-primary"); err != nil {
		return err
	}
	if err := net.Grant(0, "dr-primary"); err != nil {
		return err
	}
	doc, err := net.NewSearcher("dr-primary")
	if err != nil {
		return err
	}
	dres, err := doc.Search(celebrity)
	if err != nil {
		return err
	}
	fmt.Printf("authorized doctor: %d records found, %d hospitals denied access\n", len(dres.Records), dres.Denied)
	return nil
}
