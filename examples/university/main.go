// Cross-university course network — the paper's second motivating domain
// (Coursera/StudIP-style federations). Universities hold students' course
// records; a third-party directory hosts the privacy preserving index so
// that an advisor can locate a transfer student's records without the
// directory learning which universities a student actually attended.
//
// This example also demonstrates the deployment split: the index is
// constructed inside the university network, serialized with WriteIndex,
// and served by an untrusted HostedService loaded from those bytes.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/eppi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	universities := []string{
		"state-u", "tech-institute", "liberal-arts-college", "online-u",
		"community-college", "medical-school", "law-school", "music-academy",
		"polytechnic", "open-university", "night-school", "grande-ecole",
	}
	net, err := eppi.NewNetwork(universities)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(99))
	// Regular students attend 1-2 institutions, default privacy 0.3.
	for s := 0; s < 60; s++ {
		id := fmt.Sprintf("student-%03d", s)
		for v := 0; v < 1+rng.Intn(2); v++ {
			u := rng.Intn(len(universities))
			rec := eppi.Record{Owner: id, Kind: "transcript", Body: fmt.Sprintf("%s grades at %s", id, universities[u])}
			if err := net.Delegate(u, rec, 0.3); err != nil {
				return err
			}
		}
	}
	// A public figure taking a night-school course privately: high ε.
	if err := net.Delegate(10, eppi.Record{Owner: "senator-smith", Kind: "transcript", Body: "intro to pottery: A-"}, 0.9); err != nil {
		return err
	}
	// A lifelong learner enrolled everywhere — a common identity the
	// directory must not expose as such.
	for u := range universities {
		rec := eppi.Record{Owner: "lifelong-learner", Kind: "transcript", Body: fmt.Sprintf("course at %s", universities[u])}
		if err := net.Delegate(u, rec, 0.6); err != nil {
			return err
		}
	}

	report, err := net.ConstructPPI(eppi.WithChernoff(0.9), eppi.WithSeed(99))
	if err != nil {
		return err
	}
	fmt.Printf("constructed index: %d students, %d common identit(ies) hidden by λ=%.3f mixing\n",
		len(report.Owners), report.CommonCount, report.Lambda)

	// Export the index to the untrusted directory service.
	var wire bytes.Buffer
	n, err := net.WriteIndex(&wire)
	if err != nil {
		return err
	}
	fmt.Printf("exported index: %d bytes shipped to the third-party directory\n", n)
	directory, err := eppi.ReadHostedService(&wire)
	if err != nil {
		return err
	}

	// An advisor locates a transfer student through the directory, then
	// authenticates at each candidate university.
	target := "student-007"
	candidates, err := directory.Query(target)
	if err != nil {
		return err
	}
	fmt.Printf("\ndirectory lookup for %s: %d candidate universities (including privacy noise)\n",
		target, len(candidates))
	net.GrantAll("advisor-jones")
	advisor, err := net.NewSearcher("advisor-jones")
	if err != nil {
		return err
	}
	res, err := advisor.Search(target)
	if err != nil {
		return err
	}
	fmt.Printf("after AuthSearch: %d transcripts found, %d noise universities visited\n",
		len(res.Records), res.FalsePositives)

	// The directory cannot tell which universities the senator attended…
	senList, err := directory.Query("senator-smith")
	if err != nil {
		return err
	}
	fmt.Printf("\ndirectory view of senator-smith: %d of %d universities listed (true: 1)\n",
		len(senList), len(universities))
	// …and the lifelong learner is indistinguishable from mixed-in
	// identities published at every university.
	fullColumns := 0
	for _, o := range report.Owners {
		if o.Hidden {
			fullColumns++
		}
	}
	fmt.Printf("identities published everywhere: %d (only %d truly common)\n",
		fullColumns, report.CommonCount)
	return nil
}
