package circuit

import (
	"fmt"
	"sync"
)

// Compilation cache. The secure construction pipeline used to recompile an
// identical CountBelow circuit for every identity batch — compilation (gate
// emission, constant folding, round scheduling) is pure CPU waste when the
// parameters repeat, and the wide slab path leans on exactly that reuse:
// one CountBelowSlice/RevealSlice compile serves every slab of a
// construction. Compiled *Circuit values are immutable after Build (the
// GMW evaluator already shares one circuit across all party goroutines),
// so handing the same pointer to every caller is safe.
//
// The cache is a bounded FIFO keyed by the full parameter set. Thresholds
// participate in the key, so per-batch threshold vectors only hit when the
// batch genuinely repeats (same policy, same batch bounds) — which is the
// common case across construction reruns, worker counts, and experiment
// sweeps within one process.

const cacheLimit = 128

var compileCache = struct {
	sync.Mutex
	circuits map[string]*Circuit
	order    []string // insertion order for FIFO eviction
}{circuits: make(map[string]*Circuit)}

// cachedCompile returns the memoized circuit for key, compiling and
// inserting on miss. Errors are not cached: invalid parameters are a
// caller bug and the recompile cost of reporting them twice is irrelevant.
func cachedCompile(key string, compile func() (*Circuit, error)) (*Circuit, error) {
	compileCache.Lock()
	if c, ok := compileCache.circuits[key]; ok {
		compileCache.Unlock()
		return c, nil
	}
	compileCache.Unlock()

	// Compile outside the lock: slab circuits are cheap but per-batch
	// scalar circuits are not, and a miss must not serialize every other
	// caller behind it. A racing duplicate compile is harmless — last
	// writer wins and both results are equivalent.
	c, err := compile()
	if err != nil {
		return nil, err
	}

	compileCache.Lock()
	defer compileCache.Unlock()
	if prev, ok := compileCache.circuits[key]; ok {
		return prev, nil // racer got there first; keep one canonical copy
	}
	if len(compileCache.order) >= cacheLimit {
		oldest := compileCache.order[0]
		compileCache.order = compileCache.order[1:]
		delete(compileCache.circuits, oldest)
	}
	compileCache.circuits[key] = c
	compileCache.order = append(compileCache.order, key)
	return c, nil
}

// cacheSize reports the number of cached circuits (tests only).
func cacheSize() int {
	compileCache.Lock()
	defer compileCache.Unlock()
	return len(compileCache.circuits)
}

// CountBelowCached is CountBelow memoized by its full parameter set.
func CountBelowCached(p CountBelowParams) (*Circuit, error) {
	key := fmt.Sprintf("cb|%d|%d|%d|%d|%v", p.Parties, p.Identities, p.ShareBits, p.Arithmetic, p.Thresholds)
	return cachedCompile(key, func() (*Circuit, error) { return CountBelow(p) })
}

// RevealCached is Reveal memoized by its full parameter set.
func RevealCached(p RevealParams) (*Circuit, error) {
	key := fmt.Sprintf("rv|%d|%d|%d|%d|%d|%d|%v",
		p.Parties, p.Identities, p.ShareBits, p.CoinBits, p.MixThreshold, p.Arithmetic, p.Thresholds)
	return cachedCompile(key, func() (*Circuit, error) { return Reveal(p) })
}

// CountBelowSliceCached is CountBelowSlice memoized by its parameters.
func CountBelowSliceCached(p SliceParams) (*Circuit, error) {
	key := fmt.Sprintf("cbs|%d|%d|%d", p.Parties, p.ShareBits, p.Arithmetic)
	return cachedCompile(key, func() (*Circuit, error) { return CountBelowSlice(p) })
}

// RevealSliceCached is RevealSlice memoized by its parameters.
func RevealSliceCached(p SliceParams) (*Circuit, error) {
	key := fmt.Sprintf("rvs|%d|%d|%d|%d|%d", p.Parties, p.ShareBits, p.CoinBits, p.MixThreshold, p.Arithmetic)
	return cachedCompile(key, func() (*Circuit, error) { return RevealSlice(p) })
}

// SliceCountCached is SliceCount memoized by its parameters.
func SliceCountCached(p SliceCountParams) (*Circuit, error) {
	key := fmt.Sprintf("sc|%d|%d|%d", p.Parties, p.Slots, p.Arithmetic)
	return cachedCompile(key, func() (*Circuit, error) { return SliceCount(p) })
}
