package circuit

import "fmt"

// Word-level building blocks. All vectors are little-endian (index 0 is the
// least significant bit). Widths are fixed: arithmetic wraps modulo 2^width,
// which is exactly the share-group reduction the CountBelow pipeline needs.

// ConstVec returns the width-bit constant v as a vector of constant wires
// (folded into downstream gates at build time).
func ConstVec(v uint64, width int) []Wire {
	out := make([]Wire, width)
	for i := range out {
		if v>>uint(i)&1 == 1 {
			out[i] = One
		} else {
			out[i] = Zero
		}
	}
	return out
}

// Add returns a + b modulo 2^len(a), using the builder's adder style
// (ripple by default; SetStyle(StylePrefix) switches to log-depth
// Kogge–Stone). Vectors must have equal width.
func (b *Builder) Add(x, y []Wire) ([]Wire, error) {
	if b.style == StylePrefix {
		return b.addPrefix(x, y)
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("circuit: adder width mismatch %d vs %d", len(x), len(y))
	}
	out := make([]Wire, len(x))
	carry := Zero
	for i := range x {
		// Full adder: sum = x ⊕ y ⊕ cin; cout = (x⊕cin)(y⊕cin) ⊕ cin.
		xi, yi := x[i], y[i]
		axc := b.XOR(xi, carry)
		out[i] = b.XOR(axc, yi)
		if i < len(x)-1 { // final carry is dropped (mod 2^width)
			ayc := b.XOR(yi, carry)
			carry = b.XOR(b.AND(axc, ayc), carry)
		}
	}
	return out, nil
}

// AddWide returns a + b with one extra output bit (no wraparound).
func (b *Builder) AddWide(x, y []Wire) ([]Wire, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("circuit: adder width mismatch %d vs %d", len(x), len(y))
	}
	out := make([]Wire, len(x)+1)
	carry := Zero
	for i := range x {
		xi, yi := x[i], y[i]
		axc := b.XOR(xi, carry)
		ayc := b.XOR(yi, carry)
		out[i] = b.XOR(axc, yi)
		carry = b.XOR(b.AND(axc, ayc), carry)
	}
	out[len(x)] = carry
	return out, nil
}

// SumMod returns the sum of all vectors modulo 2^width. Vectors must share
// one width; at least one vector is required.
func (b *Builder) SumMod(vecs [][]Wire) ([]Wire, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("circuit: SumMod of no vectors")
	}
	acc := vecs[0]
	for _, v := range vecs[1:] {
		var err error
		acc, err = b.Add(acc, v)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// LessThan returns the single wire (x < y) for unsigned little-endian
// vectors of equal width, via the borrow of x − y (or the prefix carry
// network when the builder style is StylePrefix).
func (b *Builder) LessThan(x, y []Wire) (Wire, error) {
	if b.style == StylePrefix {
		return b.lessThanPrefix(x, y)
	}
	if len(x) != len(y) {
		return Zero, fmt.Errorf("circuit: comparator width mismatch %d vs %d", len(x), len(y))
	}
	// borrow_{i+1} = (¬x_i ∧ y_i) ∨ (¬(x_i ⊕ y_i) ∧ borrow_i)
	//             = ((x_i ⊕ borrow_i) ∧ (y_i ⊕ borrow_i)) ⊕ borrow_i  — same
	// trick as the adder carry with x negated; we use the direct form.
	borrow := Zero
	for i := range x {
		xb := b.XOR(x[i], borrow)
		yb := b.XOR(y[i], borrow)
		borrow = b.XOR(b.AND(b.NOT(xb), yb), borrow)
	}
	return borrow, nil
}

// GreaterEq returns (x >= y) = ¬(x < y).
func (b *Builder) GreaterEq(x, y []Wire) (Wire, error) {
	lt, err := b.LessThan(x, y)
	if err != nil {
		return Zero, err
	}
	return b.NOT(lt), nil
}

// Equal returns the single wire (x == y).
func (b *Builder) Equal(x, y []Wire) (Wire, error) {
	if len(x) != len(y) {
		return Zero, fmt.Errorf("circuit: equality width mismatch %d vs %d", len(x), len(y))
	}
	acc := One
	for i := range x {
		acc = b.AND(acc, b.NOT(b.XOR(x[i], y[i])))
	}
	return acc, nil
}

// PopCount sums n single-bit wires into a counter of width
// ceil(log2(n+1)) using a balanced adder tree.
func (b *Builder) PopCount(bits []Wire) ([]Wire, error) {
	if len(bits) == 0 {
		return nil, fmt.Errorf("circuit: PopCount of no bits")
	}
	width := 1
	for 1<<uint(width) < len(bits)+1 {
		width++
	}
	// Promote each bit to a width-bit vector, then tree-sum.
	vecs := make([][]Wire, len(bits))
	for i, bit := range bits {
		v := make([]Wire, width)
		v[0] = bit
		for k := 1; k < width; k++ {
			v[k] = Zero
		}
		vecs[i] = v
	}
	for len(vecs) > 1 {
		next := make([][]Wire, 0, (len(vecs)+1)/2)
		for i := 0; i+1 < len(vecs); i += 2 {
			s, err := b.Add(vecs[i], vecs[i+1])
			if err != nil {
				return nil, err
			}
			next = append(next, s)
		}
		if len(vecs)%2 == 1 {
			next = append(next, vecs[len(vecs)-1])
		}
		vecs = next
	}
	return vecs[0], nil
}

// BitsNeeded returns the minimal width representing values 0..maxValue.
func BitsNeeded(maxValue uint64) int {
	w := 1
	for maxValue>>uint(w) != 0 {
		w++
	}
	return w
}

// PackBits converts a uint64 to width little-endian bools.
func PackBits(v uint64, width int) []bool {
	out := make([]bool, width)
	for i := range out {
		out[i] = v>>uint(i)&1 == 1
	}
	return out
}

// UnpackBits converts little-endian bools back to a uint64.
func UnpackBits(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
