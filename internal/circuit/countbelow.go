package circuit

import (
	"errors"
	"fmt"
)

// This file compiles the CountBelow program (Algorithm 2 of the ε-PPI
// paper) to a boolean circuit, playing the role of FairplayMP's SFDL
// compiler. Two variants are provided:
//
//   - CountBelow: the ε-PPI (MPC-reduced) form. The parties are the c
//     coordinators; party k supplies, per identity j, its k-bit share
//     s(k, j) of the frequency. The circuit reconstructs each frequency
//     as Σ_k s(k,j) mod 2^width and compares it against the identity's
//     public threshold, then outputs only the count of identities at or
//     above threshold (the common-identity count that Equation 7 needs).
//
//   - PureMPC: the baseline form without SecSumShare. The parties are all
//     m providers; party i supplies its raw membership *bit* per identity,
//     and the circuit both aggregates (popcount over m bits per identity)
//     and thresholds. Its size grows with m, which is exactly the
//     super-linear cost Figure 6 attributes to the pure-MPC approach.
//
// Note on naming: the paper's Algorithm 2 counts elements *below* the
// threshold but its Algorithm 1 consumes Σ 1{σ ≥ σ'}; the two differ only
// by n − count. We follow Algorithm 1 and output the ≥-count.

// ErrNoParams reports invalid compiler parameters.
var ErrNoParams = errors.New("circuit: invalid CountBelow parameters")

// CountBelowParams configures the MPC-reduced CountBelow compilation.
type CountBelowParams struct {
	// Parties is c, the number of coordinators (each holding one share
	// vector).
	Parties int
	// Identities is the number of identities processed by the circuit.
	Identities int
	// ShareBits is the width of each share (the group is Z_{2^ShareBits});
	// it must satisfy 2^ShareBits > m so frequencies don't wrap.
	ShareBits int
	// Thresholds holds the public per-identity thresholds t_j = σ'_j · m,
	// one per identity.
	Thresholds []uint64
	// Arithmetic selects ripple (default) or log-depth prefix arithmetic.
	Arithmetic Style
}

// CountBelow compiles the MPC-reduced CountBelow circuit.
func CountBelow(p CountBelowParams) (*Circuit, error) {
	if p.Parties < 2 || p.Identities < 1 || p.ShareBits < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrNoParams, p)
	}
	if len(p.Thresholds) != p.Identities {
		return nil, fmt.Errorf("%w: %d thresholds for %d identities", ErrNoParams, len(p.Thresholds), p.Identities)
	}
	for j, t := range p.Thresholds {
		if t == 0 {
			// A zero threshold marks every identity common and degenerates
			// the whole comparator to a constant; callers must clamp to 1.
			return nil, fmt.Errorf("%w: zero threshold (identity %d)", ErrNoParams, j)
		}
		if BitsNeeded(t) > p.ShareBits {
			return nil, fmt.Errorf("%w: threshold %d (identity %d) exceeds %d bits", ErrNoParams, t, j, p.ShareBits)
		}
	}
	b := NewBuilder()
	b.SetStyle(p.Arithmetic)
	// Party k's inputs: identities × ShareBits wires, identity-major.
	shares := make([][][]Wire, p.Parties) // [party][identity][bit]
	for k := 0; k < p.Parties; k++ {
		shares[k] = make([][]Wire, p.Identities)
		for j := 0; j < p.Identities; j++ {
			shares[k][j] = b.InputVec(k, p.ShareBits)
		}
	}
	geq := make([]Wire, 0, p.Identities)
	for j := 0; j < p.Identities; j++ {
		vecs := make([][]Wire, p.Parties)
		for k := 0; k < p.Parties; k++ {
			vecs[k] = shares[k][j]
		}
		freq, err := b.SumMod(vecs) // mod 2^ShareBits reconstruction
		if err != nil {
			return nil, err
		}
		ge, err := b.GreaterEq(freq, ConstVec(p.Thresholds[j], p.ShareBits))
		if err != nil {
			return nil, err
		}
		geq = append(geq, ge)
	}
	count, err := b.PopCount(geq)
	if err != nil {
		return nil, err
	}
	for _, w := range count {
		if err := b.Output(w); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// PureMPCParams configures the pure-MPC baseline compilation.
type PureMPCParams struct {
	// Providers is m: every provider is an MPC party contributing raw bits.
	Providers int
	// Identities is the number of identities processed by the circuit.
	Identities int
	// Thresholds holds the public per-identity thresholds t_j.
	Thresholds []uint64
}

// PureMPC compiles the baseline circuit that takes every provider's raw
// membership bit as a private input.
func PureMPC(p PureMPCParams) (*Circuit, error) {
	if p.Providers < 2 || p.Identities < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrNoParams, p)
	}
	if len(p.Thresholds) != p.Identities {
		return nil, fmt.Errorf("%w: %d thresholds for %d identities", ErrNoParams, len(p.Thresholds), p.Identities)
	}
	width := BitsNeeded(uint64(p.Providers))
	for j, t := range p.Thresholds {
		if t == 0 {
			return nil, fmt.Errorf("%w: zero threshold (identity %d)", ErrNoParams, j)
		}
		if BitsNeeded(t) > width {
			return nil, fmt.Errorf("%w: threshold %d (identity %d) exceeds %d bits", ErrNoParams, t, j, width)
		}
	}
	b := NewBuilder()
	bits := make([][]Wire, p.Identities) // [identity][provider]
	for j := range bits {
		bits[j] = make([]Wire, p.Providers)
	}
	// Input order: provider-major, matching how each party feeds its vector.
	for i := 0; i < p.Providers; i++ {
		for j := 0; j < p.Identities; j++ {
			bits[j][i] = b.Input(i)
		}
	}
	geq := make([]Wire, 0, p.Identities)
	for j := 0; j < p.Identities; j++ {
		freq, err := b.PopCount(bits[j])
		if err != nil {
			return nil, err
		}
		// Pad or trim the popcount to the comparator width.
		freq = padTo(freq, width)
		ge, err := b.GreaterEq(freq, ConstVec(p.Thresholds[j], width))
		if err != nil {
			return nil, err
		}
		geq = append(geq, ge)
	}
	count, err := b.PopCount(geq)
	if err != nil {
		return nil, err
	}
	for _, w := range count {
		if err := b.Output(w); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

func padTo(v []Wire, width int) []Wire {
	for len(v) < width {
		v = append(v, Zero)
	}
	return v[:width]
}
