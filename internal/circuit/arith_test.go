package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSub(t *testing.T) {
	const width = 6
	b := NewBuilder()
	x := b.InputVec(0, width)
	y := b.InputVec(1, width)
	diff, err := b.Sub(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range diff {
		if err := b.Output(w); err != nil {
			t.Fatal(err)
		}
	}
	c := mustBuild(t, b)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := rng.Uint64() % 64
		bb := rng.Uint64() % 64
		in := append(PackBits(a, width), PackBits(bb, width)...)
		got := UnpackBits(evalOne(t, c, in))
		want := (a - bb) & 63
		if got != want {
			t.Fatalf("%d - %d = %d, want %d", a, bb, got, want)
		}
	}
	if _, err := b.Sub(b.InputVec(0, 2), b.InputVec(0, 3)); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestMulConst(t *testing.T) {
	const width = 12
	for _, k := range []uint64{0, 1, 2, 3, 7, 10, 255} {
		b := NewBuilder()
		x := b.InputVec(0, 6)
		prod, err := b.MulConst(x, k, width)
		if err != nil {
			t.Fatal(err)
		}
		anchor := x[0]
		for _, w := range prod {
			if err := b.Output(b.Materialize(w, anchor)); err != nil {
				t.Fatal(err)
			}
		}
		c := mustBuild(t, b)
		for _, v := range []uint64{0, 1, 5, 33, 63} {
			got := UnpackBits(evalOne(t, c, PackBits(v, 6)))
			want := (v * k) % (1 << width)
			if got != want {
				t.Fatalf("%d * %d = %d, want %d", v, k, got, want)
			}
		}
	}
	b := NewBuilder()
	if _, err := b.MulConst(b.InputVec(0, 4), 3, 0); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestDiv(t *testing.T) {
	const width = 7
	b := NewBuilder()
	x := b.InputVec(0, width)
	y := b.InputVec(1, width)
	q, err := b.Div(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range q {
		if err := b.Output(w); err != nil {
			t.Fatal(err)
		}
	}
	c := mustBuild(t, b)
	prop := func(a, bb uint8) bool {
		va := uint64(a) % 128
		vb := uint64(bb) % 128
		in := append(PackBits(va, width), PackBits(vb, width)...)
		out, err := c.Evaluate(in)
		if err != nil {
			return false
		}
		got := UnpackBits(out)
		if vb == 0 {
			return got == 127 // saturation
		}
		return got == va/vb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
	if _, err := b.Div(b.InputVec(0, 2), b.InputVec(0, 3)); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestMaterialize(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	mz := b.Materialize(Zero, x)
	mo := b.Materialize(One, x)
	if mz.IsConst() || mo.IsConst() {
		t.Fatal("Materialize returned constants")
	}
	if got := b.Materialize(x, x); got != x {
		t.Fatal("live wire not passed through")
	}
	for _, w := range []Wire{mz, mo} {
		if err := b.Output(w); err != nil {
			t.Fatal(err)
		}
	}
	c := mustBuild(t, b)
	for _, v := range []bool{false, true} {
		out := evalOne(t, c, []bool{v})
		if out[0] != false || out[1] != true {
			t.Fatalf("materialized constants evaluate to %v", out)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("const anchor accepted")
		}
	}()
	b.Materialize(Zero, One)
}

func TestEpsToFixed(t *testing.T) {
	if got := EpsToFixed(0.5, 8); got != 256 { // (2-1)*256
		t.Fatalf("ε=0.5: %d, want 256", got)
	}
	if got := EpsToFixed(1, 8); got != 0 {
		t.Fatalf("ε=1: %d, want 0", got)
	}
	if got := EpsToFixed(0, 8); got != 0 {
		t.Fatalf("ε=0: %d, want 0 (degenerate)", got)
	}
	if got := EpsToFixed(0.2, 8); got != 1024 { // 4*256
		t.Fatalf("ε=0.2: %d, want 1024", got)
	}
}

func TestPureBetaMatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const frac = 6
	p := PureBetaParams{
		Providers:    8,
		Identities:   3,
		EpsFixed:     []uint64{EpsToFixed(0.5, frac), EpsToFixed(0.8, frac), 0},
		FracBits:     frac,
		CoinBits:     5,
		MixThreshold: 0, // isolate the β computation
	}
	c, err := PureBeta(p)
	if err != nil {
		t.Fatal(err)
	}
	k := BitsNeeded(uint64(p.Providers))
	w := k + 2*frac
	one := uint64(1) << frac
	for trial := 0; trial < 20; trial++ {
		bits := make([][]bool, p.Providers)
		freqs := make([]uint64, p.Identities)
		for i := range bits {
			bits[i] = make([]bool, p.Identities)
			for j := range bits[i] {
				bits[i][j] = rng.Intn(2) == 1
				if bits[i][j] {
					freqs[j]++
				}
			}
		}
		var in []bool
		for i := 0; i < p.Providers; i++ {
			for j := 0; j < p.Identities; j++ {
				in = append(in, bits[i][j])
				in = append(in, PackBits(0, p.CoinBits)...)
			}
		}
		out, err := c.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		per := 1 + w
		for j := 0; j < p.Identities; j++ {
			hidden := out[j*per]
			beta := UnpackBits(out[j*per+1 : (j+1)*per])
			if p.EpsFixed[j] == 0 {
				if !hidden || beta != 0 {
					t.Fatalf("ε=1 identity: hidden=%v β=%d", hidden, beta)
				}
				continue
			}
			// Expected fixed-point β* via the same integer formula.
			denom := (uint64(p.Providers) - freqs[j]) * p.EpsFixed[j]
			var want uint64
			if denom == 0 {
				want = (uint64(1) << uint(w)) - 1 // saturated division
			} else {
				want = (freqs[j] << uint(2*frac)) / denom
			}
			wantHidden := want >= one
			if hidden != wantHidden {
				t.Fatalf("identity %d freq %d: hidden=%v, want %v (β*=%d)", j, freqs[j], hidden, wantHidden, want)
			}
			wantBeta := want
			if wantHidden {
				wantBeta = 0
			}
			if beta != wantBeta {
				t.Fatalf("identity %d freq %d: β=%d, want %d", j, freqs[j], beta, wantBeta)
			}
		}
	}
}

func TestPureBetaMixing(t *testing.T) {
	const frac = 4
	p := PureBetaParams{
		Providers:    4,
		Identities:   1,
		EpsFixed:     []uint64{EpsToFixed(0.5, frac)},
		FracBits:     frac,
		CoinBits:     4,
		MixThreshold: 15, // mix whenever joint coin < 15 (almost always)
	}
	c, err := PureBeta(p)
	if err != nil {
		t.Fatal(err)
	}
	k := BitsNeeded(4)
	w := k + 2*frac
	// freq=1 (rare), joint coin = 3 < 15 → mixed → hidden, β masked.
	var in []bool
	for i := 0; i < 4; i++ {
		in = append(in, i == 0)
		coin := uint64(0)
		if i == 0 {
			coin = 3
		}
		in = append(in, PackBits(coin, 4)...)
	}
	out, err := c.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0] {
		t.Fatal("mixed identity not hidden")
	}
	if UnpackBits(out[1:1+w]) != 0 {
		t.Fatal("hidden identity leaked β")
	}
}

func TestPureBetaValidation(t *testing.T) {
	base := PureBetaParams{Providers: 4, Identities: 1, EpsFixed: []uint64{64}, FracBits: 6, CoinBits: 4, MixThreshold: 3}
	bad := []func(*PureBetaParams){
		func(p *PureBetaParams) { p.Providers = 1 },
		func(p *PureBetaParams) { p.Identities = 0 },
		func(p *PureBetaParams) { p.EpsFixed = nil },
		func(p *PureBetaParams) { p.FracBits = 0 },
		func(p *PureBetaParams) { p.CoinBits = 0 },
		func(p *PureBetaParams) { p.MixThreshold = 16 },
		func(p *PureBetaParams) { p.EpsFixed = []uint64{1 << 40} },
	}
	for i, mutate := range bad {
		p := base
		mutate(&p)
		if _, err := PureBeta(p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

// The pure-β circuit must dwarf the reduced pipeline per identity — the
// quantitative heart of the paper's "minimize MPC" claim.
func TestPureBetaCostDominatesReduced(t *testing.T) {
	m := 16
	pure, err := PureBeta(PureBetaParams{
		Providers: m, Identities: 1,
		EpsFixed: []uint64{EpsToFixed(0.5, 8)}, FracBits: 8, CoinBits: 16, MixThreshold: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	shareBits := BitsNeeded(uint64(m + 1))
	cb, err := CountBelow(CountBelowParams{Parties: 3, Identities: 1, ShareBits: shareBits, Thresholds: []uint64{8}})
	if err != nil {
		t.Fatal(err)
	}
	rv, err := Reveal(RevealParams{Parties: 3, Identities: 1, ShareBits: shareBits, Thresholds: []uint64{8}, CoinBits: 16, MixThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	reduced := cb.Stats().AndGates + rv.Stats().AndGates
	if pure.Stats().AndGates < 5*reduced {
		t.Fatalf("pure AND gates %d not ≫ reduced %d", pure.Stats().AndGates, reduced)
	}
}
