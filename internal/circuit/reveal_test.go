package circuit

import (
	"math/rand"
	"testing"
)

// evalReveal drives the MPC-reduced reveal circuit in the clear.
func evalReveal(t *testing.T, c *Circuit, p RevealParams, shares [][]uint64, coins [][]uint64) (hidden []bool, masked []uint64) {
	t.Helper()
	var in []bool
	for k := 0; k < p.Parties; k++ {
		for j := 0; j < p.Identities; j++ {
			in = append(in, PackBits(shares[k][j], p.ShareBits)...)
			in = append(in, PackBits(coins[k][j], p.CoinBits)...)
		}
	}
	out, err := c.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	per := 1 + p.ShareBits
	if len(out) != per*p.Identities {
		t.Fatalf("output length %d, want %d", len(out), per*p.Identities)
	}
	hidden = make([]bool, p.Identities)
	masked = make([]uint64, p.Identities)
	for j := 0; j < p.Identities; j++ {
		hidden[j] = out[j*per]
		masked[j] = UnpackBits(out[j*per+1 : (j+1)*per])
	}
	return hidden, masked
}

func TestRevealSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := RevealParams{
		Parties:      3,
		Identities:   6,
		ShareBits:    7,
		Thresholds:   []uint64{10, 1, 100, 40, 5, 64},
		CoinBits:     8,
		MixThreshold: 64, // λ = 0.25
	}
	c, err := Reveal(p)
	if err != nil {
		t.Fatal(err)
	}
	mod := uint64(1) << uint(p.ShareBits)
	coinMod := uint64(1) << uint(p.CoinBits)
	for trial := 0; trial < 20; trial++ {
		freqs := make([]uint64, p.Identities)
		shares := make([][]uint64, p.Parties)
		coins := make([][]uint64, p.Parties)
		for k := range shares {
			shares[k] = make([]uint64, p.Identities)
			coins[k] = make([]uint64, p.Identities)
		}
		jointCoin := make([]uint64, p.Identities)
		for j := range freqs {
			freqs[j] = uint64(rng.Intn(120))
			var sum uint64
			for k := 0; k < p.Parties-1; k++ {
				shares[k][j] = rng.Uint64() % mod
				sum = (sum + shares[k][j]) % mod
			}
			shares[p.Parties-1][j] = (freqs[j] + mod - sum) % mod
			for k := 0; k < p.Parties; k++ {
				coins[k][j] = rng.Uint64() % coinMod
				jointCoin[j] ^= coins[k][j]
			}
		}
		hidden, masked := evalReveal(t, c, p, shares, coins)
		for j := range freqs {
			common := freqs[j] >= p.Thresholds[j]
			mix := jointCoin[j] < p.MixThreshold
			wantHidden := common || mix
			if hidden[j] != wantHidden {
				t.Fatalf("trial %d identity %d: hidden=%v, want %v (freq=%d t=%d coin=%d)",
					trial, j, hidden[j], wantHidden, freqs[j], p.Thresholds[j], jointCoin[j])
			}
			wantMasked := freqs[j]
			if wantHidden {
				wantMasked = 0
			}
			if masked[j] != wantMasked {
				t.Fatalf("trial %d identity %d: masked=%d, want %d", trial, j, masked[j], wantMasked)
			}
		}
	}
}

func TestRevealMixDisabled(t *testing.T) {
	p := RevealParams{
		Parties:      2,
		Identities:   1,
		ShareBits:    4,
		Thresholds:   []uint64{8},
		CoinBits:     4,
		MixThreshold: 0,
	}
	c, err := Reveal(p)
	if err != nil {
		t.Fatal(err)
	}
	// freq = 5 (below threshold): must be revealed regardless of coins.
	shares := [][]uint64{{3}, {2}}
	coins := [][]uint64{{0}, {0}}
	hidden, masked := evalReveal(t, c, p, shares, coins)
	if hidden[0] || masked[0] != 5 {
		t.Fatalf("hidden=%v masked=%d, want revealed 5", hidden[0], masked[0])
	}
	// freq = 9 (at/above threshold): must be hidden.
	shares = [][]uint64{{4}, {5}}
	hidden, masked = evalReveal(t, c, p, shares, coins)
	if !hidden[0] || masked[0] != 0 {
		t.Fatalf("hidden=%v masked=%d, want hidden 0", hidden[0], masked[0])
	}
}

func TestRevealValidation(t *testing.T) {
	base := RevealParams{Parties: 3, Identities: 1, ShareBits: 4, Thresholds: []uint64{3}, CoinBits: 8, MixThreshold: 10}
	bad := []func(*RevealParams){
		func(p *RevealParams) { p.Parties = 1 },
		func(p *RevealParams) { p.Identities = 0 },
		func(p *RevealParams) { p.ShareBits = 0 },
		func(p *RevealParams) { p.CoinBits = 0 },
		func(p *RevealParams) { p.Thresholds = nil },
		func(p *RevealParams) { p.Thresholds = []uint64{0} },
		func(p *RevealParams) { p.Thresholds = []uint64{99} },
		func(p *RevealParams) { p.MixThreshold = 256 },
	}
	for i, mutate := range bad {
		p := base
		mutate(&p)
		if _, err := Reveal(p); err == nil {
			t.Errorf("bad reveal params %d accepted: %+v", i, p)
		}
	}
	if _, err := Reveal(base); err != nil {
		t.Fatalf("valid reveal params rejected: %v", err)
	}
}

func TestPureRevealSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := PureRevealParams{
		Providers:    7,
		Identities:   4,
		Thresholds:   []uint64{2, 5, 7, 1},
		CoinBits:     6,
		MixThreshold: 16, // λ = 0.25
	}
	c, err := PureReveal(p)
	if err != nil {
		t.Fatal(err)
	}
	width := BitsNeeded(uint64(p.Providers))
	coinMod := uint64(1) << uint(p.CoinBits)
	for trial := 0; trial < 20; trial++ {
		bits := make([][]bool, p.Providers)
		coins := make([][]uint64, p.Providers)
		freqs := make([]uint64, p.Identities)
		jointCoin := make([]uint64, p.Identities)
		for i := range bits {
			bits[i] = make([]bool, p.Identities)
			coins[i] = make([]uint64, p.Identities)
			for j := range bits[i] {
				bits[i][j] = rng.Intn(2) == 1
				if bits[i][j] {
					freqs[j]++
				}
				coins[i][j] = rng.Uint64() % coinMod
				jointCoin[j] ^= coins[i][j]
			}
		}
		var in []bool
		for i := 0; i < p.Providers; i++ {
			for j := 0; j < p.Identities; j++ {
				in = append(in, bits[i][j])
				in = append(in, PackBits(coins[i][j], p.CoinBits)...)
			}
		}
		out, err := c.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		per := 1 + width
		for j := 0; j < p.Identities; j++ {
			hidden := out[j*per]
			masked := UnpackBits(out[j*per+1 : (j+1)*per])
			common := freqs[j] >= p.Thresholds[j]
			mix := jointCoin[j] < p.MixThreshold
			wantHidden := common || mix
			wantMasked := freqs[j]
			if wantHidden {
				wantMasked = 0
			}
			if hidden != wantHidden || masked != wantMasked {
				t.Fatalf("trial %d identity %d: hidden=%v/%v masked=%d/%d",
					trial, j, hidden, wantHidden, masked, wantMasked)
			}
		}
	}
}

func TestPureRevealValidation(t *testing.T) {
	base := PureRevealParams{Providers: 4, Identities: 1, Thresholds: []uint64{2}, CoinBits: 4, MixThreshold: 3}
	bad := []func(*PureRevealParams){
		func(p *PureRevealParams) { p.Providers = 1 },
		func(p *PureRevealParams) { p.Identities = 0 },
		func(p *PureRevealParams) { p.Thresholds = []uint64{0} },
		func(p *PureRevealParams) { p.Thresholds = []uint64{9} },
		func(p *PureRevealParams) { p.CoinBits = 0 },
		func(p *PureRevealParams) { p.MixThreshold = 16 },
	}
	for i, mutate := range bad {
		p := base
		mutate(&p)
		if _, err := PureReveal(p); err == nil {
			t.Errorf("bad pure-reveal params %d accepted: %+v", i, p)
		}
	}
}

// Reveal-circuit size must be independent of m for the reduced form and
// growing for the pure form (same scalability story as CountBelow).
func TestRevealSizeScaling(t *testing.T) {
	reduced := func(m int) int {
		c, err := Reveal(RevealParams{
			Parties: 3, Identities: 2, ShareBits: BitsNeeded(uint64(m)),
			Thresholds: []uint64{uint64(m / 2), uint64(m / 2)}, CoinBits: 16, MixThreshold: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.Stats().Size()
	}
	pure := func(m int) int {
		c, err := PureReveal(PureRevealParams{
			Providers: m, Identities: 2,
			Thresholds: []uint64{uint64(m / 2), uint64(m / 2)}, CoinBits: 16, MixThreshold: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.Stats().Size()
	}
	if p32, p8 := pure(32), pure(8); p32 <= p8 {
		t.Errorf("pure reveal did not grow: %d vs %d", p8, p32)
	}
	if r32, r8 := reduced(32), reduced(8); r32 > 2*r8 {
		t.Errorf("reduced reveal grew too fast: %d vs %d", r8, r32)
	}
}
