package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// evalCountBelow runs the compiled MPC-reduced circuit in the clear against
// per-party share vectors and returns the common-identity count.
func evalCountBelow(t *testing.T, c *Circuit, p CountBelowParams, shares [][]uint64) uint64 {
	t.Helper()
	var in []bool
	for k := 0; k < p.Parties; k++ {
		for j := 0; j < p.Identities; j++ {
			in = append(in, PackBits(shares[k][j], p.ShareBits)...)
		}
	}
	out, err := c.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	return UnpackBits(out)
}

func TestCountBelowMatchesPlaintext(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := CountBelowParams{
		Parties:    3,
		Identities: 10,
		ShareBits:  6,
		Thresholds: make([]uint64, 10),
	}
	for j := range p.Thresholds {
		p.Thresholds[j] = uint64(rng.Intn(30) + 1)
	}
	c, err := CountBelow(p)
	if err != nil {
		t.Fatal(err)
	}
	mod := uint64(1) << uint(p.ShareBits)
	for trial := 0; trial < 30; trial++ {
		freqs := make([]uint64, p.Identities)
		shares := make([][]uint64, p.Parties)
		for k := range shares {
			shares[k] = make([]uint64, p.Identities)
		}
		want := uint64(0)
		for j := range freqs {
			freqs[j] = uint64(rng.Intn(40))
			if freqs[j] >= p.Thresholds[j] {
				want++
			}
			// Additively share freqs[j] mod 2^ShareBits.
			var sum uint64
			for k := 0; k < p.Parties-1; k++ {
				shares[k][j] = rng.Uint64() % mod
				sum = (sum + shares[k][j]) % mod
			}
			shares[p.Parties-1][j] = (freqs[j] + mod - sum) % mod
		}
		if got := evalCountBelow(t, c, p, shares); got != want {
			t.Fatalf("trial %d: count = %d, want %d", trial, got, want)
		}
	}
}

func TestCountBelowValidation(t *testing.T) {
	valid := CountBelowParams{Parties: 3, Identities: 2, ShareBits: 4, Thresholds: []uint64{1, 2}}
	if _, err := CountBelow(valid); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []CountBelowParams{
		{Parties: 1, Identities: 2, ShareBits: 4, Thresholds: []uint64{1, 2}},
		{Parties: 3, Identities: 0, ShareBits: 4, Thresholds: nil},
		{Parties: 3, Identities: 2, ShareBits: 0, Thresholds: []uint64{1, 2}},
		{Parties: 3, Identities: 2, ShareBits: 4, Thresholds: []uint64{1}},
		{Parties: 3, Identities: 2, ShareBits: 4, Thresholds: []uint64{0, 1}},
		{Parties: 3, Identities: 2, ShareBits: 4, Thresholds: []uint64{1, 99}},
	}
	for i, p := range bad {
		if _, err := CountBelow(p); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestPureMPCMatchesPlaintext(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := PureMPCParams{
		Providers:  9,
		Identities: 6,
		Thresholds: []uint64{1, 2, 3, 4, 5, 9},
	}
	c, err := PureMPC(p)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		bits := make([][]bool, p.Providers) // [provider][identity]
		freqs := make([]uint64, p.Identities)
		for i := range bits {
			bits[i] = make([]bool, p.Identities)
			for j := range bits[i] {
				bits[i][j] = rng.Intn(2) == 1
				if bits[i][j] {
					freqs[j]++
				}
			}
		}
		want := uint64(0)
		for j, f := range freqs {
			if f >= p.Thresholds[j] {
				want++
			}
		}
		var in []bool
		for i := 0; i < p.Providers; i++ {
			in = append(in, bits[i]...)
		}
		out, err := c.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := UnpackBits(out); got != want {
			t.Fatalf("trial %d: count = %d, want %d", trial, got, want)
		}
	}
}

func TestPureMPCValidation(t *testing.T) {
	bad := []PureMPCParams{
		{Providers: 1, Identities: 1, Thresholds: []uint64{1}},
		{Providers: 3, Identities: 0, Thresholds: nil},
		{Providers: 3, Identities: 1, Thresholds: []uint64{0}},
		{Providers: 3, Identities: 1, Thresholds: []uint64{9}},
		{Providers: 3, Identities: 2, Thresholds: []uint64{1}},
	}
	for i, p := range bad {
		if _, err := PureMPC(p); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

// The headline scalability claim of Fig. 6: the MPC-reduced circuit size is
// independent of the provider count m, while the pure-MPC circuit grows
// with m.
func TestCircuitSizeScaling(t *testing.T) {
	thresholdFor := func(m int) []uint64 { return []uint64{uint64(m / 2)} }
	reducedSize := func(m int) int {
		c, err := CountBelow(CountBelowParams{
			Parties:    3,
			Identities: 1,
			ShareBits:  BitsNeeded(uint64(m)),
			Thresholds: thresholdFor(m),
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.Stats().Size()
	}
	pureSize := func(m int) int {
		c, err := PureMPC(PureMPCParams{Providers: m, Identities: 1, Thresholds: thresholdFor(m)})
		if err != nil {
			t.Fatal(err)
		}
		return c.Stats().Size()
	}
	r8, r64 := reducedSize(8), reducedSize(64)
	p8, p64 := pureSize(8), pureSize(64)
	if p64 <= p8*4 {
		t.Errorf("pure MPC did not grow with m: size(8)=%d size(64)=%d", p8, p64)
	}
	// Reduced circuit grows only with log m (share width): tiny growth.
	if r64 > r8*3 {
		t.Errorf("reduced circuit grew too fast: size(8)=%d size(64)=%d", r8, r64)
	}
	if p64 <= r64 {
		t.Errorf("pure MPC (%d) should exceed reduced (%d) at m=64", p64, r64)
	}
}

// Property: for random single-identity instances, circuit output equals the
// direct comparison.
func TestCountBelowQuick(t *testing.T) {
	prop := func(rawFreq uint16, rawThresh uint16) bool {
		const bits = 8
		mod := uint64(1) << bits
		freq := uint64(rawFreq) % 200
		thresh := uint64(rawThresh)%199 + 1
		p := CountBelowParams{Parties: 3, Identities: 1, ShareBits: bits, Thresholds: []uint64{thresh}}
		c, err := CountBelow(p)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(int64(rawFreq)<<16 | int64(rawThresh)))
		s0 := rng.Uint64() % mod
		s1 := rng.Uint64() % mod
		s2 := (freq + 2*mod - s0 - s1) % mod
		in := append(append(PackBits(s0, bits), PackBits(s1, bits)...), PackBits(s2, bits)...)
		out, err := c.Evaluate(in)
		if err != nil {
			return false
		}
		want := uint64(0)
		if freq >= thresh {
			want = 1
		}
		return UnpackBits(out) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompileCountBelow100(b *testing.B) {
	thresholds := make([]uint64, 100)
	for i := range thresholds {
		thresholds[i] = uint64(i + 1)
	}
	p := CountBelowParams{Parties: 3, Identities: 100, ShareBits: 14, Thresholds: thresholds}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CountBelow(p); err != nil {
			b.Fatal(err)
		}
	}
}
