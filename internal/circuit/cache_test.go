package circuit

import "testing"

func TestCachedCompileReturnsSamePointer(t *testing.T) {
	p := SliceParams{Parties: 3, ShareBits: 7}
	a, err := CountBelowSliceCached(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CountBelowSliceCached(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical params compiled twice")
	}
	other, err := CountBelowSliceCached(SliceParams{Parties: 3, ShareBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if other == a {
		t.Fatal("distinct params shared a cache entry")
	}
}

func TestCachedCompileKeyCoversThresholds(t *testing.T) {
	base := CountBelowParams{Parties: 2, Identities: 2, ShareBits: 5, Thresholds: []uint64{1, 2}}
	a, err := CountBelowCached(base)
	if err != nil {
		t.Fatal(err)
	}
	changed := base
	changed.Thresholds = []uint64{1, 3}
	b, err := CountBelowCached(changed)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different thresholds shared a cache entry")
	}
	// Reveal variant keyed independently of CountBelow.
	r, err := RevealCached(RevealParams{Parties: 2, Identities: 2, ShareBits: 5,
		Thresholds: []uint64{1, 2}, CoinBits: 3, MixThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r == a {
		t.Fatal("Reveal and CountBelow shared a cache entry")
	}
}

func TestCacheEvictionBound(t *testing.T) {
	for slots := 1; slots <= cacheLimit+20; slots++ {
		if _, err := SliceCountCached(SliceCountParams{Parties: 2, Slots: slots}); err != nil {
			t.Fatal(err)
		}
	}
	if n := cacheSize(); n > cacheLimit {
		t.Fatalf("cache holds %d circuits, limit %d", n, cacheLimit)
	}
}

func TestCachedCompileErrorNotCached(t *testing.T) {
	bad := SliceParams{Parties: 0, ShareBits: 4}
	if _, err := CountBelowSliceCached(bad); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := CountBelowSliceCached(bad); err == nil {
		t.Fatal("invalid params accepted on second call")
	}
}
