package circuit

import (
	"math/rand"
	"testing"
)

// TestCountBelowSliceMatchesDirect checks the folded-offset comparator:
// with W = BitsNeeded(m+1)+1 and the offset 2^W − t added into party 0's
// share, the output bit must equal freq ≥ t for every freq ≤ m, t ≤ 2^(W−1)−1.
func TestCountBelowSliceMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, style := range []Style{StyleRipple, StylePrefix} {
		const m = 37
		shareBits := BitsNeeded(uint64(m + 1))
		w := shareBits + 1
		p := SliceParams{Parties: 3, ShareBits: w, Arithmetic: style}
		c, err := CountBelowSlice(p)
		if err != nil {
			t.Fatal(err)
		}
		mod := uint64(1) << uint(w)
		for trial := 0; trial < 300; trial++ {
			freq := uint64(rng.Intn(m + 1))
			thr := uint64(rng.Intn(1<<uint(shareBits)-1) + 1)
			shares := make([]uint64, p.Parties)
			var sum uint64
			for k := 0; k < p.Parties-1; k++ {
				shares[k] = rng.Uint64() % mod
				sum = (sum + shares[k]) % mod
			}
			shares[p.Parties-1] = (freq + mod - sum) % mod
			shares[0] = (shares[0] + mod - thr) % mod // fold the offset
			var in []bool
			for k := 0; k < p.Parties; k++ {
				in = append(in, PackBits(shares[k], w)...)
			}
			out, err := c.Evaluate(in)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 1 {
				t.Fatalf("CountBelowSlice has %d outputs, want 1", len(out))
			}
			if want := freq >= thr; out[0] != want {
				t.Fatalf("style %v freq=%d thr=%d: ge=%v, want %v", style, freq, thr, out[0], want)
			}
		}
	}
}

func TestSliceCountMatchesPopcount(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := SliceCountParams{Parties: 3, Slots: 64}
	c, err := SliceCount(p)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		lanes := make([]bool, p.Slots)
		want := uint64(0)
		for s := range lanes {
			lanes[s] = rng.Intn(2) == 1
			if lanes[s] {
				want++
			}
		}
		// XOR-share each lane bit across the parties.
		shares := make([][]bool, p.Parties)
		for k := range shares {
			shares[k] = make([]bool, p.Slots)
		}
		for s, v := range lanes {
			acc := false
			for k := 0; k < p.Parties-1; k++ {
				shares[k][s] = rng.Intn(2) == 1
				acc = acc != shares[k][s]
			}
			shares[p.Parties-1][s] = acc != v
		}
		var in []bool
		for k := range shares {
			in = append(in, shares[k]...)
		}
		out, err := c.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := UnpackBits(out); got != want {
			t.Fatalf("trial %d: count=%d, want %d", trial, got, want)
		}
	}
}

// TestRevealSliceMatchesDirect checks Equation 6 semantics lane-wise:
// hidden = (freq ≥ t) ∨ (coin < mixThreshold), masked = freq·¬hidden,
// with the offset entering as party 0's trailing private input.
func TestRevealSliceMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const m = 21
	shareBits := BitsNeeded(uint64(m + 1))
	w := shareBits + 1
	for _, mixThr := range []uint64{0, 3, 14} {
		p := SliceParams{Parties: 3, ShareBits: w, CoinBits: 4, MixThreshold: mixThr}
		c, err := RevealSlice(p)
		if err != nil {
			t.Fatal(err)
		}
		mod := uint64(1) << uint(w)
		coinMod := uint64(1) << uint(p.CoinBits)
		for trial := 0; trial < 200; trial++ {
			freq := uint64(rng.Intn(m + 1))
			thr := uint64(rng.Intn(1<<uint(shareBits)-1) + 1)
			shares := make([]uint64, p.Parties)
			coins := make([]uint64, p.Parties)
			var sum, coin uint64
			for k := 0; k < p.Parties; k++ {
				coins[k] = rng.Uint64() % coinMod
				coin ^= coins[k]
				if k < p.Parties-1 {
					shares[k] = rng.Uint64() % mod
					sum = (sum + shares[k]) % mod
				}
			}
			shares[p.Parties-1] = (freq + mod - sum) % mod
			var in []bool
			for k := 0; k < p.Parties; k++ {
				in = append(in, PackBits(shares[k], w)...)
				in = append(in, PackBits(coins[k], p.CoinBits)...)
			}
			in = append(in, PackBits(mod-thr, w)...) // party 0 offset input
			out, err := c.Evaluate(in)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 1+w {
				t.Fatalf("RevealSlice has %d outputs, want %d", len(out), 1+w)
			}
			wantHidden := freq >= thr || coin < mixThr
			if out[0] != wantHidden {
				t.Fatalf("mix=%d freq=%d thr=%d coin=%d: hidden=%v, want %v",
					mixThr, freq, thr, coin, out[0], wantHidden)
			}
			wantMasked := freq
			if wantHidden {
				wantMasked = 0
			}
			if got := UnpackBits(out[1:]); got != wantMasked {
				t.Fatalf("mix=%d freq=%d thr=%d: masked=%d, want %d", mixThr, freq, thr, got, wantMasked)
			}
		}
	}
}

func TestSliceParamValidation(t *testing.T) {
	if _, err := CountBelowSlice(SliceParams{Parties: 1, ShareBits: 4}); err == nil {
		t.Fatal("CountBelowSlice accepted 1 party")
	}
	if _, err := RevealSlice(SliceParams{Parties: 2, ShareBits: 4, CoinBits: 3, MixThreshold: 8}); err == nil {
		t.Fatal("RevealSlice accepted mix threshold == 2^CoinBits")
	}
	if _, err := SliceCount(SliceCountParams{Parties: 2, Slots: 0}); err == nil {
		t.Fatal("SliceCount accepted 0 slots")
	}
}
