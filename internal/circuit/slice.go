package circuit

import "fmt"

// This file compiles the *slice* variants of CountBelow and Reveal: the
// per-identity circuits the bit-sliced 64-wide GMW evaluator runs, one
// independent identity per instance lane.
//
// The scalar compilers bake each identity's public threshold t_j into the
// comparator as a constant, so every batch needs its own circuit. The wide
// evaluator runs 64 identities through ONE circuit, so the circuit must be
// threshold-free. The trick is to compare in a group one bit wider than
// the frequencies: with shares in Z_{2^W}, W ≥ BitsNeeded(m+1)+1, both
// freq ≤ m and t_j fit in W−1 bits, so
//
//	diff = freq + (2^W − t_j)  mod 2^W  =  freq − t_j  mod 2^W
//
// has its top bit clear exactly when freq ≥ t_j. The identity-specific
// offset (2^W − t_j) enters as *data*, not circuit structure — folded into
// party 0's additive share before slicing (CountBelowSlice), or fed as a
// party-0 private input vector when the raw frequency is also needed
// downstream (RevealSlice). One compile then serves every slab of every
// batch.
//
// CountBelowSlice deliberately has no opening step: revealing per-identity
// ≥-bits would leak exactly the common set that ε-PPI hides. The wide run
// keeps the output *shared*; SliceCount is the small scalar circuit that
// XOR-reconstructs the 64 lane bits inside MPC, popcounts them, and opens
// only the per-slab count — the same count granularity the batch pipeline
// already discloses.

// SliceParams configures CountBelowSlice and RevealSlice.
type SliceParams struct {
	// Parties is c, the number of coordinators.
	Parties int
	// ShareBits is the widened share width W: shares live in Z_{2^W} and
	// both m and every threshold must fit in W−1 bits (the sign slack the
	// folded comparison needs).
	ShareBits int
	// CoinBits is the mixing-coin precision (RevealSlice only).
	CoinBits int
	// MixThreshold is the public λ·2^CoinBits cutoff (< 2^CoinBits;
	// RevealSlice only).
	MixThreshold uint64
	// Arithmetic selects ripple (default) or log-depth prefix arithmetic.
	Arithmetic Style
}

// CountBelowSlice compiles the threshold-free one-identity comparator.
// Party k inputs its W-bit share; party 0's share must have the folded
// offset (2^W − t) already added modulo 2^W. The single output wire is
// the ≥-threshold bit and MUST be evaluated shares-kept (gmw.RunWideShared):
// opening it would reveal whether this identity is common.
func CountBelowSlice(p SliceParams) (*Circuit, error) {
	if p.Parties < 2 || p.ShareBits < 2 {
		return nil, fmt.Errorf("%w: %+v", ErrNoParams, p)
	}
	b := NewBuilder()
	b.SetStyle(p.Arithmetic)
	vecs := make([][]Wire, p.Parties)
	for k := range vecs {
		vecs[k] = b.InputVec(k, p.ShareBits)
	}
	diff, err := b.SumMod(vecs) // = freq − t mod 2^W, offset pre-folded
	if err != nil {
		return nil, err
	}
	ge := b.NOT(diff[p.ShareBits-1]) // top bit clear ⟺ freq ≥ t
	if err := b.Output(ge); err != nil {
		return nil, err
	}
	return b.Build()
}

// SliceCountParams configures the per-slab count opener.
type SliceCountParams struct {
	// Parties is c, the number of coordinators.
	Parties int
	// Slots is the number of lanes whose kept-shared ≥-bits are counted
	// (64 for a full slab; padded lanes carry zero bits by construction).
	Slots int
	// Arithmetic selects ripple (default) or log-depth prefix arithmetic.
	Arithmetic Style
}

// SliceCount compiles the count opener: party k inputs its Slots XOR-share
// bits of a slab's ≥-threshold lanes (as produced shares-kept by
// CountBelowSlice under the wide evaluator), the circuit reconstructs each
// lane bit by XOR, popcounts, and opens only the count.
func SliceCount(p SliceCountParams) (*Circuit, error) {
	if p.Parties < 2 || p.Slots < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrNoParams, p)
	}
	b := NewBuilder()
	b.SetStyle(p.Arithmetic)
	shares := make([][]Wire, p.Parties) // [party][slot]
	for k := range shares {
		shares[k] = b.InputVec(k, p.Slots)
	}
	lanes := make([]Wire, p.Slots)
	for s := 0; s < p.Slots; s++ {
		lane := shares[0][s]
		for k := 1; k < p.Parties; k++ {
			lane = b.XOR(lane, shares[k][s])
		}
		lanes[s] = lane
	}
	count, err := b.PopCount(lanes)
	if err != nil {
		return nil, err
	}
	for _, w := range count {
		if err := b.Output(w); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// RevealSlice compiles the threshold-free one-identity reveal-or-mask
// circuit (Equation 6 semantics, one identity per wide lane). Input order
// per party k: W share bits, then CoinBits coin bits; party 0 additionally
// ends with the W-bit folded offset (2^W − t) as a private input — the raw
// frequency must survive for the masked output, so the offset cannot be
// pre-folded into the share as CountBelowSlice does. Output order: hidden
// bit, then W masked-frequency bits (freq when revealed, zero when hidden).
func RevealSlice(p SliceParams) (*Circuit, error) {
	if p.Parties < 2 || p.ShareBits < 2 || p.CoinBits < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrNoParams, p)
	}
	if p.MixThreshold >= uint64(1)<<uint(p.CoinBits) {
		return nil, fmt.Errorf("%w: mix threshold %d needs more than %d coin bits", ErrNoParams, p.MixThreshold, p.CoinBits)
	}
	b := NewBuilder()
	b.SetStyle(p.Arithmetic)
	shares := make([][]Wire, p.Parties)
	coins := make([][]Wire, p.Parties)
	for k := 0; k < p.Parties; k++ {
		shares[k] = b.InputVec(k, p.ShareBits)
		coins[k] = b.InputVec(k, p.CoinBits)
	}
	offset := b.InputVec(0, p.ShareBits)
	freq, err := b.SumMod(shares)
	if err != nil {
		return nil, err
	}
	diff, err := b.Add(freq, offset) // = freq − t mod 2^W
	if err != nil {
		return nil, err
	}
	common := b.NOT(diff[p.ShareBits-1])
	coin := coins[0]
	for k := 1; k < p.Parties; k++ {
		next := make([]Wire, p.CoinBits)
		for bi := range next {
			next[bi] = b.XOR(coin[bi], coins[k][bi])
		}
		coin = next
	}
	mix, err := b.LessThan(coin, ConstVec(p.MixThreshold, p.CoinBits))
	if err != nil {
		return nil, err
	}
	hidden := b.OR(common, mix)
	if err := b.Output(hidden); err != nil {
		return nil, err
	}
	notHidden := b.NOT(hidden)
	for _, fw := range freq {
		masked := b.AND(fw, notHidden)
		if masked.IsConst() {
			// A share-sum bit can fold to a constant only if every share bit
			// folded, which inputs never do; guard regardless.
			return nil, fmt.Errorf("%w: degenerate masked output", ErrNoParams)
		}
		if err := b.Output(masked); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
