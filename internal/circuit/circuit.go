// Package circuit provides the boolean-circuit intermediate representation
// used by the secure CountBelow computation (Section IV-B2 of the ε-PPI
// paper). It stands in for FairplayMP's SFDL compiler: a builder API
// constructs circuits from XOR/AND/NOT gates with compile-time constant
// folding, word-level blocks (adders, comparators, counters) assemble the
// CountBelow function, and the resulting Circuit carries the size and
// AND-depth metrics that the paper's Figure 6b reports as "circuit size".
//
// XOR and NOT are free in the GMW protocol (local operations); AND gates
// cost one Beaver triple and one communication round per AND-depth level,
// so Stats separates the two.
package circuit

import (
	"errors"
	"fmt"
)

// Wire identifies a circuit wire. Negative sentinel values denote the
// boolean constants, which are folded away at build time and never appear
// in a built circuit.
type Wire int32

// Constant wires understood by the builder.
const (
	// Zero is the constant-false wire.
	Zero Wire = -1
	// One is the constant-true wire.
	One Wire = -2
)

// IsConst reports whether w is a build-time constant.
func (w Wire) IsConst() bool { return w == Zero || w == One }

func (w Wire) constVal() bool { return w == One }

// Op is a gate operation.
type Op uint8

// Gate operations.
const (
	// OpXOR is exclusive-or (free in GMW).
	OpXOR Op = iota + 1
	// OpAND is conjunction (one Beaver triple in GMW).
	OpAND
	// OpNOT is negation (free in GMW).
	OpNOT
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpXOR:
		return "XOR"
	case OpAND:
		return "AND"
	case OpNOT:
		return "NOT"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Gate is one circuit gate. B is unused for OpNOT.
type Gate struct {
	Op   Op
	A, B Wire
	Out  Wire
}

// Input describes one input wire and the party that owns (provides) it.
type Input struct {
	Wire  Wire
	Party int
}

// Circuit is an immutable built circuit.
type Circuit struct {
	numWires int
	inputs   []Input
	outputs  []Wire
	gates    []Gate

	// andRounds[r] lists indices into gates of the AND gates evaluated in
	// communication round r; localByRound[r] lists the indices of free
	// gates whose output depth is r (evaluated locally at the start of
	// round r). Precomputed by Build for the GMW scheduler.
	andRounds    [][]int
	localByRound [][]int
	andIndex     []int // per-gate running AND ordinal (triple index), -1 for non-AND
}

// NumWires returns the total number of wires (inputs + gate outputs).
func (c *Circuit) NumWires() int { return c.numWires }

// Inputs returns the input descriptors in creation order.
func (c *Circuit) Inputs() []Input {
	out := make([]Input, len(c.inputs))
	copy(out, c.inputs)
	return out
}

// Outputs returns the output wires in declaration order.
func (c *Circuit) Outputs() []Wire {
	out := make([]Wire, len(c.outputs))
	copy(out, c.outputs)
	return out
}

// Gates returns the gate list in topological order.
func (c *Circuit) Gates() []Gate {
	out := make([]Gate, len(c.gates))
	copy(out, c.gates)
	return out
}

// Stats summarises circuit complexity.
type Stats struct {
	// Wires is the total wire count.
	Wires int
	// Gates is the total gate count.
	Gates int
	// AndGates is the number of AND gates (the MPC cost driver).
	AndGates int
	// FreeGates is the number of XOR/NOT gates.
	FreeGates int
	// AndDepth is the number of sequential communication rounds needed.
	AndDepth int
	// Inputs and Outputs are the respective port counts.
	Inputs, Outputs int
}

// Size returns the paper's "circuit size" metric: the total gate count.
func (s Stats) Size() int { return s.Gates }

// Stats computes the complexity summary.
func (c *Circuit) Stats() Stats {
	and := 0
	for _, g := range c.gates {
		if g.Op == OpAND {
			and++
		}
	}
	return Stats{
		Wires:     c.numWires,
		Gates:     len(c.gates),
		AndGates:  and,
		FreeGates: len(c.gates) - and,
		AndDepth:  len(c.andRounds),
		Inputs:    len(c.inputs),
		Outputs:   len(c.outputs),
	}
}

// AndRounds exposes the AND-gate schedule (round → gate indices).
func (c *Circuit) AndRounds() [][]int { return c.andRounds }

// LocalByRound exposes the free-gate schedule (round → gate indices).
func (c *Circuit) LocalByRound() [][]int { return c.localByRound }

// AndOrdinal returns the Beaver-triple index of gate i (-1 if not AND).
func (c *Circuit) AndOrdinal(i int) int { return c.andIndex[i] }

// ErrNoOutputs reports a Build with no declared outputs.
var ErrNoOutputs = errors.New("circuit: no outputs declared")

// Evaluate runs the circuit in the clear. inputs must supply one bit per
// input wire in creation order. Used by tests and as the functional
// reference for the secure evaluator.
func (c *Circuit) Evaluate(inputs []bool) ([]bool, error) {
	if len(inputs) != len(c.inputs) {
		return nil, fmt.Errorf("circuit: %d input bits, want %d", len(inputs), len(c.inputs))
	}
	vals := make([]bool, c.numWires)
	for i, in := range c.inputs {
		vals[in.Wire] = inputs[i]
	}
	for _, g := range c.gates {
		a := vals[g.A]
		switch g.Op {
		case OpXOR:
			vals[g.Out] = a != vals[g.B]
		case OpAND:
			vals[g.Out] = a && vals[g.B]
		case OpNOT:
			vals[g.Out] = !a
		default:
			return nil, fmt.Errorf("circuit: unknown op %v", g.Op)
		}
	}
	out := make([]bool, len(c.outputs))
	for i, w := range c.outputs {
		out[i] = vals[w]
	}
	return out, nil
}

// Builder incrementally constructs a Circuit. Constant wires are folded at
// build time, so built circuits contain only live gates — mirroring the
// constant propagation an SFDL compiler performs.
type Builder struct {
	nextWire int32
	inputs   []Input
	outputs  []Wire
	gates    []Gate
	style    Style
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Input allocates a fresh input wire owned by party.
func (b *Builder) Input(party int) Wire {
	w := Wire(b.nextWire)
	b.nextWire++
	b.inputs = append(b.inputs, Input{Wire: w, Party: party})
	return w
}

// InputVec allocates a little-endian vector of n input wires owned by party.
func (b *Builder) InputVec(party, n int) []Wire {
	out := make([]Wire, n)
	for i := range out {
		out[i] = b.Input(party)
	}
	return out
}

func (b *Builder) emit(op Op, a, bw Wire) Wire {
	out := Wire(b.nextWire)
	b.nextWire++
	b.gates = append(b.gates, Gate{Op: op, A: a, B: bw, Out: out})
	return out
}

// XOR returns a ⊕ b, folding constants.
func (b *Builder) XOR(a, c Wire) Wire {
	switch {
	case a.IsConst() && c.IsConst():
		return constWire(a.constVal() != c.constVal())
	case a == Zero:
		return c
	case c == Zero:
		return a
	case a == One:
		return b.NOT(c)
	case c == One:
		return b.NOT(a)
	case a == c:
		return Zero
	}
	return b.emit(OpXOR, a, c)
}

// AND returns a ∧ b, folding constants.
func (b *Builder) AND(a, c Wire) Wire {
	switch {
	case a == Zero || c == Zero:
		return Zero
	case a == One:
		return c
	case c == One:
		return a
	case a == c:
		return a
	}
	return b.emit(OpAND, a, c)
}

// NOT returns ¬a, folding constants.
func (b *Builder) NOT(a Wire) Wire {
	if a.IsConst() {
		return constWire(!a.constVal())
	}
	return b.emit(OpNOT, a, Zero)
}

// OR returns a ∨ b via De Morgan (one AND), folding constants.
func (b *Builder) OR(a, c Wire) Wire {
	switch {
	case a == One || c == One:
		return One
	case a == Zero:
		return c
	case c == Zero:
		return a
	case a == c:
		return a
	}
	return b.NOT(b.AND(b.NOT(a), b.NOT(c)))
}

// MUX returns sel ? a : b (one AND after simplification:
// b ⊕ sel·(a⊕b)).
func (b *Builder) MUX(sel, a, c Wire) Wire {
	return b.XOR(c, b.AND(sel, b.XOR(a, c)))
}

// Materialize returns a live wire carrying the same value as w. Constants
// are lowered through explicit gates anchored on any live wire (XOR(a,a)
// is identically 0), so callers with fixed output layouts can emit values
// that happened to fold to constants. Live wires pass through unchanged.
func (b *Builder) Materialize(w, anchor Wire) Wire {
	if !w.IsConst() {
		return w
	}
	if anchor.IsConst() {
		// No live anchor exists only in constant-only circuits, which have
		// nothing to compute securely; treat as a programming error.
		panic("circuit: Materialize needs a live anchor wire")
	}
	zero := b.emit(OpXOR, anchor, anchor)
	if w == Zero {
		return zero
	}
	return b.emit(OpNOT, zero, Zero)
}

// Output declares w as a circuit output. Constant outputs are materialised
// through a gate so the built circuit stays constant-free: Zero as a ⊕ a
// needs a live wire, so Output rejects constants — callers should track
// statically-known outputs themselves (the CountBelow compiler never
// produces one).
func (b *Builder) Output(w Wire) error {
	if w.IsConst() {
		return fmt.Errorf("circuit: constant output %v (fold it at the call site)", w)
	}
	b.outputs = append(b.outputs, w)
	return nil
}

// Build finalises the circuit and precomputes the GMW evaluation schedule.
func (b *Builder) Build() (*Circuit, error) {
	if len(b.outputs) == 0 {
		return nil, ErrNoOutputs
	}
	c := &Circuit{
		numWires: int(b.nextWire),
		inputs:   b.inputs,
		outputs:  b.outputs,
		gates:    b.gates,
	}
	c.schedule()
	return c, nil
}

// schedule assigns every gate to a communication round based on AND-depth.
func (c *Circuit) schedule() {
	depth := make([]int, c.numWires) // AND-depth of each wire; inputs are 0
	maxRound := 0
	gateRound := make([]int, len(c.gates))
	c.andIndex = make([]int, len(c.gates))
	andCount := 0
	for i, g := range c.gates {
		d := depth[g.A]
		if g.Op != OpNOT && int(g.B) >= 0 {
			if bd := depth[g.B]; bd > d {
				d = bd
			}
		}
		gateRound[i] = d
		if g.Op == OpAND {
			c.andIndex[i] = andCount
			andCount++
			depth[g.Out] = d + 1
			if d+1 > maxRound {
				maxRound = d + 1
			}
		} else {
			c.andIndex[i] = -1
			depth[g.Out] = d
			if d > maxRound {
				maxRound = d
			}
		}
	}
	// rounds 0..maxRound-1 have AND batches; free gates at depth r are
	// evaluated at the start of round r (or in the final flush at round
	// maxRound).
	c.andRounds = make([][]int, 0, maxRound)
	c.localByRound = make([][]int, maxRound+1)
	andByRound := make([][]int, maxRound+1)
	for i, g := range c.gates {
		r := gateRound[i]
		if g.Op == OpAND {
			andByRound[r] = append(andByRound[r], i)
		} else {
			c.localByRound[r] = append(c.localByRound[r], i)
		}
	}
	for r := 0; r < maxRound; r++ {
		c.andRounds = append(c.andRounds, andByRound[r])
	}
}

func constWire(v bool) Wire {
	if v {
		return One
	}
	return Zero
}
