package circuit

import "fmt"

// Arithmetic blocks used by the pure-MPC baseline, which — per the paper's
// analysis of the unreordered computation flow (Section IV-A) — evaluates
// the "complex floating point" β* formula inside the circuit instead of
// comparing against a precomputed public threshold. Fixed-point division is
// the cost driver: O(w²) AND gates per identity.

// Sub returns x − y modulo 2^len(x) (two's-complement wraparound).
func (b *Builder) Sub(x, y []Wire) ([]Wire, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("circuit: subtractor width mismatch %d vs %d", len(x), len(y))
	}
	out := make([]Wire, len(x))
	borrow := Zero
	for i := range x {
		xb := b.XOR(x[i], borrow)
		out[i] = b.XOR(xb, y[i])
		if i < len(x)-1 {
			yb := b.XOR(y[i], borrow)
			borrow = b.XOR(b.AND(b.NOT(xb), yb), borrow)
		}
	}
	return out, nil
}

// MulConst returns x · k truncated to width bits, via shift-and-add on the
// set bits of the public constant k.
func (b *Builder) MulConst(x []Wire, k uint64, width int) ([]Wire, error) {
	if width < 1 {
		return nil, fmt.Errorf("circuit: MulConst width %d", width)
	}
	acc := ConstVec(0, width)
	if k == 0 {
		// Materialise zero through the caller's wires is impossible; return
		// constant wires — downstream gates fold them.
		return acc, nil
	}
	shifted := padTo(append([]Wire(nil), x...), width)
	first := true
	for bit := 0; bit < width; bit++ {
		if k>>uint(bit)&1 == 1 {
			term := shiftLeft(shifted, bit, width)
			if first {
				acc = term
				first = false
				continue
			}
			var err error
			acc, err = b.Add(acc, term)
			if err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// shiftLeft shifts the vector left by s positions within width (zero fill).
func shiftLeft(x []Wire, s, width int) []Wire {
	out := make([]Wire, width)
	for i := 0; i < width; i++ {
		if i < s || i-s >= len(x) {
			out[i] = Zero
		} else {
			out[i] = x[i-s]
		}
	}
	return out
}

// Div returns the unsigned quotient x / y (width of x), using a restoring
// divider. Division by zero yields the all-ones quotient (saturation),
// which downstream β handling treats as "certainly common".
func (b *Builder) Div(x, y []Wire) ([]Wire, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("circuit: divider width mismatch %d vs %d", len(x), len(y))
	}
	w := len(x)
	// Remainder register is w+1 bits so the shifted value fits before the
	// conditional subtraction.
	r := ConstVec(0, w+1)
	d := padTo(append([]Wire(nil), y...), w+1)
	q := make([]Wire, w)
	for i := w - 1; i >= 0; i-- {
		// r = (r << 1) | x[i]
		shifted := make([]Wire, w+1)
		shifted[0] = x[i]
		copy(shifted[1:], r[:w])
		ge, err := b.GreaterEq(shifted, d)
		if err != nil {
			return nil, err
		}
		sub, err := b.Sub(shifted, d)
		if err != nil {
			return nil, err
		}
		next := make([]Wire, w+1)
		for bi := range next {
			next[bi] = b.MUX(ge, sub[bi], shifted[bi])
		}
		r = next
		q[i] = ge
	}
	return q, nil
}
