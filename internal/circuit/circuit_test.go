package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, b *Builder) *Circuit {
	t.Helper()
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func evalOne(t *testing.T, c *Circuit, inputs []bool) []bool {
	t.Helper()
	out, err := c.Evaluate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBasicGates(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(0)
	for _, w := range []Wire{b.XOR(x, y), b.AND(x, y), b.NOT(x), b.OR(x, y), b.MUX(x, y, b.NOT(y))} {
		if err := b.Output(w); err != nil {
			t.Fatal(err)
		}
	}
	c := mustBuild(t, b)
	for _, tc := range []struct {
		x, y bool
		want [5]bool // xor, and, not, or, mux(x ? y : !y)
	}{
		{false, false, [5]bool{false, false, true, false, true}},
		{false, true, [5]bool{true, false, true, true, false}},
		{true, false, [5]bool{true, false, false, true, false}},
		{true, true, [5]bool{false, true, false, true, true}},
	} {
		got := evalOne(t, c, []bool{tc.x, tc.y})
		for i, want := range tc.want {
			if got[i] != want {
				t.Errorf("x=%v y=%v output %d = %v, want %v", tc.x, tc.y, i, got[i], want)
			}
		}
	}
}

func TestConstantFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	// Every expression below must fold without emitting gates.
	cases := []struct {
		got  Wire
		want Wire
	}{
		{b.XOR(Zero, Zero), Zero},
		{b.XOR(One, One), Zero},
		{b.XOR(One, Zero), One},
		{b.XOR(x, Zero), x},
		{b.XOR(Zero, x), x},
		{b.XOR(x, x), Zero},
		{b.AND(x, Zero), Zero},
		{b.AND(Zero, x), Zero},
		{b.AND(x, One), x},
		{b.AND(One, x), x},
		{b.AND(One, One), One},
		{b.AND(x, x), x},
		{b.NOT(Zero), One},
		{b.NOT(One), Zero},
		{b.OR(x, Zero), x},
		{b.OR(Zero, Zero), Zero},
		{b.OR(One, x), One},
		{b.MUX(Zero, x, Zero), Zero},
		{b.MUX(One, x, Zero), x},
	}
	for i, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("case %d: got wire %d, want %d", i, tc.got, tc.want)
		}
	}
	if len(b.gates) != 0 {
		t.Fatalf("constant folding emitted %d gates", len(b.gates))
	}
	// XOR(x, One) and NOT(x) each emit exactly one NOT gate.
	if w := b.XOR(x, One); w.IsConst() {
		t.Error("XOR(x, One) folded to constant")
	}
	if len(b.gates) != 1 || b.gates[0].Op != OpNOT {
		t.Fatalf("XOR(x,1) gates = %v", b.gates)
	}
}

func TestOutputRejectsConstant(t *testing.T) {
	b := NewBuilder()
	if err := b.Output(One); err == nil {
		t.Fatal("constant output accepted")
	}
}

func TestBuildNoOutputs(t *testing.T) {
	b := NewBuilder()
	b.Input(0)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with no outputs accepted")
	}
}

func TestEvaluateInputMismatch(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	if err := b.Output(b.NOT(x)); err != nil {
		t.Fatal(err)
	}
	c := mustBuild(t, b)
	if _, err := c.Evaluate(nil); err == nil {
		t.Fatal("missing inputs accepted")
	}
	if _, err := c.Evaluate([]bool{true, false}); err == nil {
		t.Fatal("extra inputs accepted")
	}
}

func TestAdder(t *testing.T) {
	const width = 6
	b := NewBuilder()
	x := b.InputVec(0, width)
	y := b.InputVec(1, width)
	sum, err := b.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range sum {
		if err := b.Output(w); err != nil {
			t.Fatal(err)
		}
	}
	c := mustBuild(t, b)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := rng.Uint64() % (1 << width)
		bb := rng.Uint64() % (1 << width)
		in := append(PackBits(a, width), PackBits(bb, width)...)
		got := UnpackBits(evalOne(t, c, in))
		want := (a + bb) % (1 << width)
		if got != want {
			t.Fatalf("%d + %d = %d, want %d", a, bb, got, want)
		}
	}
}

func TestAddWide(t *testing.T) {
	const width = 5
	b := NewBuilder()
	x := b.InputVec(0, width)
	y := b.InputVec(1, width)
	sum, err := b.AddWide(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != width+1 {
		t.Fatalf("AddWide width = %d", len(sum))
	}
	for _, w := range sum {
		if err := b.Output(w); err != nil {
			t.Fatal(err)
		}
	}
	c := mustBuild(t, b)
	for _, pair := range [][2]uint64{{31, 31}, {0, 0}, {16, 16}, {31, 1}} {
		in := append(PackBits(pair[0], width), PackBits(pair[1], width)...)
		got := UnpackBits(evalOne(t, c, in))
		if want := pair[0] + pair[1]; got != want {
			t.Fatalf("AddWide(%d,%d) = %d, want %d", pair[0], pair[1], got, want)
		}
	}
}

func TestAdderWidthMismatch(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Add(b.InputVec(0, 3), b.InputVec(0, 4)); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if _, err := b.AddWide(b.InputVec(0, 3), b.InputVec(0, 4)); err == nil {
		t.Fatal("AddWide width mismatch accepted")
	}
	if _, err := b.LessThan(b.InputVec(0, 2), b.InputVec(0, 3)); err == nil {
		t.Fatal("comparator width mismatch accepted")
	}
	if _, err := b.Equal(b.InputVec(0, 2), b.InputVec(0, 3)); err == nil {
		t.Fatal("equality width mismatch accepted")
	}
	if _, err := b.SumMod(nil); err == nil {
		t.Fatal("empty SumMod accepted")
	}
	if _, err := b.PopCount(nil); err == nil {
		t.Fatal("empty PopCount accepted")
	}
}

func TestComparators(t *testing.T) {
	const width = 5
	b := NewBuilder()
	x := b.InputVec(0, width)
	y := b.InputVec(1, width)
	lt, err := b.LessThan(x, y)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := b.GreaterEq(x, y)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := b.Equal(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []Wire{lt, ge, eq} {
		if err := b.Output(w); err != nil {
			t.Fatal(err)
		}
	}
	c := mustBuild(t, b)
	for a := uint64(0); a < 32; a += 3 {
		for bb := uint64(0); bb < 32; bb += 2 {
			in := append(PackBits(a, width), PackBits(bb, width)...)
			got := evalOne(t, c, in)
			if got[0] != (a < bb) || got[1] != (a >= bb) || got[2] != (a == bb) {
				t.Fatalf("compare(%d,%d) = %v", a, bb, got)
			}
		}
	}
}

func TestComparatorAgainstConstantFolds(t *testing.T) {
	const width = 8
	b := NewBuilder()
	x := b.InputVec(0, width)
	ge, err := b.GreaterEq(x, ConstVec(100, width))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Output(ge); err != nil {
		t.Fatal(err)
	}
	c := mustBuild(t, b)
	stats := c.Stats()
	// Constant comparison must use fewer than one AND per bit after folding.
	if stats.AndGates >= width {
		t.Fatalf("AndGates = %d, expected folding below %d", stats.AndGates, width)
	}
	for _, v := range []uint64{0, 99, 100, 101, 255} {
		got := evalOne(t, c, PackBits(v, width))
		if got[0] != (v >= 100) {
			t.Fatalf("v=%d: got %v", v, got[0])
		}
	}
}

func TestPopCount(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 17} {
		b := NewBuilder()
		bits := b.InputVec(0, n)
		cnt, err := b.PopCount(bits)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range cnt {
			if err := b.Output(w); err != nil {
				t.Fatal(err)
			}
		}
		c := mustBuild(t, b)
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 50; trial++ {
			in := make([]bool, n)
			want := uint64(0)
			for i := range in {
				in[i] = rng.Intn(2) == 1
				if in[i] {
					want++
				}
			}
			if got := UnpackBits(evalOne(t, c, in)); got != want {
				t.Fatalf("n=%d popcount = %d, want %d", n, got, want)
			}
		}
	}
}

func TestSumModMatchesModularArithmetic(t *testing.T) {
	const width, k = 4, 3
	b := NewBuilder()
	vecs := make([][]Wire, k)
	for i := range vecs {
		vecs[i] = b.InputVec(i, width)
	}
	sum, err := b.SumMod(vecs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range sum {
		if err := b.Output(w); err != nil {
			t.Fatal(err)
		}
	}
	c := mustBuild(t, b)
	prop := func(a, bb, cc uint8) bool {
		va, vb, vc := uint64(a%16), uint64(bb%16), uint64(cc%16)
		in := append(append(PackBits(va, width), PackBits(vb, width)...), PackBits(vc, width)...)
		out, err := c.Evaluate(in)
		if err != nil {
			return false
		}
		return UnpackBits(out) == (va+vb+vc)%16
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestScheduleCoversAllGates(t *testing.T) {
	b := NewBuilder()
	x := b.InputVec(0, 8)
	y := b.InputVec(1, 8)
	s, err := b.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := b.LessThan(s, ConstVec(77, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Output(lt); err != nil {
		t.Fatal(err)
	}
	c := mustBuild(t, b)
	seen := make(map[int]bool)
	for _, round := range c.AndRounds() {
		for _, gi := range round {
			if seen[gi] {
				t.Fatalf("gate %d scheduled twice", gi)
			}
			seen[gi] = true
			if c.Gates()[gi].Op != OpAND {
				t.Fatalf("non-AND gate %d in AND round", gi)
			}
		}
	}
	for _, round := range c.LocalByRound() {
		for _, gi := range round {
			if seen[gi] {
				t.Fatalf("gate %d scheduled twice", gi)
			}
			seen[gi] = true
			if c.Gates()[gi].Op == OpAND {
				t.Fatalf("AND gate %d in local round", gi)
			}
		}
	}
	if len(seen) != len(c.Gates()) {
		t.Fatalf("schedule covers %d of %d gates", len(seen), len(c.Gates()))
	}
	st := c.Stats()
	if st.AndDepth != len(c.AndRounds()) {
		t.Fatalf("AndDepth %d != rounds %d", st.AndDepth, len(c.AndRounds()))
	}
	if st.Gates != st.AndGates+st.FreeGates {
		t.Fatal("gate counts inconsistent")
	}
	if st.Size() != st.Gates {
		t.Fatal("Size() != Gates")
	}
}

func TestAndOrdinalsAreDense(t *testing.T) {
	b := NewBuilder()
	x := b.InputVec(0, 4)
	y := b.InputVec(1, 4)
	s, err := b.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Output(s[3]); err != nil {
		t.Fatal(err)
	}
	c := mustBuild(t, b)
	ordinals := make(map[int]bool)
	for i, g := range c.Gates() {
		ord := c.AndOrdinal(i)
		if g.Op == OpAND {
			if ord < 0 || ordinals[ord] {
				t.Fatalf("bad ordinal %d for AND gate %d", ord, i)
			}
			ordinals[ord] = true
		} else if ord != -1 {
			t.Fatalf("non-AND gate %d has ordinal %d", i, ord)
		}
	}
	for i := 0; i < len(ordinals); i++ {
		if !ordinals[i] {
			t.Fatalf("ordinal %d missing", i)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpXOR.String() != "XOR" || OpAND.String() != "AND" || OpNOT.String() != "NOT" {
		t.Error("op names wrong")
	}
	if Op(9).String() != "op(9)" {
		t.Error("unknown op name wrong")
	}
}

func TestBitsHelpers(t *testing.T) {
	if BitsNeeded(0) != 1 || BitsNeeded(1) != 1 || BitsNeeded(2) != 2 || BitsNeeded(255) != 8 || BitsNeeded(256) != 9 {
		t.Fatal("BitsNeeded wrong")
	}
	for _, v := range []uint64{0, 1, 5, 100, 1023} {
		if got := UnpackBits(PackBits(v, 10)); got != v {
			t.Fatalf("pack/unpack %d -> %d", v, got)
		}
	}
}
