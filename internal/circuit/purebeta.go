package circuit

import "fmt"

// PureBetaParams configures the fully-unreduced baseline protocol circuit:
// the computation flow of Equation 8 evaluated entirely inside MPC, without
// the ε-PPI reordering. All m providers are parties; for every identity the
// circuit
//
//  1. aggregates the raw membership bits (popcount → freq),
//  2. computes the raw publishing probability in fixed point,
//     β*·2^F = (freq << 2F) / ((m − freq) · E),  E = (ε⁻¹ − 1)·2^F,
//     using a restoring divider (the "complex floating point computation"
//     the paper pushes out of the secure part),
//  3. mixes (coin < MixThreshold) and masks exactly like Reveal,
//
// and outputs per identity: hidden bit, then the masked fixed-point β*.
type PureBetaParams struct {
	// Providers is m.
	Providers int
	// Identities is the number of identities in this batch.
	Identities int
	// EpsFixed holds E_j = round((1/ε_j − 1)·2^FracBits) per identity;
	// E_j = 0 (ε_j = 1) marks the identity always-common.
	EpsFixed []uint64
	// FracBits is the fixed-point fraction width F.
	FracBits int
	// CoinBits is the mixing-coin precision.
	CoinBits int
	// MixThreshold is the public λ·2^CoinBits cutoff (< 2^CoinBits).
	MixThreshold uint64
}

// EpsToFixed converts a privacy degree ε ∈ (0, 1] to the fixed-point
// constant E = round((1/ε − 1)·2^fracBits) used by PureBeta.
func EpsToFixed(eps float64, fracBits int) uint64 {
	if eps <= 0 || eps > 1 {
		return 0
	}
	scaled := (1/eps - 1) * float64(uint64(1)<<uint(fracBits))
	return uint64(scaled + 0.5)
}

// PureBeta compiles the baseline circuit. Input order per provider i: for
// each identity j, one membership bit then CoinBits coin wires (same
// convention as PureReveal). Output order per identity: hidden bit, then
// width = BitsNeeded(m) + 2·FracBits masked β* bits.
func PureBeta(p PureBetaParams) (*Circuit, error) {
	if p.Providers < 2 || p.Identities < 1 || p.FracBits < 1 || p.CoinBits < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrNoParams, p)
	}
	if len(p.EpsFixed) != p.Identities {
		return nil, fmt.Errorf("%w: %d ε constants for %d identities", ErrNoParams, len(p.EpsFixed), p.Identities)
	}
	if p.MixThreshold >= uint64(1)<<uint(p.CoinBits) {
		return nil, fmt.Errorf("%w: mix threshold %d needs more than %d coin bits", ErrNoParams, p.MixThreshold, p.CoinBits)
	}
	k := BitsNeeded(uint64(p.Providers))
	w := k + 2*p.FracBits
	for j, e := range p.EpsFixed {
		// denom = (m − freq)·E must fit in w bits for the division to be
		// exact; worst case (m − freq) = m.
		if e != 0 && BitsNeeded(uint64(p.Providers)*e) > w {
			return nil, fmt.Errorf("%w: ε constant %d (identity %d) overflows %d-bit divider", ErrNoParams, e, j, w)
		}
	}

	b := NewBuilder()
	bits := make([][]Wire, p.Identities)
	coins := make([][][]Wire, p.Identities)
	for j := range bits {
		bits[j] = make([]Wire, p.Providers)
		coins[j] = make([][]Wire, p.Providers)
	}
	for i := 0; i < p.Providers; i++ {
		for j := 0; j < p.Identities; j++ {
			bits[j][i] = b.Input(i)
			coins[j][i] = b.InputVec(i, p.CoinBits)
		}
	}
	one := uint64(1) << uint(p.FracBits) // fixed-point 1.0
	for j := 0; j < p.Identities; j++ {
		freq, err := b.PopCount(bits[j])
		if err != nil {
			return nil, err
		}
		freq = padTo(freq, k)
		anchor := bits[j][0]

		var beta []Wire // fixed-point β*, w bits
		var common Wire
		if p.EpsFixed[j] == 0 {
			// ε = 1: β* = ∞; always common.
			common = One
			beta = ConstVec(0, w)
		} else {
			// denomBase = m − freq  (k bits; never negative).
			denomBase, err := b.Sub(ConstVec(uint64(p.Providers), k), freq)
			if err != nil {
				return nil, err
			}
			denom, err := b.MulConst(denomBase, p.EpsFixed[j], w)
			if err != nil {
				return nil, err
			}
			numer := shiftLeft(freq, 2*p.FracBits, w)
			beta, err = b.Div(numer, denom)
			if err != nil {
				return nil, err
			}
			common, err = b.GreaterEq(beta, ConstVec(one, w))
			if err != nil {
				return nil, err
			}
		}

		coin := coins[j][0]
		for i := 1; i < p.Providers; i++ {
			next := make([]Wire, p.CoinBits)
			for bi := range next {
				next[bi] = b.XOR(coin[bi], coins[j][i][bi])
			}
			coin = next
		}
		mix, err := b.LessThan(coin, ConstVec(p.MixThreshold, p.CoinBits))
		if err != nil {
			return nil, err
		}
		hidden := b.OR(common, mix)
		if err := b.Output(b.Materialize(hidden, anchor)); err != nil {
			return nil, err
		}
		notHidden := b.NOT(b.Materialize(hidden, anchor))
		for _, bw := range beta {
			if err := b.Output(b.Materialize(b.AND(bw, notHidden), anchor)); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}
