package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStyleString(t *testing.T) {
	if StyleRipple.String() != "ripple" || StylePrefix.String() != "prefix" || Style(7).String() != "style(7)" {
		t.Fatal("style names wrong")
	}
}

// Prefix adder must agree with native addition across widths.
func TestPrefixAdderCorrect(t *testing.T) {
	for _, width := range []int{1, 2, 3, 7, 8, 16, 31} {
		b := NewBuilder()
		b.SetStyle(StylePrefix)
		x := b.InputVec(0, width)
		y := b.InputVec(1, width)
		sum, err := b.Add(x, y)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range sum {
			if err := b.Output(b.Materialize(w, x[0])); err != nil {
				t.Fatal(err)
			}
		}
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(width)))
		mod := uint64(1) << uint(width)
		for trial := 0; trial < 100; trial++ {
			a := rng.Uint64() % mod
			bb := rng.Uint64() % mod
			in := append(PackBits(a, width), PackBits(bb, width)...)
			out, err := c.Evaluate(in)
			if err != nil {
				t.Fatal(err)
			}
			if got := UnpackBits(out); got != (a+bb)%mod {
				t.Fatalf("width %d: %d + %d = %d, want %d", width, a, bb, got, (a+bb)%mod)
			}
		}
	}
}

// Prefix comparator must agree with native comparison.
func TestPrefixComparatorCorrect(t *testing.T) {
	const width = 9
	b := NewBuilder()
	b.SetStyle(StylePrefix)
	x := b.InputVec(0, width)
	y := b.InputVec(1, width)
	lt, err := b.LessThan(x, y)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := b.GreaterEq(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Output(lt); err != nil {
		t.Fatal(err)
	}
	if err := b.Output(ge); err != nil {
		t.Fatal(err)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, bb uint16) bool {
		va := uint64(a) % 512
		vb := uint64(bb) % 512
		in := append(PackBits(va, width), PackBits(vb, width)...)
		out, err := c.Evaluate(in)
		if err != nil {
			return false
		}
		return out[0] == (va < vb) && out[1] == (va >= vb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// The entire point: prefix arithmetic must cut AND depth to O(log w) while
// the ripple version is O(w).
func TestPrefixDepthAdvantage(t *testing.T) {
	const width = 32
	build := func(style Style) Stats {
		b := NewBuilder()
		b.SetStyle(style)
		x := b.InputVec(0, width)
		y := b.InputVec(1, width)
		sum, err := b.Add(x, y)
		if err != nil {
			t.Fatal(err)
		}
		lt, err := b.LessThan(sum, ConstVec(12345, width))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Output(lt); err != nil {
			t.Fatal(err)
		}
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return c.Stats()
	}
	ripple := build(StyleRipple)
	prefix := build(StylePrefix)
	if prefix.AndDepth*3 >= ripple.AndDepth {
		t.Fatalf("prefix depth %d not ≪ ripple depth %d", prefix.AndDepth, ripple.AndDepth)
	}
	if prefix.AndGates <= ripple.AndGates {
		t.Fatalf("prefix should spend more AND gates (%d vs %d) — nothing is free", prefix.AndGates, ripple.AndGates)
	}
}

// Prefix-style CountBelow / Reveal must produce the same results as ripple.
func TestPrefixCompilersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// 16-bit shares: wide enough for the log-depth advantage to dominate
	// (at 8 bits the two styles' depths nearly tie).
	base := CountBelowParams{
		Parties:    3,
		Identities: 4,
		ShareBits:  16,
		Thresholds: []uint64{5, 100, 30, 1},
	}
	ripple, err := CountBelow(base)
	if err != nil {
		t.Fatal(err)
	}
	pfx := base
	pfx.Arithmetic = StylePrefix
	prefix, err := CountBelow(pfx)
	if err != nil {
		t.Fatal(err)
	}
	if prefix.Stats().AndDepth >= ripple.Stats().AndDepth {
		t.Fatalf("prefix CountBelow depth %d >= ripple %d", prefix.Stats().AndDepth, ripple.Stats().AndDepth)
	}
	mod := uint64(1) << 16
	for trial := 0; trial < 20; trial++ {
		var in []bool
		for k := 0; k < base.Parties; k++ {
			for j := 0; j < base.Identities; j++ {
				in = append(in, PackBits(rng.Uint64()%mod, base.ShareBits)...)
			}
		}
		a, err := ripple.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := prefix.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		if UnpackBits(a) != UnpackBits(b) {
			t.Fatalf("trial %d: ripple %d != prefix %d", trial, UnpackBits(a), UnpackBits(b))
		}
	}
}

// GMW evaluation of a prefix circuit (smoke: the schedule machinery must
// handle the wider, shallower layout).
func TestPrefixStatsSane(t *testing.T) {
	rv, err := Reveal(RevealParams{
		Parties: 3, Identities: 2, ShareBits: 10,
		Thresholds: []uint64{7, 9}, CoinBits: 8, MixThreshold: 3,
		Arithmetic: StylePrefix,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rv.Stats()
	if st.AndDepth > 20 {
		t.Fatalf("prefix Reveal depth %d suspiciously deep", st.AndDepth)
	}
	if st.Gates != st.AndGates+st.FreeGates {
		t.Fatal("stats inconsistent")
	}
}
