package circuit

import "fmt"

// Parallel-prefix (Kogge–Stone) arithmetic. In the GMW protocol every AND
// depth level costs one communication round, so on latency-bound networks
// a log-depth adder beats the ripple adder even though it spends more AND
// gates. The Builder carries an adder style so the circuit compilers can
// be switched wholesale (the ablation-depth experiment quantifies the
// trade).
//
// Prefix cells combine (generate, propagate) pairs:
//
//	(G, P) = (G_hi ⊕ (P_hi ∧ G_lo), P_hi ∧ P_lo)
//
// where the ⊕ stands in for ∨ because G_hi and P_hi are mutually
// exclusive by construction (a bit position either generates or
// propagates a carry, never both).

// Style selects the arithmetic implementation used by Add/LessThan and
// everything built on them.
type Style int

// Adder styles. The zero value is ripple (the simple default).
const (
	// StyleRipple: O(w) AND gates, O(w) AND depth.
	StyleRipple Style = iota
	// StylePrefix: Kogge–Stone, O(w log w) AND gates, O(log w) AND depth.
	StylePrefix
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StyleRipple:
		return "ripple"
	case StylePrefix:
		return "prefix"
	default:
		return fmt.Sprintf("style(%d)", int(s))
	}
}

// SetStyle selects the arithmetic style for subsequent word-level blocks.
func (b *Builder) SetStyle(s Style) { b.style = s }

// prefixCarries returns the carry INTO every bit position (carry[0] = cin
// fold, len = w) plus the carry out, for inputs with generate g and
// propagate p vectors, using Kogge–Stone prefix combination.
func (b *Builder) prefixCarries(g, p []Wire, cin Wire) (carries []Wire, cout Wire) {
	w := len(g)
	// Fold the carry-in into position 0's generate: a carry leaves bit 0
	// if it generates, or propagates the incoming carry.
	gAll := make([]Wire, w)
	pAll := make([]Wire, w)
	copy(gAll, g)
	copy(pAll, p)
	if cin != Zero {
		gAll[0] = b.XOR(gAll[0], b.AND(pAll[0], cin))
	}
	// Kogge–Stone: after level d, (gAll[i], pAll[i]) describes the span
	// [i-2d+1 .. i].
	for d := 1; d < w; d <<= 1 {
		ng := make([]Wire, w)
		np := make([]Wire, w)
		copy(ng, gAll)
		copy(np, pAll)
		for i := d; i < w; i++ {
			ng[i] = b.XOR(gAll[i], b.AND(pAll[i], gAll[i-d]))
			np[i] = b.AND(pAll[i], pAll[i-d])
		}
		gAll, pAll = ng, np
	}
	carries = make([]Wire, w)
	carries[0] = cin
	for i := 1; i < w; i++ {
		carries[i] = gAll[i-1]
	}
	return carries, gAll[w-1]
}

// addPrefix is the log-depth counterpart of the ripple Add.
func (b *Builder) addPrefix(x, y []Wire) ([]Wire, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("circuit: adder width mismatch %d vs %d", len(x), len(y))
	}
	w := len(x)
	g := make([]Wire, w)
	p := make([]Wire, w)
	for i := 0; i < w; i++ {
		g[i] = b.AND(x[i], y[i])
		p[i] = b.XOR(x[i], y[i])
	}
	carries, _ := b.prefixCarries(g, p, Zero)
	out := make([]Wire, w)
	for i := 0; i < w; i++ {
		out[i] = b.XOR(p[i], carries[i])
	}
	return out, nil
}

// lessThanPrefix computes x < y in logarithmic AND depth via the carry-out
// of x + ¬y + 1: the addition overflows exactly when x >= y.
func (b *Builder) lessThanPrefix(x, y []Wire) (Wire, error) {
	if len(x) != len(y) {
		return Zero, fmt.Errorf("circuit: comparator width mismatch %d vs %d", len(x), len(y))
	}
	w := len(x)
	g := make([]Wire, w)
	p := make([]Wire, w)
	for i := 0; i < w; i++ {
		ny := b.NOT(y[i])
		g[i] = b.AND(x[i], ny)
		p[i] = b.XOR(x[i], ny)
	}
	_, cout := b.prefixCarries(g, p, One)
	return b.NOT(cout), nil
}
