package circuit

import "fmt"

// This file compiles the second secure stage of ε-PPI construction: the
// identity-mixing "reveal or mask" computation (Equation 6 of the paper).
//
// After CountBelow has produced the public common-identity count (and hence
// the public mixing rate λ), each identity's frequency must either be
// *opened* (non-common, not selected for mixing — its β* is then computed
// in the clear) or *masked* (common, or mixed in with probability λ — its
// β is forced to 1). The decision bit must be computed on secret data:
// opening σ first and deciding afterwards would leak exactly the common
// identities that the mixing is meant to hide.
//
// Per identity j the circuit computes:
//
//	freq_j   = Σ_k share_k(j)           mod 2^ShareBits
//	common_j = freq_j ≥ t_j             (public per-identity threshold)
//	coin_j   = ⊕_k coinBits_k(j)        (jointly uniform CoinBits-bit value)
//	mix_j    = coin_j < MixThreshold    (public; MixThreshold ≈ λ·2^CoinBits)
//	hidden_j = common_j ∨ mix_j
//
// and outputs hidden_j followed by freq_j ∧ ¬hidden_j bit-wise (the masked
// frequency: the true frequency when revealed, zero when hidden).

// RevealParams configures the MPC-reduced reveal circuit (parties are the
// c coordinators holding additive shares).
type RevealParams struct {
	// Parties is c, the number of coordinators.
	Parties int
	// Identities is the number of identities in this batch.
	Identities int
	// ShareBits is the share width (group Z_{2^ShareBits}).
	ShareBits int
	// Thresholds holds the public per-identity common thresholds t_j >= 1.
	Thresholds []uint64
	// CoinBits is the precision of the mixing coin.
	CoinBits int
	// MixThreshold is the public λ·2^CoinBits cutoff; 0 disables mixing and
	// it must be < 2^CoinBits (clamp λ upstream).
	MixThreshold uint64
	// Arithmetic selects ripple (default) or log-depth prefix arithmetic.
	Arithmetic Style
}

// Reveal compiles the MPC-reduced reveal circuit. Input order per party k:
// for each identity j, ShareBits wires of share s(k,j), then CoinBits wires
// of k's coin contribution for j. Output order per identity: hidden bit,
// then ShareBits masked-frequency bits.
func Reveal(p RevealParams) (*Circuit, error) {
	if p.Parties < 2 || p.Identities < 1 || p.ShareBits < 1 || p.CoinBits < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrNoParams, p)
	}
	if len(p.Thresholds) != p.Identities {
		return nil, fmt.Errorf("%w: %d thresholds for %d identities", ErrNoParams, len(p.Thresholds), p.Identities)
	}
	if p.MixThreshold >= uint64(1)<<uint(p.CoinBits) {
		return nil, fmt.Errorf("%w: mix threshold %d needs more than %d coin bits", ErrNoParams, p.MixThreshold, p.CoinBits)
	}
	for j, t := range p.Thresholds {
		if t == 0 {
			return nil, fmt.Errorf("%w: zero threshold (identity %d)", ErrNoParams, j)
		}
		if BitsNeeded(t) > p.ShareBits {
			return nil, fmt.Errorf("%w: threshold %d (identity %d) exceeds %d bits", ErrNoParams, t, j, p.ShareBits)
		}
	}
	b := NewBuilder()
	b.SetStyle(p.Arithmetic)
	type partyInputs struct {
		shares [][]Wire // [identity][bit]
		coins  [][]Wire // [identity][bit]
	}
	parties := make([]partyInputs, p.Parties)
	for k := range parties {
		parties[k].shares = make([][]Wire, p.Identities)
		parties[k].coins = make([][]Wire, p.Identities)
		for j := 0; j < p.Identities; j++ {
			parties[k].shares[j] = b.InputVec(k, p.ShareBits)
			parties[k].coins[j] = b.InputVec(k, p.CoinBits)
		}
	}
	for j := 0; j < p.Identities; j++ {
		vecs := make([][]Wire, p.Parties)
		for k := range vecs {
			vecs[k] = parties[k].shares[j]
		}
		freq, err := b.SumMod(vecs)
		if err != nil {
			return nil, err
		}
		common, err := b.GreaterEq(freq, ConstVec(p.Thresholds[j], p.ShareBits))
		if err != nil {
			return nil, err
		}
		coin := parties[0].coins[j]
		for k := 1; k < p.Parties; k++ {
			next := make([]Wire, p.CoinBits)
			for bi := range next {
				next[bi] = b.XOR(coin[bi], parties[k].coins[j][bi])
			}
			coin = next
		}
		mix, err := b.LessThan(coin, ConstVec(p.MixThreshold, p.CoinBits))
		if err != nil {
			return nil, err
		}
		hidden := b.OR(common, mix)
		if err := b.Output(hidden); err != nil {
			return nil, err
		}
		notHidden := b.NOT(hidden)
		for _, fw := range freq {
			masked := b.AND(fw, notHidden)
			if masked.IsConst() {
				// A share-sum bit can fold to a constant only if every share
				// bit folded, which inputs never do; guard regardless.
				return nil, fmt.Errorf("%w: degenerate masked output", ErrNoParams)
			}
			if err := b.Output(masked); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}

// PureRevealParams configures the pure-MPC baseline reveal circuit: all m
// providers are parties, each inputting its raw membership bit plus a coin
// contribution per identity.
type PureRevealParams struct {
	// Providers is m.
	Providers int
	// Identities is the number of identities in this batch.
	Identities int
	// Thresholds holds the public per-identity common thresholds t_j >= 1.
	Thresholds []uint64
	// CoinBits is the precision of the mixing coin.
	CoinBits int
	// MixThreshold is the public λ·2^CoinBits cutoff (< 2^CoinBits).
	MixThreshold uint64
}

// PureReveal compiles the baseline reveal circuit. Input order per provider
// i: for each identity j, one membership bit, then CoinBits coin wires.
// Output order matches Reveal with frequency width BitsNeeded(m).
func PureReveal(p PureRevealParams) (*Circuit, error) {
	if p.Providers < 2 || p.Identities < 1 || p.CoinBits < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrNoParams, p)
	}
	if len(p.Thresholds) != p.Identities {
		return nil, fmt.Errorf("%w: %d thresholds for %d identities", ErrNoParams, len(p.Thresholds), p.Identities)
	}
	if p.MixThreshold >= uint64(1)<<uint(p.CoinBits) {
		return nil, fmt.Errorf("%w: mix threshold %d needs more than %d coin bits", ErrNoParams, p.MixThreshold, p.CoinBits)
	}
	width := BitsNeeded(uint64(p.Providers))
	for j, t := range p.Thresholds {
		if t == 0 {
			return nil, fmt.Errorf("%w: zero threshold (identity %d)", ErrNoParams, j)
		}
		if BitsNeeded(t) > width {
			return nil, fmt.Errorf("%w: threshold %d (identity %d) exceeds %d bits", ErrNoParams, t, j, width)
		}
	}
	b := NewBuilder()
	bits := make([][]Wire, p.Identities)    // [identity][provider]
	coins := make([][][]Wire, p.Identities) // [identity][provider][bit]
	for j := range bits {
		bits[j] = make([]Wire, p.Providers)
		coins[j] = make([][]Wire, p.Providers)
	}
	for i := 0; i < p.Providers; i++ {
		for j := 0; j < p.Identities; j++ {
			bits[j][i] = b.Input(i)
			coins[j][i] = b.InputVec(i, p.CoinBits)
		}
	}
	for j := 0; j < p.Identities; j++ {
		freq, err := b.PopCount(bits[j])
		if err != nil {
			return nil, err
		}
		freq = padTo(freq, width)
		common, err := b.GreaterEq(freq, ConstVec(p.Thresholds[j], width))
		if err != nil {
			return nil, err
		}
		coin := coins[j][0]
		for i := 1; i < p.Providers; i++ {
			next := make([]Wire, p.CoinBits)
			for bi := range next {
				next[bi] = b.XOR(coin[bi], coins[j][i][bi])
			}
			coin = next
		}
		mix, err := b.LessThan(coin, ConstVec(p.MixThreshold, p.CoinBits))
		if err != nil {
			return nil, err
		}
		hidden := b.OR(common, mix)
		if err := b.Output(hidden); err != nil {
			return nil, err
		}
		notHidden := b.NOT(hidden)
		for _, fw := range freq {
			masked := b.AND(fw, notHidden)
			if masked.IsConst() {
				return nil, fmt.Errorf("%w: degenerate masked output", ErrNoParams)
			}
			if err := b.Output(masked); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}
