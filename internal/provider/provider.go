// Package provider models an autonomous provider (a hospital in the
// paper's healthcare scenario): a private record store with a local
// access-control subsystem, the Delegate intake operation, and the local
// half of AuthSearch.
package provider

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

var (
	// ErrUnauthorized reports an AuthSearch by a searcher without a grant.
	ErrUnauthorized = errors.New("provider: searcher not authorized")
	// ErrBadDelegation reports an invalid Delegate call.
	ErrBadDelegation = errors.New("provider: invalid delegation")
)

// Record is one delegated personal record (e.g. a medical record).
type Record struct {
	// Owner is the identity t_j of the record's owner.
	Owner string
	// Kind labels the record type (e.g. "radiology", "prescription").
	Kind string
	// Body is the record payload.
	Body string
}

// Provider is one autonomous provider node. All methods are safe for
// concurrent use.
type Provider struct {
	id   int
	name string

	mu      sync.RWMutex
	records map[string][]Record
	epsilon map[string]float64 // per-owner privacy degree from Delegate
	granted map[string]bool    // searchers allowed by the ACL
}

// New creates an empty provider with the given network id and display name.
func New(id int, name string) *Provider {
	return &Provider{
		id:      id,
		name:    name,
		records: make(map[string][]Record),
		epsilon: make(map[string]float64),
		granted: make(map[string]bool),
	}
}

// ID returns the provider's network id (its row in the membership matrix).
func (p *Provider) ID() int { return p.id }

// Name returns the display name.
func (p *Provider) Name() string { return p.name }

// Delegate stores a record on behalf of its owner together with the owner's
// privacy degree ε ∈ [0,1] (the paper's Delegate(⟨t_j, ε_j⟩, p_i)). If the
// owner has delegated before with a different ε, the maximum is kept: a
// privacy preference can be strengthened but is never silently weakened.
func (p *Provider) Delegate(rec Record, epsilon float64) error {
	if rec.Owner == "" {
		return fmt.Errorf("%w: empty owner identity", ErrBadDelegation)
	}
	if epsilon < 0 || epsilon > 1 {
		return fmt.Errorf("%w: ε=%v out of [0,1]", ErrBadDelegation, epsilon)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.records[rec.Owner] = append(p.records[rec.Owner], rec)
	if cur, ok := p.epsilon[rec.Owner]; !ok || epsilon > cur {
		p.epsilon[rec.Owner] = epsilon
	}
	return nil
}

// Grant authorizes a searcher in the local access-control subsystem.
func (p *Provider) Grant(searcher string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.granted[searcher] = true
}

// Revoke removes a searcher's authorization.
func (p *Provider) Revoke(searcher string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.granted, searcher)
}

// AuthSearch is the provider half of the second search phase: the searcher
// authenticates, the ACL authorizes, and only then is the local repository
// searched. An authorized search for an absent owner returns an empty slice
// (the searcher has hit one of the index's false positives).
func (p *Provider) AuthSearch(searcher, owner string) ([]Record, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if !p.granted[searcher] {
		return nil, fmt.Errorf("%w: %q at provider %q", ErrUnauthorized, searcher, p.name)
	}
	recs := p.records[owner]
	out := make([]Record, len(recs))
	copy(out, recs)
	return out, nil
}

// Has reports whether the provider truly holds records of owner (private
// information; used to build the membership matrix during construction).
func (p *Provider) Has(owner string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.records[owner]) > 0
}

// Owners returns the identities delegated to this provider, sorted.
func (p *Provider) Owners() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.records))
	for owner := range p.records {
		out = append(out, owner)
	}
	sort.Strings(out)
	return out
}

// Epsilon returns the owner's registered privacy degree and whether the
// owner has delegated here.
func (p *Provider) Epsilon(owner string) (float64, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	e, ok := p.epsilon[owner]
	return e, ok
}

// LocalVector returns the provider's membership bits for the given global
// identity ordering — the M_i(·) vector it contributes to ConstructPPI.
func (p *Provider) LocalVector(names []string) []bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]bool, len(names))
	for i, name := range names {
		out[i] = len(p.records[name]) > 0
	}
	return out
}

// RecordCount returns the total number of stored records.
func (p *Provider) RecordCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	total := 0
	for _, recs := range p.records {
		total += len(recs)
	}
	return total
}
