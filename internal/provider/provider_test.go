package provider

import (
	"errors"
	"sync"
	"testing"
)

func TestDelegateValidation(t *testing.T) {
	p := New(0, "general-hospital")
	if err := p.Delegate(Record{Owner: "", Body: "x"}, 0.5); !errors.Is(err, ErrBadDelegation) {
		t.Fatalf("empty owner error = %v", err)
	}
	if err := p.Delegate(Record{Owner: "alice"}, -0.1); !errors.Is(err, ErrBadDelegation) {
		t.Fatalf("negative ε error = %v", err)
	}
	if err := p.Delegate(Record{Owner: "alice"}, 1.1); !errors.Is(err, ErrBadDelegation) {
		t.Fatalf("ε > 1 error = %v", err)
	}
	if err := p.Delegate(Record{Owner: "alice", Kind: "radiology", Body: "scan"}, 0.7); err != nil {
		t.Fatal(err)
	}
}

func TestEpsilonKeepsMaximum(t *testing.T) {
	p := New(0, "p")
	if err := p.Delegate(Record{Owner: "alice"}, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := p.Delegate(Record{Owner: "alice"}, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := p.Delegate(Record{Owner: "alice"}, 0.1); err != nil {
		t.Fatal(err)
	}
	e, ok := p.Epsilon("alice")
	if !ok || e != 0.9 {
		t.Fatalf("ε = %v ok=%v, want 0.9", e, ok)
	}
	if _, ok := p.Epsilon("nobody"); ok {
		t.Fatal("Epsilon reported unknown owner")
	}
}

func TestAuthSearchACL(t *testing.T) {
	p := New(1, "clinic")
	if err := p.Delegate(Record{Owner: "bob", Kind: "rx", Body: "aspirin"}, 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AuthSearch("dr-eve", "bob"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unauthorized search error = %v", err)
	}
	p.Grant("dr-eve")
	recs, err := p.AuthSearch("dr-eve", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Body != "aspirin" {
		t.Fatalf("records = %v", recs)
	}
	// Authorized search for an absent owner: empty, no error (false positive).
	recs, err = p.AuthSearch("dr-eve", "carol")
	if err != nil || len(recs) != 0 {
		t.Fatalf("absent owner: %v, %v", recs, err)
	}
	p.Revoke("dr-eve")
	if _, err := p.AuthSearch("dr-eve", "bob"); !errors.Is(err, ErrUnauthorized) {
		t.Fatal("revocation ineffective")
	}
}

func TestAuthSearchCopiesRecords(t *testing.T) {
	p := New(0, "p")
	if err := p.Delegate(Record{Owner: "a", Body: "original"}, 0); err != nil {
		t.Fatal(err)
	}
	p.Grant("s")
	recs, err := p.AuthSearch("s", "a")
	if err != nil {
		t.Fatal(err)
	}
	recs[0].Body = "tampered"
	recs2, err := p.AuthSearch("s", "a")
	if err != nil {
		t.Fatal(err)
	}
	if recs2[0].Body != "original" {
		t.Fatal("AuthSearch exposed internal record storage")
	}
}

func TestLocalVectorAndOwners(t *testing.T) {
	p := New(2, "p")
	for _, owner := range []string{"zed", "alice"} {
		if err := p.Delegate(Record{Owner: owner}, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	owners := p.Owners()
	if len(owners) != 2 || owners[0] != "alice" || owners[1] != "zed" {
		t.Fatalf("Owners = %v", owners)
	}
	vec := p.LocalVector([]string{"alice", "bob", "zed"})
	want := []bool{true, false, true}
	for i := range want {
		if vec[i] != want[i] {
			t.Fatalf("LocalVector = %v, want %v", vec, want)
		}
	}
	if !p.Has("alice") || p.Has("bob") {
		t.Fatal("Has wrong")
	}
	if p.RecordCount() != 2 {
		t.Fatalf("RecordCount = %d", p.RecordCount())
	}
	if p.ID() != 2 || p.Name() != "p" {
		t.Fatal("accessors wrong")
	}
}

func TestConcurrentDelegateAndSearch(t *testing.T) {
	p := New(0, "p")
	p.Grant("s")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				if err := p.Delegate(Record{Owner: "alice", Body: "r"}, 0.5); err != nil {
					panic(err)
				}
				if _, err := p.AuthSearch("s", "alice"); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	if p.RecordCount() != 1600 {
		t.Fatalf("RecordCount = %d, want 1600", p.RecordCount())
	}
}
