package replica

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/epoch"
	"repro/internal/httpapi"
	"repro/internal/index"
	"repro/internal/shard"
)

// TestReplicationEndToEnd drives the full fleet-replication story over
// loopback HTTP: a serve node with an empty local store mirrors epoch 1
// from an origin and serves it; the origin publishes epoch 2 while the
// node is under query load and the node hot-swaps with zero failed
// requests; an origin that dies mid-transfer is resumed with a ranged
// GET once it is back; and a bit-flipped shard on the origin is rejected
// by checksum while the node keeps serving what it already has.
func TestReplicationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end replication test")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The origin: a published store behind the replication API.
	originRoot := t.TempDir()
	published, names := buildIndex(t, 20, 16, 1)
	originPub := epoch.Publisher{Root: originRoot}
	if _, err := originPub.Publish(published, names, 1); err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(NewOrigin(originRoot))
	defer originSrv.Close()

	// The node: an empty cache dir, a mirror, and the regular query stack
	// (httpapi handler + epoch watcher) on top of the mirrored store.
	m, local, reg := mirrorTo(t, originSrv.URL)
	m.Period = 10 * time.Millisecond
	bootCtx, bootCancel := context.WithTimeout(ctx, 30*time.Second)
	n, err := m.WaitReady(bootCtx)
	bootCancel()
	if err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	if n != 1 {
		t.Fatalf("WaitReady = epoch %d, want 1", n)
	}
	srv, cur, err := epoch.Load(local, 0, 1)
	if err != nil {
		t.Fatalf("load mirrored store: %v", err)
	}
	handler, err := httpapi.NewHandler(srv)
	if err != nil {
		t.Fatal(err)
	}
	node := httptest.NewServer(handler)
	defer node.Close()

	w := &epoch.Watcher{
		Root: local, Shard: 0, Of: 1, Period: 5 * time.Millisecond,
		OnSwap: func(next *index.Server, _ uint64) error { return handler.Swap(next) },
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); w.Run(ctx, cur) }()
	defer wg.Wait()
	defer cancel()

	// Scenario 1: the empty-store node serves mirrored epoch 1.
	if got := queryEpoch(t, node.URL, names[0]); got != 1 {
		t.Fatalf("fresh node serves epoch %d, want 1", got)
	}

	// Scenario 2: publish epoch 2 mid-hammer; the node hot-swaps with
	// zero failed requests.
	runCtx, runCancel := context.WithCancel(ctx)
	var runWG sync.WaitGroup
	runWG.Add(1)
	go func() { defer runWG.Done(); m.Run(runCtx) }()

	var failures atomic.Int64
	stop := make(chan struct{})
	var hammerWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		hammerWG.Add(1)
		go func(owner string) {
			defer hammerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(node.URL + "/v1/query?owner=" + owner)
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				resp.Body.Close()
			}
		}(names[i%len(names)])
	}
	if _, err := originPub.Publish(published, names, 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "node hot-swap to epoch 2", func() bool {
		return queryEpoch(t, node.URL, names[0]) == 2
	})
	close(stop)
	hammerWG.Wait()
	runCancel()
	runWG.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failed requests across the epoch hot-swap", n)
	}

	// Scenario 3: the origin dies mid-transfer of epoch 3. The sync
	// fails, the partial survives, and the recovered origin is asked for
	// the remainder with a ranged GET.
	if _, err := originPub.Publish(published, names, 1); err != nil {
		t.Fatal(err)
	}
	shardPath := "/v1/epochs/3/files/" + shard.FileName(0)
	origin := NewOrigin(originRoot)
	var shardHits atomic.Int64
	dying := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == shardPath {
			if shardHits.Add(1) > 1 {
				// The origin is "down" for every retry of this attempt.
				rw.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			// First transfer: half the file, then the process dies.
			full, err := os.ReadFile(filepath.Join(epoch.Dir(originRoot, 3), shard.FileName(0)))
			if err != nil {
				t.Error(err)
				panic(http.ErrAbortHandler)
			}
			rw.Header().Set("Content-Type", "application/octet-stream")
			rw.WriteHeader(http.StatusOK)
			_, _ = rw.Write(full[:len(full)/2])
			rw.(http.Flusher).Flush()
			panic(http.ErrAbortHandler)
		}
		origin.ServeHTTP(rw, r)
	}))
	m.Origin = dying.URL
	if _, err := m.Sync(ctx); err == nil {
		t.Fatal("sync against a dying origin succeeded")
	}
	dying.Close()
	partial, err := os.Stat(filepath.Join(m.tempDir(3), shard.FileName(0)))
	if err != nil {
		t.Fatalf("no partial survived the dead origin: %v", err)
	}
	if partial.Size() == 0 {
		t.Fatal("empty partial — nothing to resume")
	}

	// The origin comes back; the mirror resumes from the partial.
	var mu sync.Mutex
	var resumeRanges []string
	recovered := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == shardPath {
			mu.Lock()
			resumeRanges = append(resumeRanges, r.Header.Get("Range"))
			mu.Unlock()
		}
		origin.ServeHTTP(rw, r)
	}))
	defer recovered.Close()
	m.Origin = recovered.URL
	if n, err := m.Sync(ctx); err != nil || n != 3 {
		t.Fatalf("resume sync = %d, %v", n, err)
	}
	mu.Lock()
	wantRange := "bytes=" + strconv.FormatInt(partial.Size(), 10) + "-"
	if len(resumeRanges) != 1 || resumeRanges[0] != wantRange {
		t.Fatalf("resume requested %v, want one ranged GET %q", resumeRanges, wantRange)
	}
	mu.Unlock()
	waitFor(t, 30*time.Second, "node hot-swap to epoch 3", func() bool {
		return queryEpoch(t, node.URL, names[0]) == 3
	})

	// Scenario 4: a bit-flipped shard on the origin is rejected; the
	// node keeps serving epoch 3.
	if _, err := originPub.Publish(published, names, 1); err != nil {
		t.Fatal(err)
	}
	tamperPath := filepath.Join(epoch.Dir(originRoot, 4), shard.FileName(0))
	raw, err := os.ReadFile(tamperPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x80
	if err := os.WriteFile(tamperPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	failuresBefore := counterValue(reg, "eppi_replica_failures_total", "")
	m.Origin = originSrv.URL
	if _, err := m.Sync(ctx); err == nil {
		t.Fatal("bit-flipped epoch 4 synced")
	}
	if got := counterValue(reg, "eppi_replica_failures_total", ""); got <= failuresBefore {
		t.Errorf("failure counter %d after rejected sync, want > %d", got, failuresBefore)
	}
	if n, err := epoch.Current(local); err != nil || n != 3 {
		t.Fatalf("local store moved off epoch 3: %d, %v", n, err)
	}
	// A few watcher periods later the node still answers from epoch 3.
	time.Sleep(50 * time.Millisecond)
	if got := queryEpoch(t, node.URL, names[0]); got != 3 {
		t.Fatalf("node left epoch 3 for a tampered epoch: now %d", got)
	}
}

// queryEpoch runs one locator query against a node and returns the epoch
// header stamped on the answer (0 on transport failure).
func queryEpoch(t *testing.T, base, owner string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/query?owner=" + owner)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0
	}
	n, _ := strconv.ParseUint(resp.Header.Get(httpapi.EpochHeader), 10, 64)
	return n
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
