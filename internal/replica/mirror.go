package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/epoch"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Mirror defaults, overridable per field.
const (
	// DefaultRetries is the number of re-attempts per HTTP operation
	// after the first try.
	DefaultRetries = 3
	// DefaultBackoff is the first backoff interval; each retry doubles it.
	DefaultBackoff = 100 * time.Millisecond
	// DefaultBackoffCap bounds the grown backoff interval.
	DefaultBackoffCap = 2 * time.Second
)

// ErrOriginRegressed reports an origin whose current epoch is lower than
// the mirror's — a rolled-back or restored origin store. The mirror never
// follows it backwards: local epochs stay, the node keeps serving.
var ErrOriginRegressed = errors.New("replica: origin epoch regressed")

// Mirror pulls newly published epochs from an Origin into a local epoch
// store. Every transfer is resumable (ranged GETs against the origin's
// immutable epoch files) and every epoch is verified whole — manifest
// parse, epoch-number agreement, per-file size and CRC — before the
// atomic rename and CURRENT flip that make it visible to the local
// epoch.Watcher. A failed or tampered download therefore leaves the
// local store exactly as it was, partial files parked invisibly under a
// dot-temp directory for the next attempt to resume.
type Mirror struct {
	// Origin is the origin server's base URL (e.g. "http://host:9000").
	Origin string
	// Root is the local epoch store directory (created on first sync).
	Root string
	// Client issues the HTTP requests; nil uses a default client. The
	// client should have no global timeout — transfers are bounded by ctx
	// and the per-request plumbing, and a large epoch at a low bandwidth
	// limit legitimately takes minutes.
	Client *http.Client
	// Period is the current-epoch poll interval for Run; 0 means
	// epoch.DefaultPollPeriod. Each tick is jittered ±10%.
	Period time.Duration
	// Limit caps download bandwidth in bytes/second; 0 is unlimited.
	Limit int64
	// Keep, when positive, prunes the local cache to the newest Keep
	// epochs after each successful sync — the mirrored store obeys the
	// same retention policy as the origin's publisher.
	Keep int
	// Retries / Backoff / BackoffCap shape the per-operation retry loop;
	// zero values take the Default* constants.
	Retries    int
	Backoff    time.Duration
	BackoffCap time.Duration
	// Registry receives the replication metrics; nil disables them.
	Registry *metrics.Registry
	// Tracer records replica.sync / replica.fetch spans; nil disables.
	Tracer *trace.Tracer
	// Logger receives sync and rejection logs; nil discards.
	Logger *slog.Logger

	bytesC *metrics.Counter   // eppi_replica_bytes_total
	fetchH *metrics.Histogram // eppi_replica_fetch_seconds
	failC  *metrics.Counter   // eppi_replica_failures_total
	lagG   *metrics.Gauge     // eppi_replica_lag_epochs

	// sleep is the interruptible sleep used by the bandwidth limiter and
	// retry backoff; tests inject a recorder. nil means sleepCtx.
	sleep func(ctx context.Context, d time.Duration) error
}

// init lazily resolves defaults and metric series; called by every
// public entry point.
func (m *Mirror) init() {
	if m.Client == nil {
		m.Client = &http.Client{}
	}
	if m.Period <= 0 {
		m.Period = epoch.DefaultPollPeriod
	}
	if m.Retries <= 0 {
		m.Retries = DefaultRetries
	}
	if m.Backoff <= 0 {
		m.Backoff = DefaultBackoff
	}
	if m.BackoffCap <= 0 {
		m.BackoffCap = DefaultBackoffCap
	}
	if m.Logger == nil {
		m.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if m.sleep == nil {
		m.sleep = sleepCtx
	}
	if m.Registry != nil && m.bytesC == nil {
		m.bytesC = m.Registry.Counter("eppi_replica_bytes_total",
			"Bytes downloaded from the replication origin.")
		m.fetchH = m.Registry.Histogram("eppi_replica_fetch_seconds",
			"Per-file replication fetch latency.", metrics.DefDurationBuckets)
		m.failC = m.Registry.Counter("eppi_replica_failures_total",
			"Failed replication sync attempts (fetch errors, verification rejects).")
		m.lagG = m.Registry.Gauge("eppi_replica_lag_epochs",
			"Epochs the local store trails the origin by.")
	}
}

// Run polls the origin until ctx is cancelled, mirroring each newly
// published epoch into the local store. Failures are logged and counted;
// the next (jittered) tick retries, resuming any partial transfer.
func (m *Mirror) Run(ctx context.Context) {
	m.init()
	timer := time.NewTimer(epoch.Jitter(m.Period))
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
			if _, err := m.Sync(ctx); err != nil && ctx.Err() == nil {
				m.Logger.Warn("replica sync failed", slog.Any("error", err))
			}
			timer.Reset(epoch.Jitter(m.Period))
		}
	}
}

// WaitReady blocks until the local store has a loadable CURRENT epoch,
// syncing from the origin as needed — the boot path of a node with an
// empty cache. It returns the epoch the store holds.
func (m *Mirror) WaitReady(ctx context.Context) (uint64, error) {
	m.init()
	for {
		if n, err := epoch.Current(m.Root); err == nil {
			return n, nil
		}
		if _, err := m.Sync(ctx); err != nil {
			m.Logger.Warn("replica initial sync failed, retrying",
				slog.String("origin", m.Origin), slog.Any("error", err))
			if err := m.sleep(ctx, epoch.Jitter(m.Period)); err != nil {
				return 0, fmt.Errorf("replica: initial sync: %w", err)
			}
		}
		if ctx.Err() != nil {
			return 0, fmt.Errorf("replica: initial sync: %w", ctx.Err())
		}
	}
}

// Sync performs one replication pass: poll the origin's current epoch
// and, if it is ahead of the local store, download and verify it, then
// flip the local CURRENT. It returns the epoch synced (0 when the store
// was already current). Failures count into eppi_replica_failures_total;
// the local store is never left in a state the Watcher could mis-serve.
func (m *Mirror) Sync(ctx context.Context) (uint64, error) {
	m.init()
	remote, err := m.fetchCurrent(ctx)
	if err != nil {
		m.fail()
		return 0, err
	}
	local := uint64(0)
	switch n, err := epoch.Current(m.Root); {
	case err == nil:
		local = n
	case errors.Is(err, epoch.ErrNoCurrent):
		// Empty cache: mirror from scratch.
	default:
		// A corrupted local pointer needs an operator; overwriting it
		// from here could renumber a live node's store underneath it.
		m.fail()
		return 0, err
	}
	if remote > local {
		m.setLag(remote - local)
	} else {
		m.setLag(0)
	}
	if remote == local {
		return 0, nil
	}
	if remote < local {
		// Never follow an origin backwards; the Watcher has the same
		// guard, but the mirror refusing first keeps the cache intact.
		m.Logger.Warn("origin CURRENT behind local store, not syncing",
			slog.Uint64("local", local), slog.Uint64("origin", remote))
		return 0, fmt.Errorf("%w: origin %d, local %d", ErrOriginRegressed, remote, local)
	}

	var sp *trace.Span
	if m.Tracer != nil {
		ctx, sp = m.Tracer.StartRoot(ctx, "replica.sync")
		sp.SetUint("from_epoch", local)
		sp.SetUint("to_epoch", remote)
		defer sp.End()
	}
	if err := m.fetchEpoch(ctx, sp, remote); err != nil {
		sp.Set("outcome", "failed")
		sp.Set("error", err.Error())
		m.fail()
		return 0, err
	}
	if err := epoch.SetCurrent(m.Root, remote); err != nil {
		sp.Set("outcome", "failed")
		m.fail()
		return 0, err
	}
	m.setLag(0)
	sp.Set("outcome", "synced")
	m.Logger.Info("epoch mirrored",
		slog.Uint64("epoch", remote), slog.String("origin", m.Origin))
	m.cleanupTemp(remote)
	if removed, err := epoch.Prune(m.Root, m.Keep); err != nil {
		m.Logger.Warn("local cache retention failed", slog.Any("error", err))
	} else if len(removed) > 0 {
		m.Logger.Info("local cache pruned", slog.Any("epochs", removed))
	}
	return remote, nil
}

func (m *Mirror) fail() {
	if m.failC != nil {
		m.failC.Inc()
	}
}

func (m *Mirror) setLag(n uint64) {
	if m.lagG != nil {
		m.lagG.Set(float64(n))
	}
}

// tempDir is the in-flight download directory for epoch n. Like the
// publisher's .publish- prefix, the dot name guarantees epoch.Dir can
// never resolve to it, so a torn download is invisible to the Watcher —
// and it persists across attempts, which is what makes resume work.
func (m *Mirror) tempDir(n uint64) string {
	return filepath.Join(m.Root, epoch.EpochsDir, fmt.Sprintf(".mirror-%06d", n))
}

// cleanupTemp removes stale .mirror-* assembly dirs (any epoch ≤ the one
// just synced: their partials can never be useful again).
func (m *Mirror) cleanupTemp(synced uint64) {
	entries, err := os.ReadDir(filepath.Join(m.Root, epoch.EpochsDir))
	if err != nil {
		return
	}
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), ".mirror-%d", &n); err == nil && n <= synced {
			_ = os.RemoveAll(filepath.Join(m.Root, epoch.EpochsDir, e.Name()))
		}
	}
}

// fetchEpoch downloads epoch n into the dot-temp dir, verifies the
// complete set, and renames it into place. On any error the temp dir is
// left behind for the next attempt to resume (minus files that failed
// verification, which are deleted so they re-download cleanly).
func (m *Mirror) fetchEpoch(ctx context.Context, sp *trace.Span, n uint64) error {
	tmp := m.tempDir(n)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	// The manifest is small and is the root of trust for everything else:
	// always fetch it fresh rather than resuming a stale partial.
	manifestURL := fmt.Sprintf("%s/v1/epochs/%d/manifest", m.Origin, n)
	manPath := filepath.Join(tmp, shard.ManifestName)
	if err := os.RemoveAll(manPath); err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	if err := m.download(ctx, sp, manifestURL, manPath, "", fileSpec{}); err != nil {
		return err
	}
	man, err := shard.ReadManifest(tmp)
	if err != nil {
		_ = os.Remove(manPath)
		return fmt.Errorf("replica: epoch %d: %w", n, err)
	}
	if man.Epoch != n {
		_ = os.Remove(manPath)
		return fmt.Errorf("replica: origin served manifest for epoch %d as epoch %d", man.Epoch, n)
	}
	etag, err := EpochETag(tmp)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	for _, sf := range man.Files {
		url := fmt.Sprintf("%s/v1/epochs/%d/files/%s", m.Origin, n, sf.Name)
		if err := m.download(ctx, sp, url, filepath.Join(tmp, sf.Name), etag,
			fileSpec{size: sf.Size, crc: sf.CRC32, known: true}); err != nil {
			return err
		}
	}
	// The privacy report is advisory but still verified: a tampered
	// report is dropped (the node serves the epoch report-less), it is
	// never installed.
	m.fetchReport(ctx, sp, n, tmp, etag)
	// Belt and braces before the rename: re-verify the assembled set as
	// one unit, exactly the check epoch.LoadAt will repeat at swap time.
	if err := man.Verify(tmp); err != nil {
		return fmt.Errorf("replica: epoch %d failed verification: %w", n, err)
	}
	final := epoch.Dir(m.Root, n)
	if err := os.RemoveAll(final); err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	return nil
}

// fetchReport pulls epochs/<n>/privacy.json if the origin has one.
// Absence and verification failure both leave the epoch report-less.
func (m *Mirror) fetchReport(ctx context.Context, sp *trace.Span, n uint64, tmp, etag string) {
	url := fmt.Sprintf("%s/v1/epochs/%d/files/%s", m.Origin, n, privacy.FileName)
	path := filepath.Join(tmp, privacy.FileName)
	_ = os.Remove(path)
	if err := m.download(ctx, sp, url, path, etag, fileSpec{}); err != nil {
		if !errors.Is(err, errNotFound) {
			m.Logger.Warn("privacy report fetch failed, mirroring epoch without it",
				slog.Uint64("epoch", n), slog.Any("error", err))
		}
		_ = os.Remove(path)
		return
	}
	rep, err := privacy.ReadFile(tmp)
	if err != nil || rep.Epoch != n {
		m.Logger.Warn("mirrored privacy report rejected",
			slog.Uint64("epoch", n), slog.Any("error", err))
		_ = os.Remove(path)
	}
}

// fileSpec carries the manifest's expectation for a downloaded file.
type fileSpec struct {
	size  int64
	crc   uint32
	known bool
}

// errNotFound reports a 404 from the origin — permanent, not retried.
var errNotFound = errors.New("replica: origin has no such file")

// download fetches url into path, resuming a partial file with a ranged
// GET, throttling to the bandwidth limit, and retrying transient
// failures with capped jittered backoff. When spec.known, the completed
// file must match the manifest's size and CRC or it is deleted and the
// download fails.
func (m *Mirror) download(ctx context.Context, parent *trace.Span, url, path, etag string, spec fileSpec) error {
	// Already complete from a previous attempt? Verify and skip.
	if spec.known {
		if info, err := os.Stat(path); err == nil && info.Size() == spec.size {
			if raw, err := os.ReadFile(path); err == nil && crc32.ChecksumIEEE(raw) == spec.crc {
				return nil
			}
			// Wrong content at the right size: re-download from scratch.
			_ = os.Remove(path)
		}
	}
	backoff := m.Backoff
	for attempt := 0; ; attempt++ {
		err := m.downloadOnce(ctx, parent, url, path, etag, spec)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, errNotFound), ctx.Err() != nil, attempt >= m.Retries:
			return err
		}
		m.Logger.Warn("replica fetch attempt failed, backing off",
			slog.String("url", url), slog.Int("attempt", attempt+1), slog.Any("error", err))
		if serr := m.sleepJittered(ctx, backoff); serr != nil {
			return err
		}
		if backoff *= 2; backoff > m.BackoffCap {
			backoff = m.BackoffCap
		}
	}
}

// downloadOnce is one transfer attempt: ranged when a partial exists,
// full otherwise.
func (m *Mirror) downloadOnce(ctx context.Context, parent *trace.Span, url, path, etag string, spec fileSpec) (err error) {
	start := time.Now()
	var offset int64
	if info, serr := os.Stat(path); serr == nil {
		offset = info.Size()
		if spec.known && offset > spec.size {
			// Longer than the manifest says it can be: garbage, restart.
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("replica: %w", err)
			}
			offset = 0
		}
	}
	var sp *trace.Span
	if parent != nil {
		sp = parent.Child("replica.fetch")
		sp.Set("url", url)
		sp.SetInt("resume_offset", int(offset))
		defer func() {
			if err != nil {
				sp.Set("error", err.Error())
			}
			sp.End()
		}()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	if offset > 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", offset))
		if etag != "" {
			// If the origin's epoch content changed (it never should —
			// epochs are immutable) If-Range downgrades to a clean full
			// response instead of splicing two versions together.
			req.Header.Set("If-Range", etag)
		}
	}
	resp, err := m.Client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	defer resp.Body.Close()
	flags := os.O_WRONLY | os.O_CREATE
	switch resp.StatusCode {
	case http.StatusPartialContent:
		flags |= os.O_APPEND
	case http.StatusOK:
		flags |= os.O_TRUNC
		offset = 0
	case http.StatusNotFound:
		return errNotFound
	case http.StatusRequestedRangeNotSatisfiable:
		// Our partial confused the origin; drop it and let the retry
		// start over.
		_ = os.Remove(path)
		return fmt.Errorf("replica: %s: range not satisfiable at offset %d", url, offset)
	default:
		return fmt.Errorf("replica: %s: status %d", url, resp.StatusCode)
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	body := m.throttled(ctx, resp.Body)
	n, err := io.Copy(f, body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if m.bytesC != nil {
		m.bytesC.Add(uint64(n))
	}
	if m.fetchH != nil {
		m.fetchH.ObserveSince(start)
	}
	sp.SetInt("bytes", int(n))
	if err != nil {
		// Keep the partial: whatever arrived extends the resume point.
		return fmt.Errorf("replica: %s: %w", url, err)
	}
	if spec.known {
		raw, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("replica: %w", err)
		}
		if int64(len(raw)) != spec.size || crc32.ChecksumIEEE(raw) != spec.crc {
			// Tampered or torn content can't be resumed from — delete so
			// the next attempt starts clean.
			_ = os.Remove(path)
			return fmt.Errorf("replica: %s: downloaded %d bytes crc %08x, manifest says %d bytes crc %08x",
				url, len(raw), crc32.ChecksumIEEE(raw), spec.size, spec.crc)
		}
	}
	return nil
}

// fetchCurrent asks the origin for its current epoch, retrying transient
// failures.
func (m *Mirror) fetchCurrent(ctx context.Context) (uint64, error) {
	backoff := m.Backoff
	for attempt := 0; ; attempt++ {
		n, err := m.fetchCurrentOnce(ctx)
		switch {
		case err == nil:
			return n, nil
		case ctx.Err() != nil, attempt >= m.Retries:
			return 0, err
		}
		if serr := m.sleepJittered(ctx, backoff); serr != nil {
			return 0, err
		}
		if backoff *= 2; backoff > m.BackoffCap {
			backoff = m.BackoffCap
		}
	}
}

func (m *Mirror) fetchCurrentOnce(ctx context.Context) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(m.Origin, "/")+"/v1/epochs/current", nil)
	if err != nil {
		return 0, fmt.Errorf("replica: %w", err)
	}
	resp, err := m.Client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("replica: current: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("replica: current: status %d", resp.StatusCode)
	}
	var cur CurrentResponse
	if err := decodeJSON(resp.Body, &cur); err != nil {
		return 0, fmt.Errorf("replica: current: %w", err)
	}
	if cur.Epoch == 0 {
		return 0, fmt.Errorf("replica: origin reports epoch 0")
	}
	return cur.Epoch, nil
}

// throttled wraps r in the bandwidth limiter when one is configured.
func (m *Mirror) throttled(ctx context.Context, r io.Reader) io.Reader {
	if m.Limit <= 0 {
		return r
	}
	return &throttleReader{r: r, ctx: ctx, limit: m.Limit, start: time.Now(), sleep: m.sleep}
}

// throttleReader paces reads to at most limit bytes/second by sleeping
// off any time the transfer is running ahead of its budget. Sleeps honor
// ctx, so cancellation cuts a throttled transfer short immediately.
type throttleReader struct {
	r     io.Reader
	ctx   context.Context
	limit int64
	start time.Time
	read  int64
	sleep func(ctx context.Context, d time.Duration) error
}

// throttleChunk bounds one read so pacing stays smooth instead of
// bursting a whole buffer and sleeping for seconds.
const throttleChunk = 32 << 10

func (t *throttleReader) Read(p []byte) (int, error) {
	if len(p) > throttleChunk {
		p = p[:throttleChunk]
	}
	n, err := t.r.Read(p)
	t.read += int64(n)
	// The wall-clock this many bytes should take at the limit; sleep off
	// any surplus speed.
	due := time.Duration(float64(t.read) / float64(t.limit) * float64(time.Second))
	if ahead := due - time.Since(t.start); ahead > 0 {
		if serr := t.sleep(t.ctx, ahead); serr != nil && err == nil {
			err = serr
		}
	}
	return n, err
}

// sleepCtx sleeps d, returning early with the context error on
// cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// sleepJittered sleeps a uniformly random duration in [d/2, d) through
// the mirror's (injectable) sleeper.
func (m *Mirror) sleepJittered(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	return m.sleep(ctx, d/2+time.Duration(rand.Int64N(int64(d/2)+1)))
}

// decodeJSON decodes a bounded JSON body.
func decodeJSON(r io.Reader, v any) error {
	raw, err := io.ReadAll(io.LimitReader(r, 1<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, v)
}
