package replica

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/index"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/shard"
	"repro/internal/workload"
)

// buildIndex constructs a real published index for store tests.
func buildIndex(t *testing.T, providers, owners int, seed int64) (*bitmat.Matrix, []string) {
	t.Helper()
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: providers, Owners: owners, Exponent: 1.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Construct(d.Matrix, d.Eps, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Published, d.Names
}

// publishEpoch adds one epoch to the store at root.
func publishEpoch(t *testing.T, root string, providers, owners int, seed int64, shards int) uint64 {
	t.Helper()
	published, names := buildIndex(t, providers, owners, seed)
	pub := epoch.Publisher{Root: root}
	n, err := pub.Publish(published, names, shards)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestOriginCurrentAndHealthz(t *testing.T) {
	root := t.TempDir()
	srv := httptest.NewServer(NewOrigin(root))
	defer srv.Close()

	// Nothing published: current 404s, healthz still answers (epoch 0).
	if code := getJSON(t, srv.URL+"/v1/epochs/current", nil); code != http.StatusNotFound {
		t.Fatalf("current on empty store = %d, want 404", code)
	}
	var hz struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
	}
	if code := getJSON(t, srv.URL+"/v1/healthz", &hz); code != http.StatusOK || hz.Status != "ok" || hz.Epoch != 0 {
		t.Fatalf("healthz on empty store = %d %+v", code, hz)
	}

	publishEpoch(t, root, 10, 8, 1, 1)
	var cur CurrentResponse
	if code := getJSON(t, srv.URL+"/v1/epochs/current", &cur); code != http.StatusOK || cur.Epoch != 1 {
		t.Fatalf("current = %d %+v, want 200 epoch 1", code, cur)
	}

	// A corrupted pointer is surfaced as a server error, not "no epoch".
	if err := os.WriteFile(filepath.Join(root, epoch.CurrentName), []byte("junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, srv.URL+"/v1/epochs/current", nil); code != http.StatusInternalServerError {
		t.Fatalf("current over corrupted pointer = %d, want 500", code)
	}
}

func TestOriginServesRangedFiles(t *testing.T) {
	root := t.TempDir()
	publishEpoch(t, root, 12, 10, 1, 2)
	srv := httptest.NewServer(NewOrigin(root))
	defer srv.Close()

	dir := epoch.Dir(root, 1)
	want, err := os.ReadFile(filepath.Join(dir, shard.FileName(0)))
	if err != nil {
		t.Fatal(err)
	}
	url := srv.URL + "/v1/epochs/1/files/" + shard.FileName(0)

	// Full fetch: whole file, ETag present.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(got) != string(want) {
		t.Fatalf("full fetch: status %d, %d bytes, want %d", resp.StatusCode, len(got), len(want))
	}
	etag := resp.Header.Get("ETag")
	wantTag, err := EpochETag(dir)
	if err != nil {
		t.Fatal(err)
	}
	if etag != wantTag {
		t.Fatalf("ETag %q, want manifest checksum %q", etag, wantTag)
	}

	// Ranged fetch resumes mid-file.
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Range", "bytes=100-")
	req.Header.Set("If-Range", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("ranged fetch status %d, want 206", resp.StatusCode)
	}
	if string(got) != string(want[100:]) {
		t.Fatalf("ranged fetch returned %d bytes, want the %d-byte tail", len(got), len(want)-100)
	}

	// A stale If-Range validator downgrades to a full 200 — the mirror
	// must never splice bytes of two different epochs together.
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Range", "bytes=100-")
	req.Header.Set("If-Range", `"crc32:00000000"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(got) != len(want) {
		t.Fatalf("stale If-Range: status %d, %d bytes, want full 200", resp.StatusCode, len(got))
	}

	// The manifest route serves the manifest bytes.
	manWant, err := os.ReadFile(filepath.Join(dir, shard.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/v1/epochs/1/manifest")
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(got) != string(manWant) {
		t.Fatalf("manifest fetch: status %d, %d bytes, want %d", resp.StatusCode, len(got), len(manWant))
	}
}

func TestOriginRefusesNonServableFiles(t *testing.T) {
	root := t.TempDir()
	publishEpoch(t, root, 10, 8, 1, 1)
	// Plant an operator-only detail file and a stray secret in the epoch
	// dir: neither may ever travel.
	dir := epoch.Dir(root, 1)
	for _, name := range []string{privacy.DetailFileName, "secrets.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("operator-only"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewOrigin(root))
	defer srv.Close()

	for _, name := range []string{
		privacy.DetailFileName, // never served over HTTP, by design
		"secrets.txt",          // not manifest-listed
		"shard-999.idx",        // plausible name, not in the set
		"..%2FCURRENT",         // traversal out of the epoch dir
		"..%2F..%2FCURRENT",
	} {
		code := getJSON(t, srv.URL+"/v1/epochs/1/files/"+name, nil)
		if code == http.StatusOK {
			t.Errorf("origin served %q", name)
		}
	}
	// Unknown epochs and malformed numbers are rejected.
	if code := getJSON(t, srv.URL+"/v1/epochs/99/manifest", nil); code != http.StatusNotFound {
		t.Errorf("unknown epoch manifest = %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/v1/epochs/zero/manifest", nil); code != http.StatusBadRequest {
		t.Errorf("bad epoch number = %d, want 400", code)
	}
}

// mirrorTo returns a mirror of originURL into a fresh local store with
// test-friendly retry pacing.
func mirrorTo(t *testing.T, originURL string) (*Mirror, string, *metrics.Registry) {
	t.Helper()
	local := t.TempDir()
	reg := metrics.NewRegistry()
	m := &Mirror{
		Origin:   originURL,
		Root:     local,
		Registry: reg,
		Retries:  2,
		Backoff:  5 * time.Millisecond,
	}
	return m, local, reg
}

func counterValue(reg *metrics.Registry, name, help string) uint64 {
	return reg.Counter(name, help).Value()
}

func TestMirrorSyncFromScratch(t *testing.T) {
	root := t.TempDir()
	publishEpoch(t, root, 15, 12, 1, 2)
	srv := httptest.NewServer(NewOrigin(root))
	defer srv.Close()

	m, local, reg := mirrorTo(t, srv.URL)
	n, err := m.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Sync = epoch %d, want 1", n)
	}
	// The mirrored store is a real epoch store: both shards load and the
	// privacy report came along verified.
	for k := 0; k < 2; k++ {
		is, got, err := epoch.Load(local, k, 2)
		if err != nil {
			t.Fatalf("mirrored shard %d: %v", k, err)
		}
		if got != 1 || is.Epoch() != 1 {
			t.Fatalf("mirrored shard %d at epoch %d/%d", k, got, is.Epoch())
		}
	}
	if counterValue(reg, "eppi_replica_bytes_total", "") == 0 {
		t.Error("no bytes counted")
	}
	if counterValue(reg, "eppi_replica_failures_total", "") != 0 {
		t.Error("clean sync counted a failure")
	}
	// A second pass is a no-op.
	if n, err := m.Sync(context.Background()); err != nil || n != 0 {
		t.Fatalf("second Sync = %d, %v, want no-op", n, err)
	}
}

func TestMirrorSyncsPrivacyReport(t *testing.T) {
	root := t.TempDir()
	published, names := buildIndex(t, 15, 12, 1)
	rep := &privacy.Report{Version: privacy.Version, Identities: len(names), Providers: 15}
	pub := epoch.Publisher{Root: root}
	if _, err := pub.PublishWithReport(published, names, 1, rep, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewOrigin(root))
	defer srv.Close()

	m, local, _ := mirrorTo(t, srv.URL)
	if _, err := m.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := epoch.LoadReportAt(local, 1)
	if err != nil {
		t.Fatalf("mirrored store has no verified report: %v", err)
	}
	if got.Identities != len(names) {
		t.Fatalf("mirrored report identities = %d, want %d", got.Identities, len(names))
	}
}

func TestMirrorResumesPartialDownload(t *testing.T) {
	root := t.TempDir()
	publishEpoch(t, root, 15, 12, 1, 1)
	dir := epoch.Dir(root, 1)
	full, err := os.ReadFile(filepath.Join(dir, shard.FileName(0)))
	if err != nil {
		t.Fatal(err)
	}

	// Record the Range header of every shard-file request.
	var mu sync.Mutex
	var ranges []string
	origin := NewOrigin(root)
	rec := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "/files/"+shard.FileName(0)) {
			mu.Lock()
			ranges = append(ranges, r.Header.Get("Range"))
			mu.Unlock()
		}
		origin.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(rec)
	defer srv.Close()

	m, local, _ := mirrorTo(t, srv.URL)
	// Park a half-transferred file where a killed mid-transfer mirror
	// would have left it.
	half := int64(len(full) / 2)
	tmp := m.tempDir(1)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, shard.FileName(0)), full[:half], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := m.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ranges) != 1 || !strings.HasPrefix(ranges[0], "bytes=") {
		t.Fatalf("shard requests %v, want exactly one ranged GET", ranges)
	}
	wantRange := "bytes=" + strconv.FormatInt(half, 10) + "-"
	if ranges[0] != wantRange {
		t.Fatalf("resume range %q, want %q", ranges[0], wantRange)
	}
	if _, _, err := epoch.Load(local, 0, 1); err != nil {
		t.Fatalf("resumed store unreadable: %v", err)
	}
	// The assembly dir is gone after a successful sync.
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("temp dir survived a successful sync: %v", err)
	}
}

func TestMirrorRejectsBitFlip(t *testing.T) {
	root := t.TempDir()
	publishEpoch(t, root, 15, 12, 1, 1)
	// Flip one bit in the origin's shard file — size unchanged, CRC not.
	path := filepath.Join(epoch.Dir(root, 1), shard.FileName(0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewOrigin(root))
	defer srv.Close()

	m, local, reg := mirrorTo(t, srv.URL)
	if _, err := m.Sync(context.Background()); err == nil {
		t.Fatal("bit-flipped epoch synced")
	}
	if counterValue(reg, "eppi_replica_failures_total", "") == 0 {
		t.Error("rejected sync not counted as failure")
	}
	// Nothing became visible: no CURRENT, no epoch dir.
	if _, err := epoch.Current(local); !errors.Is(err, epoch.ErrNoCurrent) {
		t.Fatalf("local CURRENT after rejected sync: %v", err)
	}
	if _, err := os.Stat(epoch.Dir(local, 1)); !os.IsNotExist(err) {
		t.Fatalf("rejected epoch dir visible: %v", err)
	}
	// The poisoned partial was deleted, so fixing the origin heals the
	// mirror on the next pass.
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := m.Sync(context.Background()); err != nil || n != 1 {
		t.Fatalf("post-fix Sync = %d, %v", n, err)
	}
}

func TestMirrorRefusesRegressedOrigin(t *testing.T) {
	originRoot := t.TempDir()
	publishEpoch(t, originRoot, 15, 12, 1, 1)
	srv := httptest.NewServer(NewOrigin(originRoot))
	defer srv.Close()

	m, local, _ := mirrorTo(t, srv.URL)
	// The local store is ahead (epochs 1 and 2); the origin only has 1.
	pubLocal := epoch.Publisher{Root: local}
	published, names := buildIndex(t, 15, 12, 1)
	for i := 0; i < 2; i++ {
		if _, err := pubLocal.Publish(published, names, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Sync(context.Background()); !errors.Is(err, ErrOriginRegressed) {
		t.Fatalf("Sync against regressed origin = %v, want ErrOriginRegressed", err)
	}
	if n, err := epoch.Current(local); err != nil || n != 2 {
		t.Fatalf("local store moved: %d, %v", n, err)
	}
}

func TestMirrorRetention(t *testing.T) {
	root := t.TempDir()
	srv := httptest.NewServer(NewOrigin(root))
	defer srv.Close()

	m, local, _ := mirrorTo(t, srv.URL)
	m.Keep = 1
	for seed := int64(1); seed <= 3; seed++ {
		publishEpoch(t, root, 15, 12, seed, 1)
		if _, err := m.Sync(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := epoch.Current(local); err != nil || n != 3 {
		t.Fatalf("local Current = %d, %v", n, err)
	}
	for _, gone := range []uint64{1, 2} {
		if _, err := os.Stat(epoch.Dir(local, gone)); !os.IsNotExist(err) {
			t.Errorf("epoch %d survived Keep=1 retention", gone)
		}
	}
	if _, _, err := epoch.Load(local, 0, 1); err != nil {
		t.Fatalf("kept epoch unreadable: %v", err)
	}
}

func TestWatcherStaysOnRegressedMirroredStore(t *testing.T) {
	// The satellite's mirrored-store half: a node serving epoch 2 out of
	// a mirror cache whose CURRENT rolls back must stay put and warn.
	root := t.TempDir()
	srv := httptest.NewServer(NewOrigin(root))
	defer srv.Close()
	m, local, _ := mirrorTo(t, srv.URL)
	for seed := int64(1); seed <= 2; seed++ {
		publishEpoch(t, root, 15, 12, seed, 1)
		if _, err := m.Sync(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := epoch.SetCurrent(local, 1); err != nil {
		t.Fatal(err)
	}
	w := &epoch.Watcher{
		Root: local, Shard: 0, Of: 1, Period: 5 * time.Millisecond,
		OnSwap: func(*index.Server, uint64) error {
			t.Error("watcher swapped backwards on a mirrored store")
			return nil
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	w.Run(ctx, 2) // several polls over the regressed pointer, then done
}

func TestThrottleReaderPacing(t *testing.T) {
	// 64 KiB at 64 KiB/s: the pacing debt after the final chunk is the
	// full 1s budget. The sleeper is recorded, not performed, so the test
	// is fast; because the fake never actually passes time, each request
	// is the cumulative debt and only the largest one is meaningful.
	var maxSleep time.Duration
	payload := strings.Repeat("x", 64<<10)
	tr := &throttleReader{
		r:     strings.NewReader(payload),
		ctx:   context.Background(),
		limit: 64 << 10,
		start: time.Now(),
		sleep: func(_ context.Context, d time.Duration) error {
			if d > maxSleep {
				maxSleep = d
			}
			return nil
		},
	}
	n, err := io.Copy(io.Discard, tr)
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("copy = %d, %v", n, err)
	}
	if maxSleep < 500*time.Millisecond || maxSleep > 1500*time.Millisecond {
		t.Fatalf("throttle pacing debt %v for 1s of budget", maxSleep)
	}
}

func TestMirrorWaitReadyHonorsCancel(t *testing.T) {
	// No origin at all: WaitReady must give up when the context does,
	// not spin forever.
	m := &Mirror{
		Origin:  "http://127.0.0.1:1", // nothing listens there
		Root:    t.TempDir(),
		Retries: 1,
		Backoff: time.Millisecond,
		Period:  10 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := m.WaitReady(ctx); err == nil {
		t.Fatal("WaitReady succeeded with no origin")
	}
}
