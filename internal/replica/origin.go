// Package replica distributes epoch stores across machines: the periodic
// re-publication of M' (internal/epoch) assumed a shared filesystem
// between publisher and serving nodes, which no real fleet has. An
// Origin serves a store read-only over HTTP; a Mirror on each serving
// node pulls newly published epochs into a local store — resumable
// ranged downloads, verified end to end against the manifest before the
// atomic rename that makes them visible — and the existing epoch.Watcher
// swap path takes over unchanged. A tampered, torn, or half-transferred
// epoch therefore can never be served: it fails verification before the
// local CURRENT pointer ever moves.
//
// The origin API is three read-only routes:
//
//	GET /v1/epochs/current         → {"epoch": n}
//	GET /v1/epochs/{n}/manifest    → the epoch's manifest.eppi (CRC-framed)
//	GET /v1/epochs/{n}/files/{f}   → a member file, ranged, ETag = manifest checksum
//
// Only manifest-listed shard snapshots and the public privacy report are
// served; the operator-only privacy detail never leaves the origin host.
package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/epoch"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/shard"
)

// Origin serves an epoch store read-only over HTTP. It holds no state
// beyond the store path: every request re-reads the store, so a publish
// by eppi-construct against the same directory is visible to mirrors on
// their next poll with no coordination.
type Origin struct {
	root   string
	mux    *http.ServeMux
	logger *slog.Logger

	requests *metrics.Counter // eppi_origin_requests_total (nil without metrics)
	sent     *metrics.Counter // eppi_origin_bytes_total (nil without metrics)
}

var _ http.Handler = (*Origin)(nil)

// OriginOption configures an Origin.
type OriginOption func(*Origin)

// WithOriginMetrics counts requests and bytes served into reg.
func WithOriginMetrics(reg *metrics.Registry) OriginOption {
	return func(o *Origin) {
		if reg == nil {
			return
		}
		o.requests = reg.Counter("eppi_origin_requests_total",
			"Replication origin HTTP requests.")
		o.sent = reg.Counter("eppi_origin_bytes_total",
			"Bytes of epoch data served to mirrors.")
	}
}

// WithOriginLogger routes rejection logs to logger; nil discards.
func WithOriginLogger(logger *slog.Logger) OriginOption {
	return func(o *Origin) { o.logger = logger }
}

// NewOrigin serves the epoch store at root.
func NewOrigin(root string, opts ...OriginOption) *Origin {
	o := &Origin{root: root, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(o)
	}
	if o.logger == nil {
		o.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	o.mux.HandleFunc("GET /v1/epochs/current", o.handleCurrent)
	o.mux.HandleFunc("GET /v1/epochs/{epoch}/manifest", o.handleManifest)
	o.mux.HandleFunc("GET /v1/epochs/{epoch}/files/{name}", o.handleFile)
	o.mux.HandleFunc("GET /v1/healthz", o.handleHealthz)
	return o
}

// ServeHTTP implements http.Handler.
func (o *Origin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if o.requests != nil {
		o.requests.Inc()
	}
	o.mux.ServeHTTP(w, r)
}

// CurrentResponse is the /v1/epochs/current payload.
type CurrentResponse struct {
	Epoch uint64 `json:"epoch"`
}

// originError is the uniform error payload.
type originError struct {
	Error string `json:"error"`
}

func writeOriginJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (o *Origin) handleCurrent(w http.ResponseWriter, r *http.Request) {
	n, err := epoch.Current(o.root)
	if err != nil {
		if errors.Is(err, epoch.ErrNoCurrent) {
			writeOriginJSON(w, http.StatusNotFound, originError{Error: "nothing published"})
			return
		}
		// A corrupted pointer is an operator problem on the origin host;
		// mirrors must not mistake it for "no new epoch".
		o.logger.Warn("origin CURRENT unreadable", slog.Any("error", err))
		writeOriginJSON(w, http.StatusInternalServerError, originError{Error: err.Error()})
		return
	}
	writeOriginJSON(w, http.StatusOK, CurrentResponse{Epoch: n})
}

func (o *Origin) handleHealthz(w http.ResponseWriter, r *http.Request) {
	n, err := epoch.Current(o.root)
	if err != nil && !errors.Is(err, epoch.ErrNoCurrent) {
		writeOriginJSON(w, http.StatusInternalServerError, originError{Error: err.Error()})
		return
	}
	writeOriginJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
	}{Status: "ok", Epoch: n})
}

// epochParam parses the {epoch} path segment and resolves the epoch's
// directory, rejecting numbers that do not name a published epoch.
func (o *Origin) epochParam(w http.ResponseWriter, r *http.Request) (uint64, string, bool) {
	n, err := strconv.ParseUint(r.PathValue("epoch"), 10, 64)
	if err != nil || n == 0 {
		writeOriginJSON(w, http.StatusBadRequest, originError{Error: "bad epoch number"})
		return 0, "", false
	}
	dir := epoch.Dir(o.root, n)
	if _, err := os.Stat(filepath.Join(dir, shard.ManifestName)); err != nil {
		writeOriginJSON(w, http.StatusNotFound, originError{Error: fmt.Sprintf("epoch %d not published", n)})
		return 0, "", false
	}
	return n, dir, true
}

// EpochETag is the cache validator stamped on every manifest and file
// response of an epoch: the CRC-32 of the manifest file itself. Epoch
// directories are immutable once published, so the manifest checksum
// identifies the entire content of the epoch — a mirror resuming a
// download sends it back via If-Range and gets a clean restart (200)
// instead of a corrupt splice if the origin's epoch somehow changed.
func EpochETag(dir string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, shard.ManifestName))
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%q", fmt.Sprintf("crc32:%08x", crc32.ChecksumIEEE(raw))), nil
}

func (o *Origin) handleManifest(w http.ResponseWriter, r *http.Request) {
	_, dir, ok := o.epochParam(w, r)
	if !ok {
		return
	}
	o.serveStoreFile(w, r, dir, shard.ManifestName)
}

func (o *Origin) handleFile(w http.ResponseWriter, r *http.Request) {
	n, dir, ok := o.epochParam(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if !o.servable(dir, name) {
		// One answer for traversal attempts, the operator-only detail
		// document, and genuinely absent files: nothing to enumerate.
		o.logger.Warn("origin refused file request",
			slog.Uint64("epoch", n), slog.String("name", name))
		writeOriginJSON(w, http.StatusNotFound, originError{Error: "no such file"})
		return
	}
	o.serveStoreFile(w, r, dir, name)
}

// servable reports whether name is a file the origin may hand out: a
// manifest-listed shard snapshot or the public privacy report. Anything
// else — privacy_detail.json above all — stays on the origin host. The
// whitelist doubles as path sanitization: served names can only ever be
// names the manifest carries.
func (o *Origin) servable(dir, name string) bool {
	if name == privacy.FileName {
		return true
	}
	man, err := shard.ReadManifest(dir)
	if err != nil {
		return false
	}
	for _, sf := range man.Files {
		if sf.Name == name {
			return true
		}
	}
	return false
}

// serveStoreFile serves one epoch-store file with range support (a mirror
// resumes interrupted downloads with Range: bytes=off-) and the epoch's
// ETag so If-Range can detect a changed origin.
func (o *Origin) serveStoreFile(w http.ResponseWriter, r *http.Request, dir, name string) {
	etag, err := EpochETag(dir)
	if err != nil {
		writeOriginJSON(w, http.StatusInternalServerError, originError{Error: err.Error()})
		return
	}
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		writeOriginJSON(w, http.StatusNotFound, originError{Error: "no such file"})
		return
	}
	defer f.Close()
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/octet-stream")
	cw := &countingWriter{ResponseWriter: w}
	// ServeContent handles Range, If-Range and the 206/416 status dance;
	// the zero modtime suppresses Last-Modified (the ETag is the
	// validator — file mtimes don't survive mirroring anyway).
	http.ServeContent(cw, r, "", time.Time{}, f)
	if o.sent != nil {
		o.sent.Add(uint64(cw.n))
	}
}

// countingWriter counts response body bytes for eppi_origin_bytes_total.
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}
