package gmw

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Bit-sliced (SIMD-within-a-register) evaluation: one protocol execution
// runs WideLanes = 64 independent instances of the same circuit. A wire's
// share is a uint64 whose bit k belongs to instance k; XOR and
// AND-combination are single word operations, a NOT is a word complement
// at party 0, and one Beaver word-triple serves all 64 instances of an
// AND gate. Each AND layer broadcasts the d/e *words* directly — no
// per-bit pack/unpack — so the message count, session count and round
// count of 64 scalar executions collapse into one.

// WideLanes is the number of circuit instances evaluated per wide run.
const WideLanes = 64

// WideTriples holds one party's XOR shares of bit-sliced Beaver triples:
// word t is the 64-lane triple for AND-gate ordinal t, and for every lane
// k the bits satisfy (⊕ᵢ Aᵢ[t]) ∧ (⊕ᵢ Bᵢ[t]) = ⊕ᵢ Cᵢ[t] bit-wise.
type WideTriples struct {
	A, B, C []uint64
}

// GenTriplesWide deals bit-sliced Beaver triples for `parties` parties and
// `count` AND gates (one word-triple per gate, 64 lanes each) from rng.
func GenTriplesWide(rng *rand.Rand, parties, count int) ([]WideTriples, error) {
	if parties < 2 || count < 0 {
		return nil, fmt.Errorf("gmw: bad dealer request parties=%d count=%d", parties, count)
	}
	out := make([]WideTriples, parties)
	for p := range out {
		out[p] = WideTriples{
			A: make([]uint64, count),
			B: make([]uint64, count),
			C: make([]uint64, count),
		}
	}
	for t := 0; t < count; t++ {
		dealWideTriple(rng, out, t)
	}
	return out, nil
}

// dealWideTriple deals ordinal t: sample the 64-lane secrets, XOR-share
// each word across the parties.
func dealWideTriple(rng *rand.Rand, out []WideTriples, t int) {
	a := rng.Uint64()
	b := rng.Uint64()
	c := a & b
	shareWordInto(rng, a, out, t, func(wt *WideTriples) []uint64 { return wt.A })
	shareWordInto(rng, b, out, t, func(wt *WideTriples) []uint64 { return wt.B })
	shareWordInto(rng, c, out, t, func(wt *WideTriples) []uint64 { return wt.C })
}

func shareWordInto(rng *rand.Rand, v uint64, out []WideTriples, t int, sel func(*WideTriples) []uint64) {
	var acc uint64
	for p := 0; p < len(out)-1; p++ {
		s := rng.Uint64()
		sel(&out[p])[t] = s
		acc ^= s
	}
	sel(&out[len(out)-1])[t] = v ^ acc
}

// tripleStreamWide labels the DeriveSeed stream of the sharded wide dealer
// (distinct from the scalar dealer's stream so the two never collide).
const tripleStreamWide uint64 = 0x77696465 // "wide"

// GenTriplesWideSharded deals the same word-triples as GenTriplesWide but
// shards the ordinal range into fixed 4096-triple blocks, each dealt from
// an independent child seed across up to `workers` goroutines. The output
// is a function of (seed, shard) only, hence bit-identical at any worker
// count.
func GenTriplesWideSharded(seed int64, parties, count, workers int) ([]WideTriples, error) {
	if parties < 2 || count < 0 {
		return nil, fmt.Errorf("gmw: bad dealer request parties=%d count=%d", parties, count)
	}
	out := make([]WideTriples, parties)
	for p := range out {
		out[p] = WideTriples{
			A: make([]uint64, count),
			B: make([]uint64, count),
			C: make([]uint64, count),
		}
	}
	err := parallel.Blocks(workers, count, tripleShard, func(shard, lo, hi int) error {
		rng := rand.New(rand.NewSource(mathx.DeriveSeed(seed, tripleStreamWide, uint64(shard))))
		for t := lo; t < hi; t++ {
			dealWideTriple(rng, out, t)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GenTriplesWideOT runs the pairwise-OT preprocessing for count
// word-triples by generating count·64 scalar triples over net and packing
// lane k of ordinal t from scalar ordinal t·64+k. OT preprocessing does
// not amortize across lanes — each lane's cross terms still need their own
// OTs — the wide win is the online phase; this keeps the cost model
// honest while letting OT-configured deployments use the wide evaluator.
func GenTriplesWideOT(net transport.Network, count int, seed int64) ([]WideTriples, error) {
	if count < 0 {
		return nil, fmt.Errorf("gmw: negative triple count %d", count)
	}
	scalar, err := GenTriplesOT(net, count*WideLanes, seed)
	if err != nil {
		return nil, err
	}
	out := make([]WideTriples, len(scalar))
	for p, pt := range scalar {
		wt := WideTriples{
			A: make([]uint64, count),
			B: make([]uint64, count),
			C: make([]uint64, count),
		}
		for t := 0; t < count; t++ {
			for k := 0; k < WideLanes; k++ {
				i := t*WideLanes + k
				wt.A[t] |= uint64(pt.A[i]&1) << uint(k)
				wt.B[t] |= uint64(pt.B[i]&1) << uint(k)
				wt.C[t] |= uint64(pt.C[i]&1) << uint(k)
			}
		}
		out[p] = wt
	}
	return out, nil
}

// WideResult carries a wide run's outputs and execution accounting.
type WideResult struct {
	// Outputs holds one word per circuit output wire, bit k = instance k's
	// value; nil when the run kept the outputs shared.
	Outputs []uint64
	// OutputShares[p] holds party p's XOR-share words of the output wires
	// when the run kept them shared (RunWideShared); nil otherwise. Opening
	// a wire means XOR-ing the parties' words.
	OutputShares [][]uint64
	// Rounds is the number of sequential communication rounds used.
	Rounds int
	// Stats is the transport traffic consumed by the run.
	Stats transport.Stats
}

// RunWide evaluates 64 independent instances of circ securely over net
// with dealer-generated word-triples. inputs[p] holds one word per input
// wire owned by party p (in the order p's wires appear in circ.Inputs());
// bit k of each word is instance k's private bit.
func RunWide(net transport.Network, circ *circuit.Circuit, inputs [][]uint64, seed int64) (*WideResult, error) {
	andCount := circ.Stats().AndGates
	dealerRng := rand.New(rand.NewSource(seed))
	triples, err := GenTriplesWide(dealerRng, net.Size(), andCount)
	if err != nil {
		return nil, err
	}
	return runWideCommon(net, circ, inputs, triples, seed, false)
}

// RunWideWithTriples is RunWide with caller-provided word-triples (from
// GenTriplesWideSharded, GenTriplesWideOT, or another preprocessing).
func RunWideWithTriples(net transport.Network, circ *circuit.Circuit, inputs [][]uint64, triples []WideTriples, seed int64) (*WideResult, error) {
	return runWideCommon(net, circ, inputs, triples, seed, false)
}

// RunWideShared evaluates like RunWideWithTriples but skips the output
// reconstruction round: the result carries each party's output-wire share
// words instead of opened values. The secure pipeline uses this when
// opening would leak (per-identity threshold bits must stay hidden and
// only a downstream aggregate is ever opened).
func RunWideShared(net transport.Network, circ *circuit.Circuit, inputs [][]uint64, triples []WideTriples, seed int64) (*WideResult, error) {
	return runWideCommon(net, circ, inputs, triples, seed, true)
}

func runWideCommon(net transport.Network, circ *circuit.Circuit, inputs [][]uint64, triples []WideTriples, seed int64, keepShared bool) (*WideResult, error) {
	n := net.Size()
	if len(inputs) != n {
		return nil, fmt.Errorf("%w: %d input sets for %d parties", ErrInputShape, len(inputs), n)
	}
	owned := make([][]int, n)
	for idx, in := range circ.Inputs() {
		if in.Party < 0 || in.Party >= n {
			return nil, fmt.Errorf("%w: input wire owned by party %d in %d-party net", ErrInputShape, in.Party, n)
		}
		owned[in.Party] = append(owned[in.Party], idx)
	}
	for p := 0; p < n; p++ {
		if len(inputs[p]) != len(owned[p]) {
			return nil, fmt.Errorf("%w: party %d supplies %d words, owns %d wires",
				ErrInputShape, p, len(inputs[p]), len(owned[p]))
		}
	}
	andCount := circ.Stats().AndGates
	if len(triples) != n {
		return nil, fmt.Errorf("%w: %d triple sets for %d parties", ErrTripleShape, len(triples), n)
	}
	for p, wt := range triples {
		if len(wt.A) < andCount || len(wt.B) < andCount || len(wt.C) < andCount {
			return nil, fmt.Errorf("%w: party %d holds %d word-triples, circuit needs %d",
				ErrTripleShape, p, len(wt.A), andCount)
		}
	}

	tm := newTimers(transport.RegistryOf(net))
	tm.runs.Inc()
	rounds := 1 + len(circ.AndRounds())
	if !keepShared {
		rounds++
	}
	runSpan := transport.SpanOf(net)
	runSpan.SetAttrs(
		trace.Int("parties", n),
		trace.Int("instances", WideLanes),
		trace.Int("and_gates", andCount),
		trace.Int("and_layers", len(circ.AndRounds())),
		trace.Int("rounds", rounds))
	before := net.Stats()
	results := make([][]uint64, n)
	errs := make([]error, n)
	var failOnce sync.Once
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var sp *trace.Span
			if p == 0 {
				sp = runSpan
			}
			rng := rand.New(rand.NewSource(seed ^ int64(p+1)*104729))
			out, err := runPartyWide(net.Node(p), circ, owned, inputs[p], triples[p], rng, tm, sp, keepShared)
			if err != nil {
				errs[p] = fmt.Errorf("party %d: %w", p, err)
				failOnce.Do(func() { net.Close() })
				return
			}
			results[p] = out
		}(p)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (errors.Is(firstErr, transport.ErrClosed) && !errors.Is(err, transport.ErrClosed)) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	res := &WideResult{Rounds: rounds}
	if keepShared {
		res.OutputShares = results
	} else {
		// All parties must reconstruct identical output words.
		for p := 1; p < n; p++ {
			for i := range results[0] {
				if results[p][i] != results[0][i] {
					return nil, fmt.Errorf("%w: parties 0 and %d disagree on output %d", ErrProtocol, p, i)
				}
			}
		}
		res.Outputs = results[0]
	}
	after := net.Stats()
	tm.rounds.Add(uint64(rounds))
	tm.andLayers.Add(uint64(countAndLayers(circ)))
	tm.triples.Add(uint64(andCount) * WideLanes)
	res.Stats = transport.Stats{
		Messages: after.Messages - before.Messages,
		Bytes:    after.Bytes - before.Bytes,
	}
	return res, nil
}

// runPartyWide executes one party's role across all 64 lanes and returns
// either the opened output words or (keepShared) this party's share words.
func runPartyWide(node transport.Node, circ *circuit.Circuit, owned [][]int, myInputs []uint64, triples WideTriples, rng *rand.Rand, tm *timers, sp *trace.Span, keepShared bool) ([]uint64, error) {
	n := node.Size()
	id := node.ID()
	coll := transport.NewCollector(node)
	shares := make([]uint64, circ.NumWires())
	circInputs := circ.Inputs()
	gates := circ.Gates()

	phaseStart := time.Now()
	phaseSpan := sp.Child("gmw.input_share")
	// --- Round 1: input sharing -------------------------------------------
	// For each owned wire word, sample one share word per party; keep ours,
	// send the rest. The payload to party q is q's share words of our wires
	// in owned-order — already word-shaped, no packing step.
	if len(myInputs) > 0 {
		for q := 0; q < n; q++ {
			if q == id {
				continue
			}
			buf := transport.GetWords(len(myInputs))
			for i := range buf {
				buf[i] = rng.Uint64()
			}
			// Accumulate what we sent so our own share closes the XOR.
			for i, wireIdx := range owned[id] {
				shares[circInputs[wireIdx].Wire] ^= buf[i]
			}
			msg := transport.Message{Kind: transport.KindGMWShare, Data: buf}
			if err := node.Send(q, msg); err != nil {
				return nil, fmt.Errorf("send input shares: %w", err)
			}
			transport.PutWords(buf)
		}
		for i, wireIdx := range owned[id] {
			shares[circInputs[wireIdx].Wire] ^= myInputs[i]
		}
	}
	for p := 0; p < n; p++ {
		if p == id || len(owned[p]) == 0 {
			continue
		}
		msg, err := coll.RecvKind(transport.KindGMWShare, 0)
		if err != nil {
			return nil, fmt.Errorf("recv input shares: %w", err)
		}
		if len(msg.Data) != len(owned[msg.From]) {
			return nil, fmt.Errorf("%w: input-share message from %d has %d words, want %d",
				ErrProtocol, msg.From, len(msg.Data), len(owned[msg.From]))
		}
		for i, wireIdx := range owned[msg.From] {
			shares[circInputs[wireIdx].Wire] = msg.Data[i]
		}
		transport.PutWords(msg.Data)
	}

	tm.inputs.ObserveSince(phaseStart)
	phaseSpan.End()
	phaseStart = time.Now()
	phaseSpan = sp.Child("gmw.and_rounds")

	// --- Rounds 2..: layered evaluation ------------------------------------
	evalLocal := func(gi int) {
		g := gates[gi]
		switch g.Op {
		case circuit.OpXOR:
			shares[g.Out] = shares[g.A] ^ shares[g.B]
		case circuit.OpNOT:
			if id == 0 {
				shares[g.Out] = ^shares[g.A] // flips every lane
			} else {
				shares[g.Out] = shares[g.A]
			}
		}
	}
	localRounds := circ.LocalByRound()
	andRounds := circ.AndRounds()
	maxBatch := 0
	for _, batch := range andRounds {
		if len(batch) > maxBatch {
			maxBatch = len(batch)
		}
	}
	var deBuf, openedBuf []uint64
	if maxBatch > 0 {
		deBuf = transport.GetWords(2 * maxBatch)
		openedBuf = transport.GetWords(2 * maxBatch)
		defer transport.PutWords(deBuf)
		defer transport.PutWords(openedBuf)
	}
	for r := 0; r < len(andRounds); r++ {
		for _, gi := range localRounds[r] {
			evalLocal(gi)
		}
		batch := andRounds[r]
		if len(batch) == 0 {
			continue
		}
		// d = x ⊕ a, e = y ⊕ b per lane: the broadcast is the word pair
		// itself — one message opens the layer for all 64 instances.
		de := deBuf[:2*len(batch)]
		for bi, gi := range batch {
			g := gates[gi]
			t := circ.AndOrdinal(gi)
			de[2*bi] = shares[g.A] ^ triples.A[t]
			de[2*bi+1] = shares[g.B] ^ triples.B[t]
		}
		for q := 0; q < n; q++ {
			if q == id {
				continue
			}
			msg := transport.Message{Kind: transport.KindGMWAnd, Seq: uint32(r + 1), Data: de}
			if err := node.Send(q, msg); err != nil {
				return nil, fmt.Errorf("send AND round %d: %w", r, err)
			}
		}
		opened := openedBuf[:len(de)]
		copy(opened, de)
		got, err := coll.GatherKind(transport.KindGMWAnd, uint32(r+1), n-1)
		if err != nil {
			return nil, fmt.Errorf("gather AND round %d: %w", r, err)
		}
		for _, msg := range got {
			if len(msg.Data) != len(de) {
				return nil, fmt.Errorf("%w: AND message from %d has %d words, want %d",
					ErrProtocol, msg.From, len(msg.Data), len(de))
			}
			for i := range opened {
				opened[i] ^= msg.Data[i]
			}
			transport.PutWords(msg.Data)
		}
		for bi, gi := range batch {
			g := gates[gi]
			t := circ.AndOrdinal(gi)
			d, e := opened[2*bi], opened[2*bi+1]
			z := d&triples.B[t] ^ e&triples.A[t] ^ triples.C[t]
			if id == 0 {
				z ^= d & e
			}
			shares[g.Out] = z
		}
	}
	for _, gi := range localRounds[len(andRounds)] {
		evalLocal(gi)
	}
	tm.andRounds.ObserveSince(phaseStart)
	phaseSpan.SetInt("layers", len(andRounds))
	phaseSpan.End()

	outWires := circ.Outputs()
	outShares := make([]uint64, len(outWires))
	for i, w := range outWires {
		outShares[i] = shares[w]
	}
	if keepShared {
		return outShares, nil
	}
	phaseStart = time.Now()
	defer tm.outputs.ObserveSince(phaseStart)
	phaseSpan = sp.Child("gmw.output")
	defer phaseSpan.End()

	// --- Final round: output reconstruction --------------------------------
	for q := 0; q < n; q++ {
		if q == id {
			continue
		}
		msg := transport.Message{Kind: transport.KindGMWOutput, Data: outShares}
		if err := node.Send(q, msg); err != nil {
			return nil, fmt.Errorf("send outputs: %w", err)
		}
	}
	got, err := coll.GatherKind(transport.KindGMWOutput, 0, n-1)
	if err != nil {
		return nil, fmt.Errorf("gather outputs: %w", err)
	}
	final := outShares
	for _, msg := range got {
		if len(msg.Data) != len(final) {
			return nil, fmt.Errorf("%w: output message from %d has %d words, want %d",
				ErrProtocol, msg.From, len(msg.Data), len(final))
		}
		for i := range final {
			final[i] ^= msg.Data[i]
		}
		transport.PutWords(msg.Data)
	}
	return final, nil
}
