package gmw

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/transport"
)

func TestGenTriplesWideInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, parties := range []int{2, 3, 7} {
		triples, err := GenTriplesWide(rng, parties, 50)
		if err != nil {
			t.Fatal(err)
		}
		for tt := 0; tt < 50; tt++ {
			var a, b, c uint64
			for p := 0; p < parties; p++ {
				a ^= triples[p].A[tt]
				b ^= triples[p].B[tt]
				c ^= triples[p].C[tt]
			}
			if a&b != c {
				t.Fatalf("parties=%d word-triple %d: a&b != c", parties, tt)
			}
		}
	}
	if _, err := GenTriplesWide(rng, 1, 5); err == nil {
		t.Error("parties=1 accepted")
	}
	if _, err := GenTriplesWide(rng, 3, -1); err == nil {
		t.Error("negative count accepted")
	}
}

// The sharded wide dealer must be bit-identical at any worker count and
// still satisfy the triple invariant.
func TestGenTriplesWideShardedDeterministic(t *testing.T) {
	const parties, count = 3, 9000 // spans multiple 4096-word shards
	one, err := GenTriplesWideSharded(77, parties, count, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := GenTriplesWideSharded(77, parties, count, 8)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < parties; p++ {
		for tt := 0; tt < count; tt++ {
			if one[p].A[tt] != eight[p].A[tt] || one[p].B[tt] != eight[p].B[tt] || one[p].C[tt] != eight[p].C[tt] {
				t.Fatalf("party %d ordinal %d differs between 1 and 8 workers", p, tt)
			}
		}
	}
	for tt := 0; tt < count; tt++ {
		var a, b, c uint64
		for p := 0; p < parties; p++ {
			a ^= one[p].A[tt]
			b ^= one[p].B[tt]
			c ^= one[p].C[tt]
		}
		if a&b != c {
			t.Fatalf("sharded word-triple %d invalid", tt)
		}
	}
}

// OT-backed wide triples: 64 scalar OT triples per word, packed lane-wise.
func TestGenTriplesWideOT(t *testing.T) {
	if testing.Short() {
		t.Skip("public-key OT preprocessing is slow")
	}
	net, err := transport.NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	triples, err := GenTriplesWideOT(net, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 2; tt++ {
		var a, b, c uint64
		for p := range triples {
			a ^= triples[p].A[tt]
			b ^= triples[p].B[tt]
			c ^= triples[p].C[tt]
		}
		if a&b != c {
			t.Fatalf("OT word-triple %d invalid", tt)
		}
	}
}

// wideTestCircuit builds the same deep mixed circuit the scalar
// equivalence test uses: adders, a comparison, an equality, word outputs.
func wideTestCircuit(t testing.TB) *circuit.Circuit {
	t.Helper()
	const width = 6
	b := circuit.NewBuilder()
	x := b.InputVec(0, width)
	y := b.InputVec(1, width)
	z := b.InputVec(2, width)
	sum, err := b.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}
	sum, err = b.Add(sum, z)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := b.GreaterEq(sum, circuit.ConstVec(17, width))
	if err != nil {
		t.Fatal(err)
	}
	eq, err := b.Equal(x, z)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Output(ge); err != nil {
		t.Fatal(err)
	}
	if err := b.Output(eq); err != nil {
		t.Fatal(err)
	}
	for _, w := range sum {
		if err := b.Output(w); err != nil {
			t.Fatal(err)
		}
	}
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return circ
}

// laneInputs extracts lane k of word-shaped inputs as per-party bools.
func laneInputs(inputs [][]uint64, k int) [][]bool {
	out := make([][]bool, len(inputs))
	for p, words := range inputs {
		out[p] = make([]bool, len(words))
		for i, w := range words {
			out[p][i] = w>>uint(k)&1 == 1
		}
	}
	return out
}

// One wide run must equal 64 plaintext evaluations, lane for lane.
func TestWideMatchesPlaintextLanes(t *testing.T) {
	circ := wideTestCircuit(t)
	rng := rand.New(rand.NewSource(12))
	inputs := make([][]uint64, 3)
	nOwned := make([]int, 3)
	for _, in := range circ.Inputs() {
		nOwned[in.Party]++
	}
	for p := range inputs {
		inputs[p] = make([]uint64, nOwned[p])
		for i := range inputs[p] {
			inputs[p][i] = rng.Uint64()
		}
	}
	net, err := transport.NewInMem(3)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	res, err := RunWide(net, circ, inputs, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2+len(circ.AndRounds()) {
		t.Fatalf("Rounds = %d, want %d", res.Rounds, 2+len(circ.AndRounds()))
	}
	for k := 0; k < WideLanes; k++ {
		lane := laneInputs(inputs, k)
		var flat []bool
		for _, in := range circ.Inputs() {
			flat = append(flat, lane[in.Party][0])
			lane[in.Party] = lane[in.Party][1:]
		}
		want, err := circ.Evaluate(flat)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range want {
			if got := res.Outputs[i]>>uint(k)&1 == 1; got != w {
				t.Fatalf("lane %d output %d: wide=%v plain=%v", k, i, got, w)
			}
		}
	}
}

// One sampled lane must also agree with a full scalar GMW execution — the
// two protocol paths, not just the two evaluation semantics, coincide.
func TestWideMatchesScalarProtocol(t *testing.T) {
	circ := wideTestCircuit(t)
	rng := rand.New(rand.NewSource(14))
	inputs := make([][]uint64, 3)
	nOwned := make([]int, 3)
	for _, in := range circ.Inputs() {
		nOwned[in.Party]++
	}
	for p := range inputs {
		inputs[p] = make([]uint64, nOwned[p])
		for i := range inputs[p] {
			inputs[p][i] = rng.Uint64()
		}
	}
	net, err := transport.NewInMem(3)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	wide, err := RunWide(net, circ, inputs, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 17, 63} {
		scalar := runInMem(t, 3, circ, laneInputs(inputs, k), 16+int64(k))
		for i := range scalar.Outputs {
			if got := wide.Outputs[i]>>uint(k)&1 == 1; got != scalar.Outputs[i] {
				t.Fatalf("lane %d output %d: wide=%v scalar=%v", k, i, got, scalar.Outputs[i])
			}
		}
	}
}

// Shares-kept mode: no output round, and the parties' share words XOR to
// the plaintext outputs.
func TestWideSharedReconstructs(t *testing.T) {
	circ := wideTestCircuit(t)
	rng := rand.New(rand.NewSource(18))
	inputs := make([][]uint64, 3)
	nOwned := make([]int, 3)
	for _, in := range circ.Inputs() {
		nOwned[in.Party]++
	}
	for p := range inputs {
		inputs[p] = make([]uint64, nOwned[p])
		for i := range inputs[p] {
			inputs[p][i] = rng.Uint64()
		}
	}
	triples, err := GenTriplesWideSharded(19, 3, circ.Stats().AndGates, 4)
	if err != nil {
		t.Fatal(err)
	}
	net, err := transport.NewInMem(3)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	res, err := RunWideShared(net, circ, inputs, triples, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs != nil {
		t.Fatal("shared run opened outputs")
	}
	if res.Rounds != 1+len(circ.AndRounds()) {
		t.Fatalf("Rounds = %d, want %d (no output round)", res.Rounds, 1+len(circ.AndRounds()))
	}
	opened := make([]uint64, len(circ.Outputs()))
	for _, partyShares := range res.OutputShares {
		if len(partyShares) != len(opened) {
			t.Fatalf("party holds %d output words, want %d", len(partyShares), len(opened))
		}
		for i, w := range partyShares {
			opened[i] ^= w
		}
	}
	for k := 0; k < WideLanes; k++ {
		lane := laneInputs(inputs, k)
		var flat []bool
		for _, in := range circ.Inputs() {
			flat = append(flat, lane[in.Party][0])
			lane[in.Party] = lane[in.Party][1:]
		}
		want, err := circ.Evaluate(flat)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range want {
			if got := opened[i]>>uint(k)&1 == 1; got != w {
				t.Fatalf("lane %d output %d: reconstructed=%v plain=%v", k, i, got, w)
			}
		}
	}
}

func TestRunWideValidation(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	if err := b.Output(b.AND(x, y)); err != nil {
		t.Fatal(err)
	}
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := transport.NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if _, err := RunWide(net, circ, [][]uint64{{1}}, 1); err == nil {
		t.Error("wrong party count accepted")
	}
	if _, err := RunWide(net, circ, [][]uint64{{1, 2}, {3}}, 1); err == nil {
		t.Error("wrong per-party word count accepted")
	}
	short := []WideTriples{{}, {}}
	if _, err := RunWideWithTriples(net, circ, [][]uint64{{1}, {2}}, short, 1); err == nil {
		t.Error("short triples accepted")
	}
}

// FuzzGMWWideEquivalence drives random circuits and random lane words —
// including ragged slabs where only the low `active` lanes carry data —
// through the wide evaluator and cross-checks every active lane against
// plaintext evaluation, plus one lane against the scalar protocol.
func FuzzGMWWideEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(64))
	f.Add(int64(7), uint8(1))
	f.Add(int64(42), uint8(37))
	f.Fuzz(func(t *testing.T, seed int64, active uint8) {
		lanes := int(active%64) + 1 // 1..64 active lanes (ragged slab model)
		rng := rand.New(rand.NewSource(seed))
		parties := 2 + rng.Intn(3)
		b := circuit.NewBuilder()
		pool := make([]circuit.Wire, 0, 40)
		for p := 0; p < parties; p++ {
			pool = append(pool, b.InputVec(p, 2+rng.Intn(3))...)
		}
		for g := 0; g < 25; g++ {
			a := pool[rng.Intn(len(pool))]
			c := pool[rng.Intn(len(pool))]
			var w circuit.Wire
			switch rng.Intn(4) {
			case 0:
				w = b.XOR(a, c)
			case 1:
				w = b.AND(a, c)
			case 2:
				w = b.NOT(a)
			default:
				w = b.OR(a, c)
			}
			if !w.IsConst() {
				pool = append(pool, w)
			}
		}
		outs := 0
		for i := len(pool) - 1; i >= 0 && outs < 5; i-- {
			if err := b.Output(pool[i]); err == nil {
				outs++
			}
		}
		if outs == 0 {
			t.Skip("degenerate circuit with no outputs")
		}
		circ, err := b.Build()
		if err != nil {
			t.Skip("unbuildable circuit")
		}
		mask := ^uint64(0) >> uint(64-lanes)
		inputs := make([][]uint64, parties)
		nOwned := make([]int, parties)
		for _, in := range circ.Inputs() {
			nOwned[in.Party]++
		}
		for p := range inputs {
			inputs[p] = make([]uint64, nOwned[p])
			for i := range inputs[p] {
				inputs[p][i] = rng.Uint64() & mask // padded lanes carry zeros
			}
		}
		net, err := transport.NewInMem(parties)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		wide, err := RunWide(net, circ, inputs, seed)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < lanes; k++ {
			lane := laneInputs(inputs, k)
			cursor := make([]int, parties)
			var flat []bool
			for _, in := range circ.Inputs() {
				flat = append(flat, lane[in.Party][cursor[in.Party]])
				cursor[in.Party]++
			}
			want, err := circ.Evaluate(flat)
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range want {
				if got := wide.Outputs[i]>>uint(k)&1 == 1; got != w {
					t.Fatalf("lane %d/%d output %d: wide=%v plain=%v", k, lanes, i, got, w)
				}
			}
		}
		// Scalar protocol cross-check on one active lane.
		k := rng.Intn(lanes)
		snet, err := transport.NewInMem(parties)
		if err != nil {
			t.Fatal(err)
		}
		defer snet.Close()
		scalar, err := Run(snet, circ, laneInputs(inputs, k), seed+1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range scalar.Outputs {
			if got := wide.Outputs[i]>>uint(k)&1 == 1; got != scalar.Outputs[i] {
				t.Fatalf("lane %d output %d: wide=%v scalar=%v", k, i, got, scalar.Outputs[i])
			}
		}
	})
}

// Fault injection on the wide path: crash, total loss, corruption. The
// run must fail loudly (or detect the corruption), never hang or return
// silently wrong openings.
func TestWideFaultInjection(t *testing.T) {
	circ := andCircuit(t)
	inputs := [][]uint64{{^uint64(0)}, {^uint64(0)}, {^uint64(0)}}

	t.Run("crashed party", func(t *testing.T) {
		inner, err := transport.NewInMem(3)
		if err != nil {
			t.Fatal(err)
		}
		net := transport.NewFaulty(inner, transport.FaultPlan{FailSendFrom: map[int]bool{1: true}})
		defer net.Close()
		done := make(chan error, 1)
		go func() {
			_, e := RunWide(net, circ, inputs, 1)
			done <- e
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("wide MPC succeeded despite crashed party")
			}
		case <-time.After(30 * time.Second):
			t.Fatal("wide MPC hung with crashed party")
		}
	})

	t.Run("all messages dropped", func(t *testing.T) {
		inner, err := transport.NewInMem(3)
		if err != nil {
			t.Fatal(err)
		}
		net := transport.NewFaulty(inner, transport.FaultPlan{DropRate: 1, Seed: 2})
		done := make(chan error, 1)
		go func() {
			_, e := RunWide(net, circ, inputs, 3)
			done <- e
		}()
		time.Sleep(50 * time.Millisecond)
		net.Close()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("wide MPC succeeded with every message dropped")
			}
		case <-time.After(30 * time.Second):
			t.Fatal("wide MPC hung after network close")
		}
	})

	t.Run("corrupted traffic detected", func(t *testing.T) {
		detected := 0
		const runs = 10
		for i := 0; i < runs; i++ {
			inner, err := transport.NewInMem(3)
			if err != nil {
				t.Fatal(err)
			}
			net := transport.NewFaulty(inner, transport.FaultPlan{CorruptRate: 0.5, Seed: int64(i)})
			_, err = RunWide(net, circ, inputs, int64(i))
			net.Close()
			if err != nil {
				detected++
			}
		}
		if detected == 0 {
			t.Fatal("no corrupted wide run was detected across output reconstruction")
		}
	})
}

// The wide path must run identically over TCP.
func TestWideOverTCP(t *testing.T) {
	const width = 4
	b := circuit.NewBuilder()
	x := b.InputVec(0, width)
	y := b.InputVec(1, width)
	sum, err := b.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range sum {
		if err := b.Output(w); err != nil {
			t.Fatal(err)
		}
	}
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := transport.NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	rng := rand.New(rand.NewSource(23))
	inputs := [][]uint64{make([]uint64, width), make([]uint64, width)}
	for p := range inputs {
		for i := range inputs[p] {
			inputs[p][i] = rng.Uint64()
		}
	}
	res, err := RunWide(net, circ, inputs, 24)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < WideLanes; k++ {
		var vx, vy uint64
		for i := 0; i < width; i++ {
			vx |= inputs[0][i] >> uint(k) & 1 << uint(i)
			vy |= inputs[1][i] >> uint(k) & 1 << uint(i)
		}
		var got uint64
		for i := 0; i < width; i++ {
			got |= res.Outputs[i] >> uint(k) & 1 << uint(i)
		}
		if want := (vx + vy) % (1 << width); got != want {
			t.Fatalf("lane %d: %d+%d = %d over TCP, want %d", k, vx, vy, got, want)
		}
	}
}

// BenchmarkWideAdd32 is BenchmarkSecureAdd32's wide twin: the same 32-bit
// adder, but 64 instances per execution. Comparing ns/op across the two
// (÷64 for the wide per-instance cost) shows the SIMD win directly.
func BenchmarkWideAdd32(b *testing.B) {
	const width = 32
	bld := circuit.NewBuilder()
	x := bld.InputVec(0, width)
	y := bld.InputVec(1, width)
	sum, err := bld.Add(x, y)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range sum {
		if err := bld.Output(w); err != nil {
			b.Fatal(err)
		}
	}
	circ, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	inputs := [][]uint64{make([]uint64, width), make([]uint64, width)}
	for p := range inputs {
		for i := range inputs[p] {
			inputs[p][i] = rng.Uint64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := transport.NewInMem(2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunWide(net, circ, inputs, int64(i)); err != nil {
			b.Fatal(err)
		}
		net.Close()
	}
}
