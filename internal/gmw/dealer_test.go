package gmw

import (
	"math"
	"math/rand"
	"testing"
)

// Dealer-output statistics: any single party's triple shares must be
// marginally uniform (else the dealer itself would leak the triple values
// to individual parties).
func TestTripleSharesMarginallyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const count = 20000
	triples, err := GenTriples(rng, 3, count)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		for name, stream := range map[string][]byte{
			"A": triples[p].A, "B": triples[p].B, "C": triples[p].C,
		} {
			ones := 0
			for _, b := range stream {
				ones += int(b)
			}
			rate := float64(ones) / count
			if math.Abs(rate-0.5) > 0.02 {
				t.Errorf("party %d stream %s: ones rate %v, want ≈ 0.5", p, name, rate)
			}
		}
	}
}

// The reconstructed a and b streams themselves must be unbiased coins, and
// c must equal a∧b exactly (already covered) with P(c=1) ≈ 0.25.
func TestTripleJointDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const count = 20000
	triples, err := GenTriples(rng, 4, count)
	if err != nil {
		t.Fatal(err)
	}
	var aOnes, bOnes, cOnes int
	for i := 0; i < count; i++ {
		var a, b, c byte
		for p := 0; p < 4; p++ {
			a ^= triples[p].A[i]
			b ^= triples[p].B[i]
			c ^= triples[p].C[i]
		}
		aOnes += int(a)
		bOnes += int(b)
		cOnes += int(c)
	}
	if r := float64(aOnes) / count; math.Abs(r-0.5) > 0.02 {
		t.Errorf("a rate %v", r)
	}
	if r := float64(bOnes) / count; math.Abs(r-0.5) > 0.02 {
		t.Errorf("b rate %v", r)
	}
	if r := float64(cOnes) / count; math.Abs(r-0.25) > 0.02 {
		t.Errorf("c rate %v, want ≈ 0.25", r)
	}
}

// A single party's view of (A, B, C) must not predict the real (a, b):
// correlation between a party's share and the reconstructed secret is ~0.
func TestShareUncorrelatedWithSecret(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const count = 20000
	triples, err := GenTriples(rng, 3, count)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := 0; i < count; i++ {
		var a byte
		for p := 0; p < 3; p++ {
			a ^= triples[p].A[i]
		}
		if triples[0].A[i] == a {
			agree++
		}
	}
	rate := float64(agree) / count
	if math.Abs(rate-0.5) > 0.02 {
		t.Fatalf("party 0's A share agrees with secret at rate %v, want ≈ 0.5", rate)
	}
}
