package gmw

import (
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/transport"
)

func andCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	z := b.Input(2)
	if err := b.Output(b.AND(b.AND(x, y), z)); err != nil {
		t.Fatal(err)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCrashedPartyFailsFast(t *testing.T) {
	circ := andCircuit(t)
	inner, err := transport.NewInMem(3)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewFaulty(inner, transport.FaultPlan{FailSendFrom: map[int]bool{1: true}})
	defer net.Close()
	done := make(chan error, 1)
	go func() {
		_, e := Run(net, circ, [][]bool{{true}, {true}, {true}}, 1)
		done <- e
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("MPC succeeded despite crashed party")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("MPC hung with crashed party")
	}
}

func TestDroppedMessagesAbortOnClose(t *testing.T) {
	circ := andCircuit(t)
	inner, err := transport.NewInMem(3)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewFaulty(inner, transport.FaultPlan{DropRate: 1, Seed: 2})
	done := make(chan error, 1)
	go func() {
		_, e := Run(net, circ, [][]bool{{true}, {true}, {true}}, 3)
		done <- e
	}()
	time.Sleep(50 * time.Millisecond)
	net.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("MPC succeeded with every message dropped")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("MPC hung after network close")
	}
}

// Disagreeing outputs (caused by corrupted share traffic) must be detected
// by the cross-party output comparison rather than returned silently.
func TestCorruptedTrafficDetected(t *testing.T) {
	circ := andCircuit(t)
	detected := 0
	const runs = 10
	for i := 0; i < runs; i++ {
		inner, err := transport.NewInMem(3)
		if err != nil {
			t.Fatal(err)
		}
		net := transport.NewFaulty(inner, transport.FaultPlan{CorruptRate: 0.5, Seed: int64(i)})
		_, err = Run(net, circ, [][]bool{{true}, {true}, {true}}, int64(i))
		net.Close()
		if err != nil {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no corrupted run was detected across output reconstruction")
	}
}
