package gmw

import (
	"fmt"
	"math/rand"

	"repro/internal/mathx"
	"repro/internal/parallel"
)

// tripleShard is the number of AND-gate ordinals dealt per derived RNG
// stream in GenTriplesSharded. The value is a block-size / scheduling
// trade-off only; changing it changes the dealt triples (they are a
// function of (seed, shard)), so it is fixed as part of the deterministic
// output contract.
const tripleShard = 4096

// tripleStream labels the DeriveSeed stream used by the sharded dealer.
const tripleStream uint64 = 0x74726970 // "trip"

// GenTriplesSharded deals the same kind of Beaver triples as GenTriples,
// but shards the ordinal range into fixed 4096-triple blocks, each dealt
// from an independent child seed (mathx.DeriveSeed(seed, stream, shard))
// across up to `workers` goroutines. Because every block's randomness
// depends only on (seed, shard), the output is bit-identical at any worker
// count — the property the parallel construction pipeline needs from its
// preprocessing.
func GenTriplesSharded(seed int64, parties, count, workers int) ([]PartyTriples, error) {
	if parties < 2 || count < 0 {
		return nil, fmt.Errorf("gmw: bad dealer request parties=%d count=%d", parties, count)
	}
	out := make([]PartyTriples, parties)
	for p := range out {
		out[p] = PartyTriples{
			A: make([]byte, count),
			B: make([]byte, count),
			C: make([]byte, count),
		}
	}
	// Each block writes disjoint ordinals of the shared slices, so the
	// blocks are race-free without locks.
	err := parallel.Blocks(workers, count, tripleShard, func(shard, lo, hi int) error {
		rng := rand.New(rand.NewSource(mathx.DeriveSeed(seed, tripleStream, uint64(shard))))
		for t := lo; t < hi; t++ {
			a := byte(rng.Intn(2))
			b := byte(rng.Intn(2))
			c := a & b
			shareInto(rng, a, out, t, func(pt *PartyTriples) []byte { return pt.A })
			shareInto(rng, b, out, t, func(pt *PartyTriples) []byte { return pt.B })
			shareInto(rng, c, out, t, func(pt *PartyTriples) []byte { return pt.C })
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
