package gmw

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/circuit"
	"repro/internal/ot"
	"repro/internal/trace"
	"repro/internal/transport"
)

// OT-based Beaver-triple preprocessing: replaces the trusted dealer with
// the standard pairwise-OT construction. For triple t each party p samples
// private bits a_p, b_p; the triple secret is
//
//	c = (⊕_p a_p)(⊕_q b_q) = ⊕_p a_p·b_p ⊕ ⊕_{p≠q} a_p·b_q ,
//
// and every cross term a_p·b_q is turned into XOR shares between p and q
// by one 1-out-of-2 OT: the sender p offers (x, x⊕a_p), the receiver q
// selects with b_q and learns x⊕(a_p·b_q); x stays with p. Each party's
// C share is its own a_p·b_p XOR all masks it sent XOR all messages it
// received. Security is semi-honest, inherited from the OT.
//
// Cost: n(n−1) OTs per triple with 2048-bit exponentiations each — orders
// of magnitude slower than the dealer, which is why the dealer remains the
// default for simulation and OT preprocessing is an explicit opt-in
// (core.TripleOT / eppi.WithOTPreprocessing).

// GenTriplesOT runs the pairwise-OT preprocessing among all parties of
// net and returns each party's triple shares. seed derives each party's
// local randomness deterministically (use distinct seeds per run).
func GenTriplesOT(net transport.Network, count int, seed int64) ([]PartyTriples, error) {
	n := net.Size()
	if n < 2 {
		return nil, fmt.Errorf("gmw: OT preprocessing needs >= 2 parties, got %d", n)
	}
	if count < 0 {
		return nil, fmt.Errorf("gmw: negative triple count %d", count)
	}
	// The preprocessing span hangs under whatever span the caller attached
	// to the network; it covers all n(n−1) pairwise OT sessions.
	otSpan := transport.SpanOf(net).Child("gmw.ot_preprocess",
		trace.Int("parties", n), trace.Int("triples", count))
	defer otSpan.End()
	group := ot.DefaultGroup()
	out := make([]PartyTriples, n)
	errs := make([]error, n)
	var failOnce sync.Once
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed ^ int64(p+1)*6700417))
			triples, err := otPartyRun(group, net.Node(p), count, rng)
			if err != nil {
				errs[p] = fmt.Errorf("party %d: %w", p, err)
				failOnce.Do(func() { net.Close() })
				return
			}
			out[p] = triples
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// otPartyRun executes one party's role in the preprocessing.
func otPartyRun(group ot.Group, node transport.Node, count int, rng *rand.Rand) (PartyTriples, error) {
	n := node.Size()
	id := node.ID()
	pt := PartyTriples{
		A: make([]byte, count),
		B: make([]byte, count),
		C: make([]byte, count),
	}
	for t := 0; t < count; t++ {
		pt.A[t] = byte(rng.Intn(2))
		pt.B[t] = byte(rng.Intn(2))
		pt.C[t] = pt.A[t] & pt.B[t]
	}
	if count == 0 {
		return pt, nil
	}
	coll := transport.NewCollector(node)

	// sendSession: we are the sender of session (id → peer), offering
	// (x_t, x_t ⊕ a_t); our C share absorbs the masks.
	sendSession := func(peer int) error {
		pairs := make([][2][]byte, count)
		for t := 0; t < count; t++ {
			x := byte(rng.Intn(2))
			pairs[t] = [2][]byte{{x}, {x ^ pt.A[t]}}
			pt.C[t] ^= x
		}
		seq := uint32(id*n + peer)
		if err := ot.SendBatch(group, coll, peer, pairs, rng, seq); err != nil {
			return fmt.Errorf("OT send to %d: %w", peer, err)
		}
		return nil
	}
	// recvSession: we are the receiver of session (peer → id), selecting
	// with b_t; our C share absorbs the received x ⊕ a_peer·b.
	recvSession := func(peer int) error {
		seq := uint32(peer*n + id)
		got, err := ot.ReceiveBatch(group, coll, peer, pt.B[:count:count], rng, seq)
		if err != nil {
			return fmt.Errorf("OT recv from %d: %w", peer, err)
		}
		for t := 0; t < count; t++ {
			pt.C[t] ^= got[t][0] & 1
		}
		return nil
	}

	// Pairwise sessions in deadlock-free order: within each pair the
	// lower id sends first; peers are processed in increasing id order.
	for peer := 0; peer < n; peer++ {
		if peer == id {
			continue
		}
		if id < peer {
			if err := sendSession(peer); err != nil {
				return PartyTriples{}, err
			}
			if err := recvSession(peer); err != nil {
				return PartyTriples{}, err
			}
		} else {
			if err := recvSession(peer); err != nil {
				return PartyTriples{}, err
			}
			if err := sendSession(peer); err != nil {
				return PartyTriples{}, err
			}
		}
	}
	return pt, nil
}

// RunWithTriples evaluates circ like Run but with caller-provided triples
// (e.g. from GenTriplesOT). triples[p] must hold at least the circuit's
// AND-gate count for every party p.
func RunWithTriples(net transport.Network, circ *circuit.Circuit, inputs [][]bool, triples []PartyTriples, seed int64) (*Result, error) {
	return runCommon(net, circ, inputs, triples, seed)
}
