package gmw

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/transport"
)

// BenchmarkScalarAndRounds pins the AND-round allocation behavior of the
// scalar online phase: a long ripple-carry chain maximizes AND depth, so
// per-layer scratch churn (the d/e batch, its packed words, the peer
// unpack area) dominates allocs/op. The buffers are sized once per party
// per run and reused across every layer; regressions show up directly in
// this benchmark's allocs/op.
func BenchmarkScalarAndRounds(b *testing.B) {
	const width = 64 // 64-deep AND chain under ripple arithmetic
	bld := circuit.NewBuilder()
	x := bld.InputVec(0, width)
	y := bld.InputVec(1, width)
	sum, err := bld.Add(x, y)
	if err != nil {
		b.Fatal(err)
	}
	lt, err := bld.LessThan(sum, circuit.ConstVec(1<<40, width))
	if err != nil {
		b.Fatal(err)
	}
	if err := bld.Output(lt); err != nil {
		b.Fatal(err)
	}
	circ, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	inputs := [][]bool{circuit.PackBits(1234567890123, width), circuit.PackBits(987654321098, width)}
	triples, err := GenTriplesSharded(31, 2, circ.Stats().AndGates, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := transport.NewInMem(2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunWithTriples(net, circ, inputs, triples, int64(i)); err != nil {
			b.Fatal(err)
		}
		net.Close()
	}
}
