package gmw

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/transport"
)

func genOTTriples(t *testing.T, parties, count int, seed int64) []PartyTriples {
	t.Helper()
	net, err := transport.NewInMem(parties)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	triples, err := GenTriplesOT(net, count, seed)
	if err != nil {
		t.Fatal(err)
	}
	return triples
}

// The OT-generated triples must satisfy the Beaver invariant exactly.
func TestOTTriplesInvariant(t *testing.T) {
	for _, parties := range []int{2, 3} {
		const count = 8
		triples := genOTTriples(t, parties, count, int64(parties)*100)
		for tt := 0; tt < count; tt++ {
			var a, b, c byte
			for p := 0; p < parties; p++ {
				a ^= triples[p].A[tt]
				b ^= triples[p].B[tt]
				c ^= triples[p].C[tt]
			}
			if a&b != c {
				t.Fatalf("parties=%d triple %d: a=%d b=%d c=%d", parties, tt, a, b, c)
			}
		}
	}
}

func TestOTTriplesValidation(t *testing.T) {
	net, err := transport.NewInMem(1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if _, err := GenTriplesOT(net, 4, 1); err == nil {
		t.Error("single party accepted")
	}
	net2, err := transport.NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net2.Close()
	if _, err := GenTriplesOT(net2, -1, 1); err == nil {
		t.Error("negative count accepted")
	}
	triples, err := GenTriplesOT(net2, 0, 1)
	if err != nil || len(triples) != 2 {
		t.Fatalf("zero-count preprocessing: %v, %d", err, len(triples))
	}
}

// Full GMW evaluation with OT preprocessing end to end: secure result must
// equal plaintext evaluation.
func TestRunWithOTTriples(t *testing.T) {
	const width = 3
	b := circuit.NewBuilder()
	x := b.InputVec(0, width)
	y := b.InputVec(1, width)
	sum, err := b.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := b.GreaterEq(sum, circuit.ConstVec(5, width))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Output(ge); err != nil {
		t.Fatal(err)
	}
	for _, w := range sum {
		if err := b.Output(w); err != nil {
			t.Fatal(err)
		}
	}
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Preprocess with OT on one network, evaluate on a fresh one (as a
	// real offline/online split would).
	preNet, err := transport.NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	triples, err := GenTriplesOT(preNet, circ.Stats().AndGates, 42)
	preNet.Close()
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ vx, vy uint64 }{{3, 4}, {0, 0}, {7, 7}, {2, 2}} {
		net, err := transport.NewInMem(2)
		if err != nil {
			t.Fatal(err)
		}
		inputs := [][]bool{circuit.PackBits(tc.vx, width), circuit.PackBits(tc.vy, width)}
		res, err := RunWithTriples(net, circ, inputs, triples, 7)
		net.Close()
		if err != nil {
			t.Fatal(err)
		}
		wantSum := (tc.vx + tc.vy) % 8
		if got := circuit.UnpackBits(res.Outputs[1:]); got != wantSum {
			t.Fatalf("%d+%d = %d, want %d", tc.vx, tc.vy, got, wantSum)
		}
		if res.Outputs[0] != (wantSum >= 5) {
			t.Fatalf("comparison wrong for %d+%d", tc.vx, tc.vy)
		}
	}
}

func TestRunWithTriplesValidation(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	if err := b.Output(b.AND(x, y)); err != nil {
		t.Fatal(err)
	}
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := transport.NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	// Too few triple sets.
	if _, err := RunWithTriples(net, circ, [][]bool{{true}, {true}}, []PartyTriples{{}}, 1); err == nil {
		t.Error("short triple set list accepted")
	}
	// Triple sets shorter than the AND count.
	empty := []PartyTriples{{}, {}}
	if _, err := RunWithTriples(net, circ, [][]bool{{true}, {true}}, empty, 1); err == nil {
		t.Error("insufficient triples accepted")
	}
}

// OT-generated preprocessing must be as uniform as dealer output: a single
// party's shares don't reveal the secrets.
func TestOTTriplesShareUniformity(t *testing.T) {
	const count = 64
	triples := genOTTriples(t, 2, count, 9)
	ones := 0
	for _, v := range triples[0].C {
		ones += int(v)
	}
	// With 64 samples this is a loose sanity check, not a sharp bound.
	if ones == 0 || ones == count {
		t.Fatalf("party 0's C shares are constant (%d ones of %d)", ones, count)
	}
}
