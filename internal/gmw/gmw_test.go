package gmw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/transport"
)

func runInMem(t testing.TB, parties int, circ *circuit.Circuit, inputs [][]bool, seed int64) *Result {
	t.Helper()
	net, err := transport.NewInMem(parties)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	res, err := Run(net, circ, inputs, seed)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGenTriplesInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, parties := range []int{2, 3, 7} {
		triples, err := GenTriples(rng, parties, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(triples) != parties {
			t.Fatalf("got %d party slices", len(triples))
		}
		for tt := 0; tt < 100; tt++ {
			var a, b, c byte
			for p := 0; p < parties; p++ {
				a ^= triples[p].A[tt]
				b ^= triples[p].B[tt]
				c ^= triples[p].C[tt]
			}
			if a&b != c {
				t.Fatalf("parties=%d triple %d: a=%d b=%d c=%d", parties, tt, a, b, c)
			}
		}
	}
}

func TestGenTriplesValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := GenTriples(rng, 1, 5); err == nil {
		t.Error("parties=1 accepted")
	}
	if _, err := GenTriples(rng, 3, -1); err == nil {
		t.Error("negative count accepted")
	}
}

// Two-party AND truth table, the smallest secure computation.
func TestTwoPartyAND(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	if err := b.Output(b.AND(x, y)); err != nil {
		t.Fatal(err)
	}
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ x, y, want bool }{
		{false, false, false}, {false, true, false}, {true, false, false}, {true, true, true},
	} {
		res := runInMem(t, 2, circ, [][]bool{{tc.x}, {tc.y}}, 3)
		if res.Outputs[0] != tc.want {
			t.Fatalf("AND(%v,%v) = %v", tc.x, tc.y, res.Outputs[0])
		}
	}
}

// Secure evaluation must equal plaintext evaluation on a deep mixed circuit.
func TestSecureMatchesPlaintext(t *testing.T) {
	const width = 6
	b := circuit.NewBuilder()
	x := b.InputVec(0, width)
	y := b.InputVec(1, width)
	z := b.InputVec(2, width)
	sum, err := b.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}
	sum, err = b.Add(sum, z)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := b.GreaterEq(sum, circuit.ConstVec(17, width))
	if err != nil {
		t.Fatal(err)
	}
	eq, err := b.Equal(x, z)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Output(ge); err != nil {
		t.Fatal(err)
	}
	if err := b.Output(eq); err != nil {
		t.Fatal(err)
	}
	for _, w := range sum {
		if err := b.Output(w); err != nil {
			t.Fatal(err)
		}
	}
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		vx := rng.Uint64() % 64
		vy := rng.Uint64() % 64
		vz := rng.Uint64() % 64
		inputs := [][]bool{
			circuit.PackBits(vx, width),
			circuit.PackBits(vy, width),
			circuit.PackBits(vz, width),
		}
		var flat []bool
		for _, in := range inputs {
			flat = append(flat, in...)
		}
		want, err := circ.Evaluate(flat)
		if err != nil {
			t.Fatal(err)
		}
		res := runInMem(t, 3, circ, inputs, int64(trial))
		for i := range want {
			if res.Outputs[i] != want[i] {
				t.Fatalf("trial %d output %d: secure=%v plain=%v (x=%d y=%d z=%d)",
					trial, i, res.Outputs[i], want[i], vx, vy, vz)
			}
		}
		if res.Rounds != 2+len(circ.AndRounds()) {
			t.Fatalf("Rounds = %d, want %d", res.Rounds, 2+len(circ.AndRounds()))
		}
	}
}

// Property: random circuits over random inputs — secure == plaintext.
func TestSecureMatchesPlaintextQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parties := 2 + rng.Intn(3)
		b := circuit.NewBuilder()
		// Random DAG of gates over a pool of wires.
		pool := make([]circuit.Wire, 0, 40)
		for p := 0; p < parties; p++ {
			pool = append(pool, b.InputVec(p, 2+rng.Intn(3))...)
		}
		nIn := len(pool)
		for g := 0; g < 25; g++ {
			a := pool[rng.Intn(len(pool))]
			c := pool[rng.Intn(len(pool))]
			var w circuit.Wire
			switch rng.Intn(4) {
			case 0:
				w = b.XOR(a, c)
			case 1:
				w = b.AND(a, c)
			case 2:
				w = b.NOT(a)
			default:
				w = b.OR(a, c)
			}
			if !w.IsConst() {
				pool = append(pool, w)
			}
		}
		outs := 0
		for i := len(pool) - 1; i >= 0 && outs < 5; i-- {
			if err := b.Output(pool[i]); err == nil {
				outs++
			}
		}
		circ, err := b.Build()
		if err != nil {
			return false
		}
		inputs := make([][]bool, parties)
		var flat []bool
		for idx, in := range circ.Inputs() {
			v := rng.Intn(2) == 1
			inputs[in.Party] = append(inputs[in.Party], v)
			_ = idx
			flat = append(flat, v)
		}
		if len(flat) != nIn {
			return false
		}
		want, err := circ.Evaluate(flat)
		if err != nil {
			return false
		}
		net, err := transport.NewInMem(parties)
		if err != nil {
			return false
		}
		defer net.Close()
		res, err := Run(net, circ, inputs, seed)
		if err != nil {
			return false
		}
		for i := range want {
			if res.Outputs[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// End-to-end: CountBelow circuit evaluated securely by 3 coordinators.
func TestSecureCountBelow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := circuit.CountBelowParams{
		Parties:    3,
		Identities: 8,
		ShareBits:  7,
		Thresholds: []uint64{3, 10, 50, 1, 7, 20, 64, 2},
	}
	circ, err := circuit.CountBelow(p)
	if err != nil {
		t.Fatal(err)
	}
	mod := uint64(1) << uint(p.ShareBits)
	freqs := make([]uint64, p.Identities)
	shares := make([][]uint64, p.Parties)
	for k := range shares {
		shares[k] = make([]uint64, p.Identities)
	}
	want := uint64(0)
	for j := range freqs {
		freqs[j] = uint64(rng.Intn(100))
		if freqs[j] >= p.Thresholds[j] {
			want++
		}
		var sum uint64
		for k := 0; k < p.Parties-1; k++ {
			shares[k][j] = rng.Uint64() % mod
			sum = (sum + shares[k][j]) % mod
		}
		shares[p.Parties-1][j] = (freqs[j] + mod - sum) % mod
	}
	inputs := make([][]bool, p.Parties)
	for k := 0; k < p.Parties; k++ {
		for j := 0; j < p.Identities; j++ {
			inputs[k] = append(inputs[k], circuit.PackBits(shares[k][j], p.ShareBits)...)
		}
	}
	res := runInMem(t, 3, circ, inputs, 6)
	if got := circuit.UnpackBits(res.Outputs); got != want {
		t.Fatalf("secure CountBelow = %d, want %d", got, want)
	}
}

func TestRunValidation(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	if err := b.Output(b.AND(x, y)); err != nil {
		t.Fatal(err)
	}
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := transport.NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if _, err := Run(net, circ, [][]bool{{true}}, 1); err == nil {
		t.Error("wrong party count accepted")
	}
	if _, err := Run(net, circ, [][]bool{{true, false}, {true}}, 1); err == nil {
		t.Error("wrong per-party bit count accepted")
	}
	// Circuit owned by party 2 in a 2-party network.
	b2 := circuit.NewBuilder()
	x2 := b2.Input(2)
	if err := b2.Output(b2.NOT(x2)); err != nil {
		t.Fatal(err)
	}
	circ2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(net, circ2, [][]bool{nil, nil}, 1); err == nil {
		t.Error("out-of-range input owner accepted")
	}
}

// A wide network: 15 parties evaluating a shared comparison. Exercises the
// all-to-all AND openings at a scale beyond the coordinator counts used in
// the pipeline.
func TestFifteenParties(t *testing.T) {
	const parties = 15
	b := circuit.NewBuilder()
	bits := make([]circuit.Wire, parties)
	for p := 0; p < parties; p++ {
		bits[p] = b.Input(p)
	}
	cnt, err := b.PopCount(bits)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := b.GreaterEq(cnt, circuit.ConstVec(8, len(cnt)))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Output(ge); err != nil {
		t.Fatal(err)
	}
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		inputs := make([][]bool, parties)
		ones := 0
		for p := range inputs {
			v := rng.Intn(2) == 1
			inputs[p] = []bool{v}
			if v {
				ones++
			}
		}
		res := runInMem(t, parties, circ, inputs, int64(trial))
		if res.Outputs[0] != (ones >= 8) {
			t.Fatalf("trial %d: majority-ish vote wrong (ones=%d)", trial, ones)
		}
	}
}

// A party with no inputs must still participate correctly.
func TestPartyWithoutInputs(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Input(0)
	y := b.Input(0)
	if err := b.Output(b.AND(x, y)); err != nil {
		t.Fatal(err)
	}
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := runInMem(t, 3, circ, [][]bool{{true, true}, nil, nil}, 7)
	if !res.Outputs[0] {
		t.Fatal("AND(true,true) = false")
	}
}

// The protocol must run identically over TCP.
func TestSecureOverTCP(t *testing.T) {
	const width = 4
	b := circuit.NewBuilder()
	x := b.InputVec(0, width)
	y := b.InputVec(1, width)
	sum, err := b.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range sum {
		if err := b.Output(w); err != nil {
			t.Fatal(err)
		}
	}
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := transport.NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	res, err := Run(net, circ, [][]bool{circuit.PackBits(9, width), circuit.PackBits(5, width)}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := circuit.UnpackBits(res.Outputs); got != 14 {
		t.Fatalf("9+5 = %d over TCP", got)
	}
}

func TestPackUnpackBits(t *testing.T) {
	bits := make([]byte, 130)
	rng := rand.New(rand.NewSource(9))
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	words := packBits(bits)
	if len(words) != 3 {
		t.Fatalf("words = %d", len(words))
	}
	got := unpackBits(words, len(bits))
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	if unpackBits(words[:1], 130) != nil {
		t.Fatal("short words accepted")
	}
	if got := unpackBits(nil, 0); len(got) != 0 {
		t.Fatal("empty unpack")
	}
}

func BenchmarkSecureAdd32(b *testing.B) {
	const width = 32
	bld := circuit.NewBuilder()
	x := bld.InputVec(0, width)
	y := bld.InputVec(1, width)
	sum, err := bld.Add(x, y)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range sum {
		if err := bld.Output(w); err != nil {
			b.Fatal(err)
		}
	}
	circ, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	inputs := [][]bool{circuit.PackBits(123456, width), circuit.PackBits(654321, width)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := transport.NewInMem(2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(net, circ, inputs, int64(i)); err != nil {
			b.Fatal(err)
		}
		net.Close()
	}
}
