// Package gmw implements a semi-honest n-party GMW protocol over boolean
// circuits, the generic-MPC substrate that evaluates the CountBelow circuit
// among the c ε-PPI coordinators (standing in for FairplayMP).
//
// Wire values are XOR-shared among the parties. XOR and NOT gates are local;
// each AND gate consumes one Beaver multiplication triple and the AND gates
// of equal depth are opened in a single batched communication round, so the
// online round count is 2 + AND-depth (input sharing, AND rounds, output
// reconstruction).
//
// Triples are produced by an offline trusted dealer (GenTriples). A dealer
// is the standard MPC preprocessing abstraction; the online protocol is
// information-theoretically secure against any proper subset of colluding
// semi-honest parties given correct triples. The paper's FairplayMP plays
// the same role with garbled gates; the online communication structure —
// the thing the Figure 6 experiments measure — is preserved.
package gmw

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/transport"
)

var (
	// ErrInputShape reports per-party inputs inconsistent with the circuit.
	ErrInputShape = errors.New("gmw: inputs do not match circuit input wires")
	// ErrTripleShape reports a triple set inconsistent with the circuit.
	ErrTripleShape = errors.New("gmw: triples do not match circuit AND gates")
	// ErrProtocol reports a malformed message from a peer.
	ErrProtocol = errors.New("gmw: protocol violation")
)

// PartyTriples holds one party's XOR shares of the Beaver triples, indexed
// by AND-gate ordinal. Bytes hold 0/1.
type PartyTriples struct {
	A, B, C []byte
}

// GenTriples generates Beaver triples for `parties` parties and `count` AND
// gates from rng (the trusted dealer). For every ordinal t the shares
// satisfy (⊕ᵢ Aᵢ[t]) ∧ (⊕ᵢ Bᵢ[t]) = ⊕ᵢ Cᵢ[t].
func GenTriples(rng *rand.Rand, parties, count int) ([]PartyTriples, error) {
	if parties < 2 || count < 0 {
		return nil, fmt.Errorf("gmw: bad dealer request parties=%d count=%d", parties, count)
	}
	out := make([]PartyTriples, parties)
	for p := range out {
		out[p] = PartyTriples{
			A: make([]byte, count),
			B: make([]byte, count),
			C: make([]byte, count),
		}
	}
	for t := 0; t < count; t++ {
		a := byte(rng.Intn(2))
		b := byte(rng.Intn(2))
		c := a & b
		shareInto(rng, a, out, t, func(pt *PartyTriples) []byte { return pt.A })
		shareInto(rng, b, out, t, func(pt *PartyTriples) []byte { return pt.B })
		shareInto(rng, c, out, t, func(pt *PartyTriples) []byte { return pt.C })
	}
	return out, nil
}

func shareInto(rng *rand.Rand, v byte, out []PartyTriples, t int, sel func(*PartyTriples) []byte) {
	var acc byte
	for p := 0; p < len(out)-1; p++ {
		s := byte(rng.Intn(2))
		sel(&out[p])[t] = s
		acc ^= s
	}
	sel(&out[len(out)-1])[t] = v ^ acc
}

// Result carries the reconstructed outputs and execution accounting.
type Result struct {
	// Outputs are the circuit's output bits, identical at every party.
	Outputs []bool
	// Rounds is the number of sequential communication rounds used.
	Rounds int
	// Stats is the transport traffic consumed by the run.
	Stats transport.Stats
}

// Run evaluates circ securely over net with dealer-generated triples.
// inputs[p] lists party p's private bits in the order p's wires appear in
// circ.Inputs(). The dealer seed derives the preprocessing; per-party
// online randomness derives from it deterministically so runs are
// reproducible. Use RunWithTriples to supply OT-generated (or otherwise
// external) preprocessing.
func Run(net transport.Network, circ *circuit.Circuit, inputs [][]bool, seed int64) (*Result, error) {
	andCount := circ.Stats().AndGates
	dealerRng := rand.New(rand.NewSource(seed))
	triples, err := GenTriples(dealerRng, net.Size(), andCount)
	if err != nil {
		return nil, err
	}
	return runCommon(net, circ, inputs, triples, seed)
}

// runCommon is the shared online phase behind Run and RunWithTriples.
func runCommon(net transport.Network, circ *circuit.Circuit, inputs [][]bool, triples []PartyTriples, seed int64) (*Result, error) {
	n := net.Size()
	if len(inputs) != n {
		return nil, fmt.Errorf("%w: %d input sets for %d parties", ErrInputShape, len(inputs), n)
	}
	owned := make([][]int, n) // owned[p] = indices into circ.Inputs() owned by p
	for idx, in := range circ.Inputs() {
		if in.Party < 0 || in.Party >= n {
			return nil, fmt.Errorf("%w: input wire owned by party %d in %d-party net", ErrInputShape, in.Party, n)
		}
		owned[in.Party] = append(owned[in.Party], idx)
	}
	for p := 0; p < n; p++ {
		if len(inputs[p]) != len(owned[p]) {
			return nil, fmt.Errorf("%w: party %d supplies %d bits, owns %d wires",
				ErrInputShape, p, len(inputs[p]), len(owned[p]))
		}
	}
	andCount := circ.Stats().AndGates
	if len(triples) != n {
		return nil, fmt.Errorf("%w: %d triple sets for %d parties", ErrTripleShape, len(triples), n)
	}
	for p, pt := range triples {
		if len(pt.A) < andCount || len(pt.B) < andCount || len(pt.C) < andCount {
			return nil, fmt.Errorf("%w: party %d holds %d triples, circuit needs %d",
				ErrTripleShape, p, len(pt.A), andCount)
		}
	}

	// Phase timers report through the registry attached to the network, if
	// any (transport.Instrument); nil instruments no-op. Phase spans hang
	// under the span attached to the network (transport.AttachSpan), with
	// party 0 recording them as the representative party.
	tm := newTimers(transport.RegistryOf(net))
	tm.runs.Inc()
	runSpan := transport.SpanOf(net)
	runSpan.SetAttrs(
		trace.Int("parties", n),
		trace.Int("and_gates", andCount),
		trace.Int("and_layers", len(circ.AndRounds())),
		trace.Int("rounds", 2+len(circ.AndRounds())))
	before := net.Stats()
	results := make([][]bool, n)
	errs := make([]error, n)
	// First failure closes the network so peers blocked on a message that
	// will never arrive fail fast instead of deadlocking.
	var failOnce sync.Once
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var sp *trace.Span
			if p == 0 {
				sp = runSpan
			}
			rng := rand.New(rand.NewSource(seed ^ int64(p+1)*104729))
			out, err := runParty(net.Node(p), circ, owned, inputs[p], triples[p], rng, tm, sp)
			if err != nil {
				errs[p] = fmt.Errorf("party %d: %w", p, err)
				failOnce.Do(func() { net.Close() })
				return
			}
			results[p] = out
		}(p)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (errors.Is(firstErr, transport.ErrClosed) && !errors.Is(err, transport.ErrClosed)) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// All parties must reconstruct identical outputs.
	for p := 1; p < n; p++ {
		for i := range results[0] {
			if results[p][i] != results[0][i] {
				return nil, fmt.Errorf("%w: parties 0 and %d disagree on output %d", ErrProtocol, p, i)
			}
		}
	}
	after := net.Stats()
	tm.rounds.Add(uint64(2 + len(circ.AndRounds())))
	tm.andLayers.Add(uint64(countAndLayers(circ)))
	tm.triples.Add(uint64(andCount))
	return &Result{
		Outputs: results[0],
		Rounds:  2 + len(circ.AndRounds()),
		Stats: transport.Stats{
			Messages: after.Messages - before.Messages,
			Bytes:    after.Bytes - before.Bytes,
		},
	}, nil
}

// timers groups the per-phase instruments of one Run. All-nil (no registry
// on the network) no-ops.
type timers struct {
	runs      *metrics.Counter
	rounds    *metrics.Counter
	andLayers *metrics.Counter
	triples   *metrics.Counter
	inputs    *metrics.Histogram
	andRounds *metrics.Histogram
	outputs   *metrics.Histogram
}

func newTimers(reg *metrics.Registry) *timers {
	const name = "eppi_gmw_phase_seconds"
	const help = "Per-party wall time of each GMW protocol phase."
	return &timers{
		runs:      reg.Counter("eppi_gmw_runs_total", "GMW protocol executions."),
		rounds:    reg.Counter("eppi_gmw_rounds_total", "Sequential communication rounds across all GMW runs."),
		andLayers: reg.Counter("eppi_gmw_and_rounds_total", "Batched AND-opening rounds across all GMW runs (non-empty AND layers)."),
		triples:   reg.Counter("eppi_gmw_triples_used_total", "Beaver triple instances consumed across all GMW runs (wide runs count 64 per word-triple)."),
		inputs:    reg.Histogram(name, help, metrics.DefDurationBuckets, metrics.L("phase", "input_share")),
		andRounds: reg.Histogram(name, help, metrics.DefDurationBuckets, metrics.L("phase", "and_rounds")),
		outputs:   reg.Histogram(name, help, metrics.DefDurationBuckets, metrics.L("phase", "output")),
	}
}

// countAndLayers returns the number of non-empty AND layers (the batched
// opening rounds a run actually performs).
func countAndLayers(circ *circuit.Circuit) int {
	layers := 0
	for _, batch := range circ.AndRounds() {
		if len(batch) > 0 {
			layers++
		}
	}
	return layers
}

// runParty executes one party's role and returns the reconstructed
// outputs. sp, when non-nil (party 0), parents per-phase child spans.
func runParty(node transport.Node, circ *circuit.Circuit, owned [][]int, myInputs []bool, triples PartyTriples, rng *rand.Rand, tm *timers, sp *trace.Span) ([]bool, error) {
	n := node.Size()
	id := node.ID()
	coll := transport.NewCollector(node)
	shares := make([]byte, circ.NumWires())
	circInputs := circ.Inputs()
	gates := circ.Gates()

	phaseStart := time.Now()
	phaseSpan := sp.Child("gmw.input_share")
	// --- Round 1: input sharing -------------------------------------------
	// For each owned wire, sample one share per party; keep ours, send the
	// rest. Message to party q: packed bits of q's shares of our wires (in
	// owned-order).
	if len(myInputs) > 0 {
		perParty := make([][]byte, n)
		for q := range perParty {
			perParty[q] = make([]byte, len(myInputs))
		}
		for i, v := range myInputs {
			var acc byte
			for q := 0; q < n-1; q++ {
				s := byte(rng.Intn(2))
				perParty[q][i] = s
				acc ^= s
			}
			var bit byte
			if v {
				bit = 1
			}
			perParty[n-1][i] = bit ^ acc
		}
		for q := 0; q < n; q++ {
			if q == id {
				for i, wireIdx := range owned[id] {
					shares[circInputs[wireIdx].Wire] = perParty[q][i]
				}
				continue
			}
			msg := transport.Message{Kind: transport.KindGMWShare, Data: packBits(perParty[q])}
			if err := node.Send(q, msg); err != nil {
				return nil, fmt.Errorf("send input shares: %w", err)
			}
		}
	}
	for p := 0; p < n; p++ {
		if p == id || len(owned[p]) == 0 {
			continue
		}
		msg, err := coll.RecvKind(transport.KindGMWShare, 0)
		if err != nil {
			return nil, fmt.Errorf("recv input shares: %w", err)
		}
		bits := unpackBits(msg.Data, len(owned[msg.From]))
		if bits == nil {
			return nil, fmt.Errorf("%w: short input-share message from %d", ErrProtocol, msg.From)
		}
		for i, wireIdx := range owned[msg.From] {
			shares[circInputs[wireIdx].Wire] = bits[i]
		}
	}

	tm.inputs.ObserveSince(phaseStart)
	phaseSpan.End()
	phaseStart = time.Now()
	phaseSpan = sp.Child("gmw.and_rounds")

	// --- Rounds 2..: layered evaluation ------------------------------------
	evalLocal := func(gi int) {
		g := gates[gi]
		switch g.Op {
		case circuit.OpXOR:
			shares[g.Out] = shares[g.A] ^ shares[g.B]
		case circuit.OpNOT:
			if id == 0 {
				shares[g.Out] = shares[g.A] ^ 1
			} else {
				shares[g.Out] = shares[g.A]
			}
		}
	}
	localRounds := circ.LocalByRound()
	andRounds := circ.AndRounds()
	// Scratch buffers shared across AND layers: the d/e batch, its packed
	// words, the opened values and a peer-unpacking area are sized once for
	// the widest layer instead of reallocated per round. Sent word buffers
	// are safe to reuse after Send returns on every transport (the in-memory
	// network copies payloads, the TCP sender encodes synchronously).
	maxBatch := 0
	for _, batch := range andRounds {
		if len(batch) > maxBatch {
			maxBatch = len(batch)
		}
	}
	var deBuf, openedBuf, peerBuf []byte
	var packedBuf []uint64
	if maxBatch > 0 {
		deBuf = make([]byte, 2*maxBatch)
		openedBuf = make([]byte, 2*maxBatch)
		peerBuf = make([]byte, 2*maxBatch)
		packedBuf = make([]uint64, (2*maxBatch+63)/64)
	}
	for r := 0; r < len(andRounds); r++ {
		for _, gi := range localRounds[r] {
			evalLocal(gi)
		}
		batch := andRounds[r]
		if len(batch) == 0 {
			continue
		}
		// d = x ⊕ a, e = y ⊕ b: broadcast our shares of d,e for the batch.
		de := deBuf[:2*len(batch)]
		for bi, gi := range batch {
			g := gates[gi]
			t := circ.AndOrdinal(gi)
			de[2*bi] = shares[g.A] ^ triples.A[t]
			de[2*bi+1] = shares[g.B] ^ triples.B[t]
		}
		packed := packBitsInto(de, packedBuf)
		for q := 0; q < n; q++ {
			if q == id {
				continue
			}
			msg := transport.Message{Kind: transport.KindGMWAnd, Seq: uint32(r + 1), Data: packed}
			if err := node.Send(q, msg); err != nil {
				return nil, fmt.Errorf("send AND round %d: %w", r, err)
			}
		}
		opened := openedBuf[:len(de)]
		copy(opened, de)
		got, err := coll.GatherKind(transport.KindGMWAnd, uint32(r+1), n-1)
		if err != nil {
			return nil, fmt.Errorf("gather AND round %d: %w", r, err)
		}
		for _, msg := range got {
			bits := unpackBitsInto(msg.Data, peerBuf[:len(de)])
			if bits == nil {
				return nil, fmt.Errorf("%w: short AND message from %d", ErrProtocol, msg.From)
			}
			for i := range opened {
				opened[i] ^= bits[i]
			}
			transport.PutWords(msg.Data) // received payloads are exclusively ours
		}
		for bi, gi := range batch {
			g := gates[gi]
			t := circ.AndOrdinal(gi)
			d, e := opened[2*bi], opened[2*bi+1]
			z := d&triples.B[t] ^ e&triples.A[t] ^ triples.C[t]
			if id == 0 {
				z ^= d & e
			}
			shares[g.Out] = z
		}
	}
	// Trailing local gates (depth == AND-depth).
	for _, gi := range localRounds[len(andRounds)] {
		evalLocal(gi)
	}
	tm.andRounds.ObserveSince(phaseStart)
	phaseSpan.SetInt("layers", len(andRounds))
	phaseSpan.End()
	phaseStart = time.Now()
	defer tm.outputs.ObserveSince(phaseStart)
	phaseSpan = sp.Child("gmw.output")
	defer phaseSpan.End()

	// --- Final round: output reconstruction --------------------------------
	outWires := circ.Outputs()
	outShares := make([]byte, len(outWires))
	for i, w := range outWires {
		outShares[i] = shares[w]
	}
	packed := packBits(outShares)
	for q := 0; q < n; q++ {
		if q == id {
			continue
		}
		msg := transport.Message{Kind: transport.KindGMWOutput, Data: packed}
		if err := node.Send(q, msg); err != nil {
			return nil, fmt.Errorf("send outputs: %w", err)
		}
	}
	final := make([]byte, len(outShares))
	copy(final, outShares)
	got, err := coll.GatherKind(transport.KindGMWOutput, 0, n-1)
	if err != nil {
		return nil, fmt.Errorf("gather outputs: %w", err)
	}
	for _, msg := range got {
		bits := unpackBits(msg.Data, len(outShares))
		if bits == nil {
			return nil, fmt.Errorf("%w: short output message from %d", ErrProtocol, msg.From)
		}
		for i := range final {
			final[i] ^= bits[i]
		}
	}
	out := make([]bool, len(final))
	for i, b := range final {
		out[i] = b == 1
	}
	return out, nil
}

// packBits packs 0/1 bytes into uint64 words, 64 bits per word.
func packBits(bits []byte) []uint64 {
	return packBitsInto(bits, make([]uint64, (len(bits)+63)/64))
}

// packBitsInto packs 0/1 bytes into the scratch word slice (grown if too
// small) and returns the exact-length prefix used.
func packBitsInto(bits []byte, scratch []uint64) []uint64 {
	n := (len(bits) + 63) / 64
	if cap(scratch) < n {
		scratch = make([]uint64, n)
	}
	words := scratch[:n]
	for i := range words {
		words[i] = 0
	}
	for i, b := range bits {
		if b&1 == 1 {
			words[i/64] |= 1 << uint(i%64)
		}
	}
	return words
}

// unpackBits expands words back into n 0/1 bytes; nil if words is too short.
func unpackBits(words []uint64, n int) []byte {
	if len(words) < (n+63)/64 {
		return nil
	}
	return unpackBitsInto(words, make([]byte, n))
}

// unpackBitsInto expands words into the supplied byte slice (whose length
// selects the bit count); nil if words is too short.
func unpackBitsInto(words []uint64, bits []byte) []byte {
	if len(words) < (len(bits)+63)/64 {
		return nil
	}
	for i := range bits {
		bits[i] = byte(words[i/64] >> uint(i%64) & 1)
	}
	return bits
}
