package gmw

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/transport"
)

// The sharded dealer must produce bit-identical triples at every worker
// count, and the triples must satisfy the Beaver invariant.
func TestGenTriplesShardedDeterministicAcrossWorkers(t *testing.T) {
	const parties, count = 3, 3*tripleShard + 117 // spans several shards plus a ragged tail
	base, err := GenTriplesSharded(99, parties, count, 1)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < count; tt++ {
		var a, b, c byte
		for p := 0; p < parties; p++ {
			a ^= base[p].A[tt]
			b ^= base[p].B[tt]
			c ^= base[p].C[tt]
		}
		if a&b != c {
			t.Fatalf("triple %d: a=%d b=%d c=%d", tt, a, b, c)
		}
	}
	for _, workers := range []int{2, 8} {
		got, err := GenTriplesSharded(99, parties, count, workers)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < parties; p++ {
			for tt := 0; tt < count; tt++ {
				if got[p].A[tt] != base[p].A[tt] || got[p].B[tt] != base[p].B[tt] || got[p].C[tt] != base[p].C[tt] {
					t.Fatalf("workers=%d: party %d triple %d differs from workers=1", workers, p, tt)
				}
			}
		}
	}
}

func TestGenTriplesShardedValidation(t *testing.T) {
	if _, err := GenTriplesSharded(1, 1, 5, 2); err == nil {
		t.Error("parties=1 accepted")
	}
	if _, err := GenTriplesSharded(1, 3, -1, 2); err == nil {
		t.Error("negative count accepted")
	}
}

// Several independent GMW evaluations must be able to share one physical
// network concurrently via SessionMux without interleaving messages: this
// is the property that lets parallel ε-PPI construction run identity
// batches at the same time. Each batch computes a different sum threshold
// so a cross-session message would corrupt outputs, not just stall.
func TestConcurrentGMWBatchesOverSessions(t *testing.T) {
	const parties = 3
	const batches = 4
	inner, err := transport.NewInMem(parties)
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewSessionMux(inner)
	defer mux.Close()

	build := func(threshold uint64) *circuit.Circuit {
		b := circuit.NewBuilder()
		const width = 5
		x := b.InputVec(0, width)
		y := b.InputVec(1, width)
		z := b.InputVec(2, width)
		sum, err := b.Add(x, y)
		if err != nil {
			t.Fatal(err)
		}
		sum, err = b.Add(sum, z)
		if err != nil {
			t.Fatal(err)
		}
		ge, err := b.GreaterEq(sum, circuit.ConstVec(threshold, len(sum)))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Output(ge); err != nil {
			t.Fatal(err)
		}
		circ, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return circ
	}

	var wg sync.WaitGroup
	errs := make([]error, batches)
	outs := make([]bool, batches)
	for i := 0; i < batches; i++ {
		circ := build(uint64(10 + i*3)) // thresholds 10,13,16,19 over sum 5+6+7=18
		wg.Add(1)
		go func(i int, circ *circuit.Circuit) {
			defer wg.Done()
			sess, err := mux.Session(uint32(i + 1))
			if err != nil {
				errs[i] = err
				return
			}
			defer sess.Close()
			inputs := [][]bool{circuit.PackBits(5, 5), circuit.PackBits(6, 5), circuit.PackBits(7, 5)}
			res, err := Run(sess, circ, inputs, int64(100+i))
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = res.Outputs[0]
			if res.Stats.Messages == 0 {
				errs[i] = fmt.Errorf("batch %d reported zero per-session traffic", i)
			}
		}(i, circ)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	for i, got := range outs {
		want := 18 >= 10+i*3
		if got != want {
			t.Fatalf("batch %d: 18>=%d computed as %v", i, 10+i*3, got)
		}
	}
}
