package ot

import (
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/transport"
)

// runOT executes one batched OT between two in-memory parties.
func runOT(t *testing.T, pairs [][2][]byte, choices []byte, seed int64) ([][]byte, error) {
	t.Helper()
	g := DefaultGroup()
	net, err := transport.NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	var (
		wg      sync.WaitGroup
		sendErr error
		recvOut [][]byte
		recvErr error
	)
	var failOnce sync.Once
	wg.Add(2)
	go func() {
		defer wg.Done()
		coll := transport.NewCollector(net.Node(0))
		sendErr = SendBatch(g, coll, 1, pairs, rand.New(rand.NewSource(seed)), 7)
		if sendErr != nil {
			failOnce.Do(func() { net.Close() })
		}
	}()
	go func() {
		defer wg.Done()
		coll := transport.NewCollector(net.Node(1))
		recvOut, recvErr = ReceiveBatch(g, coll, 0, choices, rand.New(rand.NewSource(seed+1)), 7)
		if recvErr != nil {
			failOnce.Do(func() { net.Close() })
		}
	}()
	wg.Wait()
	if sendErr != nil {
		return nil, sendErr
	}
	return recvOut, recvErr
}

func TestOTTransfersChosenMessage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 16
	pairs := make([][2][]byte, n)
	choices := make([]byte, n)
	for i := range pairs {
		pairs[i] = [2][]byte{{byte(rng.Intn(256))}, {byte(rng.Intn(256))}}
		choices[i] = byte(rng.Intn(2))
	}
	got, err := runOT(t, pairs, choices, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		want := pairs[i][choices[i]][0]
		if got[i][0] != want {
			t.Fatalf("transfer %d (σ=%d): got %d, want %d", i, choices[i], got[i][0], want)
		}
	}
}

func TestOTAllZeroAndAllOneChoices(t *testing.T) {
	pairs := [][2][]byte{{{0xAA}, {0xBB}}, {{0x01}, {0x02}}}
	got, err := runOT(t, pairs, []byte{0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 0xAA || got[1][0] != 0x01 {
		t.Fatalf("σ=0 run: %v", got)
	}
	got, err = runOT(t, pairs, []byte{1, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 0xBB || got[1][0] != 0x02 {
		t.Fatalf("σ=1 run: %v", got)
	}
}

func TestOTValidation(t *testing.T) {
	g := DefaultGroup()
	net, err := transport.NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	coll := transport.NewCollector(net.Node(0))
	rng := rand.New(rand.NewSource(5))
	if err := SendBatch(g, coll, 1, [][2][]byte{{{1, 2}, {3}}}, rng, 0); err == nil {
		t.Error("oversized message accepted")
	}
	if _, err := ReceiveBatch(g, coll, 1, nil, rng, 0); err == nil {
		t.Error("empty choices accepted")
	}
}

func TestOTBadChoiceBit(t *testing.T) {
	pairs := [][2][]byte{{{1}, {2}}}
	if _, err := runOT(t, pairs, []byte{2}, 6); err == nil {
		t.Fatal("non-bit choice accepted")
	}
}

// A failing entropy source must surface as an error, not weak keys.
type failingReader struct{}

func (failingReader) Read([]byte) (int, error) {
	return 0, errEntropy
}

var errEntropy = fmt.Errorf("entropy exhausted")

func TestEntropyFailurePropagates(t *testing.T) {
	g := DefaultGroup()
	net, err := transport.NewInMem(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	coll := transport.NewCollector(net.Node(0))
	if err := SendBatch(g, coll, 1, [][2][]byte{{{1}, {2}}}, failingReader{}, 0); err == nil {
		t.Fatal("sender accepted dead entropy source")
	}
	// Receiver: feed it a C first so it reaches its own entropy draw.
	if err := net.Node(1).Send(0, transport.Message{Kind: transport.KindOT, Seq: 3, Data: packBigsForTest(g)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReceiveBatch(g, coll, 1, []byte{0}, failingReader{}, 3); err == nil {
		t.Fatal("receiver accepted dead entropy source")
	}
}

func packBigsForTest(g Group) []uint64 {
	return packBigs([]*big.Int{big.NewInt(4)})
}

func TestGroupSanity(t *testing.T) {
	g := DefaultGroup()
	if !g.P.ProbablyPrime(20) {
		t.Fatal("group prime is not prime")
	}
	// g must generate a large subgroup: g^((p-1)/2) should be 1 for the
	// quadratic-residue generator 2 in a safe-prime group... RFC 3526 p is
	// a safe prime, and 2 generates the order-q subgroup (q=(p-1)/2).
	q := new(big.Int).Rsh(new(big.Int).Sub(g.P, big.NewInt(1)), 1)
	if new(big.Int).Exp(g.G, q, g.P).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("generator does not lie in the prime-order subgroup")
	}
}

func TestPackUnpackBigs(t *testing.T) {
	vals := []*big.Int{
		big.NewInt(0),
		big.NewInt(255),
		new(big.Int).Lsh(big.NewInt(1), 200),
		DefaultGroup().P,
	}
	words := packBigs(vals)
	got, err := unpackBigs(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("count %d", len(got))
	}
	for i := range vals {
		if got[i].Cmp(vals[i]) != 0 {
			t.Fatalf("value %d: %v != %v", i, got[i], vals[i])
		}
	}
	if _, err := unpackBigs(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := unpackBigs([]uint64{5, 8}); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := unpackBigs([]uint64{1, 1 << 30}); err == nil {
		t.Error("absurd length accepted")
	}
}

// The PK0 the receiver sends must be distributed identically for σ=0 and
// σ=1 (sender privacy): compare a coarse statistic over many runs.
func TestReceiverChoiceHidden(t *testing.T) {
	g := DefaultGroup()
	// Instead of full protocol runs, exercise the key-generation step the
	// sender observes: PK0 = g^k (σ=0) vs C·g^-k (σ=1). Both are uniform
	// in the subgroup; check that parity of the low bit is unbiased in
	// both cases.
	rng := rand.New(rand.NewSource(7))
	c, err := randomElement(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	lowBitOnes := func(sigma int) int {
		ones := 0
		for i := 0; i < 200; i++ {
			k, err := randomScalar(g, rng)
			if err != nil {
				t.Fatal(err)
			}
			pkSigma := new(big.Int).Exp(g.G, k, g.P)
			pk0 := pkSigma
			if sigma == 1 {
				pk0 = new(big.Int).Mul(c, new(big.Int).ModInverse(pkSigma, g.P))
				pk0.Mod(pk0, g.P)
			}
			ones += int(pk0.Bit(0))
		}
		return ones
	}
	z, o := lowBitOnes(0), lowBitOnes(1)
	if z < 60 || z > 140 || o < 60 || o > 140 {
		t.Fatalf("PK0 low-bit counts %d/%d of 200 look biased", z, o)
	}
}
