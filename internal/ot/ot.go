// Package ot implements 1-out-of-2 oblivious transfer (Bellare–Micali
// style, semi-honest) over the 2048-bit MODP group of RFC 3526, using only
// the standard library (math/big modular arithmetic + SHA-256 key
// derivation).
//
// OT is the cryptographic root of GMW preprocessing: it lets two parties
// compute XOR shares of a·b where one holds a and the other b, without
// revealing either — which upgrades the gmw package's trusted triple
// dealer to a real pairwise protocol (gmw.GenTriplesOT).
//
// Protocol, per batch of n transfers between a sender holding message
// pairs (m0ᵗ, m1ᵗ) and a receiver holding choice bits σᵗ:
//
//	S → R: random group element C (whose discrete log nobody knows under
//	       semi-honest behaviour; the sender never uses it as a key)
//	R → S: PK0ᵗ where PKσ = g^kᵗ and PK(1−σ) = C·PKσ⁻¹
//	S → R: for each t and i ∈ {0,1}: (g^{rᵗᵢ}, mᵗᵢ ⊕ H(PKᵗᵢ^{rᵗᵢ}))
//	R:     decrypts its chosen ciphertext with H((g^{rᵗσ})^{kᵗ})
//
// The receiver learns exactly one message per pair (it knows the discrete
// log of only one public key); the sender learns nothing about σ (PK0 is
// uniformly distributed either way).
package ot

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/transport"
)

// Group is a multiplicative group Z_p* with generator g.
type Group struct {
	P *big.Int
	G *big.Int
}

// rfc3526Group14P is the 2048-bit MODP prime of RFC 3526 §3.
const rfc3526Group14P = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
	"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9" +
	"DE2BCBF6955817183995497CEA956AE515D2261898FA0510" +
	"15728E5A8AACAA68FFFFFFFFFFFFFFFF"

// DefaultGroup returns the RFC 3526 group 14 with generator 2.
func DefaultGroup() Group {
	p, ok := new(big.Int).SetString(rfc3526Group14P, 16)
	if !ok {
		panic("ot: bad builtin prime literal")
	}
	return Group{P: p, G: big.NewInt(2)}
}

var (
	// ErrBadBatch reports inconsistent batch parameters.
	ErrBadBatch = errors.New("ot: malformed batch")
	// ErrProtocol reports a malformed message from the peer.
	ErrProtocol = errors.New("ot: protocol violation")
)

// MessageSize is the fixed per-message payload size in bytes. Triple
// generation needs single bits; a fixed small size keeps framing trivial.
const MessageSize = 1

// SendBatch plays the sender: transfers pairs[t] = {m0, m1} (MessageSize
// bytes each) to peer. entropy supplies the protocol randomness
// (crypto/rand.Reader in production; a seeded PRNG in deterministic
// simulations). seq tags the batch so concurrent OT sessions between the
// same parties don't interleave.
func SendBatch(g Group, coll *transport.Collector, peer int, pairs [][2][]byte, entropy io.Reader, seq uint32) error {
	for i, p := range pairs {
		if len(p[0]) != MessageSize || len(p[1]) != MessageSize {
			return fmt.Errorf("%w: pair %d has sizes %d/%d", ErrBadBatch, i, len(p[0]), len(p[1]))
		}
	}
	// Step 1: send C.
	c, err := randomElement(g, entropy)
	if err != nil {
		return err
	}
	if err := coll.Send(peer, transport.Message{
		Kind: transport.KindOT, Seq: seq, Data: packBigs([]*big.Int{c}),
	}); err != nil {
		return fmt.Errorf("ot: send C: %w", err)
	}
	// Step 2: receive all PK0s.
	msg, err := coll.RecvKind(transport.KindOT, seq)
	if err != nil {
		return fmt.Errorf("ot: recv PK0s: %w", err)
	}
	pk0s, err := unpackBigs(msg.Data)
	if err != nil || len(pk0s) != len(pairs) {
		return fmt.Errorf("%w: bad PK0 batch (%d keys for %d pairs)", ErrProtocol, len(pk0s), len(pairs))
	}
	// Step 3: encrypt both messages per transfer.
	cInv := new(big.Int).ModInverse(c, g.P)
	if cInv == nil {
		return fmt.Errorf("%w: non-invertible C", ErrProtocol)
	}
	out := make([]*big.Int, 0, 4*len(pairs))
	for t, pk0 := range pk0s {
		if pk0.Sign() <= 0 || pk0.Cmp(g.P) >= 0 {
			return fmt.Errorf("%w: PK0[%d] out of range", ErrProtocol, t)
		}
		pk1 := new(big.Int).Mul(c, new(big.Int).ModInverse(pk0, g.P))
		pk1.Mod(pk1, g.P)
		for i, pk := range []*big.Int{pk0, pk1} {
			r, err := randomScalar(g, entropy)
			if err != nil {
				return err
			}
			gr := new(big.Int).Exp(g.G, r, g.P)
			key := new(big.Int).Exp(pk, r, g.P)
			ct := xorMask(pairs[t][i], key)
			out = append(out, gr, new(big.Int).SetBytes(ct))
		}
	}
	if err := coll.Send(peer, transport.Message{
		Kind: transport.KindOT, Seq: seq, Data: packBigs(out),
	}); err != nil {
		return fmt.Errorf("ot: send ciphertexts: %w", err)
	}
	return nil
}

// ReceiveBatch plays the receiver: choices[t] selects which message of
// pair t to learn. Returns the chosen messages (MessageSize bytes each).
func ReceiveBatch(g Group, coll *transport.Collector, peer int, choices []byte, entropy io.Reader, seq uint32) ([][]byte, error) {
	if len(choices) == 0 {
		return nil, fmt.Errorf("%w: empty choice vector", ErrBadBatch)
	}
	// Step 1: receive C.
	msg, err := coll.RecvKind(transport.KindOT, seq)
	if err != nil {
		return nil, fmt.Errorf("ot: recv C: %w", err)
	}
	cs, err := unpackBigs(msg.Data)
	if err != nil || len(cs) != 1 {
		return nil, fmt.Errorf("%w: bad C message", ErrProtocol)
	}
	c := cs[0]
	if c.Sign() <= 0 || c.Cmp(g.P) >= 0 {
		return nil, fmt.Errorf("%w: C out of range", ErrProtocol)
	}
	// Step 2: send PK0 per transfer.
	ks := make([]*big.Int, len(choices))
	pk0s := make([]*big.Int, len(choices))
	for t, sigma := range choices {
		if sigma > 1 {
			return nil, fmt.Errorf("%w: choice %d is not a bit", ErrBadBatch, t)
		}
		k, err := randomScalar(g, entropy)
		if err != nil {
			return nil, err
		}
		ks[t] = k
		pkSigma := new(big.Int).Exp(g.G, k, g.P)
		if sigma == 0 {
			pk0s[t] = pkSigma
		} else {
			inv := new(big.Int).ModInverse(pkSigma, g.P)
			pk0 := new(big.Int).Mul(c, inv)
			pk0.Mod(pk0, g.P)
			pk0s[t] = pk0
		}
	}
	if err := coll.Send(peer, transport.Message{
		Kind: transport.KindOT, Seq: seq, Data: packBigs(pk0s),
	}); err != nil {
		return nil, fmt.Errorf("ot: send PK0s: %w", err)
	}
	// Step 3: receive ciphertext pairs, decrypt the chosen ones.
	msg, err = coll.RecvKind(transport.KindOT, seq)
	if err != nil {
		return nil, fmt.Errorf("ot: recv ciphertexts: %w", err)
	}
	vals, err := unpackBigs(msg.Data)
	if err != nil || len(vals) != 4*len(choices) {
		return nil, fmt.Errorf("%w: bad ciphertext batch", ErrProtocol)
	}
	out := make([][]byte, len(choices))
	for t, sigma := range choices {
		gr := vals[4*t+2*int(sigma)]
		ct := vals[4*t+2*int(sigma)+1]
		key := new(big.Int).Exp(gr, ks[t], g.P)
		ctBytes := ct.Bytes()
		padded := make([]byte, MessageSize)
		copy(padded[MessageSize-len(ctBytes):], ctBytes)
		out[t] = xorMask(padded, key)
	}
	return out, nil
}

// xorMask XORs msg with the SHA-256 digest of key's bytes (truncated).
func xorMask(msg []byte, key *big.Int) []byte {
	digest := sha256.Sum256(key.Bytes())
	out := make([]byte, len(msg))
	for i := range msg {
		out[i] = msg[i] ^ digest[i]
	}
	return out
}

// randomScalar draws a uniform exponent in [1, P-2].
func randomScalar(g Group, entropy io.Reader) (*big.Int, error) {
	max := new(big.Int).Sub(g.P, big.NewInt(2))
	for {
		buf := make([]byte, (g.P.BitLen()+7)/8)
		if _, err := io.ReadFull(entropy, buf); err != nil {
			return nil, fmt.Errorf("ot: entropy: %w", err)
		}
		k := new(big.Int).SetBytes(buf)
		k.Mod(k, max)
		k.Add(k, big.NewInt(1))
		if k.Sign() > 0 {
			return k, nil
		}
	}
}

// randomElement draws a uniform nonidentity group element as g^x.
func randomElement(g Group, entropy io.Reader) (*big.Int, error) {
	x, err := randomScalar(g, entropy)
	if err != nil {
		return nil, err
	}
	return new(big.Int).Exp(g.G, x, g.P), nil
}

// packBigs frames big integers into a word vector: for each value a length
// word followed by its big-endian bytes packed 8 per word.
func packBigs(vals []*big.Int) []uint64 {
	out := []uint64{uint64(len(vals))}
	for _, v := range vals {
		b := v.Bytes()
		out = append(out, uint64(len(b)))
		for i := 0; i < len(b); i += 8 {
			var w uint64
			for k := 0; k < 8 && i+k < len(b); k++ {
				w |= uint64(b[i+k]) << uint(8*k)
			}
			out = append(out, w)
		}
	}
	return out
}

// unpackBigs reverses packBigs.
func unpackBigs(words []uint64) ([]*big.Int, error) {
	if len(words) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrProtocol)
	}
	n := int(words[0])
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("%w: count %d", ErrProtocol, n)
	}
	pos := 1
	out := make([]*big.Int, 0, n)
	for i := 0; i < n; i++ {
		if pos >= len(words) {
			return nil, fmt.Errorf("%w: truncated", ErrProtocol)
		}
		blen := int(words[pos])
		pos++
		if blen < 0 || blen > 1<<16 {
			return nil, fmt.Errorf("%w: length %d", ErrProtocol, blen)
		}
		nwords := (blen + 7) / 8
		if pos+nwords > len(words) {
			return nil, fmt.Errorf("%w: truncated value", ErrProtocol)
		}
		b := make([]byte, blen)
		for k := 0; k < blen; k++ {
			b[k] = byte(words[pos+k/8] >> uint(8*(k%8)))
		}
		pos += nwords
		out = append(out, new(big.Int).SetBytes(b))
	}
	return out, nil
}
