// Package workload generates the synthetic information-network datasets the
// experiments run on, standing in for the TREC-WT10g–derived distributed
// document collection of the paper ([23], [24]).
//
// The paper's dataset maps documents to 2,500–25,000 "collections"
// (providers) with source URLs as owner identities; what the experiments
// consume is only the membership matrix and the identity-frequency profile.
// The generator reproduces that profile: identity frequencies follow a Zipf
// law (a handful of very common identities, a long tail of rare ones), and
// per-owner privacy degrees ε are drawn uniformly from [0,1] as in
// Section V-A.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/bitmat"
	"repro/internal/mathx"
)

// Dataset is a generated information network.
type Dataset struct {
	// Matrix is the private membership matrix M (providers × owners).
	Matrix *bitmat.Matrix
	// Names labels the owner identities (column order).
	Names []string
	// Eps holds per-owner privacy degrees ε_j.
	Eps []float64
}

// Providers returns m.
func (d *Dataset) Providers() int { return d.Matrix.Rows() }

// Owners returns n.
func (d *Dataset) Owners() int { return d.Matrix.Cols() }

// Frequency returns identity j's absolute frequency (provider count).
func (d *Dataset) Frequency(j int) int { return d.Matrix.ColCount(j) }

// ZipfConfig parameterises the Zipf generator.
type ZipfConfig struct {
	// Providers is m.
	Providers int
	// Owners is n.
	Owners int
	// Exponent is the Zipf skew s (1.0 resembles web-collection data).
	Exponent float64
	// MaxFrequency caps the most common identity's provider count
	// (defaults to Providers).
	MaxFrequency int
	// MinFrequency floors every identity's provider count (default 1).
	MinFrequency int
	// EpsLow and EpsHigh bound the uniform ε distribution; the zero value
	// (0, 0) is replaced by the paper's default [0, 1].
	EpsLow, EpsHigh float64
	// Seed drives generation.
	Seed int64
}

// ErrBadConfig reports invalid generator parameters.
var ErrBadConfig = errors.New("workload: invalid configuration")

// GenerateZipf builds a dataset whose identity frequencies follow a Zipf
// law: identity of rank r has frequency ∝ r^(−Exponent), scaled so rank 0
// hits MaxFrequency. Providers are chosen uniformly per identity.
func GenerateZipf(cfg ZipfConfig) (*Dataset, error) {
	if cfg.Providers < 1 || cfg.Owners < 1 {
		return nil, fmt.Errorf("%w: %d providers, %d owners", ErrBadConfig, cfg.Providers, cfg.Owners)
	}
	if cfg.Exponent <= 0 {
		return nil, fmt.Errorf("%w: exponent %v", ErrBadConfig, cfg.Exponent)
	}
	maxFreq := cfg.MaxFrequency
	if maxFreq == 0 {
		maxFreq = cfg.Providers
	}
	if maxFreq < 1 || maxFreq > cfg.Providers {
		return nil, fmt.Errorf("%w: max frequency %d", ErrBadConfig, maxFreq)
	}
	minFreq := cfg.MinFrequency
	if minFreq == 0 {
		minFreq = 1
	}
	if minFreq < 1 || minFreq > maxFreq {
		return nil, fmt.Errorf("%w: min frequency %d", ErrBadConfig, minFreq)
	}
	lo, hi := cfg.EpsLow, cfg.EpsHigh
	if lo == 0 && hi == 0 {
		hi = 1
	}
	if lo < 0 || hi > 1 || lo > hi {
		return nil, fmt.Errorf("%w: ε range [%v, %v]", ErrBadConfig, lo, hi)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	weights := mathx.Zipf(cfg.Owners, cfg.Exponent)
	mat, err := bitmat.New(cfg.Providers, cfg.Owners)
	if err != nil {
		return nil, err
	}
	names := make([]string, cfg.Owners)
	eps := make([]float64, cfg.Owners)
	scale := float64(maxFreq) / weights[0]
	for j := 0; j < cfg.Owners; j++ {
		names[j] = ownerName(j)
		eps[j] = lo + (hi-lo)*rng.Float64()
		freq := int(weights[j] * scale)
		if freq < minFreq {
			freq = minFreq
		}
		if freq > cfg.Providers {
			freq = cfg.Providers
		}
		fillColumn(rng, mat, j, freq)
	}
	return &Dataset{Matrix: mat, Names: names, Eps: eps}, nil
}

// FixedConfig parameterises a controlled-frequency dataset, used by the
// policy-comparison experiments that sweep exact identity frequencies.
type FixedConfig struct {
	// Providers is m.
	Providers int
	// Frequencies gives each owner's exact provider count.
	Frequencies []int
	// Eps gives each owner's ε (len must match Frequencies).
	Eps []float64
	// Seed drives the provider placement.
	Seed int64
}

// GenerateFixed builds a dataset with exact per-identity frequencies.
func GenerateFixed(cfg FixedConfig) (*Dataset, error) {
	if cfg.Providers < 1 || len(cfg.Frequencies) == 0 {
		return nil, fmt.Errorf("%w: %d providers, %d owners", ErrBadConfig, cfg.Providers, len(cfg.Frequencies))
	}
	if len(cfg.Eps) != len(cfg.Frequencies) {
		return nil, fmt.Errorf("%w: %d ε for %d owners", ErrBadConfig, len(cfg.Eps), len(cfg.Frequencies))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	mat, err := bitmat.New(cfg.Providers, len(cfg.Frequencies))
	if err != nil {
		return nil, err
	}
	names := make([]string, len(cfg.Frequencies))
	for j, f := range cfg.Frequencies {
		if f < 0 || f > cfg.Providers {
			return nil, fmt.Errorf("%w: frequency %d out of [0, %d]", ErrBadConfig, f, cfg.Providers)
		}
		names[j] = ownerName(j)
		fillColumn(rng, mat, j, f)
	}
	eps := make([]float64, len(cfg.Eps))
	copy(eps, cfg.Eps)
	return &Dataset{Matrix: mat, Names: names, Eps: eps}, nil
}

// fillColumn sets exactly freq random rows of column j (reservoir-free:
// partial Fisher-Yates over row indices).
func fillColumn(rng *rand.Rand, mat *bitmat.Matrix, j, freq int) {
	m := mat.Rows()
	if freq >= m {
		for i := 0; i < m; i++ {
			mat.Set(i, j, true)
		}
		return
	}
	// Floyd's sampling: distinct rows without allocating a full permutation.
	chosen := make(map[int]bool, freq)
	for k := m - freq; k < m; k++ {
		r := rng.Intn(k + 1)
		if chosen[r] {
			r = k
		}
		chosen[r] = true
	}
	for i := range chosen {
		mat.Set(i, j, true)
	}
}

// ownerName returns a synthetic URL-like owner identity, mirroring the
// paper's use of source web URLs as identities.
func ownerName(j int) string {
	return "owner://site-" + strconv.Itoa(j) + ".example.org"
}
