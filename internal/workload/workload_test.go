package workload

import (
	"strings"
	"testing"
)

func TestGenerateZipfShape(t *testing.T) {
	d, err := GenerateZipf(ZipfConfig{
		Providers: 500,
		Owners:    100,
		Exponent:  1.0,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Providers() != 500 || d.Owners() != 100 {
		t.Fatalf("dims = %d x %d", d.Providers(), d.Owners())
	}
	// Rank 0 is the most frequent and hits the default cap (= providers).
	if f := d.Frequency(0); f != 500 {
		t.Fatalf("rank-0 frequency = %d, want 500", f)
	}
	// Frequencies are non-increasing in rank (Zipf), with min 1.
	prev := d.Frequency(0)
	for j := 1; j < 100; j++ {
		f := d.Frequency(j)
		if f < 1 {
			t.Fatalf("frequency[%d] = %d < 1", j, f)
		}
		if f > prev {
			t.Fatalf("frequency not non-increasing at %d: %d > %d", j, f, prev)
		}
		prev = f
	}
	// Long tail: the median identity is far rarer than the head.
	if d.Frequency(50) > 20 {
		t.Fatalf("tail too heavy: freq[50] = %d", d.Frequency(50))
	}
	// ε defaults to [0,1].
	for j, e := range d.Eps {
		if e < 0 || e > 1 {
			t.Fatalf("ε[%d] = %v", j, e)
		}
	}
	// Names look like source URLs.
	if !strings.HasPrefix(d.Names[0], "owner://") {
		t.Fatalf("name = %q", d.Names[0])
	}
}

func TestGenerateZipfValidation(t *testing.T) {
	bad := []ZipfConfig{
		{Providers: 0, Owners: 10, Exponent: 1},
		{Providers: 10, Owners: 0, Exponent: 1},
		{Providers: 10, Owners: 10, Exponent: 0},
		{Providers: 10, Owners: 10, Exponent: 1, MaxFrequency: 11},
		{Providers: 10, Owners: 10, Exponent: 1, MinFrequency: 11},
		{Providers: 10, Owners: 10, Exponent: 1, EpsLow: 0.5, EpsHigh: 0.2},
		{Providers: 10, Owners: 10, Exponent: 1, EpsLow: -1, EpsHigh: 0.5},
	}
	for i, cfg := range bad {
		if _, err := GenerateZipf(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGenerateZipfEpsRange(t *testing.T) {
	d, err := GenerateZipf(ZipfConfig{
		Providers: 50, Owners: 200, Exponent: 1, EpsLow: 0.4, EpsHigh: 0.6, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for j, e := range d.Eps {
		if e < 0.4 || e > 0.6 {
			t.Fatalf("ε[%d] = %v outside [0.4, 0.6]", j, e)
		}
	}
}

func TestGenerateZipfMaxFrequencyCap(t *testing.T) {
	d, err := GenerateZipf(ZipfConfig{
		Providers: 1000, Owners: 50, Exponent: 1, MaxFrequency: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 50; j++ {
		if f := d.Frequency(j); f > 100 {
			t.Fatalf("frequency[%d] = %d exceeds cap", j, f)
		}
	}
	if d.Frequency(0) != 100 {
		t.Fatalf("rank 0 = %d, want cap 100", d.Frequency(0))
	}
}

func TestGenerateFixedExactFrequencies(t *testing.T) {
	freqs := []int{0, 1, 7, 100}
	d, err := GenerateFixed(FixedConfig{
		Providers:   100,
		Frequencies: freqs,
		Eps:         []float64{0.1, 0.2, 0.3, 0.4},
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for j, f := range freqs {
		if got := d.Frequency(j); got != f {
			t.Fatalf("frequency[%d] = %d, want %d", j, got, f)
		}
	}
}

func TestGenerateFixedValidation(t *testing.T) {
	if _, err := GenerateFixed(FixedConfig{Providers: 10, Frequencies: []int{11}, Eps: []float64{0.5}}); err == nil {
		t.Error("frequency > providers accepted")
	}
	if _, err := GenerateFixed(FixedConfig{Providers: 10, Frequencies: []int{-1}, Eps: []float64{0.5}}); err == nil {
		t.Error("negative frequency accepted")
	}
	if _, err := GenerateFixed(FixedConfig{Providers: 10, Frequencies: []int{1}, Eps: nil}); err == nil {
		t.Error("ε mismatch accepted")
	}
	if _, err := GenerateFixed(FixedConfig{Providers: 0, Frequencies: []int{1}, Eps: []float64{0.5}}); err == nil {
		t.Error("0 providers accepted")
	}
}

func TestFixedPlacementIsRandomised(t *testing.T) {
	a, err := GenerateFixed(FixedConfig{Providers: 100, Frequencies: []int{10}, Eps: []float64{0.5}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFixed(FixedConfig{Providers: 100, Frequencies: []int{10}, Eps: []float64{0.5}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Matrix.Equal(b.Matrix) {
		t.Fatal("different seeds placed identically")
	}
	c, err := GenerateFixed(FixedConfig{Providers: 100, Frequencies: []int{10}, Eps: []float64{0.5}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Matrix.Equal(c.Matrix) {
		t.Fatal("same seed placed differently")
	}
}
