package workload

import (
	"bytes"
	"strings"
	"testing"
)

const sampleTable = `# collection,owner
lib-a, owner://x.example.org
lib-a, owner://y.example.org

lib-b, owner://x.example.org
lib-c, owner://z.example.org
lib-a, owner://x.example.org
`

func TestLoadCollectionTable(t *testing.T) {
	d, err := LoadCollectionTable(strings.NewReader(sampleTable), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Providers() != 3 || d.Owners() != 3 {
		t.Fatalf("dims = %dx%d", d.Providers(), d.Owners())
	}
	// Owners sorted lexicographically: x, y, z.
	if d.Names[0] != "owner://x.example.org" || d.Names[2] != "owner://z.example.org" {
		t.Fatalf("names = %v", d.Names)
	}
	// x appears at lib-a (row 0, duplicate line collapses) and lib-b (row 1).
	if d.Frequency(0) != 2 {
		t.Fatalf("freq(x) = %d, want 2", d.Frequency(0))
	}
	if d.Frequency(1) != 1 || d.Frequency(2) != 1 {
		t.Fatalf("freqs = %d, %d", d.Frequency(1), d.Frequency(2))
	}
	for _, e := range d.Eps {
		if e != 0.5 {
			t.Fatalf("ε = %v", e)
		}
	}
}

func TestLoadCollectionTableErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		eps   float64
	}{
		{"empty", "", 0.5},
		{"comment only", "# nothing\n", 0.5},
		{"missing comma", "lib-a owner\n", 0.5},
		{"empty provider", ",owner\n", 0.5},
		{"empty owner", "lib-a,\n", 0.5},
		{"bad eps", "lib-a,o\n", 1.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadCollectionTable(strings.NewReader(tc.input), tc.eps); err == nil {
				t.Fatalf("input %q accepted", tc.input)
			}
		})
	}
}

func TestCollectionTableRoundTrip(t *testing.T) {
	orig, err := GenerateZipf(ZipfConfig{Providers: 20, Owners: 15, Exponent: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCollectionTable(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCollectionTable(&buf, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if back.Owners() != orig.Owners() {
		t.Fatalf("owners %d != %d", back.Owners(), orig.Owners())
	}
	// Providers with zero records do not appear in the table; frequencies
	// must survive exactly.
	for j := 0; j < orig.Owners(); j++ {
		// Column order may differ (sorted); map by name.
		name := orig.Names[j]
		found := -1
		for k, n := range back.Names {
			if n == name {
				found = k
			}
		}
		if found < 0 {
			t.Fatalf("owner %q lost", name)
		}
		if back.Frequency(found) != orig.Frequency(j) {
			t.Fatalf("owner %q frequency %d != %d", name, back.Frequency(found), orig.Frequency(j))
		}
	}
}
