package workload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/bitmat"
)

// LoadCollectionTable builds a Dataset from a "collection table" in the
// format of the paper's TREC-WT10g–derived input [23]: one line per
// document placement,
//
//	<collection-id>,<owner-identity>
//
// where each collection is a provider and owner identities are the
// documents' source URLs. Blank lines and lines starting with '#' are
// skipped. Collection ids are assigned provider rows in first-appearance
// order; identities are assigned columns sorted lexicographically (so the
// matrix layout is deterministic for a given file). ε values default to
// defaultEps for every owner (the dataset has no privacy metric; the paper
// samples ε randomly — callers can overwrite Dataset.Eps).
func LoadCollectionTable(r io.Reader, defaultEps float64) (*Dataset, error) {
	if defaultEps < 0 || defaultEps > 1 {
		return nil, fmt.Errorf("%w: default ε %v", ErrBadConfig, defaultEps)
	}
	type placement struct {
		provider string
		owner    string
	}
	var placements []placement
	providerOrder := []string{}
	providerIdx := map[string]int{}
	ownerSet := map[string]bool{}

	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		provider, owner, ok := strings.Cut(line, ",")
		if !ok {
			return nil, fmt.Errorf("workload: line %d: want \"collection,owner\", got %q", lineNo, line)
		}
		provider = strings.TrimSpace(provider)
		owner = strings.TrimSpace(owner)
		if provider == "" || owner == "" {
			return nil, fmt.Errorf("workload: line %d: empty field in %q", lineNo, line)
		}
		if _, seen := providerIdx[provider]; !seen {
			providerIdx[provider] = len(providerOrder)
			providerOrder = append(providerOrder, provider)
		}
		ownerSet[owner] = true
		placements = append(placements, placement{provider: provider, owner: owner})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("workload: read collection table: %w", err)
	}
	if len(placements) == 0 {
		return nil, errors.New("workload: empty collection table")
	}

	owners := make([]string, 0, len(ownerSet))
	for o := range ownerSet {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	ownerIdx := make(map[string]int, len(owners))
	for j, o := range owners {
		ownerIdx[o] = j
	}

	d := &Dataset{Names: owners, Eps: make([]float64, len(owners))}
	for j := range d.Eps {
		d.Eps[j] = defaultEps
	}
	mat, err := bitmat.New(len(providerOrder), len(owners))
	if err != nil {
		return nil, err
	}
	for _, p := range placements {
		mat.Set(providerIdx[p.provider], ownerIdx[p.owner], true)
	}
	d.Matrix = mat
	return d, nil
}

// WriteCollectionTable serializes a dataset back to the collection-table
// format (one line per set membership bit), the inverse of
// LoadCollectionTable for round-trip tooling. Provider rows are named
// "collection-<row>".
func WriteCollectionTable(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# collection,owner"); err != nil {
		return err
	}
	for i := 0; i < d.Providers(); i++ {
		for j := 0; j < d.Owners(); j++ {
			if !d.Matrix.Get(i, j) {
				continue
			}
			if _, err := fmt.Fprintf(bw, "collection-%d,%s\n", i, d.Names[j]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
