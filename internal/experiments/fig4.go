package experiments

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/mathx"
	"repro/internal/workload"
)

// Figure 4 compares the non-grouping ε-PPI (incremented-expectation Δ=0.01
// and Chernoff γ=0.9 policies) against grouping PPIs at several group
// counts. Success ratio is the fraction of sampled identities whose
// achieved false-positive rate meets the desired ε. Default setting per the
// paper: 10,000 providers, expected false-positive rate 0.8, 20 samples.

// fig4Scale returns (providers, samples, groupCounts) for the run scale.
func fig4Scale(quick bool) (int, int, []int) {
	if quick {
		return 1000, 30, []int{40, 100, 250}
	}
	return 10000, 20, []int{400, 1000, 2000, 2500}
}

// successRatio returns the fraction of identity columns whose published
// false-positive rate reaches their ε.
func successRatio(truth, published *bitmat.Matrix, eps []float64) (float64, error) {
	n := truth.Cols()
	if n == 0 {
		return 0, fmt.Errorf("experiments: empty matrix")
	}
	ok := 0
	for j := 0; j < n; j++ {
		fp, err := bitmat.ColFalsePositiveRate(truth, published, j)
		if err != nil {
			return 0, err
		}
		if fp >= eps[j] {
			ok++
		}
	}
	return float64(ok) / float64(n), nil
}

// epsSlice returns n copies of eps.
func epsSlice(n int, eps float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = eps
	}
	return out
}

// nonGroupingSuccess constructs an ε-PPI over the dataset and measures the
// success ratio.
func nonGroupingSuccess(d *workload.Dataset, eps []float64, cfg core.Config) (float64, error) {
	res, err := core.Construct(d.Matrix, eps, cfg)
	if err != nil {
		return 0, err
	}
	return successRatio(d.Matrix, res.Published, eps)
}

// groupingSuccess constructs a grouping PPI and measures the success ratio.
func groupingSuccess(d *workload.Dataset, eps []float64, groups int, seed int64) (float64, error) {
	res, err := grouping.Construct(d.Matrix, grouping.Config{
		Groups: groups, Variant: grouping.VariantBawa, Seed: seed,
	})
	if err != nil {
		return 0, err
	}
	return successRatio(d.Matrix, res.Published, eps)
}

// Fig4a sweeps identity frequency at fixed ε = 0.8.
func Fig4a(opts Options) (*Figure, error) {
	m, samples, groupCounts := fig4Scale(opts.Quick)
	freqPoints := []int{34, 67, 100, 134, 176, 234, 446}
	if opts.Quick {
		freqPoints = []int{10, 34, 67, 100}
	}
	const epsVal = 0.8

	fig := &Figure{
		ID:     "fig4a",
		Title:  "Success ratio vs identity frequency (ε=0.8)",
		XLabel: "identity-frequency",
		YLabel: "success ratio",
	}
	nonGroupers := []struct {
		label string
		cfg   core.Config
	}{
		{"Nongrouping-IncExp-0.01", core.Config{Policy: mathx.PolicyIncremented, Delta: 0.01, Mode: core.ModeTrusted}},
		{"Nongrouping-Chernoff-0.9", core.Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted}},
	}
	series := make([]Series, 0, len(nonGroupers)+len(groupCounts))
	for _, ng := range nonGroupers {
		series = append(series, Series{Label: ng.label})
	}
	for _, g := range groupCounts {
		series = append(series, Series{Label: fmt.Sprintf("Grouping-%d", g)})
	}

	for _, freq := range freqPoints {
		d, err := workload.GenerateFixed(workload.FixedConfig{
			Providers:   m,
			Frequencies: repeatInt(freq, samples),
			Eps:         epsSlice(samples, epsVal),
			Seed:        opts.Seed + int64(freq),
		})
		if err != nil {
			return nil, err
		}
		si := 0
		for _, ng := range nonGroupers {
			cfg := ng.cfg
			cfg.Seed = opts.Seed + int64(freq)*31
			cfg.Workers = opts.Workers
			y, err := nonGroupingSuccess(d, d.Eps, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s at freq %d: %w", ng.label, freq, err)
			}
			series[si].Points = append(series[si].Points, Point{X: float64(freq), Y: y})
			si++
		}
		for _, g := range groupCounts {
			y, err := groupingSuccess(d, d.Eps, g, opts.Seed+int64(freq)*37)
			if err != nil {
				return nil, fmt.Errorf("grouping-%d at freq %d: %w", g, freq, err)
			}
			series[si].Points = append(series[si].Points, Point{X: float64(freq), Y: y})
			si++
		}
	}
	fig.Series = series
	return fig, nil
}

// Fig4b sweeps ε at a fixed moderate identity frequency (100 providers, the
// middle of Fig4a's range).
func Fig4b(opts Options) (*Figure, error) {
	m, samples, groupCounts := fig4Scale(opts.Quick)
	epsPoints := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	freq := 100
	if opts.Quick {
		freq = 30
	}

	fig := &Figure{
		ID:     "fig4b",
		Title:  fmt.Sprintf("Success ratio vs ε (identity frequency %d)", freq),
		XLabel: "epsilon",
		YLabel: "success ratio",
	}
	nonGroupers := []struct {
		label string
		cfg   core.Config
	}{
		{"Nongrouping-IncExp-0.01", core.Config{Policy: mathx.PolicyIncremented, Delta: 0.01, Mode: core.ModeTrusted}},
		{"Nongrouping-Chernoff-0.9", core.Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted}},
	}
	series := make([]Series, 0, len(nonGroupers)+len(groupCounts))
	for _, ng := range nonGroupers {
		series = append(series, Series{Label: ng.label})
	}
	for _, g := range groupCounts {
		series = append(series, Series{Label: fmt.Sprintf("Grouping-%d", g)})
	}

	for pi, epsVal := range epsPoints {
		d, err := workload.GenerateFixed(workload.FixedConfig{
			Providers:   m,
			Frequencies: repeatInt(freq, samples),
			Eps:         epsSlice(samples, epsVal),
			Seed:        opts.Seed + int64(pi),
		})
		if err != nil {
			return nil, err
		}
		si := 0
		for _, ng := range nonGroupers {
			cfg := ng.cfg
			cfg.Seed = opts.Seed + int64(pi)*41
			cfg.Workers = opts.Workers
			y, err := nonGroupingSuccess(d, d.Eps, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s at ε=%v: %w", ng.label, epsVal, err)
			}
			series[si].Points = append(series[si].Points, Point{X: epsVal, Y: y})
			si++
		}
		for _, g := range groupCounts {
			y, err := groupingSuccess(d, d.Eps, g, opts.Seed+int64(pi)*43)
			if err != nil {
				return nil, fmt.Errorf("grouping-%d at ε=%v: %w", g, epsVal, err)
			}
			series[si].Points = append(series[si].Points, Point{X: epsVal, Y: y})
			si++
		}
	}
	fig.Series = series
	return fig, nil
}

func repeatInt(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
