package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

var quickOpts = Options{Seed: 42, Quick: true}

func findSeries(t *testing.T, f *Figure, label string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("series %q not found in %s (have %v)", label, f.ID, seriesLabels(f))
	return Series{}
}

func seriesLabels(f *Figure) []string {
	out := make([]string, len(f.Series))
	for i, s := range f.Series {
		out[i] = s.Label
	}
	return out
}

func meanY(s Series) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Y
	}
	return sum / float64(len(s.Points))
}

func TestFig4aShape(t *testing.T) {
	fig, err := Fig4a(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	chernoff := findSeries(t, fig, "Nongrouping-Chernoff-0.9")
	// The paper's headline: the Chernoff non-grouping ε-PPI achieves
	// near-optimal success ratio at every frequency.
	for _, p := range chernoff.Points {
		if p.Y < 0.9 {
			t.Errorf("Chernoff success ratio %v at freq %v, want >= 0.9", p.Y, p.X)
		}
	}
	// Grouping PPIs are unstable: at least one configuration misses badly
	// somewhere.
	worstGrouping := 1.0
	for _, s := range fig.Series {
		if !strings.HasPrefix(s.Label, "Grouping-") {
			continue
		}
		for _, p := range s.Points {
			if p.Y < worstGrouping {
				worstGrouping = p.Y
			}
		}
	}
	if worstGrouping > 0.5 {
		t.Errorf("grouping PPIs never fell below 0.5 (worst %v); expected instability", worstGrouping)
	}
}

func TestFig4bShape(t *testing.T) {
	fig, err := Fig4b(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	chernoff := findSeries(t, fig, "Nongrouping-Chernoff-0.9")
	for _, p := range chernoff.Points {
		if p.Y < 0.9 {
			t.Errorf("Chernoff success ratio %v at ε=%v, want >= 0.9", p.Y, p.X)
		}
	}
	// Grouping success degrades as ε grows (the paper's "quickly degrades
	// to 0"): the last ε point should be worse than the first for at least
	// one grouping configuration.
	degraded := false
	for _, s := range fig.Series {
		if !strings.HasPrefix(s.Label, "Grouping-") || len(s.Points) < 2 {
			continue
		}
		if s.Points[len(s.Points)-1].Y < s.Points[0].Y {
			degraded = true
		}
	}
	if !degraded {
		t.Error("no grouping series degraded with growing ε")
	}
}

func TestFig5aShape(t *testing.T) {
	fig, err := Fig5a(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	chernoff := findSeries(t, fig, "chernoff")
	basic := findSeries(t, fig, "basic")
	for _, p := range chernoff.Points {
		if p.Y < 0.85 {
			t.Errorf("chernoff pp=%v at freq %v, want >= 0.85 (γ=0.9)", p.Y, p.X)
		}
	}
	// Basic policy hovers around 0.5 on average.
	if m := meanY(basic); m < 0.2 || m > 0.8 {
		t.Errorf("basic policy mean pp=%v, want ≈ 0.5", m)
	}
	if meanY(chernoff) <= meanY(basic) {
		t.Error("chernoff did not beat basic")
	}
}

func TestFig5bShape(t *testing.T) {
	fig, err := Fig5b(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	chernoff := findSeries(t, fig, "chernoff")
	incexp := findSeries(t, fig, "inc-exp")
	for _, p := range chernoff.Points {
		if p.Y < 0.85 {
			t.Errorf("chernoff pp=%v at m=%v, want >= 0.85", p.Y, p.X)
		}
	}
	// Inc-exp is unsatisfactory at few providers (the paper's observation):
	// its worst point is clearly below the Chernoff floor.
	worst := 1.0
	for _, p := range incexp.Points {
		if p.Y < worst {
			worst = p.Y
		}
	}
	if worst > 0.85 {
		t.Errorf("inc-exp never under-performed (worst %v); expected weakness at small m", worst)
	}
}

func TestFig6aShape(t *testing.T) {
	fig, err := Fig6a(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	ePPI := findSeries(t, fig, "e-PPI")
	pure := findSeries(t, fig, "Pure-MPC")
	if len(ePPI.Points) != len(pure.Points) || len(ePPI.Points) == 0 {
		t.Fatal("series shape mismatch")
	}
	// At the largest party count the pure approach must be slower.
	last := len(pure.Points) - 1
	if pure.Points[last].Y <= ePPI.Points[last].Y {
		t.Errorf("pure MPC (%vms) not slower than e-PPI (%vms) at %v parties",
			pure.Points[last].Y, ePPI.Points[last].Y, pure.Points[last].X)
	}
}

func TestFig6bShape(t *testing.T) {
	fig, err := Fig6b(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	ePPI := findSeries(t, fig, "e-PPI")
	pure := findSeries(t, fig, "Pure-MPC")
	// Pure circuit grows with parties; e-PPI stays near-flat.
	pFirst, pLast := pure.Points[0].Y, pure.Points[len(pure.Points)-1].Y
	eFirst, eLast := ePPI.Points[0].Y, ePPI.Points[len(ePPI.Points)-1].Y
	if pLast <= pFirst {
		t.Errorf("pure circuit did not grow: %v -> %v", pFirst, pLast)
	}
	if eLast > eFirst*2 {
		t.Errorf("e-PPI circuit grew too fast: %v -> %v", eFirst, eLast)
	}
	if pLast <= eLast {
		t.Errorf("pure (%v gates) not larger than e-PPI (%v gates)", pLast, eLast)
	}
}

func TestFig6cShape(t *testing.T) {
	fig, err := Fig6c(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	ePPI := findSeries(t, fig, "e-PPI")
	pure := findSeries(t, fig, "Pure-MPC")
	last := len(pure.Points) - 1
	// Identity scaling: pure MPC grows faster and ends slower.
	if pure.Points[last].Y <= ePPI.Points[last].Y {
		t.Errorf("pure MPC (%vms) not slower than e-PPI (%vms) at %v identities",
			pure.Points[last].Y, ePPI.Points[last].Y, pure.Points[last].X)
	}
}

func TestFig6aModelledShape(t *testing.T) {
	fig, err := Fig6aModelled(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	ePPI := findSeries(t, fig, "e-PPI")
	pure := findSeries(t, fig, "Pure-MPC")
	last := len(pure.Points) - 1
	if pure.Points[last].Y <= ePPI.Points[last].Y {
		t.Error("modelled pure MPC not slower at scale")
	}
	// Super-linear growth of the pure curve: ratio of last/first exceeds
	// the party ratio.
	partyRatio := pure.Points[last].X / pure.Points[0].X
	timeRatio := pure.Points[last].Y / pure.Points[0].Y
	if timeRatio <= partyRatio {
		t.Errorf("modelled pure MPC growth %v not super-linear in parties (%v)", timeRatio, partyRatio)
	}
}

func TestTable2Degrees(t *testing.T) {
	table, err := Table2(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(table.Rows))
	}
	byName := map[string][]string{}
	for _, row := range table.Rows {
		byName[row[0]] = row
	}
	// ε-PPI: ε-PRIVATE under both attacks.
	ep := byName["ε-PPI"]
	if ep == nil {
		t.Fatal("ε-PPI row missing")
	}
	if ep[2] != "ε-PRIVATE" {
		t.Errorf("ε-PPI primary degree = %q", ep[2])
	}
	if ep[4] != "ε-PRIVATE" {
		t.Errorf("ε-PPI common degree = %q", ep[4])
	}
	// SS-PPI: the leak makes the common-identity attack certain.
	ss := byName["SS-PPI"]
	if ss == nil {
		t.Fatal("SS-PPI row missing")
	}
	if ss[4] != "NO PROTECT" {
		t.Errorf("SS-PPI common degree = %q", ss[4])
	}
	// Grouping PPI: no quantitative guarantee under the primary attack.
	gr := byName["PPI (grouping)"]
	if gr == nil {
		t.Fatal("grouping row missing")
	}
	if gr[2] == "ε-PRIVATE" {
		t.Errorf("grouping primary degree = %q; expected a violated guarantee", gr[2])
	}
}

func TestSearchCostTable(t *testing.T) {
	table, err := SearchCost(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(table.Rows))
	}
	// ε-PPI overhead grows with ε.
	parse := func(row []string) float64 {
		var v float64
		if _, err := fmtSscan(row[3], &v); err != nil {
			t.Fatalf("bad overhead cell %q", row[3])
		}
		return v
	}
	if !(parse(table.Rows[0]) < parse(table.Rows[2])) {
		t.Errorf("ε-PPI overhead not increasing in ε: %v vs %v", parse(table.Rows[0]), parse(table.Rows[2]))
	}
	for _, row := range table.Rows {
		if parse(row) < 1 {
			t.Errorf("%s overhead %v < 1 (impossible: recall is 100%%)", row[0], parse(row))
		}
	}
}

func fmtSscan(s string, v *float64) (int, error) {
	return sscan(s, v)
}

func TestRenderCSV(t *testing.T) {
	fig := &Figure{
		ID: "f", XLabel: "x",
		Series: []Series{
			{Label: "a", Points: []Point{{1, 0.5}, {2, 0.25}}},
			{Label: "b", Points: []Point{{1, 1}}},
		},
	}
	var buf bytes.Buffer
	if err := fig.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "x,a,b\n1,0.5,1\n2,0.25,\n"
	if buf.String() != want {
		t.Fatalf("figure csv = %q, want %q", buf.String(), want)
	}
	table := &TableResult{Header: []string{"h1", "h2"}, Rows: [][]string{{"a", "b,c"}}}
	buf.Reset()
	if err := table.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "h1,h2\na,\"b,c\"\n" {
		t.Fatalf("table csv = %q", buf.String())
	}
}

func TestRendering(t *testing.T) {
	fig := &Figure{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", Points: []Point{{1, 0.5}, {2, 0.25}}},
			{Label: "b", Points: []Point{{1, 1}}},
		},
	}
	var buf bytes.Buffer
	fig.Render(&buf)
	out := buf.String()
	for _, want := range []string{"figX", "x", "a", "b", "0.5", "0.25", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	table := &TableResult{ID: "t", Title: "demo", Header: []string{"col1", "col2"}, Rows: [][]string{{"a", "b"}}}
	buf.Reset()
	table.Render(&buf)
	if !strings.Contains(buf.String(), "col1") || !strings.Contains(buf.String(), "a") {
		t.Errorf("table output wrong:\n%s", buf.String())
	}
}
