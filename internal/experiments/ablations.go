package experiments

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/bitmat"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// Ablations probe the two load-bearing design choices of ε-PPI beyond the
// paper's own figures:
//
//   - AblationMixing removes the identity-mixing defence (λ → 0) and shows
//     the common-identity attack returning to full confidence — the
//     experimental justification for Equation 6.
//   - AblationC sweeps the coordinator count c, pricing the collusion
//     tolerance (tolerate up to c−1 colluders) in circuit size, traffic
//     and wall time.

// AblationMixing compares the common-identity attack confidence with the
// mixing defence enabled (ξ = 0.8) versus disabled.
func AblationMixing(opts Options) (*TableResult, error) {
	m, n, repeats := 2000, 200, 10
	if opts.Quick {
		m, n, repeats = 400, 100, 6
	}
	commonsPlanted := n / 40
	if commonsPlanted < 3 {
		commonsPlanted = 3
	}
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers:    m,
		Owners:       n,
		Exponent:     1.2,
		MaxFrequency: m / 25,
		Seed:         opts.Seed,
		EpsLow:       0.3,
		EpsHigh:      0.9,
	})
	if err != nil {
		return nil, err
	}
	for j := 0; j < commonsPlanted; j++ {
		for i := 0; i < m; i++ {
			d.Matrix.Set(i, j, true)
		}
	}
	base := core.Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Workers: opts.Workers}
	isCommon := make([]bool, n)
	for j := 0; j < n; j++ {
		if uint64(d.Matrix.ColCount(j)) >= base.Threshold(d.Eps[j], m) {
			isCommon[j] = true
		}
	}

	table := &TableResult{
		ID:     "ablation-mixing",
		Title:  "Common-identity attack confidence with and without identity mixing",
		Header: []string{"configuration", "published-commons(avg)", "attack-confidence", "degree"},
	}
	measure := func(label string, xi float64) error {
		pickedTotal, trueTotal := 0, 0
		for rep := 0; rep < repeats; rep++ {
			cfg := base
			cfg.Seed = opts.Seed + int64(rep)*113
			cfg.XiOverride = xi
			res, err := core.Construct(d.Matrix, d.Eps, cfg)
			if err != nil {
				return err
			}
			att, err := attack.CommonIdentityAttack(attack.PublishedFrequencies(res.Published), uint64(m), isCommon)
			if err != nil {
				return err
			}
			pickedTotal += len(att.Picked)
			trueTotal += att.TrueCommons
		}
		conf := 0.0
		if pickedTotal > 0 {
			conf = float64(trueTotal) / float64(pickedTotal)
		}
		degree := attack.DegreeNoGuarantee
		switch {
		case conf >= 1-1e-9:
			degree = attack.DegreeNoProtect
		case xi > 1e-6 && conf <= (1-xi)*1.25:
			degree = attack.DegreeEpsilonPrivate
		}
		table.Rows = append(table.Rows, []string{
			label,
			fmt.Sprintf("%.1f", float64(pickedTotal)/float64(repeats)),
			fmt.Sprintf("%.3f", conf),
			degree.String(),
		})
		return nil
	}
	if err := measure("mixing on (ξ=0.8)", 0.8); err != nil {
		return nil, err
	}
	if err := measure("mixing off (λ≈0)", 1e-12); err != nil {
		return nil, err
	}
	return table, nil
}

// AblationRebuild quantifies why the ε-PPI stays static (Section III-C's
// repeated-attack remark): if the index were rebuilt with fresh publication
// randomness, an attacker intersecting the snapshots would watch the noise
// thin out and their confidence climb toward certainty, while a static
// index holds the 1−ε bound no matter how often it is queried.
func AblationRebuild(opts Options) (*TableResult, error) {
	m, freq, samples := 10000, 20, 20
	if opts.Quick {
		m, freq, samples = 1000, 10, 10
	}
	const epsVal = 0.8
	d, err := workload.GenerateFixed(workload.FixedConfig{
		Providers:   m,
		Frequencies: repeatInt(freq, samples),
		Eps:         epsSlice(samples, epsVal),
		Seed:        opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Workers: opts.Workers}
	const rebuilds = 6
	snapshots := make([]*bitmat.Matrix, 0, rebuilds)
	for r := 0; r < rebuilds; r++ {
		cfg.Seed = opts.Seed + int64(r+1)
		res, err := core.Construct(d.Matrix, d.Eps, cfg)
		if err != nil {
			return nil, err
		}
		snapshots = append(snapshots, res.Published)
	}
	table := &TableResult{
		ID:     "ablation-rebuild",
		Title:  fmt.Sprintf("Intersection attack vs number of fresh rebuilds (m=%d, ε=%.1f)", m, epsVal),
		Header: []string{"snapshots", "avg-survivors", "attack-confidence", "bound(1-ε)"},
	}
	for k := 1; k <= rebuilds; k++ {
		var confSum, survSum float64
		for j := 0; j < samples; j++ {
			res, err := attack.Intersect(d.Matrix, snapshots[:k], j)
			if err != nil {
				return nil, err
			}
			confSum += res.Confidence
			survSum += float64(res.Survivors)
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f", survSum/float64(samples)),
			fmt.Sprintf("%.3f", confSum/float64(samples)),
			fmt.Sprintf("%.3f", 1-epsVal),
		})
	}
	return table, nil
}

// AblationDepth compares ripple against parallel-prefix (Kogge–Stone)
// arithmetic in the coordinator circuits. GMW pays one communication round
// per AND-depth level, so on latency-bound links the shallow prefix
// circuits win despite spending more AND gates; the table prices both
// styles under the netsim LAN model at the paper's network sizes.
func AblationDepth(opts Options) (*TableResult, error) {
	providerCounts := []int{100, 1000, 10000, 25000}
	if opts.Quick {
		providerCounts = []int{100, 25000}
	}
	lan := netsim.Emulab()
	wan := netsim.WAN()
	table := &TableResult{
		ID:     "ablation-depth",
		Title:  "Ripple vs prefix arithmetic in the coordinator MPC (per identity, c=3)",
		Header: []string{"providers", "style", "and-gates", "and-depth", "modelled-LAN-ms", "modelled-WAN-ms"},
	}
	for _, m := range providerCounts {
		shareBits := circuit.BitsNeeded(uint64(m + 1))
		threshold := []uint64{uint64(m)/2 + 1}
		for _, style := range []circuit.Style{circuit.StyleRipple, circuit.StylePrefix} {
			cb, err := circuit.CountBelow(circuit.CountBelowParams{
				Parties: 3, Identities: 1, ShareBits: shareBits,
				Thresholds: threshold, Arithmetic: style,
			})
			if err != nil {
				return nil, err
			}
			rv, err := circuit.Reveal(circuit.RevealParams{
				Parties: 3, Identities: 1, ShareBits: shareBits,
				Thresholds: threshold, CoinBits: 16, MixThreshold: 100,
				Arithmetic: style,
			})
			if err != nil {
				return nil, err
			}
			gates := cb.Stats().AndGates + rv.Stats().AndGates
			depth := cb.Stats().AndDepth + rv.Stats().AndDepth
			// Each AND level is one broadcast round among the coordinators;
			// per-gate compute is negligible next to link latency here, so
			// model rounds plus traffic only.
			work := netsim.Workload{
				Rounds:           depth + 4,
				MaxBytesPerParty: gates,
				Gates:            0, // GMW online gate work is bitwise, ~free
			}
			lanDur, err := lan.Estimate(work)
			if err != nil {
				return nil, err
			}
			wanDur, err := wan.Estimate(work)
			if err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, []string{
				fmt.Sprintf("%d", m),
				style.String(),
				fmt.Sprintf("%d", gates),
				fmt.Sprintf("%d", depth),
				fmt.Sprintf("%.2f", lanDur.Seconds()*1000),
				fmt.Sprintf("%.1f", wanDur.Seconds()*1000),
			})
		}
	}
	return table, nil
}

// AblationC sweeps the coordinator count c for the secure pipeline on a
// fixed small network, reporting the collusion-tolerance price.
func AblationC(opts Options) (*TableResult, error) {
	m, n := 12, 6
	cs := []int{2, 3, 4, 5}
	if opts.Quick {
		cs = []int{2, 3, 4}
	}
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: m, Owners: n, Exponent: 1.1, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	table := &TableResult{
		ID:     "ablation-c",
		Title:  fmt.Sprintf("Secure construction cost vs coordinator count (m=%d, n=%d)", m, n),
		Header: []string{"c", "tolerates", "mpc-and-gates", "mpc-bytes", "secsum-msgs", "wall-time-ms"},
	}
	for _, c := range cs {
		cfg := core.Config{
			Policy: mathx.PolicyChernoff, Gamma: 0.9,
			Mode: core.ModeSecure, C: c, Seed: opts.Seed + int64(c), Workers: opts.Workers,
		}
		start := time.Now()
		res, err := core.Construct(d.Matrix, d.Eps, cfg)
		if err != nil {
			return nil, fmt.Errorf("c=%d: %w", c, err)
		}
		dur := time.Since(start)
		s := res.Secure
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", c),
			fmt.Sprintf("%d colluders", c-1),
			fmt.Sprintf("%d", s.CountBelowCircuit.AndGates+s.RevealCircuit.AndGates),
			fmt.Sprintf("%d", s.MPC.Bytes),
			fmt.Sprintf("%d", s.SecSum.Messages),
			fmt.Sprintf("%.2f", float64(dur.Microseconds())/1000),
		})
	}
	return table, nil
}
