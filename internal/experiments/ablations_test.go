package experiments

import (
	"strconv"
	"testing"
)

func TestAblationMixing(t *testing.T) {
	table, err := AblationMixing(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	var onConf, offConf float64
	if _, err := sscan(table.Rows[0][2], &onConf); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(table.Rows[1][2], &offConf); err != nil {
		t.Fatal(err)
	}
	// Without mixing the attack is (nearly) certain; with mixing it is
	// bounded near 1-ξ = 0.2.
	if offConf < 0.99 {
		t.Errorf("mixing-off confidence %v, want ≈ 1", offConf)
	}
	if onConf > 0.35 {
		t.Errorf("mixing-on confidence %v, want ≲ 0.25", onConf)
	}
	if table.Rows[1][3] != "NO PROTECT" {
		t.Errorf("mixing-off degree = %q", table.Rows[1][3])
	}
	if table.Rows[0][3] != "ε-PRIVATE" {
		t.Errorf("mixing-on degree = %q", table.Rows[0][3])
	}
}

func TestAblationRebuild(t *testing.T) {
	table, err := AblationRebuild(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	var first, last float64
	if _, err := sscan(table.Rows[0][2], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(table.Rows[len(table.Rows)-1][2], &last); err != nil {
		t.Fatal(err)
	}
	// One snapshot respects the ε bound; six fresh rebuilds break it badly.
	if first > 0.3 {
		t.Errorf("single-snapshot confidence %v, want ≈ 0.2", first)
	}
	if last < 0.9 {
		t.Errorf("six-rebuild confidence %v, want ≈ 1", last)
	}
}

func TestAblationDepth(t *testing.T) {
	table, err := AblationDepth(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows)%2 != 0 || len(table.Rows) == 0 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Pairs of rows: ripple then prefix for the same m. The trade has a
	// crossover — at small m the folded ripple chains are already shallow —
	// but at the largest network the prefix circuits must win on depth and
	// modelled latency while spending more gates.
	last := len(table.Rows) - 2
	ripple, prefix := table.Rows[last], table.Rows[last+1]
	if ripple[1] != "ripple" || prefix[1] != "prefix" {
		t.Fatalf("row order wrong: %v / %v", ripple, prefix)
	}
	rd, err := strconv.Atoi(ripple[3])
	if err != nil {
		t.Fatal(err)
	}
	pd, err := strconv.Atoi(prefix[3])
	if err != nil {
		t.Fatal(err)
	}
	if pd >= rd {
		t.Errorf("largest m: prefix depth %d not below ripple %d", pd, rd)
	}
	rg, err := strconv.Atoi(ripple[2])
	if err != nil {
		t.Fatal(err)
	}
	pg, err := strconv.Atoi(prefix[2])
	if err != nil {
		t.Fatal(err)
	}
	if pg <= rg {
		t.Errorf("prefix gates %d not above ripple %d (nothing is free)", pg, rg)
	}
	var rms, pms float64
	if _, err := sscan(ripple[4], &rms); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(prefix[4], &pms); err != nil {
		t.Fatal(err)
	}
	if pms >= rms {
		t.Errorf("largest m: prefix modelled latency %v not below ripple %v", pms, rms)
	}
}

func TestAblationC(t *testing.T) {
	table, err := AblationC(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) < 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// AND-gate count and SecSumShare traffic must grow with c.
	gates := make([]int, len(table.Rows))
	msgs := make([]int, len(table.Rows))
	for i, row := range table.Rows {
		g, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		gates[i] = g
		mm, err := strconv.Atoi(row[4])
		if err != nil {
			t.Fatal(err)
		}
		msgs[i] = mm
	}
	for i := 1; i < len(gates); i++ {
		if gates[i] <= gates[i-1] {
			t.Errorf("AND gates not increasing in c: %v", gates)
		}
		if msgs[i] <= msgs[i-1] {
			t.Errorf("SecSumShare messages not increasing in c: %v", msgs)
		}
	}
}
