package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gmw"
	"repro/internal/mathx"
	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Figure 6 evaluates the construction protocol's performance: the
// MPC-reduced ε-PPI pipeline (SecSumShare + c-party CountBelow/Reveal)
// against the pure-MPC baseline in which all m providers are parties to a
// single circuit that also computes the raw β* in fixed point (the
// unreordered computation flow of Equation 8).
//
// The experiments use c = 3 coordinators, matching the paper.

const (
	fig6C        = 3
	fig6FracBits = 8
	fig6CoinBits = 8
	fig6Eps      = 0.5
)

// netFactory returns the transport constructor for the experiment options.
// Networks are instrumented with opts.Metrics (no-op when nil) so Fig 6
// runs contribute transport traffic and MPC phase timers to the registry.
func netFactory(opts Options) func(int) (transport.Network, error) {
	mk := func(parties int) (transport.Network, error) { return transport.NewInMem(parties) }
	if opts.TCP {
		mk = func(parties int) (transport.Network, error) { return transport.NewTCP(parties) }
	}
	return func(parties int) (transport.Network, error) {
		net, err := mk(parties)
		if err != nil {
			return nil, err
		}
		transport.Instrument(net, opts.Metrics)
		return net, nil
	}
}

// securePipelineTime runs the full secure ε-PPI construction over the
// configured transport and returns the wall-clock duration plus stats.
func securePipelineTime(opts Options, m, identities int, seed int64) (time.Duration, *core.SecureStats, error) {
	rng := rand.New(rand.NewSource(seed))
	freqs := make([]int, identities)
	for j := range freqs {
		freqs[j] = 1 + rng.Intn(m)
	}
	d, err := workload.GenerateFixed(workload.FixedConfig{
		Providers:   m,
		Frequencies: freqs,
		Eps:         epsSlice(identities, fig6Eps),
		Seed:        seed,
	})
	if err != nil {
		return 0, nil, err
	}
	cfg := core.Config{
		Policy:     mathx.PolicyChernoff,
		Gamma:      0.9,
		Mode:       core.ModeSecure,
		C:          fig6C,
		CoinBits:   fig6CoinBits,
		Seed:       seed,
		Workers:    opts.Workers,
		Wide:       opts.Wide,
		Metrics:    opts.Metrics,
		NewNetwork: netFactory(opts),
	}
	start := time.Now()
	res, err := core.Construct(d.Matrix, d.Eps, cfg)
	if err != nil {
		return 0, nil, err
	}
	return time.Since(start), res.Secure, nil
}

// pureMPCTime runs the baseline: one GMW execution among all m providers
// evaluating the PureBeta circuit.
func pureMPCTime(opts Options, m, identities int, seed int64) (time.Duration, *circuit.Circuit, transport.Stats, int, error) {
	epsFixed := make([]uint64, identities)
	for j := range epsFixed {
		epsFixed[j] = circuit.EpsToFixed(fig6Eps, fig6FracBits)
	}
	circ, err := circuit.PureBeta(circuit.PureBetaParams{
		Providers:    m,
		Identities:   identities,
		EpsFixed:     epsFixed,
		FracBits:     fig6FracBits,
		CoinBits:     fig6CoinBits,
		MixThreshold: 0,
	})
	if err != nil {
		return 0, nil, transport.Stats{}, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	inputs := make([][]bool, m)
	for i := 0; i < m; i++ {
		bits := make([]bool, 0, identities*(1+fig6CoinBits))
		for j := 0; j < identities; j++ {
			bits = append(bits, rng.Intn(4) == 0)
			bits = append(bits, circuit.PackBits(rng.Uint64()%(1<<fig6CoinBits), fig6CoinBits)...)
		}
		inputs[i] = bits
	}
	net, err := netFactory(opts)(m)
	if err != nil {
		return 0, nil, transport.Stats{}, 0, err
	}
	defer net.Close()
	start := time.Now()
	res, err := gmw.Run(net, circ, inputs, seed)
	if err != nil {
		return 0, nil, transport.Stats{}, 0, fmt.Errorf("pure MPC: %w", err)
	}
	return time.Since(start), circ, res.Stats, res.Rounds, nil
}

// Fig6a: execution time vs number of parties, single identity.
func Fig6a(opts Options) (*Figure, error) {
	parties := []int{3, 5, 7, 9}
	if opts.Quick {
		parties = []int{3, 5}
	}
	fig := &Figure{
		ID:     "fig6a",
		Title:  "Construction time vs parties (1 identity, c=3)",
		XLabel: "parties",
		YLabel: "execution time (ms)",
	}
	ePPI := Series{Label: "e-PPI"}
	pure := Series{Label: "Pure-MPC"}
	for _, m := range parties {
		dur, _, err := securePipelineTime(opts, m, 1, opts.Seed+int64(m))
		if err != nil {
			return nil, fmt.Errorf("e-PPI at m=%d: %w", m, err)
		}
		ePPI.Points = append(ePPI.Points, Point{X: float64(m), Y: float64(dur.Microseconds()) / 1000})
		pdur, _, _, _, err := pureMPCTime(opts, m, 1, opts.Seed+int64(m))
		if err != nil {
			return nil, fmt.Errorf("pure MPC at m=%d: %w", m, err)
		}
		pure.Points = append(pure.Points, Point{X: float64(m), Y: float64(pdur.Microseconds()) / 1000})
	}
	fig.Series = []Series{ePPI, pure}
	return fig, nil
}

// Fig6b: circuit size vs number of parties (compile only, so the sweep
// extends to 61 parties as in the paper).
func Fig6b(opts Options) (*Figure, error) {
	parties := []int{3, 11, 21, 31, 41, 51, 61}
	if opts.Quick {
		parties = []int{3, 11, 21}
	}
	fig := &Figure{
		ID:     "fig6b",
		Title:  "Circuit size vs parties (1 identity, c=3)",
		XLabel: "parties",
		YLabel: "circuit size (gates)",
	}
	ePPI := Series{Label: "e-PPI"}
	pure := Series{Label: "Pure-MPC"}
	for _, m := range parties {
		shareBits := circuit.BitsNeeded(uint64(m + 1))
		threshold := []uint64{uint64(m)/2 + 1}
		cb, err := circuit.CountBelow(circuit.CountBelowParams{
			Parties: fig6C, Identities: 1, ShareBits: shareBits, Thresholds: threshold,
		})
		if err != nil {
			return nil, err
		}
		rv, err := circuit.Reveal(circuit.RevealParams{
			Parties: fig6C, Identities: 1, ShareBits: shareBits, Thresholds: threshold,
			CoinBits: fig6CoinBits, MixThreshold: 0,
		})
		if err != nil {
			return nil, err
		}
		ePPI.Points = append(ePPI.Points, Point{X: float64(m), Y: float64(cb.Stats().Size() + rv.Stats().Size())})

		pb, err := circuit.PureBeta(circuit.PureBetaParams{
			Providers: m, Identities: 1,
			EpsFixed: []uint64{circuit.EpsToFixed(fig6Eps, fig6FracBits)},
			FracBits: fig6FracBits, CoinBits: fig6CoinBits, MixThreshold: 0,
		})
		if err != nil {
			return nil, err
		}
		pure.Points = append(pure.Points, Point{X: float64(m), Y: float64(pb.Stats().Size())})
	}
	fig.Series = []Series{ePPI, pure}
	return fig, nil
}

// Fig6c: execution time vs number of identities in a 3-party network.
func Fig6c(opts Options) (*Figure, error) {
	idCounts := []int{1, 10, 100, 1000}
	if opts.Quick {
		idCounts = []int{1, 10, 50}
	}
	fig := &Figure{
		ID:     "fig6c",
		Title:  "Construction time vs identities (3 parties, c=3)",
		XLabel: "identities",
		YLabel: "execution time (ms)",
	}
	ePPI := Series{Label: "e-PPI"}
	pure := Series{Label: "Pure-MPC"}
	for _, n := range idCounts {
		dur, _, err := securePipelineTime(opts, fig6C, n, opts.Seed+int64(n))
		if err != nil {
			return nil, fmt.Errorf("e-PPI at n=%d: %w", n, err)
		}
		ePPI.Points = append(ePPI.Points, Point{X: float64(n), Y: float64(dur.Microseconds()) / 1000})
		pdur, _, _, _, err := pureMPCTime(opts, fig6C, n, opts.Seed+int64(n))
		if err != nil {
			return nil, fmt.Errorf("pure MPC at n=%d: %w", n, err)
		}
		pure.Points = append(pure.Points, Point{X: float64(n), Y: float64(pdur.Microseconds()) / 1000})
	}
	fig.Series = []Series{ePPI, pure}
	return fig, nil
}

// Fig6aModelled complements Fig6a with the netsim Emulab-style cluster
// model, where per-gate MPC cost and LAN latency dominate: this is the
// regime the paper measured, and it shows the same separation at larger
// scale than an in-process run can.
func Fig6aModelled(opts Options) (*Figure, error) {
	parties := []int{3, 5, 7, 9, 15, 31, 61}
	if opts.Quick {
		parties = []int{3, 9, 31}
	}
	model := netsim.Emulab()
	fig := &Figure{
		ID:     "fig6a-model",
		Title:  "Modelled cluster construction time vs parties (1 identity)",
		XLabel: "parties",
		YLabel: "modelled time (s)",
	}
	ePPI := Series{Label: "e-PPI"}
	pure := Series{Label: "Pure-MPC"}
	for _, m := range parties {
		shareBits := circuit.BitsNeeded(uint64(m + 1))
		threshold := []uint64{uint64(m)/2 + 1}
		cb, err := circuit.CountBelow(circuit.CountBelowParams{
			Parties: fig6C, Identities: 1, ShareBits: shareBits, Thresholds: threshold,
		})
		if err != nil {
			return nil, err
		}
		rv, err := circuit.Reveal(circuit.RevealParams{
			Parties: fig6C, Identities: 1, ShareBits: shareBits, Thresholds: threshold,
			CoinBits: fig6CoinBits, MixThreshold: 0,
		})
		if err != nil {
			return nil, err
		}
		// The model follows the paper's testbed: FairplayMP is a
		// constant-round (garbled-circuit) runtime, so rounds do not grow
		// with circuit depth; per-gate work grows with the number of MPC
		// parties (each gate is garbled/evaluated cooperatively by all).
		// e-PPI: 2 SecSumShare rounds over m providers, then the two
		// constant-round c-party MPCs.
		gates := (cb.Stats().AndGates + rv.Stats().AndGates) * (fig6C - 1)
		rounds := 2 + 2*8
		bytes := fig6C*8*2 + gates*16 // share vectors + garbled tables
		dur, err := model.Estimate(netsim.Workload{Rounds: rounds, MaxBytesPerParty: bytes, Gates: gates})
		if err != nil {
			return nil, err
		}
		ePPI.Points = append(ePPI.Points, Point{X: float64(m), Y: dur.Seconds()})

		pb, err := circuit.PureBeta(circuit.PureBetaParams{
			Providers: m, Identities: 1,
			EpsFixed: []uint64{circuit.EpsToFixed(fig6Eps, fig6FracBits)},
			FracBits: fig6FracBits, CoinBits: fig6CoinBits, MixThreshold: 0,
		})
		if err != nil {
			return nil, err
		}
		pst := pb.Stats()
		// Pure MPC: the same constant-round runtime, but every one of the m
		// providers participates in garbling every gate of a much larger
		// circuit.
		pgates := pst.AndGates * (m - 1)
		prounds := 8
		pbytes := pst.AndGates * 16 * (m - 1)
		pdur, err := model.Estimate(netsim.Workload{Rounds: prounds, MaxBytesPerParty: pbytes, Gates: pgates})
		if err != nil {
			return nil, err
		}
		pure.Points = append(pure.Points, Point{X: float64(m), Y: pdur.Seconds()})
	}
	fig.Series = []Series{ePPI, pure}
	return fig, nil
}
