// Package experiments reproduces every table and figure of the ε-PPI
// paper's evaluation (Section V). Each experiment returns a Figure (series
// of x/y points) or a TableResult that renders the same rows/series the
// paper reports:
//
//	Fig4a  success ratio vs identity frequency, ε-PPI vs grouping PPIs
//	Fig4b  success ratio vs ε, ε-PPI vs grouping PPIs
//	Fig5a  success ratio of the three β policies vs identity frequency
//	Fig5b  success ratio of the three β policies vs provider count
//	Fig6a  construction time vs party count, ε-PPI vs pure MPC
//	Fig6b  circuit size vs party count, ε-PPI vs pure MPC
//	Fig6c  construction time vs identity count, ε-PPI vs pure MPC
//	Table2 privacy degrees under primary and common-identity attacks
//
// Absolute timings differ from the paper's Emulab/FairplayMP testbed; the
// comparisons preserve the paper's shapes (who wins, how costs scale).
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
)

// Options tunes experiment scale.
type Options struct {
	// Seed drives all randomness; equal seeds reproduce results exactly.
	Seed int64
	// Quick shrinks workloads (fewer providers/samples/parties) for test
	// suites and smoke runs; the full scale matches the paper.
	Quick bool
	// TCP runs the protocol-execution experiments (Fig 6a/6c) over real
	// TCP loopback sockets instead of the in-memory transport.
	TCP bool
	// Workers bounds the construction worker pool of every experiment's
	// core.Construct runs (0 = runtime.NumCPU()). Results are identical
	// at any worker count; only wall time changes.
	Workers int
	// Wide runs the secure-construction experiments (Fig 6a/6c) with the
	// bit-sliced 64-wide GMW evaluator. Results are identical to the
	// scalar evaluator; only protocol cost changes.
	Wide bool
	// Metrics, when non-nil, collects instrumentation across experiments:
	// index query fan-out (SearchCost), transport traffic and MPC phase
	// timers (Fig 6). eppi-bench embeds a snapshot of it in its output.
	Metrics *metrics.Registry
}

// Point is one measurement.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure collects the series of one paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render writes the figure as an aligned text table, one row per x value,
// one column per series.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{}
	if len(f.Series) > 0 {
		for i, p := range f.Series[0].Points {
			row := []string{trimFloat(p.X)}
			for _, s := range f.Series {
				if i < len(s.Points) {
					row = append(row, trimFloat(s.Points[i].Y))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
	}
	renderAligned(w, header, rows)
	fmt.Fprintf(w, "(y: %s)\n", f.YLabel)
}

// TableResult is one paper table.
type TableResult struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table with aligned columns.
func (t *TableResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	renderAligned(w, t.Header, t.Rows)
}

func renderAligned(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
