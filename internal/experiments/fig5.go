package experiments

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/workload"
)

// Figure 5 compares the three β-calculation policies. Settings per the
// paper: Δ=0.02 (incremented expectation), γ=0.9 (Chernoff), ε=0.5.
// pp is measured as the fraction of trials in which a single identity's
// achieved false-positive rate reaches ε.

var fig5Policies = []struct {
	label string
	cfg   core.Config
}{
	{"basic", core.Config{Policy: mathx.PolicyBasic, Mode: core.ModeTrusted}},
	{"inc-exp", core.Config{Policy: mathx.PolicyIncremented, Delta: 0.02, Mode: core.ModeTrusted}},
	{"chernoff", core.Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted}},
}

// policySuccess measures pp over `trials` runs for identities of the given
// absolute frequency in an m-provider network.
func policySuccess(cfg core.Config, m, freq, trials int, epsVal float64, seed int64) (float64, error) {
	// Batch the trials as independent identity columns of one matrix: the
	// per-column publication processes are independent, so one construction
	// with `trials` columns is statistically identical to `trials`
	// constructions with one column, and far faster.
	d, err := workload.GenerateFixed(workload.FixedConfig{
		Providers:   m,
		Frequencies: repeatInt(freq, trials),
		Eps:         epsSlice(trials, epsVal),
		Seed:        seed,
	})
	if err != nil {
		return 0, err
	}
	cfg.Seed = seed + 1
	res, err := core.Construct(d.Matrix, d.Eps, cfg)
	if err != nil {
		return 0, err
	}
	ok := 0
	for j := 0; j < trials; j++ {
		fp, err := bitmat.ColFalsePositiveRate(d.Matrix, res.Published, j)
		if err != nil {
			return 0, err
		}
		if fp >= epsVal {
			ok++
		}
	}
	return float64(ok) / float64(trials), nil
}

// Fig5a sweeps identity frequency at m=10,000 providers (ε=0.5).
func Fig5a(opts Options) (*Figure, error) {
	m, trials := 10000, 100
	freqPoints := []int{8, 50, 100, 200, 350, 500}
	if opts.Quick {
		m, trials = 1000, 40
		freqPoints = []int{8, 20, 50}
	}
	const epsVal = 0.5

	fig := &Figure{
		ID:     "fig5a",
		Title:  fmt.Sprintf("β-policy success ratio vs identity frequency (m=%d, ε=%.1f)", m, epsVal),
		XLabel: "identity-frequency",
		YLabel: "success rate pp",
	}
	for _, pol := range fig5Policies {
		s := Series{Label: pol.label}
		for _, freq := range freqPoints {
			cfg := pol.cfg
			cfg.Workers = opts.Workers
			y, err := policySuccess(cfg, m, freq, trials, epsVal, opts.Seed+int64(freq))
			if err != nil {
				return nil, fmt.Errorf("%s at freq %d: %w", pol.label, freq, err)
			}
			s.Points = append(s.Points, Point{X: float64(freq), Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig5b sweeps the provider count at relative identity frequency 0.1
// (ε=0.5).
func Fig5b(opts Options) (*Figure, error) {
	trials := 100
	providerPoints := []int{8, 32, 128, 512, 2048, 8192}
	if opts.Quick {
		trials = 40
		providerPoints = []int{8, 32, 128, 512}
	}
	const (
		epsVal  = 0.5
		relFreq = 0.1
	)

	fig := &Figure{
		ID:     "fig5b",
		Title:  "β-policy success ratio vs provider count (frequency 0.1·m, ε=0.5)",
		XLabel: "providers",
		YLabel: "success rate pp",
	}
	for _, pol := range fig5Policies {
		s := Series{Label: pol.label}
		for _, m := range providerPoints {
			freq := int(relFreq * float64(m))
			if freq < 1 {
				freq = 1
			}
			cfg := pol.cfg
			cfg.Workers = opts.Workers
			y, err := policySuccess(cfg, m, freq, trials, epsVal, opts.Seed+int64(m))
			if err != nil {
				return nil, fmt.Errorf("%s at m=%d: %w", pol.label, m, err)
			}
			s.Points = append(s.Points, Point{X: float64(m), Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
