package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV renderers: machine-readable output for plotting the reproduced
// figures with external tooling (`eppi-bench -format csv`).

// RenderCSV writes the figure as CSV: a header of x plus one column per
// series, one row per x value.
func (f *Figure) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	if len(f.Series) > 0 {
		for i, p := range f.Series[0].Points {
			row := []string{formatFloat(p.X)}
			for _, s := range f.Series {
				if i < len(s.Points) {
					row = append(row, formatFloat(s.Points[i].Y))
				} else {
					row = append(row, "")
				}
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("experiments: csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderCSV writes the table as CSV.
func (t *TableResult) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return trimFloat(v)
}
