package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/grouping"
	"repro/internal/index"
	"repro/internal/mathx"
	"repro/internal/workload"
)

// Table2 reproduces the paper's Table II: the privacy degree each system
// achieves under the primary attack and the common-identity attack.
//
// Both attacks are mounted against several independently constructed
// indexes and the attacker confidence is averaged — the guarantees under
// test are statistical, so single-run binomial noise must not drive the
// classification. Two measurement conventions, both documented in
// EXPERIMENTS.md:
//
//   - True common identities (σ = 1-ish) are excluded from the *primary*
//     classification: with no negative providers the fp-based Equation 1 is
//     vacuous for them, and the paper defends them with identity mixing —
//     which the common-identity column evaluates.
//   - ε-PPI runs with XiOverride = 0.8 so the common-attack bound under
//     test (confidence ≤ 1 − ξ = 0.2) is explicit.
func Table2(opts Options) (*TableResult, error) {
	m, n, repeats := 2000, 200, 10
	if opts.Quick {
		m, n, repeats = 400, 100, 6
	}
	const xi = 0.8
	// Workload: a handful of deliberate common identities (records at every
	// provider — the paper's "visited a large number of hospitals" victims)
	// plus a Zipf tail capped well below the common thresholds. Planting
	// the commons keeps the common set a small, known fraction of n, so
	// the ξ = 0.8 mixing target is feasible and the attack statistics are
	// stable.
	commonsPlanted := n / 40
	if commonsPlanted < 3 {
		commonsPlanted = 3
	}
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers:    m,
		Owners:       n,
		Exponent:     1.2,
		MaxFrequency: m / 25,
		Seed:         opts.Seed,
		EpsLow:       0.3,
		EpsHigh:      0.9,
	})
	if err != nil {
		return nil, err
	}
	for j := 0; j < commonsPlanted; j++ {
		for i := 0; i < m; i++ {
			d.Matrix.Set(i, j, true)
		}
	}

	table := &TableResult{
		ID:     "table2",
		Title:  "Privacy degrees under the two attacks (confidence averaged over constructions)",
		Header: []string{"system", "primary-conf(worst)", "primary-degree", "common-conf", "common-degree"},
	}

	// Ground truth commons per the ε-PPI threshold definition (needed to
	// score the common-identity attack for every system consistently).
	epCfg := core.Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, XiOverride: xi, Workers: opts.Workers}
	isCommon := make([]bool, n)
	commons := 0
	for j := 0; j < n; j++ {
		if uint64(d.Matrix.ColCount(j)) >= epCfg.Threshold(d.Eps[j], m) {
			isCommon[j] = true
			commons++
		}
	}
	if commons == 0 {
		return nil, fmt.Errorf("table2: workload produced no common identities; increase skew")
	}
	minCommonFreq := uint64(m)
	for j := 0; j < n; j++ {
		if isCommon[j] && uint64(d.Matrix.ColCount(j)) < minCommonFreq {
			minCommonFreq = uint64(d.Matrix.ColCount(j))
		}
	}

	// observe constructs one index (per repeat) and reports what the
	// attacker can see.
	type observation struct {
		published *bitmat.Matrix
		signal    []uint64
		threshold uint64
		xi        float64
		leakExact bool // frequencies leaked by design (SS-PPI), not inferred
	}
	addRow := func(system string, observe func(rep int) (*observation, error)) error {
		sumConf := make([]float64, n)
		var pickedTotal, trueTotal int
		var xiTarget float64
		leakExact := false
		for rep := 0; rep < repeats; rep++ {
			obs, err := observe(rep)
			if err != nil {
				return fmt.Errorf("%s repeat %d: %w", system, rep, err)
			}
			xiTarget = obs.xi
			leakExact = obs.leakExact
			for j := 0; j < n; j++ {
				c, err := attack.PrimaryConfidence(d.Matrix, obs.published, j)
				if err != nil {
					return err
				}
				sumConf[j] += c
			}
			commonRes, err := attack.CommonIdentityAttack(obs.signal, obs.threshold, isCommon)
			if err != nil {
				return err
			}
			pickedTotal += len(commonRes.Picked)
			trueTotal += commonRes.TrueCommons
		}
		anyPicked := pickedTotal > 0
		// Average per-identity primary confidence, excluding true commons.
		avgConf := make([]float64, 0, n)
		avgEps := make([]float64, 0, n)
		worst := 0.0 // worst guarantee excess carrier
		worstConf := 0.0
		for j := 0; j < n; j++ {
			if isCommon[j] {
				continue
			}
			c := sumConf[j] / float64(repeats)
			avgConf = append(avgConf, c)
			avgEps = append(avgEps, d.Eps[j])
			if excess := c - (1 - d.Eps[j]); excess > worst {
				worst = excess
				worstConf = c
			}
		}
		primaryDegree, err := attack.ClassifyPrimary(avgConf, avgEps, 0.05)
		if err != nil {
			return err
		}
		// Pooled confidence over all repeats: the ratio of successful to
		// attempted claims (the mean of per-run ratios would be biased
		// upward by Jensen's inequality on small published-common sets).
		commonConf := 0.0
		if pickedTotal > 0 {
			commonConf = float64(trueTotal) / float64(pickedTotal)
		}
		var commonDegree attack.Degree
		switch {
		case !anyPicked:
			commonDegree = attack.DegreeEpsilonPrivate // nothing identifiable
		case commonConf >= 1-1e-9 && leakExact:
			// Certain by construction: the system hands the attacker exact
			// frequencies (SS-PPI) — NO PROTECT on every dataset.
			commonDegree = attack.DegreeNoProtect
		case xiTarget > 0 && commonConf <= commonBound(xiTarget, commons, n)*1.25+1e-9:
			commonDegree = attack.DegreeEpsilonPrivate
		default:
			// Includes empirically-certain attacks on systems whose leak is
			// data-dependent (grouping): some datasets expose commons fully,
			// others do not — the paper's NO GUARANTEE.
			commonDegree = attack.DegreeNoGuarantee
		}
		table.Rows = append(table.Rows, []string{
			system,
			fmt.Sprintf("%.3f", worstConf),
			primaryDegree.String(),
			fmt.Sprintf("%.3f", commonConf),
			commonDegree.String(),
		})
		return nil
	}

	// Small groups (size 4, the paper's 2,500-group configuration scaled to
	// m) make the grouping baselines' weakness reproducible: rare
	// identities are diluted by only 3 noise providers, so high-ε owners
	// are left unprotected.
	groups := m / 4
	// Grouping PPI [12], [13]: the attacker reads the group-level index —
	// how many groups report each identity — and accuses the identities
	// with the maximal coverage (the paper's Appendix B scenario: the only
	// term reported "everywhere" is the true common one).
	if err := addRow("PPI (grouping)", func(rep int) (*observation, error) {
		gr, err := grouping.Construct(d.Matrix, grouping.Config{
			Groups: groups, Variant: grouping.VariantBawa, Seed: opts.Seed + int64(rep)*101,
		})
		if err != nil {
			return nil, err
		}
		signal := make([]uint64, n)
		var maxSignal uint64
		for j := 0; j < n; j++ {
			signal[j] = uint64(gr.GroupsReporting(j))
			if signal[j] > maxSignal {
				maxSignal = signal[j]
			}
		}
		return &observation{
			published: gr.Published,
			signal:    signal,
			threshold: maxSignal,
		}, nil
	}); err != nil {
		return nil, err
	}

	// SS-PPI [22]: grouping plus the construction-time frequency leak; the
	// attacker thresholds the exact leaked frequencies.
	if err := addRow("SS-PPI", func(rep int) (*observation, error) {
		ss, err := grouping.Construct(d.Matrix, grouping.Config{
			Groups: groups, Variant: grouping.VariantSSPPI, Seed: opts.Seed + int64(rep)*103,
		})
		if err != nil {
			return nil, err
		}
		return &observation{
			published: ss.Published,
			signal:    ss.LeakedFrequencies,
			threshold: minCommonFreq,
			leakExact: true,
		}, nil
	}); err != nil {
		return nil, err
	}

	// ε-PPI: the attacker reads published frequencies; hidden identities
	// appear everywhere, indistinguishably mixing true and false commons.
	if err := addRow("ε-PPI", func(rep int) (*observation, error) {
		cfg := epCfg
		cfg.Seed = opts.Seed + int64(rep)*107
		ep, err := core.Construct(d.Matrix, d.Eps, cfg)
		if err != nil {
			return nil, err
		}
		return &observation{
			published: ep.Published,
			signal:    attack.PublishedFrequencies(ep.Published),
			threshold: uint64(m),
			xi:        ep.Xi,
		}, nil
	}); err != nil {
		return nil, err
	}
	return table, nil
}

// commonBound is the achievable attacker-confidence bound for the
// common-identity attack: 1−ξ when feasible, else the broadcast floor
// C/n (with C true commons among n identities there can never be more
// than n−C impostors).
func commonBound(xi float64, commons, n int) float64 {
	bound := 1 - xi
	if floor := float64(commons) / float64(n); floor > bound {
		return floor
	}
	return bound
}

// SearchCost reports the query-time overhead that privacy noise imposes:
// the average number of providers a searcher must contact per query, for
// ε-PPI at several ε levels and for grouping PPIs at several group counts
// (the paper's Section V-A2 search-overhead discussion).
func SearchCost(opts Options) (*TableResult, error) {
	m, n := 2000, 100
	if opts.Quick {
		m, n = 400, 40
	}
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: m, Owners: n, Exponent: 1.1, MaxFrequency: m / 10, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	table := &TableResult{
		ID:     "searchcost",
		Title:  fmt.Sprintf("Average providers contacted per query (m=%d, n=%d)", m, n),
		Header: []string{"system", "avg-contacted", "true-avg", "overhead-factor"},
	}
	trueAvg := float64(d.Matrix.Count()) / float64(n)

	addSystem := func(label string, published *index.Server) error {
		// Drive the real QueryPPI path over every owner rather than reading
		// the aggregate SearchCost(): the sum of per-query fan-outs equals
		// Σ_j |column j| exactly, and the instrumented path populates the
		// fan-out histogram that eppi-bench snapshots.
		published.Instrument(opts.Metrics)
		total := 0
		for _, name := range d.Names {
			providers, err := published.Query(name)
			if err != nil {
				return fmt.Errorf("searchcost query %q: %w", name, err)
			}
			total += len(providers)
		}
		avg := float64(total) / float64(n)
		table.Rows = append(table.Rows, []string{
			label,
			fmt.Sprintf("%.1f", avg),
			fmt.Sprintf("%.1f", trueAvg),
			fmt.Sprintf("%.2f", avg/trueAvg),
		})
		return nil
	}

	for _, epsVal := range []float64{0.2, 0.5, 0.8} {
		res, err := core.Construct(d.Matrix, epsSlice(n, epsVal), core.Config{
			Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: opts.Seed + int64(epsVal*100), Workers: opts.Workers,
		})
		if err != nil {
			return nil, err
		}
		srv, err := index.NewServer(res.Published, d.Names)
		if err != nil {
			return nil, err
		}
		if err := addSystem(fmt.Sprintf("ε-PPI (ε=%.1f)", epsVal), srv); err != nil {
			return nil, err
		}
	}
	for _, groups := range []int{m / 100, m / 20, m / 4} {
		res, err := grouping.Construct(d.Matrix, grouping.Config{Groups: groups, Variant: grouping.VariantBawa, Seed: opts.Seed + int64(groups)})
		if err != nil {
			return nil, err
		}
		srv, err := index.NewServer(res.Published, d.Names)
		if err != nil {
			return nil, err
		}
		if err := addSystem(fmt.Sprintf("grouping (%d groups)", groups), srv); err != nil {
			return nil, err
		}
	}
	return table, nil
}
