// Package secretshare implements the additive (c, c) secret-sharing scheme
// over Z_q that underlies the ε-PPI SecSumShare protocol (Theorem 4.1 of the
// paper).
//
// A secret v ∈ Z_q is split into c shares whose sum is v mod q; the first
// c−1 shares are uniformly random, so any subset of at most c−1 shares is
// statistically independent of v (perfect secrecy). The scheme is additively
// homomorphic: summing the k-th shares of many secrets yields the k-th share
// of the sum, which is exactly what lets SecSumShare aggregate identity
// frequencies without ever reconstructing an individual provider's bit.
package secretshare

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/field"
)

var (
	// ErrBadShareCount reports c < 2; a single share would be the secret.
	ErrBadShareCount = errors.New("secretshare: share count c must be >= 2")
	// ErrEmpty reports an empty share set passed to Combine.
	ErrEmpty = errors.New("secretshare: no shares to combine")
	// ErrLengthMismatch reports vectors of unequal length.
	ErrLengthMismatch = errors.New("secretshare: share vector length mismatch")
)

// Scheme is a (c, c) additive sharing scheme over a prime field.
type Scheme struct {
	f field.Field
	c int
}

// New returns a scheme producing c shares over field f.
func New(f field.Field, c int) (Scheme, error) {
	if c < 2 {
		return Scheme{}, fmt.Errorf("%w: %d", ErrBadShareCount, c)
	}
	return Scheme{f: f, c: c}, nil
}

// MustNew is New but panics on invalid c; for tests and literals.
func MustNew(f field.Field, c int) Scheme {
	s, err := New(f, c)
	if err != nil {
		panic(err)
	}
	return s
}

// Field returns the underlying prime field.
func (s Scheme) Field() field.Field { return s.f }

// Shares returns c.
func (s Scheme) Shares() int { return s.c }

// Split decomposes secret v into c shares summing to v mod q. The first c−1
// shares are drawn uniformly from Z_q using rng; the last is the balancing
// term.
func (s Scheme) Split(rng *rand.Rand, v uint64) []uint64 {
	v = s.f.Reduce(v)
	shares := make([]uint64, s.c)
	var sum uint64
	for k := 0; k < s.c-1; k++ {
		shares[k] = s.f.Rand(rng)
		sum = s.f.Add(sum, shares[k])
	}
	shares[s.c-1] = s.f.Sub(v, sum)
	return shares
}

// Combine reconstructs the secret from exactly the full share set.
func (s Scheme) Combine(shares []uint64) (uint64, error) {
	if len(shares) == 0 {
		return 0, ErrEmpty
	}
	if len(shares) != s.c {
		return 0, fmt.Errorf("secretshare: got %d shares, need %d", len(shares), s.c)
	}
	return s.f.Sum(shares), nil
}

// AddVectors returns the element-wise modular sum of two share vectors;
// the additive-homomorphism primitive used when coordinators aggregate
// super-shares.
func (s Scheme) AddVectors(a, b []uint64) ([]uint64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	out := make([]uint64, len(a))
	for i := range a {
		out[i] = s.f.Add(s.f.Reduce(a[i]), s.f.Reduce(b[i]))
	}
	return out, nil
}

// SumVectors folds AddVectors over a set of share vectors (at least one).
func (s Scheme) SumVectors(vectors [][]uint64) ([]uint64, error) {
	if len(vectors) == 0 {
		return nil, ErrEmpty
	}
	acc := make([]uint64, len(vectors[0]))
	for i, v := range vectors[0] {
		acc[i] = s.f.Reduce(v)
	}
	for _, vec := range vectors[1:] {
		var err error
		acc, err = s.AddVectors(acc, vec)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}
