package secretshare

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
)

func TestNewValidation(t *testing.T) {
	f := field.Default()
	if _, err := New(f, 1); err == nil {
		t.Error("c=1 accepted")
	}
	if _, err := New(f, 0); err == nil {
		t.Error("c=0 accepted")
	}
	s, err := New(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shares() != 3 {
		t.Errorf("Shares = %d", s.Shares())
	}
	if s.Field().Modulus() != f.Modulus() {
		t.Error("Field modulus mismatch")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNew(field.Default(), 1)
}

// Recoverability (Theorem 4.1): Combine(Split(v)) == v for all v.
func TestSplitCombineQuick(t *testing.T) {
	f := field.Default()
	rng := rand.New(rand.NewSource(11))
	for _, c := range []int{2, 3, 5, 16} {
		s := MustNew(f, c)
		prop := func(raw uint64) bool {
			v := f.Reduce(raw)
			shares := s.Split(rng, v)
			if len(shares) != c {
				return false
			}
			for _, sh := range shares {
				if !f.Valid(sh) {
					return false
				}
			}
			got, err := s.Combine(shares)
			return err == nil && got == v
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("c=%d: %v", c, err)
		}
	}
}

func TestCombineErrors(t *testing.T) {
	s := MustNew(field.Default(), 3)
	if _, err := s.Combine(nil); err == nil {
		t.Error("empty shares accepted")
	}
	if _, err := s.Combine([]uint64{1, 2}); err == nil {
		t.Error("short share set accepted")
	}
	if _, err := s.Combine([]uint64{1, 2, 3, 4}); err == nil {
		t.Error("long share set accepted")
	}
}

// Secrecy (Theorem 4.1): any c-1 shares of a fixed secret are uniform —
// statistically, each partial share's low bits look unbiased and two
// different secrets produce indistinguishable marginal distributions.
func TestPartialSharesUniform(t *testing.T) {
	f := field.MustNew(257) // small field so chi-square has power
	s := MustNew(f, 3)
	rng := rand.New(rand.NewSource(12))

	countsSecretA := make([]int, 257)
	countsSecretB := make([]int, 257)
	const draws = 257 * 200
	for i := 0; i < draws; i++ {
		countsSecretA[s.Split(rng, 7)[0]]++
		countsSecretB[s.Split(rng, 250)[0]]++
	}
	chiA := chiSquare(countsSecretA, draws)
	chiB := chiSquare(countsSecretB, draws)
	// 256 dof: mean 256, sd ~22.6; 400 is ~6 sigma.
	if chiA > 400 || chiB > 400 {
		t.Fatalf("first share not uniform: chiA=%v chiB=%v", chiA, chiB)
	}
}

// The sum of any proper subset of shares must also be uniform (else the
// last balancing share would leak).
func TestSubsetSumUniform(t *testing.T) {
	f := field.MustNew(101)
	s := MustNew(f, 4)
	rng := rand.New(rand.NewSource(13))
	counts := make([]int, 101)
	const draws = 101 * 200
	for i := 0; i < draws; i++ {
		sh := s.Split(rng, 42)
		subset := f.Add(f.Add(sh[0], sh[1]), sh[3]) // 3 of 4 shares
		counts[subset]++
	}
	if chi := chiSquare(counts, draws); chi > 200 {
		t.Fatalf("3-share subset sum not uniform: chi=%v (100 dof)", chi)
	}
}

func chiSquare(counts []int, total int) float64 {
	expected := float64(total) / float64(len(counts))
	var chi float64
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	return chi
}

// Additive homomorphism: share-wise sums reconstruct the sum of secrets.
func TestHomomorphismQuick(t *testing.T) {
	f := field.Default()
	s := MustNew(f, 3)
	rng := rand.New(rand.NewSource(14))
	prop := func(a, b, c uint64) bool {
		secrets := []uint64{f.Reduce(a), f.Reduce(b), f.Reduce(c)}
		perParty := make([][]uint64, 3) // perParty[k][i] = share k of secret i
		for k := range perParty {
			perParty[k] = make([]uint64, len(secrets))
		}
		for i, v := range secrets {
			sh := s.Split(rng, v)
			for k := range sh {
				perParty[k][i] = sh[k]
			}
		}
		summed, err := s.SumVectors(perParty)
		if err != nil {
			return false
		}
		// SumVectors folded across parties? No: fold share-wise sums then
		// combine. Each element of `summed` is Σ_k share_k of secret i?
		// perParty rows are per-share-index vectors over secrets; summing the
		// rows gives, per secret, the sum of all its shares = the secret.
		for i, v := range secrets {
			if summed[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddVectors(t *testing.T) {
	f := field.MustNew(7)
	s := MustNew(f, 2)
	got, err := s.AddVectors([]uint64{6, 3, 0}, []uint64{5, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{4, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AddVectors[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if _, err := s.AddVectors([]uint64{1}, []uint64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSumVectorsErrors(t *testing.T) {
	s := MustNew(field.Default(), 2)
	if _, err := s.SumVectors(nil); err == nil {
		t.Error("empty vector set accepted")
	}
	if _, err := s.SumVectors([][]uint64{{1, 2}, {1}}); err == nil {
		t.Error("ragged vectors accepted")
	}
}

// Simulates the paper's Figure 3 numbers: q=5, c=3, five providers with
// bits 0,1,1,0,0 — total frequency must reconstruct to 2.
func TestPaperFigure3Scenario(t *testing.T) {
	f := field.MustNew(5)
	s := MustNew(f, 3)
	rng := rand.New(rand.NewSource(15))
	bits := []uint64{0, 1, 1, 0, 0}
	perShare := make([][]uint64, 3)
	for k := range perShare {
		perShare[k] = make([]uint64, len(bits))
	}
	for i, b := range bits {
		sh := s.Split(rng, b)
		for k := range sh {
			perShare[k][i] = sh[k]
		}
	}
	// Coordinator k holds Σ_i perShare[k][i]; total of coordinators = Σ bits.
	var total uint64
	for k := 0; k < 3; k++ {
		total = f.Add(total, f.Sum(perShare[k]))
	}
	if total != 2 {
		t.Fatalf("reconstructed frequency = %d, want 2", total)
	}
}

func TestSplitDistributionNotConstant(t *testing.T) {
	// Regression guard: Split must actually randomise, not return v,0,0...
	s := MustNew(field.Default(), 3)
	rng := rand.New(rand.NewSource(16))
	a := s.Split(rng, 9)
	b := s.Split(rng, 9)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("two Splits of the same secret produced identical shares")
	}
}

func TestUniformityAcrossSecretValues(t *testing.T) {
	// Distribution of share[0] must not depend on the secret: compare
	// empirical means for two extreme secrets.
	f := field.MustNew(1009)
	s := MustNew(f, 2)
	rng := rand.New(rand.NewSource(17))
	meanFor := func(secret uint64) float64 {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(s.Split(rng, secret)[0])
		}
		return sum / n
	}
	m0, m1 := meanFor(0), meanFor(1008)
	if math.Abs(m0-m1) > 25 { // both should be ≈504
		t.Fatalf("share mean depends on secret: %v vs %v", m0, m1)
	}
}

func BenchmarkSplit(b *testing.B) {
	s := MustNew(field.Default(), 3)
	rng := rand.New(rand.NewSource(18))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Split(rng, uint64(i))
	}
}
