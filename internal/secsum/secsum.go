// Package secsum implements SecSumShare, the parallel secure-sum protocol
// of Section IV-B1 of the ε-PPI paper.
//
// Given m providers each holding a private boolean vector over n identities,
// the protocol outputs c share vectors s(0,·)…s(c−1,·), held by c
// coordinator providers, such that for every identity j:
//
//	Σ_k s(k, j) mod q  =  Σ_i M(i, j)   (the identity's frequency)
//
// No party learns any other party's input ((2c−3)-secrecy), and fewer than
// all c coordinator vectors reveal nothing about any frequency (c-secrecy,
// Theorem 4.1). The protocol runs in two constant-size communication rounds:
//
//  1. share distribution — provider i splits each input bit into c
//     additive shares and sends the k-th share to successor (i+k) mod m;
//  2. super-share aggregation — each provider sums the shares it received
//     into a super-share vector and sends it to coordinator (i mod c).
package secsum

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/secretshare"
	"repro/internal/trace"
	"repro/internal/transport"
)

var (
	// ErrTooFewProviders reports m < c: the ring cannot host c distinct
	// share destinations per provider.
	ErrTooFewProviders = errors.New("secsum: need at least c providers")
	// ErrInputShape reports malformed provider inputs.
	ErrInputShape = errors.New("secsum: malformed inputs")
)

// Result carries the protocol output and execution accounting.
type Result struct {
	// CoordinatorShares[k] is the share vector s(k, ·) held by coordinator
	// provider k, one element per identity.
	CoordinatorShares [][]uint64
	// Rounds is the number of sequential communication rounds (always 2).
	Rounds int
	// Stats is the transport traffic consumed by this run.
	Stats transport.Stats
}

// Run executes SecSumShare over net. inputs[i] is provider i's private
// vector (one value per identity; for ε-PPI these are 0/1 membership bits,
// but any field elements sum correctly). The scheme fixes c and the field.
//
// Run drives all m providers as goroutines over the supplied network; it is
// used with the in-memory transport for simulation and with the TCP
// transport for realistic distributed runs.
func Run(net transport.Network, scheme secretshare.Scheme, inputs [][]uint64, seed int64) (*Result, error) {
	m := net.Size()
	c := scheme.Shares()
	if m < c {
		return nil, fmt.Errorf("%w: m=%d c=%d", ErrTooFewProviders, m, c)
	}
	if len(inputs) != m {
		return nil, fmt.Errorf("%w: %d input vectors for %d providers", ErrInputShape, len(inputs), m)
	}
	numIDs := len(inputs[0])
	for i, in := range inputs {
		if len(in) != numIDs {
			return nil, fmt.Errorf("%w: provider %d has %d identities, provider 0 has %d",
				ErrInputShape, i, len(in), numIDs)
		}
	}

	// Phase timers report through whatever registry the caller attached to
	// the network (transport.Instrument); with no registry every instrument
	// is a nil no-op. Likewise, phase spans hang under whatever span the
	// caller attached (transport.AttachSpan); party 0 records them as the
	// representative provider (it plays every role, coordinator included).
	tm := newTimers(transport.RegistryOf(net))
	tm.runs.Inc()
	runSpan := transport.SpanOf(net)
	runSpan.SetAttrs(trace.Int("parties", m), trace.Int("identities", numIDs), trace.Int("rounds", 2))
	before := net.Stats()
	coordShares := make([][]uint64, c)
	errs := make([]error, m)
	// On the first party failure the network is closed so that peers
	// blocked in Recv fail fast instead of hanging on a peer that will
	// never send (crashed node, dropped message).
	var failOnce sync.Once
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sp *trace.Span
			if i == 0 {
				sp = runSpan
			}
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			shares, err := runProvider(net.Node(i), scheme, inputs[i], rng, tm, sp)
			if err != nil {
				errs[i] = fmt.Errorf("provider %d: %w", i, err)
				failOnce.Do(func() { net.Close() })
				return
			}
			if shares != nil {
				coordShares[i] = shares
			}
		}(i)
	}
	wg.Wait()
	// Report a real protocol error in preference to the cascade of
	// closed-network errors it triggers.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (errors.Is(firstErr, transport.ErrClosed) && !errors.Is(err, transport.ErrClosed)) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	after := net.Stats()
	tm.rounds.Add(2)
	return &Result{
		CoordinatorShares: coordShares,
		Rounds:            2,
		Stats: transport.Stats{
			Messages: after.Messages - before.Messages,
			Bytes:    after.Bytes - before.Bytes,
		},
	}, nil
}

// timers groups the per-phase instruments of one Run. The zero value (all
// nil) no-ops, so uninstrumented networks cost nothing but the time reads.
type timers struct {
	runs       *metrics.Counter
	rounds     *metrics.Counter
	distribute *metrics.Histogram
	aggregate  *metrics.Histogram
	coordinate *metrics.Histogram
}

func newTimers(reg *metrics.Registry) *timers {
	const name = "eppi_secsum_phase_seconds"
	const help = "Per-provider wall time of each SecSumShare phase."
	return &timers{
		runs:       reg.Counter("eppi_secsum_runs_total", "SecSumShare protocol executions."),
		rounds:     reg.Counter("eppi_secsum_rounds_total", "Sequential communication rounds across all SecSumShare runs."),
		distribute: reg.Histogram(name, help, metrics.DefDurationBuckets, metrics.L("phase", "distribute")),
		aggregate:  reg.Histogram(name, help, metrics.DefDurationBuckets, metrics.L("phase", "aggregate")),
		coordinate: reg.Histogram(name, help, metrics.DefDurationBuckets, metrics.L("phase", "coordinate")),
	}
}

// runProvider executes one provider's role. Coordinators (id < c) return
// their aggregated share vector; other providers return nil. sp, when
// non-nil (party 0), parents per-phase child spans.
func runProvider(node transport.Node, scheme secretshare.Scheme, input []uint64, rng *rand.Rand, tm *timers, sp *trace.Span) ([]uint64, error) {
	m := node.Size()
	c := scheme.Shares()
	f := scheme.Field()
	numIDs := len(input)
	id := node.ID()

	phaseStart := time.Now()
	phaseSpan := sp.Child("secsum.distribute")
	// Step 1: generate shares. perDest[k][j] is the k-th share of input[j],
	// destined for successor (id+k) mod m; k=0 stays local.
	perDest := make([][]uint64, c)
	for k := range perDest {
		perDest[k] = make([]uint64, numIDs)
	}
	for j, v := range input {
		sh := scheme.Split(rng, v)
		for k := range sh {
			perDest[k][j] = sh[k]
		}
	}

	// Step 2: distribute shares k=1..c-1 to the next c-1 neighbours.
	for k := 1; k < c; k++ {
		dest := (id + k) % m
		msg := transport.Message{Kind: transport.KindShare, Seq: uint32(k), Data: perDest[k]}
		if err := node.Send(dest, msg); err != nil {
			return nil, fmt.Errorf("send share %d: %w", k, err)
		}
	}

	tm.distribute.ObserveSince(phaseStart)
	phaseSpan.End()
	phaseStart = time.Now()
	phaseSpan = sp.Child("secsum.aggregate")

	// Step 3: receive c-1 share vectors from predecessors and fold them,
	// together with the locally kept k=0 share, into the super-share.
	coll := transport.NewCollector(node)
	super := perDest[0]
	for k := 1; k < c; k++ {
		msg, err := coll.RecvKind(transport.KindShare, uint32(k))
		if err != nil {
			return nil, fmt.Errorf("recv share %d: %w", k, err)
		}
		if wantFrom := ((id-k)%m + m) % m; msg.From != wantFrom {
			return nil, fmt.Errorf("share %d from party %d, want %d", k, msg.From, wantFrom)
		}
		if len(msg.Data) != numIDs {
			return nil, fmt.Errorf("share %d has %d elements, want %d", k, len(msg.Data), numIDs)
		}
		var err2 error
		super, err2 = scheme.AddVectors(super, msg.Data)
		if err2 != nil {
			return nil, err2
		}
		// The received vector is folded in and exclusively ours; recycle it.
		transport.PutWords(msg.Data)
	}

	// Step 4: ship the super-share to coordinator (id mod c).
	coordID := id % c
	msg := transport.Message{Kind: transport.KindSuperShare, Data: super}
	if err := node.Send(coordID, msg); err != nil {
		return nil, fmt.Errorf("send super-share: %w", err)
	}
	tm.aggregate.ObserveSince(phaseStart)
	phaseSpan.End()

	if id >= c {
		return nil, nil
	}
	phaseStart = time.Now()
	defer tm.coordinate.ObserveSince(phaseStart)
	phaseSpan = sp.Child("secsum.coordinate")
	defer phaseSpan.End()

	// Coordinator role: gather super-shares from every provider p with
	// p mod c == id (including our own, sent above) and sum them.
	expected := 0
	for p := id; p < m; p += c {
		expected++
	}
	gathered, err := coll.GatherKind(transport.KindSuperShare, 0, expected)
	if err != nil {
		return nil, fmt.Errorf("gather super-shares: %w", err)
	}
	acc := make([]uint64, numIDs)
	for from, gm := range gathered {
		if from%c != id {
			return nil, fmt.Errorf("super-share from party %d not assigned to coordinator %d", from, id)
		}
		if len(gm.Data) != numIDs {
			return nil, fmt.Errorf("super-share from %d has %d elements, want %d", from, len(gm.Data), numIDs)
		}
		for j, v := range gm.Data {
			acc[j] = f.Add(acc[j], f.Reduce(v))
		}
		transport.PutWords(gm.Data)
	}
	return acc, nil
}

// Frequencies reconstructs per-identity frequencies from the c coordinator
// share vectors. It exists for tests and for the *trusted-aggregate*
// construction path; the secure path never reconstructs frequencies outside
// the CountBelow circuit.
func Frequencies(scheme secretshare.Scheme, coordShares [][]uint64) ([]uint64, error) {
	c := scheme.Shares()
	if len(coordShares) != c {
		return nil, fmt.Errorf("secsum: %d coordinator vectors, want %d", len(coordShares), c)
	}
	if c == 0 || len(coordShares[0]) == 0 {
		return nil, nil
	}
	f := scheme.Field()
	n := len(coordShares[0])
	out := make([]uint64, n)
	for k, vec := range coordShares {
		if len(vec) != n {
			return nil, fmt.Errorf("secsum: coordinator %d vector length %d, want %d", k, len(vec), n)
		}
		for j, v := range vec {
			out[j] = f.Add(out[j], f.Reduce(v))
		}
	}
	return out, nil
}
