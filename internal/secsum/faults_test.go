package secsum

import (
	"testing"
	"time"

	"repro/internal/transport"
)

// Fault-injection tests: the protocol must fail loudly — returning an
// error in bounded time — when the network misbehaves, never hang and
// never deliver a wrong sum silently... except that pure payload
// corruption is indistinguishable from a different random share (additive
// shares carry no redundancy), which is exactly the semi-honest model's
// boundary: integrity against active tampering requires authenticated
// sharing, out of the paper's scope.

func runWithDeadline(t *testing.T, name string, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatalf("%s: protocol hung", name)
		return nil
	}
}

func TestCrashedProviderFailsFast(t *testing.T) {
	s := scheme(t, 10007, 3)
	inner, err := transport.NewInMem(5)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewFaulty(inner, transport.FaultPlan{FailSendFrom: map[int]bool{2: true}})
	defer net.Close()
	inputs := [][]uint64{{1}, {0}, {1}, {0}, {1}}
	err = runWithDeadline(t, "crashed provider", func() error {
		_, e := Run(net, s, inputs, 1)
		return e
	})
	if err == nil {
		t.Fatal("protocol succeeded despite crashed provider")
	}
}

func TestDroppedMessagesFailFast(t *testing.T) {
	s := scheme(t, 10007, 3)
	inner, err := transport.NewInMem(6)
	if err != nil {
		t.Fatal(err)
	}
	// Drop everything: every provider will wait for shares that never
	// arrive; the run must abort once any party errors (send never errors
	// on drop, so the unblocking comes from the test closing the network).
	net := transport.NewFaulty(inner, transport.FaultPlan{DropRate: 1, Seed: 2})
	inputs := make([][]uint64, 6)
	for i := range inputs {
		inputs[i] = []uint64{1}
	}
	done := make(chan error, 1)
	go func() {
		_, e := Run(net, s, inputs, 3)
		done <- e
	}()
	// Give the protocol a moment to wedge, then close the network: Run
	// must return an error promptly rather than leak its goroutines.
	time.Sleep(50 * time.Millisecond)
	net.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("protocol succeeded with all messages dropped")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("protocol hung after network close")
	}
}

func TestCorruptedShareStillSums(t *testing.T) {
	// Corruption of a share message changes the reconstructed sum but is
	// undetectable by design (additive shares are uniform); this test
	// documents the boundary: the protocol completes and the result is
	// (almost surely) wrong.
	s := scheme(t, 104729, 3)
	inner, err := transport.NewInMem(5)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewFaulty(inner, transport.FaultPlan{CorruptRate: 1, Seed: 4})
	defer net.Close()
	inputs := [][]uint64{{1}, {1}, {1}, {1}, {1}}
	res, err := Run(net, s, inputs, 5)
	if err != nil {
		t.Fatalf("semi-honest protocol should complete under corruption: %v", err)
	}
	freqs, err := Frequencies(s, res.CoordinatorShares)
	if err != nil {
		t.Fatal(err)
	}
	if freqs[0] == 5 {
		t.Log("corrupted run coincidentally produced the true sum (probability ~1/q)")
	}
}
