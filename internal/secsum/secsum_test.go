package secsum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/secretshare"
	"repro/internal/transport"
)

func scheme(t testing.TB, q uint64, c int) secretshare.Scheme {
	t.Helper()
	f, err := field.New(q)
	if err != nil {
		t.Fatal(err)
	}
	s, err := secretshare.New(f, c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runInMem(t testing.TB, s secretshare.Scheme, inputs [][]uint64, seed int64) *Result {
	t.Helper()
	net, err := transport.NewInMem(len(inputs))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	res, err := Run(net, s, inputs, seed)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The paper's Figure 3 example: q=5, c=3, five providers with membership
// bits 0,1,1,0,0 for identity t0; the coordinator shares must sum to 2.
func TestPaperFigure3(t *testing.T) {
	s := scheme(t, 5, 3)
	inputs := [][]uint64{{0}, {1}, {1}, {0}, {0}}
	res := runInMem(t, s, inputs, 1)
	if len(res.CoordinatorShares) != 3 {
		t.Fatalf("got %d coordinator vectors", len(res.CoordinatorShares))
	}
	freqs, err := Frequencies(s, res.CoordinatorShares)
	if err != nil {
		t.Fatal(err)
	}
	if freqs[0] != 2 {
		t.Fatalf("frequency = %d, want 2", freqs[0])
	}
	if res.Rounds != 2 {
		t.Fatalf("Rounds = %d, want 2", res.Rounds)
	}
}

func TestMultiIdentity(t *testing.T) {
	s := scheme(t, 10007, 3)
	m, n := 10, 20
	rng := rand.New(rand.NewSource(2))
	inputs := make([][]uint64, m)
	want := make([]uint64, n)
	for i := range inputs {
		inputs[i] = make([]uint64, n)
		for j := range inputs[i] {
			if rng.Intn(2) == 1 {
				inputs[i][j] = 1
				want[j]++
			}
		}
	}
	res := runInMem(t, s, inputs, 3)
	freqs, err := Frequencies(s, res.CoordinatorShares)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if freqs[j] != want[j] {
			t.Fatalf("identity %d: frequency %d, want %d", j, freqs[j], want[j])
		}
	}
}

func TestVaryCAndM(t *testing.T) {
	for _, c := range []int{2, 3, 5} {
		for _, m := range []int{c, c + 1, 2 * c, 17} {
			if m < c {
				continue
			}
			s := scheme(t, 104729, c)
			rng := rand.New(rand.NewSource(int64(c*100 + m)))
			n := 5
			inputs := make([][]uint64, m)
			want := make([]uint64, n)
			for i := range inputs {
				inputs[i] = make([]uint64, n)
				for j := range inputs[i] {
					v := uint64(rng.Intn(2))
					inputs[i][j] = v
					want[j] += v
				}
			}
			res := runInMem(t, s, inputs, int64(m))
			freqs, err := Frequencies(s, res.CoordinatorShares)
			if err != nil {
				t.Fatalf("c=%d m=%d: %v", c, m, err)
			}
			for j := range want {
				if freqs[j] != want[j] {
					t.Fatalf("c=%d m=%d identity %d: got %d want %d", c, m, j, freqs[j], want[j])
				}
			}
		}
	}
}

func TestMessageComplexity(t *testing.T) {
	// Each provider sends c-1 share messages and 1 super-share message:
	// total m·c messages on the wire.
	c, m := 3, 12
	s := scheme(t, 101, c)
	inputs := make([][]uint64, m)
	for i := range inputs {
		inputs[i] = []uint64{uint64(i % 2)}
	}
	res := runInMem(t, s, inputs, 4)
	if want := uint64(m * c); res.Stats.Messages != want {
		t.Fatalf("Messages = %d, want %d", res.Stats.Messages, want)
	}
}

func TestErrors(t *testing.T) {
	s := scheme(t, 101, 3)
	net, err := transport.NewInMem(2) // m < c
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if _, err := Run(net, s, [][]uint64{{1}, {0}}, 1); err == nil {
		t.Fatal("m < c accepted")
	}

	net3, err := transport.NewInMem(3)
	if err != nil {
		t.Fatal(err)
	}
	defer net3.Close()
	if _, err := Run(net3, s, [][]uint64{{1}, {0}}, 1); err == nil {
		t.Fatal("wrong input count accepted")
	}
	if _, err := Run(net3, s, [][]uint64{{1}, {0, 1}, {0}}, 1); err == nil {
		t.Fatal("ragged inputs accepted")
	}
}

func TestZeroIdentities(t *testing.T) {
	s := scheme(t, 101, 2)
	inputs := [][]uint64{{}, {}, {}}
	res := runInMem(t, s, inputs, 5)
	freqs, err := Frequencies(s, res.CoordinatorShares)
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != 0 {
		t.Fatalf("freqs = %v, want empty", freqs)
	}
}

func TestFrequenciesValidation(t *testing.T) {
	s := scheme(t, 101, 3)
	if _, err := Frequencies(s, [][]uint64{{1}}); err == nil {
		t.Fatal("short coordinator set accepted")
	}
	if _, err := Frequencies(s, [][]uint64{{1}, {1, 2}, {1}}); err == nil {
		t.Fatal("ragged coordinator vectors accepted")
	}
}

// Secrecy smoke test: a single coordinator's share vector must not be a
// deterministic function of the inputs (it is masked by other providers'
// randomness). Two runs with different seeds must (almost surely) differ.
func TestCoordinatorSharesLookRandom(t *testing.T) {
	s := scheme(t, 104729, 3)
	inputs := [][]uint64{{1, 0, 1}, {0, 0, 1}, {1, 1, 1}, {0, 0, 0}, {1, 0, 0}}
	a := runInMem(t, s, inputs, 100)
	b := runInMem(t, s, inputs, 200)
	same := true
	for j := range a.CoordinatorShares[0] {
		if a.CoordinatorShares[0][j] != b.CoordinatorShares[0][j] {
			same = false
		}
	}
	if same {
		t.Fatal("coordinator 0's vector identical across independent runs")
	}
	// But the reconstructed sums must agree.
	fa, _ := Frequencies(s, a.CoordinatorShares)
	fb, _ := Frequencies(s, b.CoordinatorShares)
	for j := range fa {
		if fa[j] != fb[j] {
			t.Fatal("frequencies differ across runs")
		}
	}
}

// Property: for random small networks the protocol always reproduces the
// plaintext column sums.
func TestProtocolCorrectQuick(t *testing.T) {
	s := scheme(t, 10007, 3)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(10)
		n := 1 + rng.Intn(8)
		inputs := make([][]uint64, m)
		want := make([]uint64, n)
		for i := range inputs {
			inputs[i] = make([]uint64, n)
			for j := range inputs[i] {
				v := uint64(rng.Intn(2))
				inputs[i][j] = v
				want[j] += v
			}
		}
		net, err := transport.NewInMem(m)
		if err != nil {
			return false
		}
		defer net.Close()
		res, err := Run(net, s, inputs, seed)
		if err != nil {
			return false
		}
		freqs, err := Frequencies(s, res.CoordinatorShares)
		if err != nil {
			return false
		}
		for j := range want {
			if freqs[j] != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The protocol must also work over real TCP.
func TestOverTCP(t *testing.T) {
	s := scheme(t, 10007, 3)
	m, n := 6, 4
	rng := rand.New(rand.NewSource(6))
	inputs := make([][]uint64, m)
	want := make([]uint64, n)
	for i := range inputs {
		inputs[i] = make([]uint64, n)
		for j := range inputs[i] {
			v := uint64(rng.Intn(2))
			inputs[i][j] = v
			want[j] += v
		}
	}
	net, err := transport.NewTCP(m)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	res, err := Run(net, s, inputs, 7)
	if err != nil {
		t.Fatal(err)
	}
	freqs, err := Frequencies(s, res.CoordinatorShares)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if freqs[j] != want[j] {
			t.Fatalf("identity %d: got %d want %d", j, freqs[j], want[j])
		}
	}
}

func BenchmarkSecSumShare100x64(b *testing.B) {
	f := field.Default()
	s, err := secretshare.New(f, 3)
	if err != nil {
		b.Fatal(err)
	}
	m, n := 100, 64
	rng := rand.New(rand.NewSource(8))
	inputs := make([][]uint64, m)
	for i := range inputs {
		inputs[i] = make([]uint64, n)
		for j := range inputs[i] {
			inputs[i][j] = uint64(rng.Intn(2))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := transport.NewInMem(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(net, s, inputs, int64(i)); err != nil {
			b.Fatal(err)
		}
		net.Close()
	}
}

// TestMetricsWiring checks that Run reports phase timers and traffic
// through a registry attached to the network with transport.Instrument.
func TestMetricsWiring(t *testing.T) {
	s := scheme(t, 65537, 3)
	inputs := [][]uint64{{1, 0}, {0, 1}, {1, 1}, {0, 0}}
	net, err := transport.NewInMem(len(inputs))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	reg := metrics.NewRegistry()
	transport.Instrument(net, reg)
	res, err := Run(net, s, inputs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("eppi_secsum_runs_total", "").Value(); got != 1 {
		t.Fatalf("runs_total = %d, want 1", got)
	}
	if got := reg.Counter("eppi_secsum_rounds_total", "").Value(); got != 2 {
		t.Fatalf("rounds_total = %d, want 2", got)
	}
	for _, phase := range []string{"distribute", "aggregate", "coordinate"} {
		h := reg.Histogram("eppi_secsum_phase_seconds", "", nil, metrics.L("phase", phase))
		want := uint64(len(inputs))
		if phase == "coordinate" {
			want = 3 // only the c coordinators gather
		}
		if h.Count() != want {
			t.Errorf("phase %q observed %d times, want %d", phase, h.Count(), want)
		}
	}
	if got := reg.Counter("eppi_transport_messages_total", "").Value(); got != res.Stats.Messages {
		t.Fatalf("registry saw %d messages, Stats %d", got, res.Stats.Messages)
	}
	if got := reg.Counter("eppi_transport_bytes_total", "").Value(); got != res.Stats.Bytes {
		t.Fatalf("registry saw %d bytes, Stats %d", got, res.Stats.Bytes)
	}
}
