// Package field implements arithmetic in the prime field Z_q used by the
// ε-PPI secret-sharing and secure-sum protocols.
//
// The modulus q must be a prime larger than any secret the protocols sum;
// for ε-PPI the secrets are identity frequencies bounded by the number of
// providers m, so any prime q > m suffices. Elements are represented as
// uint64 values in [0, q).
package field

import (
	"errors"
	"fmt"
	"math/rand"
)

// DefaultModulus is a 61-bit Mersenne prime (2^61 - 1). It is large enough
// for any realistic provider count while keeping products of two elements
// inside the 128-bit range handled by mulmod.
const DefaultModulus uint64 = (1 << 61) - 1

// ErrNotPrime reports that a requested modulus failed the primality check.
var ErrNotPrime = errors.New("field: modulus is not prime")

// Field describes arithmetic modulo a fixed prime q.
type Field struct {
	q uint64
}

// New returns a Field with modulus q. It returns ErrNotPrime if q is not a
// prime number, because secrecy of the additive sharing relies on Z_q being
// a field (every nonzero element invertible, uniform distribution closed
// under addition).
func New(q uint64) (Field, error) {
	if q < 2 || !IsPrime(q) {
		return Field{}, fmt.Errorf("%w: %d", ErrNotPrime, q)
	}
	return Field{q: q}, nil
}

// NewAdditive returns a Field over an arbitrary modulus q >= 2, for use as
// an *additive group* Z_q only. Additive secret sharing is perfectly secret
// over any finite abelian group, so the SecSumShare/GMW pipeline uses
// q = 2^k (modular reduction is free in boolean circuits). Multiplicative
// operations (Inv) are not meaningful for composite q and must not be used
// on fields constructed this way.
func NewAdditive(q uint64) (Field, error) {
	if q < 2 {
		return Field{}, fmt.Errorf("field: additive modulus %d must be >= 2", q)
	}
	return Field{q: q}, nil
}

// MustNew is like New but panics on an invalid modulus. It is intended for
// package-level constants and tests where the modulus is a verified literal.
func MustNew(q uint64) Field {
	f, err := New(q)
	if err != nil {
		panic(err)
	}
	return f
}

// Default returns the field with DefaultModulus.
func Default() Field {
	return Field{q: DefaultModulus}
}

// Modulus returns q.
func (f Field) Modulus() uint64 { return f.q }

// Valid reports whether x is a canonical representative in [0, q).
func (f Field) Valid(x uint64) bool { return x < f.q }

// Reduce maps an arbitrary uint64 into [0, q).
func (f Field) Reduce(x uint64) uint64 { return x % f.q }

// Add returns (a + b) mod q. Inputs must be canonical.
func (f Field) Add(a, b uint64) uint64 {
	// a, b < q <= 2^63 so a+b cannot overflow uint64 for q <= 2^63.
	s := a + b
	if s >= f.q || s < a {
		s -= f.q
	}
	return s
}

// Sub returns (a - b) mod q. Inputs must be canonical.
func (f Field) Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + (f.q - b)
}

// Neg returns -a mod q.
func (f Field) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return f.q - a
}

// Mul returns (a * b) mod q using 128-bit intermediate arithmetic.
func (f Field) Mul(a, b uint64) uint64 {
	return mulmod(a, b, f.q)
}

// Pow returns a^e mod q by square-and-multiply.
func (f Field) Pow(a, e uint64) uint64 {
	result := uint64(1 % f.q)
	base := a % f.q
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a (a != 0) via Fermat's little
// theorem: a^(q-2) mod q.
func (f Field) Inv(a uint64) (uint64, error) {
	if a%f.q == 0 {
		return 0, errors.New("field: zero has no inverse")
	}
	return f.Pow(a, f.q-2), nil
}

// Rand returns a uniformly random canonical element drawn from rng.
func (f Field) Rand(rng *rand.Rand) uint64 {
	// Uint64N-style rejection sampling for uniformity.
	max := ^uint64(0) - (^uint64(0) % f.q)
	for {
		v := rng.Uint64()
		if v < max {
			return v % f.q
		}
	}
}

// Sum returns the canonical sum of xs mod q.
func (f Field) Sum(xs []uint64) uint64 {
	var acc uint64
	for _, x := range xs {
		acc = f.Add(acc, f.Reduce(x))
	}
	return acc
}

// mulmod computes (a*b) mod m without overflow using math/bits-free 128-bit
// decomposition (schoolbook on 32-bit halves).
func mulmod(a, b, m uint64) uint64 {
	a %= m
	b %= m
	var result uint64
	for b > 0 {
		if b&1 == 1 {
			result = addmod(result, a, m)
		}
		a = addmod(a, a, m)
		b >>= 1
	}
	return result
}

func addmod(a, b, m uint64) uint64 {
	// a, b < m <= 2^63-ish: detect wrap explicitly to stay safe for any m.
	s := a + b
	if s < a || s >= m {
		s -= m
	}
	return s
}

// IsPrime reports whether n is prime using a deterministic Miller-Rabin
// test with witness set valid for all 64-bit integers.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// Write n-1 = d * 2^r.
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	// Deterministic witnesses for n < 2^64 (Sinclair's set).
	for _, a := range []uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022} {
		if !millerRabinWitness(n, a%n, d, r) {
			return false
		}
	}
	return true
}

func millerRabinWitness(n, a, d uint64, r int) bool {
	if a == 0 {
		return true
	}
	x := powmod(a, d, n)
	if x == 1 || x == n-1 {
		return true
	}
	for i := 0; i < r-1; i++ {
		x = mulmod(x, x, n)
		if x == n-1 {
			return true
		}
	}
	return false
}

func powmod(a, e, m uint64) uint64 {
	result := uint64(1 % m)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = mulmod(result, a, m)
		}
		a = mulmod(a, a, m)
		e >>= 1
	}
	return result
}

// NextPrime returns the smallest prime >= n. It is used to pick a protocol
// modulus q > m (number of providers) at construction time.
func NextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n&1 == 0 {
		n++
	}
	for !IsPrime(n) {
		n += 2
	}
	return n
}
