package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsComposite(t *testing.T) {
	tests := []struct {
		name    string
		q       uint64
		wantErr bool
	}{
		{name: "zero", q: 0, wantErr: true},
		{name: "one", q: 1, wantErr: true},
		{name: "two", q: 2, wantErr: false},
		{name: "small prime", q: 5, wantErr: false},
		{name: "small composite", q: 9, wantErr: true},
		{name: "even composite", q: 1 << 20, wantErr: true},
		{name: "mersenne 61", q: (1 << 61) - 1, wantErr: false},
		{name: "carmichael 561", q: 561, wantErr: true},
		{name: "carmichael 41041", q: 41041, wantErr: true},
		{name: "large prime", q: 18446744073709551557, wantErr: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.q)
			if gotErr := err != nil; gotErr != tt.wantErr {
				t.Fatalf("New(%d) error = %v, wantErr %v", tt.q, err, tt.wantErr)
			}
		})
	}
}

func TestMustNewPanicsOnComposite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(10) did not panic")
		}
	}()
	MustNew(10)
}

func TestAddSubNeg(t *testing.T) {
	f := MustNew(97)
	tests := []struct {
		a, b, sum, diff uint64
	}{
		{0, 0, 0, 0},
		{1, 96, 0, 2},
		{50, 50, 3, 0},
		{96, 96, 95, 0},
		{3, 5, 8, 95},
	}
	for _, tt := range tests {
		if got := f.Add(tt.a, tt.b); got != tt.sum {
			t.Errorf("Add(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.sum)
		}
		if got := f.Sub(tt.a, tt.b); got != tt.diff {
			t.Errorf("Sub(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.diff)
		}
	}
	for a := uint64(0); a < 97; a++ {
		if got := f.Add(a, f.Neg(a)); got != 0 {
			t.Fatalf("a + (-a) = %d for a=%d, want 0", got, a)
		}
	}
}

func TestAddNoOverflowNearMax(t *testing.T) {
	// Largest 64-bit prime: additions of canonical elements must not wrap.
	f := MustNew(18446744073709551557)
	a, b := f.Modulus()-1, f.Modulus()-2
	want := f.Modulus() - 3 // (q-1)+(q-2) = 2q-3 ≡ q-3
	if got := f.Add(a, b); got != want {
		t.Fatalf("Add near max = %d, want %d", got, want)
	}
	if got := f.Sub(0, 1); got != f.Modulus()-1 {
		t.Fatalf("Sub(0,1) = %d, want %d", got, f.Modulus()-1)
	}
}

func TestMulMatchesNaive(t *testing.T) {
	f := MustNew(101)
	for a := uint64(0); a < 101; a += 7 {
		for b := uint64(0); b < 101; b += 5 {
			want := (a * b) % 101
			if got := f.Mul(a, b); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulLargeOperands(t *testing.T) {
	f := Default()
	q := f.Modulus()
	// (q-1)^2 mod q == 1 because q-1 ≡ -1.
	if got := f.Mul(q-1, q-1); got != 1 {
		t.Fatalf("Mul(q-1,q-1) = %d, want 1", got)
	}
}

func TestPowInv(t *testing.T) {
	f := MustNew(101)
	if got := f.Pow(2, 10); got != 1024%101 {
		t.Fatalf("Pow(2,10) = %d, want %d", got, 1024%101)
	}
	if got := f.Pow(7, 0); got != 1 {
		t.Fatalf("Pow(7,0) = %d, want 1", got)
	}
	for a := uint64(1); a < 101; a++ {
		inv, err := f.Inv(a)
		if err != nil {
			t.Fatalf("Inv(%d): %v", a, err)
		}
		if got := f.Mul(a, inv); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d, want 1", got, a)
		}
	}
	if _, err := f.Inv(0); err == nil {
		t.Fatal("Inv(0) succeeded, want error")
	}
}

func TestRandUniformCoverage(t *testing.T) {
	f := MustNew(31)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 31)
	const draws = 31 * 1000
	for i := 0; i < draws; i++ {
		v := f.Rand(rng)
		if !f.Valid(v) {
			t.Fatalf("Rand produced non-canonical %d", v)
		}
		counts[v]++
	}
	// Chi-square-ish sanity: each bucket within 3x of expectation.
	for v, c := range counts {
		if c < 1000/3 || c > 3000 {
			t.Fatalf("Rand skewed at %d: count=%d", v, c)
		}
	}
}

func TestSum(t *testing.T) {
	f := MustNew(13)
	xs := []uint64{12, 12, 12, 5, 100}
	want := (12 + 12 + 12 + 5 + 100) % 13
	if got := f.Sum(xs); got != uint64(want) {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
	if got := f.Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %d, want 0", got)
	}
}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		2: true, 3: true, 4: false, 5: true, 6: false, 7: true, 8: false,
		9: false, 25: false, 97: true, 561: false, 7919: true,
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPrime(t *testing.T) {
	tests := []struct{ n, want uint64 }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11}, {10000, 10007}, {25000, 25013},
	}
	for _, tt := range tests {
		if got := NextPrime(tt.n); got != tt.want {
			t.Errorf("NextPrime(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

// Property: Add is commutative and associative; Mul distributes over Add.
func TestFieldAxiomsQuick(t *testing.T) {
	f := Default()
	rng := rand.New(rand.NewSource(7))
	gen := func() uint64 { return f.Rand(rng) }

	commut := func(seed int64) bool {
		a, b := gen(), gen()
		return f.Add(a, b) == f.Add(b, a) && f.Mul(a, b) == f.Mul(b, a)
	}
	if err := quick.Check(commut, nil); err != nil {
		t.Errorf("commutativity: %v", err)
	}

	assoc := func(seed int64) bool {
		a, b, c := gen(), gen(), gen()
		return f.Add(f.Add(a, b), c) == f.Add(a, f.Add(b, c)) &&
			f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Errorf("associativity: %v", err)
	}

	distrib := func(seed int64) bool {
		a, b, c := gen(), gen(), gen()
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Errorf("distributivity: %v", err)
	}

	subInverse := func(seed int64) bool {
		a, b := gen(), gen()
		return f.Add(f.Sub(a, b), b) == a
	}
	if err := quick.Check(subInverse, nil); err != nil {
		t.Errorf("sub/add inverse: %v", err)
	}
}

func BenchmarkMul(b *testing.B) {
	f := Default()
	x := uint64(0x123456789abcdef)
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, x|1)
	}
	_ = x
}
