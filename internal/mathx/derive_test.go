package mathx

import "testing"

// DeriveSeed must be a pure function of its inputs and must separate
// nearby (stream, index) pairs: the construction pipeline relies on each
// shard getting an independent-looking child seed.
func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(42, 1, 7)
	b := DeriveSeed(42, 1, 7)
	if a != b {
		t.Fatalf("DeriveSeed not deterministic: %d vs %d", a, b)
	}
}

func TestDeriveSeedSeparatesInputs(t *testing.T) {
	seen := make(map[int64][3]uint64)
	for seed := int64(0); seed < 4; seed++ {
		for stream := uint64(0); stream < 8; stream++ {
			for index := uint64(0); index < 64; index++ {
				s := DeriveSeed(seed, stream, index)
				key := [3]uint64{uint64(seed), stream, index}
				if prev, ok := seen[s]; ok {
					t.Fatalf("collision: %v and %v both derive %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

// Consecutive indices must not produce correlated low bits (a plain
// seed+index scheme would): check that flipping the index flips roughly
// half the output bits on average.
func TestDeriveSeedAvalanche(t *testing.T) {
	totalBits := 0
	const trials = 256
	for i := uint64(0); i < trials; i++ {
		a := uint64(DeriveSeed(1, 2, i))
		b := uint64(DeriveSeed(1, 2, i+1))
		x := a ^ b
		for ; x != 0; x &= x - 1 {
			totalBits++
		}
	}
	mean := float64(totalBits) / trials
	if mean < 24 || mean > 40 {
		t.Fatalf("avalanche mean %.1f bits, want ~32", mean)
	}
}
