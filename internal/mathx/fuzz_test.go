package mathx

import (
	"math"
	"testing"
)

// FuzzBeta hardens the policy calculators: any float inputs must either be
// rejected by validation or produce a probability in [0, 1] — never NaN,
// never a panic.
func FuzzBeta(f *testing.F) {
	f.Add(0.1, 0.5, 100, 0.02, 0.9)
	f.Add(0.0, 0.0, 1, 0.0, 0.51)
	f.Add(1.0, 1.0, 10000, 1.0, 0.999)
	f.Add(math.NaN(), 0.5, 10, 0.1, 0.9)
	f.Fuzz(func(t *testing.T, sigma, eps float64, m int, delta, gamma float64) {
		for _, policy := range []Policy{PolicyBasic, PolicyIncremented, PolicyChernoff} {
			b, err := Beta(policy, BetaParams{Sigma: sigma, Epsilon: eps, M: m, Delta: delta, Gamma: gamma})
			if err != nil {
				continue
			}
			if math.IsNaN(b) || b < 0 || b > 1 {
				t.Fatalf("policy %v accepted (σ=%v ε=%v m=%d Δ=%v γ=%v) and returned %v",
					policy, sigma, eps, m, delta, gamma, b)
			}
		}
	})
}

// FuzzLambda: same hardening for the mixing-rate calculator.
func FuzzLambda(f *testing.F) {
	f.Add(0.5, 3, 100)
	f.Add(0.0, 0, 1)
	f.Add(1.0, 100, 100)
	f.Fuzz(func(t *testing.T, xi float64, commons, n int) {
		l, err := Lambda(xi, commons, n)
		if err != nil {
			return
		}
		if math.IsNaN(l) || l < 0 || l > 1 {
			t.Fatalf("Lambda(%v, %d, %d) = %v", xi, commons, n, l)
		}
	})
}
