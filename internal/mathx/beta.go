// Package mathx implements the numeric machinery of ε-PPI construction:
// the three publishing-probability (β) policies of Section III-B of the
// paper (basic, incremented-expectation and Chernoff-bound), the
// identity-mixing rate λ (Equation 7), and supporting probability helpers.
//
// All policies consume an identity's network frequency σ ∈ [0,1] (the
// fraction of the m providers that truly hold the identity) and the owner's
// requested privacy degree ε ∈ [0,1], and produce a probability β with which
// each *negative* provider independently flips its 0 bit to a published 1.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// Policy identifies one of the paper's three β-calculation policies.
type Policy int

const (
	// PolicyBasic is the expectation-based policy of Equation 3. It attains
	// fp_j >= ε_j with only ~50% success ratio.
	PolicyBasic Policy = iota + 1
	// PolicyIncremented adds a constant Δ to the basic policy (Equation 4).
	PolicyIncremented
	// PolicyChernoff derives β from a Chernoff tail bound so that
	// fp_j >= ε_j holds with a configurable success ratio γ (Equation 5,
	// Theorem 3.1).
	PolicyChernoff
)

// String returns the policy name used in experiment output.
func (p Policy) String() string {
	switch p {
	case PolicyBasic:
		return "basic"
	case PolicyIncremented:
		return "inc-exp"
	case PolicyChernoff:
		return "chernoff"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Valid reports whether p is a known policy.
func (p Policy) Valid() bool {
	return p >= PolicyBasic && p <= PolicyChernoff
}

var (
	// ErrBadSigma reports a frequency outside [0, 1].
	ErrBadSigma = errors.New("mathx: frequency σ out of [0,1]")
	// ErrBadEpsilon reports a privacy degree outside [0, 1].
	ErrBadEpsilon = errors.New("mathx: privacy degree ε out of [0,1]")
	// ErrBadGamma reports a Chernoff success ratio outside (0.5, 1).
	ErrBadGamma = errors.New("mathx: success ratio γ must be in (0.5, 1)")
	// ErrBadDelta reports a negative increment Δ.
	ErrBadDelta = errors.New("mathx: increment Δ must be >= 0")
	// ErrBadProviders reports a non-positive provider count.
	ErrBadProviders = errors.New("mathx: provider count m must be > 0")
	// ErrUnknownPolicy reports an unrecognised Policy value.
	ErrUnknownPolicy = errors.New("mathx: unknown β policy")
)

// BetaParams bundles the inputs of a β calculation.
type BetaParams struct {
	// Sigma is the identity frequency σ ∈ [0,1]: the fraction of providers
	// that truly hold the identity.
	Sigma float64
	// Epsilon is the owner's privacy degree ε ∈ [0,1].
	Epsilon float64
	// M is the number of providers in the network.
	M int
	// Delta is the increment Δ of the incremented-expectation policy.
	Delta float64
	// Gamma is the target success ratio γ ∈ (0.5, 1) of the Chernoff policy.
	Gamma float64
}

func (p BetaParams) validate(policy Policy) error {
	if p.Sigma < 0 || p.Sigma > 1 || math.IsNaN(p.Sigma) {
		return fmt.Errorf("%w: %v", ErrBadSigma, p.Sigma)
	}
	if p.Epsilon < 0 || p.Epsilon > 1 || math.IsNaN(p.Epsilon) {
		return fmt.Errorf("%w: %v", ErrBadEpsilon, p.Epsilon)
	}
	if p.M <= 0 {
		return fmt.Errorf("%w: %d", ErrBadProviders, p.M)
	}
	switch policy {
	case PolicyBasic:
	case PolicyIncremented:
		if p.Delta < 0 || math.IsNaN(p.Delta) {
			return fmt.Errorf("%w: %v", ErrBadDelta, p.Delta)
		}
	case PolicyChernoff:
		if p.Gamma <= 0.5 || p.Gamma >= 1 || math.IsNaN(p.Gamma) {
			return fmt.Errorf("%w: %v", ErrBadGamma, p.Gamma)
		}
	default:
		return fmt.Errorf("%w: %v", ErrUnknownPolicy, policy)
	}
	return nil
}

// Beta computes the raw publishing probability β* for the given policy.
// The result is clamped to [0, 1]; a clamped value of exactly 1 marks the
// identity as *common* (β* >= 1 in the paper) and triggers identity mixing
// downstream.
//
// Edge cases, matching the paper's semantics:
//   - ε = 0 (no privacy requested): β = 0, the truthful vector is published.
//   - ε = 1 (full privacy): β = 1, the identity is broadcast to everyone.
//   - σ = 0 (identity absent): β = 0, nothing to protect.
//   - σ = 1 (identity everywhere): β = 1, the identity is common.
func Beta(policy Policy, p BetaParams) (float64, error) {
	if err := p.validate(policy); err != nil {
		return 0, err
	}
	raw, err := rawBeta(policy, p)
	if err != nil {
		return 0, err
	}
	return clamp01(raw), nil
}

// BetaBasic computes Equation 3: β_b = [(σ⁻¹−1)(ε⁻¹−1)]⁻¹ (unclamped).
func BetaBasic(sigma, epsilon float64) float64 {
	switch {
	case epsilon <= 0 || sigma <= 0:
		return 0
	case epsilon >= 1 || sigma >= 1:
		return math.Inf(1)
	}
	return 1 / ((1/sigma - 1) * (1/epsilon - 1))
}

// BetaIncremented computes Equation 4: β_d = β_b + Δ (unclamped).
func BetaIncremented(sigma, epsilon, delta float64) float64 {
	b := BetaBasic(sigma, epsilon)
	if math.IsInf(b, 1) {
		return b
	}
	if b == 0 {
		// ε=0 or σ=0: nothing to publish regardless of Δ.
		return 0
	}
	return b + delta
}

// BetaChernoff computes Equation 5:
//
//	G = ln(1/(1−γ)) / ((1−σ)·m)
//	β_c = β_b + G + sqrt(G² + 2·β_b·G)
//
// (unclamped). γ must be in (0.5, 1).
func BetaChernoff(sigma, epsilon float64, m int, gamma float64) float64 {
	b := BetaBasic(sigma, epsilon)
	if math.IsInf(b, 1) {
		return b
	}
	if b == 0 {
		return 0
	}
	g := ChernoffG(sigma, m, gamma)
	return b + g + math.Sqrt(g*g+2*b*g)
}

// ChernoffG computes the G term of Theorem 3.1:
// G = ln(1/(1−γ)) / ((1−σ)·m).
func ChernoffG(sigma float64, m int, gamma float64) float64 {
	denom := (1 - sigma) * float64(m)
	if denom <= 0 {
		return math.Inf(1)
	}
	return math.Log(1/(1-gamma)) / denom
}

func rawBeta(policy Policy, p BetaParams) (float64, error) {
	switch policy {
	case PolicyBasic:
		return BetaBasic(p.Sigma, p.Epsilon), nil
	case PolicyIncremented:
		return BetaIncremented(p.Sigma, p.Epsilon, p.Delta), nil
	case PolicyChernoff:
		return BetaChernoff(p.Sigma, p.Epsilon, p.M, p.Gamma), nil
	default:
		return 0, fmt.Errorf("%w: %v", ErrUnknownPolicy, policy)
	}
}

// IsCommon reports whether a raw (unclamped) β marks the identity as common,
// i.e. β* >= 1 in Equation 6.
func IsCommon(rawBeta float64) bool {
	return rawBeta >= 1 || math.IsInf(rawBeta, 1)
}

// Lambda computes the mixing probability λ of Equation 7:
//
//	λ >= ξ/(1−ξ) · common/(n − common)
//
// where ξ is the required fraction of false positives among published common
// identities (the paper sets ξ = max ε_j over true common identities),
// common is the number of true common identities, and n the total number of
// identities. The returned λ is the smallest value satisfying the
// inequality, clamped to [0, 1].
func Lambda(xi float64, common, n int) (float64, error) {
	if xi < 0 || xi > 1 || math.IsNaN(xi) {
		return 0, fmt.Errorf("%w: ξ=%v", ErrBadEpsilon, xi)
	}
	if common < 0 || n <= 0 || common > n {
		return 0, fmt.Errorf("mathx: invalid counts common=%d n=%d", common, n)
	}
	if common == 0 || xi == 0 {
		// No true common identities to hide, or no mixing required.
		return 0, nil
	}
	nonCommon := n - common
	if nonCommon == 0 || xi == 1 {
		// Everything is common (nothing to mix with) or full obfuscation
		// demanded: exaggerate every non-common identity.
		return 1, nil
	}
	lambda := xi / (1 - xi) * float64(common) / float64(nonCommon)
	return clamp01(lambda), nil
}

// SuccessProbability returns the exact probability that a Binomial(T, β)
// draw X of false positives achieves fp = X/(X+pos) >= ε, where
// T = m - pos is the number of negative providers. It is used by tests and
// experiments to validate the empirical success ratios of the policies.
func SuccessProbability(m, pos int, beta, epsilon float64) float64 {
	if pos < 0 || m < pos {
		return 0
	}
	t := m - pos
	if epsilon <= 0 {
		return 1
	}
	// fp >= ε  ⇔  X >= ε/(1-ε) * pos  (for ε < 1). For ε = 1 we need pos = 0.
	if epsilon >= 1 {
		if pos == 0 {
			return 1
		}
		return 0
	}
	need := int(math.Ceil(epsilon / (1 - epsilon) * float64(pos)))
	if need <= 0 {
		return 1
	}
	if need > t {
		return 0
	}
	return binomialTail(t, beta, need)
}

// binomialTail returns P[X >= k] for X ~ Binomial(n, p), computed by
// summing the PMF from k upward with incremental ratio updates for
// numerical stability at moderate n (n <= ~10^5 in our experiments).
func binomialTail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	// Start at the PMF of k via logarithms, then walk up.
	logPMF := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	pmf := math.Exp(logPMF)
	sum := pmf
	for x := k; x < n; x++ {
		// pmf(x+1) = pmf(x) * (n-x)/(x+1) * p/(1-p)
		pmf *= float64(n-x) / float64(x+1) * p / (1 - p)
		sum += pmf
		if pmf < 1e-18*sum {
			break
		}
	}
	if sum > 1 {
		return 1
	}
	return sum
}

func logChoose(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

func clamp01(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return 0
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}
