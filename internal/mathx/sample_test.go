package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestBernoulliExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if Bernoulli(rng, 0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !Bernoulli(rng, 1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestBinomialBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 10, 100, 1000, 10000} {
		for _, p := range []float64{0, 0.01, 0.5, 0.99, 1} {
			k := Binomial(rng, n, p)
			if k < 0 || k > n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", n, p, k)
			}
			if p == 0 && k != 0 {
				t.Fatalf("Binomial(%d,0) = %d", n, k)
			}
			if p == 1 && k != n {
				t.Fatalf("Binomial(%d,1) = %d", n, k)
			}
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, p := 5000, 0.2
	const trials = 3000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		k := float64(Binomial(rng, n, p))
		sum += k
		sumSq += k * k
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	wantMean := float64(n) * p
	wantVar := float64(n) * p * (1 - p)
	if math.Abs(mean-wantMean)/wantMean > 0.02 {
		t.Fatalf("mean %v, want ≈%v", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.15 {
		t.Fatalf("variance %v, want ≈%v", variance, wantVar)
	}
}

func TestBinomialSmallNExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// n <= 64 path: distribution over many draws should match mean n*p.
	const trials = 50000
	var sum int
	for i := 0; i < trials; i++ {
		sum += Binomial(rng, 20, 0.25)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("small-n mean %v, want ≈5", mean)
	}
}

func TestZipf(t *testing.T) {
	w := Zipf(100, 1.0)
	if len(w) != 100 {
		t.Fatalf("len = %d", len(w))
	}
	var total float64
	for i, x := range w {
		if x <= 0 {
			t.Fatalf("weight %d = %v", i, x)
		}
		if i > 0 && x > w[i-1]+1e-15 {
			t.Fatalf("weights not non-increasing at %d", i)
		}
		total += x
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("sum = %v, want 1", total)
	}
	if Zipf(0, 1) != nil {
		t.Fatal("Zipf(0) should be nil")
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev single != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample std dev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}
