package mathx

// DeriveSeed deterministically derives an independent child seed from a
// base seed, a stream label, and an index within that stream.
//
// The construction pipeline shards work (columns, row blocks, MPC batches)
// across a worker pool; every shard draws its randomness from a fresh
// rand.Source seeded with DeriveSeed(seed, stream, index) so that the
// output is a function of (seed, stream, index) only — never of which
// worker executed the shard or in what order. That is what makes parallel
// construction bit-identical to the sequential run.
//
// Internally this is three rounds of the splitmix64 finalizer, which is a
// bijection on 64-bit words; distinct (seed, stream, index) triples map to
// well-separated child seeds even when the inputs are small consecutive
// integers.
func DeriveSeed(seed int64, stream, index uint64) int64 {
	const golden = 0x9e3779b97f4a7c15
	h := splitmix64(uint64(seed) + golden)
	h = splitmix64(h ^ (stream + golden))
	h = splitmix64(h ^ (index + golden))
	return int64(h)
}

// splitmix64 is the finalizer of the SplitMix64 generator (Steele et al.),
// a strong 64-bit mixing bijection.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
