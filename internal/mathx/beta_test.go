package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolicyString(t *testing.T) {
	tests := []struct {
		p    Policy
		want string
	}{
		{PolicyBasic, "basic"},
		{PolicyIncremented, "inc-exp"},
		{PolicyChernoff, "chernoff"},
		{Policy(0), "policy(0)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.p), got, tt.want)
		}
	}
	if Policy(0).Valid() || Policy(99).Valid() {
		t.Error("invalid policies reported Valid")
	}
	if !PolicyChernoff.Valid() {
		t.Error("PolicyChernoff not Valid")
	}
}

func TestBetaBasicEquation3(t *testing.T) {
	// Hand-checked instances of β_b = [(σ⁻¹−1)(ε⁻¹−1)]⁻¹.
	tests := []struct {
		sigma, eps, want float64
	}{
		{0.5, 0.5, 1.0},         // (1)(1) => 1
		{0.1, 0.5, 1.0 / 9.0},   // (9)(1)
		{0.1, 0.8, 4.0 / 9.0},   // (9)(0.25)
		{0.01, 0.5, 1.0 / 99.0}, // (99)(1)
		{0.2, 0.2, 1.0 / 16.0},  // (4)(4)
		{0.25, 0.75, 1.0},       // (3)(1/3)
		{0.5, 0.9, 9.0},         // (1)(1/9) => 9 (raw, will clamp to 1)
	}
	for _, tt := range tests {
		got := BetaBasic(tt.sigma, tt.eps)
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("BetaBasic(%v,%v) = %v, want %v", tt.sigma, tt.eps, got, tt.want)
		}
	}
}

func TestBetaBasicEdgeCases(t *testing.T) {
	if got := BetaBasic(0, 0.5); got != 0 {
		t.Errorf("σ=0: got %v, want 0", got)
	}
	if got := BetaBasic(0.5, 0); got != 0 {
		t.Errorf("ε=0: got %v, want 0", got)
	}
	if got := BetaBasic(1, 0.5); !math.IsInf(got, 1) {
		t.Errorf("σ=1: got %v, want +Inf", got)
	}
	if got := BetaBasic(0.5, 1); !math.IsInf(got, 1) {
		t.Errorf("ε=1: got %v, want +Inf", got)
	}
}

func TestBetaIncremented(t *testing.T) {
	if got, want := BetaIncremented(0.5, 0.5, 0.02), 1.02; math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v, want %v", got, want)
	}
	if got := BetaIncremented(0, 0.5, 0.02); got != 0 {
		t.Errorf("σ=0 with Δ: got %v, want 0 (no providers to protect)", got)
	}
	if got := BetaIncremented(1, 0.5, 0.02); !math.IsInf(got, 1) {
		t.Errorf("σ=1: got %v, want +Inf", got)
	}
}

func TestBetaChernoffDominatesBasic(t *testing.T) {
	// Theorem 3.1 requires β_c > β_b whenever β_b is finite and positive.
	for _, sigma := range []float64{0.001, 0.01, 0.1, 0.3} {
		for _, eps := range []float64{0.1, 0.5, 0.9} {
			for _, m := range []int{100, 1000, 10000} {
				b := BetaBasic(sigma, eps)
				c := BetaChernoff(sigma, eps, m, 0.9)
				if c <= b {
					t.Errorf("β_c=%v <= β_b=%v at σ=%v ε=%v m=%d", c, b, sigma, eps, m)
				}
			}
		}
	}
}

func TestBetaChernoffShrinksWithM(t *testing.T) {
	// More providers → tighter concentration → smaller safety margin.
	prev := math.Inf(1)
	for _, m := range []int{64, 256, 1024, 4096, 16384} {
		c := BetaChernoff(0.1, 0.5, m, 0.9)
		if c >= prev {
			t.Fatalf("β_c not decreasing in m: m=%d gave %v, previous %v", m, c, prev)
		}
		prev = c
	}
}

func TestBetaChernoffGrowsWithGamma(t *testing.T) {
	prev := 0.0
	for _, gamma := range []float64{0.6, 0.8, 0.9, 0.99, 0.999} {
		c := BetaChernoff(0.1, 0.5, 1000, gamma)
		if c <= prev {
			t.Fatalf("β_c not increasing in γ: γ=%v gave %v, previous %v", gamma, c, prev)
		}
		prev = c
	}
}

func TestChernoffG(t *testing.T) {
	// G = ln(1/(1-γ)) / ((1-σ)m)
	got := ChernoffG(0.5, 100, 0.9)
	want := math.Log(10) / 50
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ChernoffG = %v, want %v", got, want)
	}
	if !math.IsInf(ChernoffG(1, 100, 0.9), 1) {
		t.Error("ChernoffG at σ=1 should be +Inf")
	}
}

func TestBetaValidation(t *testing.T) {
	base := BetaParams{Sigma: 0.1, Epsilon: 0.5, M: 100, Delta: 0.02, Gamma: 0.9}
	tests := []struct {
		name   string
		policy Policy
		mutate func(*BetaParams)
		err    error
	}{
		{"sigma low", PolicyBasic, func(p *BetaParams) { p.Sigma = -0.1 }, ErrBadSigma},
		{"sigma high", PolicyBasic, func(p *BetaParams) { p.Sigma = 1.1 }, ErrBadSigma},
		{"sigma nan", PolicyBasic, func(p *BetaParams) { p.Sigma = math.NaN() }, ErrBadSigma},
		{"eps low", PolicyBasic, func(p *BetaParams) { p.Epsilon = -1 }, ErrBadEpsilon},
		{"eps high", PolicyBasic, func(p *BetaParams) { p.Epsilon = 2 }, ErrBadEpsilon},
		{"m zero", PolicyBasic, func(p *BetaParams) { p.M = 0 }, ErrBadProviders},
		{"delta neg", PolicyIncremented, func(p *BetaParams) { p.Delta = -0.1 }, ErrBadDelta},
		{"gamma half", PolicyChernoff, func(p *BetaParams) { p.Gamma = 0.5 }, ErrBadGamma},
		{"gamma one", PolicyChernoff, func(p *BetaParams) { p.Gamma = 1 }, ErrBadGamma},
		{"unknown policy", Policy(42), func(p *BetaParams) {}, ErrUnknownPolicy},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			if _, err := Beta(tt.policy, p); err == nil {
				t.Fatalf("Beta accepted invalid params %+v", p)
			}
		})
	}
	if _, err := Beta(PolicyChernoff, base); err != nil {
		t.Fatalf("Beta rejected valid params: %v", err)
	}
}

func TestBetaClamped(t *testing.T) {
	// σ=0.5 ε=0.9 gives raw β_b=9 — must clamp to 1 (common identity).
	got, err := Beta(PolicyBasic, BetaParams{Sigma: 0.5, Epsilon: 0.9, M: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("clamped β = %v, want 1", got)
	}
	if !IsCommon(BetaBasic(0.5, 0.9)) {
		t.Error("IsCommon(9) = false")
	}
	if IsCommon(0.99) {
		t.Error("IsCommon(0.99) = true")
	}
	if !IsCommon(math.Inf(1)) {
		t.Error("IsCommon(+Inf) = false")
	}
}

func TestBetaQuickProperties(t *testing.T) {
	// For any valid (σ, ε) in the open interval, all policies return a
	// probability in [0,1] and Chernoff >= IncExp(0) >= Basic after clamping.
	prop := func(a, b uint16) bool {
		sigma := 0.001 + 0.998*float64(a)/65535
		eps := 0.001 + 0.998*float64(b)/65535
		p := BetaParams{Sigma: sigma, Epsilon: eps, M: 1000, Delta: 0.0, Gamma: 0.9}
		bb, err1 := Beta(PolicyBasic, p)
		bd, err2 := Beta(PolicyIncremented, p)
		bc, err3 := Beta(PolicyChernoff, p)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		inRange := bb >= 0 && bb <= 1 && bd >= 0 && bd <= 1 && bc >= 0 && bc <= 1
		ordered := bc >= bb && bd >= bb
		return inRange && ordered
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLambdaEquation7(t *testing.T) {
	tests := []struct {
		name      string
		xi        float64
		common, n int
		want      float64
	}{
		{"no commons", 0.5, 0, 100, 0},
		{"xi zero", 0, 10, 100, 0},
		{"half xi", 0.5, 10, 100, 10.0 / 90.0},
		{"xi 0.8", 0.8, 10, 110, 0.8 / 0.2 * 10.0 / 100.0},
		{"all common", 0.5, 100, 100, 1},
		{"xi one", 1, 10, 100, 1},
		{"clamp", 0.99, 50, 60, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Lambda(tt.xi, tt.common, tt.n)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Lambda(%v,%d,%d) = %v, want %v", tt.xi, tt.common, tt.n, got, tt.want)
			}
		})
	}
}

func TestLambdaErrors(t *testing.T) {
	if _, err := Lambda(-0.1, 1, 10); err == nil {
		t.Error("negative ξ accepted")
	}
	if _, err := Lambda(0.5, -1, 10); err == nil {
		t.Error("negative common accepted")
	}
	if _, err := Lambda(0.5, 11, 10); err == nil {
		t.Error("common > n accepted")
	}
	if _, err := Lambda(0.5, 0, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestLambdaSatisfiesInequality(t *testing.T) {
	// The returned λ must satisfy ξ <= λ(n-common) / (common + λ(n-common))
	// whenever it is not clamped.
	prop := func(a uint8, b uint16) bool {
		xi := float64(a%99+1) / 100 // 0.01..0.99
		n := int(b%1000) + 10
		common := int(b) % (n / 2)
		lambda, err := Lambda(xi, common, n)
		if err != nil {
			return false
		}
		if common == 0 {
			return lambda == 0
		}
		if lambda == 1 {
			return true // clamped; the best achievable
		}
		mixed := lambda * float64(n-common)
		achieved := mixed / (float64(common) + mixed)
		return achieved+1e-9 >= xi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSuccessProbability(t *testing.T) {
	// ε=0 always succeeds.
	if got := SuccessProbability(100, 10, 0.1, 0); got != 1 {
		t.Errorf("ε=0: got %v, want 1", got)
	}
	// ε=1 succeeds only with zero positives.
	if got := SuccessProbability(100, 10, 0.5, 1); got != 0 {
		t.Errorf("ε=1,pos>0: got %v, want 0", got)
	}
	if got := SuccessProbability(100, 0, 0.5, 1); got != 1 {
		t.Errorf("ε=1,pos=0: got %v, want 1", got)
	}
	// β=1 publishes every negative: fp = (m-pos)/m; succeeds iff that >= ε.
	if got := SuccessProbability(100, 10, 1, 0.5); got != 1 {
		t.Errorf("β=1: got %v, want 1", got)
	}
	// β=0 cannot create false positives.
	if got := SuccessProbability(100, 10, 0, 0.5); got != 0 {
		t.Errorf("β=0: got %v, want 0", got)
	}
	// Out-of-range positives.
	if got := SuccessProbability(10, 20, 0.5, 0.5); got != 0 {
		t.Errorf("pos>m: got %v, want 0", got)
	}
}

func TestSuccessProbabilityMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m, pos, beta, eps := 200, 20, 0.15, 0.5
	want := SuccessProbability(m, pos, beta, eps)
	trials := 20000
	hits := 0
	for i := 0; i < trials; i++ {
		x := 0
		for j := 0; j < m-pos; j++ {
			if rng.Float64() < beta {
				x++
			}
		}
		fp := float64(x) / float64(x+pos)
		if fp >= eps {
			hits++
		}
	}
	got := float64(hits) / float64(trials)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("analytic %v vs monte-carlo %v differ by > 0.02", want, got)
	}
}

func TestChernoffPolicyMeetsGamma(t *testing.T) {
	// Core claim of Theorem 3.1: β_c achieves success probability >= γ.
	for _, tc := range []struct {
		m     int
		sigma float64
		eps   float64
		gamma float64
	}{
		{1000, 0.01, 0.5, 0.9},
		{1000, 0.05, 0.8, 0.9},
		{10000, 0.01, 0.5, 0.95},
		{500, 0.1, 0.3, 0.9},
	} {
		pos := int(tc.sigma * float64(tc.m))
		beta := BetaChernoff(tc.sigma, tc.eps, tc.m, tc.gamma)
		if beta >= 1 {
			continue // common identity; handled by mixing, not by tail bound
		}
		p := SuccessProbability(tc.m, pos, beta, tc.eps)
		if p < tc.gamma {
			t.Errorf("m=%d σ=%v ε=%v γ=%v: success prob %v < γ", tc.m, tc.sigma, tc.eps, tc.gamma, p)
		}
	}
}

func TestBasicPolicyNearHalf(t *testing.T) {
	// The basic policy should land close to 50% success around the median.
	m, sigma, eps := 10000, 0.01, 0.5
	pos := int(sigma * float64(m))
	beta := BetaBasic(sigma, eps)
	p := SuccessProbability(m, pos, beta, eps)
	if p < 0.3 || p > 0.7 {
		t.Fatalf("basic policy success prob %v, want ≈0.5", p)
	}
}
