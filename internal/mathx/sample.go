package mathx

import (
	"math"
	"math/rand"
)

// Bernoulli draws a single biased coin flip with success probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// Binomial draws X ~ Binomial(n, p). For small n it flips n coins; for
// large n it uses a normal approximation with continuity correction, which
// is accurate enough for the statistical experiments (n up to ~25,000
// providers) and keeps index construction O(1) per identity when only the
// count of flips is needed.
func Binomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if sd < 4 {
		// Skewed or tiny-variance regime: exact flips remain cheap enough.
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	k := int(math.Round(rng.NormFloat64()*sd + mean))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Zipf returns n weights following a Zipf distribution with exponent s,
// normalised to sum to 1. Rank 0 is the most frequent.
func Zipf(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 if fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}
