package collusion

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/secretshare"
	"repro/internal/secsum"
	"repro/internal/transport"
)

const (
	testM = 9 // providers
	testC = 3 // coordinators / share count
	testN = 4 // identities
)

func runRecorded(t *testing.T, inputs [][]uint64, seed int64) (*RecordingNetwork, secretshare.Scheme) {
	t.Helper()
	f, err := field.New(10007)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := secretshare.New(f, testC)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := transport.NewInMem(len(inputs))
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecording(inner)
	if _, err := secsum.Run(rec, scheme, inputs, seed); err != nil {
		t.Fatal(err)
	}
	return rec, scheme
}

func testInputs(rng *rand.Rand) ([][]uint64, []uint64) {
	inputs := make([][]uint64, testM)
	freqs := make([]uint64, testN)
	for i := range inputs {
		inputs[i] = make([]uint64, testN)
		for j := range inputs[i] {
			v := uint64(rng.Intn(2))
			inputs[i][j] = v
			freqs[j] += v
		}
	}
	return inputs, freqs
}

func TestFullCoordinatorCoalitionReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs, freqs := testInputs(rng)
	rec, scheme := runRecorded(t, inputs, 2)
	defer rec.Close()
	coal, err := NewCoalition(rec, []int{0, 1, 2}, inputs) // all c coordinators
	if err != nil {
		t.Fatal(err)
	}
	got, err := coal.ReconstructFrequencies(scheme, testN)
	if err != nil {
		t.Fatal(err)
	}
	for j := range freqs {
		if got[j] != freqs[j] {
			t.Fatalf("identity %d: reconstructed %d, want %d", j, got[j], freqs[j])
		}
	}
}

func TestSubThresholdCoalitionCannotReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inputs, _ := testInputs(rng)
	rec, scheme := runRecorded(t, inputs, 4)
	defer rec.Close()
	// Two of three coordinators plus two extra providers: still missing
	// coordinator 2's vector.
	coal, err := NewCoalition(rec, []int{0, 1, 5, 7}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coal.ReconstructFrequencies(scheme, testN); err == nil {
		t.Fatal("sub-threshold coalition reconstructed the frequencies")
	}
}

func TestCoalitionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inputs, _ := testInputs(rng)
	rec, _ := runRecorded(t, inputs, 6)
	defer rec.Close()
	if _, err := NewCoalition(rec, []int{99}, inputs); err == nil {
		t.Fatal("out-of-range member accepted")
	}
	coal, err := NewCoalition(rec, []int{3}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if coal.Contains(4) || !coal.Contains(3) {
		t.Fatal("Contains wrong")
	}
}

// Indistinguishability: the share values a sub-threshold coalition observes
// are statistically independent of the honest providers' secrets. We run
// the protocol many times in two "worlds" that differ only in non-member
// inputs and compare the empirical mean of observed shares — they must
// agree within noise (uniform distribution over Z_q in both worlds).
func TestObservedSharesIndependentOfSecrets(t *testing.T) {
	f, err := field.New(101) // small field so means converge fast
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := secretshare.New(f, testC)
	if err != nil {
		t.Fatal(err)
	}
	meanObserved := func(world uint64, seedBase int64) float64 {
		var sum, count float64
		for trial := 0; trial < 300; trial++ {
			inputs := make([][]uint64, testM)
			for i := range inputs {
				inputs[i] = []uint64{world} // every honest input = world value
			}
			inner, err := transport.NewInMem(testM)
			if err != nil {
				t.Fatal(err)
			}
			rec := NewRecording(inner)
			if _, err := secsum.Run(rec, scheme, inputs, seedBase+int64(trial)); err != nil {
				t.Fatal(err)
			}
			coal, err := NewCoalition(rec, []int{0, 4}, inputs) // 1 coordinator + 1 provider
			if err != nil {
				t.Fatal(err)
			}
			for _, obs := range coal.ShareObservations(1) {
				for _, v := range obs {
					sum += float64(v)
					count++
				}
			}
			rec.Close()
		}
		return sum / count
	}
	m0 := meanObserved(0, 1000)
	m1 := meanObserved(1, 5000)
	// Uniform over Z_101 has mean 50; allow generous sampling noise.
	if math.Abs(m0-50) > 5 || math.Abs(m1-50) > 5 {
		t.Fatalf("observed share means %v / %v stray from uniform", m0, m1)
	}
	if math.Abs(m0-m1) > 7 {
		t.Fatalf("coalition view distinguishes worlds: %v vs %v", m0, m1)
	}
}

func TestRecordingCapturesTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inputs, _ := testInputs(rng)
	rec, _ := runRecorded(t, inputs, 8)
	defer rec.Close()
	// Every provider receives c-1 = 2 share messages; coordinators also
	// receive super-shares.
	for id := 0; id < testM; id++ {
		msgs := rec.Received(id)
		shares := 0
		supers := 0
		for _, m := range msgs {
			switch m.Kind {
			case transport.KindShare:
				shares++
			case transport.KindSuperShare:
				supers++
			}
		}
		if shares != testC-1 {
			t.Fatalf("provider %d received %d share messages, want %d", id, shares, testC-1)
		}
		if id < testC && supers == 0 {
			t.Fatalf("coordinator %d received no super-shares", id)
		}
		if id >= testC && supers != 0 {
			t.Fatalf("non-coordinator %d received super-shares", id)
		}
	}
}
