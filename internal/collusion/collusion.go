// Package collusion implements the colluding-providers threat analysis
// that the paper defers to its technical report: a coalition of providers
// pools everything it legitimately sees during ε-PPI construction — its
// own inputs plus every protocol message it receives — and tries to learn
// other providers' private membership bits or hidden identity frequencies.
//
// The package provides a recording transport (to capture coalition views),
// the reconstruction attack (which *succeeds* exactly when the coalition
// contains all c coordinators, matching Theorem 4.1's c-secrecy), and
// statistical distinguishers used by tests to verify that sub-threshold
// coalitions learn nothing.
package collusion

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/secretshare"
	"repro/internal/transport"
)

// RecordingNetwork wraps a Network and records every message delivered to
// each party — the raw material of a coalition's view.
type RecordingNetwork struct {
	inner transport.Network

	mu       sync.Mutex
	received map[int][]transport.Message

	nodes []*recordingNode
}

var _ transport.Network = (*RecordingNetwork)(nil)

// NewRecording wraps inner.
func NewRecording(inner transport.Network) *RecordingNetwork {
	r := &RecordingNetwork{
		inner:    inner,
		received: make(map[int][]transport.Message),
		nodes:    make([]*recordingNode, inner.Size()),
	}
	for i := range r.nodes {
		r.nodes[i] = &recordingNode{net: r, inner: inner.Node(i)}
	}
	return r
}

// Node returns the recording endpoint of party id.
func (r *RecordingNetwork) Node(id int) transport.Node { return r.nodes[id] }

// Size returns the number of parties.
func (r *RecordingNetwork) Size() int { return r.inner.Size() }

// Stats returns the inner network's counters.
func (r *RecordingNetwork) Stats() transport.Stats { return r.inner.Stats() }

// Close closes the inner network.
func (r *RecordingNetwork) Close() error { return r.inner.Close() }

// Instrument forwards to the inner network when it supports metrics.
func (r *RecordingNetwork) Instrument(reg *metrics.Registry) { transport.Instrument(r.inner, reg) }

// Metrics returns the inner network's registry, or nil.
func (r *RecordingNetwork) Metrics() *metrics.Registry { return transport.RegistryOf(r.inner) }

// Received returns copies of all messages party id received, in order.
func (r *RecordingNetwork) Received(id int) []transport.Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	msgs := r.received[id]
	out := make([]transport.Message, len(msgs))
	copy(out, msgs)
	return out
}

func (r *RecordingNetwork) record(id int, m transport.Message) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Deep-copy the payload: the receiver may reuse buffers.
	cp := m
	if m.Data != nil {
		cp.Data = make([]uint64, len(m.Data))
		copy(cp.Data, m.Data)
	}
	r.received[id] = append(r.received[id], cp)
}

type recordingNode struct {
	net   *RecordingNetwork
	inner transport.Node
}

var _ transport.Node = (*recordingNode)(nil)

func (n *recordingNode) ID() int   { return n.inner.ID() }
func (n *recordingNode) Size() int { return n.inner.Size() }

func (n *recordingNode) Send(to int, m transport.Message) error {
	return n.inner.Send(to, m)
}

func (n *recordingNode) Recv() (transport.Message, error) {
	m, err := n.inner.Recv()
	if err == nil {
		n.net.record(n.inner.ID(), m)
	}
	return m, err
}

func (n *recordingNode) Close() error { return n.inner.Close() }

// Coalition is a set of colluding provider ids and the views they pooled.
type Coalition struct {
	// Members are the colluding provider ids.
	Members []int
	// Views maps member id to its received messages.
	Views map[int][]transport.Message
	// OwnInputs maps member id to its own private input vector.
	OwnInputs map[int][]uint64
}

// NewCoalition assembles a coalition's pooled view from a recording
// network after a protocol run.
func NewCoalition(rec *RecordingNetwork, members []int, inputs [][]uint64) (*Coalition, error) {
	c := &Coalition{
		Members:   append([]int(nil), members...),
		Views:     make(map[int][]transport.Message, len(members)),
		OwnInputs: make(map[int][]uint64, len(members)),
	}
	for _, id := range members {
		if id < 0 || id >= rec.Size() {
			return nil, fmt.Errorf("collusion: member %d out of range", id)
		}
		c.Views[id] = rec.Received(id)
		in := make([]uint64, len(inputs[id]))
		copy(in, inputs[id])
		c.OwnInputs[id] = in
	}
	return c, nil
}

// Contains reports membership.
func (c *Coalition) Contains(id int) bool {
	for _, m := range c.Members {
		if m == id {
			return true
		}
	}
	return false
}

// ErrInsufficientView reports a reconstruction attempt by a coalition that
// lacks the required shares.
var ErrInsufficientView = errors.New("collusion: coalition view cannot reconstruct the secret")

// ReconstructFrequencies mounts the coalition's strongest passive attack
// on SecSumShare output secrecy: if (and only if) the coalition contains
// all c coordinators it can sum the coordinator share vectors it holds and
// recover every identity's exact frequency. With any coordinator missing
// the attempt fails — Theorem 4.1's c-secrecy.
func (c *Coalition) ReconstructFrequencies(scheme secretshare.Scheme, numIdentities int) ([]uint64, error) {
	cc := scheme.Shares()
	f := scheme.Field()
	// A coordinator k's final share vector s(k,·) is the sum of the
	// super-shares it received (transport.KindSuperShare messages) — all of
	// which appear in its recorded view.
	out := make([]uint64, numIdentities)
	for k := 0; k < cc; k++ {
		if !c.Contains(k) {
			return nil, fmt.Errorf("%w: coordinator %d not in coalition", ErrInsufficientView, k)
		}
		vec := make([]uint64, numIdentities)
		for _, msg := range c.Views[k] {
			if msg.Kind != transport.KindSuperShare {
				continue
			}
			if len(msg.Data) != numIdentities {
				return nil, fmt.Errorf("collusion: malformed super-share from %d", msg.From)
			}
			for j, v := range msg.Data {
				vec[j] = f.Add(vec[j], f.Reduce(v))
			}
		}
		for j, v := range vec {
			out[j] = f.Add(out[j], v)
		}
	}
	return out, nil
}

// ShareObservations extracts, per identity, every first-stage share value
// the coalition received from non-members — the marginal an attacker would
// analyse statistically. Used by the indistinguishability tests.
func (c *Coalition) ShareObservations(numIdentities int) [][]uint64 {
	out := make([][]uint64, numIdentities)
	for _, id := range c.Members {
		for _, msg := range c.Views[id] {
			if msg.Kind != transport.KindShare || c.Contains(msg.From) {
				continue
			}
			for j := 0; j < numIdentities && j < len(msg.Data); j++ {
				out[j] = append(out[j], msg.Data[j])
			}
		}
	}
	return out
}
