package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// TestWideSecureConstructEndToEnd is the acceptance gate of the bit-sliced
// path: for every demo policy and at 1 and 8 workers, the wide pipeline
// must publish a matrix bit-identical to the scalar pipeline — same M',
// same β vector, same hidden set, same count — on a geometry that forces
// ragged slabs in every batch (BatchSize 40 < 64 lanes) plus a ragged
// final batch (n = 100).
func TestWideSecureConstructEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, n := 12, 100
	truth := randomMatrix(rng, m, n, 0.35)
	truth.Set(0, 0, true)
	eps := make([]float64, n)
	for j := range eps {
		eps[j] = 0.3 + 0.6*rng.Float64()
	}

	for _, policy := range []mathx.Policy{mathx.PolicyBasic, mathx.PolicyIncremented, mathx.PolicyChernoff} {
		for _, workers := range []int{1, 8} {
			cfg := secureCfg(23)
			cfg.Policy = policy
			cfg.BatchSize = 40
			cfg.Workers = workers

			scalar, err := Construct(truth, eps, cfg)
			if err != nil {
				t.Fatalf("%v workers=%d scalar: %v", policy, workers, err)
			}
			wcfg := cfg
			wcfg.Wide = true
			wide, err := Construct(truth, eps, wcfg)
			if err != nil {
				t.Fatalf("%v workers=%d wide: %v", policy, workers, err)
			}

			if wide.CommonCount != scalar.CommonCount {
				t.Fatalf("%v workers=%d: wide count %d, scalar %d", policy, workers, wide.CommonCount, scalar.CommonCount)
			}
			if wide.Lambda != scalar.Lambda {
				t.Fatalf("%v workers=%d: λ differs: %v vs %v", policy, workers, wide.Lambda, scalar.Lambda)
			}
			for j := 0; j < n; j++ {
				if wide.Hidden[j] != scalar.Hidden[j] {
					t.Fatalf("%v workers=%d: hidden[%d] differs", policy, workers, j)
				}
				if wide.Betas[j] != scalar.Betas[j] {
					t.Fatalf("%v workers=%d: β[%d] = %v, scalar %v", policy, workers, j, wide.Betas[j], scalar.Betas[j])
				}
			}
			if !wide.Published.Equal(scalar.Published) {
				t.Fatalf("%v workers=%d: published matrix not bit-identical", policy, workers)
			}
			if wide.Secure == nil || wide.Secure.MPCRounds == 0 {
				t.Fatalf("%v workers=%d: wide run recorded no MPC rounds", policy, workers)
			}
		}
	}
}

// The wide path must stay deterministic and self-consistent across repeat
// runs and batch geometries (the count is an exact sum either way, so
// BatchSize cannot change any published bit).
func TestWideSecureDeterministicAcrossBatchSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	truth := randomMatrix(rng, 9, 70, 0.4)
	eps := make([]float64, 70)
	for j := range eps {
		eps[j] = 0.5
	}
	base := secureCfg(55)
	base.Wide = true
	var ref *Result
	for _, batch := range []int{0, 64, 33} {
		cfg := base
		cfg.BatchSize = batch
		res, err := Construct(truth, eps, cfg)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.CommonCount != ref.CommonCount || !res.Published.Equal(ref.Published) {
			t.Fatalf("batch=%d changes the wide publication", batch)
		}
	}
}

// Wide construction over real TCP sessions and with OT preprocessing:
// protocol-determined outcomes must match the scalar dealer pipeline.
func TestWideSecureTransportsAndTriples(t *testing.T) {
	truth := matrixWithFreqs(6, []int{6, 1, 2, 4, 1})
	eps := []float64{0.4, 0.6, 0.8, 0.5, 0.7}
	base := secureCfg(29)
	base.Policy = mathx.PolicyBasic
	scalar, err := Construct(truth, eps, base)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("tcp", func(t *testing.T) {
		cfg := base
		cfg.Wide = true
		cfg.NewNetwork = func(parties int) (transport.Network, error) { return transport.NewTCP(parties) }
		res, err := Construct(truth, eps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Published.Equal(scalar.Published) {
			t.Fatal("wide-over-TCP publication differs from scalar")
		}
	})
	t.Run("ot", func(t *testing.T) {
		if testing.Short() {
			t.Skip("wide OT preprocessing deals 64 per-lane base OTs per AND gate (~1 min)")
		}
		// Wide OT preprocessing deals 64 per-lane triples per AND gate at
		// ~tens of ms per pairwise OT, so this subtest runs the smallest
		// meaningful fixture: 2 coordinators, 2 identities, 3 coin bits.
		otTruth := matrixWithFreqs(4, []int{4, 1})
		otEps := []float64{0.5, 0.5}
		cfg := secureCfg(37)
		cfg.Policy = mathx.PolicyBasic
		cfg.C = 2
		cfg.CoinBits = 3
		dealer, err := Construct(otTruth, otEps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Wide = true
		cfg.Triples = TripleOT
		res, err := Construct(otTruth, otEps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.CommonCount != dealer.CommonCount {
			t.Fatalf("wide-OT count %d, dealer %d", res.CommonCount, dealer.CommonCount)
		}
		if !res.Published.Equal(dealer.Published) {
			t.Fatal("wide-OT publication differs from scalar dealer run")
		}
	})
}

// The slab-waste gauge must report the padded lanes of both wide passes.
func TestWideSlabWasteGauge(t *testing.T) {
	truth := matrixWithFreqs(6, []int{6, 1, 2})
	eps := []float64{0.4, 0.6, 0.8}
	cfg := secureCfg(31)
	cfg.Policy = mathx.PolicyBasic
	cfg.Wide = true
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	if _, err := Construct(truth, eps, cfg); err != nil {
		t.Fatal(err)
	}
	// n=3 → one slab per pass, 61 padded lanes each, two passes.
	if v := reg.Gauge("eppi_gmw_slab_waste_slots", "").Value(); v != 2*61 {
		t.Fatalf("slab waste gauge = %v, want %d", v, 2*61)
	}
}

// TestWideSecureFaultInjection drives the wide pipeline over a faulty
// coordinator network: crash, corruption and total loss must each abort
// the run promptly, exactly like the scalar path.
func TestWideSecureFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	truth := randomMatrix(rng, 9, 70, 0.4)
	eps := make([]float64, 70)
	for j := range eps {
		eps[j] = 0.6
	}
	cases := []struct {
		name string
		plan transport.FaultPlan
	}{
		{"crashed coordinator", transport.FaultPlan{FailSendFrom: map[int]bool{1: true}, Seed: 4}},
		{"corrupted payloads", transport.FaultPlan{CorruptRate: 1, Seed: 5}},
		{"dropped messages", transport.FaultPlan{DropRate: 1, RecvTimeout: 250 * time.Millisecond, Seed: 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := faultySecureCfg(11, 2, tc.plan)
			cfg.Wide = true
			cfg.BatchSize = 40 // several concurrent wide batches
			runConstructGuarded(t, truth, eps, cfg)
		})
	}
}
