package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/circuit"
	"repro/internal/gmw"
	"repro/internal/mathx"
	"repro/internal/trace"
	"repro/internal/transport"
)

// The wide secure path schedules identities onto 64-lane slabs and
// evaluates each slab with the bit-sliced GMW evaluator: one protocol
// execution (one AND-opening round per circuit layer) answers 64
// identities at once. Three invariants tie it to the scalar path:
//
//   - Thresholds enter as data, not circuit structure. Shares live in
//     Z_{2^W} with W = bits(m+1)+1; party 0 folds (2^W − t_j) into its
//     share (CountBelowSlice) or feeds it as a trailing private input
//     (RevealSlice, where the raw frequency must survive for the masked
//     output). The comparator then reads the sign bit of freq − t. One
//     compiled circuit therefore serves every slab — and the compile cache
//     makes that a single compilation per construction.
//
//   - Nothing extra is opened. CountBelowSlice runs shares-kept (the
//     per-identity ≥-bits are exactly the secret the scalar circuit keeps
//     internal); a scalar SliceCount execution XORs the kept lane shares
//     and opens only the per-slab popcount, matching the scalar release
//     granularity (batch counts are public parameters either way).
//
//   - The published matrix is bit-identical to the scalar path. The count
//     is an exact sum either way, so λ and the mixing threshold agree; the
//     mixing coins replicate the scalar per-batch stream in the scalar
//     draw order; ragged final slabs are padded with zero shares and a
//     folded t = 1 (offset 2^W − 1), making padded lanes never-common and
//     their outputs discardable.
//
// Per-slab protocol seeds derive from (Seed, wide stream, slab identity
// offset) — slabs never straddle batch boundaries, so the offset is unique
// — and the slab loop below is sequential within a batch, so the run is
// deterministic at any worker count.
type wideState struct {
	ctx        context.Context
	cfg        Config
	mux        *transport.SessionMux
	c          int
	w          int // widened share width W = bits(m+1) + 1
	m          int
	workers    int
	shares     [][]uint64 // coordinator share vectors over Z_{2^W}
	thresholds []uint64
	scalarMPC  func(stage string, sessID uint32, lo, hi int, circ *circuit.Circuit, inputs [][]bool, seed int64) (*gmw.Result, error)
}

// wideOut is the per-batch accounting record of stages B and C (both
// paths; the scalar path leaves count/waste unused where not applicable).
type wideOut struct {
	circ   circuit.Stats
	count  int
	stats  transport.Stats
	rounds int
	waste  int // padded lanes in ragged final slabs (wide path only)
}

// Session-id scheme of the wide path, keyed by identity offsets (slab
// offset for the wide runs, batch offset for the per-batch popcount
// opener). The three families occupy disjoint residue classes mod 3, so
// no two sessions ever share an id: CountBelow 1+3L ≡ 1, SliceCount
// 2+3B ≡ 2, Reveal 3+3L ≡ 0. The scalar 1+2b/2+2b ids are never minted
// when Wide is set.
func wideSessCountBelow(slabLo int) uint32 { return uint32(1 + 3*slabLo) }
func wideSessSliceCount(batchLo int) uint32 { return uint32(2 + 3*batchLo) }
func wideSessReveal(slabLo int) uint32     { return uint32(3 + 3*slabLo) }

// packPlanes transposes 64 per-lane values into bit-plane words (word i =
// bit i of every lane) and returns the first planes words. Values must fit
// in planes bits; rows is clobbered.
func packPlanes(rows *[64]uint64, planes int) []uint64 {
	bitmat.Transpose64(rows)
	out := make([]uint64, planes)
	copy(out, rows[:planes])
	return out
}

// runWide mirrors the scalar runMPC closure for bit-sliced executions:
// one session, one span, preprocessing per the configuration (wide-packed
// sharded dealer, or per-lane OT over the same session), mux teardown on
// failure so sibling batches abort promptly.
func (ws *wideState) runWide(stage string, sessID uint32, lo, hi int, circ *circuit.Circuit, inputs [][]uint64, seed int64, keepShared bool) (*gmw.WideResult, error) {
	sess, err := ws.mux.Session(sessID)
	if err != nil {
		return nil, fmt.Errorf("coordinator session: %w", err)
	}
	_, sp := trace.StartChild(ws.ctx, stage,
		trace.Int("slab_lo", lo), trace.Int("slab_hi", hi))
	transport.AttachSpan(sess, sp)
	defer sp.End()
	run := func(triples []gmw.WideTriples) (*gmw.WideResult, error) {
		if keepShared {
			return gmw.RunWideShared(sess, circ, inputs, triples, seed)
		}
		return gmw.RunWideWithTriples(sess, circ, inputs, triples, seed)
	}
	var res *gmw.WideResult
	andGates := circ.Stats().AndGates
	if ws.cfg.Triples == TripleOT {
		triples, terr := gmw.GenTriplesWideOT(sess, andGates, seed+7919)
		if terr != nil {
			sess.Close()
			ws.mux.Close()
			return nil, fmt.Errorf("OT preprocessing: %w", terr)
		}
		res, err = run(triples)
	} else {
		var triples []gmw.WideTriples
		triples, err = gmw.GenTriplesWideSharded(seed, ws.c, andGates, ws.workers)
		if err == nil {
			res, err = run(triples)
		}
	}
	sess.Close()
	if err != nil {
		ws.mux.Close()
		return nil, err
	}
	return res, nil
}

// countBelowBatch is the wide stage B for one identity batch: per slab, a
// shares-kept CountBelowSlice execution produces the 64 ≥-threshold bit
// shares; then ONE scalar SliceCount execution per batch opens the
// popcount of every kept lane share at once. Opening per batch — not per
// slab — matches the scalar path's release granularity exactly (batch
// counts are the only partial sums either path ever discloses) and costs
// one opener session instead of one per slab.
func (ws *wideState) countBelowBatch(lo, hi int) (wideOut, error) {
	var out wideOut
	cbCirc, err := circuit.CountBelowSliceCached(circuit.SliceParams{
		Parties: ws.c, ShareBits: ws.w, Arithmetic: ws.cfg.Arithmetic,
	})
	if err != nil {
		return out, fmt.Errorf("compile CountBelowSlice: %w", err)
	}
	mod := uint64(1) << uint(ws.w)
	laneShares := make([][]bool, ws.c)
	slabs := (hi - lo + gmw.WideLanes - 1) / gmw.WideLanes
	for k := range laneShares {
		laneShares[k] = make([]bool, 0, slabs*gmw.WideLanes)
	}
	for slabLo := lo; slabLo < hi; slabLo += gmw.WideLanes {
		slabHi := slabLo + gmw.WideLanes
		if slabHi > hi {
			slabHi = hi
		}
		active := slabHi - slabLo
		out.waste += gmw.WideLanes - active
		inputs := make([][]uint64, ws.c)
		for k := 0; k < ws.c; k++ {
			var rows [64]uint64
			for r := 0; r < active; r++ {
				j := slabLo + r
				v := ws.shares[k][j]
				if k == 0 {
					// Fold the public threshold into party 0's share so one
					// compiled circuit serves every slab.
					v = (v + mod - ws.thresholds[j]%mod) % mod
				}
				rows[r] = v
			}
			if k == 0 {
				// Padded lanes: zero shares with t = 1 folded ⟹ never ≥,
				// so they cannot perturb the count.
				for r := active; r < gmw.WideLanes; r++ {
					rows[r] = mod - 1
				}
			}
			inputs[k] = packPlanes(&rows, ws.w)
		}
		wres, err := ws.runWide("mpc.countbelow.wide", wideSessCountBelow(slabLo), slabLo, slabHi, cbCirc, inputs,
			mathx.DeriveSeed(ws.cfg.Seed, seedStreamWideCountBelow, uint64(slabLo)), true)
		if err != nil {
			return out, fmt.Errorf("CountBelowSlice MPC [%d:%d]: %w", slabLo, slabHi, err)
		}
		for k := range laneShares {
			word := wres.OutputShares[k][0]
			for s := 0; s < gmw.WideLanes; s++ {
				laneShares[k] = append(laneShares[k], word>>uint(s)&1 == 1)
			}
		}
		out.circ = addCircuitStats(out.circ, cbCirc.Stats())
		out.stats.Messages += wres.Stats.Messages
		out.stats.Bytes += wres.Stats.Bytes
		out.rounds += wres.Rounds
	}
	// One popcount opener for the whole batch (padded lanes carry zero
	// shares, so they cannot perturb the count).
	scCirc, err := circuit.SliceCountCached(circuit.SliceCountParams{
		Parties: ws.c, Slots: len(laneShares[0]), Arithmetic: ws.cfg.Arithmetic,
	})
	if err != nil {
		return out, fmt.Errorf("compile SliceCount: %w", err)
	}
	scRes, err := ws.scalarMPC("mpc.slicecount", wideSessSliceCount(lo), lo, hi, scCirc, laneShares,
		mathx.DeriveSeed(ws.cfg.Seed, seedStreamSliceCount, uint64(lo)))
	if err != nil {
		return out, fmt.Errorf("SliceCount MPC [%d:%d]: %w", lo, hi, err)
	}
	out.count = int(circuit.UnpackBits(scRes.Outputs))
	out.circ = addCircuitStats(out.circ, scCirc.Stats())
	out.stats.Messages += scRes.Stats.Messages
	out.stats.Bytes += scRes.Stats.Bytes
	out.rounds += scRes.Rounds
	return out, nil
}

// revealBatch is the wide stage C for one identity batch. The mixing
// coins replicate the scalar stream exactly — same per-batch seed, same
// party-major identity-minor draw order — so the hidden/mixed set, the β
// vector and therefore the published matrix are bit-identical to the
// scalar path. Padded lanes carry zero shares, zero coins and a folded
// t = 1; their outputs are discarded undecoded.
func (ws *wideState) revealBatch(b, lo, hi, coinBits int, coinMod, mixThreshold uint64, eps []float64, hidden []bool, betas []float64) (wideOut, error) {
	var out wideOut
	rvCirc, err := circuit.RevealSliceCached(circuit.SliceParams{
		Parties: ws.c, ShareBits: ws.w, CoinBits: coinBits,
		MixThreshold: mixThreshold, Arithmetic: ws.cfg.Arithmetic,
	})
	if err != nil {
		return out, fmt.Errorf("compile RevealSlice: %w", err)
	}
	coinRng := rand.New(rand.NewSource(mathx.DeriveSeed(ws.cfg.Seed, seedStreamCoins, uint64(b))))
	coinVals := make([][]uint64, ws.c)
	for k := 0; k < ws.c; k++ {
		coinVals[k] = make([]uint64, hi-lo)
		for j := lo; j < hi; j++ {
			coinVals[k][j-lo] = coinRng.Uint64() % coinMod
		}
	}
	mod := uint64(1) << uint(ws.w)
	for slabLo := lo; slabLo < hi; slabLo += gmw.WideLanes {
		slabHi := slabLo + gmw.WideLanes
		if slabHi > hi {
			slabHi = hi
		}
		active := slabHi - slabLo
		out.waste += gmw.WideLanes - active
		inputs := make([][]uint64, ws.c)
		for k := 0; k < ws.c; k++ {
			var shareRows, coinRows [64]uint64
			for r := 0; r < active; r++ {
				j := slabLo + r
				shareRows[r] = ws.shares[k][j]
				coinRows[r] = coinVals[k][j-lo]
			}
			in := make([]uint64, 0, 2*ws.w+coinBits)
			in = append(in, packPlanes(&shareRows, ws.w)...)
			in = append(in, packPlanes(&coinRows, coinBits)...)
			if k == 0 {
				var offRows [64]uint64
				for r := 0; r < active; r++ {
					offRows[r] = (mod - ws.thresholds[slabLo+r]%mod) % mod
				}
				for r := active; r < gmw.WideLanes; r++ {
					offRows[r] = mod - 1
				}
				in = append(in, packPlanes(&offRows, ws.w)...)
			}
			inputs[k] = in
		}
		wres, err := ws.runWide("mpc.reveal.wide", wideSessReveal(slabLo), slabLo, slabHi, rvCirc, inputs,
			mathx.DeriveSeed(ws.cfg.Seed, seedStreamWideReveal, uint64(slabLo)), false)
		if err != nil {
			return out, fmt.Errorf("RevealSlice MPC [%d:%d]: %w", slabLo, slabHi, err)
		}
		if len(wres.Outputs) != 1+ws.w {
			return out, fmt.Errorf("core: wide reveal output words %d, want %d", len(wres.Outputs), 1+ws.w)
		}
		for r := 0; r < active; r++ {
			j := slabLo + r
			hidden[j] = wres.Outputs[0]>>uint(r)&1 == 1
			if hidden[j] {
				betas[j] = 1
				continue
			}
			var freq uint64
			for i := 0; i < ws.w; i++ {
				freq |= (wres.Outputs[1+i] >> uint(r) & 1) << uint(i)
			}
			sigma := float64(freq) / float64(ws.m)
			bv, err := mathx.Beta(ws.cfg.Policy, mathx.BetaParams{
				Sigma: sigma, Epsilon: eps[j], M: ws.m, Delta: ws.cfg.Delta, Gamma: ws.cfg.Gamma,
			})
			if err != nil {
				return out, fmt.Errorf("β for identity %d: %w", j, err)
			}
			betas[j] = bv
		}
		out.circ = addCircuitStats(out.circ, rvCirc.Stats())
		out.stats.Messages += wres.Stats.Messages
		out.stats.Bytes += wres.Stats.Bytes
		out.rounds += wres.Rounds
	}
	return out, nil
}
