package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/circuit"
	"repro/internal/field"
	"repro/internal/gmw"
	"repro/internal/mathx"
	"repro/internal/secretshare"
	"repro/internal/secsum"
	"repro/internal/trace"
	"repro/internal/transport"
)

// addCircuitStats accumulates per-batch circuit statistics (sizes add;
// depth takes the maximum, as batches run sequentially but each batch's
// rounds are its own depth).
func addCircuitStats(acc, s circuit.Stats) circuit.Stats {
	acc.Wires += s.Wires
	acc.Gates += s.Gates
	acc.AndGates += s.AndGates
	acc.FreeGates += s.FreeGates
	acc.Inputs += s.Inputs
	acc.Outputs += s.Outputs
	if s.AndDepth > acc.AndDepth {
		acc.AndDepth = s.AndDepth
	}
	return acc
}

// constructSecure runs the real distributed pipeline of Section IV:
//
//	Stage A (m providers): SecSumShare → c coordinator share vectors over
//	        the additive group Z_{2^k}, k = bits(m+1).
//	Stage B (c coordinators, GMW): CountBelow → public common count.
//	        λ is then computed publicly from the count (Equation 7).
//	Stage C (c coordinators, GMW): Reveal → per identity, a hidden bit
//	        (common ∨ mixed) and the frequency, opened only when not
//	        hidden. β follows Equation 6.
//	Phase 2 (every provider, local): randomized publication.
//
// ξ is taken over identities that *can* be common (public thresholds
// t_j <= m); the trusted path uses the paper's exact max-over-true-commons,
// which the secure path cannot evaluate without leaking the common set.
// The conservative ξ only ever increases λ, i.e. strengthens mixing.
func constructSecure(ctx context.Context, truth *bitmat.Matrix, eps []float64, thresholds []uint64, cfg Config) (*Result, error) {
	m, n := truth.Rows(), truth.Cols()
	c := cfg.C
	if m < c {
		return nil, fmt.Errorf("%w: %d providers cannot host %d coordinators", ErrBadConfig, m, c)
	}
	newNet := cfg.NewNetwork
	if newNet == nil {
		newNet = func(parties int) (transport.Network, error) { return transport.NewInMem(parties) }
	}
	shareBits := circuit.BitsNeeded(uint64(m + 1))
	group, err := field.NewAdditive(1 << uint(shareBits))
	if err != nil {
		return nil, err
	}
	scheme, err := secretshare.New(group, c)
	if err != nil {
		return nil, err
	}
	stats := &SecureStats{}

	// --- Stage A: SecSumShare over all m providers -------------------------
	inputs := make([][]uint64, m)
	for i := 0; i < m; i++ {
		row := make([]uint64, n)
		for j := 0; j < n; j++ {
			if truth.Get(i, j) {
				row[j] = 1
			}
		}
		inputs[i] = row
	}
	provNet, err := newNet(m)
	if err != nil {
		return nil, fmt.Errorf("provider network: %w", err)
	}
	transport.Instrument(provNet, cfg.Metrics)
	_, ssSpan := trace.StartChild(ctx, "secsum.share")
	transport.AttachSpan(provNet, ssSpan)
	sumRes, err := secsum.Run(provNet, scheme, inputs, cfg.Seed)
	ssSpan.End()
	closeErr := provNet.Close()
	if err != nil {
		return nil, fmt.Errorf("SecSumShare: %w", err)
	}
	if closeErr != nil {
		return nil, fmt.Errorf("provider network close: %w", closeErr)
	}
	stats.SecSum = sumRes.Stats
	stats.SecSumRounds = sumRes.Rounds

	// runMPC executes one coordinator-side secure computation, sourcing
	// preprocessing per the configuration (dealer, or pairwise OT run over
	// the same fresh network before the online phase). Each invocation is
	// one span (stage names the circuit, lo/hi the identity batch), and the
	// fresh network carries it so the GMW/OT phase spans nest underneath.
	runMPC := func(stage string, lo, hi int, circ *circuit.Circuit, inputs [][]bool, seed int64) (*gmw.Result, error) {
		mpcNet, err := newNet(c)
		if err != nil {
			return nil, fmt.Errorf("coordinator network: %w", err)
		}
		transport.Instrument(mpcNet, cfg.Metrics)
		_, mpcSpan := trace.StartChild(ctx, stage,
			trace.Int("batch_lo", lo), trace.Int("batch_hi", hi))
		transport.AttachSpan(mpcNet, mpcSpan)
		defer mpcSpan.End()
		var res *gmw.Result
		if cfg.Triples == TripleOT {
			triples, terr := gmw.GenTriplesOT(mpcNet, circ.Stats().AndGates, seed+7919)
			if terr != nil {
				mpcNet.Close()
				return nil, fmt.Errorf("OT preprocessing: %w", terr)
			}
			res, err = gmw.RunWithTriples(mpcNet, circ, inputs, triples, seed)
		} else {
			res, err = gmw.Run(mpcNet, circ, inputs, seed)
		}
		closeErr := mpcNet.Close()
		if err != nil {
			return nil, err
		}
		if closeErr != nil {
			return nil, fmt.Errorf("coordinator network close: %w", closeErr)
		}
		return res, nil
	}

	// --- Stage B: CountBelow among the c coordinators ----------------------
	// Identities are processed in batches (Config.BatchSize) so circuit
	// size and memory stay bounded for large n. The per-batch common
	// counts are summed into the global count; batch boundaries are public
	// parameters, so the extra release is the count granularity only.
	batch := cfg.BatchSize
	if batch <= 0 || batch > n {
		batch = n
	}
	commonCount := 0
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		cbCirc, err := circuit.CountBelow(circuit.CountBelowParams{
			Parties:    c,
			Identities: hi - lo,
			ShareBits:  shareBits,
			Thresholds: thresholds[lo:hi],
			Arithmetic: cfg.Arithmetic,
		})
		if err != nil {
			return nil, fmt.Errorf("compile CountBelow [%d:%d]: %w", lo, hi, err)
		}
		stats.CountBelowCircuit = addCircuitStats(stats.CountBelowCircuit, cbCirc.Stats())
		cbInputs := make([][]bool, c)
		for k := 0; k < c; k++ {
			bits := make([]bool, 0, (hi-lo)*shareBits)
			for j := lo; j < hi; j++ {
				bits = append(bits, circuit.PackBits(sumRes.CoordinatorShares[k][j], shareBits)...)
			}
			cbInputs[k] = bits
		}
		cbRes, err := runMPC("mpc.countbelow", lo, hi, cbCirc, cbInputs, cfg.Seed+1+int64(lo))
		if err != nil {
			return nil, fmt.Errorf("CountBelow MPC [%d:%d]: %w", lo, hi, err)
		}
		commonCount += int(circuit.UnpackBits(cbRes.Outputs))
		stats.MPC.Messages += cbRes.Stats.Messages
		stats.MPC.Bytes += cbRes.Stats.Bytes
		stats.MPCRounds += cbRes.Rounds
	}

	// λ from the public count (Equation 7), with conservative public ξ.
	_, mixSpan := trace.StartChild(ctx, "core.mixing", trace.Int("common_count", commonCount))
	xi := cfg.XiOverride
	if xi <= 0 {
		for j := 0; j < n; j++ {
			if thresholds[j] <= uint64(m) && eps[j] > xi {
				xi = eps[j]
			}
		}
	}
	lambda, err := mathx.Lambda(xi, commonCount, n)
	if err != nil {
		mixSpan.End()
		return nil, err
	}
	coinBits := cfg.coinBits()
	coinMod := uint64(1) << uint(coinBits)
	mixThreshold := uint64(lambda * float64(coinMod))
	if mixThreshold >= coinMod {
		mixThreshold = coinMod - 1 // λ ≈ 1 clamped to the coin resolution
	}
	mixSpan.End()

	// --- Stage C: Reveal among the c coordinators (same batching) ----------
	coinRng := rand.New(rand.NewSource(cfg.Seed + 2))
	hidden := make([]bool, n)
	betas := make([]float64, n)
	per := 1 + shareBits
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		rvCirc, err := circuit.Reveal(circuit.RevealParams{
			Parties:      c,
			Identities:   hi - lo,
			ShareBits:    shareBits,
			Thresholds:   thresholds[lo:hi],
			CoinBits:     coinBits,
			MixThreshold: mixThreshold,
			Arithmetic:   cfg.Arithmetic,
		})
		if err != nil {
			return nil, fmt.Errorf("compile Reveal [%d:%d]: %w", lo, hi, err)
		}
		stats.RevealCircuit = addCircuitStats(stats.RevealCircuit, rvCirc.Stats())
		rvInputs := make([][]bool, c)
		for k := 0; k < c; k++ {
			bits := make([]bool, 0, (hi-lo)*(shareBits+coinBits))
			for j := lo; j < hi; j++ {
				bits = append(bits, circuit.PackBits(sumRes.CoordinatorShares[k][j], shareBits)...)
				bits = append(bits, circuit.PackBits(coinRng.Uint64()%coinMod, coinBits)...)
			}
			rvInputs[k] = bits
		}
		rvRes, err := runMPC("mpc.reveal", lo, hi, rvCirc, rvInputs, cfg.Seed+3+int64(lo))
		if err != nil {
			return nil, fmt.Errorf("Reveal MPC [%d:%d]: %w", lo, hi, err)
		}
		stats.MPC.Messages += rvRes.Stats.Messages
		stats.MPC.Bytes += rvRes.Stats.Bytes
		stats.MPCRounds += rvRes.Rounds

		// Decode per-identity (hidden, maskedFreq) and derive β (Eq. 6).
		if len(rvRes.Outputs) != per*(hi-lo) {
			return nil, fmt.Errorf("core: reveal output length %d, want %d", len(rvRes.Outputs), per*(hi-lo))
		}
		for j := lo; j < hi; j++ {
			off := (j - lo) * per
			hidden[j] = rvRes.Outputs[off]
			if hidden[j] {
				betas[j] = 1
				continue
			}
			freq := circuit.UnpackBits(rvRes.Outputs[off+1 : off+per])
			sigma := float64(freq) / float64(m)
			b, err := mathx.Beta(cfg.Policy, mathx.BetaParams{
				Sigma: sigma, Epsilon: eps[j], M: m, Delta: cfg.Delta, Gamma: cfg.Gamma,
			})
			if err != nil {
				return nil, fmt.Errorf("β for identity %d: %w", j, err)
			}
			betas[j] = b
		}
	}

	// Phase 2: every provider publishes locally using the public β vector.
	_, pubSpan := trace.StartChild(ctx, "core.publish")
	pubRng := rand.New(rand.NewSource(cfg.Seed + 4))
	published := Publish(truth, betas, pubRng)
	pubSpan.End()
	return &Result{
		Published:   published,
		Betas:       betas,
		Thresholds:  thresholds,
		Hidden:      hidden,
		CommonCount: commonCount,
		Lambda:      lambda,
		Xi:          xi,
		Secure:      stats,
	}, nil
}
