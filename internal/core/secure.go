package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bitmat"
	"repro/internal/circuit"
	"repro/internal/field"
	"repro/internal/gmw"
	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/secretshare"
	"repro/internal/secsum"
	"repro/internal/trace"
	"repro/internal/transport"
)

// addCircuitStats accumulates per-batch circuit statistics (sizes add;
// depth takes the maximum: each batch's rounds are its own depth, and
// concurrent batches do not deepen any single circuit).
func addCircuitStats(acc, s circuit.Stats) circuit.Stats {
	acc.Wires += s.Wires
	acc.Gates += s.Gates
	acc.AndGates += s.AndGates
	acc.FreeGates += s.FreeGates
	acc.Inputs += s.Inputs
	acc.Outputs += s.Outputs
	if s.AndDepth > acc.AndDepth {
		acc.AndDepth = s.AndDepth
	}
	return acc
}

// pickBatchErr selects the error to surface from a set of per-batch
// results: the first (lowest-batch) error that is not a transport-closed
// cascade, falling back to the first error. When one batch fails the
// whole mux is closed to abort its siblings, so most entries are
// ErrClosed victims of the real failure.
func pickBatchErr(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil || (errors.Is(first, transport.ErrClosed) && !errors.Is(err, transport.ErrClosed)) {
			first = err
		}
	}
	return first
}

// constructSecure runs the real distributed pipeline of Section IV:
//
//	Stage A (m providers): SecSumShare → c coordinator share vectors over
//	        the additive group Z_{2^k}, k = bits(m+1).
//	Stage B (c coordinators, GMW): CountBelow → public common count.
//	        λ is then computed publicly from the count (Equation 7).
//	Stage C (c coordinators, GMW): Reveal → per identity, a hidden bit
//	        (common ∨ mixed) and the frequency, opened only when not
//	        hidden. β follows Equation 6.
//	Phase 2 (every provider, local): randomized publication.
//
// The identity batches of stages B and C are independent computations, so
// they run concurrently (up to Config.Workers), each over its own logical
// session of one shared coordinator network (transport.SessionMux) so
// concurrent batches never interleave messages. Per-batch randomness —
// protocol seeds and mixing coins — derives from (Seed, stage stream,
// batch index), keeping the whole run bit-identical at any worker count.
//
// ξ is taken over identities that *can* be common (public thresholds
// t_j <= m); the trusted path uses the paper's exact max-over-true-commons,
// which the secure path cannot evaluate without leaking the common set.
// The conservative ξ only ever increases λ, i.e. strengthens mixing.
func constructSecure(ctx context.Context, truth *bitmat.Matrix, eps []float64, thresholds []uint64, cfg Config) (*Result, error) {
	m, n := truth.Rows(), truth.Cols()
	c := cfg.C
	workers := cfg.workers()
	if m < c {
		return nil, fmt.Errorf("%w: %d providers cannot host %d coordinators", ErrBadConfig, m, c)
	}
	newNet := cfg.NewNetwork
	if newNet == nil {
		newNet = func(parties int) (transport.Network, error) { return transport.NewInMem(parties) }
	}
	shareBits := circuit.BitsNeeded(uint64(m + 1))
	groupBits := shareBits
	if cfg.Wide {
		// The wide slab comparator folds the public threshold into party
		// 0's share and reads the sign bit of freq − t, which needs one bit
		// of sign slack: shares live in Z_{2^W}, W = bits(m+1) + 1. The
		// wider group changes no frequency (Σ shares mod 2^W = freq because
		// freq ≤ m < 2^(W−1)), so the published matrix is unaffected.
		groupBits++
	}
	group, err := field.NewAdditive(1 << uint(groupBits))
	if err != nil {
		return nil, err
	}
	scheme, err := secretshare.New(group, c)
	if err != nil {
		return nil, err
	}
	stats := &SecureStats{}

	// --- Stage A: SecSumShare over all m providers -------------------------
	inputs := make([][]uint64, m)
	parallel.Blocks(workers, m, rowShard, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			row := make([]uint64, n)
			for j := 0; j < n; j++ {
				if truth.Get(i, j) {
					row[j] = 1
				}
			}
			inputs[i] = row
		}
		return nil
	})
	provNet, err := newNet(m)
	if err != nil {
		return nil, fmt.Errorf("provider network: %w", err)
	}
	transport.Instrument(provNet, cfg.Metrics)
	_, ssSpan := trace.StartChild(ctx, "secsum.share")
	transport.AttachSpan(provNet, ssSpan)
	sumRes, err := secsum.Run(provNet, scheme, inputs, cfg.Seed)
	ssSpan.End()
	closeErr := provNet.Close()
	if err != nil {
		return nil, fmt.Errorf("SecSumShare: %w", err)
	}
	if closeErr != nil {
		return nil, fmt.Errorf("provider network close: %w", closeErr)
	}
	stats.SecSum = sumRes.Stats
	stats.SecSumRounds = sumRes.Rounds

	// One physical coordinator network for the whole run, multiplexed into
	// per-batch sessions so concurrent batches cannot interleave messages.
	// Registry instrumentation sits on the physical network (each wire
	// message counted once); spans attach per session (exact per-batch
	// attribution).
	coordNet, err := newNet(c)
	if err != nil {
		return nil, fmt.Errorf("coordinator network: %w", err)
	}
	transport.Instrument(coordNet, cfg.Metrics)
	mux := transport.NewSessionMux(coordNet)
	defer mux.Close()

	// runMPC executes one coordinator-side secure computation over its own
	// session, sourcing preprocessing per the configuration (sharded
	// dealer, or pairwise OT run over the same session before the online
	// phase). Each invocation is one span (stage names the circuit, lo/hi
	// the identity batch); the session carries it so the GMW/OT phase
	// spans nest underneath. On failure the whole mux is closed so
	// sibling batches abort promptly instead of waiting on a dead peer.
	runMPC := func(stage string, sessID uint32, lo, hi int, circ *circuit.Circuit, inputs [][]bool, seed int64) (*gmw.Result, error) {
		sess, err := mux.Session(sessID)
		if err != nil {
			return nil, fmt.Errorf("coordinator session: %w", err)
		}
		_, mpcSpan := trace.StartChild(ctx, stage,
			trace.Int("batch_lo", lo), trace.Int("batch_hi", hi))
		transport.AttachSpan(sess, mpcSpan)
		defer mpcSpan.End()
		var res *gmw.Result
		if cfg.Triples == TripleOT {
			triples, terr := gmw.GenTriplesOT(sess, circ.Stats().AndGates, seed+7919)
			if terr != nil {
				sess.Close()
				mux.Close()
				return nil, fmt.Errorf("OT preprocessing: %w", terr)
			}
			res, err = gmw.RunWithTriples(sess, circ, inputs, triples, seed)
		} else {
			var triples []gmw.PartyTriples
			triples, err = gmw.GenTriplesSharded(seed, c, circ.Stats().AndGates, workers)
			if err == nil {
				res, err = gmw.RunWithTriples(sess, circ, inputs, triples, seed)
			}
		}
		sess.Close()
		if err != nil {
			mux.Close()
			return nil, err
		}
		return res, nil
	}

	// In wide mode the per-batch stages below are replaced by slab-level
	// bit-sliced executions; the batching geometry, coin streams and every
	// opened value stay identical to the scalar path.
	var ws *wideState
	if cfg.Wide {
		ws = &wideState{
			ctx:        ctx,
			cfg:        cfg,
			mux:        mux,
			c:          c,
			w:          groupBits,
			m:          m,
			workers:    workers,
			shares:     sumRes.CoordinatorShares,
			thresholds: thresholds,
			scalarMPC:  runMPC,
		}
	}

	// --- Stage B: CountBelow among the c coordinators ----------------------
	// Identities are processed in batches (Config.BatchSize) so circuit
	// size and memory stay bounded for large n; the batches are
	// independent and run concurrently up to Workers. The per-batch common
	// counts are summed into the global count; batch boundaries are public
	// parameters, so the extra release is the count granularity only.
	batch := cfg.BatchSize
	if batch <= 0 || batch > n {
		batch = n
	}
	nb := (n + batch - 1) / batch
	mpcStart := time.Now()
	cbOuts := make([]wideOut, nb)
	cbErrs := make([]error, nb)
	parallel.For(workers, nb, func(b int) error {
		lo := b * batch
		hi := lo + batch
		if hi > n {
			hi = n
		}
		if cfg.Wide {
			out, err := ws.countBelowBatch(lo, hi)
			if err != nil {
				cbErrs[b] = fmt.Errorf("wide CountBelow [%d:%d]: %w", lo, hi, err)
				return cbErrs[b]
			}
			cbOuts[b] = out
			return nil
		}
		cbCirc, err := circuit.CountBelowCached(circuit.CountBelowParams{
			Parties:    c,
			Identities: hi - lo,
			ShareBits:  shareBits,
			Thresholds: thresholds[lo:hi],
			Arithmetic: cfg.Arithmetic,
		})
		if err != nil {
			cbErrs[b] = fmt.Errorf("compile CountBelow [%d:%d]: %w", lo, hi, err)
			return cbErrs[b]
		}
		cbInputs := make([][]bool, c)
		for k := 0; k < c; k++ {
			bits := make([]bool, 0, (hi-lo)*shareBits)
			for j := lo; j < hi; j++ {
				bits = append(bits, circuit.PackBits(sumRes.CoordinatorShares[k][j], shareBits)...)
			}
			cbInputs[k] = bits
		}
		cbRes, err := runMPC("mpc.countbelow", uint32(1+2*b), lo, hi, cbCirc, cbInputs,
			mathx.DeriveSeed(cfg.Seed, seedStreamCountBelow, uint64(b)))
		if err != nil {
			cbErrs[b] = fmt.Errorf("CountBelow MPC [%d:%d]: %w", lo, hi, err)
			return cbErrs[b]
		}
		cbOuts[b] = wideOut{
			circ:   cbCirc.Stats(),
			count:  int(circuit.UnpackBits(cbRes.Outputs)),
			stats:  cbRes.Stats,
			rounds: cbRes.Rounds,
		}
		return nil
	})
	if err := pickBatchErr(cbErrs); err != nil {
		return nil, err
	}
	commonCount := 0
	for _, out := range cbOuts { // reduce in batch order: deterministic accounting
		stats.CountBelowCircuit = addCircuitStats(stats.CountBelowCircuit, out.circ)
		commonCount += out.count
		stats.MPC.Messages += out.stats.Messages
		stats.MPC.Bytes += out.stats.Bytes
		stats.MPCRounds += out.rounds
	}

	// λ from the public count (Equation 7), with conservative public ξ.
	_, mixSpan := trace.StartChild(ctx, "core.mixing", trace.Int("common_count", commonCount))
	xi := cfg.XiOverride
	if xi <= 0 {
		for j := 0; j < n; j++ {
			if thresholds[j] <= uint64(m) && eps[j] > xi {
				xi = eps[j]
			}
		}
	}
	lambda, err := mathx.Lambda(xi, commonCount, n)
	if err != nil {
		mixSpan.End()
		return nil, err
	}
	coinBits := cfg.coinBits()
	coinMod := uint64(1) << uint(coinBits)
	mixThreshold := uint64(lambda * float64(coinMod))
	if mixThreshold >= coinMod {
		mixThreshold = coinMod - 1 // λ ≈ 1 clamped to the coin resolution
	}
	mixSpan.End()

	// --- Stage C: Reveal among the c coordinators (same batching) ----------
	// Mixing coins derive per batch from (Seed, seedStreamCoins, batch),
	// so the coin sequence of a batch does not depend on which batches ran
	// before it — the prerequisite for running them concurrently while
	// keeping the run reproducible.
	hidden := make([]bool, n)
	betas := make([]float64, n)
	per := 1 + shareBits
	rvOuts := make([]wideOut, nb)
	rvErrs := make([]error, nb)
	parallel.For(workers, nb, func(b int) error {
		lo := b * batch
		hi := lo + batch
		if hi > n {
			hi = n
		}
		if cfg.Wide {
			out, err := ws.revealBatch(b, lo, hi, coinBits, coinMod, mixThreshold, eps, hidden, betas)
			if err != nil {
				rvErrs[b] = fmt.Errorf("wide Reveal [%d:%d]: %w", lo, hi, err)
				return rvErrs[b]
			}
			rvOuts[b] = out
			return nil
		}
		rvCirc, err := circuit.RevealCached(circuit.RevealParams{
			Parties:      c,
			Identities:   hi - lo,
			ShareBits:    shareBits,
			Thresholds:   thresholds[lo:hi],
			CoinBits:     coinBits,
			MixThreshold: mixThreshold,
			Arithmetic:   cfg.Arithmetic,
		})
		if err != nil {
			rvErrs[b] = fmt.Errorf("compile Reveal [%d:%d]: %w", lo, hi, err)
			return rvErrs[b]
		}
		coinRng := rand.New(rand.NewSource(mathx.DeriveSeed(cfg.Seed, seedStreamCoins, uint64(b))))
		rvInputs := make([][]bool, c)
		for k := 0; k < c; k++ {
			bits := make([]bool, 0, (hi-lo)*(shareBits+coinBits))
			for j := lo; j < hi; j++ {
				bits = append(bits, circuit.PackBits(sumRes.CoordinatorShares[k][j], shareBits)...)
				bits = append(bits, circuit.PackBits(coinRng.Uint64()%coinMod, coinBits)...)
			}
			rvInputs[k] = bits
		}
		rvRes, err := runMPC("mpc.reveal", uint32(2+2*b), lo, hi, rvCirc, rvInputs,
			mathx.DeriveSeed(cfg.Seed, seedStreamReveal, uint64(b)))
		if err != nil {
			rvErrs[b] = fmt.Errorf("Reveal MPC [%d:%d]: %w", lo, hi, err)
			return rvErrs[b]
		}

		// Decode per-identity (hidden, maskedFreq) and derive β (Eq. 6).
		// Batches write disjoint [lo:hi) ranges of hidden/betas.
		if len(rvRes.Outputs) != per*(hi-lo) {
			rvErrs[b] = fmt.Errorf("core: reveal output length %d, want %d", len(rvRes.Outputs), per*(hi-lo))
			return rvErrs[b]
		}
		for j := lo; j < hi; j++ {
			off := (j - lo) * per
			hidden[j] = rvRes.Outputs[off]
			if hidden[j] {
				betas[j] = 1
				continue
			}
			freq := circuit.UnpackBits(rvRes.Outputs[off+1 : off+per])
			sigma := float64(freq) / float64(m)
			bv, err := mathx.Beta(cfg.Policy, mathx.BetaParams{
				Sigma: sigma, Epsilon: eps[j], M: m, Delta: cfg.Delta, Gamma: cfg.Gamma,
			})
			if err != nil {
				rvErrs[b] = fmt.Errorf("β for identity %d: %w", j, err)
				return rvErrs[b]
			}
			betas[j] = bv
		}
		rvOuts[b] = wideOut{circ: rvCirc.Stats(), stats: rvRes.Stats, rounds: rvRes.Rounds}
		return nil
	})
	if err := pickBatchErr(rvErrs); err != nil {
		return nil, err
	}
	for _, out := range rvOuts {
		stats.RevealCircuit = addCircuitStats(stats.RevealCircuit, out.circ)
		stats.MPC.Messages += out.stats.Messages
		stats.MPC.Bytes += out.stats.Bytes
		stats.MPCRounds += out.rounds
	}
	stats.MPCWall = time.Since(mpcStart)
	if cfg.Wide {
		waste := 0
		for _, out := range cbOuts {
			waste += out.waste
		}
		for _, out := range rvOuts {
			waste += out.waste
		}
		if g := cfg.Metrics.Gauge("eppi_gmw_slab_waste_slots",
			"Padded lanes across the wide slab executions of the most recent secure construction (CountBelow and Reveal passes counted separately; 0 when every slab is full)."); g != nil {
			g.Set(float64(waste))
		}
	}
	if err := mux.Close(); err != nil {
		return nil, fmt.Errorf("coordinator network close: %w", err)
	}

	// Phase 2: every provider publishes locally using the public β vector.
	published := publishSharded(ctx, truth, betas, cfg.Seed, workers)
	return &Result{
		Published:   published,
		Betas:       betas,
		Thresholds:  thresholds,
		Hidden:      hidden,
		CommonCount: commonCount,
		Lambda:      lambda,
		Xi:          xi,
		Secure:      stats,
	}, nil
}
