// Package core implements the ε-PPI construction engine: the two-phase
// framework of Section III of the paper (β calculation, then randomized
// publication), including the common-identity mixing defence.
//
// Two execution paths produce identical statistical behaviour:
//
//   - ModeTrusted computes identity frequencies directly from the private
//     matrix. It exists for large-scale simulation (Figures 4 and 5 use
//     networks of 10,000 providers) where running the cryptographic
//     protocol per sample would dominate experiment time.
//
//   - ModeSecure runs the real distributed pipeline: SecSumShare over all
//     m providers, then two GMW computations among the c coordinators
//     (CountBelow for the common count, Reveal for per-identity mixing and
//     masked frequency release). No frequency of a hidden identity is ever
//     reconstructed outside a circuit.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/bitmat"
	"repro/internal/circuit"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Mode selects the construction execution path.
type Mode int

// Construction modes.
const (
	// ModeTrusted aggregates frequencies in the clear (simulation path).
	ModeTrusted Mode = iota + 1
	// ModeSecure runs SecSumShare + GMW (the paper's actual protocol).
	ModeSecure
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeTrusted:
		return "trusted"
	case ModeSecure:
		return "secure"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DefaultCoinBits is the default mixing-coin precision (λ resolution of
// 2^-16).
const DefaultCoinBits = 16

// TripleSource selects the Beaver-triple preprocessing for ModeSecure.
type TripleSource int

// Triple sources. The zero value is the dealer because it is the sensible
// default for simulation-scale runs (the paper's FairplayMP likewise
// assumes preprocessing exists).
const (
	// TripleDealer uses a trusted offline dealer (fast; the default).
	TripleDealer TripleSource = iota
	// TripleOT generates triples with the pairwise oblivious-transfer
	// protocol (gmw.GenTriplesOT) — no trusted party, at real
	// public-key-operation cost.
	TripleOT
)

// String names the source.
func (s TripleSource) String() string {
	switch s {
	case TripleDealer:
		return "dealer"
	case TripleOT:
		return "ot"
	default:
		return fmt.Sprintf("triples(%d)", int(s))
	}
}

// Config parameterises a construction run.
type Config struct {
	// Policy selects the β-calculation policy.
	Policy mathx.Policy
	// Delta is Δ for mathx.PolicyIncremented.
	Delta float64
	// Gamma is γ for mathx.PolicyChernoff.
	Gamma float64
	// Mode selects trusted aggregation or the secure protocol.
	Mode Mode
	// C is the coordinator count (collusion tolerance) for ModeSecure.
	C int
	// CoinBits is the mixing-coin precision (DefaultCoinBits when 0).
	CoinBits int
	// Seed drives all randomness of the run (deterministic experiments).
	Seed int64
	// XiOverride, when positive, fixes the mixing fraction ξ instead of
	// deriving it from the ε of common identities.
	XiOverride float64
	// BatchSize caps the number of identities compiled into a single MPC
	// circuit in ModeSecure; larger identity sets are processed in
	// independent batches (run concurrently up to Workers, each over its
	// own transport session), bounding circuit size and memory. 0 means
	// one batch for everything.
	BatchSize int
	// Workers bounds the construction worker pool: β-threshold shards,
	// column aggregation, concurrent MPC identity batches, and randomized
	// publication shards all share it. 0 means runtime.NumCPU(); 1 forces
	// the sequential path. Per-shard randomness is derived from Seed with
	// mathx.DeriveSeed, so results are bit-identical at any worker count.
	Workers int
	// Triples selects the MPC preprocessing source (dealer by default;
	// TripleOT runs the real oblivious-transfer protocol).
	Triples TripleSource
	// Wide, in ModeSecure, evaluates the CountBelow/Reveal stages with the
	// bit-sliced 64-wide GMW evaluator: identities are scheduled onto
	// 64-lane slabs, one protocol execution per slab instead of one per
	// identity batch circuit. The published matrix is bit-identical to the
	// scalar path at any worker count; only the protocol cost changes.
	Wide bool
	// Arithmetic selects the circuit adder style: ripple (default) or
	// log-depth parallel-prefix, which trades AND gates for fewer GMW
	// communication rounds (latency-bound deployments).
	Arithmetic circuit.Style
	// NewNetwork supplies the transport for ModeSecure; defaults to the
	// in-memory transport.
	NewNetwork func(parties int) (transport.Network, error)
	// Metrics, when non-nil, instruments every protocol network of a
	// ModeSecure run: per-kind transport traffic plus SecSumShare and GMW
	// phase timers report into this registry.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records one trace per Construct call (unless
	// the caller's context already carries a span, in which case the run
	// nests under it): a root span with child spans for β-threshold
	// calculation, SecSumShare, each MPC batch (OT preprocessing and GMW
	// phases included), identity mixing, and publication. Per-stage
	// transport traffic is attributed to the stage spans.
	Tracer *trace.Tracer
}

func (c Config) coinBits() int {
	if c.CoinBits == 0 {
		return DefaultCoinBits
	}
	return c.CoinBits
}

// workers resolves Config.Workers to the effective pool size.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

var (
	// ErrBadConfig reports an invalid configuration.
	ErrBadConfig = errors.New("core: invalid configuration")
	// ErrShape reports mismatched matrix/ε dimensions.
	ErrShape = errors.New("core: ε vector does not match matrix")
)

func (c Config) validate() error {
	if !c.Policy.Valid() {
		return fmt.Errorf("%w: policy %v", ErrBadConfig, c.Policy)
	}
	switch c.Mode {
	case ModeTrusted:
	case ModeSecure:
		if c.C < 2 {
			return fmt.Errorf("%w: secure mode needs C >= 2, got %d", ErrBadConfig, c.C)
		}
	default:
		return fmt.Errorf("%w: mode %v", ErrBadConfig, c.Mode)
	}
	if c.CoinBits < 0 || c.CoinBits > 62 {
		return fmt.Errorf("%w: coin bits %d", ErrBadConfig, c.CoinBits)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("%w: batch size %d", ErrBadConfig, c.BatchSize)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: workers %d", ErrBadConfig, c.Workers)
	}
	if c.Triples != TripleDealer && c.Triples != TripleOT {
		return fmt.Errorf("%w: triple source %v", ErrBadConfig, c.Triples)
	}
	return nil
}

// SecureStats records the cost of the secure pipeline stages.
type SecureStats struct {
	// SecSum is the traffic of the SecSumShare stage.
	SecSum transport.Stats
	// SecSumRounds is its round count (always 2).
	SecSumRounds int
	// CountBelowCircuit summarises the common-count circuit.
	CountBelowCircuit circuit.Stats
	// RevealCircuit summarises the mixing/reveal circuit.
	RevealCircuit circuit.Stats
	// MPC is the combined traffic of both GMW executions.
	MPC transport.Stats
	// MPCRounds is the combined GMW round count.
	MPCRounds int
	// MPCWall is the wall time of the CountBelow/Reveal construction
	// stages (circuit compilation, preprocessing and protocol execution;
	// SecSumShare and publication excluded) — the phase the wide evaluator
	// accelerates, benchmarked by eppi-bench -mpcbench.
	MPCWall time.Duration
}

// Result is the outcome of a construction run.
type Result struct {
	// Published is the constructed matrix M' (same shape as the input M).
	Published *bitmat.Matrix
	// Betas holds the final per-identity publishing probabilities β_j
	// (1 for hidden identities).
	Betas []float64
	// Thresholds holds the public common thresholds t_j (frequency counts;
	// m+1 means the identity can never be common).
	Thresholds []uint64
	// Hidden marks identities published as common (true commons plus
	// mixed-in non-commons).
	Hidden []bool
	// CommonCount is the number of true common identities (in ModeSecure
	// this is the count released by CountBelow — the only frequency-derived
	// scalar the protocol reveals).
	CommonCount int
	// Lambda is the mixing probability applied to non-common identities.
	Lambda float64
	// Xi is the false-positive fraction targeted within the published
	// common set.
	Xi float64
	// Secure carries protocol cost accounting (nil in ModeTrusted).
	Secure *SecureStats
}

// rawBeta evaluates the configured policy without clamping.
func (c Config) rawBeta(sigma, epsilon float64, m int) float64 {
	switch c.Policy {
	case mathx.PolicyBasic:
		return mathx.BetaBasic(sigma, epsilon)
	case mathx.PolicyIncremented:
		return mathx.BetaIncremented(sigma, epsilon, c.Delta)
	default:
		return mathx.BetaChernoff(sigma, epsilon, m, c.Gamma)
	}
}

// Threshold returns t_j: the smallest frequency count (1..m) at which the
// configured policy reaches β* >= 1 for privacy degree epsilon, or m+1 if
// the identity can never be common. The policies are monotone in σ, so a
// binary search suffices; the result is public (it depends only on public
// parameters), matching Algorithm 1's σ' computation.
func (c Config) Threshold(epsilon float64, m int) uint64 {
	if m <= 0 {
		return 1
	}
	if !mathx.IsCommon(c.rawBeta(1, epsilon, m)) {
		return uint64(m + 1)
	}
	lo, hi := 1, m // invariant: answer in [lo, hi]
	for lo < hi {
		mid := (lo + hi) / 2
		if mathx.IsCommon(c.rawBeta(float64(mid)/float64(m), epsilon, m)) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint64(lo)
}

// Construct builds the ε-PPI for private matrix truth (providers × owners)
// and per-owner privacy degrees eps.
func Construct(truth *bitmat.Matrix, eps []float64, cfg Config) (*Result, error) {
	return ConstructCtx(context.Background(), truth, eps, cfg)
}

// ConstructCtx is Construct with an explicit context. When the context
// carries a trace span (or cfg.Tracer is set) the run records a span tree
// covering every construction phase: β-threshold calculation, SecSumShare,
// OT preprocessing, GMW evaluation, identity mixing and publication.
func ConstructCtx(ctx context.Context, truth *bitmat.Matrix, eps []float64, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m, n := truth.Rows(), truth.Cols()
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("%w: empty matrix %dx%d", ErrShape, m, n)
	}
	if len(eps) != n {
		return nil, fmt.Errorf("%w: %d ε values for %d owners", ErrShape, len(eps), n)
	}
	for j, e := range eps {
		if e < 0 || e > 1 {
			return nil, fmt.Errorf("%w: ε[%d]=%v out of [0,1]", ErrShape, j, e)
		}
	}

	// Open a root span when the caller supplied a tracer but no enclosing
	// span; nest under the caller's span otherwise.
	if cfg.Tracer != nil && trace.FromContext(ctx) == nil {
		var root *trace.Span
		ctx, root = cfg.Tracer.StartRoot(ctx, "core.construct")
		defer root.End()
	}
	workers := cfg.workers()
	ctx, runSpan := trace.StartChild(ctx, "core.construct.run",
		trace.A("mode", cfg.Mode.String()), trace.A("policy", cfg.Policy.String()),
		trace.Int("providers", m), trace.Int("identities", n),
		trace.Int("workers", workers))
	defer runSpan.End()
	if cfg.Metrics != nil {
		cfg.Metrics.Gauge("eppi_construct_workers",
			"Size of the construction worker pool of the most recent run.").Set(float64(workers))
	}

	// β policy evaluation: the public per-identity thresholds t_j
	// (Algorithm 1's σ' computation), sharded across the worker pool.
	betaCtx, betaSpan := trace.StartChild(ctx, "core.beta_thresholds")
	thresholds := make([]uint64, n)
	perr := parallel.Blocks(workers, n, colShard, func(_, lo, hi int) error {
		_, sp := trace.StartChild(betaCtx, "core.beta_thresholds.shard",
			trace.Int("lo", lo), trace.Int("hi", hi))
		defer sp.End()
		for j := lo; j < hi; j++ {
			thresholds[j] = cfg.Threshold(eps[j], m)
		}
		return nil
	})
	betaSpan.SetInt("identities", n)
	betaSpan.End()
	if perr != nil {
		return nil, perr
	}

	switch cfg.Mode {
	case ModeTrusted:
		return constructTrusted(ctx, truth, eps, thresholds, cfg)
	default:
		return constructSecure(ctx, truth, eps, thresholds, cfg)
	}
}

// constructTrusted runs the simulation path: frequencies in the clear.
// Aggregation, mixing and publication are sharded across the worker pool;
// every shard derives its randomness from (cfg.Seed, stage stream, shard
// index), so the result is bit-identical at any worker count.
func constructTrusted(ctx context.Context, truth *bitmat.Matrix, eps []float64, thresholds []uint64, cfg Config) (*Result, error) {
	m, n := truth.Rows(), truth.Cols()
	workers := cfg.workers()
	aggCtx, aggSpan := trace.StartChild(ctx, "core.aggregate")
	freqs := make([]uint64, n)
	shards := (n + colShard - 1) / colShard
	partialCommons := make([]int, shards)
	err := parallel.Blocks(workers, n, colShard, func(b, lo, hi int) error {
		_, sp := trace.StartChild(aggCtx, "core.aggregate.shard",
			trace.Int("lo", lo), trace.Int("hi", hi))
		defer sp.End()
		for j := lo; j < hi; j++ {
			freqs[j] = uint64(truth.ColCount(j))
			if freqs[j] >= thresholds[j] {
				partialCommons[b]++
			}
		}
		return nil
	})
	commons := 0
	for _, p := range partialCommons {
		commons += p
	}
	aggSpan.SetInt("commons", commons)
	aggSpan.End()
	if err != nil {
		return nil, err
	}
	xi := cfg.XiOverride
	if xi <= 0 {
		for j := 0; j < n; j++ {
			if freqs[j] >= thresholds[j] && eps[j] > xi {
				xi = eps[j]
			}
		}
	}
	lambda, err := mathx.Lambda(xi, commons, n)
	if err != nil {
		return nil, err
	}

	// Identity mixing + per-identity β (Equations 6 and 7). Each shard
	// draws its mixing coins from its own derived stream.
	mixCtx, mixSpan := trace.StartChild(ctx, "core.mixing")
	hidden := make([]bool, n)
	betas := make([]float64, n)
	err = parallel.Blocks(workers, n, colShard, func(b, lo, hi int) error {
		_, sp := trace.StartChild(mixCtx, "core.mixing.shard",
			trace.Int("lo", lo), trace.Int("hi", hi))
		defer sp.End()
		rng := rand.New(rand.NewSource(mathx.DeriveSeed(cfg.Seed, seedStreamMix, uint64(b))))
		for j := lo; j < hi; j++ {
			if freqs[j] >= thresholds[j] || mathx.Bernoulli(rng, lambda) {
				hidden[j] = true
				betas[j] = 1
				continue
			}
			sigma := float64(freqs[j]) / float64(m)
			bv, err := mathx.Beta(cfg.Policy, mathx.BetaParams{
				Sigma: sigma, Epsilon: eps[j], M: m, Delta: cfg.Delta, Gamma: cfg.Gamma,
			})
			if err != nil {
				return fmt.Errorf("β for identity %d: %w", j, err)
			}
			betas[j] = bv
		}
		return nil
	})
	mixSpan.End()
	if err != nil {
		return nil, err
	}

	published := publishSharded(ctx, truth, betas, cfg.Seed, workers)
	return &Result{
		Published:   published,
		Betas:       betas,
		Thresholds:  thresholds,
		Hidden:      hidden,
		CommonCount: commons,
		Lambda:      lambda,
		Xi:          xi,
	}, nil
}

// Publish applies the randomized publication rule of Equation 2: true bits
// are copied unchanged (1 → 1, guaranteeing 100% recall), false bits flip
// to 1 independently with probability β_j.
func Publish(truth *bitmat.Matrix, betas []float64, rng *rand.Rand) *bitmat.Matrix {
	published := truth.Clone()
	m, n := truth.Rows(), truth.Cols()
	for j := 0; j < n; j++ {
		beta := betas[j]
		if beta <= 0 {
			continue
		}
		for i := 0; i < m; i++ {
			if !truth.Get(i, j) && mathx.Bernoulli(rng, beta) {
				published.Set(i, j, true)
			}
		}
	}
	return published
}
