package core

import (
	"math/rand"
	"testing"

	"repro/internal/mathx"
)

// Batched and unbatched secure constructions must agree on everything the
// protocol determines (commons count, thresholds, revealed β values); only
// the mixing coins differ because circuits are seeded per batch.
func TestBatchedSecureMatchesUnbatched(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := randomMatrix(rng, 9, 11, 0.35)
	eps := make([]float64, 11)
	for j := range eps {
		eps[j] = 0.3 + 0.5*rng.Float64()
	}
	base := secureCfg(5)
	base.Policy = mathx.PolicyBasic

	whole, err := Construct(truth, eps, base)
	if err != nil {
		t.Fatal(err)
	}
	batched := base
	batched.BatchSize = 3 // 11 identities → batches of 3,3,3,2
	parts, err := Construct(truth, eps, batched)
	if err != nil {
		t.Fatal(err)
	}

	if whole.CommonCount != parts.CommonCount {
		t.Fatalf("commons: %d vs %d", whole.CommonCount, parts.CommonCount)
	}
	for j := range whole.Thresholds {
		if whole.Thresholds[j] != parts.Thresholds[j] {
			t.Fatalf("threshold %d differs", j)
		}
	}
	for j := range whole.Betas {
		if !whole.Hidden[j] && !parts.Hidden[j] && whole.Betas[j] != parts.Betas[j] {
			t.Fatalf("β %d: %v vs %v", j, whole.Betas[j], parts.Betas[j])
		}
	}
	if !parts.Published.Covers(truth) {
		t.Fatal("batched construction lost recall")
	}
	// Batched runs use more (smaller) circuits: total gates comparable,
	// more MPC messages overall.
	if parts.Secure.MPC.Messages <= whole.Secure.MPC.Messages/2 {
		t.Fatalf("batched messages %d suspiciously low vs %d", parts.Secure.MPC.Messages, whole.Secure.MPC.Messages)
	}
}

func TestBatchSizeValidation(t *testing.T) {
	truth := matrixWithFreqs(5, []int{2})
	cfg := Config{Policy: mathx.PolicyBasic, Mode: ModeTrusted, BatchSize: -1}
	if _, err := Construct(truth, []float64{0.5}, cfg); err == nil {
		t.Fatal("negative batch size accepted")
	}
}

func TestBatchLargerThanN(t *testing.T) {
	truth := matrixWithFreqs(6, []int{2, 3})
	cfg := secureCfg(9)
	cfg.BatchSize = 100 // clamped to n
	res, err := Construct(truth, []float64{0.5, 0.5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Published.Covers(truth) {
		t.Fatal("recall lost")
	}
}

func TestBatchSizeOne(t *testing.T) {
	truth := matrixWithFreqs(6, []int{2, 6, 1})
	cfg := secureCfg(10)
	cfg.Policy = mathx.PolicyBasic
	cfg.BatchSize = 1
	res, err := Construct(truth, []float64{0.5, 0.5, 0.5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommonCount != 1 {
		t.Fatalf("commons = %d, want 1", res.CommonCount)
	}
	if !res.Hidden[1] {
		t.Fatal("σ=1 identity not hidden with batch size 1")
	}
}
