package core

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/mathx"
	"repro/internal/transport"
)

func secureCfg(seed int64) Config {
	return Config{
		Policy: mathx.PolicyChernoff,
		Gamma:  0.9,
		Mode:   ModeSecure,
		C:      3,
		Seed:   seed,
	}
}

func TestSecureMatchesTrustedSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, n := 12, 8
	truth := randomMatrix(rng, m, n, 0.3)
	truth.Set(0, 0, true) // ensure at least one nonzero column
	eps := make([]float64, n)
	for j := range eps {
		eps[j] = 0.3 + 0.5*rng.Float64()
	}

	sec, err := Construct(truth, eps, secureCfg(42))
	if err != nil {
		t.Fatal(err)
	}
	tru, err := Construct(truth, eps, Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: ModeTrusted, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Thresholds are public and identical.
	for j := range sec.Thresholds {
		if sec.Thresholds[j] != tru.Thresholds[j] {
			t.Fatalf("threshold %d differs: %d vs %d", j, sec.Thresholds[j], tru.Thresholds[j])
		}
	}
	// The secure CountBelow output equals the true common count.
	if sec.CommonCount != tru.CommonCount {
		t.Fatalf("secure commons %d, trusted commons %d", sec.CommonCount, tru.CommonCount)
	}
	// Every true common must be hidden in the secure result.
	for j := 0; j < n; j++ {
		if uint64(truth.ColCount(j)) >= sec.Thresholds[j] && !sec.Hidden[j] {
			t.Fatalf("true common identity %d not hidden", j)
		}
	}
	// Revealed identities carry the β computed from their true frequency.
	for j := 0; j < n; j++ {
		if sec.Hidden[j] {
			if sec.Betas[j] != 1 {
				t.Fatalf("hidden identity %d has β=%v", j, sec.Betas[j])
			}
			continue
		}
		sigma := float64(truth.ColCount(j)) / float64(m)
		want, err := mathx.Beta(mathx.PolicyChernoff, mathx.BetaParams{
			Sigma: sigma, Epsilon: eps[j], M: m, Gamma: 0.9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if sec.Betas[j] != want {
			t.Fatalf("identity %d: secure β=%v, want %v", j, sec.Betas[j], want)
		}
	}
	if !sec.Published.Covers(truth) {
		t.Fatal("secure published matrix lost true positives")
	}
	if sec.Secure == nil {
		t.Fatal("secure stats missing")
	}
	if sec.Secure.SecSumRounds != 2 {
		t.Fatalf("SecSumRounds = %d", sec.Secure.SecSumRounds)
	}
	if sec.Secure.CountBelowCircuit.Gates == 0 || sec.Secure.RevealCircuit.Gates == 0 {
		t.Fatal("circuit stats empty")
	}
	if sec.Secure.MPC.Messages == 0 || sec.Secure.SecSum.Messages == 0 {
		t.Fatal("traffic stats empty")
	}
}

func TestSecureWithCommonIdentity(t *testing.T) {
	m := 10
	// Identity 0 on all providers (common), identities 1..4 rare.
	truth := matrixWithFreqs(m, []int{10, 1, 2, 1, 3})
	eps := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	cfg := secureCfg(7)
	cfg.Policy = mathx.PolicyBasic // basic: common ⇔ σ ≥ 0.5 at ε=0.5
	res, err := Construct(truth, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommonCount != 1 {
		t.Fatalf("CommonCount = %d, want 1", res.CommonCount)
	}
	if !res.Hidden[0] || res.Betas[0] != 1 {
		t.Fatal("common identity not hidden in secure mode")
	}
	if res.Lambda <= 0 {
		t.Fatalf("λ = %v, want > 0", res.Lambda)
	}
	if res.Published.ColCount(0) != m {
		t.Fatal("common column not fully published")
	}
}

func TestSecureRejectsTooFewProviders(t *testing.T) {
	truth := matrixWithFreqs(2, []int{1})
	cfg := secureCfg(1) // C=3 > m=2
	if _, err := Construct(truth, []float64{0.5}, cfg); err == nil {
		t.Fatal("m < C accepted in secure mode")
	}
}

func TestSecureOverTCP(t *testing.T) {
	truth := matrixWithFreqs(6, []int{2, 6, 1})
	eps := []float64{0.4, 0.6, 0.8}
	cfg := secureCfg(11)
	cfg.Policy = mathx.PolicyBasic // basic: common ⇔ σ ≥ ε/(ε+1-ε)… only σ=1 here
	cfg.NewNetwork = func(parties int) (transport.Network, error) { return transport.NewTCP(parties) }
	res, err := Construct(truth, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommonCount != 1 { // identity 1 has σ=1
		t.Fatalf("CommonCount = %d, want 1", res.CommonCount)
	}
	if !res.Published.Covers(truth) {
		t.Fatal("recall broken over TCP")
	}
}

// The OT-preprocessed pipeline must agree with the dealer pipeline on all
// protocol-determined outcomes.
func TestSecureWithOTPreprocessing(t *testing.T) {
	truth := matrixWithFreqs(4, []int{4, 1, 2})
	eps := []float64{0.5, 0.5, 0.5}
	cfg := secureCfg(31)
	cfg.Policy = mathx.PolicyBasic
	cfg.C = 2 // keep the OT count small: n(n-1) OTs per AND gate
	cfg.Triples = TripleOT
	res, err := Construct(truth, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Basic policy at ε=0.5: common ⇔ σ ≥ 0.5 ⇔ freq ≥ 2 of 4.
	if res.CommonCount != 2 {
		t.Fatalf("commons = %d, want 2", res.CommonCount)
	}
	if !res.Published.Covers(truth) {
		t.Fatal("recall lost with OT preprocessing")
	}
	dealer := cfg
	dealer.Triples = TripleDealer
	res2, err := Construct(truth, eps, dealer)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CommonCount != res.CommonCount {
		t.Fatal("dealer and OT pipelines disagree on the common count")
	}
	for j := range res.Betas {
		if !res.Hidden[j] && !res2.Hidden[j] && res.Betas[j] != res2.Betas[j] {
			t.Fatalf("β %d differs between preprocessing sources", j)
		}
	}
}

// Prefix-arithmetic circuits must produce identical protocol outcomes.
func TestSecureWithPrefixArithmetic(t *testing.T) {
	truth := matrixWithFreqs(10, []int{10, 2, 4})
	eps := []float64{0.5, 0.5, 0.5}
	base := secureCfg(41)
	base.Policy = mathx.PolicyBasic
	ripple, err := Construct(truth, eps, base)
	if err != nil {
		t.Fatal(err)
	}
	pfx := base
	pfx.Arithmetic = circuit.StylePrefix
	prefix, err := Construct(truth, eps, pfx)
	if err != nil {
		t.Fatal(err)
	}
	if ripple.CommonCount != prefix.CommonCount {
		t.Fatalf("commons differ: %d vs %d", ripple.CommonCount, prefix.CommonCount)
	}
	for j := range ripple.Betas {
		if !ripple.Hidden[j] && !prefix.Hidden[j] && ripple.Betas[j] != prefix.Betas[j] {
			t.Fatalf("β %d differs between arithmetic styles", j)
		}
	}
	// Note: at this toy scale (4-bit shares) prefix circuits are not yet
	// shallower — the round-count advantage at realistic widths is covered
	// by circuit.TestPrefixDepthAdvantage and the ablation-depth
	// experiment; here we only require protocol-outcome equivalence.
	if prefix.Secure.MPCRounds == 0 {
		t.Fatal("prefix pipeline recorded no MPC rounds")
	}
}

func TestTripleSourceValidation(t *testing.T) {
	truth := matrixWithFreqs(5, []int{2})
	cfg := secureCfg(1)
	cfg.Triples = TripleSource(9)
	if _, err := Construct(truth, []float64{0.5}, cfg); err == nil {
		t.Fatal("unknown triple source accepted")
	}
	if TripleDealer.String() != "dealer" || TripleOT.String() != "ot" || TripleSource(9).String() != "triples(9)" {
		t.Fatal("TripleSource names wrong")
	}
}

func TestSecureDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := randomMatrix(rng, 8, 5, 0.4)
	eps := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	a, err := Construct(truth, eps, secureCfg(77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Construct(truth, eps, secureCfg(77))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Published.Equal(b.Published) {
		t.Fatal("secure construction not deterministic for fixed seed")
	}
	for j := range a.Betas {
		if a.Betas[j] != b.Betas[j] {
			t.Fatal("β values differ across identical runs")
		}
	}
}

// Secrecy property at the system level: the only frequency-derived values
// the secure pipeline exposes outside circuits are the common COUNT and the
// frequencies of explicitly revealed (non-hidden) identities.
func TestSecureHiddenFrequenciesStayMasked(t *testing.T) {
	m := 10
	truth := matrixWithFreqs(m, []int{10, 10, 1, 1})
	eps := []float64{0.9, 0.9, 0.9, 0.9}
	res, err := Construct(truth, eps, secureCfg(13))
	if err != nil {
		t.Fatal(err)
	}
	// Both commons hidden; a hidden identity's β must be exactly 1 and not
	// a function of its frequency.
	if !res.Hidden[0] || !res.Hidden[1] {
		t.Fatal("commons not hidden")
	}
	if res.Betas[0] != 1 || res.Betas[1] != 1 {
		t.Fatal("hidden β != 1")
	}
}

func BenchmarkSecureConstruct16x8(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	truth := randomMatrix(rng, 16, 8, 0.3)
	eps := make([]float64, 8)
	for j := range eps {
		eps[j] = 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Construct(truth, eps, secureCfg(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrustedConstruct1000x100(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	truth := randomMatrix(rng, 1000, 100, 0.05)
	eps := make([]float64, 100)
	for j := range eps {
		eps[j] = 0.5
	}
	cfg := Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: ModeTrusted}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Construct(truth, eps, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
