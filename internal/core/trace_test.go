package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/mathx"
	"repro/internal/trace"
	"repro/internal/transport"
)

// traceFixture runs one secure construction with tracing on and returns
// the sealed trace.
func traceFixture(t *testing.T, mutate func(*Config)) *trace.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	m, n := 9, 6
	truth := randomMatrix(rng, m, n, 0.3)
	truth.Set(0, 0, true)
	eps := make([]float64, n)
	for j := range eps {
		eps[j] = 0.4
	}
	cfg := secureCfg(11)
	cfg.Tracer = trace.New(4)
	if mutate != nil {
		mutate(&cfg)
	}
	if _, err := Construct(truth, eps, cfg); err != nil {
		t.Fatal(err)
	}
	traces := cfg.Tracer.Recent()
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	return traces[0]
}

// spanTree renders the structural skeleton of a trace — span names in
// depth-first order with nesting depth — so two runs can be compared
// independent of timing, IDs and traffic volumes.
func spanTree(tr *trace.Trace) string {
	byParent := map[trace.SpanID][]trace.SpanData{}
	var rootID trace.SpanID
	for _, s := range tr.Spans {
		if s.Parent == 0 {
			rootID = s.ID
		}
		byParent[s.Parent] = append(byParent[s.Parent], s)
	}
	var b strings.Builder
	var walk func(id trace.SpanID, depth int)
	walk = func(id trace.SpanID, depth int) {
		for _, s := range byParent[id] {
			b.WriteString(strings.Repeat("  ", depth))
			b.WriteString(s.Name)
			b.WriteByte('\n')
			walk(s.ID, depth+1)
		}
	}
	root := tr.Root()
	b.WriteString(root.Name)
	b.WriteByte('\n')
	walk(rootID, 1)
	return b.String()
}

func TestSecureSpanTreeIdenticalOverTransports(t *testing.T) {
	inmem := traceFixture(t, nil)
	tcp := traceFixture(t, func(cfg *Config) {
		cfg.NewNetwork = func(parties int) (transport.Network, error) { return transport.NewTCP(parties) }
	})
	if a, b := spanTree(inmem), spanTree(tcp); a != b {
		t.Fatalf("span trees differ between transports:\n--- inmem ---\n%s--- tcp ---\n%s", a, b)
	}
}

func TestSecureTraceCoversAllPhases(t *testing.T) {
	tr := traceFixture(t, nil)
	tree := spanTree(tr)
	for _, want := range []string{
		"core.construct", "core.construct.run", "core.beta_thresholds",
		"secsum.share", "secsum.distribute", "secsum.aggregate", "secsum.coordinate",
		"mpc.countbelow", "mpc.reveal",
		"gmw.input_share", "gmw.and_rounds", "gmw.output",
		"core.mixing", "core.publish",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("trace missing span %q:\n%s", want, tree)
		}
	}
	if tr.Root().Name != "core.construct" {
		t.Errorf("root span %q, want core.construct", tr.Root().Name)
	}
	// MPC spans must have attributed transport traffic.
	var mpcBytes uint64
	for _, s := range tr.Spans {
		if strings.HasPrefix(s.Name, "mpc.") || s.Name == "secsum.share" {
			mpcBytes += s.Bytes
		}
	}
	if mpcBytes == 0 {
		t.Error("no transport bytes attributed to protocol spans")
	}
}

func TestSecureTraceWithOTPreprocessing(t *testing.T) {
	if testing.Short() {
		t.Skip("OT preprocessing is expensive")
	}
	tr := traceFixture(t, func(cfg *Config) {
		cfg.Triples = TripleOT
		cfg.BatchSize = 3
	})
	tree := spanTree(tr)
	if !strings.Contains(tree, "gmw.ot_preprocess") {
		t.Fatalf("trace missing gmw.ot_preprocess span:\n%s", tree)
	}
}

func TestTrustedTracePhases(t *testing.T) {
	truth, _ := bitmat.New(4, 3)
	truth.Set(0, 0, true)
	tracer := trace.New(2)
	cfg := Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: ModeTrusted, Seed: 1, Tracer: tracer}
	if _, err := Construct(truth, []float64{0.3, 0.3, 0.3}, cfg); err != nil {
		t.Fatal(err)
	}
	if tracer.Len() != 1 {
		t.Fatalf("recorded %d traces, want 1", tracer.Len())
	}
	tree := spanTree(tracer.Recent()[0])
	for _, want := range []string{"core.beta_thresholds", "core.aggregate", "core.mixing", "core.publish"} {
		if !strings.Contains(tree, want) {
			t.Errorf("trusted trace missing %q:\n%s", want, tree)
		}
	}
}

func TestConstructNestsUnderCallerSpan(t *testing.T) {
	truth, _ := bitmat.New(4, 3)
	truth.Set(0, 0, true)
	tracer := trace.New(2)
	ctx, root := tracer.StartRoot(context.Background(), "caller")
	cfg := Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: ModeTrusted, Seed: 1, Tracer: tracer}
	if _, err := ConstructCtx(ctx, truth, []float64{0.3, 0.3, 0.3}, cfg); err != nil {
		t.Fatal(err)
	}
	root.End()
	if tracer.Len() != 1 {
		t.Fatalf("recorded %d traces, want 1 (construct must not open its own root)", tracer.Len())
	}
	tr := tracer.Recent()[0]
	if tr.Root().Name != "caller" {
		t.Fatalf("root span %q, want caller", tr.Root().Name)
	}
	if !strings.Contains(spanTree(tr), "core.construct.run") {
		t.Fatal("construct spans not nested under caller trace")
	}
}

func TestConstructUntracedRecordsNothing(t *testing.T) {
	truth, _ := bitmat.New(4, 3)
	truth.Set(0, 0, true)
	cfg := Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: ModeTrusted, Seed: 1}
	if _, err := Construct(truth, []float64{0.3, 0.3, 0.3}, cfg); err != nil {
		t.Fatal(err)
	}
}
