package core

import (
	"testing"

	"repro/internal/bitmat"
	"repro/internal/mathx"
	"repro/internal/workload"
)

// Paper-scale smoke test: the dataset of [23] spans up to 25,000
// collections; a trusted-mode construction over that scale must complete
// and keep its invariants. Skipped under -short.
func TestConstructAtPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale construction skipped in -short mode")
	}
	const (
		m = 25000
		n = 500
	)
	// ε capped at 0.9 and head frequency at m/20: an owner with ε→1 that
	// is also common forces ξ→1 and the whole index degenerates to
	// broadcast (correct but uninformative); this test targets the
	// fp-noise regime.
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers:    m,
		Owners:       n,
		Exponent:     1.1,
		MaxFrequency: m / 20,
		EpsLow:       0.1,
		EpsHigh:      0.9,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Construct(d.Matrix, d.Eps, Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: ModeTrusted, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Published.Covers(d.Matrix) {
		t.Fatal("recall lost at scale")
	}
	// Success ratio across all revealed identities must be near γ.
	met, revealed := 0, 0
	for j := 0; j < n; j++ {
		if res.Hidden[j] {
			continue
		}
		revealed++
		fp, err := bitmat.ColFalsePositiveRate(d.Matrix, res.Published, j)
		if err != nil {
			t.Fatal(err)
		}
		if fp >= d.Eps[j] {
			met++
		}
	}
	if revealed == 0 {
		t.Fatal("every identity hidden at scale (unexpected)")
	}
	if rate := float64(met) / float64(revealed); rate < 0.85 {
		t.Fatalf("success ratio %v over %d revealed identities, want >= 0.85", rate, revealed)
	}
}
