package core

import (
	"context"
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Sharding geometry of the parallel construction pipeline. These values
// are part of the deterministic-output contract: per-shard RNG streams are
// derived from (Config.Seed, stage stream, shard index), so changing a
// shard size changes which stream a given cell draws from and therefore
// the published matrix for a given seed. They are tuned once, not
// per-run.
const (
	// colShard is the column block size for β thresholds, aggregation and
	// mixing. A multiple of 64 so publication shards align with the
	// word-packed bitmat layout.
	colShard = 64
	// rowShard is the row block size of one publication shard.
	rowShard = 128
)

// DeriveSeed stream labels, one per randomized construction stage. Each
// stage draws from its own family of child seeds so no two stages — and no
// two shards within a stage — ever share an RNG stream.
const (
	seedStreamMix uint64 = iota + 1
	seedStreamPublish
	seedStreamCoins
	seedStreamCountBelow
	seedStreamReveal
	// Wide-path streams: one per slab-level protocol execution, indexed by
	// the slab's global identity offset (unique across batches because
	// slabs never straddle batch boundaries).
	seedStreamWideCountBelow
	seedStreamSliceCount
	seedStreamWideReveal
)

// publishSharded applies the randomized publication rule of Equation 2
// (true bits copy unchanged, false bits flip with probability β_j) sharded
// across the worker pool.
//
// Shards are colShard×rowShard tiles. Because the matrix packs 64 columns
// per word and colShard is a multiple of 64, two shards never touch the
// same word, so the tiles write race-free. Each tile draws from an RNG
// seeded by (seed, seedStreamPublish, tile index) and scans cells in a
// fixed order, making the published matrix a pure function of the seed —
// identical at any worker count, and identical to a Workers=1 run.
func publishSharded(ctx context.Context, truth *bitmat.Matrix, betas []float64, seed int64, workers int) *bitmat.Matrix {
	published := truth.Clone()
	m, n := truth.Rows(), truth.Cols()
	colBlocks := (n + colShard - 1) / colShard
	rowBlocks := (m + rowShard - 1) / rowShard
	pubCtx, pubSpan := trace.StartChild(ctx, "core.publish")
	defer pubSpan.End()
	// One task per tile; tile index = colBlock*rowBlocks + rowBlock.
	parallel.For(workers, colBlocks*rowBlocks, func(tile int) error {
		cb, rb := tile/rowBlocks, tile%rowBlocks
		colLo, colHi := cb*colShard, (cb+1)*colShard
		if colHi > n {
			colHi = n
		}
		rowLo, rowHi := rb*rowShard, (rb+1)*rowShard
		if rowHi > m {
			rowHi = m
		}
		_, sp := trace.StartChild(pubCtx, "core.publish.shard",
			trace.Int("col_lo", colLo), trace.Int("row_lo", rowLo))
		defer sp.End()
		rng := rand.New(rand.NewSource(mathx.DeriveSeed(seed, seedStreamPublish, uint64(tile))))
		for j := colLo; j < colHi; j++ {
			beta := betas[j]
			if beta <= 0 {
				continue
			}
			for i := rowLo; i < rowHi; i++ {
				if !truth.Get(i, j) && mathx.Bernoulli(rng, beta) {
					published.Set(i, j, true)
				}
			}
		}
		return nil
	})
	return published
}
