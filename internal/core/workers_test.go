package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/mathx"
)

// workerPolicies are the three β policies under test, with the extra
// parameter each needs.
var workerPolicies = []struct {
	name string
	set  func(*Config)
}{
	{"basic", func(c *Config) { c.Policy = mathx.PolicyBasic }},
	{"inc-exp", func(c *Config) { c.Policy = mathx.PolicyIncremented; c.Delta = 0.02 }},
	{"chernoff", func(c *Config) { c.Policy = mathx.PolicyChernoff; c.Gamma = 0.9 }},
}

// resultsEqual compares every published field of two construction results.
func resultsEqual(t *testing.T, want, got *Result) {
	t.Helper()
	if !want.Published.Equal(got.Published) {
		t.Errorf("published matrices differ")
	}
	if !reflect.DeepEqual(want.Betas, got.Betas) {
		t.Errorf("betas differ: %v vs %v", want.Betas, got.Betas)
	}
	if !reflect.DeepEqual(want.Thresholds, got.Thresholds) {
		t.Errorf("thresholds differ: %v vs %v", want.Thresholds, got.Thresholds)
	}
	if !reflect.DeepEqual(want.Hidden, got.Hidden) {
		t.Errorf("hidden sets differ: %v vs %v", want.Hidden, got.Hidden)
	}
	if want.CommonCount != got.CommonCount {
		t.Errorf("common count %d vs %d", want.CommonCount, got.CommonCount)
	}
	if want.Lambda != got.Lambda || want.Xi != got.Xi {
		t.Errorf("mixing (λ=%v ξ=%v) vs (λ=%v ξ=%v)", want.Lambda, want.Xi, got.Lambda, got.Xi)
	}
}

// TestConstructDeterministicAcrossWorkers asserts the tentpole invariant:
// Construct output is bit-identical at any worker-pool size, for every β
// policy, in both trusted and secure mode. The per-shard RNG streams are
// derived from (Seed, stage, shard index) alone, so shard-to-worker
// assignment must not matter.
func TestConstructDeterministicAcrossWorkers(t *testing.T) {
	// Trusted fixture: large enough to span several column shards (n >
	// colShard) and row shards (m > rowShard), so every parallel stage
	// genuinely splits.
	rng := rand.New(rand.NewSource(7))
	bigTruth := randomMatrix(rng, 300, 150, 0.08)
	bigEps := make([]float64, 150)
	for j := range bigEps {
		bigEps[j] = 0.3 + 0.5*rng.Float64()
	}

	// Secure fixture: small parties but BatchSize 3 over 7 identities, so
	// stage B/C run three MPC batches concurrently over separate sessions.
	secTruth := randomMatrix(rng, 9, 7, 0.4)
	secEps := make([]float64, 7)
	for j := range secEps {
		secEps[j] = 0.4 + 0.4*rng.Float64()
	}

	modes := []struct {
		name  string
		truth *bitmat.Matrix
		eps   []float64
		set   func(*Config)
	}{
		{"trusted", bigTruth, bigEps, func(c *Config) { c.Mode = ModeTrusted }},
		{"secure", secTruth, secEps, func(c *Config) {
			c.Mode = ModeSecure
			c.C = 3
			c.BatchSize = 3
		}},
	}

	for _, mode := range modes {
		for _, pol := range workerPolicies {
			t.Run(mode.name+"/"+pol.name, func(t *testing.T) {
				results := make(map[int]*Result)
				for _, workers := range []int{1, 2, 8} {
					cfg := Config{Seed: 99, Workers: workers}
					mode.set(&cfg)
					pol.set(&cfg)
					res, err := Construct(mode.truth, mode.eps, cfg)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					results[workers] = res
				}
				for _, workers := range []int{2, 8} {
					t.Logf("comparing workers=1 vs workers=%d", workers)
					resultsEqual(t, results[1], results[workers])
				}
			})
		}
	}
}

// TestConstructWorkersValidation rejects negative pool sizes.
func TestConstructWorkersValidation(t *testing.T) {
	truth := matrixWithFreqs(10, []int{3, 4})
	cfg := Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: ModeTrusted, Workers: -1}
	if _, err := Construct(truth, []float64{0.5, 0.5}, cfg); err == nil {
		t.Fatal("Workers=-1 accepted")
	}
}
