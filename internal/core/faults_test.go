package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/transport"
)

// faultySecureCfg returns a secure config whose network factory injects
// plan into the net-th network the construction opens (1 = the m-party
// SecSumShare network, 2 = the c-party coordinator network that carries
// every concurrent MPC batch).
func faultySecureCfg(seed int64, net int, plan transport.FaultPlan) Config {
	cfg := secureCfg(seed)
	cfg.BatchSize = 3 // several concurrent batches share the faulty net
	cfg.Workers = 4
	call := 0
	cfg.NewNetwork = func(parties int) (transport.Network, error) {
		inner, err := transport.NewInMem(parties)
		if err != nil {
			return nil, err
		}
		call++
		if call == net {
			return transport.NewFaulty(inner, plan), nil
		}
		return inner, nil
	}
	return cfg
}

// runConstructGuarded runs Construct with a hang guard: the parallel
// secure path must surface an injected fault as a prompt error, never by
// stalling on a dead session or returning a half-built matrix.
func runConstructGuarded(t *testing.T, truth *bitmat.Matrix, eps []float64, cfg Config) {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Construct(truth, eps, cfg)
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		if out.err == nil {
			t.Fatal("construction over a faulty network succeeded")
		}
		if out.res != nil {
			t.Fatalf("got a partial result alongside error %v", out.err)
		}
		t.Logf("failed promptly: %v", out.err)
	case <-time.After(30 * time.Second):
		t.Fatal("construction hung on injected fault")
	}
}

// TestSecureConstructFaultInjection drives the parallel secure pipeline
// over a transport.FaultyNetwork: a crashed sender, wholesale payload
// corruption, and total message loss each have to abort the run.
func TestSecureConstructFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	truth := randomMatrix(rng, 9, 7, 0.4)
	eps := make([]float64, 7)
	for j := range eps {
		eps[j] = 0.6
	}

	cases := []struct {
		name string
		net  int
		plan transport.FaultPlan
	}{
		{
			name: "crashed sender in SecSumShare",
			net:  1,
			plan: transport.FaultPlan{FailSendFrom: map[int]bool{2: true}, Seed: 3},
		},
		{
			name: "crashed coordinator under concurrent batches",
			net:  2,
			plan: transport.FaultPlan{FailSendFrom: map[int]bool{1: true}, Seed: 4},
		},
		{
			name: "corrupted MPC payloads",
			net:  2,
			plan: transport.FaultPlan{CorruptRate: 1, Seed: 5},
		},
		{
			name: "dropped MPC messages",
			net:  2,
			plan: transport.FaultPlan{DropRate: 1, RecvTimeout: 250 * time.Millisecond, Seed: 6},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runConstructGuarded(t, truth, eps, faultySecureCfg(11, tc.net, tc.plan))
		})
	}
}
