package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/mathx"
)

func randomMatrix(rng *rand.Rand, m, n int, density float64) *bitmat.Matrix {
	mat := bitmat.MustNew(m, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			if rng.Float64() < density {
				mat.Set(i, j, true)
			}
		}
	}
	return mat
}

// matrixWithFreqs builds an m×n matrix where column j has exactly freqs[j]
// ones (in the first freqs[j] rows).
func matrixWithFreqs(m int, freqs []int) *bitmat.Matrix {
	mat := bitmat.MustNew(m, len(freqs))
	for j, f := range freqs {
		for i := 0; i < f; i++ {
			mat.Set(i, j, true)
		}
	}
	return mat
}

func TestModeString(t *testing.T) {
	if ModeTrusted.String() != "trusted" || ModeSecure.String() != "secure" {
		t.Error("mode names wrong")
	}
	if Mode(0).String() != "mode(0)" {
		t.Error("unknown mode name wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	truth := matrixWithFreqs(10, []int{3})
	eps := []float64{0.5}
	bad := []Config{
		{Policy: 0, Mode: ModeTrusted},
		{Policy: mathx.PolicyBasic, Mode: 0},
		{Policy: mathx.PolicyBasic, Mode: ModeSecure, C: 1},
		{Policy: mathx.PolicyBasic, Mode: ModeTrusted, CoinBits: 63},
		{Policy: mathx.PolicyBasic, Mode: ModeTrusted, CoinBits: -1},
	}
	for i, cfg := range bad {
		if _, err := Construct(truth, eps, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	good := Config{Policy: mathx.PolicyBasic, Mode: ModeTrusted}
	if _, err := Construct(truth, eps, good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if _, err := Construct(truth, []float64{0.5, 0.5}, good); err == nil {
		t.Error("ε length mismatch accepted")
	}
	if _, err := Construct(truth, []float64{1.5}, good); err == nil {
		t.Error("ε out of range accepted")
	}
	if _, err := Construct(bitmat.MustNew(0, 0), nil, good); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestThresholdMatchesBruteForce(t *testing.T) {
	m := 200
	for _, cfg := range []Config{
		{Policy: mathx.PolicyBasic},
		{Policy: mathx.PolicyIncremented, Delta: 0.02},
		{Policy: mathx.PolicyChernoff, Gamma: 0.9},
	} {
		for _, eps := range []float64{0, 0.1, 0.5, 0.8, 0.99, 1} {
			want := uint64(m + 1)
			for f := 1; f <= m; f++ {
				if mathx.IsCommon(cfg.rawBeta(float64(f)/float64(m), eps, m)) {
					want = uint64(f)
					break
				}
			}
			if got := cfg.Threshold(eps, m); got != want {
				t.Errorf("policy %v ε=%v: threshold %d, want %d", cfg.Policy, eps, got, want)
			}
		}
	}
}

func TestThresholdEdges(t *testing.T) {
	cfg := Config{Policy: mathx.PolicyBasic}
	// ε=0: never common.
	if got := cfg.Threshold(0, 100); got != 101 {
		t.Errorf("ε=0 threshold = %d, want 101", got)
	}
	// ε=1: always common from frequency 1.
	if got := cfg.Threshold(1, 100); got != 1 {
		t.Errorf("ε=1 threshold = %d, want 1", got)
	}
	if got := cfg.Threshold(0.5, 0); got != 1 {
		t.Errorf("m=0 threshold = %d, want 1", got)
	}
}

func TestTrustedRecallIsPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := randomMatrix(rng, 200, 30, 0.1)
	eps := make([]float64, 30)
	for j := range eps {
		eps[j] = rng.Float64()
	}
	res, err := Construct(truth, eps, Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: ModeTrusted, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Published.Covers(truth) {
		t.Fatal("published matrix lost true positives (recall < 100%)")
	}
}

func TestTrustedCommonsGetBetaOne(t *testing.T) {
	// One identity on every provider (σ=1) must be hidden with β=1.
	truth := matrixWithFreqs(50, []int{50, 5})
	eps := []float64{0.5, 0.5}
	res, err := Construct(truth, eps, Config{Policy: mathx.PolicyBasic, Mode: ModeTrusted, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hidden[0] || res.Betas[0] != 1 {
		t.Fatalf("common identity not hidden: hidden=%v β=%v", res.Hidden[0], res.Betas[0])
	}
	if res.CommonCount != 1 {
		t.Fatalf("CommonCount = %d, want 1", res.CommonCount)
	}
	// The common identity's published column must be all ones.
	if got := res.Published.ColCount(0); got != 50 {
		t.Fatalf("common column has %d ones, want 50", got)
	}
}

func TestTrustedChernoffMeetsEpsilon(t *testing.T) {
	// Statistical check of the paper's core guarantee: with the Chernoff
	// policy at γ=0.9, the achieved fp rate meets ε in ≥ ~90% of trials.
	m := 2000
	epsVal := 0.5
	freq := 20
	success, trials := 0, 60
	for trial := 0; trial < trials; trial++ {
		truth := matrixWithFreqs(m, []int{freq})
		res, err := Construct(truth, []float64{epsVal}, Config{
			Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: ModeTrusted, Seed: int64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		fp, err := bitmat.ColFalsePositiveRate(truth, res.Published, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fp >= epsVal {
			success++
		}
	}
	rate := float64(success) / float64(trials)
	if rate < 0.8 {
		t.Fatalf("Chernoff policy success rate %v over %d trials, want >= 0.8", rate, trials)
	}
}

func TestTrustedBasicPolicyAroundHalf(t *testing.T) {
	m := 2000
	epsVal := 0.5
	freq := 20
	success, trials := 0, 80
	for trial := 0; trial < trials; trial++ {
		truth := matrixWithFreqs(m, []int{freq})
		res, err := Construct(truth, []float64{epsVal}, Config{
			Policy: mathx.PolicyBasic, Mode: ModeTrusted, Seed: int64(1000 + trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		fp, err := bitmat.ColFalsePositiveRate(truth, res.Published, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fp >= epsVal {
			success++
		}
	}
	rate := float64(success) / float64(trials)
	if rate < 0.25 || rate > 0.75 {
		t.Fatalf("basic policy success rate %v, want ≈ 0.5", rate)
	}
}

func TestMixingHidesNonCommons(t *testing.T) {
	// With a common identity present and ξ=0.8, λ must be positive and some
	// non-common identities must be exaggerated over enough trials.
	n := 40
	freqs := make([]int, n)
	freqs[0] = 100 // the common one
	for j := 1; j < n; j++ {
		freqs[j] = 2
	}
	truth := matrixWithFreqs(100, freqs)
	eps := make([]float64, n)
	for j := range eps {
		eps[j] = 0.8
	}
	res, err := Construct(truth, eps, Config{Policy: mathx.PolicyBasic, Mode: ModeTrusted, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda <= 0 {
		t.Fatalf("λ = %v, want > 0 with a true common present", res.Lambda)
	}
	if res.Xi != 0.8 {
		t.Fatalf("ξ = %v, want 0.8", res.Xi)
	}
	hiddenNonCommon := 0
	for j := 1; j < n; j++ {
		if res.Hidden[j] {
			hiddenNonCommon++
			if res.Betas[j] != 1 {
				t.Fatalf("mixed identity %d has β=%v, want 1", j, res.Betas[j])
			}
		}
	}
	// λ = 0.8/0.2 · 1/39 ≈ 0.1026; over 39 identities expect ≈ 4 mixed.
	if hiddenNonCommon == 0 {
		t.Fatal("no non-common identity was mixed in")
	}
}

func TestNoCommonsNoMixing(t *testing.T) {
	truth := matrixWithFreqs(100, []int{2, 3, 4})
	eps := []float64{0.5, 0.5, 0.5}
	res, err := Construct(truth, eps, Config{Policy: mathx.PolicyBasic, Mode: ModeTrusted, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommonCount != 0 || res.Lambda != 0 {
		t.Fatalf("commons=%d λ=%v, want 0/0", res.CommonCount, res.Lambda)
	}
	for j, h := range res.Hidden {
		if h {
			t.Fatalf("identity %d hidden with no commons and λ=0", j)
		}
	}
}

func TestXiOverride(t *testing.T) {
	truth := matrixWithFreqs(100, []int{100, 2, 2, 2})
	eps := []float64{0.2, 0.2, 0.2, 0.2}
	res, err := Construct(truth, eps, Config{
		Policy: mathx.PolicyBasic, Mode: ModeTrusted, Seed: 9, XiOverride: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Xi != 0.9 {
		t.Fatalf("ξ = %v, want override 0.9", res.Xi)
	}
	want := 0.9 / 0.1 * 1.0 / 3.0
	if math.Abs(res.Lambda-math.Min(want, 1)) > 1e-12 {
		t.Fatalf("λ = %v, want %v", res.Lambda, math.Min(want, 1))
	}
}

func TestPublishZeroBetaIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	truth := randomMatrix(rng, 50, 10, 0.2)
	pub := Publish(truth, make([]float64, 10), rng)
	if !pub.Equal(truth) {
		t.Fatal("β=0 publication altered the matrix")
	}
}

func TestPublishBetaOneFillsColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth := randomMatrix(rng, 50, 3, 0.2)
	betas := []float64{1, 0, 1}
	pub := Publish(truth, betas, rng)
	if pub.ColCount(0) != 50 || pub.ColCount(2) != 50 {
		t.Fatal("β=1 column not fully published")
	}
	if pub.ColCount(1) != truth.ColCount(1) {
		t.Fatal("β=0 column gained bits")
	}
}

func TestPublishFlipRate(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := 20000
	truth := bitmat.MustNew(m, 1)
	pub := Publish(truth, []float64{0.3}, rng)
	rate := float64(pub.ColCount(0)) / float64(m)
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("flip rate %v, want ≈ 0.3", rate)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	truth := randomMatrix(rng, 100, 20, 0.1)
	eps := make([]float64, 20)
	for j := range eps {
		eps[j] = 0.6
	}
	cfg := Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: ModeTrusted, Seed: 99}
	a, err := Construct(truth, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Construct(truth, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Published.Equal(b.Published) {
		t.Fatal("same seed produced different indexes")
	}
	cfg.Seed = 100
	c, err := Construct(truth, eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Published.Equal(c.Published) {
		t.Fatal("different seeds produced identical indexes (suspicious)")
	}
}
