package core

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mathx"
)

// Threshold is non-increasing in ε: a stronger privacy demand can only
// lower the frequency at which an identity becomes common.
func TestThresholdMonotoneInEpsilonQuick(t *testing.T) {
	for _, cfg := range []Config{
		{Policy: mathx.PolicyBasic},
		{Policy: mathx.PolicyIncremented, Delta: 0.02},
		{Policy: mathx.PolicyChernoff, Gamma: 0.9},
	} {
		prop := func(a, b uint16, rawM uint16) bool {
			m := int(rawM%2000) + 10
			e1 := float64(a) / 65535
			e2 := float64(b) / 65535
			if e1 > e2 {
				e1, e2 = e2, e1
			}
			return cfg.Threshold(e1, m) >= cfg.Threshold(e2, m)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("policy %v: %v", cfg.Policy, err)
		}
	}
}

// Threshold is consistent with rawBeta: β*(t/m) >= 1 at the threshold and
// < 1 just below it.
func TestThresholdBoundaryQuick(t *testing.T) {
	cfg := Config{Policy: mathx.PolicyChernoff, Gamma: 0.9}
	prop := func(a uint16, rawM uint16) bool {
		m := int(rawM%2000) + 10
		eps := 0.01 + 0.98*float64(a)/65535
		th := cfg.Threshold(eps, m)
		if th > uint64(m) {
			// Never common: β* < 1 even at σ = 1... which contradicts
			// βb(1, ε>0) = ∞; this branch only occurs for ε = 0 (excluded).
			return !mathx.IsCommon(cfg.rawBeta(1, eps, m))
		}
		atThreshold := mathx.IsCommon(cfg.rawBeta(float64(th)/float64(m), eps, m))
		belowOK := th == 1 || !mathx.IsCommon(cfg.rawBeta(float64(th-1)/float64(m), eps, m))
		return atThreshold && belowOK
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Publication is column-independent: publishing identities separately with
// the same per-column RNG state is distributionally identical. We verify a
// weaker but deterministic slice: β = 0 and β = 1 columns are untouched by
// neighbours' randomness.
func TestPublishColumnIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := randomMatrix(rng, 200, 6, 0.1)
	betas := []float64{0, 1, 0.5, 0, 1, 0.5}
	pub := Publish(truth, betas, rand.New(rand.NewSource(2)))
	for _, j := range []int{0, 3} {
		for i := 0; i < 200; i++ {
			if pub.Get(i, j) != truth.Get(i, j) {
				t.Fatalf("β=0 column %d changed at row %d", j, i)
			}
		}
	}
	for _, j := range []int{1, 4} {
		if pub.ColCount(j) != 200 {
			t.Fatalf("β=1 column %d not full", j)
		}
	}
}

// Secure construction must not leak goroutines (fire-and-forget ban): the
// goroutine count returns to baseline after repeated runs.
func TestSecureConstructNoGoroutineLeak(t *testing.T) {
	truth := matrixWithFreqs(8, []int{3, 5})
	eps := []float64{0.5, 0.6}
	// Warm up and let any lazily-started runtime goroutines settle.
	if _, err := Construct(truth, eps, secureCfg(1)); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	time.Sleep(20 * time.Millisecond)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		if _, err := Construct(truth, eps, secureCfg(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after 10 secure constructions", before, runtime.NumGoroutine())
}

// Recall is a hard invariant across random configurations.
func TestRecallQuick(t *testing.T) {
	prop := func(seed int64, pol uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 20 + rng.Intn(200)
		n := 1 + rng.Intn(10)
		truth := randomMatrix(rng, m, n, 0.2)
		eps := make([]float64, n)
		for j := range eps {
			eps[j] = rng.Float64()
		}
		cfg := Config{Mode: ModeTrusted, Seed: seed}
		switch pol % 3 {
		case 0:
			cfg.Policy = mathx.PolicyBasic
		case 1:
			cfg.Policy = mathx.PolicyIncremented
			cfg.Delta = 0.02
		default:
			cfg.Policy = mathx.PolicyChernoff
			cfg.Gamma = 0.9
		}
		res, err := Construct(truth, eps, cfg)
		if err != nil {
			return false
		}
		return res.Published.Covers(truth)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Hidden identities always publish full columns; revealed identities never
// have β = 1 unless ε demands broadcast.
func TestHiddenFullColumnInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := randomMatrix(rng, 150, 12, 0.15)
	eps := make([]float64, 12)
	for j := range eps {
		eps[j] = 0.4 + 0.5*rng.Float64()
	}
	res, err := Construct(truth, eps, Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: ModeTrusted, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for j := range eps {
		full := res.Published.ColCount(j) == truth.Rows()
		if res.Hidden[j] && !full {
			t.Fatalf("hidden identity %d published %d of %d", j, res.Published.ColCount(j), truth.Rows())
		}
	}
}
