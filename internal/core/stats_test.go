package core

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

// TestPublicationStatistics runs many independently-seeded constructions
// over a fixed dataset and checks the two halves of Equation 2:
//
//  1. Recall is exactly 100%: a provider that truly hosts an identity is
//     published as hosting it, in every trial. One dropped bit fails.
//  2. The false-positive rate per identity matches its β_j: across all
//     trials, the fraction of non-hosting cells published as 1 stays
//     within a Hoeffding bound of the β the construction reported.
//
// The bound is two-sided with overall failure probability δ=1e-9 split
// over the identities, so a correct implementation flakes with
// probability < 1e-9 while a biased Bernoulli sampler, a lost coin
// stream, or a shard that reuses another shard's RNG fails immediately.
func TestPublicationStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite needs many trials")
	}
	const (
		m      = 250
		trials = 600
		delta  = 1e-9
	)
	freqs := []int{5, 8, 12, 16, 20}
	eps := []float64{0.3, 0.45, 0.55, 0.65, 0.75}
	truth := matrixWithFreqs(m, freqs)
	n := len(freqs)

	// flips[j] counts published 1s over truly-0 cells; expect[j] sums the
	// per-trial β_j over the same cells, so the two agree in expectation
	// even if mixing hides identity j in some trials (β_j = 1 there).
	flips := make([]float64, n)
	expect := make([]float64, n)
	zeros := make([]int, n)
	for j, f := range freqs {
		zeros[j] = m - f
	}

	for trial := 0; trial < trials; trial++ {
		cfg := Config{
			Policy:  mathx.PolicyBasic,
			Mode:    ModeTrusted,
			Seed:    1000 + int64(trial),
			Workers: 4, // exercise the parallel publication path
		}
		res, err := Construct(truth, eps, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if truth.Get(i, j) {
					if !res.Published.Get(i, j) {
						t.Fatalf("trial %d: identity %d lost true positive at provider %d (recall < 100%%)", trial, j, i)
					}
				} else if res.Published.Get(i, j) {
					flips[j]++
				}
			}
			expect[j] += res.Betas[j] * float64(zeros[j])
		}
	}

	for j := 0; j < n; j++ {
		draws := float64(zeros[j] * trials)
		got := flips[j] / draws
		want := expect[j] / draws
		// Hoeffding: P(|mean - E| >= bound) <= 2 exp(-2 N bound²),
		// solved for the per-identity budget δ/n.
		bound := math.Sqrt(math.Log(2*float64(n)/delta) / (2 * draws))
		if math.Abs(got-want) > bound {
			t.Errorf("identity %d: measured false-positive rate %.5f, expected β=%.5f (|Δ|=%.5f > Hoeffding bound %.5f over %d draws)",
				j, got, want, math.Abs(got-want), bound, int(draws))
		}
	}
}
