package index

import (
	"context"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/trace"
)

func traceTestServer(tb testing.TB) *Server {
	tb.Helper()
	pub, err := bitmat.New(64, 4)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 64; i += 3 {
		pub.Set(i, 0, true)
	}
	srv, err := NewServer(pub, []string{"a", "b", "c", "d"})
	if err != nil {
		tb.Fatal(err)
	}
	return srv
}

// TestQueryCtxUntracedAddsNoAllocs pins the disabled-tracing fast path:
// a spanless context must add zero allocations over the raw column scan
// (whose result slice is the only allocation either way).
func TestQueryCtxUntracedAddsNoAllocs(t *testing.T) {
	srv := traceTestServer(t)
	ctx := context.Background()
	base := testing.AllocsPerRun(200, func() {
		srv.published.ColOnes(0)
	})
	traced := testing.AllocsPerRun(200, func() {
		if _, err := srv.QueryCtx(ctx, "a"); err != nil {
			t.Fatal(err)
		}
	})
	if traced != base {
		t.Fatalf("QueryCtx with tracing disabled allocates %v, raw scan allocates %v", traced, base)
	}
}

func TestQueryCtxRecordsSpan(t *testing.T) {
	srv := traceTestServer(t)
	tr := trace.New(2)
	ctx, root := tr.StartRoot(context.Background(), "op")
	if _, err := srv.QueryCtx(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.QueryCtx(ctx, "nobody"); err == nil {
		t.Fatal("unknown owner accepted")
	}
	root.End()
	spans := tr.Recent()[0].Spans
	var hit, miss bool
	for _, s := range spans {
		if s.Name != "index.query" {
			continue
		}
		for _, a := range s.Attrs {
			if a.Key == "fanout" {
				hit = true
			}
			if a.Key == "outcome" && a.Value == "unknown_owner" {
				miss = true
			}
		}
	}
	if !hit || !miss {
		t.Fatalf("index.query spans missing annotations (hit=%v miss=%v)", hit, miss)
	}
}

func BenchmarkQueryCtxUntraced(b *testing.B) {
	srv := traceTestServer(b)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := srv.QueryCtx(ctx, "a"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryCtxTraced(b *testing.B) {
	srv := traceTestServer(b)
	tr := trace.New(4)
	ctx, root := tr.StartRoot(context.Background(), "bench")
	defer root.End()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := srv.QueryCtx(ctx, "a"); err != nil {
			b.Fatal(err)
		}
	}
}
