package index

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestQueryBatchMatchesQuery pins the batch path to the single path: for
// every owner, the batch row must carry exactly what Query returns —
// including the in-band miss where Query errors with ErrUnknownOwner.
func TestQueryBatchMatchesQuery(t *testing.T) {
	s := sampleServer(t)
	owners := []string{"alice", "mallory", "carol", "bob", "alice", ""}
	items := s.QueryBatch(context.Background(), owners)
	if len(items) != len(owners) {
		t.Fatalf("items = %d, want %d", len(items), len(owners))
	}
	for i, owner := range owners {
		it := items[i]
		if it.Owner != owner {
			t.Fatalf("item %d echoes %q, want %q", i, it.Owner, owner)
		}
		single, err := s.Query(owner)
		if errors.Is(err, ErrUnknownOwner) {
			if it.Found || it.Providers != nil {
				t.Fatalf("item %d (%q) = %+v, want in-band miss with nil providers", i, owner, it)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !it.Found {
			t.Fatalf("item %d (%q): single found, batch missed", i, owner)
		}
		if it.Providers == nil {
			t.Fatalf("item %d (%q): found row with nil providers", i, owner)
		}
		if fmt.Sprint(it.Providers) != fmt.Sprint(single) {
			t.Fatalf("item %d (%q): batch %v, single %v", i, owner, it.Providers, single)
		}
	}
}

func TestQueryBatchEmpty(t *testing.T) {
	s := sampleServer(t)
	items := s.QueryBatch(context.Background(), nil)
	if len(items) != 0 {
		t.Fatalf("items = %v, want empty", items)
	}
}

// TestQueryBatchLoadCounters checks the amortized counter fold: a batch
// must account for its hits exactly like the same lookups done one by one.
func TestQueryBatchLoadCounters(t *testing.T) {
	s := sampleServer(t)
	base := s.Stats()
	s.QueryBatch(context.Background(), []string{"alice", "mallory", "carol"})
	st := s.Stats()
	// alice (fanout 2) and carol (fanout 0) hit; mallory does not count.
	if got := st.Queries - base.Queries; got != 2 {
		t.Fatalf("batch added %d queries, want 2", got)
	}
	if st.AvgFanout != 1 { // (2+0)/2
		t.Fatalf("avg fanout = %v, want 1", st.AvgFanout)
	}
}
