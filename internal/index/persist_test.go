package index

import (
	"bytes"
	"strings"
	"testing"
)

func TestPersistRoundTrip(t *testing.T) {
	s := sampleServer(t)
	if _, err := s.Query("alice"); err != nil { // stats should NOT persist
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Providers() != s.Providers() || back.Owners() != s.Owners() {
		t.Fatalf("dims %dx%d", back.Providers(), back.Owners())
	}
	got, err := back.Query("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Query after round trip = %v", got)
	}
	if st := back.Stats(); st.Queries != 1 {
		t.Fatalf("restored stats = %+v, want fresh counter at 1 (this query only)", st)
	}
	if back.SearchCost() != s.SearchCost() {
		t.Fatal("search cost changed across persistence")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}
