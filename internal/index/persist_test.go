package index

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"strings"
	"testing"
)

func TestPersistRoundTrip(t *testing.T) {
	s := sampleServer(t)
	if _, err := s.Query("alice"); err != nil { // stats should NOT persist
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Providers() != s.Providers() || back.Owners() != s.Owners() {
		t.Fatalf("dims %dx%d", back.Providers(), back.Owners())
	}
	got, err := back.Query("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Query after round trip = %v", got)
	}
	if st := back.Stats(); st.Queries != 1 {
		t.Fatalf("restored stats = %+v, want fresh counter at 1 (this query only)", st)
	}
	if back.SearchCost() != s.SearchCost() {
		t.Fatal("search cost changed across persistence")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

// encode returns a framed snapshot of the sample server.
func encode(t *testing.T, s *Server) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadRejectsCorruptedPayload(t *testing.T) {
	raw := encode(t, sampleServer(t))
	// Flip one bit in the payload (past the 19-byte header): the CRC must
	// catch it with a checksum error, not a gob panic or silent garbage.
	for _, off := range []int{frameHeaderLen, frameHeaderLen + 7, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		_, err := Read(bytes.NewReader(bad))
		if !errors.Is(err, ErrChecksum) {
			t.Errorf("corruption at %d: err = %v, want ErrChecksum", off, err)
		}
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	raw := encode(t, sampleServer(t))
	for _, n := range []int{1, frameHeaderLen - 1, frameHeaderLen, len(raw) - 1} {
		_, err := Read(bytes.NewReader(raw[:n]))
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("truncation at %d bytes: err = %v, want ErrTruncated", n, err)
		}
	}
}

func TestReadRejectsVersionAndKind(t *testing.T) {
	raw := encode(t, sampleServer(t))
	future := append([]byte(nil), raw...)
	future[5] = 99 // version low byte
	if _, err := Read(bytes.NewReader(future)); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: err = %v, want ErrVersion", err)
	}

	var manifest bytes.Buffer
	if _, err := WriteFrame(&manifest, FrameManifest, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(manifest.Bytes())); !errors.Is(err, ErrKind) {
		t.Errorf("manifest-as-snapshot: err = %v, want ErrKind", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("the payload")
	n, err := WriteFrame(&buf, FrameManifest, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteFrame reported %d bytes, wrote %d", n, buf.Len())
	}
	kind, got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameManifest || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = (%v, %q)", kind, got)
	}
}

func TestReadLegacyUnframedSnapshot(t *testing.T) {
	// Indexes exported before the frame format are plain gob streams; they
	// must still load.
	s := sampleServer(t)
	raw, err := s.published.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(Snapshot{Matrix: raw, Names: s.names}); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&legacy)
	if err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	if back.Owners() != 3 || back.Providers() != 4 {
		t.Fatalf("legacy dims %dx%d", back.Providers(), back.Owners())
	}
}

func TestPersistEpoch(t *testing.T) {
	s := sampleServer(t)
	s.SetEpoch(7)
	back, err := Read(bytes.NewReader(encode(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch() != 7 {
		t.Fatalf("epoch after round trip = %d, want 7", back.Epoch())
	}
}

func TestReadV1Frame(t *testing.T) {
	// Version-1 frames predate the epoch field. The checksum covers only
	// the payload, and gob omits zero fields, so a freshly written epoch-0
	// snapshot with the version bytes set to 1 is byte-for-byte a genuine
	// v1 file. It must load and report epoch 0.
	raw := encode(t, sampleServer(t))
	raw[4], raw[5] = 0, 1
	back, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if back.Epoch() != 0 {
		t.Fatalf("v1 frame epoch = %d, want 0", back.Epoch())
	}
	if back.Owners() != 3 || back.Providers() != 4 {
		t.Fatalf("v1 dims %dx%d", back.Providers(), back.Owners())
	}
}

func TestPersistShardInfo(t *testing.T) {
	s := sampleServer(t)
	if err := s.SetShard(1, 3); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(encode(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	id, of, sharded := back.ShardInfo()
	if !sharded || id != 1 || of != 3 {
		t.Fatalf("shard info = (%d, %d, %v), want (1, 3, true)", id, of, sharded)
	}
}

func TestSearch(t *testing.T) {
	s := sampleServer(t)
	all := s.Search(context.Background(), "", 0)
	if len(all) != 3 || all[0].Owner != "alice" || len(all[0].Providers) != 2 {
		t.Fatalf("Search(\"\") = %+v", all)
	}
	if got := s.Search(context.Background(), "bob", 0); len(got) != 1 || got[0].Owner != "bob" {
		t.Fatalf("Search(bob) = %+v", got)
	}
	if got := s.Search(context.Background(), "", 2); len(got) != 2 {
		t.Fatalf("Search limit 2 = %+v", got)
	}
	if got := s.Search(context.Background(), "zzz", 0); len(got) != 0 {
		t.Fatalf("Search(zzz) = %+v", got)
	}
}
