package index

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/bitmat"
)

// Snapshot is the serializable form of a PPI server: the published matrix
// plus the identity labels. It deliberately contains nothing else — the
// third-party host must never receive β values, thresholds or any other
// construction by-product.
type Snapshot struct {
	// Matrix is the binary encoding of M'.
	Matrix []byte
	// Names are the identity labels in column order.
	Names []string
}

// WriteTo serializes the server state (gob-framed Snapshot).
func (s *Server) WriteTo(w io.Writer) (int64, error) {
	raw, err := s.published.MarshalBinary()
	if err != nil {
		return 0, fmt.Errorf("index: encode matrix: %w", err)
	}
	cw := &countingWriter{w: w}
	enc := gob.NewEncoder(cw)
	if err := enc.Encode(Snapshot{Matrix: raw, Names: s.names}); err != nil {
		return cw.n, fmt.Errorf("index: encode snapshot: %w", err)
	}
	return cw.n, nil
}

// Read deserializes a server previously written with WriteTo. Query
// statistics start fresh.
func Read(r io.Reader) (*Server, error) {
	var snap Snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("index: decode snapshot: %w", err)
	}
	var mat bitmat.Matrix
	if err := mat.UnmarshalBinary(snap.Matrix); err != nil {
		return nil, fmt.Errorf("index: decode matrix: %w", err)
	}
	return NewServer(&mat, snap.Names)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
