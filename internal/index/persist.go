package index

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/bitmat"
)

// Snapshot framing. Every on-disk artifact of the serving tier — full
// index snapshots, column-shard snapshots, shard-set manifests — shares
// one self-describing frame so a loader can reject truncated, corrupted
// or mismatched files with a precise error instead of a gob decode panic
// deep inside the payload:
//
//	magic   [4]byte  "EPPI"
//	version uint16   big-endian format version (FrameVersion)
//	kind    uint8    payload discriminator (FrameKind)
//	length  uint64   big-endian payload length in bytes
//	crc32   uint32   big-endian IEEE CRC-32 of the payload
//	payload [length]byte
//
// The checksum covers only the payload: a header corruption shows up as
// bad magic / unknown version / absurd length, a payload corruption as a
// checksum mismatch, and a short file as ErrTruncated.

// FrameVersion is the current snapshot format version. Version 2 added
// the epoch number to Snapshot and shard.Manifest payloads; version-1
// frames (and pre-frame plain gob) still load, reporting epoch 0.
const FrameVersion uint16 = 2

// frameVersionV1 is the pre-epoch frame version, still accepted on read.
const frameVersionV1 uint16 = 1

// frameMagic opens every framed artifact.
var frameMagic = [4]byte{'E', 'P', 'P', 'I'}

// FrameKind discriminates the payload carried by a frame.
type FrameKind uint8

// Frame kinds.
const (
	// FrameSnapshot is a gob-encoded Snapshot (a full or shard index).
	FrameSnapshot FrameKind = 1
	// FrameManifest is a gob-encoded shard-set manifest
	// (internal/shard.Manifest).
	FrameManifest FrameKind = 2
)

// String names the kind for error messages.
func (k FrameKind) String() string {
	switch k {
	case FrameSnapshot:
		return "snapshot"
	case FrameManifest:
		return "manifest"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Framing errors. All are wrapped with file-level context by callers;
// match with errors.Is.
var (
	// ErrBadMagic reports input that is not a framed ε-PPI artifact.
	ErrBadMagic = errors.New("index: not an ε-PPI snapshot (bad magic)")
	// ErrVersion reports a frame written by an unknown format version.
	ErrVersion = errors.New("index: unsupported snapshot version")
	// ErrTruncated reports a frame shorter than its header promises.
	ErrTruncated = errors.New("index: truncated snapshot")
	// ErrChecksum reports a payload whose CRC-32 does not match the header.
	ErrChecksum = errors.New("index: snapshot checksum mismatch (corrupted payload)")
	// ErrKind reports a frame of the wrong kind (e.g. a manifest where a
	// snapshot was expected).
	ErrKind = errors.New("index: unexpected snapshot kind")
)

// frameHeaderLen is the fixed byte length of the frame header.
const frameHeaderLen = 4 + 2 + 1 + 8 + 4

// maxFramePayload bounds the payload length a reader will allocate for.
// Corrupted headers must not turn into multi-gigabyte allocations; the
// bound is far above any realistic index (a 1M×10K matrix is ~1.2 GB).
const maxFramePayload = 1 << 34

// WriteFrame writes one framed payload and returns the bytes written.
func WriteFrame(w io.Writer, kind FrameKind, payload []byte) (int64, error) {
	var hdr [frameHeaderLen]byte
	copy(hdr[0:4], frameMagic[:])
	binary.BigEndian.PutUint16(hdr[4:6], FrameVersion)
	hdr[6] = byte(kind)
	binary.BigEndian.PutUint64(hdr[7:15], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[15:19], crc32.ChecksumIEEE(payload))
	n, err := w.Write(hdr[:])
	if err != nil {
		return int64(n), err
	}
	m, err := w.Write(payload)
	return int64(n) + int64(m), err
}

// ReadFrame reads one framed payload, verifying magic, version, kind and
// checksum. Truncated input yields ErrTruncated; a checksum mismatch
// yields ErrChecksum. want == 0 accepts any kind; the actual kind is
// returned either way.
func ReadFrame(r io.Reader, want FrameKind) (FrameKind, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: %d-byte header incomplete", ErrTruncated, frameHeaderLen)
		}
		return 0, nil, err
	}
	if !bytes.Equal(hdr[0:4], frameMagic[:]) {
		return 0, nil, ErrBadMagic
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != FrameVersion && v != frameVersionV1 {
		return 0, nil, fmt.Errorf("%w: file has v%d, this build reads v%d and older", ErrVersion, v, FrameVersion)
	}
	kind := FrameKind(hdr[6])
	if want != 0 && kind != want {
		return kind, nil, fmt.Errorf("%w: have %v, want %v", ErrKind, kind, want)
	}
	length := binary.BigEndian.Uint64(hdr[7:15])
	if length > maxFramePayload {
		return kind, nil, fmt.Errorf("%w: header declares absurd payload length %d", ErrChecksum, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return kind, nil, fmt.Errorf("%w: payload shorter than declared %d bytes", ErrTruncated, length)
		}
		return kind, nil, err
	}
	wantSum := binary.BigEndian.Uint32(hdr[15:19])
	if got := crc32.ChecksumIEEE(payload); got != wantSum {
		return kind, nil, fmt.Errorf("%w: crc32 %08x, header says %08x", ErrChecksum, got, wantSum)
	}
	return kind, payload, nil
}

// Snapshot is the serializable form of a PPI server: the published matrix
// plus the identity labels. It deliberately contains nothing else — the
// third-party host must never receive β values, thresholds or any other
// construction by-product.
type Snapshot struct {
	// Matrix is the binary encoding of M'.
	Matrix []byte
	// Names are the identity labels in column order.
	Names []string
	// Shard and Shards identify a column shard of a larger index
	// (0 ≤ Shard < Shards). Both zero for an unsharded index.
	Shard  int
	Shards int
	// Epoch is the publication epoch the snapshot belongs to. Re-published
	// indexes carry increasing epochs so the serving tier can tell index
	// versions apart; 0 means "never re-published" (and is what every
	// pre-epoch snapshot reads as, since gob leaves absent fields zero).
	Epoch uint64
}

// WriteTo serializes the server state: a checksummed, versioned frame
// around the gob-encoded Snapshot.
func (s *Server) WriteTo(w io.Writer) (int64, error) {
	raw, err := s.published.MarshalBinary()
	if err != nil {
		return 0, fmt.Errorf("index: encode matrix: %w", err)
	}
	var buf bytes.Buffer
	snap := Snapshot{Matrix: raw, Names: s.names, Shard: s.shard, Shards: s.shards, Epoch: s.epoch}
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return 0, fmt.Errorf("index: encode snapshot: %w", err)
	}
	return WriteFrame(w, FrameSnapshot, buf.Bytes())
}

// Read deserializes a server previously written with WriteTo, verifying
// the frame checksum first. Query statistics start fresh. Pre-framing
// snapshots (plain gob, no header) are still accepted for compatibility
// with indexes exported before the frame format existed.
func Read(r io.Reader) (*Server, error) {
	// Peek the magic: legacy snapshots start straight into the gob stream.
	var head [4]byte
	n, err := io.ReadFull(r, head[:])
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		// Shorter than the magic: valid in neither format.
		return nil, fmt.Errorf("%w: %d-byte input", ErrTruncated, n)
	}
	if err != nil {
		return nil, err
	}
	rest := io.MultiReader(bytes.NewReader(head[:n]), r)
	if bytes.Equal(head[:], frameMagic[:]) {
		_, payload, err := ReadFrame(rest, FrameSnapshot)
		if err != nil {
			return nil, err
		}
		return decodeSnapshot(bytes.NewReader(payload))
	}
	return decodeSnapshot(rest)
}

// decodeSnapshot rebuilds a server from a gob-encoded Snapshot stream.
func decodeSnapshot(r io.Reader) (*Server, error) {
	var snap Snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("index: decode snapshot: %w", err)
	}
	var mat bitmat.Matrix
	if err := mat.UnmarshalBinary(snap.Matrix); err != nil {
		return nil, fmt.Errorf("index: decode matrix: %w", err)
	}
	srv, err := NewServer(&mat, snap.Names)
	if err != nil {
		return nil, err
	}
	if snap.Shards > 0 {
		if err := srv.SetShard(snap.Shard, snap.Shards); err != nil {
			return nil, err
		}
	}
	srv.SetEpoch(snap.Epoch)
	return srv, nil
}
