package index

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/metrics"
)

func sampleServer(t *testing.T) *Server {
	t.Helper()
	m := bitmat.MustNew(4, 3)
	m.Set(0, 0, true)
	m.Set(2, 0, true)
	m.Set(1, 1, true)
	s, err := NewServer(m, []string{"alice", "bob", "carol"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServerValidation(t *testing.T) {
	m := bitmat.MustNew(2, 2)
	if _, err := NewServer(nil, nil); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := NewServer(m, []string{"a"}); err == nil {
		t.Error("name count mismatch accepted")
	}
	if _, err := NewServer(m, []string{"a", "a"}); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestQuery(t *testing.T) {
	s := sampleServer(t)
	got, err := s.Query("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Query(alice) = %v, want [0 2]", got)
	}
	got, err = s.Query("carol")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("Query(carol) = %v, want empty", got)
	}
	if _, err := s.Query("mallory"); !errors.Is(err, ErrUnknownOwner) {
		t.Fatalf("unknown owner error = %v", err)
	}
}

func TestServerIsolatedFromCallerMatrix(t *testing.T) {
	m := bitmat.MustNew(2, 1)
	m.Set(0, 0, true)
	s, err := NewServer(m, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	m.Set(1, 0, true) // caller mutates after handoff
	got, err := s.Query("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("server observed caller mutation: %v", got)
	}
}

func TestStats(t *testing.T) {
	s := sampleServer(t)
	if st := s.Stats(); st.Queries != 0 || st.AvgFanout != 0 {
		t.Fatalf("fresh stats = %+v", st)
	}
	if _, err := s.Query("alice"); err != nil { // fanout 2
		t.Fatal(err)
	}
	if _, err := s.Query("bob"); err != nil { // fanout 1
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Queries != 2 || st.AvgFanout != 1.5 {
		t.Fatalf("stats = %+v, want 2 queries avg 1.5", st)
	}
	if s.SearchCost() != 3 {
		t.Fatalf("SearchCost = %d, want 3", s.SearchCost())
	}
}

func TestAccessors(t *testing.T) {
	s := sampleServer(t)
	if s.Providers() != 4 || s.Owners() != 3 {
		t.Fatalf("dims = %d x %d", s.Providers(), s.Owners())
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "alice" {
		t.Fatalf("Names = %v", names)
	}
	names[0] = "evil"
	if s.Names()[0] != "alice" {
		t.Fatal("Names exposed internal slice")
	}
}

func TestConcurrentQueries(t *testing.T) {
	s := sampleServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				if _, err := s.Query("alice"); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Queries != 2000 {
		t.Fatalf("Queries = %d, want 2000", st.Queries)
	}
}

func TestInstrument(t *testing.T) {
	s := sampleServer(t)
	reg := metrics.NewRegistry()
	s.Instrument(reg)
	if _, err := s.Query("alice"); err != nil { // fanout 2
		t.Fatal(err)
	}
	if _, err := s.Query("bob"); err != nil { // fanout 1
		t.Fatal(err)
	}
	if _, err := s.Query("mallory"); err == nil {
		t.Fatal("unknown owner accepted")
	}
	if got := reg.Counter("eppi_index_queries_total", "").Value(); got != 2 {
		t.Fatalf("queries_total = %d, want 2", got)
	}
	if got := reg.Counter("eppi_index_unknown_owner_total", "").Value(); got != 1 {
		t.Fatalf("unknown_owner_total = %d, want 1", got)
	}
	h := reg.Histogram("eppi_index_query_fanout", "", nil)
	if h.Count() != 2 || h.Sum() != 3 {
		t.Fatalf("fanout histogram count=%d sum=%v, want 2/3", h.Count(), h.Sum())
	}
	// Registry and Stats() must agree.
	if st := s.Stats(); st.Queries != 2 || st.AvgFanout != 1.5 {
		t.Fatalf("Stats = %+v", st)
	}
}

// BenchmarkQueryColumn measures the hot QueryPPI path. The counters were
// converted from a mutex to sync/atomic; the parallel variant is the one
// the mutex used to serialize.
func BenchmarkQueryColumn(b *testing.B) {
	s := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.QueryColumn(i % s.Owners())
	}
}

func BenchmarkQueryColumnParallel(b *testing.B) {
	s := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		j := 0
		for pb.Next() {
			s.QueryColumn(j % s.Owners())
			j++
		}
	})
}

// BenchmarkQueryColumnInstrumented shows the marginal cost of a live
// metrics registry on the hot path.
func BenchmarkQueryColumnInstrumented(b *testing.B) {
	s := benchServer(b)
	s.Instrument(metrics.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		j := 0
		for pb.Next() {
			s.QueryColumn(j % s.Owners())
			j++
		}
	})
}

func benchServer(b *testing.B) *Server {
	b.Helper()
	const m, n = 256, 64
	mat := bitmat.MustNew(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if (i+j)%7 == 0 {
				mat.Set(i, j, true)
			}
		}
	}
	names := make([]string, n)
	for j := range names {
		names[j] = fmt.Sprintf("owner-%03d", j)
	}
	s, err := NewServer(mat, names)
	if err != nil {
		b.Fatal(err)
	}
	return s
}
