package index

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/bitmat"
)

func sampleServer(t *testing.T) *Server {
	t.Helper()
	m := bitmat.MustNew(4, 3)
	m.Set(0, 0, true)
	m.Set(2, 0, true)
	m.Set(1, 1, true)
	s, err := NewServer(m, []string{"alice", "bob", "carol"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServerValidation(t *testing.T) {
	m := bitmat.MustNew(2, 2)
	if _, err := NewServer(nil, nil); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := NewServer(m, []string{"a"}); err == nil {
		t.Error("name count mismatch accepted")
	}
	if _, err := NewServer(m, []string{"a", "a"}); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestQuery(t *testing.T) {
	s := sampleServer(t)
	got, err := s.Query("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Query(alice) = %v, want [0 2]", got)
	}
	got, err = s.Query("carol")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("Query(carol) = %v, want empty", got)
	}
	if _, err := s.Query("mallory"); !errors.Is(err, ErrUnknownOwner) {
		t.Fatalf("unknown owner error = %v", err)
	}
}

func TestServerIsolatedFromCallerMatrix(t *testing.T) {
	m := bitmat.MustNew(2, 1)
	m.Set(0, 0, true)
	s, err := NewServer(m, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	m.Set(1, 0, true) // caller mutates after handoff
	got, err := s.Query("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("server observed caller mutation: %v", got)
	}
}

func TestStats(t *testing.T) {
	s := sampleServer(t)
	if st := s.Stats(); st.Queries != 0 || st.AvgFanout != 0 {
		t.Fatalf("fresh stats = %+v", st)
	}
	if _, err := s.Query("alice"); err != nil { // fanout 2
		t.Fatal(err)
	}
	if _, err := s.Query("bob"); err != nil { // fanout 1
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Queries != 2 || st.AvgFanout != 1.5 {
		t.Fatalf("stats = %+v, want 2 queries avg 1.5", st)
	}
	if s.SearchCost() != 3 {
		t.Fatalf("SearchCost = %d, want 3", s.SearchCost())
	}
}

func TestAccessors(t *testing.T) {
	s := sampleServer(t)
	if s.Providers() != 4 || s.Owners() != 3 {
		t.Fatalf("dims = %d x %d", s.Providers(), s.Owners())
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "alice" {
		t.Fatalf("Names = %v", names)
	}
	names[0] = "evil"
	if s.Names()[0] != "alice" {
		t.Fatal("Names exposed internal slice")
	}
}

func TestConcurrentQueries(t *testing.T) {
	s := sampleServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				if _, err := s.Query("alice"); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Queries != 2000 {
		t.Fatalf("Queries = %d, want 2000", st.Queries)
	}
}
