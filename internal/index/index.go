// Package index implements the published ε-PPI: the data structure hosted
// by the untrusted third-party locator service. It stores only the obscured
// matrix M' — never the private matrix M or the β values — and serves the
// QueryPPI operation: "which providers may hold records of owner t?".
package index

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitmat"
)

// ErrUnknownOwner reports a query for an owner absent from the index.
var ErrUnknownOwner = errors.New("index: unknown owner identity")

// Server is the PPI server state. It is safe for concurrent queries.
type Server struct {
	published *bitmat.Matrix
	names     []string
	byName    map[string]int

	mu      sync.Mutex
	queries uint64
	fanout  uint64 // cumulative result-list length (search cost)
}

// NewServer builds a server over the published matrix. names[j] labels
// identity column j; duplicate names are rejected.
func NewServer(published *bitmat.Matrix, names []string) (*Server, error) {
	if published == nil {
		return nil, errors.New("index: nil matrix")
	}
	if len(names) != published.Cols() {
		return nil, fmt.Errorf("index: %d names for %d identity columns", len(names), published.Cols())
	}
	byName := make(map[string]int, len(names))
	for j, name := range names {
		if _, dup := byName[name]; dup {
			return nil, fmt.Errorf("index: duplicate owner name %q", name)
		}
		byName[name] = j
	}
	// Defensive copy: the server must not observe later caller mutations.
	return &Server{published: published.Clone(), names: append([]string(nil), names...), byName: byName}, nil
}

// Providers returns the provider count m.
func (s *Server) Providers() int { return s.published.Rows() }

// Owners returns the identity count n.
func (s *Server) Owners() int { return s.published.Cols() }

// Names returns the identity labels in column order.
func (s *Server) Names() []string {
	return append([]string(nil), s.names...)
}

// Query implements QueryPPI(t): the list of provider ids that may hold
// records of the owner. The list includes the noise providers that give the
// index its privacy.
func (s *Server) Query(owner string) ([]int, error) {
	j, ok := s.byName[owner]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownOwner, owner)
	}
	return s.QueryColumn(j), nil
}

// QueryColumn is Query by column number.
func (s *Server) QueryColumn(j int) []int {
	result := s.published.ColOnes(j)
	s.mu.Lock()
	s.queries++
	s.fanout += uint64(len(result))
	s.mu.Unlock()
	return result
}

// Stats summarises query-time load.
type Stats struct {
	// Queries is the number of QueryPPI calls served.
	Queries uint64
	// AvgFanout is the mean result-list length (the per-query search cost
	// a searcher pays in AuthSearch round-trips).
	AvgFanout float64
}

// Stats returns a snapshot of server load.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Queries: s.queries}
	if s.queries > 0 {
		st.AvgFanout = float64(s.fanout) / float64(s.queries)
	}
	return st
}

// SearchCost returns the total published positives (Σ_j |column j|), the
// network-wide query fan-out an exhaustive searcher would pay; experiments
// use it as the search-overhead metric.
func (s *Server) SearchCost() int {
	return s.published.Count()
}
