// Package index implements the published ε-PPI: the data structure hosted
// by the untrusted third-party locator service. It stores only the obscured
// matrix M' — never the private matrix M or the β values — and serves the
// QueryPPI operation: "which providers may hold records of owner t?".
package index

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/bitmat"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// ErrUnknownOwner reports a query for an owner absent from the index.
var ErrUnknownOwner = errors.New("index: unknown owner identity")

// Server is the PPI server state. It is safe for concurrent queries.
// Load counters are lock-free (sync/atomic) so concurrent QueryColumn
// calls never contend.
type Server struct {
	published *bitmat.Matrix
	names     []string
	byName    map[string]int

	// shard/shards identify this server as one column shard of a larger
	// index (0 ≤ shard < shards); shards == 0 means unsharded.
	shard  int
	shards int

	// epoch is the publication epoch this index belongs to (0 for an
	// index that was never re-published). It is immutable once serving
	// starts: a new epoch arrives as a whole new Server, swapped in
	// RCU-style by the serving layer, never mutated in place.
	epoch uint64

	queries atomic.Uint64
	fanout  atomic.Uint64 // cumulative result-list length (search cost)
	unknown atomic.Uint64 // queries for owners absent from the index

	// inst mirrors the counters into a shared registry once Instrument is
	// called; nil before that (and every instrument method no-ops on nil).
	inst atomic.Pointer[instruments]
}

// instruments are the registry-backed mirrors of the server's counters.
type instruments struct {
	queries *metrics.Counter
	unknown *metrics.Counter
	fanout  *metrics.Histogram
}

// FanoutBuckets are the histogram bucket bounds for per-query fan-out
// (result-list length): powers of two up to 4096 providers.
var FanoutBuckets = metrics.ExponentialBuckets(1, 2, 13)

// Instrument mirrors query counters into reg:
//
//	eppi_index_queries_total        QueryPPI calls served
//	eppi_index_unknown_owner_total  queries for absent owners
//	eppi_index_query_fanout         per-query result-list length (search cost)
//
// Fan-out is the paper's per-query search cost: the number of AuthSearch
// probes a searcher pays, noise included.
func (s *Server) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.inst.Store(&instruments{
		queries: reg.Counter("eppi_index_queries_total", "QueryPPI calls served."),
		unknown: reg.Counter("eppi_index_unknown_owner_total", "Queries for owner identities absent from the index."),
		fanout:  reg.Histogram("eppi_index_query_fanout", "Per-query result-list length (the paper's search cost).", FanoutBuckets),
	})
}

// NewServer builds a server over the published matrix. names[j] labels
// identity column j; duplicate names are rejected.
func NewServer(published *bitmat.Matrix, names []string) (*Server, error) {
	if published == nil {
		return nil, errors.New("index: nil matrix")
	}
	if len(names) != published.Cols() {
		return nil, fmt.Errorf("index: %d names for %d identity columns", len(names), published.Cols())
	}
	byName := make(map[string]int, len(names))
	for j, name := range names {
		if _, dup := byName[name]; dup {
			return nil, fmt.Errorf("index: duplicate owner name %q", name)
		}
		byName[name] = j
	}
	// Defensive copy: the server must not observe later caller mutations.
	return &Server{published: published.Clone(), names: append([]string(nil), names...), byName: byName}, nil
}

// SetShard marks the server as column shard id of a set of `of` shards.
// Shard identity travels with snapshots (WriteTo/Read) so a node serving
// a shard file knows — and reports — which slice of the index it holds.
func (s *Server) SetShard(id, of int) error {
	if of < 1 || id < 0 || id >= of {
		return fmt.Errorf("index: bad shard %d/%d", id, of)
	}
	s.shard, s.shards = id, of
	return nil
}

// ShardInfo returns the server's shard identity. sharded is false (and
// id/of are 0) for a full, unsharded index.
func (s *Server) ShardInfo() (id, of int, sharded bool) {
	return s.shard, s.shards, s.shards > 0
}

// SetEpoch stamps the publication epoch the index belongs to. Epoch
// identity travels with snapshots (WriteTo/Read) and is reported by the
// serving tier so a fleet mid-re-publication can tell which index
// version each node answers from.
func (s *Server) SetEpoch(e uint64) { s.epoch = e }

// Epoch returns the publication epoch (0: never re-published).
func (s *Server) Epoch() uint64 { return s.epoch }

// PublishedMatrix returns a copy of M'. The matrix is public by
// construction — it is exactly what the untrusted host serves — so
// exposing it leaks nothing; the shard partitioner uses it to split
// columns.
func (s *Server) PublishedMatrix() *bitmat.Matrix {
	return s.published.Clone()
}

// Providers returns the provider count m.
func (s *Server) Providers() int { return s.published.Rows() }

// Owners returns the identity count n.
func (s *Server) Owners() int { return s.published.Cols() }

// Names returns the identity labels in column order.
func (s *Server) Names() []string {
	return append([]string(nil), s.names...)
}

// Query implements QueryPPI(t): the list of provider ids that may hold
// records of the owner. The list includes the noise providers that give the
// index its privacy.
func (s *Server) Query(owner string) ([]int, error) {
	return s.QueryCtx(context.Background(), owner)
}

// QueryCtx is Query with an explicit context. When ctx carries a trace
// span, the lookup records an "index.query" child span annotated with the
// outcome (fan-out, or unknown_owner). With no span in ctx the tracing
// path is a no-op and allocates nothing.
func (s *Server) QueryCtx(ctx context.Context, owner string) ([]int, error) {
	_, sp := trace.StartChild(ctx, "index.query")
	j, ok := s.byName[owner]
	if !ok {
		s.unknown.Add(1)
		if in := s.inst.Load(); in != nil {
			in.unknown.Inc()
		}
		sp.Set("outcome", "unknown_owner")
		sp.End()
		return nil, fmt.Errorf("%w: %q", ErrUnknownOwner, owner)
	}
	result := s.QueryColumn(j)
	sp.SetInt("fanout", len(result))
	sp.End()
	return result, nil
}

// BatchItem is one per-owner outcome of a QueryBatch. A miss is in-band
// (Found false) instead of an error: one unknown owner must not fail the
// other k-1 resolutions travelling in the same batch.
type BatchItem struct {
	// Owner is the queried identity, echoed back so batch responses are
	// self-describing even after reordering or partial merges.
	Owner string `json:"owner"`
	// Found reports whether the owner is indexed.
	Found bool `json:"found"`
	// Providers is the QueryPPI result, noise included; empty (never nil)
	// when Found, nil when not.
	Providers []int `json:"providers"`
}

// QueryBatch resolves many owners against this one snapshot: every item
// of the returned slice (position-matched to owners) is answered by the
// same published matrix, so a batch can never straddle an epoch swap —
// the single-snapshot-per-batch guarantee the serving tier builds on.
// Each item answers exactly like QueryCtx would for that owner, misses
// reported in-band. When ctx carries a trace span, one "index.query_batch"
// child span records the batch size and hit count (not one span per
// owner — a 10k-owner batch must not flood the trace ring).
func (s *Server) QueryBatch(ctx context.Context, owners []string) []BatchItem {
	_, sp := trace.StartChild(ctx, "index.query_batch")
	out := make([]BatchItem, len(owners))
	found := 0
	var fanout uint64
	in := s.inst.Load()
	for i, owner := range owners {
		out[i].Owner = owner
		j, ok := s.byName[owner]
		if !ok {
			s.unknown.Add(1)
			if in != nil {
				in.unknown.Inc()
			}
			continue
		}
		providers := s.published.ColOnes(j)
		if providers == nil {
			providers = []int{}
		}
		out[i].Found = true
		out[i].Providers = providers
		found++
		fanout += uint64(len(providers))
		if in != nil {
			in.fanout.Observe(float64(len(providers)))
		}
	}
	// Fold the load counters in two adds instead of 2·k: the batch path
	// exists to amortize per-lookup overhead.
	s.queries.Add(uint64(found))
	s.fanout.Add(fanout)
	if in != nil {
		in.queries.Add(uint64(found))
	}
	sp.SetInt("batch_size", len(owners))
	sp.SetInt("found", found)
	sp.End()
	return out
}

// Match is one owner surfaced by a substring search.
type Match struct {
	// Owner is the identity label.
	Owner string `json:"owner"`
	// Providers is the QueryPPI result for the owner, noise included.
	Providers []int `json:"providers"`
}

// Search returns up to limit owners whose label contains substr (all
// owners for substr == ""), each with its QueryPPI provider list, in
// column order. limit <= 0 means no limit. Like Query, this exposes only
// published state: labels and M' columns. When ctx carries a trace span
// an "index.search" child span records the match count.
func (s *Server) Search(ctx context.Context, substr string, limit int) []Match {
	_, sp := trace.StartChild(ctx, "index.search")
	var out []Match
	for j, name := range s.names {
		if limit > 0 && len(out) >= limit {
			break
		}
		if substr != "" && !strings.Contains(name, substr) {
			continue
		}
		providers := s.QueryColumn(j)
		if providers == nil {
			providers = []int{}
		}
		out = append(out, Match{Owner: name, Providers: providers})
	}
	sp.SetInt("matches", len(out))
	sp.End()
	return out
}

// QueryColumn is Query by column number.
func (s *Server) QueryColumn(j int) []int {
	result := s.published.ColOnes(j)
	s.queries.Add(1)
	s.fanout.Add(uint64(len(result)))
	if in := s.inst.Load(); in != nil {
		in.queries.Inc()
		in.fanout.Observe(float64(len(result)))
	}
	return result
}

// Stats summarises query-time load.
type Stats struct {
	// Queries is the number of QueryPPI calls served.
	Queries uint64
	// AvgFanout is the mean result-list length (the per-query search cost
	// a searcher pays in AuthSearch round-trips).
	AvgFanout float64
}

// Stats returns a snapshot of server load.
func (s *Server) Stats() Stats {
	// Two independent atomic loads: under concurrent traffic the pair may
	// straddle an in-flight query, exactly like the old mutex snapshot
	// taken an instant earlier or later — the semantics are unchanged.
	queries := s.queries.Load()
	st := Stats{Queries: queries}
	if queries > 0 {
		st.AvgFanout = float64(s.fanout.Load()) / float64(queries)
	}
	return st
}

// SearchCost returns the total published positives (Σ_j |column j|), the
// network-wide query fan-out an exhaustive searcher would pay; experiments
// use it as the search-overhead metric.
func (s *Server) SearchCost() int {
	return s.published.Count()
}
