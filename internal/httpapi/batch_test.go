package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestBatchEndpointMixedRows(t *testing.T) {
	_, client := testService(t)
	rows, err := client.QueryBatch(context.Background(), []string{"alice", "nobody", "bob owner"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if !rows[0].Found || len(rows[0].Providers) != 2 || rows[0].Providers[0] != 0 || rows[0].Providers[1] != 2 {
		t.Fatalf("alice row = %+v", rows[0])
	}
	// The miss is in-band: Found false, no error, batch unharmed.
	if rows[1].Found || rows[1].Owner != "nobody" {
		t.Fatalf("miss row = %+v", rows[1])
	}
	if !rows[2].Found || len(rows[2].Providers) != 1 || rows[2].Providers[0] != 1 {
		t.Fatalf("bob row = %+v", rows[2])
	}
}

func TestBatchMatchesSingles(t *testing.T) {
	_, client := testService(t)
	// The empty string is excluded here because GET /v1/query rejects it
	// with 400 (no owner parameter); the batch path treats it as a miss,
	// covered by TestBatchEmptyOwnerIsMiss.
	owners := []string{"alice", "bob owner", "nobody", "alice"}
	rows, err := client.QueryBatch(context.Background(), owners)
	if err != nil {
		t.Fatal(err)
	}
	for i, owner := range owners {
		single, err := client.Query(context.Background(), owner)
		if errors.Is(err, ErrOwnerNotFound) {
			if rows[i].Found {
				t.Fatalf("row %d (%q): batch found, single 404", i, owner)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !rows[i].Found {
			t.Fatalf("row %d (%q): single found, batch miss", i, owner)
		}
		if fmt.Sprint(rows[i].Providers) != fmt.Sprint(single) {
			t.Fatalf("row %d (%q): batch %v, single %v", i, owner, rows[i].Providers, single)
		}
	}
}

func TestBatchEmptyOwnerIsMiss(t *testing.T) {
	_, client := testService(t)
	rows, err := client.QueryBatch(context.Background(), []string{""})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Found {
		t.Fatalf("rows = %+v, want one in-band miss", rows)
	}
}

func TestBatchEpochHeaderMatchesSnapshot(t *testing.T) {
	ts, client := testService(t)
	rows, epoch, err := client.QueryBatchEpoch(context.Background(), []string{"alice"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The raw header must be present and agree with the decoded epoch.
	body, _ := json.Marshal(BatchQueryRequest{Owners: []string{"alice"}})
	resp, err := ts.Client().Post(ts.URL+"/v1/query/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(EpochHeader); got != fmt.Sprint(epoch) {
		t.Fatalf("epoch header = %q, client decoded %d", got, epoch)
	}
}

func TestBatchOwnerCap(t *testing.T) {
	ts, _ := testService(t)
	owners := make([]string, MaxBatchOwners+1)
	for i := range owners {
		owners[i] = fmt.Sprintf("o%d", i)
	}
	body, _ := json.Marshal(BatchQueryRequest{Owners: owners})
	resp, err := ts.Client().Post(ts.URL+"/v1/query/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestBatchBodyCap(t *testing.T) {
	ts, _ := testService(t)
	// A syntactically valid request body larger than MaxBatchBody.
	huge := `{"owners":["` + strings.Repeat("x", MaxBatchBody) + `"]}`
	resp, err := ts.Client().Post(ts.URL+"/v1/query/batch", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestBatchBadJSON(t *testing.T) {
	ts, _ := testService(t)
	resp, err := ts.Client().Post(ts.URL+"/v1/query/batch", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// The batch endpoint is a read-only POST: the client's GET-only retry
// gate is explicitly opened for it, so transient 5xx/429 answers retry
// exactly like GET lookups do.
func TestBatchClientRetriesTransient5xx(t *testing.T) {
	ts, fh := flakyService(t, 2, http.StatusServiceUnavailable)
	client := NewClient(ts.URL, ts.Client(), WithBackoff(time.Millisecond, 4*time.Millisecond))
	rows, err := client.QueryBatch(context.Background(), []string{"alice", "bob"})
	if err != nil {
		t.Fatalf("batch through two 503s: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if n := fh.seen.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (two failures + success)", n)
	}
}

func TestBatchClientRetries429(t *testing.T) {
	ts, fh := flakyService(t, 1, http.StatusTooManyRequests)
	client := NewClient(ts.URL, ts.Client(), WithBackoff(time.Millisecond, 4*time.Millisecond))
	if _, err := client.QueryBatch(context.Background(), []string{"alice"}); err != nil {
		t.Fatalf("batch through a 429: %v", err)
	}
	if n := fh.seen.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2", n)
	}
}

func TestBatchClientRetriesTransportError(t *testing.T) {
	// The first attempt dies with a dropped connection (a transport
	// error, not an HTTP status); the retry must land on the real handler.
	ts, fh := flakyService(t, 0, 0)
	real := fh.inner
	fh.inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fh.seen.Load() == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("no hijacker")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Error(err)
				return
			}
			conn.Close() // mid-request connection drop -> transport error
			return
		}
		real.ServeHTTP(w, r)
	})
	client := NewClient(ts.URL, ts.Client(), WithBackoff(time.Millisecond, 4*time.Millisecond))
	rows, err := client.QueryBatch(context.Background(), []string{"alice"})
	if err != nil {
		t.Fatalf("batch through a dropped connection: %v", err)
	}
	if len(rows) != 1 || !rows[0].Found {
		t.Fatalf("rows = %+v", rows)
	}
	if n := fh.seen.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2 (drop + success)", n)
	}
}

func TestBatchClientHonorsRetryAfter(t *testing.T) {
	ts, fh := flakyService(t, 0, 0)
	real := fh.inner
	fh.inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fh.seen.Load() == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		real.ServeHTTP(w, r)
	})
	// Backoff is configured near-zero, so a prompt second request would
	// arrive within a few ms; honoring Retry-After: 1 forces >= 1s.
	client := NewClient(ts.URL, ts.Client(), WithBackoff(time.Microsecond, time.Microsecond))
	start := time.Now()
	if _, err := client.QueryBatch(context.Background(), []string{"alice"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("second attempt after %v, want >= 1s (Retry-After ignored)", elapsed)
	}
}

func TestBatchClientCancellationNoGoroutineLeak(t *testing.T) {
	ts, _ := flakyService(t, 1000, http.StatusServiceUnavailable)
	client := NewClient(ts.URL, ts.Client(),
		WithRetries(10), WithBackoff(10*time.Second, 10*time.Second))
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.QueryBatch(ctx, []string{"alice", "bob"})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it enter the backoff sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled batch call never returned")
	}
	// The retry loop must not strand a goroutine in its backoff timer.
	// (The transport's idle-connection loops are not the retry loop's
	// doing — drop them so only a genuine leak can fail the count.)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		ts.Client().CloseIdleConnections()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: before cancel %d, after %d", before, runtime.NumGoroutine())
}
