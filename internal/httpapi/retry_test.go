package httpapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/index"
)

// flakyHandler answers 5xx for the first fail requests, then delegates.
type flakyHandler struct {
	fail  int32
	code  int
	seen  atomic.Int32
	inner http.Handler
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.seen.Add(1) <= f.fail {
		w.WriteHeader(f.code)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func flakyService(t *testing.T, fail int32, code int) (*httptest.Server, *flakyHandler) {
	t.Helper()
	m := bitmat.MustNew(4, 2)
	m.Set(0, 0, true)
	m.Set(2, 0, true)
	srv, err := index.NewServer(m, []string{"alice", "bob"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(srv)
	if err != nil {
		t.Fatal(err)
	}
	fh := &flakyHandler{fail: fail, code: code, inner: h}
	ts := httptest.NewServer(fh)
	t.Cleanup(ts.Close)
	return ts, fh
}

func TestClientRetriesTransient5xx(t *testing.T) {
	ts, fh := flakyService(t, 2, http.StatusServiceUnavailable)
	client := NewClient(ts.URL, ts.Client(), WithBackoff(time.Millisecond, 4*time.Millisecond))
	got, err := client.Query(context.Background(), "alice")
	if err != nil {
		t.Fatalf("query through two 503s: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("providers = %v", got)
	}
	if n := fh.seen.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (two failures + success)", n)
	}
}

func TestClientGivesUpAfterRetryBudget(t *testing.T) {
	ts, fh := flakyService(t, 100, http.StatusInternalServerError)
	client := NewClient(ts.URL, ts.Client(), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if _, err := client.Query(context.Background(), "alice"); err == nil {
		t.Fatal("persistent 500 succeeded")
	}
	if n := fh.seen.Load(); n != 1+DefaultRetries {
		t.Fatalf("server saw %d requests, want %d", n, 1+DefaultRetries)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	ts, fh := flakyService(t, 0, 0)
	client := NewClient(ts.URL, ts.Client())
	if _, err := client.Query(context.Background(), "nobody"); !errors.Is(err, ErrOwnerNotFound) {
		t.Fatalf("err = %v, want ErrOwnerNotFound", err)
	}
	if n := fh.seen.Load(); n != 1 {
		t.Fatalf("server saw %d requests for a 404, want 1 (no retry)", n)
	}
}

func TestClientRetryDisabled(t *testing.T) {
	ts, fh := flakyService(t, 1, http.StatusBadGateway)
	client := NewClient(ts.URL, ts.Client(), WithRetries(0))
	if _, err := client.Query(context.Background(), "alice"); err == nil {
		t.Fatal("502 with retries disabled succeeded")
	}
	if n := fh.seen.Load(); n != 1 {
		t.Fatalf("server saw %d requests with retries disabled, want 1", n)
	}
}

func TestClientRetryHonorsCancellation(t *testing.T) {
	// A server that always 503s, a long backoff, and a context cancelled
	// mid-backoff: the call must return promptly with the context error.
	ts, _ := flakyService(t, 1000, http.StatusServiceUnavailable)
	client := NewClient(ts.URL, ts.Client(),
		WithRetries(10), WithBackoff(10*time.Second, 10*time.Second))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := client.Query(ctx, "alice")
	if err == nil {
		t.Fatal("cancelled retry loop succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; backoff ignored the context", elapsed)
	}
}

func TestClientRetriesConnectionError(t *testing.T) {
	// A server that dies after the first byte exchange is the classic
	// transient network failure. Simpler deterministic stand-in: a base URL
	// where nothing listens — every attempt fails with a connection error
	// and the retry budget must still bound the call.
	client := NewClient("http://127.0.0.1:1", nil, WithBackoff(time.Millisecond, 2*time.Millisecond))
	start := time.Now()
	if _, err := client.Query(context.Background(), "alice"); err == nil {
		t.Fatal("dead server succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop did not terminate promptly")
	}
}
