package httpapi

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/index"
)

// flakyHandler answers 5xx for the first fail requests, then delegates.
type flakyHandler struct {
	fail  int32
	code  int
	seen  atomic.Int32
	inner http.Handler
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.seen.Add(1) <= f.fail {
		w.WriteHeader(f.code)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func flakyService(t *testing.T, fail int32, code int) (*httptest.Server, *flakyHandler) {
	t.Helper()
	m := bitmat.MustNew(4, 2)
	m.Set(0, 0, true)
	m.Set(2, 0, true)
	srv, err := index.NewServer(m, []string{"alice", "bob"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(srv)
	if err != nil {
		t.Fatal(err)
	}
	fh := &flakyHandler{fail: fail, code: code, inner: h}
	ts := httptest.NewServer(fh)
	t.Cleanup(ts.Close)
	return ts, fh
}

func TestClientRetriesTransient5xx(t *testing.T) {
	ts, fh := flakyService(t, 2, http.StatusServiceUnavailable)
	client := NewClient(ts.URL, ts.Client(), WithBackoff(time.Millisecond, 4*time.Millisecond))
	got, err := client.Query(context.Background(), "alice")
	if err != nil {
		t.Fatalf("query through two 503s: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("providers = %v", got)
	}
	if n := fh.seen.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (two failures + success)", n)
	}
}

func TestClientGivesUpAfterRetryBudget(t *testing.T) {
	ts, fh := flakyService(t, 100, http.StatusInternalServerError)
	client := NewClient(ts.URL, ts.Client(), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if _, err := client.Query(context.Background(), "alice"); err == nil {
		t.Fatal("persistent 500 succeeded")
	}
	if n := fh.seen.Load(); n != 1+DefaultRetries {
		t.Fatalf("server saw %d requests, want %d", n, 1+DefaultRetries)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	ts, fh := flakyService(t, 0, 0)
	client := NewClient(ts.URL, ts.Client())
	if _, err := client.Query(context.Background(), "nobody"); !errors.Is(err, ErrOwnerNotFound) {
		t.Fatalf("err = %v, want ErrOwnerNotFound", err)
	}
	if n := fh.seen.Load(); n != 1 {
		t.Fatalf("server saw %d requests for a 404, want 1 (no retry)", n)
	}
}

func TestClientRetryDisabled(t *testing.T) {
	ts, fh := flakyService(t, 1, http.StatusBadGateway)
	client := NewClient(ts.URL, ts.Client(), WithRetries(0))
	if _, err := client.Query(context.Background(), "alice"); err == nil {
		t.Fatal("502 with retries disabled succeeded")
	}
	if n := fh.seen.Load(); n != 1 {
		t.Fatalf("server saw %d requests with retries disabled, want 1", n)
	}
}

func TestClientRetryHonorsCancellation(t *testing.T) {
	// A server that always 503s, a long backoff, and a context cancelled
	// mid-backoff: the call must return promptly with the context error.
	ts, _ := flakyService(t, 1000, http.StatusServiceUnavailable)
	client := NewClient(ts.URL, ts.Client(),
		WithRetries(10), WithBackoff(10*time.Second, 10*time.Second))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := client.Query(ctx, "alice")
	if err == nil {
		t.Fatal("cancelled retry loop succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; backoff ignored the context", elapsed)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", -1},      // absent: caller falls back to its own backoff
		{"later", -1}, // HTTP-date form unsupported, treated as absent
		{"-3", -1},    // negative is nonsense
		{"1.5", -1},   // delay-seconds is an integer
		{"0", 0},      // valid: retry immediately
		{"2", 2 * time.Second},
		{"9999", RetryAfterCap}, // a server cannot park the client for hours
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// retryAfterHandler 503s with a Retry-After header for the first fail
// requests, then delegates.
type retryAfterHandler struct {
	fail  int32
	after string
	seen  atomic.Int32
	inner http.Handler
}

func (h *retryAfterHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.seen.Add(1) <= h.fail {
		w.Header().Set("Retry-After", h.after)
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	h.inner.ServeHTTP(w, r)
}

func TestClientHonorsRetryAfter(t *testing.T) {
	// The client's own backoff is set absurdly long; the server's
	// Retry-After: 0 says "now is fine". If the client ignored the header
	// and used its backoff, this test would take 20s+ and trip the bound.
	ts, _ := flakyService(t, 0, 0)
	fh := &retryAfterHandler{fail: 2, after: "0", inner: mustHandlerOf(t, ts)}
	rts := httptest.NewServer(fh)
	defer rts.Close()
	client := NewClient(rts.URL, rts.Client(),
		WithBackoff(10*time.Second, 10*time.Second))
	start := time.Now()
	got, err := client.Query(context.Background(), "alice")
	if err != nil {
		t.Fatalf("query through two Retry-After 503s: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("providers = %v", got)
	}
	if n := fh.seen.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3", n)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("took %v; client slept its own backoff instead of Retry-After", elapsed)
	}
}

func TestClientRetryAfterDoesNotSpendBackoff(t *testing.T) {
	// Honoring Retry-After must not advance the exponential backoff
	// schedule: after header-directed retries, an unadorned 503 still gets
	// the client's *first* backoff step, not an escalated one.
	ts, _ := flakyService(t, 0, 0)
	fh := &retryAfterHandler{fail: 3, after: "0", inner: mustHandlerOf(t, ts)}
	rts := httptest.NewServer(fh)
	defer rts.Close()
	client := NewClient(rts.URL, rts.Client(),
		WithRetries(5), WithBackoff(time.Millisecond, time.Millisecond))
	if _, err := client.Query(context.Background(), "alice"); err != nil {
		t.Fatalf("query: %v", err)
	}
	// 3 header-directed retries + success must fit inside the retry budget
	// with room to spare.
	if n := fh.seen.Load(); n != 4 {
		t.Fatalf("server saw %d requests, want 4", n)
	}
}

// mustHandlerOf extracts a fresh locator handler like flakyService builds,
// reusing its fixture index.
func mustHandlerOf(t *testing.T, ts *httptest.Server) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := ts.Client().Get(ts.URL + r.URL.String())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	})
}

func TestClientRetriesConnectionError(t *testing.T) {
	// A server that dies after the first byte exchange is the classic
	// transient network failure. Simpler deterministic stand-in: a base URL
	// where nothing listens — every attempt fails with a connection error
	// and the retry budget must still bound the call.
	client := NewClient("http://127.0.0.1:1", nil, WithBackoff(time.Millisecond, 2*time.Millisecond))
	start := time.Now()
	if _, err := client.Query(context.Background(), "alice"); err == nil {
		t.Fatal("dead server succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop did not terminate promptly")
	}
}
