package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/index"
)

func TestSearchEndpoint(t *testing.T) {
	_, client := testService(t)
	all, err := client.Search(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].Owner != "alice" || all[1].Owner != "bob owner" {
		t.Fatalf("Search(\"\") = %+v", all)
	}
	if len(all[0].Providers) != 2 {
		t.Fatalf("alice providers = %v", all[0].Providers)
	}

	bob, err := client.Search(context.Background(), "bob", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bob) != 1 || bob[0].Owner != "bob owner" {
		t.Fatalf("Search(bob) = %+v", bob)
	}

	limited, err := client.Search(context.Background(), "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 1 {
		t.Fatalf("Search limit 1 = %+v", limited)
	}

	none, err := client.Search(context.Background(), "zzz", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("Search(zzz) = %+v", none)
	}
}

func TestSearchBadLimit(t *testing.T) {
	ts, _ := testService(t)
	resp, err := http.Get(ts.URL + "/v1/search?limit=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status %d", resp.StatusCode)
	}
}

func TestHealthzReportsShard(t *testing.T) {
	m := bitmat.MustNew(4, 1)
	srv, err := index.NewServer(m, []string{"alice"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SetShard(2, 5); err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(srv)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	client := NewClient(ts.URL, ts.Client())
	hz, err := client.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hz.Shard == nil || hz.Shard.ID != 2 || hz.Shard.Of != 5 {
		t.Fatalf("healthz shard = %+v, want 2/5", hz.Shard)
	}

	// Wire shape: the field is absent entirely for an unsharded index.
	_, full := testService(t)
	raw, err := http.Get(full.Base() + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	var loose map[string]any
	if err := json.NewDecoder(raw.Body).Decode(&loose); err != nil {
		t.Fatal(err)
	}
	if _, present := loose["shard"]; present {
		t.Fatal("unsharded healthz carries a shard field")
	}
}
