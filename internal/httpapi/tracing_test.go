package httpapi

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/index"
	"repro/internal/trace"
)

func tracedHandler(t *testing.T) (*Handler, *trace.Tracer) {
	t.Helper()
	pub, err := bitmat.New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	pub.Set(0, 0, true)
	pub.Set(2, 0, true)
	srv, err := index.NewServer(pub, []string{"alice", "bob"})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(8)
	h, err := NewHandler(srv, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	return h, tr
}

func TestQueryRecordsRootSpan(t *testing.T) {
	h, tr := tracedHandler(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/query?owner=alice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	traces := tr.Recent()
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	root := traces[0].Root()
	if root.Name != "http.query" {
		t.Fatalf("root span %q, want http.query", root.Name)
	}
	var gotIndex bool
	for _, s := range traces[0].Spans {
		if s.Name == "index.query" && s.Parent == root.ID {
			gotIndex = true
		}
	}
	if !gotIndex {
		t.Fatal("index.query child span missing from request trace")
	}
}

func TestClientPropagatesTraceToServer(t *testing.T) {
	h, serverTracer := tracedHandler(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	clientTracer := trace.New(2)
	ctx, sp := clientTracer.StartRoot(context.Background(), "client.op")
	c := NewClient(ts.URL, nil)
	if _, err := c.Query(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	sp.End()

	traces := serverTracer.Recent()
	if len(traces) != 1 {
		t.Fatalf("server recorded %d traces, want 1", len(traces))
	}
	serverRoot := traces[0].Root()
	if got, want := traces[0].ID, sp.TraceID(); got != want {
		t.Fatalf("server trace id %s, want caller's %s", got, want)
	}
	if got, want := serverRoot.Parent, sp.ID(); got != want {
		t.Fatalf("server root parented under %s, want caller span %s", got, want)
	}
}

func TestTracesEndpointServesChromeJSON(t *testing.T) {
	h, _ := tracedHandler(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	for _, owner := range []string{"alice", "bob"} {
		resp, err := http.Get(ts.URL + "/v1/query?owner=" + owner)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var file struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			PID   int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&file); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	var roots int
	for _, ev := range file.TraceEvents {
		if ev.Phase == "X" && ev.Name == "http.query" {
			roots++
		}
	}
	if roots != 2 {
		t.Fatalf("trace export holds %d http.query root spans, want 2", roots)
	}
}

func TestTracesEndpointTextFormat(t *testing.T) {
	h, _ := tracedHandler(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/query?owner=alice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/traces?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "http.query") {
		t.Fatalf("text dump missing root span:\n%s", body)
	}
}

func TestUntracedHandlerHasNoTraceRoutes(t *testing.T) {
	pub, err := bitmat.New(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := index.NewServer(pub, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(srv)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/traces on an untraced handler returned %d, want 404", resp.StatusCode)
	}
}
