package httpapi

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bitmat"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/searcher"
)

func testService(t *testing.T, opts ...Option) (*httptest.Server, *Client) {
	t.Helper()
	m := bitmat.MustNew(4, 2)
	m.Set(0, 0, true)
	m.Set(2, 0, true)
	m.Set(1, 1, true)
	srv, err := index.NewServer(m, []string{"alice", "bob owner"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(srv, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL, ts.Client())
}

func TestNewHandlerNil(t *testing.T) {
	if _, err := NewHandler(nil); err == nil {
		t.Fatal("nil server accepted")
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, client := testService(t)
	got, err := client.Query(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Query = %v", got)
	}
}

func TestQueryEscaping(t *testing.T) {
	// Owner identities can contain spaces and URL-special characters.
	_, client := testService(t)
	got, err := client.Query(context.Background(), "bob owner")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Query = %v", got)
	}
}

func TestQueryUnknownOwner(t *testing.T) {
	_, client := testService(t)
	_, err := client.Query(context.Background(), "mallory")
	if !errors.Is(err, ErrOwnerNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestQueryMissingParam(t *testing.T) {
	ts, _ := testService(t)
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := testService(t)
	resp, err := http.Post(ts.URL+"/v1/query?owner=alice", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	_, client := testService(t)
	ctx := context.Background()
	hz, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Providers != 4 || hz.Owners != 2 {
		t.Fatalf("healthz = %+v", hz)
	}
	if _, err := client.Query(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 1 || st.AvgFanout != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	ctx := context.Background()
	client := NewClient("http://127.0.0.1:1", nil) // nothing listens there
	if _, err := client.Query(ctx, "alice"); err == nil {
		t.Fatal("query against dead server succeeded")
	}
	if _, err := client.Stats(ctx); err == nil {
		t.Fatal("stats against dead server succeeded")
	}
	if _, err := client.Healthz(ctx); err == nil {
		t.Fatal("healthz against dead server succeeded")
	}
}

func TestClientDefaultTimeout(t *testing.T) {
	c := NewClient("http://example.invalid", nil)
	if c.http.Timeout != DefaultTimeout {
		t.Fatalf("default client timeout = %v, want %v", c.http.Timeout, DefaultTimeout)
	}
}

func TestClientHonorsContext(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	defer close(block)
	client := NewClient(ts.URL, ts.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Query(ctx, "alice")
	if err == nil {
		t.Fatal("query against a stalled server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("context deadline did not bound the call")
	}
}

func TestEmptyProvidersList(t *testing.T) {
	m := bitmat.MustNew(2, 1)
	srv, err := index.NewServer(m, []string{"ghost"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(srv)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	got, err := client.Query(context.Background(), "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got) != 0 {
		t.Fatalf("empty query = %v, want []", got)
	}
}

func TestMiddlewareStatusClasses(t *testing.T) {
	reg := metrics.NewRegistry()
	ts, client := testService(t, WithMetrics(reg))
	ctx := context.Background()

	// 2xx, 2xx, 4xx (unknown owner), 4xx (missing param) on the query route.
	if _, err := client.Query(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(ctx, "bob owner"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(ctx, "mallory"); !errors.Is(err, ErrOwnerNotFound) {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	count := func(route, class string) uint64 {
		return reg.Counter("eppi_http_requests_total", "",
			metrics.L("route", route), metrics.L("class", class)).Value()
	}
	if got := count("query", "2xx"); got != 2 {
		t.Errorf("query 2xx = %d, want 2", got)
	}
	if got := count("query", "4xx"); got != 2 {
		t.Errorf("query 4xx = %d, want 2", got)
	}
	if got := count("query", "5xx"); got != 0 {
		t.Errorf("query 5xx = %d, want 0", got)
	}

	// Latency histogram populated for the route, all samples bucketed.
	h := reg.Histogram("eppi_http_request_seconds", "", nil, metrics.L("route", "query"))
	if h.Count() != 4 {
		t.Errorf("latency observations = %d, want 4", h.Count())
	}
	if h.Sum() <= 0 {
		t.Errorf("latency sum = %v, want > 0", h.Sum())
	}
}

func TestMiddleware5xx(t *testing.T) {
	// Drive the middleware directly with a handler that fails.
	reg := metrics.NewRegistry()
	m := bitmat.MustNew(1, 1)
	srv, err := index.NewServer(m, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(srv, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	fail := h.instrument("boom", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	rec := httptest.NewRecorder()
	fail(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	got := reg.Counter("eppi_http_requests_total", "",
		metrics.L("route", "boom"), metrics.L("class", "5xx")).Value()
	if got != 1 {
		t.Fatalf("boom 5xx = %d, want 1", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	ts, client := testService(t, WithMetrics(reg))
	if _, err := client.Query(context.Background(), "alice"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE eppi_index_queries_total counter",
		"eppi_index_queries_total 1",
		"# TYPE eppi_index_query_fanout histogram",
		`eppi_index_query_fanout_bucket{le="2"} 1`,
		"# TYPE eppi_http_requests_total counter",
		"# TYPE eppi_http_request_seconds histogram",
		`eppi_http_request_seconds_count{route="query"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsEndpointFullStack shares one registry across every serving
// layer — HTTP middleware, index, and a two-phase searcher — and checks the
// exposition carries at least one counter and one histogram from each.
func TestMetricsEndpointFullStack(t *testing.T) {
	providers := make([]*provider.Provider, 4)
	for i := range providers {
		providers[i] = provider.New(i, "p")
		providers[i].Grant("dr")
	}
	for _, i := range []int{0, 2} {
		if err := providers[i].Delegate(provider.Record{Owner: "alice", Body: "rec"}, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	pub := bitmat.MustNew(4, 1)
	pub.Set(0, 0, true)
	pub.Set(2, 0, true)
	pub.Set(3, 0, true) // noise bit: one false positive
	srv, err := index.NewServer(pub, []string{"alice"})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	h, err := NewHandler(srv, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	s, err := searcher.New("dr", srv, providers)
	if err != nil {
		t.Fatal(err)
	}
	s.Instrument(reg)
	if _, err := s.Search("alice"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	if _, err := client.Query(context.Background(), "alice"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		// httpapi
		"# TYPE eppi_http_requests_total counter",
		"# TYPE eppi_http_request_seconds histogram",
		// index (1 search + 1 HTTP query = 2 QueryPPIs)
		"# TYPE eppi_index_queries_total counter",
		"eppi_index_queries_total 2",
		"# TYPE eppi_index_query_fanout histogram",
		// searcher
		"# TYPE eppi_searcher_true_positive_total counter",
		"eppi_searcher_true_positive_total 2",
		"eppi_searcher_false_positive_total 1",
		"# TYPE eppi_searcher_probe_seconds histogram",
		"eppi_searcher_probe_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsExpositionLints runs the format linter over a live
// /v1/metrics scrape with every new telemetry family registered —
// privacy report gauges, audit sink counters, build info — so a
// malformed series cannot ship unnoticed.
func TestMetricsExpositionLints(t *testing.T) {
	m := bitmat.MustNew(4, 2)
	m.Set(0, 0, true)
	m.Set(2, 0, true)
	m.Set(1, 1, true)
	srv, err := index.NewServer(m, []string{"alice", "bob owner"})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	metrics.RegisterBuildInfo(reg)
	sink, err := audit.Open(t.TempDir(), audit.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	h, err := NewHandler(srv, WithMetrics(reg), WithAudit(sink))
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := privacy.Compute(privacy.Input{
		Truth: m, Published: m,
		Names:      []string{"alice", "bob owner"},
		Eps:        []float64{0.4, 0.8},
		Thresholds: []uint64{5, 5},
		Hidden:     []bool{false, false},
		Policy:     "chernoff", Gamma: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := privacy.Sealed(rep, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.SetReport(sealed)

	ts := httptest.NewServer(h)
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	if _, err := client.Query(context.Background(), "alice"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"eppi_build_info{", "eppi_privacy_fp_rate{", "eppi_audit_dropped_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := metrics.LintExposition(strings.NewReader(out)); len(errs) != 0 {
		t.Errorf("/v1/metrics failed lint: %v\n%s", errs, out)
	}
}

func TestMetricsEndpointAbsentWithoutRegistry(t *testing.T) {
	ts, _ := testService(t)
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("uninstrumented /v1/metrics status = %d, want 404", resp.StatusCode)
	}
}
