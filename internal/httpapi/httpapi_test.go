package httpapi

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/index"
)

func testService(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	m := bitmat.MustNew(4, 2)
	m.Set(0, 0, true)
	m.Set(2, 0, true)
	m.Set(1, 1, true)
	srv, err := index.NewServer(m, []string{"alice", "bob owner"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(srv)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL, ts.Client())
}

func TestNewHandlerNil(t *testing.T) {
	if _, err := NewHandler(nil); err == nil {
		t.Fatal("nil server accepted")
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, client := testService(t)
	got, err := client.Query("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Query = %v", got)
	}
}

func TestQueryEscaping(t *testing.T) {
	// Owner identities can contain spaces and URL-special characters.
	_, client := testService(t)
	got, err := client.Query("bob owner")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Query = %v", got)
	}
}

func TestQueryUnknownOwner(t *testing.T) {
	_, client := testService(t)
	_, err := client.Query("mallory")
	if !errors.Is(err, ErrOwnerNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestQueryMissingParam(t *testing.T) {
	ts, _ := testService(t)
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := testService(t)
	resp, err := http.Post(ts.URL+"/v1/query?owner=alice", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	_, client := testService(t)
	hz, err := client.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Providers != 4 || hz.Owners != 2 {
		t.Fatalf("healthz = %+v", hz)
	}
	if _, err := client.Query("alice"); err != nil {
		t.Fatal(err)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 1 || st.AvgFanout != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	client := NewClient("http://127.0.0.1:1", nil) // nothing listens there
	if _, err := client.Query("alice"); err == nil {
		t.Fatal("query against dead server succeeded")
	}
	if _, err := client.Stats(); err == nil {
		t.Fatal("stats against dead server succeeded")
	}
	if _, err := client.Healthz(); err == nil {
		t.Fatal("healthz against dead server succeeded")
	}
}

func TestEmptyProvidersList(t *testing.T) {
	m := bitmat.MustNew(2, 1)
	srv, err := index.NewServer(m, []string{"ghost"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(srv)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	got, err := client.Query("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got) != 0 {
		t.Fatalf("empty query = %v, want []", got)
	}
}
