// Package httpapi exposes the hosted PPI locator service over HTTP — the
// deployment form of the paper's "global PPI server in a third-party
// domain". The API surface is deliberately minimal and leaks nothing
// beyond the published index:
//
//	GET /v1/query?owner=<identity>   → {"owner": ..., "providers": [ids]}
//	POST /v1/query/batch             → {"results": [{"owner": ..., "found": ..., "providers": [ids]}]}
//	GET /v1/search?q=<substr>        → {"results": [{"owner": ..., "providers": [ids]}]}
//	GET /v1/stats                    → {"queries": n, "avgFanout": f}
//	GET /v1/healthz                  → {"status": "ok", "providers": m, "owners": n}
//	GET /v1/metrics                  → Prometheus text exposition (when enabled)
//	GET /v1/privacy                  → the served epoch's ε-audit report (privacy.json)
//
// A server holding one column shard of a larger index (internal/shard)
// additionally reports its shard identity in /v1/healthz and annotates
// every root span with shard/shards attributes, so a gateway (or a
// human) can always tell which slice of the index answered.
//
// AuthSearch is intentionally absent: the second search phase happens at
// the providers, never at the untrusted host.
//
// With WithMetrics, every route is wrapped in middleware that records
// per-route latency histograms and status-class counters, and the wrapped
// index server reports query counters and the fan-out histogram into the
// same registry.
package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/trace"
)

// Trace-propagation headers: a client carrying an active span stamps both
// on every request, and a traced server joins that trace instead of
// opening a fresh one — the distributed span tree shares one trace id.
const (
	// TraceIDHeader carries the 16-hex-digit trace id.
	TraceIDHeader = "X-Eppi-Trace-Id"
	// ParentSpanHeader carries the caller's span id, adopted as the
	// parent of the server's root span.
	ParentSpanHeader = "X-Eppi-Parent-Span"
	// EpochHeader carries the publication epoch of the index that
	// answered, stamped on every response. The gateway keys its response
	// cache by it (so a re-publication invalidates stale entries) and
	// uses it to detect mixed-epoch fleets mid-swap.
	EpochHeader = "X-Eppi-Epoch"
)

// Handler serves the locator API over an index server. The server is held
// behind an atomic pointer so a re-published index can be hot-swapped in
// (Swap) RCU-style: each request loads the pointer once and runs entirely
// against that snapshot, so in-flight queries finish on the old epoch
// while new requests see the new one — no restart, no lock on the query
// path.
type Handler struct {
	server atomic.Pointer[index.Server]
	mux    *http.ServeMux
	reg    *metrics.Registry
	tracer *trace.Tracer
	sink   *audit.Sink

	// batchSize is the eppi_batch_size histogram (nil without metrics):
	// owners per POST /v1/query/batch request.
	batchSize *metrics.Histogram

	// report is the privacy audit of the epoch being served, installed
	// alongside the index snapshot (SetReport). It is advisory: a node
	// missing its report still serves queries — observability must not
	// take down serving.
	report atomic.Pointer[privacy.Report]

	// swapMu serializes Swap against itself; the query path never takes it.
	swapMu sync.Mutex
	epochG *metrics.Gauge   // eppi_epoch (nil without metrics)
	swaps  *metrics.Counter // eppi_epoch_swaps_total (nil without metrics)
}

var _ http.Handler = (*Handler)(nil)

// Option configures a Handler.
type Option func(*Handler)

// WithMetrics instruments the handler (per-route latency and status-class
// counters), exposes GET /v1/metrics, and wires the index server's query
// counters into the same registry. A nil registry disables all of it.
func WithMetrics(reg *metrics.Registry) Option {
	return func(h *Handler) { h.reg = reg }
}

// WithTracer records one span tree per request into tr (root span per
// route, child spans down through the index lookup) and exposes
// GET /v1/traces serving the recent-trace ring as Chrome trace-event JSON
// (or an indented text tree with ?format=text). Requests carrying
// TraceIDHeader join the caller's trace instead of opening a new one.
// A nil tracer disables all of it.
func WithTracer(tr *trace.Tracer) Option {
	return func(h *Handler) { h.tracer = tr }
}

// WithAudit records every query and search into sink — who asked about
// whom, against which shard and epoch — via the async audit log
// (internal/audit). A nil sink disables auditing; the query path then
// pays a single nil check and allocates nothing extra.
func WithAudit(sink *audit.Sink) Option {
	return func(h *Handler) { h.sink = sink }
}

// NewHandler wraps srv.
func NewHandler(srv *index.Server, opts ...Option) (*Handler, error) {
	if srv == nil {
		return nil, errors.New("httpapi: nil index server")
	}
	h := &Handler{mux: http.NewServeMux()}
	h.server.Store(srv)
	for _, opt := range opts {
		opt(h)
	}
	if h.reg != nil {
		srv.Instrument(h.reg)
		h.mux.HandleFunc("GET /v1/metrics", h.instrument("metrics", h.handleMetrics))
		if id, of, sharded := srv.ShardInfo(); sharded {
			h.reg.Gauge("eppi_shard_id", "Column shard id this node serves.").Set(float64(id))
			h.reg.Gauge("eppi_shard_count", "Total shards in the index partition.").Set(float64(of))
		}
		h.epochG = h.reg.Gauge("eppi_epoch", "Publication epoch of the index being served.")
		h.epochG.Set(float64(srv.Epoch()))
		h.swaps = h.reg.Counter("eppi_epoch_swaps_total", "Hot snapshot swaps to a newly published epoch.")
		h.batchSize = h.reg.Histogram("eppi_batch_size",
			"Owners per batched lookup request.", BatchSizeBuckets)
	}
	if h.tracer != nil {
		// /v1/traces itself is excluded from tracing so reading the ring
		// does not pollute it.
		h.mux.HandleFunc("GET /v1/traces", h.instrument("traces", h.handleTraces))
	}
	h.mux.HandleFunc("GET /v1/query", h.wrap("query", h.handleQuery))
	h.mux.HandleFunc("POST /v1/query/batch", h.wrap("batch", h.handleQueryBatch))
	h.mux.HandleFunc("GET /v1/search", h.wrap("search", h.handleSearch))
	h.mux.HandleFunc("GET /v1/stats", h.wrap("stats", h.handleStats))
	h.mux.HandleFunc("GET /v1/healthz", h.wrap("healthz", h.handleHealthz))
	h.mux.HandleFunc("GET /v1/privacy", h.wrap("privacy", h.handlePrivacy))
	return h, nil
}

// SetReport installs the privacy report of the epoch being served and
// exports its headline numbers to the metrics registry. Callers pair it
// with Swap on every epoch change; a nil report clears the endpoint
// (the node serves 404 until the next epoch brings one).
func (h *Handler) SetReport(rep *privacy.Report) {
	h.report.Store(rep)
	if rep != nil {
		privacy.Export(h.reg, rep)
	}
}

// Report returns the installed privacy report, or nil.
func (h *Handler) Report() *privacy.Report {
	return h.report.Load()
}

// srv returns the currently served index snapshot. Handlers load it once
// per request and use that snapshot throughout, so a concurrent Swap
// never mixes two epochs inside one response.
func (h *Handler) srv() *index.Server {
	return h.server.Load()
}

// Swap atomically replaces the served index with a newly published epoch.
// In-flight requests finish against the snapshot they already loaded; new
// requests see next. The swap refuses a snapshot whose shard identity
// differs from the current one — a re-publication changes the epoch, not
// which slice of the index this node serves.
func (h *Handler) Swap(next *index.Server) error {
	if next == nil {
		return errors.New("httpapi: swap to nil index server")
	}
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	cur := h.server.Load()
	curID, curOf, curSharded := cur.ShardInfo()
	nextID, nextOf, nextSharded := next.ShardInfo()
	if curSharded != nextSharded || curID != nextID || curOf != nextOf {
		return fmt.Errorf("httpapi: swap changes shard identity %d/%d → %d/%d", curID, curOf, nextID, nextOf)
	}
	if h.reg != nil {
		// Idempotent: the registry hands back the same series, so query
		// counters continue across epochs instead of resetting.
		next.Instrument(h.reg)
	}
	h.server.Store(next)
	if h.epochG != nil {
		h.epochG.Set(float64(next.Epoch()))
	}
	if h.swaps != nil {
		h.swaps.Inc()
	}
	return nil
}

// wrap layers the tracing and metrics middleware (both conditional on
// their options) around a route handler.
func (h *Handler) wrap(route string, fn http.HandlerFunc) http.HandlerFunc {
	return h.instrument(route, h.traced(route, fn))
}

// traced opens one span per request — a root span, or a child of a remote
// caller's span when the propagation headers are present — and threads it
// through the request context so downstream layers (index, searcher) hang
// their spans underneath. Without a tracer the handler is returned
// untouched.
func (h *Handler) traced(route string, fn http.HandlerFunc) http.HandlerFunc {
	if h.tracer == nil {
		return fn
	}
	name := "http." + route
	return func(w http.ResponseWriter, r *http.Request) {
		var ctx context.Context
		var sp *trace.Span
		if tid, ok := trace.ParseID(r.Header.Get(TraceIDHeader)); ok && tid != 0 {
			parent, _ := trace.ParseID(r.Header.Get(ParentSpanHeader))
			ctx, sp = h.tracer.StartRemote(r.Context(), name,
				trace.TraceID(tid), trace.SpanID(parent))
		} else {
			ctx, sp = h.tracer.StartRoot(r.Context(), name)
		}
		sp.Set("method", r.Method)
		sp.Set("route", route)
		srv := h.srv()
		if id, of, sharded := srv.ShardInfo(); sharded {
			sp.SetInt("shard", id)
			sp.SetInt("shards", of)
		}
		sp.SetUint("epoch", srv.Epoch())
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r.WithContext(ctx))
		sp.SetInt("status", sw.code)
		sp.End()
	}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// statusClasses are the exposition label values for response codes.
var statusClasses = [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}

// instrument wraps a route handler with latency and status-class
// accounting. Without a registry the handler is returned untouched — the
// uninstrumented hot path pays nothing.
func (h *Handler) instrument(route string, fn http.HandlerFunc) http.HandlerFunc {
	if h.reg == nil {
		return fn
	}
	routeLabel := metrics.L("route", route)
	latency := h.reg.Histogram("eppi_http_request_seconds",
		"HTTP request latency by route.", metrics.DefDurationBuckets, routeLabel)
	classes := make(map[string]*metrics.Counter, 4)
	for _, class := range statusClasses[1:] {
		classes[class] = h.reg.Counter("eppi_http_requests_total",
			"HTTP requests by route and status class.", routeLabel, metrics.L("class", class))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		fn(sw, r)
		latency.ObserveSince(start)
		if cls := sw.code / 100; cls >= 1 && cls <= 5 {
			classes[statusClasses[cls]].Inc()
		}
	}
}

// statusWriter captures the response code for the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// QueryResponse is the /v1/query payload.
type QueryResponse struct {
	Owner     string `json:"owner"`
	Providers []int  `json:"providers"`
}

// Batch limits. A batched lookup amortizes round-trips, it is not a bulk
// export channel: the owner-count cap bounds index work per request and
// the body cap bounds what a request can make the server buffer. Both
// violations answer 413.
const (
	// MaxBatchOwners caps owners per POST /v1/query/batch request.
	MaxBatchOwners = 1024
	// MaxBatchBody caps the request body in bytes.
	MaxBatchBody = 1 << 20
)

// BatchSizeBuckets are the eppi_batch_size histogram bounds: powers of
// two up to MaxBatchOwners.
var BatchSizeBuckets = metrics.ExponentialBuckets(1, 2, 11)

// BatchQueryRequest is the POST /v1/query/batch request body.
type BatchQueryRequest struct {
	Owners []string `json:"owners"`
}

// BatchRow is one per-owner result of a batched lookup. Misses travel
// in-band (Found false) so one unknown owner never fails the batch.
type BatchRow struct {
	Owner     string `json:"owner"`
	Found     bool   `json:"found"`
	Providers []int  `json:"providers"`
	// Error is set by the gateway when the shard owning this identity
	// could not be reached; a shard node always leaves it empty (its rows
	// all come from the one snapshot that answered).
	Error string `json:"error,omitempty"`
}

// BatchQueryResponse is the POST /v1/query/batch payload. Results are
// position-matched to the request's owners.
type BatchQueryResponse struct {
	Results []BatchRow `json:"results"`
}

// SearchResponse is the /v1/search payload.
type SearchResponse struct {
	Results []index.Match `json:"results"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	Queries   uint64  `json:"queries"`
	AvgFanout float64 `json:"avgFanout"`
}

// ShardRef identifies which column shard of a partitioned index a node
// serves.
type ShardRef struct {
	ID int `json:"id"`
	Of int `json:"of"`
}

// HealthzResponse is the /v1/healthz payload. Shard is nil for a node
// serving a full, unsharded index; Epoch is 0 for an index that was never
// re-published.
type HealthzResponse struct {
	Status    string    `json:"status"`
	Providers int       `json:"providers"`
	Owners    int       `json:"owners"`
	Epoch     uint64    `json:"epoch"`
	Shard     *ShardRef `json:"shard,omitempty"`
}

// errorResponse is the uniform error payload.
type errorResponse struct {
	Error string `json:"error"`
}

// setEpochHeader stamps the answering snapshot's epoch on the response.
// Handlers call it with the same snapshot they answer from, so header and
// body can never straddle a concurrent swap.
func setEpochHeader(w http.ResponseWriter, srv *index.Server) {
	w.Header().Set(EpochHeader, strconv.FormatUint(srv.Epoch(), 10))
}

// auditRecord logs one query/search outcome to the audit sink. The
// h.sink == nil check at every call site keeps the disabled path free
// of even the Entry construction.
func (h *Handler) auditRecord(r *http.Request, srv *index.Server, route, owner string, results, status int) {
	shardID := -1
	if id, _, sharded := srv.ShardInfo(); sharded {
		shardID = id
	}
	traceID := ""
	if sp := trace.FromContext(r.Context()); sp != nil {
		traceID = sp.TraceID().String()
	}
	h.sink.Record(audit.Entry{
		Route:   route,
		Owner:   owner,
		Shard:   shardID,
		Epoch:   srv.Epoch(),
		Trace:   traceID,
		Results: results,
		Status:  status,
	})
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	srv := h.srv()
	setEpochHeader(w, srv)
	owner := r.URL.Query().Get("owner")
	if owner == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing owner parameter"})
		return
	}
	providers, err := srv.QueryCtx(r.Context(), owner)
	if err != nil {
		if errors.Is(err, index.ErrUnknownOwner) {
			if h.sink != nil {
				h.auditRecord(r, srv, "query", owner, -1, http.StatusNotFound)
			}
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		// Errors are exposure too: a scanner probing with requests that
		// blow up server-side must leave the same trail as one whose
		// probes succeed.
		if h.sink != nil {
			h.auditRecord(r, srv, "query", owner, -1, http.StatusInternalServerError)
		}
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if h.sink != nil {
		h.auditRecord(r, srv, "query", owner, len(providers), http.StatusOK)
	}
	if providers == nil {
		providers = []int{}
	}
	writeJSON(w, http.StatusOK, QueryResponse{Owner: owner, Providers: providers})
}

// handleQueryBatch resolves a whole owner list against one snapshot.
// The snapshot is loaded once and answers every row, so the X-Eppi-Epoch
// header is the epoch of each and every result — a batch can never mix
// two index versions even when a hot swap lands mid-request. The POST
// verb only carries the owner list (too long for a query string); the
// route reads published state exactly like GET /v1/query.
func (h *Handler) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	srv := h.srv()
	setEpochHeader(w, srv)
	r.Body = http.MaxBytesReader(w, r.Body, MaxBatchBody)
	var req BatchQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("batch body exceeds %d bytes", MaxBatchBody)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad batch request body: " + err.Error()})
		return
	}
	if len(req.Owners) > MaxBatchOwners {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("batch of %d owners exceeds the %d cap", len(req.Owners), MaxBatchOwners)})
		return
	}
	if h.batchSize != nil {
		h.batchSize.Observe(float64(len(req.Owners)))
	}
	items := srv.QueryBatch(r.Context(), req.Owners)
	rows := make([]BatchRow, len(items))
	for i, it := range items {
		providers := it.Providers
		if providers == nil {
			providers = []int{}
		}
		rows[i] = BatchRow{Owner: it.Owner, Found: it.Found, Providers: providers}
	}
	if h.sink != nil {
		// One audit entry per owner, exactly like k single queries would
		// leave: a scanner must not shrink its trail by batching probes.
		for _, it := range items {
			n := -1
			if it.Found {
				n = len(it.Providers)
			}
			h.auditRecord(r, srv, "batch", it.Owner, n, http.StatusOK)
		}
	}
	writeJSON(w, http.StatusOK, BatchQueryResponse{Results: rows})
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	srv := h.srv()
	setEpochHeader(w, srv)
	st := srv.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{Queries: st.Queries, AvgFanout: st.AvgFanout})
}

// maxSearchResults caps one /v1/search response: the endpoint exists for
// gateway fan-out and exploration, not bulk export.
const maxSearchResults = 1000

func (h *Handler) handleSearch(w http.ResponseWriter, r *http.Request) {
	srv := h.srv()
	setEpochHeader(w, srv)
	q := r.URL.Query().Get("q")
	limit := maxSearchResults
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad limit parameter"})
			return
		}
		if n < limit {
			limit = n
		}
	}
	results := srv.Search(r.Context(), q, limit)
	if h.sink != nil {
		// Searches audit the query string in the owner field: a scan
		// via substring probing is the same exposure pattern.
		h.auditRecord(r, srv, "search", q, len(results), http.StatusOK)
	}
	if results == nil {
		results = []index.Match{}
	}
	writeJSON(w, http.StatusOK, SearchResponse{Results: results})
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	srv := h.srv()
	setEpochHeader(w, srv)
	resp := HealthzResponse{
		Status:    "ok",
		Providers: srv.Providers(),
		Owners:    srv.Owners(),
		Epoch:     srv.Epoch(),
	}
	if id, of, sharded := srv.ShardInfo(); sharded {
		resp.Shard = &ShardRef{ID: id, Of: of}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) handlePrivacy(w http.ResponseWriter, r *http.Request) {
	srv := h.srv()
	setEpochHeader(w, srv)
	rep := h.report.Load()
	if rep == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no privacy report for the served epoch"})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (h *Handler) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = h.tracer.WriteTrees(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	// Write errors mean the client went away mid-download; nothing to do.
	_ = trace.WriteChrome(w, h.tracer.Recent())
}

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	// Write errors mean the client went away mid-scrape; nothing to do.
	_, _ = h.reg.WriteTo(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is written can only be logged by
	// the caller's middleware; the payloads here are in-memory structs.
	_ = json.NewEncoder(w).Encode(v)
}

// DefaultTimeout bounds client calls when the caller supplies no
// *http.Client: a hung locator must not hang every searcher.
const DefaultTimeout = 10 * time.Second

// Default retry policy: every API call is read-only — idempotent GETs
// plus the batch POST, whose body merely carries an owner list — so the
// client retries transient failures (connection errors, 5xx, 429) a few
// times with capped, jittered exponential backoff before giving up.
// The retry gate is explicit per call site (do's idempotent flag): a
// future mutating route must opt out, not rely on its verb.
// A Retry-After header on the failure (the gateway's load shedder sends
// one with its 503s) overrides the client's own backoff: the server
// knows its load better than the client's doubling schedule does.
const (
	// DefaultRetries is the number of re-attempts after the first try.
	DefaultRetries = 2
	// DefaultBackoff is the first backoff interval; each retry doubles it.
	DefaultBackoff = 25 * time.Millisecond
	// DefaultBackoffCap bounds the grown backoff interval.
	DefaultBackoffCap = 250 * time.Millisecond
	// RetryAfterCap bounds how long a server-sent Retry-After may hold the
	// client — a confused (or hostile) server must not park it for hours.
	RetryAfterCap = 5 * time.Second
)

// Client is a typed client for the locator API, used by remote searchers
// for the first phase of the two-phase search and by the gateway to reach
// shard nodes.
type Client struct {
	base string
	http *http.Client

	retries    int
	backoff    time.Duration
	backoffCap time.Duration
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetries sets the number of retry attempts after a transient
// failure (0 disables retrying).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the initial and maximum backoff between retries.
func WithBackoff(initial, cap time.Duration) ClientOption {
	return func(c *Client) { c.backoff, c.backoffCap = initial, cap }
}

// NewClient returns a client for the service at base URL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for a default client
// with DefaultTimeout; per-call deadlines tighter than that come from the
// caller's context.
func NewClient(base string, httpClient *http.Client, opts ...ClientOption) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: DefaultTimeout}
	}
	c := &Client{
		base:       base,
		http:       httpClient,
		retries:    DefaultRetries,
		backoff:    DefaultBackoff,
		backoffCap: DefaultBackoffCap,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// ErrOwnerNotFound reports a 404 from /v1/query.
var ErrOwnerNotFound = errors.New("httpapi: owner not found")

// retryableStatus reports whether a response code marks a transient
// server-side condition worth retrying on an idempotent GET.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// get issues a context-bound GET through the retrying do path; every GET
// in this API is idempotent.
func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	return c.do(ctx, http.MethodGet, path, nil, true)
}

// do issues a context-bound request and returns the response. When ctx
// carries an active trace span, the request is stamped with the
// propagation headers so a traced server joins the caller's trace. A
// non-nil body is sent as JSON and rebuilt for every attempt.
//
// For idempotent calls, transient failures — connection errors, 5xx,
// 429 — are retried up to the configured count with capped exponential
// backoff and full jitter; idempotent is the explicit retry gate, and a
// call site may only open it for a request that is safe to repeat
// (every GET, and the read-only batch POST). Context cancellation is
// honored everywhere: it aborts the in-flight request, is never itself
// retried, and cuts backoff sleeps short.
func (c *Client) do(ctx context.Context, method, path string, body []byte, idempotent bool) (*http.Response, error) {
	retries := c.retries
	if !idempotent {
		retries = 0
	}
	newReq := func() (*http.Request, error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if sp := trace.FromContext(ctx); sp != nil {
			req.Header.Set(TraceIDHeader, sp.TraceID().String())
			req.Header.Set(ParentSpanHeader, sp.ID().String())
		}
		return req, nil
	}
	backoff := c.backoff
	for attempt := 0; ; attempt++ {
		req, err := newReq()
		if err != nil {
			return nil, err
		}
		resp, err := c.http.Do(req)
		switch {
		case err == nil && !retryableStatus(resp.StatusCode):
			return resp, nil
		case attempt >= retries:
			return resp, err // whatever the last attempt produced
		case err != nil && ctx.Err() != nil:
			// The caller gave up; a retry would only mask that.
			return nil, err
		}
		retryAfter := time.Duration(-1)
		if err == nil {
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			// Retrying: release the connection of the failed attempt.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		if retryAfter >= 0 {
			// The server said when to come back; honor that instead of
			// guessing, without advancing the exponential schedule.
			if err := sleepFor(ctx, retryAfter); err != nil {
				return nil, err
			}
			continue
		}
		if err := sleepJittered(ctx, backoff); err != nil {
			return nil, err
		}
		if backoff *= 2; backoff > c.backoffCap {
			backoff = c.backoffCap
		}
	}
}

// parseRetryAfter interprets a Retry-After header as delay-seconds,
// clamped to RetryAfterCap. It returns -1 for an absent or unparseable
// header (the HTTP-date form is deliberately unsupported: every sender in
// this system uses seconds). 0 is valid and means "retry immediately".
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return -1
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return -1
	}
	d := time.Duration(secs) * time.Second
	if d > RetryAfterCap {
		d = RetryAfterCap
	}
	return d
}

// sleepFor sleeps exactly d (no jitter — the server picked the number),
// returning early with the context error on cancellation.
func sleepFor(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// sleepJittered sleeps a uniformly random duration in [d/2, d), returning
// early with the context error on cancellation.
func sleepJittered(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	jittered := d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	timer := time.NewTimer(jittered)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// epochOf parses the EpochHeader a serving node stamps on every
// response; a missing or malformed header reads as epoch 0 (a pre-epoch
// node).
func epochOf(resp *http.Response) uint64 {
	n, _ := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64)
	return n
}

// Query runs QueryPPI remotely. The context bounds the round-trip
// (cancellation and deadline).
func (c *Client) Query(ctx context.Context, owner string) ([]int, error) {
	providers, _, err := c.QueryEpoch(ctx, owner)
	return providers, err
}

// QueryEpoch is Query plus the publication epoch of the index that
// answered (from the EpochHeader the node stamps on every response —
// including 404s, so negative answers are epoch-attributed too). The
// gateway uses the epoch to key its response cache and to spot
// mixed-epoch fleets.
func (c *Client) QueryEpoch(ctx context.Context, owner string) ([]int, uint64, error) {
	resp, err := c.get(ctx, "/v1/query?owner="+url.QueryEscape(owner))
	if err != nil {
		return nil, 0, fmt.Errorf("httpapi: query: %w", err)
	}
	defer resp.Body.Close()
	epoch := epochOf(resp)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, epoch, fmt.Errorf("%w: %q", ErrOwnerNotFound, owner)
	default:
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, epoch, fmt.Errorf("httpapi: query status %d: %s", resp.StatusCode, e.Error)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, epoch, fmt.Errorf("httpapi: decode query response: %w", err)
	}
	return qr.Providers, epoch, nil
}

// Base returns the base URL the client targets.
func (c *Client) Base() string { return c.base }

// QueryBatch resolves many owners in one round-trip. Rows come back
// position-matched to owners, misses in-band (Found false) — one unknown
// owner never fails the batch.
func (c *Client) QueryBatch(ctx context.Context, owners []string) ([]BatchRow, error) {
	rows, _, err := c.QueryBatchEpoch(ctx, owners)
	return rows, err
}

// QueryBatchEpoch is QueryBatch plus the publication epoch of the
// snapshot that answered. The server resolves the whole batch against one
// snapshot, so the epoch applies to every row.
func (c *Client) QueryBatchEpoch(ctx context.Context, owners []string) ([]BatchRow, uint64, error) {
	body, err := json.Marshal(BatchQueryRequest{Owners: owners})
	if err != nil {
		return nil, 0, fmt.Errorf("httpapi: encode batch request: %w", err)
	}
	// The POST carries an owner list too long for a query string but
	// reads published state exactly like GET /v1/query — it is safe to
	// repeat, so the GET-only retry gate is explicitly opened for it.
	resp, err := c.do(ctx, http.MethodPost, "/v1/query/batch", body, true)
	if err != nil {
		return nil, 0, fmt.Errorf("httpapi: query batch: %w", err)
	}
	defer resp.Body.Close()
	epoch := epochOf(resp)
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, epoch, fmt.Errorf("httpapi: query batch status %d: %s", resp.StatusCode, e.Error)
	}
	var br BatchQueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, epoch, fmt.Errorf("httpapi: decode batch response: %w", err)
	}
	return br.Results, epoch, nil
}

// Search runs a remote substring search over the owner labels. limit <= 0
// leaves the cap to the server.
func (c *Client) Search(ctx context.Context, q string, limit int) ([]index.Match, error) {
	results, _, err := c.SearchEpoch(ctx, q, limit)
	return results, err
}

// SearchEpoch is Search plus the publication epoch of the index that
// answered, so a fan-out caller can tell when its shards disagree on the
// index version (a fleet mid-swap).
func (c *Client) SearchEpoch(ctx context.Context, q string, limit int) ([]index.Match, uint64, error) {
	path := "/v1/search?q=" + url.QueryEscape(q)
	if limit > 0 {
		path += "&limit=" + strconv.Itoa(limit)
	}
	resp, err := c.get(ctx, path)
	if err != nil {
		return nil, 0, fmt.Errorf("httpapi: search: %w", err)
	}
	defer resp.Body.Close()
	epoch := epochOf(resp)
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, epoch, fmt.Errorf("httpapi: search status %d: %s", resp.StatusCode, e.Error)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, epoch, fmt.Errorf("httpapi: decode search response: %w", err)
	}
	return sr.Results, epoch, nil
}

// ErrNoPrivacyReport reports a node serving an epoch that carries no
// privacy report (404 from /v1/privacy).
var ErrNoPrivacyReport = errors.New("httpapi: no privacy report")

// Privacy fetches the privacy report of the epoch the node serves and
// re-verifies its self-checksum — the wire formatting may differ from
// privacy.json on disk, but the canonical re-encoding the seal covers
// survives the JSON round trip, so tampering anywhere between publish
// and this client still fails the CRC.
func (c *Client) Privacy(ctx context.Context) (*privacy.Report, error) {
	resp, err := c.get(ctx, "/v1/privacy")
	if err != nil {
		return nil, fmt.Errorf("httpapi: privacy: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNoPrivacyReport
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("httpapi: privacy status %d: %s", resp.StatusCode, e.Error)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("httpapi: privacy: %w", err)
	}
	rep, err := privacy.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("httpapi: privacy: %w", err)
	}
	return rep, nil
}

// Stats fetches the service's load counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	resp, err := c.get(ctx, "/v1/stats")
	if err != nil {
		return StatsResponse{}, fmt.Errorf("httpapi: stats: %w", err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return StatsResponse{}, fmt.Errorf("httpapi: decode stats: %w", err)
	}
	return sr, nil
}

// Healthz checks service liveness.
func (c *Client) Healthz(ctx context.Context) (HealthzResponse, error) {
	resp, err := c.get(ctx, "/v1/healthz")
	if err != nil {
		return HealthzResponse{}, fmt.Errorf("httpapi: healthz: %w", err)
	}
	defer resp.Body.Close()
	var hr HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return HealthzResponse{}, fmt.Errorf("httpapi: decode healthz: %w", err)
	}
	return hr, nil
}
