// Package httpapi exposes the hosted PPI locator service over HTTP — the
// deployment form of the paper's "global PPI server in a third-party
// domain". The API surface is deliberately minimal and leaks nothing
// beyond the published index:
//
//	GET /v1/query?owner=<identity>   → {"owner": ..., "providers": [ids]}
//	GET /v1/search?q=<substr>        → {"results": [{"owner": ..., "providers": [ids]}]}
//	GET /v1/stats                    → {"queries": n, "avgFanout": f}
//	GET /v1/healthz                  → {"status": "ok", "providers": m, "owners": n}
//	GET /v1/metrics                  → Prometheus text exposition (when enabled)
//
// A server holding one column shard of a larger index (internal/shard)
// additionally reports its shard identity in /v1/healthz and annotates
// every root span with shard/shards attributes, so a gateway (or a
// human) can always tell which slice of the index answered.
//
// AuthSearch is intentionally absent: the second search phase happens at
// the providers, never at the untrusted host.
//
// With WithMetrics, every route is wrapped in middleware that records
// per-route latency histograms and status-class counters, and the wrapped
// index server reports query counters and the fan-out histogram into the
// same registry.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Trace-propagation headers: a client carrying an active span stamps both
// on every request, and a traced server joins that trace instead of
// opening a fresh one — the distributed span tree shares one trace id.
const (
	// TraceIDHeader carries the 16-hex-digit trace id.
	TraceIDHeader = "X-Eppi-Trace-Id"
	// ParentSpanHeader carries the caller's span id, adopted as the
	// parent of the server's root span.
	ParentSpanHeader = "X-Eppi-Parent-Span"
)

// Handler serves the locator API over an index server.
type Handler struct {
	server *index.Server
	mux    *http.ServeMux
	reg    *metrics.Registry
	tracer *trace.Tracer
}

var _ http.Handler = (*Handler)(nil)

// Option configures a Handler.
type Option func(*Handler)

// WithMetrics instruments the handler (per-route latency and status-class
// counters), exposes GET /v1/metrics, and wires the index server's query
// counters into the same registry. A nil registry disables all of it.
func WithMetrics(reg *metrics.Registry) Option {
	return func(h *Handler) { h.reg = reg }
}

// WithTracer records one span tree per request into tr (root span per
// route, child spans down through the index lookup) and exposes
// GET /v1/traces serving the recent-trace ring as Chrome trace-event JSON
// (or an indented text tree with ?format=text). Requests carrying
// TraceIDHeader join the caller's trace instead of opening a new one.
// A nil tracer disables all of it.
func WithTracer(tr *trace.Tracer) Option {
	return func(h *Handler) { h.tracer = tr }
}

// NewHandler wraps srv.
func NewHandler(srv *index.Server, opts ...Option) (*Handler, error) {
	if srv == nil {
		return nil, errors.New("httpapi: nil index server")
	}
	h := &Handler{server: srv, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(h)
	}
	if h.reg != nil {
		srv.Instrument(h.reg)
		h.mux.HandleFunc("GET /v1/metrics", h.instrument("metrics", h.handleMetrics))
		if id, of, sharded := srv.ShardInfo(); sharded {
			h.reg.Gauge("eppi_shard_id", "Column shard id this node serves.").Set(float64(id))
			h.reg.Gauge("eppi_shard_count", "Total shards in the index partition.").Set(float64(of))
		}
	}
	if h.tracer != nil {
		// /v1/traces itself is excluded from tracing so reading the ring
		// does not pollute it.
		h.mux.HandleFunc("GET /v1/traces", h.instrument("traces", h.handleTraces))
	}
	h.mux.HandleFunc("GET /v1/query", h.wrap("query", h.handleQuery))
	h.mux.HandleFunc("GET /v1/search", h.wrap("search", h.handleSearch))
	h.mux.HandleFunc("GET /v1/stats", h.wrap("stats", h.handleStats))
	h.mux.HandleFunc("GET /v1/healthz", h.wrap("healthz", h.handleHealthz))
	return h, nil
}

// wrap layers the tracing and metrics middleware (both conditional on
// their options) around a route handler.
func (h *Handler) wrap(route string, fn http.HandlerFunc) http.HandlerFunc {
	return h.instrument(route, h.traced(route, fn))
}

// traced opens one span per request — a root span, or a child of a remote
// caller's span when the propagation headers are present — and threads it
// through the request context so downstream layers (index, searcher) hang
// their spans underneath. Without a tracer the handler is returned
// untouched.
func (h *Handler) traced(route string, fn http.HandlerFunc) http.HandlerFunc {
	if h.tracer == nil {
		return fn
	}
	name := "http." + route
	return func(w http.ResponseWriter, r *http.Request) {
		var ctx context.Context
		var sp *trace.Span
		if tid, ok := trace.ParseID(r.Header.Get(TraceIDHeader)); ok && tid != 0 {
			parent, _ := trace.ParseID(r.Header.Get(ParentSpanHeader))
			ctx, sp = h.tracer.StartRemote(r.Context(), name,
				trace.TraceID(tid), trace.SpanID(parent))
		} else {
			ctx, sp = h.tracer.StartRoot(r.Context(), name)
		}
		sp.Set("method", r.Method)
		sp.Set("route", route)
		if id, of, sharded := h.server.ShardInfo(); sharded {
			sp.SetInt("shard", id)
			sp.SetInt("shards", of)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r.WithContext(ctx))
		sp.SetInt("status", sw.code)
		sp.End()
	}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// statusClasses are the exposition label values for response codes.
var statusClasses = [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}

// instrument wraps a route handler with latency and status-class
// accounting. Without a registry the handler is returned untouched — the
// uninstrumented hot path pays nothing.
func (h *Handler) instrument(route string, fn http.HandlerFunc) http.HandlerFunc {
	if h.reg == nil {
		return fn
	}
	routeLabel := metrics.L("route", route)
	latency := h.reg.Histogram("eppi_http_request_seconds",
		"HTTP request latency by route.", metrics.DefDurationBuckets, routeLabel)
	classes := make(map[string]*metrics.Counter, 4)
	for _, class := range statusClasses[1:] {
		classes[class] = h.reg.Counter("eppi_http_requests_total",
			"HTTP requests by route and status class.", routeLabel, metrics.L("class", class))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		fn(sw, r)
		latency.ObserveSince(start)
		if cls := sw.code / 100; cls >= 1 && cls <= 5 {
			classes[statusClasses[cls]].Inc()
		}
	}
}

// statusWriter captures the response code for the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// QueryResponse is the /v1/query payload.
type QueryResponse struct {
	Owner     string `json:"owner"`
	Providers []int  `json:"providers"`
}

// SearchResponse is the /v1/search payload.
type SearchResponse struct {
	Results []index.Match `json:"results"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	Queries   uint64  `json:"queries"`
	AvgFanout float64 `json:"avgFanout"`
}

// ShardRef identifies which column shard of a partitioned index a node
// serves.
type ShardRef struct {
	ID int `json:"id"`
	Of int `json:"of"`
}

// HealthzResponse is the /v1/healthz payload. Shard is nil for a node
// serving a full, unsharded index.
type HealthzResponse struct {
	Status    string    `json:"status"`
	Providers int       `json:"providers"`
	Owners    int       `json:"owners"`
	Shard     *ShardRef `json:"shard,omitempty"`
}

// errorResponse is the uniform error payload.
type errorResponse struct {
	Error string `json:"error"`
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	owner := r.URL.Query().Get("owner")
	if owner == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing owner parameter"})
		return
	}
	providers, err := h.server.QueryCtx(r.Context(), owner)
	if err != nil {
		if errors.Is(err, index.ErrUnknownOwner) {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if providers == nil {
		providers = []int{}
	}
	writeJSON(w, http.StatusOK, QueryResponse{Owner: owner, Providers: providers})
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	st := h.server.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{Queries: st.Queries, AvgFanout: st.AvgFanout})
}

// maxSearchResults caps one /v1/search response: the endpoint exists for
// gateway fan-out and exploration, not bulk export.
const maxSearchResults = 1000

func (h *Handler) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	limit := maxSearchResults
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad limit parameter"})
			return
		}
		if n < limit {
			limit = n
		}
	}
	results := h.server.Search(r.Context(), q, limit)
	if results == nil {
		results = []index.Match{}
	}
	writeJSON(w, http.StatusOK, SearchResponse{Results: results})
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthzResponse{
		Status:    "ok",
		Providers: h.server.Providers(),
		Owners:    h.server.Owners(),
	}
	if id, of, sharded := h.server.ShardInfo(); sharded {
		resp.Shard = &ShardRef{ID: id, Of: of}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = h.tracer.WriteTrees(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	// Write errors mean the client went away mid-download; nothing to do.
	_ = trace.WriteChrome(w, h.tracer.Recent())
}

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	// Write errors mean the client went away mid-scrape; nothing to do.
	_, _ = h.reg.WriteTo(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is written can only be logged by
	// the caller's middleware; the payloads here are in-memory structs.
	_ = json.NewEncoder(w).Encode(v)
}

// DefaultTimeout bounds client calls when the caller supplies no
// *http.Client: a hung locator must not hang every searcher.
const DefaultTimeout = 10 * time.Second

// Default retry policy: every API call is an idempotent GET, so the
// client retries transient failures (connection errors, 5xx, 429) a few
// times with capped, jittered exponential backoff before giving up.
const (
	// DefaultRetries is the number of re-attempts after the first try.
	DefaultRetries = 2
	// DefaultBackoff is the first backoff interval; each retry doubles it.
	DefaultBackoff = 25 * time.Millisecond
	// DefaultBackoffCap bounds the grown backoff interval.
	DefaultBackoffCap = 250 * time.Millisecond
)

// Client is a typed client for the locator API, used by remote searchers
// for the first phase of the two-phase search and by the gateway to reach
// shard nodes.
type Client struct {
	base string
	http *http.Client

	retries    int
	backoff    time.Duration
	backoffCap time.Duration
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetries sets the number of retry attempts after a transient
// failure (0 disables retrying).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the initial and maximum backoff between retries.
func WithBackoff(initial, cap time.Duration) ClientOption {
	return func(c *Client) { c.backoff, c.backoffCap = initial, cap }
}

// NewClient returns a client for the service at base URL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for a default client
// with DefaultTimeout; per-call deadlines tighter than that come from the
// caller's context.
func NewClient(base string, httpClient *http.Client, opts ...ClientOption) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: DefaultTimeout}
	}
	c := &Client{
		base:       base,
		http:       httpClient,
		retries:    DefaultRetries,
		backoff:    DefaultBackoff,
		backoffCap: DefaultBackoffCap,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// ErrOwnerNotFound reports a 404 from /v1/query.
var ErrOwnerNotFound = errors.New("httpapi: owner not found")

// retryableStatus reports whether a response code marks a transient
// server-side condition worth retrying on an idempotent GET.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// get issues a context-bound GET and returns the response. When ctx
// carries an active trace span, the request is stamped with the
// propagation headers so a traced server joins the caller's trace.
//
// Transient failures — connection errors, 5xx, 429 — are retried up to
// the configured count with capped exponential backoff and full jitter.
// Context cancellation is honored everywhere: it aborts the in-flight
// request, is never itself retried, and cuts backoff sleeps short.
func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	if sp := trace.FromContext(ctx); sp != nil {
		req.Header.Set(TraceIDHeader, sp.TraceID().String())
		req.Header.Set(ParentSpanHeader, sp.ID().String())
	}
	backoff := c.backoff
	for attempt := 0; ; attempt++ {
		resp, err := c.http.Do(req)
		switch {
		case err == nil && !retryableStatus(resp.StatusCode):
			return resp, nil
		case attempt >= c.retries:
			return resp, err // whatever the last attempt produced
		case err != nil && ctx.Err() != nil:
			// The caller gave up; a retry would only mask that.
			return nil, err
		}
		if err == nil {
			// Retrying: release the connection of the failed attempt.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		if err := sleepJittered(ctx, backoff); err != nil {
			return nil, err
		}
		if backoff *= 2; backoff > c.backoffCap {
			backoff = c.backoffCap
		}
	}
}

// sleepJittered sleeps a uniformly random duration in [d/2, d), returning
// early with the context error on cancellation.
func sleepJittered(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	jittered := d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	timer := time.NewTimer(jittered)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// Query runs QueryPPI remotely. The context bounds the round-trip
// (cancellation and deadline).
func (c *Client) Query(ctx context.Context, owner string) ([]int, error) {
	resp, err := c.get(ctx, "/v1/query?owner="+url.QueryEscape(owner))
	if err != nil {
		return nil, fmt.Errorf("httpapi: query: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %q", ErrOwnerNotFound, owner)
	default:
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("httpapi: query status %d: %s", resp.StatusCode, e.Error)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, fmt.Errorf("httpapi: decode query response: %w", err)
	}
	return qr.Providers, nil
}

// Base returns the base URL the client targets.
func (c *Client) Base() string { return c.base }

// Search runs a remote substring search over the owner labels. limit <= 0
// leaves the cap to the server.
func (c *Client) Search(ctx context.Context, q string, limit int) ([]index.Match, error) {
	path := "/v1/search?q=" + url.QueryEscape(q)
	if limit > 0 {
		path += "&limit=" + strconv.Itoa(limit)
	}
	resp, err := c.get(ctx, path)
	if err != nil {
		return nil, fmt.Errorf("httpapi: search: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("httpapi: search status %d: %s", resp.StatusCode, e.Error)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("httpapi: decode search response: %w", err)
	}
	return sr.Results, nil
}

// Stats fetches the service's load counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	resp, err := c.get(ctx, "/v1/stats")
	if err != nil {
		return StatsResponse{}, fmt.Errorf("httpapi: stats: %w", err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return StatsResponse{}, fmt.Errorf("httpapi: decode stats: %w", err)
	}
	return sr, nil
}

// Healthz checks service liveness.
func (c *Client) Healthz(ctx context.Context) (HealthzResponse, error) {
	resp, err := c.get(ctx, "/v1/healthz")
	if err != nil {
		return HealthzResponse{}, fmt.Errorf("httpapi: healthz: %w", err)
	}
	defer resp.Body.Close()
	var hr HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return HealthzResponse{}, fmt.Errorf("httpapi: decode healthz: %w", err)
	}
	return hr, nil
}
