// Package httpapi exposes the hosted PPI locator service over HTTP — the
// deployment form of the paper's "global PPI server in a third-party
// domain". The API surface is deliberately minimal and leaks nothing
// beyond the published index:
//
//	GET /v1/query?owner=<identity>   → {"owner": ..., "providers": [ids]}
//	GET /v1/stats                    → {"queries": n, "avgFanout": f}
//	GET /v1/healthz                  → {"status": "ok", "providers": m, "owners": n}
//	GET /v1/metrics                  → Prometheus text exposition (when enabled)
//
// AuthSearch is intentionally absent: the second search phase happens at
// the providers, never at the untrusted host.
//
// With WithMetrics, every route is wrapped in middleware that records
// per-route latency histograms and status-class counters, and the wrapped
// index server reports query counters and the fan-out histogram into the
// same registry.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Trace-propagation headers: a client carrying an active span stamps both
// on every request, and a traced server joins that trace instead of
// opening a fresh one — the distributed span tree shares one trace id.
const (
	// TraceIDHeader carries the 16-hex-digit trace id.
	TraceIDHeader = "X-Eppi-Trace-Id"
	// ParentSpanHeader carries the caller's span id, adopted as the
	// parent of the server's root span.
	ParentSpanHeader = "X-Eppi-Parent-Span"
)

// Handler serves the locator API over an index server.
type Handler struct {
	server *index.Server
	mux    *http.ServeMux
	reg    *metrics.Registry
	tracer *trace.Tracer
}

var _ http.Handler = (*Handler)(nil)

// Option configures a Handler.
type Option func(*Handler)

// WithMetrics instruments the handler (per-route latency and status-class
// counters), exposes GET /v1/metrics, and wires the index server's query
// counters into the same registry. A nil registry disables all of it.
func WithMetrics(reg *metrics.Registry) Option {
	return func(h *Handler) { h.reg = reg }
}

// WithTracer records one span tree per request into tr (root span per
// route, child spans down through the index lookup) and exposes
// GET /v1/traces serving the recent-trace ring as Chrome trace-event JSON
// (or an indented text tree with ?format=text). Requests carrying
// TraceIDHeader join the caller's trace instead of opening a new one.
// A nil tracer disables all of it.
func WithTracer(tr *trace.Tracer) Option {
	return func(h *Handler) { h.tracer = tr }
}

// NewHandler wraps srv.
func NewHandler(srv *index.Server, opts ...Option) (*Handler, error) {
	if srv == nil {
		return nil, errors.New("httpapi: nil index server")
	}
	h := &Handler{server: srv, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(h)
	}
	if h.reg != nil {
		srv.Instrument(h.reg)
		h.mux.HandleFunc("GET /v1/metrics", h.instrument("metrics", h.handleMetrics))
	}
	if h.tracer != nil {
		// /v1/traces itself is excluded from tracing so reading the ring
		// does not pollute it.
		h.mux.HandleFunc("GET /v1/traces", h.instrument("traces", h.handleTraces))
	}
	h.mux.HandleFunc("GET /v1/query", h.wrap("query", h.handleQuery))
	h.mux.HandleFunc("GET /v1/stats", h.wrap("stats", h.handleStats))
	h.mux.HandleFunc("GET /v1/healthz", h.wrap("healthz", h.handleHealthz))
	return h, nil
}

// wrap layers the tracing and metrics middleware (both conditional on
// their options) around a route handler.
func (h *Handler) wrap(route string, fn http.HandlerFunc) http.HandlerFunc {
	return h.instrument(route, h.traced(route, fn))
}

// traced opens one span per request — a root span, or a child of a remote
// caller's span when the propagation headers are present — and threads it
// through the request context so downstream layers (index, searcher) hang
// their spans underneath. Without a tracer the handler is returned
// untouched.
func (h *Handler) traced(route string, fn http.HandlerFunc) http.HandlerFunc {
	if h.tracer == nil {
		return fn
	}
	name := "http." + route
	return func(w http.ResponseWriter, r *http.Request) {
		var ctx context.Context
		var sp *trace.Span
		if tid, ok := trace.ParseID(r.Header.Get(TraceIDHeader)); ok && tid != 0 {
			parent, _ := trace.ParseID(r.Header.Get(ParentSpanHeader))
			ctx, sp = h.tracer.StartRemote(r.Context(), name,
				trace.TraceID(tid), trace.SpanID(parent))
		} else {
			ctx, sp = h.tracer.StartRoot(r.Context(), name)
		}
		sp.Set("method", r.Method)
		sp.Set("route", route)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r.WithContext(ctx))
		sp.SetInt("status", sw.code)
		sp.End()
	}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// statusClasses are the exposition label values for response codes.
var statusClasses = [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}

// instrument wraps a route handler with latency and status-class
// accounting. Without a registry the handler is returned untouched — the
// uninstrumented hot path pays nothing.
func (h *Handler) instrument(route string, fn http.HandlerFunc) http.HandlerFunc {
	if h.reg == nil {
		return fn
	}
	routeLabel := metrics.L("route", route)
	latency := h.reg.Histogram("eppi_http_request_seconds",
		"HTTP request latency by route.", metrics.DefDurationBuckets, routeLabel)
	classes := make(map[string]*metrics.Counter, 4)
	for _, class := range statusClasses[1:] {
		classes[class] = h.reg.Counter("eppi_http_requests_total",
			"HTTP requests by route and status class.", routeLabel, metrics.L("class", class))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		fn(sw, r)
		latency.ObserveSince(start)
		if cls := sw.code / 100; cls >= 1 && cls <= 5 {
			classes[statusClasses[cls]].Inc()
		}
	}
}

// statusWriter captures the response code for the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// QueryResponse is the /v1/query payload.
type QueryResponse struct {
	Owner     string `json:"owner"`
	Providers []int  `json:"providers"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	Queries   uint64  `json:"queries"`
	AvgFanout float64 `json:"avgFanout"`
}

// HealthzResponse is the /v1/healthz payload.
type HealthzResponse struct {
	Status    string `json:"status"`
	Providers int    `json:"providers"`
	Owners    int    `json:"owners"`
}

// errorResponse is the uniform error payload.
type errorResponse struct {
	Error string `json:"error"`
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	owner := r.URL.Query().Get("owner")
	if owner == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing owner parameter"})
		return
	}
	providers, err := h.server.QueryCtx(r.Context(), owner)
	if err != nil {
		if errors.Is(err, index.ErrUnknownOwner) {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if providers == nil {
		providers = []int{}
	}
	writeJSON(w, http.StatusOK, QueryResponse{Owner: owner, Providers: providers})
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	st := h.server.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{Queries: st.Queries, AvgFanout: st.AvgFanout})
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthzResponse{
		Status:    "ok",
		Providers: h.server.Providers(),
		Owners:    h.server.Owners(),
	})
}

func (h *Handler) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = h.tracer.WriteTrees(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	// Write errors mean the client went away mid-download; nothing to do.
	_ = trace.WriteChrome(w, h.tracer.Recent())
}

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	// Write errors mean the client went away mid-scrape; nothing to do.
	_, _ = h.reg.WriteTo(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is written can only be logged by
	// the caller's middleware; the payloads here are in-memory structs.
	_ = json.NewEncoder(w).Encode(v)
}

// DefaultTimeout bounds client calls when the caller supplies no
// *http.Client: a hung locator must not hang every searcher.
const DefaultTimeout = 10 * time.Second

// Client is a typed client for the locator API, used by remote searchers
// for the first phase of the two-phase search.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the service at base URL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for a default client
// with DefaultTimeout; per-call deadlines tighter than that come from the
// caller's context.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: DefaultTimeout}
	}
	return &Client{base: base, http: httpClient}
}

// ErrOwnerNotFound reports a 404 from /v1/query.
var ErrOwnerNotFound = errors.New("httpapi: owner not found")

// get issues a context-bound GET and returns the response. When ctx
// carries an active trace span, the request is stamped with the
// propagation headers so a traced server joins the caller's trace.
func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	if sp := trace.FromContext(ctx); sp != nil {
		req.Header.Set(TraceIDHeader, sp.TraceID().String())
		req.Header.Set(ParentSpanHeader, sp.ID().String())
	}
	return c.http.Do(req)
}

// Query runs QueryPPI remotely. The context bounds the round-trip
// (cancellation and deadline).
func (c *Client) Query(ctx context.Context, owner string) ([]int, error) {
	resp, err := c.get(ctx, "/v1/query?owner="+url.QueryEscape(owner))
	if err != nil {
		return nil, fmt.Errorf("httpapi: query: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %q", ErrOwnerNotFound, owner)
	default:
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("httpapi: query status %d: %s", resp.StatusCode, e.Error)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, fmt.Errorf("httpapi: decode query response: %w", err)
	}
	return qr.Providers, nil
}

// Stats fetches the service's load counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	resp, err := c.get(ctx, "/v1/stats")
	if err != nil {
		return StatsResponse{}, fmt.Errorf("httpapi: stats: %w", err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return StatsResponse{}, fmt.Errorf("httpapi: decode stats: %w", err)
	}
	return sr, nil
}

// Healthz checks service liveness.
func (c *Client) Healthz(ctx context.Context) (HealthzResponse, error) {
	resp, err := c.get(ctx, "/v1/healthz")
	if err != nil {
		return HealthzResponse{}, fmt.Errorf("httpapi: healthz: %w", err)
	}
	defer resp.Body.Close()
	var hr HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return HealthzResponse{}, fmt.Errorf("httpapi: decode healthz: %w", err)
	}
	return hr, nil
}
