// Package httpapi exposes the hosted PPI locator service over HTTP — the
// deployment form of the paper's "global PPI server in a third-party
// domain". The API surface is deliberately minimal and leaks nothing
// beyond the published index:
//
//	GET /v1/query?owner=<identity>   → {"owner": ..., "providers": [ids]}
//	GET /v1/stats                    → {"queries": n, "avgFanout": f}
//	GET /v1/healthz                  → {"status": "ok", "providers": m, "owners": n}
//
// AuthSearch is intentionally absent: the second search phase happens at
// the providers, never at the untrusted host.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"

	"repro/internal/index"
)

// Handler serves the locator API over an index server.
type Handler struct {
	server *index.Server
	mux    *http.ServeMux
}

var _ http.Handler = (*Handler)(nil)

// NewHandler wraps srv.
func NewHandler(srv *index.Server) (*Handler, error) {
	if srv == nil {
		return nil, errors.New("httpapi: nil index server")
	}
	h := &Handler{server: srv, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /v1/query", h.handleQuery)
	h.mux.HandleFunc("GET /v1/stats", h.handleStats)
	h.mux.HandleFunc("GET /v1/healthz", h.handleHealthz)
	return h, nil
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// QueryResponse is the /v1/query payload.
type QueryResponse struct {
	Owner     string `json:"owner"`
	Providers []int  `json:"providers"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	Queries   uint64  `json:"queries"`
	AvgFanout float64 `json:"avgFanout"`
}

// HealthzResponse is the /v1/healthz payload.
type HealthzResponse struct {
	Status    string `json:"status"`
	Providers int    `json:"providers"`
	Owners    int    `json:"owners"`
}

// errorResponse is the uniform error payload.
type errorResponse struct {
	Error string `json:"error"`
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	owner := r.URL.Query().Get("owner")
	if owner == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing owner parameter"})
		return
	}
	providers, err := h.server.Query(owner)
	if err != nil {
		if errors.Is(err, index.ErrUnknownOwner) {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if providers == nil {
		providers = []int{}
	}
	writeJSON(w, http.StatusOK, QueryResponse{Owner: owner, Providers: providers})
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	st := h.server.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{Queries: st.Queries, AvgFanout: st.AvgFanout})
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthzResponse{
		Status:    "ok",
		Providers: h.server.Providers(),
		Owners:    h.server.Owners(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is written can only be logged by
	// the caller's middleware; the payloads here are in-memory structs.
	_ = json.NewEncoder(w).Encode(v)
}

// Client is a typed client for the locator API, used by remote searchers
// for the first phase of the two-phase search.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the service at base URL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, http: httpClient}
}

// ErrOwnerNotFound reports a 404 from /v1/query.
var ErrOwnerNotFound = errors.New("httpapi: owner not found")

// Query runs QueryPPI remotely.
func (c *Client) Query(owner string) ([]int, error) {
	u := fmt.Sprintf("%s/v1/query?owner=%s", c.base, urlQueryEscape(owner))
	resp, err := c.http.Get(u)
	if err != nil {
		return nil, fmt.Errorf("httpapi: query: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %q", ErrOwnerNotFound, owner)
	default:
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("httpapi: query status %d: %s", resp.StatusCode, e.Error)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, fmt.Errorf("httpapi: decode query response: %w", err)
	}
	return qr.Providers, nil
}

// Stats fetches the service's load counters.
func (c *Client) Stats() (StatsResponse, error) {
	resp, err := c.http.Get(c.base + "/v1/stats")
	if err != nil {
		return StatsResponse{}, fmt.Errorf("httpapi: stats: %w", err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return StatsResponse{}, fmt.Errorf("httpapi: decode stats: %w", err)
	}
	return sr, nil
}

// Healthz checks service liveness.
func (c *Client) Healthz() (HealthzResponse, error) {
	resp, err := c.http.Get(c.base + "/v1/healthz")
	if err != nil {
		return HealthzResponse{}, fmt.Errorf("httpapi: healthz: %w", err)
	}
	defer resp.Body.Close()
	var hr HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return HealthzResponse{}, fmt.Errorf("httpapi: decode healthz: %w", err)
	}
	return hr, nil
}

// urlQueryEscape escapes an owner identity for a query-string value.
func urlQueryEscape(s string) string {
	return url.QueryEscape(s)
}
