// Package parallel provides the small worker-pool primitives used to shard
// ε-PPI construction work (β thresholds, column aggregation, MPC identity
// batches, randomized publication) across goroutines.
//
// The contract that keeps parallel construction deterministic lives here:
// task bodies must derive every effect — including randomness — from the
// task index alone (see mathx.DeriveSeed), never from which worker ran the
// task or in what order tasks completed. Under that contract For and
// Blocks produce byte-identical results at any worker count.
package parallel

import (
	"sync"
	"sync/atomic"
)

// For runs fn(task) for every task in [0, tasks), spread over at most
// workers goroutines. Tasks are claimed from a shared atomic counter, so
// assignment is load-balanced and intentionally unspecified.
//
// On error the pool stops claiming new tasks; tasks already running are
// allowed to finish. The returned error is the one from the
// lowest-numbered failing task, which is deterministic even when several
// tasks fail in the same run. workers <= 1 (or tasks <= 1) degrades to a
// plain sequential loop on the calling goroutine.
func For(workers, tasks int, fn func(task int) error) error {
	if tasks <= 0 {
		return nil
	}
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for t := 0; t < tasks; t++ {
			if err := fn(t); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, tasks)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= tasks || failed.Load() {
					return
				}
				if err := fn(t); err != nil {
					errs[t] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Blocks shards the half-open range [0, n) into contiguous blocks of size
// at most block and runs fn(b, lo, hi) for each, where b is the block
// index and [lo, hi) the sub-range it covers. Error semantics match For.
func Blocks(workers, n, block int, fn func(b, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if block <= 0 {
		block = 1
	}
	tasks := (n + block - 1) / block
	return For(workers, tasks, func(b int) error {
		lo := b * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		return fn(b, lo, hi)
	})
}
