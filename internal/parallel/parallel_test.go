package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		hits := make([]atomic.Int32, 100)
		if err := For(workers, len(hits), func(task int) error {
			hits[task].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEmptyAndSingle(t *testing.T) {
	if err := For(8, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatalf("tasks=0: %v", err)
	}
	ran := 0
	if err := For(8, 1, func(int) error { ran++; return nil }); err != nil || ran != 1 {
		t.Fatalf("tasks=1: ran=%d err=%v", ran, err)
	}
}

// The reported error must be the lowest-numbered failing task regardless
// of scheduling, so callers see a deterministic error across runs.
func TestForReturnsLowestFailingTask(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		err := For(8, 50, func(task int) error {
			if task >= 10 {
				return fmt.Errorf("task %d failed", task)
			}
			return nil
		})
		if err == nil || err.Error() != "task 10 failed" {
			t.Fatalf("trial %d: got %v, want task 10 failed", trial, err)
		}
	}
}

func TestForStopsClaimingAfterError(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	err := For(2, 10_000, func(task int) error {
		ran.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n > 16 {
		t.Fatalf("ran %d tasks after first error, want early stop", n)
	}
}

func TestBlocksPartitionExactly(t *testing.T) {
	for _, tc := range []struct{ n, block int }{{100, 7}, {64, 64}, {1, 10}, {65, 64}} {
		covered := make([]atomic.Int32, tc.n)
		err := Blocks(4, tc.n, tc.block, func(b, lo, hi int) error {
			if lo != b*tc.block {
				return fmt.Errorf("block %d: lo=%d", b, lo)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d block=%d: %v", tc.n, tc.block, err)
		}
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("n=%d block=%d: index %d covered %d times", tc.n, tc.block, i, covered[i].Load())
			}
		}
	}
}
