package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/httpapi"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/workload"
)

// TestPrivacyTelemetryEndToEnd is the acceptance test for the privacy
// observability surface: a Chernoff construction publishes an epoch with
// its privacy report, a 2-shard fleet serves it, and a gateway with
// auditing and hot-owner tracking fronts the fleet. It proves:
//
//  1. the publish wrote epochs/000001/privacy.json and the report audits
//     clean — empty violation list under the Chernoff policy;
//  2. each node serves the verified report at GET /v1/privacy;
//  3. the gateway aggregates a fleet-wide view with status "ok";
//  4. a repeated-probe scan of one owner trips eppi_audit_hot_owners and
//     surfaces the owner in the aggregate's hot_owners list;
//  5. the gateway's audit log recorded the scan, owner by owner.
func TestPrivacyTelemetryEndToEnd(t *testing.T) {
	const shards = 2
	root := t.TempDir()

	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: 40, Owners: 30, Exponent: 1.1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: 11}
	res, err := core.Construct(d.Matrix, d.Eps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, det, err := privacy.Compute(privacy.Input{
		Truth: d.Matrix, Published: res.Published, Names: d.Names,
		Eps: d.Eps, Thresholds: res.Thresholds, Hidden: res.Hidden,
		Policy: cfg.Policy.String(), Gamma: cfg.Gamma,
		Lambda: res.Lambda, Xi: res.Xi,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := epoch.Publisher{Root: root}
	if n, err := pub.PublishWithReport(res.Published, d.Names, shards, rep, det); err != nil || n != 1 {
		t.Fatalf("publish = %d, %v", n, err)
	}

	// (1) The store holds the report on disk, and it audits clean. The
	// operator detail lands next to it but never leaves the filesystem.
	if _, err := os.Stat(filepath.Join(root, epoch.EpochsDir, "000001", privacy.FileName)); err != nil {
		t.Fatalf("publish wrote no privacy.json: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, epoch.EpochsDir, "000001", privacy.DetailFileName)); err != nil {
		t.Fatalf("publish wrote no privacy_detail.json: %v", err)
	}
	if _, err := epoch.LoadDetailAt(root, 1); err != nil {
		t.Fatalf("detail failed verification: %v", err)
	}
	stored, err := epoch.LoadReportAt(root, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stored.Policy != "chernoff" || stored.ViolationCount != 0 || len(stored.Violations) != 0 {
		t.Fatalf("stored report not clean: policy=%s violations=%d %v",
			stored.Policy, stored.ViolationCount, stored.Violations)
	}
	if stored.SuccessRatio < cfg.Gamma {
		t.Fatalf("SuccessRatio = %v below γ = %v", stored.SuccessRatio, cfg.Gamma)
	}

	// Boot the fleet the way eppi-serve -epoch-dir does: load each shard,
	// then install the verified report on its handler.
	var bases [][]string
	for k := 0; k < shards; k++ {
		srv, n, err := epoch.Load(root, k, shards)
		if err != nil || n != 1 {
			t.Fatalf("boot shard %d: epoch %d, %v", k, n, err)
		}
		handler, err := httpapi.NewHandler(srv, httpapi.WithMetrics(metrics.NewRegistry()))
		if err != nil {
			t.Fatal(err)
		}
		handler.SetReport(stored)
		ts := httptest.NewServer(handler)
		defer ts.Close()
		bases = append(bases, []string{ts.URL})
	}

	// (2) Every node serves the verified report — and only the public
	// aggregates: the wire payload must carry neither the identity→decile
	// map nor per-identity violation counts.
	for k, reps := range bases {
		resp, err := http.Get(reps[0] + "/v1/privacy")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, leak := range []string{"identity_buckets", "false_positives"} {
			if strings.Contains(string(raw), leak) {
				t.Fatalf("node %d /v1/privacy leaks %q:\n%s", k, leak, raw)
			}
		}
		var got privacy.Report
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("node %d privacy decode: %v", k, err)
		}
		if resp.StatusCode != http.StatusOK || got.Epoch != 1 || got.Checksum != stored.Checksum {
			t.Fatalf("node %d /v1/privacy = %d epoch %d checksum %q, want 200 / 1 / %q",
				k, resp.StatusCode, got.Epoch, got.Checksum, stored.Checksum)
		}
	}

	greg := metrics.NewRegistry()
	auditDir := t.TempDir()
	sink, err := audit.Open(auditDir, audit.Options{Registry: greg})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{
		Shards: bases, Client: fastClient(), Registry: greg,
		Audit: sink, HotWindow: time.Minute, HotThreshold: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()

	// (4) Scan: probe one owner past the threshold through the gateway.
	// The tracker observes before the cache decision, so cache hits count
	// as pressure too — exactly what a frequency-probing attacker causes.
	victim := d.Names[0]
	for i := 0; i < 10; i++ {
		resp, err := http.Get(gw.URL + "/v1/query?owner=" + url.QueryEscape(victim))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan query %d: status %d", i, resp.StatusCode)
		}
	}
	if v := greg.Gauge("eppi_audit_hot_owners", "").Value(); v != 1 {
		t.Errorf("eppi_audit_hot_owners = %v, want 1", v)
	}
	if v := greg.Counter("eppi_audit_hot_flagged_total", "").Value(); v != 1 {
		t.Errorf("eppi_audit_hot_flagged_total = %d, want 1", v)
	}

	// (3) The fleet-wide aggregate: status ok, epoch-1 report, the
	// scanned owner flagged.
	resp, err := http.Get(gw.URL + "/v1/privacy")
	if err != nil {
		t.Fatal(err)
	}
	var agg PrivacyAggregate
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || agg.Status != "ok" {
		t.Fatalf("gateway /v1/privacy = %d status %q, want 200 ok", resp.StatusCode, agg.Status)
	}
	if agg.Report == nil || agg.Report.Epoch != 1 || agg.Report.Checksum != stored.Checksum {
		t.Fatalf("aggregate report = %+v, want epoch 1 checksum %q", agg.Report, stored.Checksum)
	}
	if fmt.Sprint(agg.HotOwners) != fmt.Sprint([]string{victim}) {
		t.Errorf("aggregate hot owners = %v, want [%s]", agg.HotOwners, victim)
	}

	// (5) The audit log holds the scan. Close flushes the async ring.
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	byOwner := map[string]int{}
	st, err := audit.ScanDir(auditDir, func(e audit.Entry) error {
		if e.Route == "query" {
			if e.Epoch != 1 {
				t.Errorf("audit entry at epoch %d, want 1: %+v", e.Epoch, e)
			}
			byOwner[e.Owner]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt != 0 {
		t.Errorf("audit log has %d corrupt lines", st.Corrupt)
	}
	if byOwner[victim] != 10 {
		t.Errorf("audit log holds %d scan queries of %q, want 10 (all: %v)",
			byOwner[victim], victim, byOwner)
	}
}
