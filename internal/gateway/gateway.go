// Package gateway is the query-routing tier of the distributed ε-PPI
// serving architecture: a stateless front door over a fleet of
// column-shard index nodes (internal/shard served by eppi-serve -shard).
//
// A Lookup(owner) is routed to the one shard owning the identity under
// the stable hash (shard.For); a Search fans out to every shard and
// merges. On top of plain routing the gateway layers the techniques a
// locator service needs to face heavy traffic:
//
//   - response caching: an LRU over lookup results, safe because M' is
//     public by construction — the Eq. 2 noise is fixed at publication
//     time, so a cached answer equals a fresh one until the next index
//     version. Concurrent misses on one owner are deduplicated
//     (singleflight) so a hot identity costs one upstream request.
//   - hedged requests: when a lookup exceeds an adaptive latency
//     percentile of recent upstream calls, a second request is fired at
//     the next replica and the first answer wins — tail latency of a slow
//     or dying node stops defining the gateway's tail.
//   - health probing with failover: replicas are probed periodically;
//     lookups prefer healthy replicas and fall back through the rest.
//     A replica answering with the wrong shard identity is treated as
//     down (it would return wrong results, worse than none).
//   - load shedding: a bounded in-flight gate with a queue-wait deadline
//     turns overload into fast 503s instead of collapse.
//
// Everything reports through internal/metrics (cache hit/miss, hedges,
// sheds, per-replica health) and internal/trace (one root span per
// request, child spans per upstream attempt, trace ids propagated to
// shard nodes via the httpapi headers).
package gateway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/httpapi"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Defaults for Config zero values.
const (
	DefaultCacheSize   = 4096
	DefaultMaxInFlight = 256
	DefaultQueueWait   = 100 * time.Millisecond
	DefaultProbePeriod = 2 * time.Second
	// defaultHedgeFloor/Ceil clamp the adaptive hedge trigger.
	defaultHedgeFloor = 2 * time.Millisecond
	defaultHedgeCeil  = time.Second
	// hedgePercentile is the latency quantile that arms the hedge.
	hedgePercentile = 0.95
)

// Config wires a Gateway.
type Config struct {
	// Shards lists, per shard id, the base URLs of the replicas serving
	// that shard. Every shard needs at least one replica.
	Shards [][]string
	// CacheSize is the response-cache capacity in entries; < 0 disables
	// caching, 0 means DefaultCacheSize.
	CacheSize int
	// CacheTTL expires cache entries by age. Epoch-keyed invalidation is
	// the primary freshness mechanism; the TTL is the safety net for
	// deployments that never publish a new epoch. 0 disables expiry.
	CacheTTL time.Duration
	// MaxInFlight bounds concurrently admitted requests; 0 means
	// DefaultMaxInFlight.
	MaxInFlight int
	// QueueWait is how long an arriving request may wait for admission
	// before being shed with a 503; 0 means DefaultQueueWait.
	QueueWait time.Duration
	// HedgeAfter fixes the hedge trigger delay. 0 selects the adaptive
	// trigger (the p95 of recent upstream latencies); < 0 disables
	// hedging.
	HedgeAfter time.Duration
	// ProbePeriod is the health-probe interval; 0 means
	// DefaultProbePeriod, < 0 disables probing (all replicas stay
	// trusted until a lookup fails through them).
	ProbePeriod time.Duration
	// Client is the upstream HTTP client shared by all shard clients; nil
	// uses the httpapi default (DefaultTimeout, retries on).
	Client *http.Client
	// Registry receives gateway metrics; nil disables them.
	Registry *metrics.Registry
	// Tracer records gateway request traces; nil disables tracing.
	Tracer *trace.Tracer
	// Logger receives health-transition and shed logs; nil discards.
	Logger *slog.Logger
	// Audit, when non-nil, records every routed query and search into
	// the audit log (internal/audit). The gateway is the natural audit
	// point: it sees the whole query stream, cache hits included.
	Audit *audit.Sink
	// HotWindow and HotThreshold arm the hot-owner tracker: an owner
	// queried HotThreshold times within a halving-decay window is
	// flagged as a scanning suspect (eppi_audit_hot_owners, warn log).
	// Either zero disables tracking.
	HotWindow    time.Duration
	HotThreshold int
}

// Gateway routes locator queries across shard nodes. Create with New;
// Close stops the health prober.
type Gateway struct {
	shards  []*shardState
	cache   *cache
	flight  *flight
	gate    *gate
	lat     *latencyWindow
	hedge   time.Duration // fixed trigger; 0 = adaptive, -1 = disabled
	tracer  *trace.Tracer
	reg     *metrics.Registry
	logger  *slog.Logger
	mux     *http.ServeMux
	inst    instruments
	sink    *audit.Sink
	hot     *audit.HotTracker
	probeWG sync.WaitGroup
	stop    context.CancelFunc

	// epoch is the highest publication epoch any upstream has reported.
	// It keys the response cache: advancing it orphans every entry of the
	// older epochs in one step.
	epoch atomic.Uint64
}

// instruments are the gateway's registry-backed counters. All fields
// no-op when nil (no registry).
type instruments struct {
	lookups     *metrics.Counter
	searches    *metrics.Counter
	batchSize   *metrics.Histogram
	batchSubreq *metrics.Counter
	cacheHits   *metrics.Counter
	cacheMiss   *metrics.Counter
	hedges      *metrics.Counter
	hedgeWins   *metrics.Counter
	sheds       *metrics.Counter
	failovers   *metrics.Counter
	upstream    *metrics.Histogram
	inflightG   *metrics.Gauge
	cacheSizeG  *metrics.Gauge
	epochG      *metrics.Gauge // highest upstream-reported epoch
	skewG       *metrics.Gauge // epoch spread across shards, last fan-out
}

// New builds a gateway over cfg.Shards and starts its health prober.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("gateway: no shards configured")
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	queueWait := cfg.QueueWait
	if queueWait <= 0 {
		queueWait = DefaultQueueWait
	}
	hedge := cfg.HedgeAfter
	if hedge < 0 {
		hedge = -1
	}
	g := &Gateway{
		cache:  newCache(cacheSize, cfg.CacheTTL),
		flight: newFlight(),
		lat:    &latencyWindow{},
		hedge:  hedge,
		tracer: cfg.Tracer,
		reg:    cfg.Registry,
		logger: logger,
		sink:   cfg.Audit,
		hot:    audit.NewHotTracker(cfg.HotWindow, cfg.HotThreshold, cfg.Registry, logger),
	}
	g.gate = newGate(maxInFlight, queueWait)
	if g.reg != nil {
		g.inst = instruments{
			lookups:     g.reg.Counter("eppi_gateway_lookups_total", "Lookups admitted by the gateway."),
			searches:    g.reg.Counter("eppi_gateway_searches_total", "Fan-out searches admitted by the gateway."),
			batchSize:   g.reg.Histogram("eppi_batch_size", "Owners per batched lookup request.", httpapi.BatchSizeBuckets),
			batchSubreq: g.reg.Counter("eppi_gateway_batch_subrequests_total", "Per-shard sub-batch requests fired by batched lookups (hedges and failover attempts included)."),
			cacheHits:   g.reg.Counter("eppi_gateway_cache_hits_total", "Lookups answered from the response cache."),
			cacheMiss:   g.reg.Counter("eppi_gateway_cache_misses_total", "Lookups that went upstream."),
			hedges:      g.reg.Counter("eppi_gateway_hedges_total", "Hedged (duplicate) upstream requests fired."),
			hedgeWins:   g.reg.Counter("eppi_gateway_hedge_wins_total", "Lookups answered by the hedge, not the primary."),
			sheds:       g.reg.Counter("eppi_gateway_shed_total", "Requests shed by the admission gate (503)."),
			failovers:   g.reg.Counter("eppi_gateway_failovers_total", "Lookups that fell over to a non-primary replica after a failure."),
			upstream:    g.reg.Histogram("eppi_gateway_upstream_seconds", "Upstream shard request latency.", metrics.DefDurationBuckets),
			inflightG:   g.reg.Gauge("eppi_gateway_inflight", "Requests currently admitted."),
			cacheSizeG:  g.reg.Gauge("eppi_gateway_cache_entries", "Live response-cache entries."),
			epochG:      g.reg.Gauge("eppi_gateway_epoch", "Highest publication epoch reported by any upstream shard."),
			skewG:       g.reg.Gauge("eppi_gateway_epoch_skew", "Epoch spread (max-min) across shards in the last fan-out search; 0 when the fleet agrees."),
		}
		g.reg.OnCollect(func() { g.inst.cacheSizeG.Set(float64(g.cache.len())) })
		g.reg.Gauge("eppi_gateway_shards", "Shard count the gateway routes over.").Set(float64(len(cfg.Shards)))
	}
	for k, bases := range cfg.Shards {
		if len(bases) == 0 {
			return nil, fmt.Errorf("gateway: shard %d has no replicas", k)
		}
		st := &shardState{id: k}
		for i, base := range bases {
			r := &replica{base: base, client: httpapi.NewClient(base, cfg.Client)}
			r.up.Store(true) // trusted until a probe or a lookup says otherwise
			r.upG = g.reg.Gauge("eppi_gateway_replica_up",
				"1 when the replica answered its last health probe.",
				metrics.L("shard", replicaLabel(k)), metrics.L("replica", replicaLabel(i)))
			st.replicas = append(st.replicas, r)
		}
		g.shards = append(g.shards, st)
	}
	g.buildMux()
	probeCtx, stop := context.WithCancel(context.Background())
	g.stop = stop
	period := cfg.ProbePeriod
	if period == 0 {
		period = DefaultProbePeriod
	}
	if period > 0 {
		g.probeWG.Add(1)
		go g.probeLoop(probeCtx, period)
	}
	return g, nil
}

// Close stops the health prober. The handler keeps working (probing
// verdicts just freeze).
func (g *Gateway) Close() {
	g.stop()
	g.probeWG.Wait()
}

// Shards returns the shard count the gateway routes over.
func (g *Gateway) Shards() int { return len(g.shards) }

// errAllReplicasFailed reports a lookup that exhausted every replica.
var errAllReplicasFailed = errors.New("gateway: all replicas failed")

// hedgeDelay returns the current hedge trigger, or -1 when hedging is
// disabled.
func (g *Gateway) hedgeDelay() time.Duration {
	if g.hedge > 0 || g.hedge == -1 {
		return g.hedge
	}
	d := g.lat.percentile(hedgePercentile, 50*time.Millisecond)
	if d < defaultHedgeFloor {
		d = defaultHedgeFloor
	}
	if d > defaultHedgeCeil {
		d = defaultHedgeCeil
	}
	return d
}

// Lookup answers QueryPPI(owner) through cache, singleflight, routing,
// hedging and failover. It is the programmatic form of GET /v1/query.
func (g *Gateway) Lookup(ctx context.Context, owner string) ([]int, error) {
	res, _, err := g.lookup(ctx, owner)
	if err != nil {
		return nil, err
	}
	if res.notFound {
		return nil, fmt.Errorf("%w: %q", httpapi.ErrOwnerNotFound, owner)
	}
	return res.providers, nil
}

// Epoch returns the highest publication epoch any upstream shard has
// reported to this gateway (0 before the first upstream answer, or for a
// pre-epoch fleet).
func (g *Gateway) Epoch() uint64 { return g.epoch.Load() }

// observeEpoch folds one upstream-reported epoch into the gateway's view
// (monotonic max). Advancing re-keys the cache — every entry of the older
// epoch, negatives included, becomes unreachable at once — and the
// now-dead entries are evicted so their LRU slots serve the new epoch.
func (g *Gateway) observeEpoch(e uint64) {
	for {
		cur := g.epoch.Load()
		if e <= cur {
			return
		}
		if g.epoch.CompareAndSwap(cur, e) {
			g.cache.purgeOtherEpochs(e)
			g.inst.epochG.Set(float64(e))
			g.logger.Info("fleet epoch advanced",
				slog.Uint64("from_epoch", cur), slog.Uint64("to_epoch", e))
			return
		}
	}
}

// lookup implements Lookup; cached reports whether the answer came from
// the response cache (for the span annotation and the handler's counters).
func (g *Gateway) lookup(ctx context.Context, owner string) (lookupResult, bool, error) {
	g.inst.lookups.Inc()
	key := cacheKey(g.epoch.Load(), owner)
	if res, ok := g.cache.get(key); ok {
		g.inst.cacheHits.Inc()
		return res, true, nil
	}
	g.inst.cacheMiss.Inc()
	res, shared, err := g.flight.do(ctx, key, func() (lookupResult, error) {
		res, err := g.fetch(ctx, owner)
		if err == nil {
			g.observeEpoch(res.epoch)
			// Key by the epoch that actually answered: mid-swap, a newer
			// upstream's answer must not be findable under the old epoch.
			g.cache.put(cacheKey(res.epoch, owner), res)
		}
		return res, err
	})
	// A shared result came from the leader's upstream call: it hit
	// neither this caller's cache nor upstream twice — report it as a
	// (deduplicated) miss, which the counters above already did.
	_ = shared
	return res, false, err
}

// fetch resolves one owner upstream: route to the owning shard, try its
// candidate replicas with hedging, fail over on errors.
func (g *Gateway) fetch(ctx context.Context, owner string) (lookupResult, error) {
	k := shard.For(owner, len(g.shards))
	ctx, sp := trace.StartChild(ctx, "gateway.fetch")
	sp.SetInt("shard", k)
	defer sp.End()

	candidates := g.shards[k].candidates()
	res, winner, hedged, err := raceReplicas(g, ctx, candidates,
		func(ctx context.Context, r *replica, asp *trace.Span) (lookupResult, error) {
			providers, epoch, err := r.client.QueryEpoch(ctx, owner)
			asp.SetUint("epoch", epoch)
			switch {
			case err == nil:
				return lookupResult{providers: providers, epoch: epoch}, nil
			case errors.Is(err, httpapi.ErrOwnerNotFound):
				// A 404 is a definitive, epoch-attributed answer too: "this
				// owner is absent from epoch N" may stop holding at N+1.
				return lookupResult{notFound: true, epoch: epoch}, nil
			default:
				return lookupResult{}, err
			}
		})
	if err != nil {
		sp.Set("error", err.Error())
		return lookupResult{}, err
	}
	if winner > 0 {
		g.inst.failovers.Inc()
	}
	sp.SetInt("winner_replica", winner)
	sp.Set("hedged", fmt.Sprintf("%v", hedged))
	return res, nil
}

// raceReplicas tries candidates in order: the first is fired immediately,
// the next when the hedge delay elapses without an answer or the previous
// attempt fails. The first definitive answer wins; remaining attempts are
// cancelled. attempt resolves one replica under a "gateway.upstream" span
// and must return definitive negatives (a 404) as values, not errors —
// an error falls through to the next replica. Both the single-owner and
// the batched lookup path race through here, so hedging, failover and
// the upstream latency instruments behave identically for both.
func raceReplicas[T any](g *Gateway, ctx context.Context, candidates []*replica,
	attempt func(context.Context, *replica, *trace.Span) (T, error)) (T, int, bool, error) {
	type outcome struct {
		res T
		err error
		idx int
	}
	var zero T
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan outcome, len(candidates))
	launch := func(idx int) {
		r := candidates[idx]
		go func() {
			_, sp := trace.StartChild(raceCtx, "gateway.upstream")
			sp.Set("replica", r.base)
			sp.SetInt("attempt", idx)
			start := time.Now()
			res, err := attempt(raceCtx, r, sp)
			elapsed := time.Since(start)
			g.inst.upstream.Observe(elapsed.Seconds())
			if err == nil {
				g.lat.observe(elapsed)
			} else {
				sp.Set("error", err.Error())
			}
			sp.End()
			results <- outcome{res: res, err: err, idx: idx}
		}()
	}

	launch(0)
	inFlight := 1
	next := 1
	hedged := false
	var firstErr error
	hedge := g.hedgeDelay()
	var timer *time.Timer
	var hedgeC <-chan time.Time
	if hedge > 0 && next < len(candidates) {
		timer = time.NewTimer(hedge)
		hedgeC = timer.C
		defer timer.Stop()
	}
	for {
		select {
		case <-ctx.Done():
			return zero, 0, hedged, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if next < len(candidates) {
				g.inst.hedges.Inc()
				hedged = true
				launch(next)
				next++
				inFlight++
			}
		case out := <-results:
			if out.err == nil {
				if hedged && out.idx > 0 {
					g.inst.hedgeWins.Inc()
				}
				return out.res, out.idx, hedged, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			inFlight--
			// An attempt failed: immediately try the next replica (don't
			// wait for the hedge timer — failure is a stronger signal).
			if next < len(candidates) {
				launch(next)
				next++
				inFlight++
			} else if inFlight == 0 {
				return zero, 0, hedged, fmt.Errorf("%w (%d tried): %v", errAllReplicasFailed, len(candidates), firstErr)
			}
		}
	}
}

// BatchAnswer is one per-owner outcome of a batched gateway lookup.
type BatchAnswer struct {
	// Owner is the queried identity, echoed back.
	Owner string
	// Found and Providers mirror a single Lookup: Found false means the
	// owning shard authoritatively does not know the owner.
	Found     bool
	Providers []int
	// Epoch is the publication epoch of the answer. A cache hit reports
	// the epoch it was fetched under, exactly like a single lookup would.
	Epoch uint64
	// Cached reports whether the row was served from the response cache.
	// Rows with Cached false that share a shard came from one sub-batch
	// request, hence one snapshot: their Epochs are always equal.
	Cached bool
	// Err is set when the owning shard could not answer (every replica
	// failed). Partial shard failures surface here per owner — the other
	// rows of the batch are unaffected.
	Err error
}

// LookupBatch resolves many owners in one pass: cache hits are served
// without touching upstreams, the misses are grouped by owning shard
// (shard.Group — duplicates collapse), one sub-batch request per shard is
// fired concurrently through the same hedging/failover race as single
// lookups, shard failures degrade to per-owner errors, and every batch
// answer back-fills the (epoch, owner) response cache. Answers are
// position-matched to owners. It is the programmatic form of
// POST /v1/query/batch.
func (g *Gateway) LookupBatch(ctx context.Context, owners []string) []BatchAnswer {
	return g.LookupBatchInto(ctx, owners, nil)
}

// LookupBatchInto is LookupBatch resolving into buf's backing storage, so
// a caller looping over batches (the selfbench, a bulk re-resolver) does
// not feed the garbage collector one answer slice per call — at warm
// batch rates the GC assists otherwise dominate the tail. buf is grown
// when too small; the returned slice is the answer, always len(owners).
func (g *Gateway) LookupBatchInto(ctx context.Context, owners []string, buf []BatchAnswer) []BatchAnswer {
	ctx, sp := trace.StartChild(ctx, "gateway.batch")
	sp.SetInt("batch_size", len(owners))
	defer sp.End()
	g.inst.lookups.Add(uint64(len(owners)))
	g.inst.batchSize.Observe(float64(len(owners)))
	var answers []BatchAnswer
	if cap(buf) >= len(owners) {
		answers = buf[:len(owners)]
		// The merge path below distinguishes misses by the Cached flag, so
		// flags left over from the buffer's previous life must be reset.
		// (A full clear would do, but resetting one bool per row is ~4×
		// cheaper than zeroing 72 bytes; hit rows are rewritten whole and
		// miss rows are assigned whole in the merge, so nothing else
		// stale is ever read.)
		for i := range answers {
			answers[i].Cached = false
		}
	} else {
		answers = make([]BatchAnswer, len(owners))
	}

	// Cache pass: one lock acquisition and one epoch load for the whole
	// batch — the warm path is why batching pays. The Cached flag doubles
	// as the hit marker: an unresolved row keeps Cached false.
	hits := g.cache.getBatch(g.epoch.Load(), owners, answers)
	g.inst.cacheHits.Add(uint64(hits))
	g.inst.cacheMiss.Add(uint64(len(owners) - hits))
	sp.SetInt("cache_hits", hits)
	if hits == len(owners) {
		return answers
	}

	missOwners := make([]string, 0, len(owners)-hits)
	for i := range answers {
		if !answers[i].Cached {
			missOwners = append(missOwners, owners[i])
		}
	}
	groups := shard.Group(missOwners, len(g.shards))
	type shardOut struct {
		rows  []httpapi.BatchRow
		epoch uint64
		err   error
	}
	outs := make([]shardOut, len(groups))
	var wg sync.WaitGroup
	for k, group := range groups {
		if len(group) == 0 {
			continue
		}
		wg.Add(1)
		go func(k int, group []string) {
			defer wg.Done()
			rows, epoch, err := g.fetchBatch(ctx, k, group)
			outs[k] = shardOut{rows: rows, epoch: epoch, err: err}
		}(k, group)
	}
	wg.Wait()

	// Merge the sub-batches: shard failures become per-owner errors, and
	// successful rows back-fill the cache under the epoch that answered
	// them (mid-swap, a newer shard's rows must not be findable under the
	// old epoch — same rule as single lookups).
	byOwner := make(map[string]BatchAnswer, len(missOwners))
	puts := make([]cachePut, 0, len(missOwners))
	var maxEpoch uint64
	failedShards := 0
	for k := range outs {
		out := &outs[k]
		if len(groups[k]) == 0 {
			continue
		}
		if out.err != nil {
			failedShards++
			for _, owner := range groups[k] {
				byOwner[owner] = BatchAnswer{Owner: owner,
					Err: fmt.Errorf("shard %d: %w", k, out.err)}
			}
			continue
		}
		if out.epoch > maxEpoch {
			maxEpoch = out.epoch
		}
		for _, row := range out.rows {
			providers := row.Providers
			if row.Found && providers == nil {
				providers = []int{}
			}
			byOwner[row.Owner] = BatchAnswer{Owner: row.Owner, Found: row.Found,
				Providers: providers, Epoch: out.epoch}
			puts = append(puts, cachePut{
				key: cacheKey(out.epoch, row.Owner),
				val: lookupResult{providers: providers, notFound: !row.Found, epoch: out.epoch},
			})
		}
	}
	g.observeEpoch(maxEpoch)
	g.cache.putBatch(puts)
	for i := range answers {
		if answers[i].Cached {
			continue
		}
		ans, resolved := byOwner[owners[i]]
		if !resolved {
			// Defensive: a shard answered its sub-batch but dropped a row.
			ans = BatchAnswer{Owner: owners[i],
				Err: fmt.Errorf("gateway: shard %d returned no row for %q",
					shard.For(owners[i], len(g.shards)), owners[i])}
		}
		answers[i] = ans
	}
	if failedShards > 0 {
		sp.SetInt("failed_shards", failedShards)
	}
	return answers
}

// fetchBatch resolves one shard's sub-batch upstream through the same
// replica race (hedging, failover) as single-owner fetches.
func (g *Gateway) fetchBatch(ctx context.Context, k int, owners []string) ([]httpapi.BatchRow, uint64, error) {
	ctx, sp := trace.StartChild(ctx, "gateway.batch_shard")
	sp.SetInt("shard", k)
	sp.SetInt("sub_batch", len(owners))
	defer sp.End()
	type batchOut struct {
		rows  []httpapi.BatchRow
		epoch uint64
	}
	candidates := g.shards[k].candidates()
	out, winner, hedged, err := raceReplicas(g, ctx, candidates,
		func(ctx context.Context, r *replica, asp *trace.Span) (batchOut, error) {
			g.inst.batchSubreq.Inc()
			rows, epoch, err := r.client.QueryBatchEpoch(ctx, owners)
			asp.SetUint("epoch", epoch)
			if err != nil {
				return batchOut{}, err
			}
			return batchOut{rows: rows, epoch: epoch}, nil
		})
	if err != nil {
		sp.Set("error", err.Error())
		return nil, 0, err
	}
	if winner > 0 {
		g.inst.failovers.Inc()
	}
	sp.SetInt("winner_replica", winner)
	sp.Set("hedged", fmt.Sprintf("%v", hedged))
	return out.rows, out.epoch, nil
}

// SearchAll fans a substring search out to every shard (one healthy
// replica each, with failover) and merges the results in owner order.
func (g *Gateway) SearchAll(ctx context.Context, q string, limit int) ([]index.Match, error) {
	matches, _, err := g.searchAll(ctx, q, limit)
	return matches, err
}

// searchAll implements SearchAll and additionally reports the highest
// epoch the answering shards served from. A fleet mid-swap answers a
// fan-out from two different matrices at once; rather than silently
// merging them, the gateway surfaces the skew (eppi_gateway_epoch_skew,
// a warning log, and span attributes) so the operator — and the epoch
// header on the response — can tell the merge was mixed.
func (g *Gateway) searchAll(ctx context.Context, q string, limit int) ([]index.Match, uint64, error) {
	g.inst.searches.Inc()
	ctx, sp := trace.StartChild(ctx, "gateway.search_fanout")
	defer sp.End()
	type shardOut struct {
		matches []index.Match
		epoch   uint64
		err     error
	}
	outs := make([]shardOut, len(g.shards))
	var wg sync.WaitGroup
	for k, st := range g.shards {
		wg.Add(1)
		go func(k int, st *shardState) {
			defer wg.Done()
			var lastErr error
			for _, r := range st.candidates() {
				matches, epoch, err := r.client.SearchEpoch(ctx, q, limit)
				if err == nil {
					outs[k] = shardOut{matches: matches, epoch: epoch}
					return
				}
				lastErr = err
			}
			outs[k] = shardOut{err: fmt.Errorf("shard %d: %w", k, lastErr)}
		}(k, st)
	}
	wg.Wait()
	var merged []index.Match
	minEpoch, maxEpoch := ^uint64(0), uint64(0)
	for _, out := range outs {
		if out.err != nil {
			sp.Set("error", out.err.Error())
			return nil, 0, out.err
		}
		merged = append(merged, out.matches...)
		if out.epoch < minEpoch {
			minEpoch = out.epoch
		}
		if out.epoch > maxEpoch {
			maxEpoch = out.epoch
		}
	}
	g.observeEpoch(maxEpoch)
	skew := maxEpoch - minEpoch
	g.inst.skewG.Set(float64(skew))
	sp.SetUint("epoch", maxEpoch)
	if skew > 0 {
		sp.SetUint("epoch_skew", skew)
		g.logger.Warn("mixed-epoch fan-out: shards answered from different index versions",
			slog.Uint64("min_epoch", minEpoch), slog.Uint64("max_epoch", maxEpoch))
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Owner < merged[j].Owner })
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	sp.SetInt("matches", len(merged))
	return merged, maxEpoch, nil
}

// PrivacyAggregate is the gateway's fleet-wide /v1/privacy payload.
// Every shard of one epoch serves the same full-index report (the
// publisher audits the whole matrix, each shard carries a copy), so
// the aggregate is the newest report seen plus a per-shard epoch map
// that shows whether the fleet agrees.
type PrivacyAggregate struct {
	// Status: "ok" (every shard served the same report epoch),
	// "mixed" (shards answered from different epochs — fleet mid-swap),
	// "degraded" (some shard had no report or was unreachable).
	Status string `json:"status"`
	// Epochs is the report epoch each shard answered with; 0 = none.
	Epochs []uint64 `json:"epochs"`
	// HotOwners lists owners currently flagged by the gateway's
	// hot-query tracker — live scanning suspects.
	HotOwners []string `json:"hot_owners,omitempty"`
	// Report is the newest verified report across the fleet.
	Report *privacy.Report `json:"report,omitempty"`
}

// AggregatePrivacy fetches and verifies the privacy report from one
// answering replica per shard and folds them into the fleet view.
func (g *Gateway) AggregatePrivacy(ctx context.Context) PrivacyAggregate {
	ctx, sp := trace.StartChild(ctx, "gateway.privacy_fanout")
	defer sp.End()
	out := PrivacyAggregate{Status: "ok", Epochs: make([]uint64, len(g.shards))}
	type shardOut struct {
		rep *privacy.Report
		ok  bool
	}
	outs := make([]shardOut, len(g.shards))
	var wg sync.WaitGroup
	for k, st := range g.shards {
		wg.Add(1)
		go func(k int, st *shardState) {
			defer wg.Done()
			for _, r := range st.candidates() {
				rep, err := r.client.Privacy(ctx)
				if err == nil {
					outs[k] = shardOut{rep: rep, ok: true}
					return
				}
				if errors.Is(err, httpapi.ErrNoPrivacyReport) {
					// Authoritative: this epoch has no report. Trying
					// another replica of the same shard won't change that.
					return
				}
			}
		}(k, st)
	}
	wg.Wait()
	var newest *privacy.Report
	for k, so := range outs {
		if !so.ok {
			out.Status = "degraded"
			continue
		}
		out.Epochs[k] = so.rep.Epoch
		if newest == nil || so.rep.Epoch > newest.Epoch {
			newest = so.rep
		}
	}
	if out.Status == "ok" {
		for _, e := range out.Epochs {
			if e != out.Epochs[0] {
				out.Status = "mixed"
				break
			}
		}
	}
	out.Report = newest
	out.HotOwners = g.hot.HotOwners()
	sp.Set("status", out.Status)
	return out
}

// AggregateStats sums the per-shard load counters (first healthy replica
// of each shard). Shards that cannot be reached are skipped; reached
// reports how many answered.
func (g *Gateway) AggregateStats(ctx context.Context) (httpapi.StatsResponse, int) {
	var total httpapi.StatsResponse
	var fanoutWeighted float64
	reached := 0
	for _, st := range g.shards {
		for _, r := range st.candidates() {
			sr, err := r.client.Stats(ctx)
			if err != nil {
				continue
			}
			total.Queries += sr.Queries
			fanoutWeighted += sr.AvgFanout * float64(sr.Queries)
			reached++
			break
		}
	}
	if total.Queries > 0 {
		total.AvgFanout = fanoutWeighted / float64(total.Queries)
	}
	return total, reached
}
