package gateway

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/shard"
)

// TestBatchLookupRaceUnderEpochSwap hammers one gateway with concurrent
// batched lookups, single lookups and a mid-flight epoch hot-swap on a
// 2-shard fleet — the CI race job runs it by name, next to
// TestEpochHotSwapEndToEnd. The bars:
//
//  1. zero failed requests across the swap window;
//  2. every row matches the canonical answer of the epoch it claims;
//  3. no mixed-snapshot rows: within one batch response, the non-cached
//     rows of one shard all carry the same epoch (one sub-batch request =
//     one snapshot).
func TestBatchLookupRaceUnderEpochSwap(t *testing.T) {
	fl := buildFuzzFleet(t)
	fl.setEpoch(1)
	g, err := New(Config{Shards: fl.bases, Client: fastClient(), ProbePeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const batchLen = 8
	ctx := context.Background()
	var stop atomic.Bool
	var batches, singles, failed atomic.Int64
	var wg sync.WaitGroup

	// checkBatch validates bars 2 and 3 for one batch response; it
	// reports (instead of t.Fatal) so every worker drains cleanly.
	checkBatch := func(owners []string, answers []BatchAnswer) {
		epochBy := map[int]uint64{}
		for i, row := range answers {
			if row.Err != nil {
				failed.Add(1)
				t.Errorf("batch row %q: %v", row.Owner, row.Err)
				continue
			}
			if row.Owner != owners[i] {
				failed.Add(1)
				t.Errorf("batch row %d echoes %q, want %q", i, row.Owner, owners[i])
				continue
			}
			canon, indexed := fl.truth[row.Epoch][row.Owner]
			if row.Found != indexed || (indexed && fmt.Sprint(row.Providers) != canon) {
				failed.Add(1)
				t.Errorf("row %q claims epoch %d but answers %v/%v (epoch-%d canon %v/%s)",
					row.Owner, row.Epoch, row.Found, row.Providers, row.Epoch, indexed, canon)
				continue
			}
			if row.Cached {
				continue
			}
			k := shard.For(row.Owner, 2)
			if seen, ok := epochBy[k]; ok && seen != row.Epoch {
				failed.Add(1)
				t.Errorf("mixed snapshot in one batch: shard %d rows at epochs %d and %d", k, seen, row.Epoch)
			}
			epochBy[k] = row.Epoch
		}
	}

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]BatchAnswer, batchLen)
			owners := make([]string, batchLen)
			for i := 0; !stop.Load(); i++ {
				for j := range owners {
					owners[j] = fl.names[(i*batchLen+j*3+w)%len(fl.names)]
				}
				checkBatch(owners, g.LookupBatchInto(ctx, owners, buf))
				batches.Add(1)
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				owner := fl.names[(i*7+w)%len(fl.names)]
				if _, err := g.Lookup(ctx, owner); err != nil {
					failed.Add(1)
					t.Errorf("single Lookup(%q): %v", owner, err)
				}
				singles.Add(1)
			}
		}(w)
	}

	time.Sleep(60 * time.Millisecond)
	fl.setEpoch(2) // hot-swap under fire
	time.Sleep(60 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d failures across %d batches + %d singles",
			failed.Load(), batches.Load(), singles.Load())
	}
	if batches.Load() == 0 || singles.Load() == 0 {
		t.Fatalf("hammer too idle (batches=%d singles=%d) — the race window proved nothing",
			batches.Load(), singles.Load())
	}
}
