package gateway

import (
	"context"
	"testing"
)

// The warm benchmarks pin down the batched pipeline's reason to exist:
// a warm LookupBatch row must cost a small fraction of a warm single
// Lookup (the selfbench acceptance bar is 5×). Run them when touching
// the cache or LookupBatch fast paths:
//
//	go test -bench 'LookupWarm|BatchWarm' -benchmem ./internal/gateway/
func newWarmBenchGateway(b *testing.B, owners []string, bases [][]string) *Gateway {
	b.Helper()
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(g.Close)
	for _, owner := range owners {
		if _, err := g.Lookup(context.Background(), owner); err != nil {
			b.Fatalf("warmup %q: %v", owner, err)
		}
	}
	return g
}

func BenchmarkLookupWarm(b *testing.B) {
	_, names, bases, _ := buildShardedFixture(b, 20, 128, 3, 1)
	g := newWarmBenchGateway(b, names, bases)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Lookup(ctx, names[i%len(names)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupBatchIntoWarm(b *testing.B) {
	_, names, bases, _ := buildShardedFixture(b, 20, 128, 3, 1)
	g := newWarmBenchGateway(b, names, bases)
	ctx := context.Background()
	batch := names[:64]
	buf := make([]BatchAnswer, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		answers := g.LookupBatchInto(ctx, batch, buf)
		if len(answers) != len(batch) {
			b.Fatal("short batch")
		}
	}
}

func BenchmarkLookupBatchWarm(b *testing.B) {
	_, names, bases, _ := buildShardedFixture(b, 20, 128, 3, 1)
	g := newWarmBenchGateway(b, names, bases)
	ctx := context.Background()
	batch := names[:64]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		answers := g.LookupBatch(ctx, batch)
		if len(answers) != len(batch) {
			b.Fatal("short batch")
		}
	}
}
