package gateway

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"unicode/utf8"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/index"
	"repro/internal/mathx"
	"repro/internal/shard"
	"repro/internal/workload"
)

// fuzzFleet is a persistent 2-shard loopback fleet with two published
// epochs prepared per node. setEpoch flips every node between them
// atomically — the fuzz target swaps mid-iteration without rebuilding
// anything, so one iteration costs a handful of loopback round-trips.
type fuzzFleet struct {
	names    []string
	bases    [][]string
	nodes    []*atomic.Pointer[httpapi.Handler]
	handlers map[uint64][]*httpapi.Handler
	// truth[e][owner] is the canonical provider list of epoch e, rendered
	// with fmt.Sprint; owners absent from a map are authoritative misses.
	truth map[uint64]map[string]string
}

func (fl *fuzzFleet) setEpoch(e uint64) {
	for k, node := range fl.nodes {
		node.Store(fl.handlers[e][k])
	}
}

func buildFuzzFleet(f testing.TB) *fuzzFleet {
	f.Helper()
	const shards = 2
	fl := &fuzzFleet{
		handlers: map[uint64][]*httpapi.Handler{},
		truth:    map[uint64]map[string]string{},
	}
	// Two publications over the same owner names: the grown provider
	// network of epoch 2 changes the provider lists, so a row answered by
	// the wrong snapshot is visibly different, not silently equal.
	for e, providers := range map[uint64]int{1: 20, 2: 26} {
		d, err := workload.GenerateZipf(workload.ZipfConfig{
			Providers: providers, Owners: 24, Exponent: 1.1, Seed: 1,
		})
		if err != nil {
			f.Fatal(err)
		}
		res, err := core.Construct(d.Matrix, d.Eps, core.Config{
			Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: 1,
		})
		if err != nil {
			f.Fatal(err)
		}
		full, err := index.NewServer(res.Published, d.Names)
		if err != nil {
			f.Fatal(err)
		}
		fl.names = d.Names
		truth := make(map[string]string, len(d.Names))
		for _, name := range d.Names {
			providers, err := full.Query(name)
			if err != nil {
				f.Fatal(err)
			}
			truth[name] = fmt.Sprint(providers)
		}
		fl.truth[e] = truth
		parts, err := shard.Partition(res.Published, d.Names, shards)
		if err != nil {
			f.Fatal(err)
		}
		for _, srv := range parts {
			srv.SetEpoch(e)
			h, err := httpapi.NewHandler(srv)
			if err != nil {
				f.Fatal(err)
			}
			fl.handlers[e] = append(fl.handlers[e], h)
		}
	}
	for k := 0; k < shards; k++ {
		node := &atomic.Pointer[httpapi.Handler]{}
		node.Store(fl.handlers[1][k])
		fl.nodes = append(fl.nodes, node)
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			node.Load().ServeHTTP(w, r)
		}))
		f.Cleanup(ts.Close)
		fl.bases = append(fl.bases, []string{ts.URL})
	}
	return fl
}

// FuzzBatchEquivalence is the equivalence wall around the whole query
// path: for arbitrary owner lists — indexed names, unknown strings,
// duplicates, empties, shard collisions — a batched gateway lookup must
// return exactly what k individual Lookups return, cold and warm, and
// every row must match the canonical answer of the epoch it claims, even
// when the fleet hot-swaps to a new publication mid-iteration.
func FuzzBatchEquivalence(f *testing.F) {
	fl := buildFuzzFleet(f)

	// Seeds: duplicates, empty strings, owners colliding on one shard,
	// unknown owners, and name-table indices hitting real identities.
	var collide [2]string
	for _, name := range fl.names {
		collide[shard.For(name, 2)] = name
	}
	f.Add(fl.names[0], fl.names[0], "", uint8(0), true)
	f.Add(collide[0], collide[0], collide[0], uint8(3), false)
	f.Add(collide[1], "owner://no-such-identity", collide[1], uint8(7), true)
	f.Add("", "", "", uint8(255), true)
	f.Add("owner://x", "owner://y", "owner://z", uint8(128), false)

	f.Fuzz(func(t *testing.T, a, b, c string, pick uint8, swap bool) {
		// JSON transport replaces invalid UTF-8; owner identities in this
		// system are URLs, so non-UTF-8 probes are out of contract.
		if !utf8.ValidString(a) || !utf8.ValidString(b) || !utf8.ValidString(c) {
			t.Skip("owner identities are valid UTF-8")
		}
		fl.setEpoch(1)
		// The owner list mixes fuzz strings with indexed names (picked by
		// the fuzzed byte) and a guaranteed duplicate.
		owners := []string{
			a,
			fl.names[int(pick)%len(fl.names)],
			b,
			fl.names[int(pick/2)%len(fl.names)],
			c,
			a, // duplicate by construction
		}

		g, err := New(Config{Shards: fl.bases, Client: fastClient(), ProbePeriod: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()

		ctx := context.Background()
		checkRows := func(pass string, answers []BatchAnswer, wantEpoch uint64) {
			t.Helper()
			if len(answers) != len(owners) {
				t.Fatalf("%s: %d rows for %d owners", pass, len(answers), len(owners))
			}
			for i, row := range answers {
				if row.Owner != owners[i] {
					t.Fatalf("%s row %d echoes %q, want %q", pass, i, row.Owner, owners[i])
				}
				if row.Err != nil {
					t.Fatalf("%s row %d (%q): %v", pass, i, row.Owner, row.Err)
				}
				if row.Epoch != wantEpoch {
					t.Fatalf("%s row %d (%q): epoch %d, want %d", pass, i, row.Owner, row.Epoch, wantEpoch)
				}
				canonical, indexed := fl.truth[row.Epoch][row.Owner]
				if row.Found != indexed {
					t.Fatalf("%s row %d (%q): found=%v, epoch-%d index says %v",
						pass, i, row.Owner, row.Found, row.Epoch, indexed)
				}
				if indexed && fmt.Sprint(row.Providers) != canonical {
					t.Fatalf("%s row %d (%q): providers %v, epoch-%d canon %s",
						pass, i, row.Owner, row.Providers, row.Epoch, canonical)
				}
			}
		}

		// Cold pass at epoch 1, then the element-wise singles comparison:
		// batch and single must agree byte for byte on every owner.
		cold := g.LookupBatch(ctx, owners)
		checkRows("cold", cold, 1)
		for i, owner := range owners {
			if owner == "" {
				// GET /v1/query cannot express an empty owner (it 400s);
				// the batch row must still be a clean in-band miss, which
				// checkRows already proved. Documented asymmetry, skip.
				continue
			}
			single, err := g.Lookup(ctx, owner)
			if errors.Is(err, httpapi.ErrOwnerNotFound) {
				if cold[i].Found {
					t.Fatalf("owner %q: batch found, single says not indexed", owner)
				}
				continue
			}
			if err != nil {
				t.Fatalf("single Lookup(%q): %v", owner, err)
			}
			if !cold[i].Found {
				t.Fatalf("owner %q: single found, batch says not indexed", owner)
			}
			if fmt.Sprint(single) != fmt.Sprint(cold[i].Providers) {
				t.Fatalf("owner %q: single %v, batch %v", owner, single, cold[i].Providers)
			}
		}

		// Warm pass: same batch, now entirely cache-served, same answers.
		warm := g.LookupBatch(ctx, owners)
		checkRows("warm", warm, 1)
		for i := range warm {
			if !warm[i].Cached {
				t.Fatalf("warm row %d (%q) missed the cache", i, warm[i].Owner)
			}
		}

		if swap {
			// Hot-swap the whole fleet to epoch 2 mid-iteration. The warm
			// gateway keeps serving its coherent epoch-1 cache; a fresh
			// gateway must see epoch-2 answers only. Either way every row
			// matches the canon of the epoch it claims — rows can never
			// mix snapshots.
			fl.setEpoch(2)
			stale := g.LookupBatch(ctx, owners)
			checkRows("post-swap warm", stale, 1)
			g2, err := New(Config{Shards: fl.bases, Client: fastClient(), ProbePeriod: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer g2.Close()
			fresh := g2.LookupBatch(ctx, owners)
			checkRows("post-swap cold", fresh, 2)
		}
	})
}
