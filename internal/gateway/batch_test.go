package gateway

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/metrics"
	"repro/internal/shard"
)

// TestLookupBatchMatchesSingles is the programmatic equivalence pin: for
// every owner — indexed, unknown, duplicated, empty — a batch row must
// carry exactly what the full index (and hence a single Lookup) answers.
func TestLookupBatchMatchesSingles(t *testing.T) {
	full, names, bases, _ := buildShardedFixture(t, 20, 30, 3, 1)
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	owners := append([]string{}, names...)
	owners = append(owners, "owner://no-such-identity", names[0], "", names[0])
	answers := g.LookupBatch(context.Background(), owners)
	if len(answers) != len(owners) {
		t.Fatalf("answers = %d, want %d", len(answers), len(owners))
	}
	for i, owner := range owners {
		a := answers[i]
		if a.Owner != owner {
			t.Fatalf("row %d echoes %q, want %q", i, a.Owner, owner)
		}
		if a.Err != nil {
			t.Fatalf("row %d (%q): %v", i, owner, a.Err)
		}
		want, err := full.Query(owner)
		if err != nil {
			if a.Found {
				t.Fatalf("row %d (%q): batch found, full index does not know it", i, owner)
			}
			continue
		}
		if !a.Found {
			t.Fatalf("row %d (%q): full index knows it, batch missed", i, owner)
		}
		if fmt.Sprint(a.Providers) != fmt.Sprint(want) {
			t.Fatalf("row %d (%q): batch %v, full index %v", i, owner, a.Providers, want)
		}
	}
}

// TestLookupBatchServesFromCacheAfterBackfill: a cold batch back-fills
// the response cache, so the identical warm batch must answer complete
// and correct with every upstream dead.
func TestLookupBatchServesFromCacheAfterBackfill(t *testing.T) {
	_, names, bases, servers := buildShardedFixture(t, 15, 20, 2, 1)
	reg := metrics.NewRegistry()
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	owners := append(append([]string{}, names...), "owner://no-such-identity")
	cold := g.LookupBatch(context.Background(), owners)
	for i, a := range cold {
		if a.Err != nil {
			t.Fatalf("cold row %d: %v", i, a.Err)
		}
		if a.Cached {
			t.Fatalf("cold row %d (%q) claims a cache hit", i, a.Owner)
		}
	}
	for _, reps := range servers {
		for _, ts := range reps {
			ts.Close()
		}
	}
	warm := g.LookupBatch(context.Background(), owners)
	for i, a := range warm {
		if a.Err != nil {
			t.Fatalf("warm row %d with dead upstreams: %v", i, a.Err)
		}
		if !a.Cached {
			t.Fatalf("warm row %d (%q) not served from cache", i, a.Owner)
		}
		if fmt.Sprint(a.Providers) != fmt.Sprint(cold[i].Providers) || a.Found != cold[i].Found {
			t.Fatalf("warm row %d changed: %+v vs %+v", i, a, cold[i])
		}
	}
	// The negative row is cached too — the miss must not dodge the cache.
	if last := warm[len(warm)-1]; last.Found || !last.Cached {
		t.Fatalf("negative row not cache-served: %+v", last)
	}
	if hits := reg.Counter("eppi_gateway_cache_hits_total", "").Value(); hits != uint64(len(owners)) {
		t.Fatalf("cache hits = %d, want %d", hits, len(owners))
	}
}

// TestLookupBatchPartialShardFailure: one dead shard degrades exactly its
// own rows to per-owner errors; the surviving shard's rows are unharmed.
func TestLookupBatchPartialShardFailure(t *testing.T) {
	full, names, bases, servers := buildShardedFixture(t, 12, 24, 2, 1)
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, ts := range servers[0] {
		ts.Close()
	}
	answers := g.LookupBatch(context.Background(), names)
	deadRows, liveRows := 0, 0
	for i, a := range answers {
		if shard.For(a.Owner, 2) == 0 {
			deadRows++
			if a.Err == nil {
				t.Fatalf("row %d (%q) on the dead shard has no error: %+v", i, a.Owner, a)
			}
			if a.Found {
				t.Fatalf("row %d (%q) errored AND found: %+v", i, a.Owner, a)
			}
			continue
		}
		liveRows++
		if a.Err != nil {
			t.Fatalf("row %d (%q) on the live shard errored: %v", i, a.Owner, a.Err)
		}
		want, err := full.Query(a.Owner)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Found || fmt.Sprint(a.Providers) != fmt.Sprint(want) {
			t.Fatalf("row %d (%q) = %+v, want providers %v", i, a.Owner, a, want)
		}
	}
	if deadRows == 0 || liveRows == 0 {
		t.Fatalf("fixture routed all owners to one shard (dead=%d live=%d); pick different owners", deadRows, liveRows)
	}
}

// TestLookupBatchIntoReusesBuffer: the Into form must resolve into the
// caller's storage and leave no stale field from the buffer's previous
// life readable — on cold rows, warm rows, and error rows alike.
func TestLookupBatchIntoReusesBuffer(t *testing.T) {
	full, names, bases, _ := buildShardedFixture(t, 10, 12, 2, 1)
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	owners := names[:4]
	poison := func(buf []BatchAnswer) {
		for i := range buf {
			buf[i] = BatchAnswer{Owner: "stale", Found: true, Cached: true,
				Providers: []int{-1}, Epoch: 999, Err: errors.New("stale")}
		}
	}
	buf := make([]BatchAnswer, 8)
	poison(buf)
	cold := g.LookupBatchInto(context.Background(), owners, buf)
	if len(cold) != len(owners) {
		t.Fatalf("len = %d, want %d", len(cold), len(owners))
	}
	if &cold[0] != &buf[0] {
		t.Fatal("Into allocated fresh storage despite a big-enough buffer")
	}
	check := func(pass string, answers []BatchAnswer) {
		t.Helper()
		for i, a := range answers {
			if a.Owner != owners[i] || a.Err != nil {
				t.Fatalf("%s row %d = %+v (stale buffer fields leaked?)", pass, i, a)
			}
			want, err := full.Query(a.Owner)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Found || fmt.Sprint(a.Providers) != fmt.Sprint(want) {
				t.Fatalf("%s row %d = %+v, want providers %v", pass, i, a, want)
			}
		}
	}
	check("cold", cold)
	// Warm pass through the cache-hit write path, same poisoned buffer.
	poison(buf)
	warm := g.LookupBatchInto(context.Background(), owners, buf)
	check("warm", warm)
	for i, a := range warm {
		if !a.Cached {
			t.Fatalf("warm row %d not a cache hit: %+v", i, a)
		}
	}
	// A too-small buffer grows instead of truncating.
	grown := g.LookupBatchInto(context.Background(), owners, make([]BatchAnswer, 1))
	check("grown", grown)
}

// TestLookupBatchDuplicatesCollapse: duplicate owners ride one upstream
// sub-request (shard.Group dedups) yet every position gets its row.
func TestLookupBatchDuplicatesCollapse(t *testing.T) {
	_, names, bases, _ := buildShardedFixture(t, 10, 12, 2, 1)
	reg := metrics.NewRegistry()
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1, Registry: reg, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	owner := names[0]
	answers := g.LookupBatch(context.Background(), []string{owner, owner, owner})
	for i, a := range answers {
		if a.Owner != owner || a.Err != nil || !a.Found {
			t.Fatalf("row %d = %+v", i, a)
		}
		if fmt.Sprint(a.Providers) != fmt.Sprint(answers[0].Providers) {
			t.Fatalf("duplicate rows diverge: %+v vs %+v", a, answers[0])
		}
	}
	// Three copies of one owner → exactly one sub-batch request upstream.
	if n := reg.Counter("eppi_gateway_batch_subrequests_total", "").Value(); n != 1 {
		t.Fatalf("sub-batch requests = %d, want 1", n)
	}
	if c := reg.Histogram("eppi_batch_size", "", nil).Count(); c != 1 {
		t.Fatalf("batch size observations = %d, want 1", c)
	}
}

// TestLookupBatchSingleSnapshotPerShard: within one batch, every
// non-cached row answered by the same shard carries the same epoch (one
// sub-batch request = one snapshot).
func TestLookupBatchSingleSnapshotPerShard(t *testing.T) {
	_, names, bases, _ := buildShardedFixture(t, 12, 24, 3, 1)
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	answers := g.LookupBatch(context.Background(), names)
	epochBy := map[int]uint64{}
	for _, a := range answers {
		if a.Err != nil || a.Cached {
			t.Fatalf("row %+v", a)
		}
		k := shard.For(a.Owner, 3)
		if seen, ok := epochBy[k]; ok && seen != a.Epoch {
			t.Fatalf("shard %d mixed epochs %d and %d within one batch", k, seen, a.Epoch)
		}
		epochBy[k] = a.Epoch
	}
}

// TestLookupBatchEmpty: a zero-owner batch is a no-op, not a panic.
func TestLookupBatchEmpty(t *testing.T) {
	_, _, bases, _ := buildShardedFixture(t, 10, 12, 2, 1)
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if answers := g.LookupBatch(context.Background(), nil); len(answers) != 0 {
		t.Fatalf("answers = %v, want empty", answers)
	}
}
