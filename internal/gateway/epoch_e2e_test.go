package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/httpapi"
	"repro/internal/index"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// buildPublishable constructs a real published index whose answers depend
// on the provider count, so two publications with different counts give
// visibly different provider lists for the same owner names.
func buildPublishable(t *testing.T, providers, owners int, seed int64) (*index.Server, []string, *core.Result) {
	t.Helper()
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: providers, Owners: owners, Exponent: 1.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Construct(d.Matrix, d.Eps, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := index.NewServer(res.Published, d.Names)
	if err != nil {
		t.Fatal(err)
	}
	return full, d.Names, res
}

// TestEpochHotSwapEndToEnd is the acceptance test for the epoch
// subsystem: a 2-shard fleet boots from an epoch store at epoch 1 and is
// hammered with queries while epoch 2 is published and hot-swapped
// underneath it.
//
// It proves, over HTTP end to end:
//  1. zero requests fail across the publish + swap window;
//  2. afterwards the gateway serves epoch-2 answers only, X-Eppi-Epoch
//     and the healthz epoch read 2 everywhere, and the gateway cache
//     holds no epoch-1 entries;
//  3. each node's eppi_epoch gauge reads 2 and eppi_epoch_swaps_total
//     counted exactly one swap.
func TestEpochHotSwapEndToEnd(t *testing.T) {
	const shards = 2
	root := t.TempDir()
	pub := epoch.Publisher{Root: root}

	fullA, names, resA := buildPublishable(t, 20, 30, 1)
	if _, err := pub.Publish(resA.Published, names, shards); err != nil {
		t.Fatal(err)
	}

	// Boot the fleet from the store: one node per shard, each with its own
	// registry and a fast epoch watcher, exactly like eppi-serve -epoch-dir.
	// Defer order matters: cancel must run before the Wait (LIFO), or the
	// watcher goroutines never get told to stop.
	var watchers sync.WaitGroup
	defer watchers.Wait()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	regs := make([]*metrics.Registry, shards)
	var bases [][]string
	for k := 0; k < shards; k++ {
		srv, n, err := epoch.Load(root, k, shards)
		if err != nil {
			t.Fatalf("boot shard %d: %v", k, err)
		}
		if n != 1 {
			t.Fatalf("boot shard %d at epoch %d, want 1", k, n)
		}
		regs[k] = metrics.NewRegistry()
		handler, err := httpapi.NewHandler(srv, httpapi.WithMetrics(regs[k]))
		if err != nil {
			t.Fatal(err)
		}
		w := &epoch.Watcher{
			Root: root, Shard: k, Of: shards, Period: 10 * time.Millisecond,
			OnSwap: func(next *index.Server, _ uint64) error { return handler.Swap(next) },
		}
		watchers.Add(1)
		go func() { defer watchers.Done(); w.Run(ctx, n) }()
		ts := httptest.NewServer(handler)
		defer ts.Close()
		bases = append(bases, []string{ts.URL})
	}

	greg := metrics.NewRegistry()
	g, err := New(Config{Shards: bases, Client: fastClient(), Registry: greg,
		ProbePeriod: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()

	truth := func(full *index.Server) map[string]string {
		m := make(map[string]string, len(names))
		for _, name := range names {
			providers, err := full.Query(name)
			if err != nil {
				t.Fatal(err)
			}
			m[name] = fmt.Sprint(providers)
		}
		return m
	}
	truthA := truth(fullA)

	queryOne := func(name string) (string, string, int, error) {
		resp, err := http.Get(gw.URL + "/v1/query?owner=" + name)
		if err != nil {
			return "", "", 0, err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var qr httpapi.QueryResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &qr); err != nil {
				return "", "", resp.StatusCode, err
			}
		}
		return fmt.Sprint(qr.Providers), resp.Header.Get(httpapi.EpochHeader), resp.StatusCode, nil
	}

	// Epoch-1 sweep: every answer matches the full index, stamped epoch 1.
	for _, name := range names {
		got, epochHdr, code, err := queryOne(name)
		if err != nil || code != http.StatusOK {
			t.Fatalf("epoch 1 query %q: %d, %v", name, code, err)
		}
		if got != truthA[name] {
			t.Fatalf("epoch 1 query %q = %v, want %v", name, got, truthA[name])
		}
		if epochHdr != "1" {
			t.Fatalf("epoch 1 query %q: %s header = %q, want 1", name, httpapi.EpochHeader, epochHdr)
		}
	}
	if g.Epoch() != 1 {
		t.Fatalf("gateway epoch = %d after epoch-1 traffic, want 1", g.Epoch())
	}

	// Hammer the gateway continuously through the publish + swap window.
	// The acceptance bar: not one failed request.
	var stop atomic.Bool
	var hammered, failed atomic.Int64
	var hammerWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		hammerWG.Add(1)
		go func(w int) {
			defer hammerWG.Done()
			for i := 0; !stop.Load(); i++ {
				name := names[(i*4+w)%len(names)]
				_, _, code, err := queryOne(name)
				hammered.Add(1)
				if err != nil || (code != http.StatusOK && code != http.StatusNotFound) {
					failed.Add(1)
					t.Errorf("mid-swap query %q failed: %d, %v", name, code, err)
				}
			}
		}(w)
	}

	// Publish epoch 2: a re-publication over a grown provider network. The
	// owner names are identical; the provider lists are not.
	fullB, namesB, resB := buildPublishable(t, 26, 30, 1)
	if fmt.Sprint(namesB) != fmt.Sprint(names) {
		t.Fatal("fixture regression: epoch-2 owner names differ from epoch 1")
	}
	if n, err := pub.Publish(resB.Published, namesB, shards); err != nil || n != 2 {
		t.Fatalf("publish epoch 2 = %d, %v", n, err)
	}

	// Wait for every node to report the new epoch via healthz.
	nodeEpoch := func(base string) uint64 {
		resp, err := http.Get(base + "/v1/healthz")
		if err != nil {
			return 0
		}
		defer resp.Body.Close()
		var hz httpapi.HealthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			return 0
		}
		return hz.Epoch
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		swapped := 0
		for _, reps := range bases {
			if nodeEpoch(reps[0]) == 2 {
				swapped++
			}
		}
		if swapped == shards {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached epoch 2 (%d/%d nodes swapped)", swapped, shards)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The gateway hears about the new epoch from its health probes (cache
	// hits never go upstream); wait until it has.
	for g.Epoch() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("gateway never observed epoch 2 (still at %d)", g.Epoch())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Let the hammer overlap the post-swap window too, then stop it.
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	hammerWG.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d of %d in-flight requests failed across the swap", failed.Load(), hammered.Load())
	}
	if hammered.Load() == 0 {
		t.Fatal("hammer sent no requests — the window test proved nothing")
	}

	// Epoch-2 sweep: only new answers, new header, everywhere.
	truthB := truth(fullB)
	changed := 0
	for _, name := range names {
		got, epochHdr, code, err := queryOne(name)
		if err != nil || code != http.StatusOK {
			t.Fatalf("epoch 2 query %q: %d, %v", name, code, err)
		}
		if got != truthB[name] {
			t.Fatalf("epoch 2 query %q = %v, want %v (epoch-1 answer was %v)",
				name, got, truthB[name], truthA[name])
		}
		if epochHdr != "2" {
			t.Fatalf("epoch 2 query %q: %s header = %q, want 2", name, httpapi.EpochHeader, epochHdr)
		}
		if got != truthA[name] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("no owner's answer changed across epochs — re-publication invisible")
	}
	if g.Epoch() != 2 {
		t.Fatalf("gateway epoch = %d, want 2", g.Epoch())
	}

	// The cache holds no epoch-1 entries: every key is epoch-2-scoped.
	g.cache.mu.Lock()
	for key := range g.cache.items {
		if !strings.HasPrefix(key, "2\x00") {
			g.cache.mu.Unlock()
			t.Fatalf("stale cache key %q survived the epoch swap", key)
		}
	}
	entries := len(g.cache.items)
	g.cache.mu.Unlock()
	if entries == 0 {
		t.Fatal("cache empty after epoch-2 sweep")
	}

	// Every node's metrics read epoch 2 with exactly one swap counted.
	for k, reg := range regs {
		if v := reg.Gauge("eppi_epoch", "").Value(); v != 2 {
			t.Errorf("node %d eppi_epoch = %v, want 2", k, v)
		}
		if v := reg.Counter("eppi_epoch_swaps_total", "").Value(); v != 1 {
			t.Errorf("node %d eppi_epoch_swaps_total = %d, want 1", k, v)
		}
	}
}
