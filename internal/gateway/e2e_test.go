package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestGatewayEndToEnd is the acceptance test for the distributed serving
// layer: a real index is partitioned into 3 column shards, each served by
// 2 replica HTTP servers on loopback (the same handler eppi-serve mounts).
// A gateway with caching, hedging, probing and shedding sits in front.
//
// It proves, over HTTP end to end:
//  1. cold cache: every owner's gateway answer equals the single-node
//     full-index answer;
//  2. one replica of every shard is killed mid-test and every owner still
//     answers, identically, from the surviving replicas;
//  3. warm cache: a re-query sweep still matches and is served from cache;
//  4. the hedge/shed/cache counters are visible in GET /v1/metrics and the
//     gateway spans are visible in GET /v1/traces.
func TestGatewayEndToEnd(t *testing.T) {
	const shards, replicasPer = 3, 2
	full, names, bases, servers := buildShardedFixture(t, 25, 40, shards, replicasPer)

	reg := metrics.NewRegistry()
	tracer := trace.New(64)
	g, err := New(Config{
		Shards:      bases,
		Client:      fastClient(),
		Registry:    reg,
		Tracer:      tracer,
		ProbePeriod: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()

	// Ground truth from the unsharded index (what a single-node
	// eppi-serve would answer).
	truth := make(map[string][]int, len(names))
	for _, name := range names {
		providers, err := full.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		truth[name] = providers
	}

	queryAll := func(phase string) {
		t.Helper()
		for _, name := range names {
			resp, err := http.Get(gw.URL + "/v1/query?owner=" + url.QueryEscape(name))
			if err != nil {
				t.Fatalf("%s: query %q: %v", phase, name, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: query %q = %d: %s", phase, name, resp.StatusCode, body)
			}
			var qr httpapi.QueryResponse
			if err := json.Unmarshal(body, &qr); err != nil {
				t.Fatalf("%s: decode %q: %v", phase, name, err)
			}
			if fmt.Sprint(qr.Providers) != fmt.Sprint(truth[name]) {
				t.Fatalf("%s: query %q = %v, single-node index says %v",
					phase, name, qr.Providers, truth[name])
			}
		}
	}

	// Phase 1: cold cache, all replicas alive.
	queryAll("cold")
	misses := reg.Counter("eppi_gateway_cache_misses_total", "").Value()
	if misses != uint64(len(names)) {
		t.Fatalf("cold sweep: %d cache misses, want %d", misses, len(names))
	}

	// Phase 2: kill replica 0 of every shard mid-test. Wait for the
	// prober to notice, then every owner must still answer identically.
	for _, reps := range servers {
		reps[0].Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		down := 0
		for _, st := range g.shards {
			if !st.replicas[0].up.Load() {
				down++
			}
		}
		if down == shards {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 3: warm cache — every answer is already cached, so this sweep
	// must succeed (and match) regardless of the dead replicas.
	queryAll("warm")
	if hits := reg.Counter("eppi_gateway_cache_hits_total", "").Value(); hits < uint64(len(names)) {
		t.Fatalf("warm sweep: %d cache hits, want >= %d", hits, len(names))
	}

	// Phase 4: force fresh upstream traffic past the cache with a fan-out
	// search, exercising failover over live replicas only.
	sresp, err := http.Get(gw.URL + "/v1/search?q=")
	if err != nil {
		t.Fatal(err)
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("search with dead replicas = %d: %s", sresp.StatusCode, sbody)
	}
	var sr httpapi.SearchResponse
	if err := json.Unmarshal(sbody, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != len(names) {
		t.Fatalf("fan-out search over degraded fleet returned %d owners, want %d",
			len(sr.Results), len(names))
	}

	// Phase 5: healthz reflects the degraded-but-serving fleet.
	hresp, err := http.Get(gw.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz GatewayHealthz
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hz.Status != "ok" || hz.Shards != shards {
		t.Fatalf("healthz after kill = %+v, want ok with %d shards", hz, shards)
	}
	for k, states := range hz.Replicas {
		if states[0] != "down" || states[1] != "up" {
			t.Fatalf("shard %d replica states = %v, want [down up]", k, states)
		}
	}

	// Phase 6: counters visible in /v1/metrics exposition.
	mresp, err := http.Get(gw.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	exposition := string(mbody)
	for _, metric := range []string{
		"eppi_gateway_cache_hits_total",
		"eppi_gateway_cache_misses_total",
		"eppi_gateway_hedges_total",
		"eppi_gateway_shed_total",
		"eppi_gateway_lookups_total",
		"eppi_gateway_replica_up",
		"eppi_gateway_shards",
	} {
		if !strings.Contains(exposition, metric) {
			t.Errorf("/v1/metrics missing %s", metric)
		}
	}

	// Phase 7: gateway spans visible in /v1/traces.
	tresp, err := http.Get(gw.URL + "/v1/traces?format=text")
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	traces := string(tbody)
	for _, span := range []string{"gateway.query", "gateway.fetch", "gateway.upstream"} {
		if !strings.Contains(traces, span) {
			t.Errorf("/v1/traces missing span %s", span)
		}
	}

	// Phase 8: programmatic lookups agree too (covers the Go API path the
	// eppi-gateway binary does not exercise over HTTP).
	for _, name := range names {
		got, err := g.Lookup(context.Background(), name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(truth[name]) {
			t.Fatalf("Lookup(%q) = %v, want %v", name, got, truth[name])
		}
	}
}
