package gateway

import (
	"container/list"
	"context"
	"strconv"
	"strings"
	"sync"
	"time"
)

// lookupResult is one cacheable QueryPPI outcome. Caching responses at
// the gateway is safe because M' is public by construction: the Eq. 2
// false-positive noise is baked into the index at publication time, not
// sampled per query, so every lookup of an owner returns the same
// provider list until a new index version is published. "Owner unknown"
// is equally stable, so negative results are cached too. The epoch makes
// "until a new index version" operational: entries are keyed by it, so a
// re-publication orphans every older entry at once.
type lookupResult struct {
	providers []int
	notFound  bool
	// epoch is the publication epoch of the index that answered, as
	// reported by the upstream node.
	epoch uint64
}

// cacheKey scopes an owner's cache entry to one publication epoch. When
// the fleet swaps to epoch N+1 the gateway starts keying by N+1, so every
// epoch-N entry — negatives included — becomes unreachable in one step
// and ages out of the LRU; no scan, no flush.
func cacheKey(epoch uint64, owner string) string {
	return strconv.FormatUint(epoch, 10) + "\x00" + owner
}

// cache is a fixed-capacity LRU of lookupResults keyed by (epoch, owner).
// All methods are safe for concurrent use. A non-zero ttl additionally
// expires entries by age — the safety net for deployments that never
// publish a new epoch, where stale-by-LRU would otherwise be the only
// bound on entry lifetime.
type cache struct {
	mu    sync.Mutex
	cap   int
	ttl   time.Duration // 0: entries never expire by age
	ll    *list.List    // front = most recent; values are *cacheEntry
	items map[string]*list.Element
}

// cacheEntry is kept to exactly 64 bytes — key header 16 + val 40 +
// expiresNs 8 — so a probe touches one cache line. The expiry deadline
// is unix nanos rather than a time.Time (24 bytes) for that reason.
type cacheEntry struct {
	key       string
	val       lookupResult
	expiresNs int64 // 0: never
}

// newCache returns an LRU holding up to capacity entries; capacity <= 0
// returns nil, and a nil cache misses on every get and drops every put.
func newCache(capacity int, ttl time.Duration) *cache {
	if capacity <= 0 {
		return nil
	}
	return &cache{cap: capacity, ttl: ttl, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

func (c *cache) get(key string) (lookupResult, bool) {
	if c == nil {
		return lookupResult{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return lookupResult{}, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.expiresNs != 0 && time.Now().UnixNano() > ent.expiresNs {
		c.ll.Remove(el)
		delete(c.items, key)
		return lookupResult{}, false
	}
	c.ll.MoveToFront(el)
	return ent.val, true
}

func (c *cache) put(key string, val lookupResult) {
	if c == nil {
		return
	}
	var expires int64
	if c.ttl > 0 {
		expires = time.Now().Add(c.ttl).UnixNano()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.val = val
		ent.expiresNs = expires
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val, expiresNs: expires})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// getBatch probes the cache for every owner under one epoch, filling
// answers[i] for each present entry and returning the hit count. It
// takes the lock once for the whole batch and builds lookup keys in a
// reused buffer (a map probe via string([]byte) does not allocate), so
// the per-owner cost of a warm batch is one map lookup plus one row
// write — this is the fast path the batched lookup pipeline exists for,
// and why it writes BatchAnswer rows directly instead of handing values
// through a callback. Unlike get, a batch probe does not promote entries
// to the LRU front: splicing the list (and its GC write barriers) per
// row costs more than the whole probe, and a bulk scan refreshing 64
// entries at once would crowd out genuinely hot single lookups anyway.
// Expired entries are evicted and reported as misses, exactly like get.
func (c *cache) getBatch(epoch uint64, owners []string, answers []BatchAnswer) (hits int) {
	if c == nil {
		return 0
	}
	keyBuf := strconv.AppendUint(make([]byte, 0, 64), epoch, 10)
	keyBuf = append(keyBuf, 0)
	prefixLen := len(keyBuf)
	var nowNs int64
	if c.ttl > 0 {
		nowNs = time.Now().UnixNano()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, owner := range owners {
		keyBuf = append(keyBuf[:prefixLen], owner...)
		el, ok := c.items[string(keyBuf)]
		if !ok {
			continue
		}
		ent := el.Value.(*cacheEntry)
		if ent.expiresNs != 0 && nowNs > ent.expiresNs {
			c.ll.Remove(el)
			delete(c.items, ent.key)
			continue
		}
		hits++
		a := &answers[i]
		a.Owner = owner
		a.Found = !ent.val.notFound
		a.Providers = ent.val.providers
		a.Epoch = ent.val.epoch
		a.Cached = true
		a.Err = nil // answers may be a reused buffer
	}
	return hits
}

// cachePut is one pending putBatch insertion.
type cachePut struct {
	key string
	val lookupResult
}

// putBatch inserts every entry under one lock acquisition; semantics per
// entry match put.
func (c *cache) putBatch(puts []cachePut) {
	if c == nil || len(puts) == 0 {
		return
	}
	var expires int64
	if c.ttl > 0 {
		expires = time.Now().Add(c.ttl).UnixNano()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range puts {
		if el, ok := c.items[p.key]; ok {
			ent := el.Value.(*cacheEntry)
			ent.val = p.val
			ent.expiresNs = expires
			c.ll.MoveToFront(el)
			continue
		}
		c.items[p.key] = c.ll.PushFront(&cacheEntry{key: p.key, val: p.val, expiresNs: expires})
		if c.ll.Len() > c.cap {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
		}
	}
}

// purgeOtherEpochs drops every entry not keyed by epoch e. Called when the
// gateway learns the fleet advanced: the orphaned entries would never be
// read again (the key prefix moved on), so evicting them immediately frees
// their LRU slots for current-epoch answers instead of letting stale
// ballast age out one eviction at a time.
func (c *cache) purgeOtherEpochs(e uint64) {
	if c == nil {
		return
	}
	prefix := strconv.FormatUint(e, 10) + "\x00"
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		ent := el.Value.(*cacheEntry)
		if !strings.HasPrefix(ent.key, prefix) {
			c.ll.Remove(el)
			delete(c.items, ent.key)
		}
	}
}

// len returns the live entry count.
func (c *cache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flight deduplicates concurrent lookups of the same key: one caller (the
// leader) does the upstream work, everyone else waits for its result. A
// thundering herd on a hot owner becomes one upstream request.
type flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  lookupResult
	err  error
}

func newFlight() *flight {
	return &flight{calls: make(map[string]*flightCall)}
}

// do runs fn for key, deduplicating concurrent callers. Followers honor
// their own context while waiting: a follower whose ctx dies stops
// waiting without affecting the leader. shared reports whether the
// result came from another caller's execution.
func (f *flight) do(ctx context.Context, key string, fn func() (lookupResult, error)) (val lookupResult, shared bool, err error) {
	f.mu.Lock()
	if call, ok := f.calls[key]; ok {
		f.mu.Unlock()
		select {
		case <-call.done:
			return call.val, true, call.err
		case <-ctx.Done():
			return lookupResult{}, true, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	f.calls[key] = call
	f.mu.Unlock()

	call.val, call.err = fn()
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(call.done)
	return call.val, false, call.err
}
