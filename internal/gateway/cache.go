package gateway

import (
	"container/list"
	"context"
	"sync"
)

// lookupResult is one cacheable QueryPPI outcome. Caching responses at
// the gateway is safe because M' is public by construction: the Eq. 2
// false-positive noise is baked into the index at publication time, not
// sampled per query, so every lookup of an owner returns the same
// provider list until a new index version is published. "Owner unknown"
// is equally stable, so negative results are cached too.
type lookupResult struct {
	providers []int
	notFound  bool
}

// cache is a fixed-capacity LRU of lookupResults keyed by owner name.
// All methods are safe for concurrent use.
type cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val lookupResult
}

// newCache returns an LRU holding up to capacity entries; capacity <= 0
// returns nil, and a nil cache misses on every get and drops every put.
func newCache(capacity int) *cache {
	if capacity <= 0 {
		return nil
	}
	return &cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

func (c *cache) get(key string) (lookupResult, bool) {
	if c == nil {
		return lookupResult{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return lookupResult{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *cache) put(key string, val lookupResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the live entry count.
func (c *cache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flight deduplicates concurrent lookups of the same key: one caller (the
// leader) does the upstream work, everyone else waits for its result. A
// thundering herd on a hot owner becomes one upstream request.
type flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  lookupResult
	err  error
}

func newFlight() *flight {
	return &flight{calls: make(map[string]*flightCall)}
}

// do runs fn for key, deduplicating concurrent callers. Followers honor
// their own context while waiting: a follower whose ctx dies stops
// waiting without affecting the leader. shared reports whether the
// result came from another caller's execution.
func (f *flight) do(ctx context.Context, key string, fn func() (lookupResult, error)) (val lookupResult, shared bool, err error) {
	f.mu.Lock()
	if call, ok := f.calls[key]; ok {
		f.mu.Unlock()
		select {
		case <-call.done:
			return call.val, true, call.err
		case <-ctx.Done():
			return lookupResult{}, true, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	f.calls[key] = call
	f.mu.Unlock()

	call.val, call.err = fn()
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(call.done)
	return call.val, false, call.err
}
