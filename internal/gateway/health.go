package gateway

import (
	"context"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpapi"
	"repro/internal/metrics"
)

// replica is one serving endpoint of a shard.
type replica struct {
	base   string
	client *httpapi.Client
	up     atomic.Bool
	upG    *metrics.Gauge // eppi_gateway_replica_up{shard,replica}
}

// shardState is the gateway's view of one column shard: its replicas plus
// a rotation counter spreading load across the healthy ones.
type shardState struct {
	id       int
	replicas []*replica
	next     atomic.Uint32
}

// candidates returns the shard's replicas in try-order: healthy replicas
// first (rotated round-robin so load spreads), then unhealthy ones as a
// last resort — a probe verdict may be stale, and a desperate attempt
// beats a guaranteed failure.
func (s *shardState) candidates() []*replica {
	healthy := make([]*replica, 0, len(s.replicas))
	var down []*replica
	for _, r := range s.replicas {
		if r.up.Load() {
			healthy = append(healthy, r)
		} else {
			down = append(down, r)
		}
	}
	if len(healthy) > 1 {
		rot := int(s.next.Add(1)) % len(healthy)
		healthy = append(healthy[rot:], healthy[:rot]...)
	}
	return append(healthy, down...)
}

// probeTimeout bounds one health probe round-trip.
const probeTimeout = time.Second

// probeLoop re-checks every replica of every shard each period until ctx
// is cancelled. Transitions are logged; the per-replica up gauge tracks
// the current verdict for /v1/metrics.
func (g *Gateway) probeLoop(ctx context.Context, period time.Duration) {
	defer g.probeWG.Done()
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			g.probeOnce(ctx)
		}
	}
}

// probeOnce probes every replica of every shard concurrently.
func (g *Gateway) probeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, st := range g.shards {
		for _, r := range st.replicas {
			wg.Add(1)
			go func(st *shardState, r *replica) {
				defer wg.Done()
				probeCtx, cancel := context.WithTimeout(ctx, probeTimeout)
				defer cancel()
				hz, err := r.client.Healthz(probeCtx)
				ok := err == nil
				if ok && hz.Shard != nil && (hz.Shard.ID != st.id || hz.Shard.Of != len(g.shards)) {
					// The node answers but serves the wrong slice of the
					// index — routing to it would return wrong results.
					ok = false
					g.logger.Warn("replica serves wrong shard",
						slog.String("replica", r.base),
						slog.Int("want_shard", st.id),
						slog.Int("have_shard", hz.Shard.ID))
				}
				if ok {
					// The probe doubles as the epoch signal: a gateway whose
					// cache covers every hot owner may serve hits for minutes
					// without an upstream call, and would otherwise never
					// learn the fleet swapped to a new publication.
					g.observeEpoch(hz.Epoch)
				}
				was := r.up.Swap(ok)
				if was != ok {
					if ok {
						g.logger.Info("replica up", slog.Int("shard", st.id), slog.String("replica", r.base))
					} else {
						g.logger.Warn("replica down", slog.Int("shard", st.id), slog.String("replica", r.base),
							slog.Any("error", err))
					}
				}
				if ok {
					r.upG.Set(1)
				} else {
					r.upG.Set(0)
				}
			}(st, r)
		}
	}
	wg.Wait()
}

// latencyWindow tracks recent upstream lookup latencies and serves a
// percentile of them — the adaptive hedge trigger. A fixed-size ring
// keeps it O(1) per sample; percentile queries copy and sort the window
// (256 entries, off the hot path: once per lookup that actually waits).
type latencyWindow struct {
	mu     sync.Mutex
	ring   [256]time.Duration
	filled int
	next   int
}

func (l *latencyWindow) observe(d time.Duration) {
	l.mu.Lock()
	l.ring[l.next] = d
	l.next = (l.next + 1) % len(l.ring)
	if l.filled < len(l.ring) {
		l.filled++
	}
	l.mu.Unlock()
}

// percentile returns the p-quantile (0 < p < 1) of the window, or def
// when too few samples have been seen to trust it.
func (l *latencyWindow) percentile(p float64, def time.Duration) time.Duration {
	l.mu.Lock()
	if l.filled < 16 {
		l.mu.Unlock()
		return def
	}
	buf := make([]time.Duration, l.filled)
	copy(buf, l.ring[:l.filled])
	l.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(p * float64(len(buf)))
	if idx >= len(buf) {
		idx = len(buf) - 1
	}
	return buf[idx]
}

// replicaLabel renders a replica index for metric labels.
func replicaLabel(i int) string { return strconv.Itoa(i) }
