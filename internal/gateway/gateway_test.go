package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/index"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestCacheLRU(t *testing.T) {
	c := newCache(2, 0)
	c.put("a", lookupResult{providers: []int{1}})
	c.put("b", lookupResult{providers: []int{2}})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", lookupResult{providers: []int{3}}) // evicts b (a was touched)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past capacity")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being most recently used")
	}
	if got, ok := c.get("c"); !ok || got.providers[0] != 3 {
		t.Fatalf("c = %+v, %v", got, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestCacheDisabled(t *testing.T) {
	var c *cache = newCache(0, 0)
	c.put("a", lookupResult{})
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache has length")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := newCache(4, 25*time.Millisecond)
	c.put("a", lookupResult{providers: []int{1}})
	if _, ok := c.get("a"); !ok {
		t.Fatal("fresh entry missing")
	}
	time.Sleep(40 * time.Millisecond)
	if _, ok := c.get("a"); ok {
		t.Fatal("expired entry served")
	}
	if c.len() != 0 {
		t.Fatalf("len after expiry = %d, want 0 (get evicts)", c.len())
	}
	// A re-put after expiry is fresh again.
	c.put("a", lookupResult{providers: []int{2}})
	if got, ok := c.get("a"); !ok || got.providers[0] != 2 {
		t.Fatalf("re-put entry = %+v, %v", got, ok)
	}
}

func TestCachePurgeOtherEpochs(t *testing.T) {
	c := newCache(8, 0)
	c.put(cacheKey(1, "alice"), lookupResult{epoch: 1})
	c.put(cacheKey(1, "bob"), lookupResult{epoch: 1, notFound: true})
	c.put(cacheKey(2, "alice"), lookupResult{epoch: 2})
	c.purgeOtherEpochs(2)
	if c.len() != 1 {
		t.Fatalf("len after purge = %d, want 1", c.len())
	}
	if _, ok := c.get(cacheKey(1, "alice")); ok {
		t.Fatal("epoch-1 entry survived the purge")
	}
	if _, ok := c.get(cacheKey(1, "bob")); ok {
		t.Fatal("epoch-1 negative entry survived the purge")
	}
	if _, ok := c.get(cacheKey(2, "alice")); !ok {
		t.Fatal("current-epoch entry purged")
	}
}

func TestCacheKeyScopesByEpoch(t *testing.T) {
	// Same owner, different epochs: distinct entries. An owner name that
	// starts with digits must not collide with another epoch's key space.
	c := newCache(8, 0)
	c.put(cacheKey(1, "alice"), lookupResult{epoch: 1, providers: []int{1}})
	c.put(cacheKey(2, "alice"), lookupResult{epoch: 2, providers: []int{2}})
	if got, _ := c.get(cacheKey(1, "alice")); len(got.providers) != 1 || got.providers[0] != 1 {
		t.Fatalf("epoch-1 entry = %+v", got)
	}
	if got, _ := c.get(cacheKey(2, "alice")); len(got.providers) != 1 || got.providers[0] != 2 {
		t.Fatalf("epoch-2 entry = %+v", got)
	}
	if cacheKey(1, "2alice") == cacheKey(12, "alice") {
		t.Fatal("epoch/owner boundary ambiguous")
	}
}

func TestFlightDeduplicates(t *testing.T) {
	f := newFlight()
	var calls atomic.Int32
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, sh, err := f.do(context.Background(), "alice", func() (lookupResult, error) {
				calls.Add(1)
				<-release
				return lookupResult{providers: []int{7}}, nil
			})
			if err != nil || len(res.providers) != 1 {
				t.Errorf("do = %+v, %v", res, err)
			}
			shared[i] = sh
		}(i)
	}
	// Let the followers pile up behind the leader, then release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	leaders := 0
	for _, sh := range shared {
		if !sh {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
}

func TestFlightFollowerHonorsContext(t *testing.T) {
	f := newFlight()
	release := make(chan struct{})
	defer close(release)
	go f.do(context.Background(), "alice", func() (lookupResult, error) {
		<-release
		return lookupResult{}, nil
	})
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := f.do(ctx, "alice", func() (lookupResult, error) {
		t.Error("follower ran the function")
		return lookupResult{}, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower err = %v, want deadline", err)
	}
}

func TestGateShedsWhenFull(t *testing.T) {
	g := newGate(1, 10*time.Millisecond)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := g.acquire(context.Background())
	if !errors.Is(err, errShed) {
		t.Fatalf("err = %v, want errShed", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("shed verdict was not fast")
	}
	g.release()
	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("post-release acquire: %v", err)
	}
}

func TestLatencyWindowPercentile(t *testing.T) {
	l := &latencyWindow{}
	def := 123 * time.Millisecond
	if got := l.percentile(0.95, def); got != def {
		t.Fatalf("empty window percentile = %v, want default", got)
	}
	for i := 1; i <= 100; i++ {
		l.observe(time.Duration(i) * time.Millisecond)
	}
	p95 := l.percentile(0.95, def)
	if p95 < 90*time.Millisecond || p95 > 100*time.Millisecond {
		t.Fatalf("p95 = %v", p95)
	}
}

// buildShardedFixture constructs a real index, partitions it, and serves
// each shard over httptest; returns the full index (for ground truth),
// the owner names, and per-shard replica URL lists.
func buildShardedFixture(t testing.TB, providers, owners, shards, replicasPer int) (*index.Server, []string, [][]string, [][]*httptest.Server) {
	t.Helper()
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: providers, Owners: owners, Exponent: 1.1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Construct(d.Matrix, d.Eps, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := index.NewServer(res.Published, d.Names)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := shard.Partition(res.Published, d.Names, shards)
	if err != nil {
		t.Fatal(err)
	}
	bases := make([][]string, shards)
	servers := make([][]*httptest.Server, shards)
	for k, srv := range parts {
		for i := 0; i < replicasPer; i++ {
			// Each replica gets its own index server so per-replica query
			// counters stay independent, like distinct processes would.
			mat := srv.PublishedMatrix()
			rep, err := index.NewServer(mat, srv.Names())
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.SetShard(k, shards); err != nil {
				t.Fatal(err)
			}
			h, err := httpapi.NewHandler(rep)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(h)
			t.Cleanup(ts.Close)
			bases[k] = append(bases[k], ts.URL)
			servers[k] = append(servers[k], ts)
		}
	}
	return full, d.Names, bases, servers
}

// fastClient returns an upstream client with short timeouts and minimal
// backoff so failover tests stay fast.
func fastClient() *http.Client {
	return &http.Client{Timeout: 2 * time.Second}
}

func TestGatewayLookupMatchesFullIndex(t *testing.T) {
	full, names, bases, _ := buildShardedFixture(t, 20, 30, 3, 1)
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, name := range names {
		want, err := full.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.Lookup(context.Background(), name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("Lookup(%q) = %v, full index says %v", name, got, want)
		}
	}
}

func TestGatewayLookupUnknownOwner(t *testing.T) {
	_, _, bases, _ := buildShardedFixture(t, 10, 12, 2, 1)
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	_, err = g.Lookup(context.Background(), "owner://no-such-identity")
	if !errors.Is(err, httpapi.ErrOwnerNotFound) {
		t.Fatalf("err = %v, want ErrOwnerNotFound", err)
	}
	// Negative results are cached: the second miss must be a cache hit.
	reg := metrics.NewRegistry()
	g2, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	for i := 0; i < 2; i++ {
		if _, err := g2.Lookup(context.Background(), "owner://no-such-identity"); !errors.Is(err, httpapi.ErrOwnerNotFound) {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	if hits := reg.Counter("eppi_gateway_cache_hits_total", "").Value(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1 (negative result cached)", hits)
	}
}

func TestGatewayCacheServesRepeats(t *testing.T) {
	_, names, bases, servers := buildShardedFixture(t, 15, 20, 2, 1)
	reg := metrics.NewRegistry()
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	owner := names[0]
	first, err := g.Lookup(context.Background(), owner)
	if err != nil {
		t.Fatal(err)
	}
	// Kill every upstream: a warm cache must still answer.
	for _, reps := range servers {
		for _, ts := range reps {
			ts.Close()
		}
	}
	second, err := g.Lookup(context.Background(), owner)
	if err != nil {
		t.Fatalf("warm-cache lookup after upstream death: %v", err)
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("cached answer changed: %v vs %v", first, second)
	}
	if hits := reg.Counter("eppi_gateway_cache_hits_total", "").Value(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
}

func TestGatewayFailoverToReplica(t *testing.T) {
	full, names, bases, servers := buildShardedFixture(t, 15, 20, 2, 2)
	reg := metrics.NewRegistry()
	g, err := New(Config{
		Shards: bases, Client: fastClient(), ProbePeriod: -1,
		CacheSize: -1, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	// Kill replica 0 of every shard; lookups must fail over to replica 1.
	for _, reps := range servers {
		reps[0].Close()
	}
	for _, name := range names {
		want, err := full.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.Lookup(context.Background(), name)
		if err != nil {
			t.Fatalf("Lookup(%q) with primary dead: %v", name, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("Lookup(%q) = %v, want %v", name, got, want)
		}
	}
	if fo := reg.Counter("eppi_gateway_failovers_total", "").Value(); fo == 0 {
		t.Fatal("no failovers counted despite dead primaries")
	}
}

func TestGatewayAllReplicasDead(t *testing.T) {
	_, names, bases, servers := buildShardedFixture(t, 10, 12, 2, 1)
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, reps := range servers {
		for _, ts := range reps {
			ts.Close()
		}
	}
	if _, err := g.Lookup(context.Background(), names[0]); err == nil {
		t.Fatal("lookup with every replica dead succeeded")
	}
}

func TestGatewayHedgeFiresOnSlowPrimary(t *testing.T) {
	// One replica is a slow stub (answers 503 after 300ms); the other is
	// the real shard server. Replica rotation alternates which one a
	// lookup tries first, so across a handful of lookups with a 10ms
	// fixed hedge trigger, the slow-first ones must hedge to the fast
	// replica and come back quickly, counting a hedge and a hedge win.
	_, names, bases, _ := buildShardedFixture(t, 10, 12, 1, 2)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(300 * time.Millisecond):
		case <-r.Context().Done():
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer slow.Close()
	cfg := [][]string{{slow.URL, bases[0][1]}}
	reg := metrics.NewRegistry()
	g, err := New(Config{
		Shards: cfg, Client: fastClient(), ProbePeriod: -1, CacheSize: -1,
		HedgeAfter: 10 * time.Millisecond, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i := 0; i < 4; i++ {
		start := time.Now()
		if _, err := g.Lookup(context.Background(), names[i]); err != nil {
			t.Fatalf("hedged lookup %d: %v", i, err)
		}
		if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
			t.Fatalf("lookup %d took %v; hedge did not rescue the tail", i, elapsed)
		}
	}
	if reg.Counter("eppi_gateway_hedges_total", "").Value() == 0 {
		t.Fatal("no hedge fired across slow-first lookups")
	}
	if reg.Counter("eppi_gateway_hedge_wins_total", "").Value() == 0 {
		t.Fatal("hedge answered first but no win was counted")
	}
}

func TestGatewaySearchMergesAllShards(t *testing.T) {
	full, _, bases, _ := buildShardedFixture(t, 15, 20, 3, 1)
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got, err := g.SearchAll(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := full.Search(context.Background(), "", 0)
	if len(got) != len(want) {
		t.Fatalf("search returned %d owners, full index has %d", len(got), len(want))
	}
	seen := map[string]bool{}
	for _, m := range got {
		seen[m.Owner] = true
	}
	for _, m := range want {
		if !seen[m.Owner] {
			t.Fatalf("owner %q missing from fan-out search", m.Owner)
		}
	}
	// Merged results are owner-sorted.
	for i := 1; i < len(got); i++ {
		if got[i-1].Owner > got[i].Owner {
			t.Fatal("merged search results not sorted")
		}
	}
}

func TestGatewayShedsUnderOverload(t *testing.T) {
	// One admitted slot and a slow upstream: the second concurrent query
	// must be shed with 503 + Retry-After while the first is in flight.
	block := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
		json.NewEncoder(w).Encode(httpapi.QueryResponse{Owner: "x", Providers: []int{0}})
	}))
	defer slow.Close()
	reg := metrics.NewRegistry()
	g, err := New(Config{
		Shards: [][]string{{slow.URL}}, Client: fastClient(), ProbePeriod: -1,
		CacheSize: -1, MaxInFlight: 1, QueueWait: 20 * time.Millisecond, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()
	// Unblock the slow upstream before gw.Close drains connections.
	defer close(block)

	started := make(chan struct{})
	go func() {
		close(started)
		http.Get(gw.URL + "/v1/query?owner=a")
	}()
	<-started
	time.Sleep(30 * time.Millisecond) // let the first request occupy the slot
	resp, err := http.Get(gw.URL + "/v1/query?owner=b")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if reg.Counter("eppi_gateway_shed_total", "").Value() == 0 {
		t.Fatal("shed not counted")
	}
	// Observability stays reachable under overload.
	mresp, err := http.Get(gw.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics under overload = %d", mresp.StatusCode)
	}
}

func TestGatewayHealthProbeMarksDownReplica(t *testing.T) {
	_, _, bases, servers := buildShardedFixture(t, 10, 12, 1, 2)
	g, err := New(Config{
		Shards: bases, Client: fastClient(),
		ProbePeriod: 20 * time.Millisecond, CacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	servers[0][0].Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if !g.shards[0].replicas[0].up.Load() && g.shards[0].replicas[1].up.Load() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g.shards[0].replicas[0].up.Load() {
		t.Fatal("probe never marked the dead replica down")
	}
	if !g.shards[0].replicas[1].up.Load() {
		t.Fatal("probe marked the live replica down")
	}
	// Healthz reflects the probe verdicts.
	gw := httptest.NewServer(g)
	defer gw.Close()
	resp, err := http.Get(gw.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz GatewayHealthz
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Replicas[0][0] != "down" || hz.Replicas[0][1] != "up" {
		t.Fatalf("healthz = %+v", hz)
	}
}

func TestGatewayProbeRejectsWrongShard(t *testing.T) {
	// A node serving shard 1/2 configured into shard 0's replica list must
	// be marked down by the probe: wrong answers are worse than none.
	_, _, bases, _ := buildShardedFixture(t, 10, 12, 2, 1)
	misconfigured := [][]string{{bases[1][0]}, {bases[1][0]}}
	g, err := New(Config{
		Shards: misconfigured, Client: fastClient(),
		ProbePeriod: 20 * time.Millisecond, CacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if !g.shards[0].replicas[0].up.Load() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g.shards[0].replicas[0].up.Load() {
		t.Fatal("probe accepted a replica serving the wrong shard")
	}
	if !g.shards[1].replicas[0].up.Load() {
		t.Fatal("probe rejected the correctly-configured replica")
	}
}

func TestGatewayTraceRecordsFetchAndUpstreamSpans(t *testing.T) {
	_, names, bases, _ := buildShardedFixture(t, 10, 12, 1, 1)
	gwTracer := trace.New(8)
	g, err := New(Config{Shards: bases, Client: fastClient(), ProbePeriod: -1, Tracer: gwTracer, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()
	resp, err := http.Get(gw.URL + "/v1/query?owner=" + url.QueryEscape(names[0]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	if gwTracer.Len() == 0 {
		t.Fatal("gateway recorded no trace")
	}
	tr := gwTracer.Recent()[0]
	var sawFetch, sawUpstream bool
	for _, sp := range tr.Spans {
		switch sp.Name {
		case "gateway.fetch":
			sawFetch = true
		case "gateway.upstream":
			sawUpstream = true
		}
	}
	if !sawFetch || !sawUpstream {
		t.Fatalf("gateway trace missing fetch/upstream spans: %+v", tr.Spans)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no shards accepted")
	}
	if _, err := New(Config{Shards: [][]string{{}}}); err == nil {
		t.Error("empty replica list accepted")
	}
}
