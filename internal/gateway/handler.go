package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/audit"
	"repro/internal/httpapi"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/trace"
)

// gate is the load-shedding admission control: a bounded in-flight
// semaphore with a queue-wait deadline. A request that cannot be
// admitted within the wait is shed — the gateway answers 503 fast
// instead of queueing into collapse.
type gate struct {
	sem  chan struct{}
	wait time.Duration
}

func newGate(maxInFlight int, wait time.Duration) *gate {
	return &gate{sem: make(chan struct{}, maxInFlight), wait: wait}
}

// errShed reports an admission-gate rejection.
var errShed = errors.New("gateway: overloaded, request shed")

// acquire admits the request or sheds it. The caller must release() on
// every nil return.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.sem <- struct{}{}:
		return nil
	default:
	}
	timer := time.NewTimer(g.wait)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-timer.C:
		return errShed
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gate) release() { <-g.sem }

// inFlight returns the currently admitted request count.
func (g *gate) inFlight() int { return len(g.sem) }

// GatewayHealthz is the gateway's /v1/healthz payload: per-shard replica
// liveness as last probed. Status is "ok" while every shard has at least
// one live replica, "degraded" otherwise.
type GatewayHealthz struct {
	Status   string     `json:"status"`
	Shards   int        `json:"shards"`
	Epoch    uint64     `json:"epoch"`    // highest upstream-reported epoch
	Replicas [][]string `json:"replicas"` // [shard][replica] = "up" | "down"
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// buildMux wires the gateway routes. Admission control covers the query
// paths (/v1/query, /v1/search); the observability endpoints stay
// reachable under overload — an operator debugging a shedding gateway
// needs /v1/metrics most exactly then.
func (g *Gateway) buildMux() {
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("GET /v1/query", g.wrap("query", true, g.handleQuery))
	g.mux.HandleFunc("POST /v1/query/batch", g.wrap("batch", true, g.handleBatch))
	g.mux.HandleFunc("GET /v1/search", g.wrap("search", true, g.handleSearch))
	g.mux.HandleFunc("GET /v1/stats", g.wrap("stats", false, g.handleStats))
	g.mux.HandleFunc("GET /v1/privacy", g.wrap("privacy", false, g.handlePrivacy))
	g.mux.HandleFunc("GET /v1/healthz", g.wrap("healthz", false, g.handleHealthz))
	if g.reg != nil {
		g.mux.HandleFunc("GET /v1/metrics", g.instrument("metrics", g.handleMetrics))
	}
	if g.tracer != nil {
		g.mux.HandleFunc("GET /v1/traces", g.instrument("traces", g.handleTraces))
	}
}

// wrap layers admission control (when gated), tracing and metrics around
// a route handler, mirroring the shard-node middleware stack so gateway
// and shard expositions read alike.
func (g *Gateway) wrap(route string, gated bool, fn http.HandlerFunc) http.HandlerFunc {
	h := g.traced(route, fn)
	if gated {
		h = g.admitted(h)
	}
	return g.instrument(route, h)
}

// admitted applies the load-shedding gate.
func (g *Gateway) admitted(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := g.gate.acquire(r.Context()); err != nil {
			if errors.Is(err, errShed) {
				g.inst.sheds.Inc()
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
				return
			}
			// Client went away while queued.
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
			return
		}
		g.inst.inflightG.Set(float64(g.gate.inFlight()))
		defer func() {
			g.gate.release()
			g.inst.inflightG.Set(float64(g.gate.inFlight()))
		}()
		fn(w, r)
	}
}

// traced opens the per-request root span (joining a caller's trace when
// the propagation headers are present) and threads it through the
// request context, so the fetch/upstream child spans hang underneath and
// upstream shard calls carry the same trace id.
func (g *Gateway) traced(route string, fn http.HandlerFunc) http.HandlerFunc {
	if g.tracer == nil {
		return fn
	}
	name := "gateway." + route
	return func(w http.ResponseWriter, r *http.Request) {
		var ctx context.Context
		var sp *trace.Span
		if tid, ok := trace.ParseID(r.Header.Get(httpapi.TraceIDHeader)); ok && tid != 0 {
			parent, _ := trace.ParseID(r.Header.Get(httpapi.ParentSpanHeader))
			ctx, sp = g.tracer.StartRemote(r.Context(), name, trace.TraceID(tid), trace.SpanID(parent))
		} else {
			ctx, sp = g.tracer.StartRoot(r.Context(), name)
		}
		sp.Set("route", route)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r.WithContext(ctx))
		sp.SetInt("status", sw.code)
		sp.End()
	}
}

// statusClasses mirror the httpapi middleware labels.
var statusClasses = [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}

// instrument records per-route latency and status classes, exactly like
// the shard-node middleware.
func (g *Gateway) instrument(route string, fn http.HandlerFunc) http.HandlerFunc {
	if g.reg == nil {
		return fn
	}
	routeLabel := metrics.L("route", route)
	latency := g.reg.Histogram("eppi_gateway_request_seconds",
		"Gateway request latency by route.", metrics.DefDurationBuckets, routeLabel)
	classes := make(map[string]*metrics.Counter, 4)
	for _, class := range statusClasses[1:] {
		classes[class] = g.reg.Counter("eppi_gateway_requests_total",
			"Gateway requests by route and status class.", routeLabel, metrics.L("class", class))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		fn(sw, r)
		latency.ObserveSince(start)
		if cls := sw.code / 100; cls >= 1 && cls <= 5 {
			classes[statusClasses[cls]].Inc()
		}
	}
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

type errorResponse struct {
	Error string `json:"error"`
}

// auditRecord emits one audit entry for a front-door request. The
// g.sink == nil check at every call site keeps the disabled path free
// of even the Entry construction.
func (g *Gateway) auditRecord(r *http.Request, route, owner string, shardID int, epoch uint64, results, status int) {
	var traceID string
	if sp := trace.FromContext(r.Context()); sp != nil {
		traceID = sp.TraceID().String()
	}
	g.sink.Record(audit.Entry{
		Route:   route,
		Owner:   owner,
		Shard:   shardID,
		Epoch:   epoch,
		Trace:   traceID,
		Results: results,
		Status:  status,
	})
}

func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	owner := r.URL.Query().Get("owner")
	if owner == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing owner parameter"})
		return
	}
	// Observe before the cache decision: a scanner probing hot identities
	// hits the cache most of the time, and those probes must still count.
	g.hot.Observe(owner)
	ownerShard := shard.For(owner, len(g.shards))
	res, cached, err := g.lookup(r.Context(), owner)
	if sp := trace.FromContext(r.Context()); sp != nil {
		sp.Set("cache", map[bool]string{true: "hit", false: "miss"}[cached])
	}
	if err != nil {
		if g.sink != nil {
			g.auditRecord(r, "query", owner, ownerShard, 0, -1, http.StatusBadGateway)
		}
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error()})
		return
	}
	// Stamp the epoch of the answer itself (a cache hit reports the epoch
	// it was fetched under, exactly like the shard node would have).
	w.Header().Set(httpapi.EpochHeader, strconv.FormatUint(res.epoch, 10))
	if res.notFound {
		if g.sink != nil {
			g.auditRecord(r, "query", owner, ownerShard, res.epoch, -1, http.StatusNotFound)
		}
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "owner not found: " + owner})
		return
	}
	providers := res.providers
	if providers == nil {
		providers = []int{}
	}
	if g.sink != nil {
		g.auditRecord(r, "query", owner, ownerShard, res.epoch, len(providers), http.StatusOK)
	}
	writeJSON(w, http.StatusOK, httpapi.QueryResponse{Owner: owner, Providers: providers})
}

// handleBatch is the gateway's POST /v1/query/batch: the whole batch is
// admitted (and shed) as one request, routed per shard by LookupBatch.
// The response is always 200 with per-owner rows — a missing owner or an
// unreachable shard degrades that row, never the batch. The epoch header
// carries the gateway's fleet view after the batch (each row's authoritative
// epoch is the snapshot of the sub-batch that answered it).
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, httpapi.MaxBatchBody)
	var req httpapi.BatchQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("batch body exceeds %d bytes", httpapi.MaxBatchBody)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad batch request body: " + err.Error()})
		return
	}
	if len(req.Owners) > httpapi.MaxBatchOwners {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("batch of %d owners exceeds the %d cap", len(req.Owners), httpapi.MaxBatchOwners)})
		return
	}
	// A scanner batching its probes must trip the hot-owner tracker and
	// leave an audit trail exactly like k single queries would.
	for _, owner := range req.Owners {
		g.hot.Observe(owner)
	}
	answers := g.LookupBatch(r.Context(), req.Owners)
	rows := make([]httpapi.BatchRow, len(answers))
	for i, ans := range answers {
		rows[i] = httpapi.BatchRow{Owner: ans.Owner, Found: ans.Found, Providers: ans.Providers}
		if rows[i].Providers == nil {
			rows[i].Providers = []int{}
		}
		if ans.Err != nil {
			rows[i].Error = ans.Err.Error()
		}
	}
	if g.sink != nil {
		for _, ans := range answers {
			ownerShard := shard.For(ans.Owner, len(g.shards))
			switch {
			case ans.Err != nil:
				g.auditRecord(r, "batch", ans.Owner, ownerShard, ans.Epoch, -1, http.StatusBadGateway)
			case !ans.Found:
				g.auditRecord(r, "batch", ans.Owner, ownerShard, ans.Epoch, -1, http.StatusNotFound)
			default:
				g.auditRecord(r, "batch", ans.Owner, ownerShard, ans.Epoch, len(ans.Providers), http.StatusOK)
			}
		}
	}
	w.Header().Set(httpapi.EpochHeader, strconv.FormatUint(g.Epoch(), 10))
	writeJSON(w, http.StatusOK, httpapi.BatchQueryResponse{Results: rows})
}

func (g *Gateway) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad limit parameter"})
			return
		}
		limit = n
	}
	matches, epoch, err := g.searchAll(r.Context(), q, limit)
	if err != nil {
		if g.sink != nil {
			// The search pattern goes in the Owner slot: substring probing
			// is the same exposure pattern as direct queries.
			g.auditRecord(r, "search", q, -1, 0, -1, http.StatusBadGateway)
		}
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error()})
		return
	}
	w.Header().Set(httpapi.EpochHeader, strconv.FormatUint(epoch, 10))
	if matches == nil {
		matches = []index.Match{}
	}
	if g.sink != nil {
		g.auditRecord(r, "search", q, -1, epoch, len(matches), http.StatusOK)
	}
	writeJSON(w, http.StatusOK, httpapi.SearchResponse{Results: matches})
}

// handlePrivacy serves the fleet-wide privacy view: the newest verified
// per-epoch report plus the gateway's own hot-owner flags. 404 only when
// no shard anywhere has a report — a partially-reporting fleet still
// answers, marked degraded.
func (g *Gateway) handlePrivacy(w http.ResponseWriter, r *http.Request) {
	agg := g.AggregatePrivacy(r.Context())
	if agg.Report == nil && len(agg.HotOwners) == 0 {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no privacy report published on any shard"})
		return
	}
	writeJSON(w, http.StatusOK, agg)
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	stats, _ := g.AggregateStats(r.Context())
	writeJSON(w, http.StatusOK, stats)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := GatewayHealthz{Status: "ok", Shards: len(g.shards), Epoch: g.Epoch(), Replicas: make([][]string, len(g.shards))}
	for k, st := range g.shards {
		live := 0
		states := make([]string, len(st.replicas))
		for i, rep := range st.replicas {
			if rep.up.Load() {
				states[i] = "up"
				live++
			} else {
				states[i] = "down"
			}
		}
		resp.Replicas[k] = states
		if live == 0 {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = g.reg.WriteTo(w)
}

func (g *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = g.tracer.WriteTrees(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = trace.WriteChrome(w, g.tracer.Recent())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
