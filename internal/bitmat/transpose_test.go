package bitmat

import (
	"math/rand"
	"testing"
)

// naiveTranspose64 is the obvious O(64²) per-bit reference.
func naiveTranspose64(m *[64]uint64) [64]uint64 {
	var out [64]uint64
	for r := 0; r < 64; r++ {
		for c := 0; c < 64; c++ {
			if m[r]>>c&1 == 1 {
				out[c] |= 1 << r
			}
		}
	}
	return out
}

func TestTranspose64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var m [64]uint64
		for i := range m {
			m[i] = rng.Uint64()
		}
		want := naiveTranspose64(&m)
		got := m
		Transpose64(&got)
		if got != want {
			t.Fatalf("trial %d: transpose mismatch", trial)
		}
	}
}

func TestTranspose64Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var m [64]uint64
		for i := range m {
			m[i] = rng.Uint64()
		}
		got := m
		Transpose64(&got)
		Transpose64(&got)
		if got != m {
			t.Fatalf("trial %d: double transpose is not the identity", trial)
		}
	}
}

func TestTranspose64SingleBits(t *testing.T) {
	// Every (r, c) unit matrix must land exactly at (c, r).
	for r := 0; r < 64; r += 7 {
		for c := 0; c < 64; c += 5 {
			var m [64]uint64
			m[r] = 1 << c
			Transpose64(&m)
			for i := range m {
				want := uint64(0)
				if i == c {
					want = 1 << r
				}
				if m[i] != want {
					t.Fatalf("unit (%d,%d): word %d = %#x, want %#x", r, c, i, m[i], want)
				}
			}
		}
	}
}

func BenchmarkTranspose64(b *testing.B) {
	var m [64]uint64
	rng := rand.New(rand.NewSource(3))
	for i := range m {
		m[i] = rng.Uint64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Transpose64(&m)
	}
}
