package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTripQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := rng.Intn(10)+1, rng.Intn(200)+1
		m := MustNew(rows, cols)
		for i := 0; i < 100; i++ {
			m.Set(rng.Intn(rows), rng.Intn(cols), rng.Intn(2) == 0)
		}
		raw, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		var back Matrix
		if err := back.UnmarshalBinary(raw); err != nil {
			return false
		}
		return m.Equal(&back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMarshalEmpty(t *testing.T) {
	m := MustNew(0, 0)
	raw, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Matrix
	if err := back.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if back.Rows() != 0 || back.Cols() != 0 {
		t.Fatalf("dims = %dx%d", back.Rows(), back.Cols())
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var m Matrix
	cases := [][]byte{
		nil,
		{1, 2, 3},
		[]byte("XXXX\x01\x00\x00\x00\x01\x00\x00\x00"),  // bad magic
		[]byte("BM1\n\x01\x00\x00\x00\x01\x00\x00\x00"), // truncated data
	}
	for i, raw := range cases {
		if err := m.UnmarshalBinary(raw); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestUnmarshalRejectsPaddingBits(t *testing.T) {
	m := MustNew(1, 5) // 5 columns → 59 padding bits in the word
	raw, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] |= 0x80 // set a padding bit
	var back Matrix
	if err := back.UnmarshalBinary(raw); err == nil {
		t.Fatal("padding-bit corruption accepted")
	}
}

func TestUnmarshalLengthMismatch(t *testing.T) {
	m := MustNew(2, 64)
	raw, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Matrix
	if err := back.UnmarshalBinary(raw[:len(raw)-8]); err == nil {
		t.Fatal("short payload accepted")
	}
	if err := back.UnmarshalBinary(append(raw, 0, 0, 0, 0, 0, 0, 0, 0)); err == nil {
		t.Fatal("long payload accepted")
	}
}
