// Package bitmat provides compact boolean matrices for the ε-PPI membership
// data: the private matrix M (providers × identities) and the published,
// noise-bearing matrix M'. Rows are providers, columns are identities,
// matching M(i, j) in the paper.
//
// The matrices are bitset-backed so that networks of 25,000 providers and
// millions of identities stay addressable in memory during experiments.
package bitmat

import (
	"fmt"
	"math/bits"
)

// Matrix is a dense boolean matrix with bitset rows.
type Matrix struct {
	rows, cols int
	words      int // words per row
	data       []uint64
}

// New returns a rows × cols zero matrix.
func New(rows, cols int) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("bitmat: negative dimensions %dx%d", rows, cols)
	}
	words := (cols + 63) / 64
	return &Matrix{
		rows:  rows,
		cols:  cols,
		words: words,
		data:  make([]uint64, rows*words),
	}, nil
}

// MustNew is New but panics on invalid dimensions; for tests and literals.
func MustNew(rows, cols int) *Matrix {
	m, err := New(rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows (providers).
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns (identities).
func (m *Matrix) Cols() int { return m.cols }

// Get returns the bit at (row, col).
func (m *Matrix) Get(row, col int) bool {
	m.check(row, col)
	w, b := m.idx(row, col)
	return m.data[w]>>b&1 == 1
}

// Set writes the bit at (row, col).
func (m *Matrix) Set(row, col int, v bool) {
	m.check(row, col)
	w, b := m.idx(row, col)
	if v {
		m.data[w] |= 1 << b
	} else {
		m.data[w] &^= 1 << b
	}
}

// Row returns a copy of one row as a boolean slice.
func (m *Matrix) Row(row int) []bool {
	m.check(row, 0)
	out := make([]bool, m.cols)
	for c := 0; c < m.cols; c++ {
		w, b := m.idx(row, c)
		out[c] = m.data[w]>>b&1 == 1
	}
	return out
}

// SetRow overwrites one row from a boolean slice of length Cols.
func (m *Matrix) SetRow(row int, vals []bool) error {
	if len(vals) != m.cols {
		return fmt.Errorf("bitmat: row length %d != cols %d", len(vals), m.cols)
	}
	m.check(row, 0)
	for c, v := range vals {
		m.Set(row, c, v)
	}
	return nil
}

// ColCount returns the number of set bits in column col — for the membership
// matrix this is the identity's absolute frequency (σ_j · m).
func (m *Matrix) ColCount(col int) int {
	m.check(0, col)
	count := 0
	for r := 0; r < m.rows; r++ {
		w, b := m.idx(r, col)
		count += int(m.data[w] >> b & 1)
	}
	return count
}

// RowCount returns the number of set bits in row `row` — the number of
// identities a provider claims (truthfully or falsely) to hold.
func (m *Matrix) RowCount(row int) int {
	m.check(row, 0)
	count := 0
	start := row * m.words
	for _, w := range m.data[start : start+m.words] {
		count += bits.OnesCount64(w)
	}
	return count
}

// ColOnes returns the row indices with a set bit in column col — for the
// published matrix this is exactly the QueryPPI result list.
func (m *Matrix) ColOnes(col int) []int {
	m.check(0, col)
	var out []int
	for r := 0; r < m.rows; r++ {
		w, b := m.idx(r, col)
		if m.data[w]>>b&1 == 1 {
			out = append(out, r)
		}
	}
	return out
}

// Count returns the total number of set bits.
func (m *Matrix) Count() int {
	count := 0
	for _, w := range m.data {
		count += bits.OnesCount64(w)
	}
	return count
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{rows: m.rows, cols: m.cols, words: m.words}
	out.data = make([]uint64, len(m.data))
	copy(out.data, m.data)
	return out
}

// Covers reports whether every set bit of other is also set in m. The
// published matrix M' must cover the private matrix M (truthful 1→1 rule),
// which guarantees 100% recall.
func (m *Matrix) Covers(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, w := range other.data {
		if w&^m.data[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports bitwise equality.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, w := range m.data {
		if w != other.data[i] {
			return false
		}
	}
	return true
}

// ColFalsePositiveRate returns, for column col, the fraction of published
// positives that are false given the private truth matrix: fp_j of the
// paper. It returns 0 when the published column has no positives.
func ColFalsePositiveRate(truth, published *Matrix, col int) (float64, error) {
	if truth.rows != published.rows || truth.cols != published.cols {
		return 0, fmt.Errorf("bitmat: dimension mismatch %dx%d vs %dx%d",
			truth.rows, truth.cols, published.rows, published.cols)
	}
	pub := 0
	falsePos := 0
	for r := 0; r < truth.rows; r++ {
		if published.Get(r, col) {
			pub++
			if !truth.Get(r, col) {
				falsePos++
			}
		}
	}
	if pub == 0 {
		return 0, nil
	}
	return float64(falsePos) / float64(pub), nil
}

func (m *Matrix) idx(row, col int) (word int, bit uint) {
	return row*m.words + col/64, uint(col % 64)
}

func (m *Matrix) check(row, col int) {
	if row < 0 || row >= m.rows || col < 0 || col >= m.cols {
		panic(fmt.Sprintf("bitmat: index (%d,%d) out of %dx%d", row, col, m.rows, m.cols))
	}
}
