package bitmat

import "testing"

// FuzzUnmarshalBinary hardens the wire decoder: arbitrary bytes must
// either round-trip faithfully or be rejected — never panic and never
// yield a matrix that re-encodes differently.
func FuzzUnmarshalBinary(f *testing.F) {
	seed := MustNew(3, 70)
	seed.Set(0, 0, true)
	seed.Set(2, 69, true)
	raw, err := seed.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte("BM1\n"))
	f.Add([]byte{})
	// Regression: zero rows with out-of-range cols used to decode but not
	// re-encode (dimension bounds differed between the two directions).
	f.Add([]byte("BM1\n\x00\x00\x00\x00000\xab"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Matrix
		if err := m.UnmarshalBinary(data); err != nil {
			return // rejection is fine
		}
		out, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted matrix failed to re-encode: %v", err)
		}
		if len(out) != len(data) {
			t.Fatalf("re-encoding changed length: %d vs %d", len(out), len(data))
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatalf("re-encoding differs at byte %d", i)
			}
		}
	})
}
