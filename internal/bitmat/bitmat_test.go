package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 5); err == nil {
		t.Error("negative rows accepted")
	}
	if _, err := New(5, -1); err == nil {
		t.Error("negative cols accepted")
	}
	m, err := New(0, 0)
	if err != nil || m.Rows() != 0 || m.Cols() != 0 {
		t.Errorf("empty matrix: %v %v", m, err)
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	m := MustNew(3, 130) // spans multiple words per row
	coords := [][2]int{{0, 0}, {0, 63}, {0, 64}, {1, 129}, {2, 65}, {2, 127}}
	for _, c := range coords {
		m.Set(c[0], c[1], true)
	}
	for _, c := range coords {
		if !m.Get(c[0], c[1]) {
			t.Errorf("bit (%d,%d) not set", c[0], c[1])
		}
	}
	if m.Count() != len(coords) {
		t.Errorf("Count = %d, want %d", m.Count(), len(coords))
	}
	m.Set(0, 64, false)
	if m.Get(0, 64) {
		t.Error("clear failed")
	}
	if !m.Get(0, 63) || m.Get(0, 65) {
		t.Error("clear disturbed neighbours")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := MustNew(2, 2)
	for _, fn := range []func(){
		func() { m.Get(2, 0) },
		func() { m.Get(0, 2) },
		func() { m.Get(-1, 0) },
		func() { m.Set(0, -1, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range access")
				}
			}()
			fn()
		}()
	}
}

func TestRowOps(t *testing.T) {
	m := MustNew(2, 5)
	if err := m.SetRow(0, []bool{true, false, true, false, true}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetRow(0, []bool{true}); err == nil {
		t.Fatal("short row accepted")
	}
	row := m.Row(0)
	want := []bool{true, false, true, false, true}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("Row[%d] = %v, want %v", i, row[i], want[i])
		}
	}
	if m.RowCount(0) != 3 {
		t.Errorf("RowCount = %d, want 3", m.RowCount(0))
	}
	if m.RowCount(1) != 0 {
		t.Errorf("RowCount empty = %d", m.RowCount(1))
	}
}

func TestColOps(t *testing.T) {
	m := MustNew(5, 3)
	m.Set(1, 2, true)
	m.Set(3, 2, true)
	m.Set(4, 0, true)
	if got := m.ColCount(2); got != 2 {
		t.Errorf("ColCount(2) = %d, want 2", got)
	}
	ones := m.ColOnes(2)
	if len(ones) != 2 || ones[0] != 1 || ones[1] != 3 {
		t.Errorf("ColOnes(2) = %v, want [1 3]", ones)
	}
	if got := m.ColOnes(1); got != nil {
		t.Errorf("ColOnes(1) = %v, want nil", got)
	}
}

func TestCloneEqual(t *testing.T) {
	m := MustNew(4, 100)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		m.Set(rng.Intn(4), rng.Intn(100), true)
	}
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(0, 0, !c.Get(0, 0))
	if m.Equal(c) {
		t.Fatal("mutating clone affected original equality")
	}
	other := MustNew(4, 99)
	if m.Equal(other) {
		t.Fatal("different dims reported equal")
	}
}

func TestCovers(t *testing.T) {
	truth := MustNew(3, 3)
	truth.Set(0, 0, true)
	truth.Set(2, 1, true)
	pub := truth.Clone()
	pub.Set(1, 1, true) // extra false positive is fine
	if !pub.Covers(truth) {
		t.Fatal("published should cover truth")
	}
	if truth.Covers(pub) {
		t.Fatal("truth should not cover published with extra bits")
	}
	pub2 := MustNew(3, 3)
	if pub2.Covers(truth) {
		t.Fatal("empty matrix covers nonempty truth")
	}
	if truth.Covers(MustNew(2, 3)) {
		t.Fatal("dimension mismatch covered")
	}
}

func TestColFalsePositiveRate(t *testing.T) {
	truth := MustNew(4, 1)
	truth.Set(0, 0, true)
	pub := truth.Clone()
	pub.Set(1, 0, true)
	pub.Set(2, 0, true)
	fp, err := ColFalsePositiveRate(truth, pub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fp != 2.0/3.0 {
		t.Fatalf("fp = %v, want 2/3", fp)
	}
	empty := MustNew(4, 1)
	fp, err = ColFalsePositiveRate(truth, empty, 0)
	if err != nil || fp != 0 {
		t.Fatalf("empty published: fp=%v err=%v", fp, err)
	}
	if _, err := ColFalsePositiveRate(truth, MustNew(3, 1), 0); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// Property: a random set of writes is faithfully read back and column/row
// counts agree with a reference map implementation.
func TestMatrixQuickAgainstMap(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := rng.Intn(20)+1, rng.Intn(200)+1
		m := MustNew(rows, cols)
		ref := make(map[[2]int]bool)
		for i := 0; i < 300; i++ {
			r, c, v := rng.Intn(rows), rng.Intn(cols), rng.Intn(2) == 0
			m.Set(r, c, v)
			ref[[2]int{r, c}] = v
		}
		for k, v := range ref {
			if m.Get(k[0], k[1]) != v {
				return false
			}
		}
		total := 0
		for c := 0; c < cols; c++ {
			total += m.ColCount(c)
		}
		return total == m.Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkColCount(b *testing.B) {
	m := MustNew(10000, 64)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		m.Set(rng.Intn(10000), rng.Intn(64), true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ColCount(i % 64)
	}
}
