package bitmat

// Transpose64 transposes a 64×64 bit matrix in place: word r holds row r,
// bit c of word r is cell (r, c). After the call bit r of word c is that
// cell — rows become columns.
//
// This is the butterfly network of Hacker's Delight §7-3 (mirrored for a
// bit-0-is-column-0 layout): log2(64) = 6 passes, pass k swapping
// 2^k × 2^k sub-blocks across the diagonal with a masked XOR trick, 32
// word operations per pass. The wide GMW evaluator uses it to slice 64
// instance-major share values into bit-plane words (one word per wire,
// one bit per instance) and to slice result planes back out, so the
// conversion costs ~400 word ops per 64-value block instead of 64×64
// single-bit inserts.
func Transpose64(m *[64]uint64) {
	low := uint64(0x00000000FFFFFFFF) // low half of each 2j-wide lane
	for j := 32; j != 0; j >>= 1 {
		// Visit every row whose j bit is clear; pair it with the row j
		// below. Swap the upper block's high bits with the lower block's
		// low bits (the two off-diagonal sub-blocks).
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (m[k] ^ (m[k+j] << j)) &^ low
			m[k] ^= t
			m[k+j] ^= t >> j
		}
		low ^= low << (j >> 1)
	}
}
