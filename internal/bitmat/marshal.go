package bitmat

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary serialization of matrices: the published M' travels from the
// constructing providers to the third-party PPI host, so it needs a stable
// wire format. Layout (little-endian):
//
//	magic "BM1\n" | uint32 rows | uint32 cols | data words (8 bytes each)

var magic = [4]byte{'B', 'M', '1', '\n'}

// ErrBadEncoding reports a malformed serialized matrix.
var ErrBadEncoding = errors.New("bitmat: malformed encoding")

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Matrix) MarshalBinary() ([]byte, error) {
	if m.rows > 1<<31-1 || m.cols > 1<<31-1 {
		return nil, fmt.Errorf("bitmat: matrix %dx%d too large to encode", m.rows, m.cols)
	}
	out := make([]byte, 0, 12+8*len(m.data))
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(m.rows))
	out = binary.LittleEndian.AppendUint32(out, uint32(m.cols))
	for _, w := range m.data {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Matrix) UnmarshalBinary(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("%w: %d bytes", ErrBadEncoding, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return fmt.Errorf("%w: bad magic", ErrBadEncoding)
	}
	rows := int(binary.LittleEndian.Uint32(data[4:8]))
	cols := int(binary.LittleEndian.Uint32(data[8:12]))
	// Mirror MarshalBinary's dimension bound so every accepted encoding
	// round-trips byte-identically.
	if rows > 1<<31-1 || cols > 1<<31-1 {
		return fmt.Errorf("%w: dimensions %dx%d out of range", ErrBadEncoding, rows, cols)
	}
	words := (cols + 63) / 64
	want := 12 + 8*rows*words
	if len(data) != want {
		return fmt.Errorf("%w: %d bytes for %dx%d matrix (want %d)", ErrBadEncoding, len(data), rows, cols, want)
	}
	fresh, err := New(rows, cols)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	for i := range fresh.data {
		fresh.data[i] = binary.LittleEndian.Uint64(data[12+8*i:])
	}
	// Reject set bits beyond the column count (they would corrupt counts).
	if tail := cols % 64; tail != 0 && words > 0 {
		mask := ^uint64(0) << uint(tail)
		for r := 0; r < rows; r++ {
			if fresh.data[r*words+words-1]&mask != 0 {
				return fmt.Errorf("%w: padding bits set in row %d", ErrBadEncoding, r)
			}
		}
	}
	*m = *fresh
	return nil
}
