package attack

import (
	"fmt"
	"math"

	"repro/internal/bitmat"
)

// Frequency-estimation attacks. The paper accepts that for *revealed*
// (non-hidden) identities the published β — which every provider learns —
// carries the identity's true frequency: Equation 3 is invertible in σ.
// For identities published as common (β = 1), no inversion exists and the
// observed column is saturated, so the estimator is blind — exactly the
// asymmetry the identity-mixing defence relies on. These estimators make
// that boundary measurable.

// InvertBasicBeta recovers σ from a basic-policy β (Equation 3 solved for
// σ): σ = 1 / (1 + 1/(β·(ε⁻¹−1))). Returns false when β or ε are outside
// the invertible range (β ≥ 1 hides the frequency; β ≤ 0 carries no
// information; ε ∈ {0,1} degenerates).
func InvertBasicBeta(beta, epsilon float64) (float64, bool) {
	if beta <= 0 || beta >= 1 || epsilon <= 0 || epsilon >= 1 {
		return 0, false
	}
	k := 1/epsilon - 1
	sigma := 1 / (1 + 1/(beta*k))
	if math.IsNaN(sigma) || sigma <= 0 || sigma >= 1 {
		return 0, false
	}
	return sigma, true
}

// EstimateFrequencyFromColumn estimates an identity's true frequency from
// its published column and the public β: the column holds f true positives
// plus ≈ β·(m−f) noise bits, so f̂ = (pub − β·m) / (1 − β). Returns false
// for β ≥ 1 (saturated column, no information).
func EstimateFrequencyFromColumn(published *bitmat.Matrix, j int, beta float64) (float64, bool) {
	if beta >= 1 {
		return 0, false
	}
	if beta < 0 {
		return 0, false
	}
	m := float64(published.Rows())
	pub := float64(published.ColCount(j))
	est := (pub - beta*m) / (1 - beta)
	if est < 0 {
		est = 0
	}
	if est > m {
		est = m
	}
	return est, true
}

// EstimationReport summarises a frequency-estimation attack across an
// index.
type EstimationReport struct {
	// RevealedMeanError is the mean absolute error of f̂ over revealed
	// identities (providers' count units).
	RevealedMeanError float64
	// RevealedCount is the number of identities the estimator could attack.
	RevealedCount int
	// BlindCount is the number of identities with β = 1 where the
	// estimator has no signal at all.
	BlindCount int
}

// EstimateAll mounts the estimator against every identity of a published
// index given the public β vector, scoring against the private truth.
func EstimateAll(truth, published *bitmat.Matrix, betas []float64) (*EstimationReport, error) {
	if truth.Cols() != published.Cols() || truth.Rows() != published.Rows() {
		return nil, fmt.Errorf("%w: %dx%d vs %dx%d", ErrShape, truth.Rows(), truth.Cols(), published.Rows(), published.Cols())
	}
	if len(betas) != truth.Cols() {
		return nil, fmt.Errorf("%w: %d β values for %d identities", ErrShape, len(betas), truth.Cols())
	}
	rep := &EstimationReport{}
	var errSum float64
	for j := 0; j < truth.Cols(); j++ {
		est, ok := EstimateFrequencyFromColumn(published, j, betas[j])
		if !ok {
			rep.BlindCount++
			continue
		}
		rep.RevealedCount++
		errSum += math.Abs(est - float64(truth.ColCount(j)))
	}
	if rep.RevealedCount > 0 {
		rep.RevealedMeanError = errSum / float64(rep.RevealedCount)
	}
	return rep, nil
}

// BetaConsistentWithPolicy reports whether a published β is consistent
// with the basic policy for some frequency, given public ε — the sanity
// check an attacker runs before inverting (a mixed identity's β = 1 fails
// it unless its ε explains broadcast).
func BetaConsistentWithPolicy(beta, epsilon float64, m int) bool {
	if beta >= 1 {
		// β = 1 is consistent iff some σ ≤ 1 yields β* ≥ 1, which holds for
		// every ε > 0 (σ → 1 diverges); the attacker learns nothing.
		return epsilon > 0
	}
	sigma, ok := InvertBasicBeta(beta, epsilon)
	if !ok {
		return beta == 0
	}
	// The implied frequency must be a plausible count.
	f := sigma * float64(m)
	return f >= 0 && f <= float64(m)
}
