package attack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitmat"
)

func TestPrimaryConfidence(t *testing.T) {
	truth := bitmat.MustNew(4, 2)
	truth.Set(0, 0, true)
	pub := truth.Clone()
	pub.Set(1, 0, true)
	pub.Set(2, 0, true) // 1 true, 2 false positives
	conf, err := PrimaryConfidence(truth, pub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(conf-1.0/3.0) > 1e-12 {
		t.Fatalf("confidence = %v, want 1/3", conf)
	}
	// Empty column: nothing to attack.
	conf, err = PrimaryConfidence(truth, pub, 1)
	if err != nil || conf != 0 {
		t.Fatalf("empty column: %v, %v", conf, err)
	}
	// No noise: certain attack.
	pubExact := truth.Clone()
	conf, err = PrimaryConfidence(truth, pubExact, 0)
	if err != nil || conf != 1 {
		t.Fatalf("no-noise confidence = %v", conf)
	}
	if _, err := PrimaryConfidence(truth, bitmat.MustNew(3, 2), 0); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestPrimaryAttackTrialMatchesConfidence(t *testing.T) {
	truth := bitmat.MustNew(10, 1)
	truth.Set(0, 0, true)
	truth.Set(1, 0, true)
	pub := truth.Clone()
	for i := 2; i < 10; i++ {
		pub.Set(i, 0, true) // 2 true among 10 published
	}
	rng := rand.New(rand.NewSource(1))
	hits, trials := 0, 20000
	for i := 0; i < trials; i++ {
		ok, attackable := PrimaryAttackTrial(rng, truth, pub, 0)
		if !attackable {
			t.Fatal("column should be attackable")
		}
		if ok {
			hits++
		}
	}
	rate := float64(hits) / float64(trials)
	if math.Abs(rate-0.2) > 0.02 {
		t.Fatalf("empirical success %v, want ≈ 0.2", rate)
	}
	// Unattackable column.
	empty := bitmat.MustNew(10, 1)
	if _, attackable := PrimaryAttackTrial(rng, empty, empty, 0); attackable {
		t.Fatal("empty column reported attackable")
	}
}

func TestEpsilonPrivate(t *testing.T) {
	truth := bitmat.MustNew(10, 1)
	truth.Set(0, 0, true)
	pub := truth.Clone()
	for i := 1; i < 5; i++ {
		pub.Set(i, 0, true) // confidence 0.2
	}
	ok, err := EpsilonPrivate(truth, pub, 0, 0.8)
	if err != nil || !ok {
		t.Fatalf("ε=0.8 should be met: %v %v", ok, err)
	}
	ok, err = EpsilonPrivate(truth, pub, 0, 0.9)
	if err != nil || ok {
		t.Fatalf("ε=0.9 should fail: %v %v", ok, err)
	}
}

func TestCommonIdentityAttack(t *testing.T) {
	signal := []uint64{100, 100, 100, 5, 2}
	isCommon := []bool{true, false, true, false, false}
	res, err := CommonIdentityAttack(signal, 100, isCommon)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Picked) != 3 || res.TrueCommons != 2 {
		t.Fatalf("result = %+v", res)
	}
	if math.Abs(res.Confidence-2.0/3.0) > 1e-12 {
		t.Fatalf("confidence = %v, want 2/3", res.Confidence)
	}
	// Nothing reaches threshold.
	res, err = CommonIdentityAttack(signal, 1000, isCommon)
	if err != nil || len(res.Picked) != 0 || res.Confidence != 0 {
		t.Fatalf("high threshold: %+v, %v", res, err)
	}
	if _, err := CommonIdentityAttack(signal, 1, isCommon[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCommonAttackOnSSPPILeak(t *testing.T) {
	// With the exact leaked frequencies, the attacker picks true commons
	// with certainty — the NoProtect scenario.
	leaked := []uint64{100, 3, 100, 7}
	isCommon := []bool{true, false, true, false}
	res, err := CommonIdentityAttack(leaked, 100, isCommon)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence != 1 {
		t.Fatalf("leak-based attack confidence = %v, want 1", res.Confidence)
	}
}

func TestCommonAttackOnMixedEPPI(t *testing.T) {
	// ε-PPI publishes mixed identities at full frequency: with 1 true
	// common and 4 mixed-in, confidence collapses to 1/5 = 1 − ξ (ξ=0.8).
	published := []uint64{50, 50, 50, 50, 50, 3, 2}
	isCommon := []bool{true, false, false, false, false, false, false}
	res, err := CommonIdentityAttack(published, 50, isCommon)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Confidence-0.2) > 1e-12 {
		t.Fatalf("mixed attack confidence = %v, want 0.2", res.Confidence)
	}
}

func TestPublishedFrequencies(t *testing.T) {
	m := bitmat.MustNew(3, 2)
	m.Set(0, 0, true)
	m.Set(1, 0, true)
	got := PublishedFrequencies(m)
	if got[0] != 2 || got[1] != 0 {
		t.Fatalf("frequencies = %v", got)
	}
}

func TestTopKBySignal(t *testing.T) {
	signal := []uint64{5, 9, 1, 9, 3}
	top := TopKBySignal(signal, 3)
	if len(top) != 3 || top[0] != 1 || top[1] != 3 || top[2] != 0 {
		t.Fatalf("top = %v", top)
	}
	if got := TopKBySignal(signal, 99); len(got) != 5 {
		t.Fatalf("k beyond len = %v", got)
	}
}

func TestDegreeString(t *testing.T) {
	names := map[Degree]string{
		DegreeUnleaked:       "UNLEAKED",
		DegreeEpsilonPrivate: "ε-PRIVATE",
		DegreeNoGuarantee:    "NO GUARANTEE",
		DegreeNoProtect:      "NO PROTECT",
		Degree(99):           "degree(99)",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("Degree(%d) = %q, want %q", d, d.String(), want)
		}
	}
}

func TestClassifyPrimary(t *testing.T) {
	// All identities meet their ε.
	d, err := ClassifyPrimary([]float64{0.2, 0.5}, []float64{0.8, 0.5}, 0)
	if err != nil || d != DegreeEpsilonPrivate {
		t.Fatalf("got %v, %v", d, err)
	}
	// One certain attack despite requested protection.
	d, err = ClassifyPrimary([]float64{1.0, 0.2}, []float64{0.5, 0.8}, 0)
	if err != nil || d != DegreeNoProtect {
		t.Fatalf("got %v, %v", d, err)
	}
	// Missed guarantee but not certain.
	d, err = ClassifyPrimary([]float64{0.5}, []float64{0.8}, 0)
	if err != nil || d != DegreeNoGuarantee {
		t.Fatalf("got %v, %v", d, err)
	}
	// Slack absorbs a small excess.
	d, err = ClassifyPrimary([]float64{0.23}, []float64{0.8}, 0.05)
	if err != nil || d != DegreeEpsilonPrivate {
		t.Fatalf("slack case got %v, %v", d, err)
	}
	if _, err := ClassifyPrimary([]float64{1}, nil, 0); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
