package attack

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/mathx"
)

func TestIntersectValidation(t *testing.T) {
	truth := bitmat.MustNew(4, 1)
	if _, err := Intersect(truth, nil, 0); err == nil {
		t.Fatal("empty snapshots accepted")
	}
	if _, err := Intersect(truth, []*bitmat.Matrix{bitmat.MustNew(3, 1)}, 0); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestIntersectSingleSnapshot(t *testing.T) {
	truth := bitmat.MustNew(4, 1)
	truth.Set(0, 0, true)
	pub := truth.Clone()
	pub.Set(1, 0, true)
	res, err := Intersect(truth, []*bitmat.Matrix{pub}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Survivors != 2 || res.TruePositives != 1 || res.Confidence != 0.5 {
		t.Fatalf("result = %+v", res)
	}
}

// The attack's teeth: fresh noise across rebuilds thins out, confidence
// climbs toward 1 while a single snapshot stays near 1-ε.
func TestIntersectionSharpensAcrossRebuilds(t *testing.T) {
	m, freq := 2000, 10
	truth := bitmat.MustNew(m, 1)
	for i := 0; i < freq; i++ {
		truth.Set(i, 0, true)
	}
	eps := []float64{0.8}
	cfg := core.Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted}
	var snapshots []*bitmat.Matrix
	for rebuild := 0; rebuild < 5; rebuild++ {
		cfg.Seed = int64(rebuild + 1)
		res, err := core.Construct(truth, eps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		snapshots = append(snapshots, res.Published)
	}
	one, err := Intersect(truth, snapshots[:1], 0)
	if err != nil {
		t.Fatal(err)
	}
	five, err := Intersect(truth, snapshots, 0)
	if err != nil {
		t.Fatal(err)
	}
	if one.Confidence > 1-eps[0]+0.1 {
		t.Fatalf("single snapshot confidence %v already above the ε bound", one.Confidence)
	}
	if five.Confidence < 0.9 {
		t.Fatalf("five-rebuild intersection confidence %v, want ≈ 1 (attack must succeed)", five.Confidence)
	}
	if five.TruePositives != freq {
		t.Fatalf("true positives lost in intersection: %d", five.TruePositives)
	}
}

// A static index (identical snapshots) gains the attacker nothing.
func TestStaticIndexResistsIntersection(t *testing.T) {
	m, freq := 500, 5
	truth := bitmat.MustNew(m, 1)
	for i := 0; i < freq; i++ {
		truth.Set(i, 0, true)
	}
	cfg := core.Config{Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: 7}
	res, err := core.Construct(truth, []float64{0.8}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := []*bitmat.Matrix{res.Published, res.Published, res.Published}
	inter, err := Intersect(truth, same, 0)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Intersect(truth, same[:1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Confidence != single.Confidence {
		t.Fatalf("static index leaked under repetition: %v vs %v", inter.Confidence, single.Confidence)
	}
}

func TestIntersectRandomisedProperty(t *testing.T) {
	// Survivors shrink monotonically as snapshots accumulate.
	rng := rand.New(rand.NewSource(9))
	m := 300
	truth := bitmat.MustNew(m, 1)
	truth.Set(0, 0, true)
	cfg := core.Config{Policy: mathx.PolicyBasic, Mode: core.ModeTrusted}
	var snaps []*bitmat.Matrix
	prev := m + 1
	for k := 1; k <= 4; k++ {
		cfg.Seed = rng.Int63()
		res, err := core.Construct(truth, []float64{0.7}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, res.Published)
		inter, err := Intersect(truth, snaps, 0)
		if err != nil {
			t.Fatal(err)
		}
		if inter.Survivors > prev {
			t.Fatalf("survivors grew from %d to %d at k=%d", prev, inter.Survivors, k)
		}
		prev = inter.Survivors
	}
}
