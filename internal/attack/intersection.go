package attack

import (
	"fmt"

	"repro/internal/bitmat"
)

// Intersection attack: the paper notes that ε-PPI resists repeated attacks
// because the published index is static. This file quantifies what goes
// wrong if that rule is broken: when the same private matrix is published
// several times with fresh publication randomness, an attacker intersects
// the positive sets — true positives survive every rebuild (the 1→1 rule),
// while independent noise thins out exponentially, so the attacker's
// confidence climbs toward certainty.

// IntersectionResult describes an intersection attack on one identity.
type IntersectionResult struct {
	// Survivors is the number of providers positive in every snapshot.
	Survivors int
	// TruePositives is the number of true providers (all of which always
	// survive, by the truthful-publication rule).
	TruePositives int
	// Confidence is the attacker's success probability picking a survivor:
	// TruePositives / Survivors.
	Confidence float64
}

// Intersect mounts the attack on identity column j across the given
// published snapshots of the same truth matrix.
func Intersect(truth *bitmat.Matrix, snapshots []*bitmat.Matrix, j int) (*IntersectionResult, error) {
	if len(snapshots) == 0 {
		return nil, fmt.Errorf("attack: no snapshots to intersect")
	}
	for i, s := range snapshots {
		if s.Rows() != truth.Rows() || s.Cols() != truth.Cols() {
			return nil, fmt.Errorf("%w: snapshot %d is %dx%d, truth %dx%d",
				ErrShape, i, s.Rows(), s.Cols(), truth.Rows(), truth.Cols())
		}
	}
	res := &IntersectionResult{}
	for i := 0; i < truth.Rows(); i++ {
		inAll := true
		for _, s := range snapshots {
			if !s.Get(i, j) {
				inAll = false
				break
			}
		}
		if !inAll {
			continue
		}
		res.Survivors++
		if truth.Get(i, j) {
			res.TruePositives++
		}
	}
	if res.Survivors > 0 {
		res.Confidence = float64(res.TruePositives) / float64(res.Survivors)
	}
	return res, nil
}
