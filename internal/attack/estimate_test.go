package attack

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/workload"
)

// Inversion is exact: σ → β (Equation 3) → σ must round-trip.
func TestInvertBasicBetaRoundTrip(t *testing.T) {
	prop := func(a, b uint16) bool {
		sigma := 0.001 + 0.5*float64(a)/65535 // keep β < 1
		eps := 0.1 + 0.6*float64(b)/65535
		beta := mathx.BetaBasic(sigma, eps)
		if beta <= 0 || beta >= 1 {
			return true // out of the invertible range by construction
		}
		got, ok := InvertBasicBeta(beta, eps)
		return ok && math.Abs(got-sigma) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInvertBasicBetaRejects(t *testing.T) {
	cases := []struct{ beta, eps float64 }{
		{0, 0.5}, {1, 0.5}, {1.5, 0.5}, {-0.1, 0.5}, {0.5, 0}, {0.5, 1},
	}
	for _, tc := range cases {
		if _, ok := InvertBasicBeta(tc.beta, tc.eps); ok {
			t.Errorf("InvertBasicBeta(%v, %v) accepted", tc.beta, tc.eps)
		}
	}
}

func TestEstimateFrequencyFromColumn(t *testing.T) {
	// Exact construction: 10 true + noise at known β over a big column.
	m := bitmat.MustNew(10000, 1)
	for i := 0; i < 10; i++ {
		m.Set(i, 0, true)
	}
	pub := m.Clone()
	// Deterministically flip exactly β·(m−f) negatives.
	beta := 0.25
	flips := int(beta * 9990)
	for i := 10; i < 10+flips; i++ {
		pub.Set(i, 0, true)
	}
	est, ok := EstimateFrequencyFromColumn(pub, 0, beta)
	if !ok {
		t.Fatal("estimator refused a revealed column")
	}
	if math.Abs(est-10) > 2 {
		t.Fatalf("estimate %v, want ≈ 10", est)
	}
	if _, ok := EstimateFrequencyFromColumn(pub, 0, 1); ok {
		t.Fatal("β = 1 column should be blind")
	}
	if _, ok := EstimateFrequencyFromColumn(pub, 0, -0.1); ok {
		t.Fatal("negative β accepted")
	}
}

// The system-level boundary: revealed identities' frequencies are
// estimable from public data, hidden identities are blind — the asymmetry
// the mixing defence creates.
func TestEstimateAllOnRealIndex(t *testing.T) {
	m, n := 2000, 40
	d, err := workload.GenerateZipf(workload.ZipfConfig{
		Providers: m, Owners: n, Exponent: 1.2, MaxFrequency: m / 4,
		EpsLow: 0.3, EpsHigh: 0.7, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Construct(d.Matrix, d.Eps, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: 2, XiOverride: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EstimateAll(d.Matrix, res.Published, res.Betas)
	if err != nil {
		t.Fatal(err)
	}
	hidden := 0
	for _, h := range res.Hidden {
		if h {
			hidden++
		}
	}
	if rep.BlindCount != hidden {
		t.Fatalf("blind %d != hidden %d", rep.BlindCount, hidden)
	}
	if rep.RevealedCount != n-hidden {
		t.Fatalf("revealed %d != %d", rep.RevealedCount, n-hidden)
	}
	if rep.RevealedCount > 0 {
		// Binomial noise: error standard deviation ≈ sqrt(mβ(1−β))/(1−β);
		// the mean absolute error should stay well under 10% of m.
		if rep.RevealedMeanError > 0.1*float64(m) {
			t.Fatalf("mean estimation error %v too large (estimator broken)", rep.RevealedMeanError)
		}
		// And the attack genuinely works: error far below a blind guess.
		if rep.RevealedMeanError > 200 {
			t.Fatalf("mean error %v — estimator barely better than guessing", rep.RevealedMeanError)
		}
	}
}

func TestEstimateAllValidation(t *testing.T) {
	a := bitmat.MustNew(3, 2)
	b := bitmat.MustNew(3, 3)
	if _, err := EstimateAll(a, b, []float64{0.5, 0.5}); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := EstimateAll(a, a.Clone(), []float64{0.5}); err == nil {
		t.Error("β length mismatch accepted")
	}
}

func TestBetaConsistentWithPolicy(t *testing.T) {
	// A genuine basic-policy β is consistent.
	beta := mathx.BetaBasic(0.1, 0.5)
	if !BetaConsistentWithPolicy(beta, 0.5, 1000) {
		t.Error("true β flagged inconsistent")
	}
	// β = 1 never incriminates (mixed identities hide here).
	if !BetaConsistentWithPolicy(1, 0.5, 1000) {
		t.Error("broadcast β flagged inconsistent")
	}
	if BetaConsistentWithPolicy(1, 0, 1000) {
		t.Error("β=1 with ε=0 should be inconsistent")
	}
	if !BetaConsistentWithPolicy(0, 0.5, 1000) {
		t.Error("β=0 is consistent with σ=0")
	}
}
