// Package attack implements the paper's threat model (Section II-B): the
// primary attack and the new common-identity attack, plus the measurement
// of attacker confidence and the classification into the paper's privacy
// degrees (Table II).
package attack

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bitmat"
)

// ErrShape reports mismatched matrices.
var ErrShape = errors.New("attack: matrix dimensions mismatch")

// PrimaryConfidence returns the attacker's success probability for the
// primary attack on identity column j: the attacker picks any provider
// with M'(i,j)=1 and claims M(i,j)=1. Averaged over the published
// positives this equals 1 − fp_j (the paper's privacy-disclosure metric).
// A column with no published positives yields confidence 0 (nothing to
// attack).
func PrimaryConfidence(truth, published *bitmat.Matrix, j int) (float64, error) {
	fp, err := bitmat.ColFalsePositiveRate(truth, published, j)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrShape, err)
	}
	if published.ColCount(j) == 0 {
		return 0, nil
	}
	return 1 - fp, nil
}

// PrimaryAttackTrial simulates one primary attack: the attacker draws a
// uniformly random provider from the published positives of column j and
// succeeds if the provider is a true positive. It returns success and
// whether the column was attackable at all.
func PrimaryAttackTrial(rng *rand.Rand, truth, published *bitmat.Matrix, j int) (success, attackable bool) {
	positives := published.ColOnes(j)
	if len(positives) == 0 {
		return false, false
	}
	pick := positives[rng.Intn(len(positives))]
	return truth.Get(pick, j), true
}

// EpsilonPrivate reports whether the published index meets the ε-PRIVATE
// guarantee (Equation 1) for identity j: attacker confidence ≤ 1 − ε_j.
func EpsilonPrivate(truth, published *bitmat.Matrix, j int, epsilon float64) (bool, error) {
	conf, err := PrimaryConfidence(truth, published, j)
	if err != nil {
		return false, err
	}
	return conf <= 1-epsilon+1e-12, nil
}

// CommonIdentityResult summarises a common-identity attack.
type CommonIdentityResult struct {
	// Picked lists the identity columns the attacker selected as common.
	Picked []int
	// TrueCommons is how many picked identities are truly common.
	TrueCommons int
	// Confidence is TrueCommons / len(Picked) — the attacker's success
	// probability when claiming a picked identity is truly common (and
	// hence every provider a true positive).
	Confidence float64
}

// CommonIdentityAttack mounts the common-identity attack against a
// published index. The attacker ranks identities by an observed frequency
// signal and picks all identities whose signal reaches signalThreshold
// (typically: appears at every provider, or in every group). isCommon[j]
// tells ground truth. signal[j] is whatever channel the target system
// exposes:
//
//   - for ε-PPI and grouping PPI, the published column counts (public);
//   - for SS-PPI, the exact leaked frequencies (construction-time leak).
func CommonIdentityAttack(signal []uint64, signalThreshold uint64, isCommon []bool) (*CommonIdentityResult, error) {
	if len(signal) != len(isCommon) {
		return nil, fmt.Errorf("%w: %d signals, %d truth flags", ErrShape, len(signal), len(isCommon))
	}
	res := &CommonIdentityResult{}
	for j, s := range signal {
		if s >= signalThreshold {
			res.Picked = append(res.Picked, j)
			if isCommon[j] {
				res.TrueCommons++
			}
		}
	}
	if len(res.Picked) > 0 {
		res.Confidence = float64(res.TrueCommons) / float64(len(res.Picked))
	}
	return res, nil
}

// PublishedFrequencies returns the per-identity published column counts —
// the public frequency signal of a provider-level index.
func PublishedFrequencies(published *bitmat.Matrix) []uint64 {
	out := make([]uint64, published.Cols())
	for j := range out {
		out[j] = uint64(published.ColCount(j))
	}
	return out
}

// TopKBySignal returns the k identity columns with the largest signal,
// ties broken by lower index — the "intentionally chosen" victims of the
// threat model.
func TopKBySignal(signal []uint64, k int) []int {
	idx := make([]int, len(signal))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return signal[idx[a]] > signal[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// Degree is the paper's qualitative privacy classification.
type Degree int

// Privacy degrees of Section II-C.
const (
	// DegreeUnleaked: the information cannot flow to the attacker at all.
	DegreeUnleaked Degree = iota + 1
	// DegreeEpsilonPrivate: leakage bounded by 1 − ε quantitatively.
	DegreeEpsilonPrivate
	// DegreeNoGuarantee: leakage unpredictable.
	DegreeNoGuarantee
	// DegreeNoProtect: the attack succeeds with certainty.
	DegreeNoProtect
)

// String names the degree as in Table II.
func (d Degree) String() string {
	switch d {
	case DegreeUnleaked:
		return "UNLEAKED"
	case DegreeEpsilonPrivate:
		return "ε-PRIVATE"
	case DegreeNoGuarantee:
		return "NO GUARANTEE"
	case DegreeNoProtect:
		return "NO PROTECT"
	default:
		return fmt.Sprintf("degree(%d)", int(d))
	}
}

// ClassifyPrimary derives the empirical privacy degree of a system under
// the primary attack from per-identity confidences and requested ε values:
// ε-PRIVATE if every identity meets Equation 1 up to the measurement slack,
// NoProtect if some attack is certain while its ε demanded protection,
// NoGuarantee otherwise. slack absorbs sampling noise when confidences are
// averages over finitely many constructions (0 demands exact compliance).
func ClassifyPrimary(confidences, eps []float64, slack float64) (Degree, error) {
	if len(confidences) != len(eps) {
		return 0, fmt.Errorf("%w: %d confidences, %d ε", ErrShape, len(confidences), len(eps))
	}
	allMet := true
	certain := false
	for j, c := range confidences {
		if c > 1-eps[j]+slack+1e-9 {
			allMet = false
		}
		if c >= 1-1e-9 && eps[j] > 1e-9 {
			certain = true
		}
	}
	switch {
	case allMet:
		return DegreeEpsilonPrivate, nil
	case certain:
		return DegreeNoProtect, nil
	default:
		return DegreeNoGuarantee, nil
	}
}
