package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// newTrace runs one root with a small span tree and returns the sealed
// trace.
func newTestTrace(t *testing.T, tr *Tracer, rootName string) *Trace {
	t.Helper()
	before := tr.Len()
	ctx, root := tr.StartRoot(context.Background(), rootName, A("kind", "test"))
	if root == nil {
		t.Fatalf("StartRoot returned nil span")
	}
	ctx2, child := StartChild(ctx, "child", Int("i", 1))
	if child == nil {
		t.Fatalf("StartChild returned nil under an active span")
	}
	_, grand := StartChild(ctx2, "grandchild")
	grand.SetInt("depth", 2)
	grand.End()
	child.End()
	sibling := root.Child("sibling")
	sibling.AddTraffic(3, 120)
	sibling.End()
	root.End()
	want := before + 1
	if want > tr.capacity {
		want = tr.capacity
	}
	if tr.Len() != want {
		t.Fatalf("trace not sealed: Len=%d want %d", tr.Len(), want)
	}
	recent := tr.Recent()
	return recent[len(recent)-1]
}

func TestSpanTreeStructure(t *testing.T) {
	tr := New(4)
	sealed := newTestTrace(t, tr, "root")
	if got := len(sealed.Spans); got != 4 {
		t.Fatalf("sealed %d spans, want 4", got)
	}
	root := sealed.Root()
	if root.Name != "root" {
		t.Fatalf("root span is %q, want root (spans must seal root-last)", root.Name)
	}
	if root.Parent != 0 {
		t.Fatalf("root has parent %v", root.Parent)
	}
	byName := map[string]SpanData{}
	for _, sp := range sealed.Spans {
		byName[sp.Name] = sp
	}
	if byName["child"].Parent != root.ID {
		t.Errorf("child parent = %v, want root %v", byName["child"].Parent, root.ID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Errorf("grandchild parent = %v, want child %v", byName["grandchild"].Parent, byName["child"].ID)
	}
	if byName["sibling"].Messages != 3 || byName["sibling"].Bytes != 120 {
		t.Errorf("traffic attribution = %d msgs/%d bytes, want 3/120",
			byName["sibling"].Messages, byName["sibling"].Bytes)
	}
	for _, sp := range sealed.Spans {
		if sp.End.Before(sp.Start) {
			t.Errorf("span %s ends before it starts", sp.Name)
		}
	}
}

func TestRingEvictionOrder(t *testing.T) {
	tr := New(3)
	var ids []TraceID
	for i := 0; i < 5; i++ {
		sealed := newTestTrace(t, tr, "run")
		ids = append(ids, sealed.ID)
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring holds %d traces, want capacity 3", len(recent))
	}
	// Oldest two evicted; survivors in oldest→newest order.
	for i, tr := range recent {
		if tr.ID != ids[i+2] {
			t.Errorf("ring[%d] = %v, want %v (eviction must drop oldest first)", i, tr.ID, ids[i+2])
		}
	}
}

func TestNoopFastPathAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := StartChild(ctx, "hot")
		sp.SetInt("n", 42)
		sp.Set("k", "v")
		sp.AddTraffic(1, 8)
		sp.End()
		_ = c2
	})
	if allocs != 0 {
		t.Fatalf("disabled-tracing fast path allocates %.1f/op, want 0", allocs)
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRoot(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	if got := FromContext(ctx); got != nil {
		t.Fatal("nil tracer installed a span in context")
	}
	sp.End() // must not panic
	if sp.Child("y") != nil {
		t.Fatal("nil span produced a child")
	}
	if tr.Recent() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reports state")
	}
}

func TestStragglerSpanDropped(t *testing.T) {
	tr := New(2)
	_, root := tr.StartRoot(context.Background(), "root")
	straggler := root.Child("late")
	root.End()
	straggler.End() // trace already sealed
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
	if got := len(tr.Recent()[0].Spans); got != 1 {
		t.Fatalf("sealed trace has %d spans, want 1 (straggler excluded)", got)
	}
}

func TestStartRemoteJoinsTraceID(t *testing.T) {
	tr := New(2)
	id, parent := TraceID(0xabc123), SpanID(0xdef456)
	ctx, sp := tr.StartRemote(context.Background(), "server.root", id, parent)
	if sp.TraceID() != id {
		t.Fatalf("remote span trace = %v, want %v", sp.TraceID(), id)
	}
	_, child := StartChild(ctx, "inner")
	child.End()
	sp.End()
	sealed := tr.Recent()[0]
	if sealed.ID != id {
		t.Fatalf("sealed trace id = %v, want propagated %v", sealed.ID, id)
	}
	if sealed.Root().Parent != parent {
		t.Fatalf("remote root parent = %v, want %v", sealed.Root().Parent, parent)
	}
}

func TestParseIDRoundTrip(t *testing.T) {
	id := TraceID(0x1f2e3d4c5b6a7988)
	v, ok := ParseID(id.String())
	if !ok || TraceID(v) != id {
		t.Fatalf("ParseID(%q) = %x, %v", id.String(), v, ok)
	}
	if _, ok := ParseID("nope"); ok {
		t.Fatal("ParseID accepted garbage")
	}
	if _, ok := ParseID(""); ok {
		t.Fatal("ParseID accepted empty")
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	tr := New(4)
	newTestTrace(t, tr, "req")
	newTestTrace(t, tr, "req")
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Recent()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 traces × (1 metadata + 4 spans).
	if got := len(file.TraceEvents); got != 10 {
		t.Fatalf("%d trace events, want 10", got)
	}
	var completes, metas int
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "X":
			completes++
			if ev.Dur < 0 || ev.Ts <= 0 {
				t.Errorf("event %q has ts=%v dur=%v", ev.Name, ev.Ts, ev.Dur)
			}
		case "M":
			metas++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if completes != 8 || metas != 2 {
		t.Fatalf("got %d X / %d M events, want 8 / 2", completes, metas)
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatalf("WriteChrome(nil): %v", err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("empty output is not valid JSON: %v", err)
	}
	if _, ok := file["traceEvents"]; !ok {
		t.Fatal("empty output lacks traceEvents key")
	}
}

func TestWriteTree(t *testing.T) {
	tr := New(2)
	newTestTrace(t, tr, "construct")
	var buf bytes.Buffer
	if err := tr.WriteTrees(&buf); err != nil {
		t.Fatalf("WriteTrees: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"construct", "child", "grandchild", "sibling", "3 msgs 120B", "kind=test"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree dump missing %q:\n%s", want, out)
		}
	}
	// Nesting: grandchild must be indented deeper than child.
	childLine, grandLine := lineOf(out, "child "), lineOf(out, "grandchild ")
	if indentOf(grandLine) <= indentOf(childLine) {
		t.Errorf("grandchild not nested under child:\n%s", out)
	}
}

func lineOf(s, substr string) string {
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			return l
		}
	}
	return ""
}

func indentOf(l string) int {
	return strings.Index(l, "─")
}

func TestSpanCapBoundsTrace(t *testing.T) {
	tr := New(1)
	_, root := tr.StartRoot(context.Background(), "big")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		root.Child("c").End()
	}
	root.End()
	if got := len(tr.Recent()[0].Spans); got != maxSpansPerTrace+1 {
		t.Fatalf("trace holds %d spans, want cap %d + root", got, maxSpansPerTrace)
	}
	if tr.Dropped() == 0 {
		t.Fatal("over-cap spans not counted as dropped")
	}
}

func BenchmarkStartChildDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartChild(ctx, "hot")
		sp.SetInt("n", i)
		sp.End()
	}
}

func BenchmarkStartChildEnabled(b *testing.B) {
	tr := New(8)
	ctx, root := tr.StartRoot(context.Background(), "bench")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := StartChild(ctx, "hot")
		sp.End()
	}
}
