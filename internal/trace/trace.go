// Package trace is a dependency-free distributed-tracing substrate for the
// ε-PPI stack: context-propagated trace/span identifiers, nested spans with
// attributes, and a bounded ring buffer of recently completed traces that
// can be exported as Chrome trace-event JSON (Perfetto / chrome://tracing)
// or as a human-readable tree dump.
//
// Where the sibling package metrics answers "how much, in aggregate?",
// trace answers "where did *this* run spend its time?" — one QueryPPI
// request through httpapi→index, or one core.Construct run through
// β-calculation → SecSumShare → OT preprocessing → GMW layer evaluation
// (the per-phase breakdown the paper's Figures 4–6 are built from).
//
// Design constraints, matching internal/metrics:
//
//   - zero dependencies beyond the standard library;
//   - disabled tracing is a no-op fast path: StartChild on a context that
//     carries no span returns (ctx, nil) without allocating, and every
//     method on a nil *Span no-ops, so call sites instrument
//     unconditionally and pay nothing when tracing is off;
//   - recording is lock-cheap: ending a span takes one short critical
//     section on the tracer; in-flight annotation touches only the span.
package trace

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one trace (one request, one construction run).
type TraceID uint64

// String renders the id as fixed-width hex, the form used in log records
// and HTTP propagation headers.
func (t TraceID) String() string { return fixedHex(uint64(t)) }

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the id as fixed-width hex.
func (s SpanID) String() string { return fixedHex(uint64(s)) }

func fixedHex(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// ParseID parses the fixed-width hex form produced by String. ok is false
// for anything that is not exactly 16 hex digits.
func ParseID(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Attr is one key/value annotation on a span. Values are strings so that
// export needs no reflection; use the constructors for other types.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A constructs a string attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int constructs an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: strconv.Itoa(v)} }

// Uint constructs an unsigned integer attribute.
func Uint(key string, v uint64) Attr { return Attr{Key: key, Value: strconv.FormatUint(v, 10)} }

// SpanData is one completed span as stored in a sealed Trace.
type SpanData struct {
	ID     SpanID    `json:"id"`
	Parent SpanID    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Attrs  []Attr    `json:"attrs,omitempty"`
	// Messages and Bytes are the transport traffic attributed to the span
	// while it was installed on a network (transport.AttachSpan).
	Messages uint64 `json:"messages,omitempty"`
	Bytes    uint64 `json:"bytes,omitempty"`
}

// Duration is the span's wall-clock extent.
func (s SpanData) Duration() time.Duration { return s.End.Sub(s.Start) }

// Trace is one completed trace: the root span plus every descendant that
// ended before the root. Spans appear in end order (root last). A sealed
// Trace is immutable.
type Trace struct {
	ID    TraceID    `json:"id"`
	Start time.Time  `json:"start"`
	End   time.Time  `json:"end"`
	Spans []SpanData `json:"spans"`
}

// Root returns the root span (the last sealed span), or a zero SpanData
// for a malformed trace.
func (t *Trace) Root() SpanData {
	if len(t.Spans) == 0 {
		return SpanData{}
	}
	return t.Spans[len(t.Spans)-1]
}

// Duration is the root span's wall-clock extent.
func (t *Trace) Duration() time.Duration { return t.End.Sub(t.Start) }

// maxSpansPerTrace bounds the memory one runaway trace can pin (a huge
// search fan-out, a protocol loop). Spans beyond the cap are counted in
// Tracer.Dropped and otherwise discarded.
const maxSpansPerTrace = 8192

// Span is one live span. The zero value is not used directly; spans come
// from Tracer.StartRoot, StartChild, or (*Span).Child. All methods are
// nil-safe: a nil *Span no-ops, which is the disabled-tracing fast path.
type Span struct {
	tracer *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	root   bool

	// Transport traffic attribution; updated lock-free by the transport
	// layer while the span is installed on a network.
	msgs  atomic.Uint64
	bytes atomic.Uint64

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// TraceID returns the span's trace id (0 for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.trace
}

// ID returns the span id (0 for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Name returns the span name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttrs appends annotations to the span.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Set appends one string annotation. Unlike SetAttrs it never allocates on
// a nil span, so hot paths can call it unconditionally.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.SetAttrs(Attr{Key: key, Value: value})
}

// SetInt appends one integer annotation; nil-safe without allocation.
func (s *Span) SetInt(key string, v int) {
	if s == nil {
		return
	}
	s.SetAttrs(Int(key, v))
}

// SetUint appends one unsigned integer annotation; nil-safe without
// allocation.
func (s *Span) SetUint(key string, v uint64) {
	if s == nil {
		return
	}
	s.SetAttrs(Uint(key, v))
}

// AddTraffic attributes transport traffic (messages, bytes) to the span.
// Lock-free; safe from any goroutine.
func (s *Span) AddTraffic(msgs, bytes uint64) {
	if s == nil {
		return
	}
	s.msgs.Add(msgs)
	s.bytes.Add(bytes)
}

// Child starts a nested span. On a nil receiver it returns nil — the
// no-op chain for disabled tracing.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.newSpan(s.trace, s.id, name, false, attrs)
}

// End seals the span and records it into the tracer's ring. Ending twice
// is harmless (the second call no-ops); ending a nil span no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tracer.record(s, time.Now(), attrs)
}

// ctxKey carries the active *Span in a context. The zero-size key makes
// the no-op lookup allocation-free.
type ctxKey struct{}

// FromContext returns the active span, or nil when the context carries
// none (tracing disabled).
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ContextWith returns ctx carrying sp. A nil span returns ctx unchanged.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// StartChild starts a span nested under the context's active span and
// returns a derived context carrying the new span. When the context has no
// span it returns (ctx, nil) without allocating — the disabled-tracing
// fast path that the hot-path benchmarks pin to zero allocations.
func StartChild(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.Child(name, attrs...)
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// Tracer records spans and retains the most recent completed traces in a
// bounded ring buffer. A nil *Tracer starts only nil spans.
type Tracer struct {
	capacity int
	ids      atomic.Uint64
	seed     uint64

	mu      sync.Mutex
	active  map[TraceID]*building
	ring    []*Trace // completed traces; ring[(head+i)%cap], oldest first
	head    int
	filled  int
	dropped atomic.Uint64
}

// building accumulates the sealed spans of one in-flight trace.
type building struct {
	start time.Time
	spans []SpanData
}

// DefaultCapacity is the ring size used when New is given n <= 0.
const DefaultCapacity = 64

// New returns a tracer retaining the last capacity completed traces
// (DefaultCapacity if capacity <= 0).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		capacity: capacity,
		seed:     uint64(time.Now().UnixNano()),
		active:   make(map[TraceID]*building),
		ring:     make([]*Trace, capacity),
	}
}

// nextID derives a well-mixed 64-bit id from an atomic counter
// (splitmix64), so id generation is lock-free and collision-free within a
// tracer.
func (t *Tracer) nextID() uint64 {
	z := t.seed + t.ids.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // 0 means "no trace/span" on the wire
	}
	return z
}

// StartRoot starts a new trace with a fresh trace id and returns a derived
// context carrying its root span. A nil tracer returns (ctx, nil).
func (t *Tracer) StartRoot(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sp := t.newSpan(TraceID(t.nextID()), 0, name, true, attrs)
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// StartRemote starts the local root span of a trace that began elsewhere
// (a propagated trace id from an HTTP header): the span joins trace id
// with the given remote parent span, so the caller's recorder and this one
// share one logical trace. A nil tracer or zero id returns (ctx, nil).
func (t *Tracer) StartRemote(ctx context.Context, name string, id TraceID, parent SpanID, attrs ...Attr) (context.Context, *Span) {
	if t == nil || id == 0 {
		return ctx, nil
	}
	sp := t.newSpan(id, parent, name, true, attrs)
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

func (t *Tracer) newSpan(id TraceID, parent SpanID, name string, root bool, attrs []Attr) *Span {
	sp := &Span{
		tracer: t,
		trace:  id,
		id:     SpanID(t.nextID()),
		parent: parent,
		name:   name,
		start:  time.Now(),
		root:   root,
	}
	if len(attrs) > 0 {
		sp.attrs = append(sp.attrs, attrs...)
	}
	if root {
		t.mu.Lock()
		if _, ok := t.active[id]; !ok {
			t.active[id] = &building{start: sp.start}
		}
		t.mu.Unlock()
	}
	return sp
}

// record seals one span into its trace; a root span seals the whole trace
// into the ring.
func (t *Tracer) record(sp *Span, end time.Time, attrs []Attr) {
	data := SpanData{
		ID:       sp.id,
		Parent:   sp.parent,
		Name:     sp.name,
		Start:    sp.start,
		End:      end,
		Attrs:    attrs,
		Messages: sp.msgs.Load(),
		Bytes:    sp.bytes.Load(),
	}
	t.mu.Lock()
	b, ok := t.active[sp.trace]
	if !ok {
		// The trace's root already sealed (a straggler span) or the span
		// was adopted from a tracer that never opened the trace: count it
		// and move on rather than pinning memory forever.
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	if len(b.spans) >= maxSpansPerTrace && !sp.root {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	b.spans = append(b.spans, data)
	if sp.root {
		delete(t.active, sp.trace)
		tr := &Trace{ID: sp.trace, Start: sp.start, End: end, Spans: b.spans}
		t.ring[(t.head+t.filled)%t.capacity] = tr
		if t.filled < t.capacity {
			t.filled++
		} else {
			t.head = (t.head + 1) % t.capacity
		}
	}
	t.mu.Unlock()
}

// Recent returns the completed traces currently retained, oldest first.
// The returned slice is fresh; the traces themselves are immutable.
func (t *Tracer) Recent() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, t.filled)
	for i := 0; i < t.filled; i++ {
		out = append(out, t.ring[(t.head+i)%t.capacity])
	}
	return out
}

// Len returns the number of completed traces retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.filled
}

// Dropped returns the number of spans discarded because their trace was
// already sealed or hit the per-trace span cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}
