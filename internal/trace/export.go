package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// loaded by Perfetto and chrome://tracing). Complete events ("ph":"X")
// carry ts/dur in microseconds.
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the object form of the trace-event format.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders traces as Chrome trace-event JSON. Each trace
// becomes one "process" (pid) named after its trace id; spans become
// complete ("X") events laid out on lanes (tid) such that a child nests
// inside its parent and concurrent siblings land on separate lanes, which
// is exactly how Perfetto renders overlapping slices correctly.
func WriteChrome(w io.Writer, traces []*Trace) error {
	file := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for i, tr := range traces {
		pid := i + 1
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid,
			Args: map[string]any{"name": "trace " + tr.ID.String()},
		})
		lanes := assignLanes(tr.Spans)
		for si, sp := range tr.Spans {
			args := make(map[string]any, len(sp.Attrs)+3)
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
			args["span_id"] = sp.ID.String()
			if sp.Messages > 0 || sp.Bytes > 0 {
				args["transport_messages"] = sp.Messages
				args["transport_bytes"] = sp.Bytes
			}
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: sp.Name,
				Ph:   "X",
				Ts:   micros(sp.Start),
				Dur:  float64(sp.End.Sub(sp.Start).Nanoseconds()) / 1e3,
				Pid:  pid,
				Tid:  lanes[si],
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// micros converts an absolute time to trace-event microseconds. Float64
// keeps microsecond precision for epoch timestamps (2^53 µs ≈ 285 years).
func micros(t time.Time) float64 {
	return float64(t.UnixNano()) / 1e3
}

// assignLanes places each span on a lane (tid) so that every span shares
// its parent's lane when possible (Perfetto nests time-contained slices on
// one track) and moves to a fresh lane only when a non-ancestor span on
// that lane overlaps it (concurrent siblings). Quadratic in span count,
// which the per-trace span cap bounds.
func assignLanes(spans []SpanData) []int {
	n := len(spans)
	lanes := make([]int, n)
	parentOf := make(map[SpanID]SpanID, n)
	indexOf := make(map[SpanID]int, n)
	for i, sp := range spans {
		parentOf[sp.ID] = sp.Parent
		indexOf[sp.ID] = i
	}
	isAncestor := func(anc, of SpanID) bool {
		for cur := parentOf[of]; cur != 0; cur = parentOf[cur] {
			if cur == anc {
				return true
			}
			if _, ok := parentOf[cur]; !ok {
				return false
			}
		}
		return false
	}
	overlaps := func(a, b SpanData) bool {
		return a.Start.Before(b.End) && b.Start.Before(a.End)
	}
	// Place spans in start order so parents (which start before their
	// children) are already placed when the children arrive.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return spans[order[a]].Start.Before(spans[order[b]].Start) })
	placed := make([]int, 0, n) // indices already assigned, in placement order
	for _, i := range order {
		sp := spans[i]
		lane := 0
		if pi, ok := indexOf[sp.Parent]; ok {
			lane = lanes[pi]
		}
		for {
			conflict := false
			for _, j := range placed {
				if lanes[j] != lane {
					continue
				}
				other := spans[j]
				if overlaps(sp, other) && !isAncestor(other.ID, sp.ID) && !isAncestor(sp.ID, other.ID) {
					conflict = true
					break
				}
			}
			if !conflict {
				break
			}
			lane++
		}
		lanes[i] = lane
		placed = append(placed, i)
	}
	return lanes
}

// WriteTree renders one trace as an indented human-readable tree:
//
//	trace 1f2e3d… 12.3ms (7 spans)
//	└─ http.query 12.3ms route=query status=200 [3 msgs 1.2kB]
//	   └─ index.query 310µs fanout=17
//
// Spans whose parent is missing (dropped straggler) appear at top level.
func WriteTree(w io.Writer, tr *Trace) error {
	if _, err := fmt.Fprintf(w, "trace %s %v (%d spans)\n",
		tr.ID, tr.Duration().Round(time.Microsecond), len(tr.Spans)); err != nil {
		return err
	}
	children := make(map[SpanID][]int)
	known := make(map[SpanID]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		known[sp.ID] = true
	}
	var roots []int
	for i, sp := range tr.Spans {
		if sp.Parent != 0 && known[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool { return tr.Spans[idx[a]].Start.Before(tr.Spans[idx[b]].Start) })
	}
	byStart(roots)
	var dump func(i int, prefix string, last bool) error
	dump = func(i int, prefix string, last bool) error {
		sp := tr.Spans[i]
		branch, childPrefix := "├─ ", prefix+"│  "
		if last {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		var sb strings.Builder
		sb.WriteString(prefix)
		sb.WriteString(branch)
		sb.WriteString(sp.Name)
		fmt.Fprintf(&sb, " %v", sp.Duration().Round(time.Microsecond))
		for _, a := range sp.Attrs {
			sb.WriteString(" ")
			sb.WriteString(a.Key)
			sb.WriteString("=")
			sb.WriteString(a.Value)
		}
		if sp.Messages > 0 || sp.Bytes > 0 {
			fmt.Fprintf(&sb, " [%d msgs %dB]", sp.Messages, sp.Bytes)
		}
		sb.WriteString("\n")
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
		kids := children[sp.ID]
		byStart(kids)
		for ki, k := range kids {
			if err := dump(k, childPrefix, ki == len(kids)-1); err != nil {
				return err
			}
		}
		return nil
	}
	for ri, r := range roots {
		if err := dump(r, "", ri == len(roots)-1); err != nil {
			return err
		}
	}
	return nil
}

// WriteTrees renders every retained trace, oldest first.
func (t *Tracer) WriteTrees(w io.Writer) error {
	for _, tr := range t.Recent() {
		if err := WriteTree(w, tr); err != nil {
			return err
		}
	}
	return nil
}
