package metrics

import (
	"strings"
	"testing"
)

// TestLintAcceptsOwnExposition is the self-consistency check: whatever
// WriteTo produces — counters, gauges, histograms, labels that need
// every escape — must lint clean.
func TestLintAcceptsOwnExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("eppi_audit_dropped_total", "records dropped").Add(3)
	r.Gauge("eppi_privacy_fp_rate", "achieved FP rate", L("bucket", "0.4-0.5")).Set(0.5)
	r.Gauge("eppi_build_info", "build identity",
		L("version", `dev "quoted" \slash`+"\n"), L("go_version", "go1.22")).Set(1)
	h := r.Histogram("eppi_query_seconds", "query latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if errs := LintExposition(strings.NewReader(sb.String())); len(errs) != 0 {
		t.Fatalf("own exposition failed lint: %v\n%s", errs, sb.String())
	}
}

func TestLintCatchesDefects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of some reported error
	}{
		{"bad metric name", "1bad_name 3\n", "invalid metric name"},
		{"bad value", "m notafloat\n", "is not a float"},
		{"bad label name", `m{1k="v"} 1` + "\n", "invalid label name"},
		{"bad escape", `m{k="a\t"} 1` + "\n", "bad escape"},
		{"unterminated label", `m{k="v} 1` + "\n", "not terminated"},
		{"duplicate series", "m{k=\"v\"} 1\nm{k=\"v\"} 2\n", "duplicate series"},
		{"duplicate type", "# TYPE m counter\n# TYPE m gauge\nm 1\n", "duplicate TYPE"},
		{"invalid kind", "# TYPE m matrix\nm 1\n", "invalid kind"},
		{"type after sample", "m 1\n# TYPE m counter\n", "after its samples"},
		{"help after sample", "m 1\n# HELP m late\n", "after its samples"},
		{"trailing fields", "m 1 1690000000\n", "trailing fields"},
		{
			"decreasing buckets",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\nh_sum 9\nh_count 5\n",
			"counts decreasing",
		},
		{
			"unordered bounds",
			"# TYPE h histogram\n" +
				`h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 2` + "\n" +
				`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 2\n",
			"bounds not increasing",
		},
		{
			"missing +Inf",
			"# TYPE h histogram\n" + `h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
			"missing its +Inf bucket",
		},
		{
			"+Inf disagrees with count",
			"# TYPE h histogram\n" + `h_bucket{le="+Inf"} 4` + "\nh_sum 1\nh_count 5\n",
			"+Inf bucket 4 != h_count 5",
		},
		{
			"missing sum",
			"# TYPE h histogram\n" + `h_bucket{le="+Inf"} 1` + "\nh_count 1\n",
			"missing h_sum",
		},
		{
			"bucket without le",
			"# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
			"without an le label",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errs := LintExposition(strings.NewReader(c.in))
			for _, err := range errs {
				if strings.Contains(err.Error(), c.want) {
					return
				}
			}
			t.Errorf("lint missed %q; got %v", c.want, errs)
		})
	}
}

// TestLintLabeledHistograms checks the per-label-set tracking: two
// series of one histogram family lint independently.
func TestLintLabeledHistograms(t *testing.T) {
	good := "# TYPE h histogram\n" +
		`h_bucket{route="a",le="1"} 1` + "\n" + `h_bucket{route="a",le="+Inf"} 2` + "\n" +
		`h_sum{route="a"} 3` + "\n" + `h_count{route="a"} 2` + "\n" +
		`h_bucket{route="b",le="1"} 9` + "\n" + `h_bucket{route="b",le="+Inf"} 9` + "\n" +
		`h_sum{route="b"} 4` + "\n" + `h_count{route="b"} 9` + "\n"
	if errs := LintExposition(strings.NewReader(good)); len(errs) != 0 {
		t.Fatalf("labeled histograms failed lint: %v", errs)
	}
	// Drop series b's _count: only that series must be flagged.
	bad := strings.Replace(good, `h_count{route="b"} 9`+"\n", "", 1)
	errs := LintExposition(strings.NewReader(bad))
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), `route="b"`) {
		t.Fatalf("errs = %v", errs)
	}
}
