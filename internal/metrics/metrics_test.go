package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests served")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", "requests served"); again != c {
		t.Fatal("get-or-create returned a different counter")
	}

	g := r.Gauge("temperature", "")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1.0", got)
	}
}

func TestLabelsSeparateSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "h", L("route", "query"))
	b := r.Counter("hits_total", "h", L("route", "stats"))
	if a == b {
		t.Fatal("different labels shared a series")
	}
	// Label order must not matter.
	x := r.Counter("multi_total", "h", L("a", "1"), L("b", "2"))
	y := r.Counter("multi_total", "h", L("b", "2"), L("a", "1"))
	if x != y {
		t.Fatal("label order changed series identity")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes", "payload sizes", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 111.5 {
		t.Fatalf("sum = %v, want 111.5", h.Sum())
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`sizes_bucket{le="1"} 2`,
		`sizes_bucket{le="5"} 3`,
		`sizes_bucket{le="10"} 4`,
		`sizes_bucket{le="+Inf"} 5`,
		`sizes_sum 111.5`,
		`sizes_count 5`,
		"# TYPE sizes histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteToFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second family").Add(2)
	r.Counter("a_total", "first family", L("k", `va"l\ue`)).Inc()
	r.Gauge("g", "a gauge").Set(0.25)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Families in sorted order, HELP before TYPE before samples.
	ia, ib := strings.Index(out, "# TYPE a_total"), strings.Index(out, "# TYPE b_total")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("families out of order:\n%s", out)
	}
	if !strings.Contains(out, `a_total{k="va\"l\\ue"} 1`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, "g 0.25") {
		t.Errorf("gauge sample missing:\n%s", out)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c", L("x", "1")).Add(7)
	h := r.Histogram("lat", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	snap := r.Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back []Metric
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("snapshot has %d metrics, want 2", len(back))
	}
	if back[0].Name != "c_total" || back[0].Value != 7 || back[0].Labels["x"] != "1" {
		t.Fatalf("counter snapshot = %+v", back[0])
	}
	histo := back[1]
	if histo.Count != 2 || len(histo.Buckets) != 3 || histo.Buckets[2].Le != "+Inf" || histo.Buckets[2].Count != 2 {
		t.Fatalf("histogram snapshot = %+v", histo)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live instruments")
	}
	// All of these must be no-ops, not panics.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported values")
	}
	if _, err := r.WriteTo(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil registry snapshot = %v", snap)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dual", "")
}

func TestBucketConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", "", []float64{1, 2})
	if h := r.Histogram("h", "", nil); h == nil {
		t.Fatal("nil buckets should mean 'whatever was registered'")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different buckets did not panic")
		}
	}()
	r.Histogram("h", "", []float64{1, 3})
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}

// TestConcurrent hammers one registry from many goroutines; run with
// -race this is the core safety claim of the package.
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("conc_total", "c").Inc()
				r.Gauge("conc_gauge", "g").Add(1)
				r.Histogram("conc_hist", "h", []float64{1, 10, 100}).Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "c").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("conc_gauge", "g").Value(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	h := r.Histogram("conc_hist", "h", nil)
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if math.IsNaN(h.Sum()) {
		t.Fatal("histogram sum is NaN")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_hist", "", DefDurationBuckets)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.003)
		}
	})
}
