package metrics

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo returns the identity of the running binary: module version,
// Go toolchain version, and the VCS revision stamped by `go build` when
// the module is built inside a git checkout (suffixed "-dirty" for a
// modified tree). Fields fall back to "unknown" outside module builds.
func BuildInfo() (version, goVersion, revision string) {
	version, revision = "unknown", "unknown"
	goVersion = runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, goVersion, revision
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	} else {
		version = "devel"
	}
	modified := ""
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
			if len(revision) > 12 {
				revision = revision[:12]
			}
		case "vcs.modified":
			if s.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	return version, goVersion, revision + modified
}

// RegisterBuildInfo registers the eppi_build_info gauge: a constant-1
// series whose labels identify the running binary. The Prometheus
// convention: join any other series against it to answer "which build
// produced this number". Safe on a nil registry (no-op).
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	version, goVersion, revision := BuildInfo()
	reg.Gauge("eppi_build_info",
		"Build identity of the running binary; value is always 1.",
		L("version", version),
		L("go_version", goVersion),
		L("revision", revision),
	).Set(1)
}
