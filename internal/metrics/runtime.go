package metrics

import "runtime"

// RegisterRuntime registers pull-style Go runtime telemetry on reg:
//
//	eppi_go_goroutines          live goroutine count
//	eppi_go_heap_alloc_bytes    bytes of allocated heap objects
//	eppi_go_heap_sys_bytes      heap memory obtained from the OS
//	eppi_go_gc_pause_seconds_total  cumulative stop-the-world GC pause time
//	eppi_go_gc_runs_total       completed GC cycles
//
// The gauges are refreshed on every scrape via OnCollect — there is no
// background poller, so an idle registry costs nothing. Safe to call on a
// nil registry (no-op); calling it twice registers a second collector but
// the idempotent instrument accessors keep the series identical.
func RegisterRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	goroutines := reg.Gauge("eppi_go_goroutines", "Live goroutine count.")
	heapAlloc := reg.Gauge("eppi_go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapSys := reg.Gauge("eppi_go_heap_sys_bytes", "Heap memory obtained from the OS.")
	gcPause := reg.Gauge("eppi_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.")
	gcRuns := reg.Gauge("eppi_go_gc_runs_total", "Completed GC cycles.")
	reg.OnCollect(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		gcRuns.Set(float64(ms.NumGC))
	})
}
