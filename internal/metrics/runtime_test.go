package metrics

import (
	"strings"
	"testing"
)

func TestRegisterRuntimeRefreshesOnScrape(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"eppi_go_goroutines", "eppi_go_heap_alloc_bytes", "eppi_go_heap_sys_bytes",
		"eppi_go_gc_pause_seconds_total", "eppi_go_gc_runs_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	// Values must be live, not zero-valued placeholders: at least one
	// goroutine (this test) and a nonzero heap are always running.
	if g := reg.Gauge("eppi_go_goroutines", "").Value(); g < 1 {
		t.Errorf("goroutines gauge = %v, want >= 1", g)
	}
	if h := reg.Gauge("eppi_go_heap_alloc_bytes", "").Value(); h <= 0 {
		t.Errorf("heap gauge = %v, want > 0", h)
	}
}

func TestOnCollectRunsPerScrape(t *testing.T) {
	reg := NewRegistry()
	calls := 0
	g := reg.Gauge("test_scrapes", "")
	reg.OnCollect(func() {
		calls++
		g.Set(float64(calls))
	})
	var sb strings.Builder
	reg.WriteTo(&sb)
	reg.Snapshot()
	if calls != 2 {
		t.Fatalf("collector ran %d times over 2 scrapes", calls)
	}
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
}

func TestOnCollectNilSafety(t *testing.T) {
	var reg *Registry
	reg.OnCollect(func() {})                  // must not panic
	RegisterRuntime(reg)                      // must not panic
	NewRegistry().OnCollect(nil)              // nil collector ignored
	NewRegistry().WriteTo(&strings.Builder{}) // no collectors registered
}
