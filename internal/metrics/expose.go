package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteTo renders the registry in the Prometheus text exposition format
// (version 0.0.4): one # HELP / # TYPE pair per family, then one sample
// line per series, histograms with cumulative _bucket/_sum/_count rows.
// Families and series are emitted in sorted order so output is
// deterministic. It implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	lastFamily := ""
	for _, s := range r.snapshotSeries() {
		if s.name != lastFamily {
			lastFamily = s.name
			if s.help != "" {
				if _, err := fmt.Fprintf(cw, "# HELP %s %s\n", s.name, escapeHelp(s.help)); err != nil {
					return cw.n, err
				}
			}
			if _, err := fmt.Fprintf(cw, "# TYPE %s %s\n", s.name, s.kind); err != nil {
				return cw.n, err
			}
		}
		if err := writeSeries(cw, s); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

func writeSeries(w io.Writer, s *series) error {
	switch s.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.name, labelString(s.labels, "", ""), s.counter.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.name, labelString(s.labels, "", ""), formatFloat(s.gauge.Value()))
		return err
	case KindHistogram:
		h := s.histogram
		var cum uint64
		for i, ub := range s.upper {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				s.name, labelString(s.labels, "le", formatFloat(ub)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			s.name, labelString(s.labels, "le", "+Inf"), h.Count()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.name, labelString(s.labels, "", ""), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, labelString(s.labels, "", ""), h.Count())
		return err
	default:
		return fmt.Errorf("metrics: bad kind %v", s.kind)
	}
}

// labelString renders {k="v",...}, optionally appending one extra label
// (used for histogram le). Empty label sets render as "".
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraVal))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Bucket is one cumulative histogram bucket in a snapshot. Le is the
// upper bound rendered as a string so that "+Inf" survives JSON.
type Bucket struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// Metric is one series in a snapshot, JSON-encodable as-is.
type Metric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter or gauge value (counters as exact floats —
	// they stay well under 2^53 in any realistic run).
	Value float64 `json:"value,omitempty"`
	// Histogram fields.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every registered series as plain data, sorted by name
// then labels — the JSON sibling of WriteTo, used by tests and by
// eppi-bench to embed metrics in its output.
func (r *Registry) Snapshot() []Metric {
	all := r.snapshotSeries()
	out := make([]Metric, 0, len(all))
	for _, s := range all {
		m := Metric{Name: s.name, Kind: s.kind.String()}
		if len(s.labels) > 0 {
			m.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				m.Labels[l.Key] = l.Value
			}
		}
		switch s.kind {
		case KindCounter:
			m.Value = float64(s.counter.Value())
		case KindGauge:
			m.Value = s.gauge.Value()
		case KindHistogram:
			h := s.histogram
			m.Count = h.Count()
			m.Sum = h.Sum()
			var cum uint64
			for i, ub := range s.upper {
				cum += h.counts[i].Load()
				m.Buckets = append(m.Buckets, Bucket{Le: formatFloat(ub), Count: cum})
			}
			m.Buckets = append(m.Buckets, Bucket{Le: "+Inf", Count: m.Count})
		}
		out = append(out, m)
	}
	return out
}
