package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// LintExposition validates a Prometheus text exposition (version 0.0.4)
// against the subset of the format this package emits, returning one
// error per defect found. It is the guard that keeps WriteTo honest as
// new series are added: a scraper that silently drops malformed lines
// would otherwise hide them forever.
//
// Checked invariants:
//
//   - every line is a comment, blank, or a parseable sample
//   - metric and label names match the Prometheus grammar
//   - label values use only the \\, \", and \n escapes
//   - sample values parse as floats (+Inf, -Inf, NaN included)
//   - # TYPE names a valid kind, appears at most once per family, and
//     precedes the family's first sample; # HELP likewise
//   - no series (name plus full label set) is emitted twice
//   - histogram families: le bounds parse and strictly increase,
//     cumulative bucket counts are nondecreasing, the +Inf bucket is
//     present and equals the family's _count, and _sum/_count exist
func LintExposition(r io.Reader) []error {
	l := &linter{
		types:  map[string]string{},
		helps:  map[string]bool{},
		seen:   map[string]bool{},
		series: map[string]bool{},
		hists:  map[string]*histLint{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		l.line(line, sc.Text())
	}
	if err := sc.Err(); err != nil {
		l.errs = append(l.errs, fmt.Errorf("read exposition: %w", err))
	}
	l.finish()
	return l.errs
}

type histLint struct {
	family string
	labels string // base label set, le stripped
	lastLe float64
	lastN  uint64
	any    bool
	inf    bool
	infN   uint64
	sum    bool
	count  bool
	countN uint64
}

type linter struct {
	errs   []error
	types  map[string]string // family -> declared TYPE
	helps  map[string]bool
	seen   map[string]bool // family (or sample name) has emitted a sample
	series map[string]bool // name + canonical labels already emitted
	hists  map[string]*histLint
}

func (l *linter) errf(line int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: "+format, append([]any{line}, args...)...))
}

func (l *linter) line(n int, s string) {
	if s == "" {
		return
	}
	if strings.HasPrefix(s, "#") {
		l.comment(n, s)
		return
	}
	name, labels, value, ok := l.parseSample(n, s)
	if !ok {
		return
	}
	if !validMetricName(name) {
		l.errf(n, "invalid metric name %q", name)
	}
	if _, err := strconv.ParseFloat(value, 64); err != nil {
		l.errf(n, "value %q of %s is not a float", value, name)
	}
	key := name + canonicalLabels(labels)
	if l.series[key] {
		l.errf(n, "duplicate series %s", key)
	}
	l.series[key] = true
	fam := l.family(name)
	l.seen[fam] = true
	l.seen[name] = true
	if l.types[fam] == "histogram" {
		l.histSample(n, fam, name, labels, value)
	}
}

// family maps a sample name to its TYPE-declared family: histogram rows
// carry _bucket/_sum/_count suffixes on top of the family name.
func (l *linter) family(name string) string {
	if _, ok := l.types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && l.types[base] == "histogram" {
			return base
		}
	}
	return name
}

func (l *linter) comment(n int, s string) {
	fields := strings.SplitN(s, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		return // free-form comment: legal, ignored
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			l.errf(n, "HELP without a metric name")
			return
		}
		name := fields[2]
		if l.helps[name] {
			l.errf(n, "duplicate HELP for %s", name)
		}
		l.helps[name] = true
		if l.seen[name] {
			l.errf(n, "HELP for %s after its samples", name)
		}
	case "TYPE":
		if len(fields) < 4 {
			l.errf(n, "TYPE line %q missing name or kind", s)
			return
		}
		name, kind := fields[2], fields[3]
		switch kind {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.errf(n, "TYPE of %s is invalid kind %q", name, kind)
		}
		if _, dup := l.types[name]; dup {
			l.errf(n, "duplicate TYPE for %s", name)
		}
		if l.seen[name] {
			l.errf(n, "TYPE for %s after its samples", name)
		}
		l.types[name] = kind
	}
}

func (l *linter) histSample(n int, fam, name string, labels []Label, value string) {
	base := make([]Label, 0, len(labels))
	le := ""
	hasLe := false
	for _, lb := range labels {
		if lb.Key == "le" {
			le, hasLe = lb.Value, true
			continue
		}
		base = append(base, lb)
	}
	key := fam + canonicalLabels(base)
	h := l.hists[key]
	if h == nil {
		h = &histLint{family: fam, labels: canonicalLabels(base)}
		l.hists[key] = h
	}
	switch name {
	case fam + "_bucket":
		if !hasLe {
			l.errf(n, "%s row without an le label", name)
			return
		}
		cnt, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			l.errf(n, "bucket count %q of %s is not an integer", value, name)
			return
		}
		if le == "+Inf" {
			h.inf, h.infN = true, cnt
		} else {
			ub, err := strconv.ParseFloat(le, 64)
			if err != nil {
				l.errf(n, "le %q of %s is not a float", le, name)
				return
			}
			if h.inf {
				l.errf(n, "%s bucket le=%q after the +Inf bucket", name, le)
			}
			if h.any && ub <= h.lastLe {
				l.errf(n, "%s bucket bounds not increasing: le=%v after %v", name, ub, h.lastLe)
			}
			h.lastLe = ub
		}
		if h.any && cnt < h.lastN {
			l.errf(n, "%s cumulative counts decreasing: %d after %d", name, cnt, h.lastN)
		}
		h.any, h.lastN = true, cnt
	case fam + "_sum":
		if hasLe {
			l.errf(n, "%s carries an le label", name)
		}
		h.sum = true
	case fam + "_count":
		if hasLe {
			l.errf(n, "%s carries an le label", name)
		}
		cnt, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			l.errf(n, "count %q of %s is not an integer", value, name)
			return
		}
		h.count, h.countN = true, cnt
	default:
		// A bare sample under a histogram family name.
		l.errf(n, "histogram family %s has non-histogram sample %s", fam, name)
	}
}

// finish reports the histogram defects only visible once the whole
// exposition has streamed past.
func (l *linter) finish() {
	keys := make([]string, 0, len(l.hists))
	for k := range l.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := l.hists[k]
		id := h.family + h.labels
		if !h.inf {
			l.errs = append(l.errs, fmt.Errorf("histogram %s missing its +Inf bucket", id))
		}
		if !h.sum {
			l.errs = append(l.errs, fmt.Errorf("histogram %s missing %s_sum", id, h.family))
		}
		if !h.count {
			l.errs = append(l.errs, fmt.Errorf("histogram %s missing %s_count", id, h.family))
		} else if h.inf && h.infN != h.countN {
			l.errs = append(l.errs, fmt.Errorf("histogram %s: +Inf bucket %d != %s_count %d",
				id, h.infN, h.family, h.countN))
		}
	}
}

// parseSample splits `name{k="v",...} value` into parts, reporting any
// syntax defect against the line number.
func (l *linter) parseSample(n int, s string) (name string, labels []Label, value string, ok bool) {
	i := 0
	for i < len(s) && s[i] != '{' && s[i] != ' ' {
		i++
	}
	name = s[:i]
	if name == "" {
		l.errf(n, "sample line %q has no metric name", s)
		return "", nil, "", false
	}
	rest := s[i:]
	if strings.HasPrefix(rest, "{") {
		var lerr string
		labels, rest, lerr = parseLabels(rest[1:])
		if lerr != "" {
			l.errf(n, "labels of %s: %s", name, lerr)
			return "", nil, "", false
		}
		for _, lb := range labels {
			if !validLabelName(lb.Key) {
				l.errf(n, "invalid label name %q on %s", lb.Key, name)
			}
		}
	}
	if !strings.HasPrefix(rest, " ") {
		l.errf(n, "sample %s has no value separator", name)
		return "", nil, "", false
	}
	value = strings.TrimPrefix(rest, " ")
	// An optional trailing timestamp is legal in the format; this
	// package never writes one, so flag it as a drift signal.
	if strings.ContainsRune(value, ' ') {
		l.errf(n, "sample %s has trailing fields %q", name, value)
		return "", nil, "", false
	}
	return name, labels, value, true
}

// parseLabels consumes `k="v",...}` (the opening brace already eaten),
// unescaping values and returning whatever follows the closing brace.
func parseLabels(s string) (labels []Label, rest string, errMsg string) {
	for {
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], ""
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Sprintf("no '=' in %q", s)
		}
		key := s[:eq]
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Sprintf("value of %q not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
	scan:
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case '\\':
				if i+1 >= len(s) {
					return nil, "", fmt.Sprintf("value of %q ends mid-escape", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Sprintf("value of %q has bad escape \\%c", key, s[i+1])
				}
				i++
			case '"':
				closed = true
				s = s[i+1:]
				break scan
			default:
				val.WriteByte(s[i])
			}
		}
		if !closed {
			return nil, "", fmt.Sprintf("value of %q not terminated", key)
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if !strings.HasPrefix(s, "}") {
			return nil, "", fmt.Sprintf("junk after value of %q: %q", key, s)
		}
	}
}

func canonicalLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + strconv.Quote(l.Value)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}
