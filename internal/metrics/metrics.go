// Package metrics is a dependency-free observability substrate for the
// ε-PPI serving stack: counters, gauges and fixed-bucket histograms backed
// by sync/atomic, collected in a Registry that can render itself in the
// Prometheus text exposition format (WriteTo) or as a JSON-friendly
// snapshot (Snapshot).
//
// The package instruments the paper's own cost model: QueryPPI fan-out
// (search cost, Fig. 5), AuthSearch false-positive overhead (the live
// 1−ε confidence bound), and SecSumShare / CountBelow communication
// volume and rounds (Fig. 6). Every later scaling PR reports through it.
//
// Design constraints:
//
//   - zero dependencies beyond the standard library;
//   - hot-path operations (Counter.Inc, Histogram.Observe) are single
//     atomic RMWs — no locks, safe under arbitrary concurrency;
//   - every instrument is nil-safe: methods on a nil *Counter, *Gauge,
//     *Histogram or *Registry are no-ops, so components can carry
//     optional instrumentation without branching at every call site.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates instrument families.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Label is one name/value dimension of a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready
// to use; a nil *Counter no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable value. The zero value is ready to use; a nil *Gauge
// no-ops.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with cumulative exposition. Bucket
// boundaries are upper bounds; an implicit +Inf bucket catches the rest.
// A nil *Histogram no-ops.
type Histogram struct {
	upper  []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few (tens); linear scan beats binary search at this size
	// and keeps the hot path branch-predictable.
	placed := false
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefDurationBuckets are the default latency buckets, in seconds
// (100µs … 10s). They cover both local in-memory probes and TCP
// round-trips.
var DefDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExponentialBuckets returns n bucket upper bounds starting at start and
// multiplying by factor. It panics on invalid parameters (programmer
// error, caught at wiring time).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: bad exponential buckets start=%g factor=%g n=%d", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// series is one registered instrument plus its identity.
type series struct {
	name   string
	labels []Label // sorted by key
	kind   Kind
	help   string
	upper  []float64 // histogram bucket bounds

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// Registry holds named instruments. Get-or-create accessors (Counter,
// Gauge, Histogram) are idempotent: the same (name, labels) always returns
// the same instrument. Re-registering a name with a different kind or
// bucket layout panics — that is a wiring bug, not a runtime condition.
// A nil *Registry returns nil instruments, which no-op.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series // keyed by name + label signature
	kinds  map[string]Kind    // family name → kind

	collectMu sync.Mutex
	onCollect []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*series),
		kinds:  make(map[string]Kind),
	}
}

// Counter returns the counter registered under (name, labels), creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, KindCounter, nil, labels)
	return s.counter
}

// Gauge returns the gauge registered under (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, KindGauge, nil, labels)
	return s.gauge
}

// Histogram returns the histogram registered under (name, labels),
// creating it on first use with the given bucket upper bounds (sorted,
// +Inf implicit). Buckets are fixed at first registration; later calls may
// pass nil to mean "whatever was registered".
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, KindHistogram, buckets, labels)
	return s.histogram
}

func (r *Registry) lookup(name, help string, kind Kind, buckets []float64, labels []Label) *series {
	if name == "" {
		panic("metrics: empty metric name")
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := seriesKey(name, sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("metrics: %q registered as %v, requested as %v", name, prev, kind))
	}
	if s, ok := r.series[key]; ok {
		if kind == KindHistogram && buckets != nil && !sameBuckets(buckets, s.upper) {
			panic(fmt.Sprintf("metrics: %q re-registered with different buckets", name))
		}
		return s
	}
	s := &series{name: name, labels: sorted, kind: kind, help: help}
	switch kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		ub := buckets
		if ub == nil {
			ub = DefDurationBuckets
		}
		ub = append([]float64(nil), ub...)
		sort.Float64s(ub)
		s.upper = ub
		s.histogram = &Histogram{upper: ub, counts: make([]atomic.Uint64, len(ub))}
	default:
		panic(fmt.Sprintf("metrics: bad kind %v", kind))
	}
	r.kinds[name] = kind
	r.series[key] = s
	return s
}

func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	sorted := append([]float64(nil), a...)
	sort.Float64s(sorted)
	for i := range sorted {
		if sorted[i] != b[i] {
			return false
		}
	}
	return true
}

func seriesKey(name string, sorted []Label) string {
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range sorted {
		sb.WriteByte(0)
		sb.WriteString(l.Key)
		sb.WriteByte(0)
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// OnCollect registers fn to run at the start of every scrape (WriteTo or
// Snapshot), before series are read. Collectors refresh pull-style values
// — typically Gauge.Set from some live source — so scrapes observe
// current state without a background poller. Callbacks run outside the
// registry lock (they may create or set instruments) but under a
// dedicated collect lock, so concurrent scrapes do not interleave them.
func (r *Registry) OnCollect(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.collectMu.Lock()
	r.onCollect = append(r.onCollect, fn)
	r.collectMu.Unlock()
}

// collect runs the registered collectors.
func (r *Registry) collect() {
	r.collectMu.Lock()
	defer r.collectMu.Unlock()
	for _, fn := range r.onCollect {
		fn()
	}
}

// snapshotSeries returns all series sorted by (name, label signature) for
// deterministic exposition.
func (r *Registry) snapshotSeries() []*series {
	if r == nil {
		return nil
	}
	r.collect()
	r.mu.Lock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return seriesKey("", out[i].labels) < seriesKey("", out[j].labels)
	})
	return out
}
