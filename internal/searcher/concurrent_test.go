package searcher

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestSearchCtxConcurrent hammers one Searcher from many goroutines —
// instrumented and traced, the worst case for shared state — so the
// -race job proves SearchCtx is safe for concurrent use (the gateway and
// any federated client call it that way).
func TestSearchCtxConcurrent(t *testing.T) {
	server, providers := buildSystem(t)
	for _, p := range providers {
		p.Grant("dr")
	}
	s, err := New("dr", server, providers)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	s.Instrument(reg)
	tracer := trace.New(32)

	const goroutines, iterations = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				ctx, sp := tracer.StartRoot(context.Background(), "test.search")
				res, err := s.SearchCtx(ctx, "alice")
				sp.End()
				if err != nil {
					errs <- err
					return
				}
				if res.Contacted != 3 || res.TruePositives != 2 || res.FalsePositives != 1 {
					errs <- fmt.Errorf("result = %+v", res)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent SearchCtx: %v", err)
	}
	if got := reg.Counter("eppi_searcher_searches_total", "").Value(); got != goroutines*iterations {
		t.Fatalf("searches counter = %d, want %d", got, goroutines*iterations)
	}
}
