package searcher

import (
	"context"
	"testing"

	"repro/internal/trace"
)

func TestSearchCtxRecordsBothPhases(t *testing.T) {
	server, providers := buildSystem(t)
	for _, p := range providers {
		p.Grant("dr")
	}
	s, err := New("dr", server, providers)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(2)
	ctx, root := tr.StartRoot(context.Background(), "search")
	res, err := s.SearchCtx(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	spans := tr.Recent()[0].Spans
	var query, probe bool
	for _, sp := range spans {
		switch sp.Name {
		case "index.query":
			query = true
		case "searcher.auth_search":
			probe = true
			attrs := map[string]string{}
			for _, a := range sp.Attrs {
				attrs[a.Key] = a.Value
			}
			if attrs["contacted"] != "3" || attrs["true_positives"] != "2" ||
				attrs["false_positives"] != "1" || attrs["denied"] != "0" {
				t.Errorf("auth_search attrs = %v, result = %+v", attrs, res)
			}
		}
	}
	if !query || !probe {
		t.Fatalf("missing phase spans (index.query=%v auth_search=%v)", query, probe)
	}
}
