package searcher

import (
	"testing"

	"repro/internal/bitmat"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/provider"
)

// buildSystem wires 4 providers, an index with one noise bit, and grants.
func buildSystem(t *testing.T) (*index.Server, []*provider.Provider) {
	t.Helper()
	providers := make([]*provider.Provider, 4)
	for i := range providers {
		providers[i] = provider.New(i, "p")
	}
	// alice truly at providers 0 and 2.
	for _, i := range []int{0, 2} {
		if err := providers[i].Delegate(provider.Record{Owner: "alice", Body: "rec"}, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	pub := bitmat.MustNew(4, 1)
	pub.Set(0, 0, true)
	pub.Set(2, 0, true)
	pub.Set(3, 0, true) // noise provider (false positive)
	server, err := index.NewServer(pub, []string{"alice"})
	if err != nil {
		t.Fatal(err)
	}
	return server, providers
}

func TestNewValidation(t *testing.T) {
	server, providers := buildSystem(t)
	if _, err := New("s", server, nil); err == nil {
		t.Error("empty provider list accepted")
	}
	if _, err := New("s", server, providers[:2]); err == nil {
		t.Error("provider count mismatch accepted")
	}
	s, err := New("dr", server, providers)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != "dr" {
		t.Error("ID wrong")
	}
}

func TestTwoPhaseSearch(t *testing.T) {
	server, providers := buildSystem(t)
	for _, p := range providers {
		p.Grant("dr")
	}
	s, err := New("dr", server, providers)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Search("alice")
	if err != nil {
		t.Fatal(err)
	}
	if res.Contacted != 3 {
		t.Fatalf("Contacted = %d, want 3", res.Contacted)
	}
	if res.TruePositives != 2 || res.FalsePositives != 1 || res.Denied != 0 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(res.Records))
	}
	if got := res.ObservedFalsePositiveRate(); got != 1.0/3.0 {
		t.Fatalf("fp rate = %v, want 1/3", got)
	}
}

func TestSearchWithDenials(t *testing.T) {
	server, providers := buildSystem(t)
	providers[0].Grant("dr") // only provider 0 authorizes
	s, err := New("dr", server, providers)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Search("alice")
	if err != nil {
		t.Fatal(err)
	}
	if res.Denied != 2 || res.TruePositives != 1 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Records) != 1 {
		t.Fatalf("records = %d", len(res.Records))
	}
}

func TestSearchUnknownOwner(t *testing.T) {
	server, providers := buildSystem(t)
	s, err := New("dr", server, providers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search("nobody"); err == nil {
		t.Fatal("unknown owner accepted")
	}
}

func TestFalsePositiveRateEmpty(t *testing.T) {
	r := &Result{}
	if r.ObservedFalsePositiveRate() != 0 {
		t.Fatal("empty result fp rate != 0")
	}
}

// TestInstrument checks the searcher's live ε-estimate counters: with one
// noise column bit, a search yields 2 true positives and 1 false positive,
// so fp/(tp+fp) — the observed false-positive rate bounding attacker
// confidence at 1−fp — must match Result.ObservedFalsePositiveRate.
func TestInstrument(t *testing.T) {
	server, providers := buildSystem(t)
	for _, p := range providers[:3] {
		p.Grant("dr")
	}
	// Provider 3 (the noise provider) denies: exercises the denied counter.
	s, err := New("dr", server, providers)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	s.Instrument(reg)
	res, err := s.Search("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("eppi_searcher_searches_total", "").Value(); got != 1 {
		t.Fatalf("searches_total = %d, want 1", got)
	}
	if got := reg.Counter("eppi_searcher_true_positive_total", "").Value(); got != uint64(res.TruePositives) {
		t.Fatalf("true_positive_total = %d, want %d", got, res.TruePositives)
	}
	if got := reg.Counter("eppi_searcher_false_positive_total", "").Value(); got != uint64(res.FalsePositives) {
		t.Fatalf("false_positive_total = %d, want %d", got, res.FalsePositives)
	}
	if got := reg.Counter("eppi_searcher_denied_total", "").Value(); got != uint64(res.Denied) {
		t.Fatalf("denied_total = %d, want %d", got, res.Denied)
	}
	if res.Denied != 1 {
		t.Fatalf("Denied = %d, want 1 (ungranted noise provider)", res.Denied)
	}
	h := reg.Histogram("eppi_searcher_probe_seconds", "", nil)
	if h.Count() != uint64(res.Contacted) {
		t.Fatalf("probe observations = %d, want %d", h.Count(), res.Contacted)
	}
}
