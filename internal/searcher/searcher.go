// Package searcher implements the two-phase search procedure of the ε-PPI
// system model: QueryPPI against the locator service followed by
// AuthSearch against each candidate provider.
package searcher

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/provider"
	"repro/internal/trace"
)

// ErrNoProviders reports a searcher constructed over an empty network.
var ErrNoProviders = errors.New("searcher: no providers")

// Searcher performs two-phase lookups on behalf of a named principal.
type Searcher struct {
	id        string
	server    *index.Server
	providers []*provider.Provider

	// inst mirrors search outcomes into a registry once Instrument is
	// called; nil before that.
	inst atomic.Pointer[instruments]
}

// instruments are the registry-backed search-outcome counters. The
// true/false-positive counters are the live estimate of the paper's
// Fig. 5/6 quantities: fp/(tp+fp) is the observed false-positive rate, the
// empirical counterpart of the 1−ε attacker-confidence bound.
type instruments struct {
	searches  *metrics.Counter
	truePos   *metrics.Counter
	falsePos  *metrics.Counter
	denied    *metrics.Counter
	probeTime *metrics.Histogram
}

// Instrument mirrors search-outcome counters into reg:
//
//	eppi_searcher_searches_total        two-phase searches run
//	eppi_searcher_true_positive_total   contacted providers that held records
//	eppi_searcher_false_positive_total  contacted providers that were noise
//	eppi_searcher_denied_total          providers that refused authorization
//	eppi_searcher_probe_seconds         per-provider AuthSearch latency
func (s *Searcher) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.inst.Store(&instruments{
		searches:  reg.Counter("eppi_searcher_searches_total", "Two-phase searches run."),
		truePos:   reg.Counter("eppi_searcher_true_positive_total", "AuthSearch probes that found records."),
		falsePos:  reg.Counter("eppi_searcher_false_positive_total", "AuthSearch probes that hit index noise (the privacy overhead)."),
		denied:    reg.Counter("eppi_searcher_denied_total", "AuthSearch probes refused by provider ACLs."),
		probeTime: reg.Histogram("eppi_searcher_probe_seconds", "Per-provider AuthSearch probe latency.", metrics.DefDurationBuckets),
	})
}

// New creates a searcher. providers[i] must be the provider with network
// id i (the same ordering used to build the index).
func New(id string, server *index.Server, providers []*provider.Provider) (*Searcher, error) {
	if len(providers) == 0 {
		return nil, ErrNoProviders
	}
	if server.Providers() != len(providers) {
		return nil, fmt.Errorf("searcher: index covers %d providers, got %d", server.Providers(), len(providers))
	}
	return &Searcher{id: id, server: server, providers: providers}, nil
}

// ID returns the searcher principal.
func (s *Searcher) ID() string { return s.id }

// Result is the outcome of one two-phase search.
type Result struct {
	// Records are all records of the owner found at authorized providers.
	Records []provider.Record
	// Contacted is the number of providers returned by QueryPPI — the
	// search cost the privacy noise imposes.
	Contacted int
	// TruePositives is the number of contacted providers that actually
	// held records.
	TruePositives int
	// FalsePositives is the number of contacted providers that held
	// nothing (the index noise).
	FalsePositives int
	// Denied is the number of providers that refused authorization.
	Denied int
}

// searchConcurrency bounds the parallel AuthSearch fan-out: the privacy
// noise inflates the candidate list by design, so a federated searcher
// contacts providers concurrently rather than serially.
const searchConcurrency = 16

// Search runs QueryPPI(owner) and AuthSearch against every returned
// provider, fanning the second phase out over up to searchConcurrency
// concurrent probes. Authorization denials are not fatal: the searcher
// collects whatever the ACLs allow, as a real federated search must.
// Results are deterministic: records are ordered by provider id.
func (s *Searcher) Search(owner string) (*Result, error) {
	return s.SearchCtx(context.Background(), owner)
}

// SearchCtx is Search with an explicit context. When ctx carries a trace
// span, both phases record child spans: "index.query" (inside QueryCtx)
// and "searcher.auth_search" covering the probe fan-out, annotated with
// the contacted/true-positive/false-positive/denied breakdown.
func (s *Searcher) SearchCtx(ctx context.Context, owner string) (*Result, error) {
	in := s.inst.Load()
	candidates, err := s.server.QueryCtx(ctx, owner)
	if err != nil {
		return nil, fmt.Errorf("QueryPPI: %w", err)
	}
	if in != nil {
		in.searches.Inc()
	}
	_, probeSpan := trace.StartChild(ctx, "searcher.auth_search")
	type probe struct {
		pid  int
		recs []provider.Record
		err  error
	}
	probes := make([]probe, len(candidates))
	sem := make(chan struct{}, searchConcurrency)
	var wg sync.WaitGroup
	for i, pid := range candidates {
		wg.Add(1)
		go func(i, pid int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			recs, err := s.providers[pid].AuthSearch(s.id, owner)
			if in != nil {
				in.probeTime.ObserveSince(start)
			}
			probes[i] = probe{pid: pid, recs: recs, err: err}
		}(i, pid)
	}
	wg.Wait()

	res := &Result{Contacted: len(candidates)}
	sort.Slice(probes, func(a, b int) bool { return probes[a].pid < probes[b].pid })
	for _, p := range probes {
		if p.err != nil {
			if errors.Is(p.err, provider.ErrUnauthorized) {
				res.Denied++
				continue
			}
			probeSpan.Set("error", p.err.Error())
			probeSpan.End()
			return nil, fmt.Errorf("AuthSearch at provider %d: %w", p.pid, p.err)
		}
		if len(p.recs) == 0 {
			res.FalsePositives++
			continue
		}
		res.TruePositives++
		res.Records = append(res.Records, p.recs...)
	}
	if in != nil {
		in.truePos.Add(uint64(res.TruePositives))
		in.falsePos.Add(uint64(res.FalsePositives))
		in.denied.Add(uint64(res.Denied))
	}
	probeSpan.SetInt("contacted", res.Contacted)
	probeSpan.SetInt("true_positives", res.TruePositives)
	probeSpan.SetInt("false_positives", res.FalsePositives)
	probeSpan.SetInt("denied", res.Denied)
	probeSpan.End()
	return res, nil
}

// ObservedFalsePositiveRate returns the fraction of contacted providers
// that turned out to be noise — exactly the fp_j that bounds an attacker's
// confidence (1 − fp_j) for this owner.
func (r *Result) ObservedFalsePositiveRate() float64 {
	answered := r.TruePositives + r.FalsePositives
	if answered == 0 {
		return 0
	}
	return float64(r.FalsePositives) / float64(answered)
}
