package searcher

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/mathx"
	"repro/internal/provider"
)

// End-to-end consistency: the false-positive rate a searcher observes
// through AuthSearch must equal the matrix-level fp rate of the published
// column — the system's privacy accounting and the search experience are
// two views of the same quantity.
func TestObservedFpMatchesMatrixFp(t *testing.T) {
	const m = 120
	rng := rand.New(rand.NewSource(1))
	providers := make([]*provider.Provider, m)
	for i := range providers {
		providers[i] = provider.New(i, fmt.Sprintf("p%d", i))
		providers[i].Grant("s")
	}
	truth := bitmat.MustNew(m, 1)
	for i := 0; i < m; i++ {
		if rng.Float64() < 0.08 {
			truth.Set(i, 0, true)
			if err := providers[i].Delegate(provider.Record{Owner: "alice", Body: "r"}, 0.6); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := core.Construct(truth, []float64{0.6}, core.Config{
		Policy: mathx.PolicyChernoff, Gamma: 0.9, Mode: core.ModeTrusted, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := index.NewServer(res.Published, []string{"alice"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New("s", srv, providers)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Search("alice")
	if err != nil {
		t.Fatal(err)
	}
	wantFp, err := bitmat.ColFalsePositiveRate(truth, res.Published, 0)
	if err != nil {
		t.Fatal(err)
	}
	if obs := got.ObservedFalsePositiveRate(); obs != wantFp {
		t.Fatalf("observed fp %v != matrix fp %v", obs, wantFp)
	}
	if got.Contacted != res.Published.ColCount(0) {
		t.Fatalf("contacted %d != published positives %d", got.Contacted, res.Published.ColCount(0))
	}
}
